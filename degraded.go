package mainline

import (
	"fmt"
	"time"
)

// Degraded mode is the engine's failure model for a lost log (DESIGN.md
// "Failure model"): a WAL write or fsync error means durability can no
// longer be promised, and an engine that kept accepting writes would be
// acking commits a crash could silently drop. Instead the engine seals
// itself read-only:
//
//   - The log manager has already failed every durable waiter (the
//     fsync-gate rule: no transaction is acked durable against an
//     unsynced log) and wedged before enterDegraded runs.
//   - Durable Begins, all writes, and write/durable Commits refuse with
//     ErrDegraded wrapping the root cause.
//   - Reads and non-durable snapshots keep serving: the in-memory MVCC
//     state is intact and consistent — only its durability is gone.
//   - /healthz reports 503 with the reason; Health() carries
//     Degraded/DegradedReason; the serving layer returns ErrDegraded
//     across the wire.
//
// Checkpoint faults do NOT degrade the engine: a failed attempt leaves
// the previous checkpoint installed and is simply retried (with bounded
// backoff in the background loop). Degraded mode is reserved for the log,
// whose failure breaks the commit protocol itself.

// enterDegraded seals the engine into degraded read-only mode; first
// cause wins. It is the engine's LogManager.OnError handler, called by
// the flusher after it has wedged the log and failed every waiter.
func (e *Engine) enterDegraded(cause error) {
	if !e.degraded.CompareAndSwap(false, true) {
		return
	}
	e.degradedCause.Store(fmt.Errorf("%w: %w", ErrDegraded, cause))
	// Record the transition as a captured span so /debug/slowops and
	// SlowOps() show the failing op even when the trace ring's latency
	// threshold would not have caught it.
	e.obs.ring.Observe(SlowOp{
		Kind:  "degraded",
		Start: time.Now(),
		Phases: []SlowOpPhase{
			{Name: "cause: " + cause.Error()},
		},
	})
}

// degradedErr returns the ErrDegraded-wrapped root cause.
func (e *Engine) degradedErr() error {
	if err, ok := e.degradedCause.Load().(error); ok {
		return err
	}
	return ErrDegraded
}

// Degraded reports whether the engine has sealed itself read-only after a
// log failure, and the cause (nil when healthy).
func (e *Engine) Degraded() (bool, error) {
	if !e.degraded.Load() {
		return false, nil
	}
	return true, e.degradedErr()
}
