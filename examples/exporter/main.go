// Exporter: serve a frozen table over TCP and fetch it through all three
// wire protocols plus the simulated RDMA path, comparing delivery speed —
// a miniature of the paper's Figure 15.
package main

import (
	"fmt"
	"log"

	"mainline"
	"mainline/internal/arrow"
	"mainline/internal/server"
)

func main() {
	eng, err := mainline.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	lines, err := eng.CreateTable("order_line", mainline.NewSchema(
		mainline.Field{Name: "ol_o_id", Type: mainline.INT64},
		mainline.Field{Name: "ol_amount", Type: mainline.INT64},
		mainline.Field{Name: "ol_dist_info", Type: mainline.STRING},
	))
	if err != nil {
		log.Fatal(err)
	}
	const rows = 100000
	if err := eng.Update(func(tx *mainline.Txn) error {
		row := lines.NewRow()
		for i := 0; i < rows; i++ {
			row.Reset()
			row.SetInt64(0, int64(i/10))
			row.SetInt64(1, int64(i%10000))
			row.SetVarlen(2, []byte(fmt.Sprintf("dist-info-%024d", i)))
			if _, err := lines.Insert(tx, row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if !eng.FreezeAll(0) {
		log.Fatal("freeze did not converge")
	}

	adm := eng.Admin()
	srv := server.NewCompareServer(adm.TxnManager(), adm.Catalog())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("export server on %s, table %q (%d rows, all frozen)\n\n", addr, "order_line", rows)

	var reference uint64
	for _, proto := range []server.Protocol{server.ProtoFlight, server.ProtoVectorized, server.ProtoPGWire} {
		res, err := server.Fetch(addr, proto, "order_line")
		if err != nil {
			log.Fatalf("%s: %v", proto, err)
		}
		sum := int64(0)
		for _, rb := range res.Table.Batches {
			s, _ := arrow.SumInt64(rb.Column("ol_amount"))
			sum += s
		}
		if reference == 0 {
			reference = uint64(sum)
		} else if uint64(sum) != reference {
			log.Fatalf("%s delivered different data", proto)
		}
		fmt.Printf("%-11s %8d rows  %9d bytes  %8.1f MB/s  sum=%d\n",
			proto, res.Table.NumRows(), res.Bytes,
			float64(res.Bytes)/(1<<20)/res.Elapsed.Seconds(), sum)
	}

	// Simulated client-side RDMA: raw block memory lands in the client's
	// registered region with no protocol encoding at all.
	client := server.NewRDMAClient(1 << 24)
	res, err := server.RDMAExport(adm.TxnManager(), adm.Catalog().Table("order_line"), client)
	if err != nil {
		log.Fatal(err)
	}
	sum := int64(0)
	for _, rb := range res.Table.Batches {
		s, _ := arrow.SumInt64(rb.Column("ol_amount"))
		sum += s
	}
	if uint64(sum) != reference {
		log.Fatal("rdma delivered different data")
	}
	fmt.Printf("%-11s %8d rows  %9d bytes  %8.1f MB/s  sum=%d\n",
		"rdma(sim)", res.Table.NumRows(), res.Bytes,
		float64(res.Bytes)/(1<<20)/res.Elapsed.Seconds(), sum)
}
