// Durability: commit transactions through the write-ahead log with group
// commit, "crash" (discard the engine), and recover the database from the
// log into a fresh engine (§3.4). Durability is a per-transaction property:
// Begin(mainline.Durable()) makes Commit block until the group-commit
// fsync covers the transaction.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mainline"
)

func main() {
	dir, err := os.MkdirTemp("", "mainline-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "wal.log")

	// First life: write with logging enabled.
	eng, err := mainline.Open(mainline.WithWAL(logPath, 0), mainline.WithBackground())
	if err != nil {
		log.Fatal(err)
	}
	accounts, err := eng.CreateTable("accounts", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "owner", Type: mainline.STRING},
		mainline.Field{Name: "balance", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}
	var slots []mainline.TupleSlot
	for i := 0; i < 100; i++ {
		// Durable transactions block in Commit until the fsync.
		tx, err := eng.Begin(mainline.Durable())
		if err != nil {
			log.Fatal(err)
		}
		row := accounts.NewRow()
		row.Set("id", int64(i))
		row.Set("owner", fmt.Sprintf("owner-%d", i))
		row.Set("balance", int64(1000))
		slot, err := accounts.Insert(tx, row)
		if err != nil {
			log.Fatal(err)
		}
		slots = append(slots, slot)
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// A transfer and a deletion, both durable, via the managed closure.
	if err := eng.Update(func(tx *mainline.Txn) error {
		u, err := accounts.NewRowFor("balance")
		if err != nil {
			return err
		}
		u.Set("balance", int64(250))
		if err := accounts.Update(tx, slots[0], u); err != nil {
			return err
		}
		u.Set("balance", int64(1750))
		if err := accounts.Update(tx, slots[1], u); err != nil {
			return err
		}
		return accounts.Delete(tx, slots[99])
	}, mainline.Durable()); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote 101 durable transactions, crashing...")

	// Second life: fresh engine, same schema, replay the log.
	eng2, err := mainline.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	accounts2, err := eng2.CreateTable("accounts", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "owner", Type: mainline.STRING},
		mainline.Field{Name: "balance", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.Recover(logPath); err != nil {
		log.Fatal(err)
	}

	count := 0
	total := int64(0)
	if err := eng2.View(func(tx *mainline.Txn) error {
		return accounts2.Scan(tx, []string{"id", "balance"}, func(_ mainline.TupleSlot, row *mainline.Row) bool {
			count++
			total += row.Int64("balance")
			return true
		})
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d accounts, total balance %d\n", count, total)
	if count != 99 || total != 99*1000 {
		log.Fatalf("recovery mismatch: want 99 accounts / %d total", 99*1000)
	}
	fmt.Println("recovery verified: the transfer and the delete both replayed")
}
