// Durability: commit transactions through the write-ahead log with group
// commit, "crash" (discard the engine), and recover the database from the
// log into a fresh engine (§3.4).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
)

import "mainline"

func main() {
	dir, err := os.MkdirTemp("", "mainline-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "wal.log")

	// First life: write with logging enabled.
	eng, err := mainline.Open(mainline.Options{LogPath: logPath, Background: true})
	if err != nil {
		log.Fatal(err)
	}
	accounts, err := eng.CreateTable("accounts", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "owner", Type: mainline.STRING},
		mainline.Field{Name: "balance", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}
	var slots []mainline.TupleSlot
	for i := 0; i < 100; i++ {
		tx := eng.Begin()
		row := accounts.NewRow()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, []byte(fmt.Sprintf("owner-%d", i)))
		row.SetInt64(2, 1000)
		slot, err := accounts.Insert(tx, row)
		if err != nil {
			log.Fatal(err)
		}
		slots = append(slots, slot)
		// CommitDurable blocks until the group commit fsyncs.
		eng.CommitDurable(tx)
	}
	// A transfer and a deletion, both durable.
	tx := eng.Begin()
	bal, _ := accounts.ProjectionOf("balance")
	u := bal.NewRow()
	u.SetInt64(0, 250)
	if err := accounts.Update(tx, slots[0], u); err != nil {
		log.Fatal(err)
	}
	u.SetInt64(0, 1750)
	if err := accounts.Update(tx, slots[1], u); err != nil {
		log.Fatal(err)
	}
	if err := accounts.Delete(tx, slots[99]); err != nil {
		log.Fatal(err)
	}
	eng.CommitDurable(tx)
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote 101 durable transactions, crashing...")

	// Second life: fresh engine, same schema, replay the log.
	eng2, err := mainline.Open(mainline.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	accounts2, err := eng2.CreateTable("accounts", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "owner", Type: mainline.STRING},
		mainline.Field{Name: "balance", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.Recover(logPath); err != nil {
		log.Fatal(err)
	}

	check := eng2.Begin()
	count := 0
	total := int64(0)
	proj, _ := accounts2.ProjectionOf("id", "balance")
	_ = accounts2.Scan(check, proj, func(_ mainline.TupleSlot, row *mainline.Row) bool {
		count++
		total += row.Int64(1)
		return true
	})
	eng2.Commit(check)
	fmt.Printf("recovered %d accounts, total balance %d\n", count, total)
	if count != 99 || total != 99*1000 {
		log.Fatalf("recovery mismatch: want 99 accounts / %d total", 99*1000)
	}
	fmt.Println("recovery verified: the transfer and the delete both replayed")
}
