// TPC-C example: load the benchmark database through the public API's
// internals, run the standard mix with the background GC + transformation
// pipeline active, and audit the result with the spec's consistency checks.
package main

import (
	"fmt"
	"log"
	"time"

	"mainline"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/workload/tpcc"
)

func main() {
	eng, err := mainline.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	adm := eng.Admin()
	mgr := adm.TxnManager()

	const warehouses = 2
	db, err := tpcc.NewDatabase(mgr, adm.Catalog(), tpcc.DefaultConfig(warehouses))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	p, err := tpcc.Load(db, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d warehouses in %v\n", warehouses, time.Since(start).Round(time.Millisecond))

	// The paper's pipeline: GC harvests access statistics, the transformer
	// freezes the cold-data tables (ORDER, ORDER_LINE, HISTORY, ITEM).
	g := gc.New(mgr)
	obs := transform.NewObserver()
	for _, tbl := range db.OrderTables() {
		obs.Watch(tbl.DataTable)
	}
	g.SetObserver(obs)
	tcfg := transform.DefaultConfig()
	tr := transform.New(mgr, g, obs, tcfg)
	g.Start(10 * time.Millisecond)
	tr.Start(10 * time.Millisecond)

	res := tpcc.Run(db, p, warehouses, 2*time.Second, 7)
	tr.Stop()
	g.Stop()

	fmt.Printf("throughput: %.0f txn/s over %v (aborted %d)\n",
		res.Throughput(), res.Elapsed.Round(time.Millisecond), res.Aborted)
	names := []string{"new-order", "payment", "order-status", "delivery", "stock-level"}
	for i, n := range res.Committed {
		fmt.Printf("  %-13s %d\n", names[i], n)
	}

	total, frozen := 0, 0
	for _, tbl := range db.OrderTables() {
		for _, b := range tbl.Blocks() {
			if b.InsertHead() == 0 {
				continue
			}
			total++
			if b.State() == storage.StateFrozen {
				frozen++
			}
		}
	}
	fmt.Printf("cold-table blocks frozen: %d/%d\n", frozen, total)
	st := tr.Stats()
	fmt.Printf("pipeline: %d compactions, %d moves, %d frozen, %d recycled\n",
		st.GroupsCompacted, st.TuplesMoved, st.BlocksFrozen, st.BlocksRecycled)

	if err := tpcc.CheckConsistency(db); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("TPC-C consistency checks passed")
}
