// Quickstart: create a table, run transactions through the handle-scoped
// API, freeze cold blocks into canonical Arrow, and export the table as an
// Arrow IPC stream — the end-to-end loop of the paper in ~100 lines.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mainline"
	"mainline/internal/arrow"
)

func main() {
	eng, err := mainline.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The TPC-C ITEM table from the paper's Figure 2.
	items, err := eng.CreateTable("item", mainline.NewSchema(
		mainline.Field{Name: "i_id", Type: mainline.INT64},
		mainline.Field{Name: "i_name", Type: mainline.STRING, Nullable: true},
		mainline.Field{Name: "i_price", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}

	// OLTP inserts through the managed Update closure: it begins a
	// transaction, commits on nil, and would retry on write conflicts.
	var anna mainline.TupleSlot
	if err := eng.Update(func(tx *mainline.Txn) error {
		row := items.NewRow()
		for i := 0; i < 1000; i++ {
			row.Reset()
			row.Set("i_id", int64(100+i))
			row.Set("i_name", fmt.Sprintf("item-%d", i))
			row.Set("i_price", int64(99+i))
			slot, err := items.Insert(tx, row)
			if err != nil {
				return err
			}
			if i == 0 {
				anna = slot
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// An update with snapshot isolation: readers that started earlier
	// still see the old version. Explicit handles show the lifecycle.
	reader, err := eng.Begin(mainline.ReadOnly())
	if err != nil {
		log.Fatal(err)
	}
	writer, err := eng.Begin()
	if err != nil {
		log.Fatal(err)
	}
	upd, _ := items.NewRowFor("i_name")
	upd.Set("i_name", "ANNA")
	if err := items.Update(writer, anna, upd); err != nil {
		log.Fatal(err)
	}
	if _, err := writer.Commit(); err != nil {
		log.Fatal(err)
	}
	out, _ := items.NewRowFor("i_name")
	if _, err := items.Select(reader, anna, out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old snapshot still reads: %s\n", out.String("i_name"))
	if _, err := reader.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := eng.View(func(tx *mainline.Txn) error {
		if _, err := items.Select(tx, anna, out); err != nil {
			return err
		}
		fmt.Printf("new snapshot reads:       %s\n", out.String("i_name"))
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Freeze: GC prunes version chains, compaction removes gaps, gather
	// produces canonical Arrow buffers in place.
	if !eng.FreezeAll(0) {
		log.Fatal("freeze did not converge")
	}
	states := eng.BlockStates("item")
	fmt.Printf("block states [hot cooling freezing frozen]: %v\n", states)

	// Export: frozen blocks go out zero-copy as Arrow IPC.
	var buf bytes.Buffer
	var written int64
	var frozen, materialized int
	if err := eng.View(func(tx *mainline.Txn) error {
		var err error
		written, frozen, materialized, err = items.ExportIPC(&buf, tx)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d bytes (%d zero-copy blocks, %d materialized)\n", written, frozen, materialized)

	// Any Arrow consumer can now read the stream.
	table, err := arrow.ReadTable(&buf)
	if err != nil {
		log.Fatal(err)
	}
	sum := int64(0)
	for _, rb := range table.Batches {
		s, err := arrow.SumInt64(rb.Column("i_price"))
		if err != nil {
			log.Fatal(err)
		}
		sum += s
	}
	fmt.Printf("client-side sum(i_price) over %d rows = %d\n", table.NumRows(), sum)
}
