// Quickstart: create a table, run transactions, freeze cold blocks into
// canonical Arrow, and export the table as an Arrow IPC stream — the
// end-to-end loop of the paper in ~100 lines.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mainline"
	"mainline/internal/arrow"
)

func main() {
	eng, err := mainline.Open(mainline.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The TPC-C ITEM table from the paper's Figure 2.
	items, err := eng.CreateTable("item", mainline.NewSchema(
		mainline.Field{Name: "i_id", Type: mainline.INT64},
		mainline.Field{Name: "i_name", Type: mainline.STRING, Nullable: true},
		mainline.Field{Name: "i_price", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}

	// OLTP inserts.
	var anna mainline.TupleSlot
	tx := eng.Begin()
	row := items.NewRow()
	for i := 0; i < 1000; i++ {
		row.Reset()
		row.SetInt64(0, int64(100+i))
		row.SetVarlen(1, []byte(fmt.Sprintf("item-%d", i)))
		row.SetInt64(2, int64(99+i))
		slot, err := items.Insert(tx, row)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			anna = slot
		}
	}
	eng.Commit(tx)

	// An update with snapshot isolation: readers that started earlier
	// still see the old version.
	reader := eng.Begin()
	writer := eng.Begin()
	nameProj, _ := items.ProjectionOf("i_name")
	upd := nameProj.NewRow()
	upd.SetVarlen(0, []byte("ANNA"))
	if err := items.Update(writer, anna, upd); err != nil {
		log.Fatal(err)
	}
	eng.Commit(writer)
	out := nameProj.NewRow()
	if _, err := items.Select(reader, anna, out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old snapshot still reads: %s\n", out.Varlen(0))
	eng.Commit(reader)
	fresh := eng.Begin()
	if _, err := items.Select(fresh, anna, out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new snapshot reads:       %s\n", out.Varlen(0))
	eng.Commit(fresh)

	// Freeze: GC prunes version chains, compaction removes gaps, gather
	// produces canonical Arrow buffers in place.
	if !eng.FreezeAll(0) {
		log.Fatal("freeze did not converge")
	}
	states := eng.BlockStates("item")
	fmt.Printf("block states [hot cooling freezing frozen]: %v\n", states)

	// Export: frozen blocks go out zero-copy as Arrow IPC.
	var buf bytes.Buffer
	exTx := eng.Begin()
	written, frozen, materialized, err := items.ExportIPC(&buf, exTx)
	eng.Commit(exTx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d bytes (%d zero-copy blocks, %d materialized)\n", written, frozen, materialized)

	// Any Arrow consumer can now read the stream.
	table, err := arrow.ReadTable(&buf)
	if err != nil {
		log.Fatal(err)
	}
	sum := int64(0)
	for _, rb := range table.Batches {
		s, err := arrow.SumInt64(rb.Column("i_price"))
		if err != nil {
			log.Fatal(err)
		}
		sum += s
	}
	fmt.Printf("client-side sum(i_price) over %d rows = %d\n", table.NumRows(), sum)
}
