// Crash recovery: drive durable transactions against a data directory
// (segmented WAL + background Arrow checkpoints), survive a SIGKILL, and
// verify the recovered state transactionally.
//
// Each transaction atomically appends an event row with id = c and bumps a
// counter row to c+1, both durable. The invariant any crash must preserve:
// the counter reads some c, and the event ids are exactly {0, …, c-1}.
//
// Modes:
//
//	(default)      self-contained demo: run a bounded workload with a
//	               checkpoint, close, reopen, verify — exits 0 on success
//	-mode run      append transactions until -seconds elapse (or forever);
//	               meant to be SIGKILLed mid-workload
//	-mode verify   reopen the data directory, check the invariant, and
//	               print recovery statistics; exits non-zero on violation
//
// The CI crash-recovery job runs "-mode run" in the background, kills it
// with SIGKILL, then runs "-mode verify" against the same directory.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mainline"
)

func main() {
	var (
		dir     = flag.String("dir", "", "data directory (required for -mode run/verify)")
		mode    = flag.String("mode", "demo", "demo|run|verify")
		seconds = flag.Int("seconds", 0, "run mode: stop cleanly after this many seconds (0 = until killed)")
		txns    = flag.Int("txns", 300, "demo mode: transactions per phase")
	)
	flag.Parse()
	switch *mode {
	case "demo":
		demo(*txns)
	case "run":
		requireDir(*dir)
		run(*dir, *seconds)
	case "verify":
		requireDir(*dir)
		if !verify(*dir) {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q\n", *mode)
		os.Exit(2)
	}
}

func requireDir(dir string) {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "-dir is required")
		os.Exit(2)
	}
}

// open brings the engine up on dir and ensures the schema exists.
func open(dir string) (*mainline.Engine, *mainline.Table, *mainline.Table) {
	eng, err := mainline.Open(
		mainline.WithDataDir(dir),
		mainline.WithBackground(),
		mainline.WithCheckpointInterval(2*time.Second),
		mainline.WithWALSegmentSize(256<<10),
	)
	if err != nil {
		log.Fatal(err)
	}
	events := eng.Table("events")
	if events == nil {
		events, err = eng.CreateTable("events", mainline.NewSchema(
			mainline.Field{Name: "id", Type: mainline.INT64},
			mainline.Field{Name: "payload", Type: mainline.STRING},
		))
		if err != nil {
			log.Fatal(err)
		}
	}
	meta := eng.Table("meta")
	if meta == nil {
		meta, err = eng.CreateTable("meta", mainline.NewSchema(
			mainline.Field{Name: "k", Type: mainline.INT64},
			mainline.Field{Name: "v", Type: mainline.INT64},
		))
		if err != nil {
			log.Fatal(err)
		}
	}
	return eng, events, meta
}

// counter reads the committed counter row, creating it at 0 on first use.
func counter(eng *mainline.Engine, meta *mainline.Table) (int64, mainline.TupleSlot) {
	var (
		val   int64
		slot  mainline.TupleSlot
		found bool
	)
	if err := eng.View(func(tx *mainline.Txn) error {
		return meta.Scan(tx, nil, func(s mainline.TupleSlot, row *mainline.Row) bool {
			val, slot, found = row.Int64("v"), s, true
			return false
		})
	}); err != nil {
		log.Fatal(err)
	}
	if found {
		return val, slot
	}
	if err := eng.Update(func(tx *mainline.Txn) error {
		row := meta.NewRow()
		row.Set("k", int64(0))
		row.Set("v", int64(0))
		var err error
		slot, err = meta.Insert(tx, row)
		return err
	}, mainline.Durable()); err != nil {
		log.Fatal(err)
	}
	return 0, slot
}

// appendEvents commits n durable transactions (n < 0 = until deadline/kill),
// each inserting event c and bumping the counter to c+1.
func appendEvents(eng *mainline.Engine, events, meta *mainline.Table, n int, deadline time.Time) int64 {
	c, slot := counter(eng, meta)
	for i := 0; n < 0 || i < n; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		id := c
		if err := eng.Update(func(tx *mainline.Txn) error {
			row := events.NewRow()
			row.Set("id", id)
			row.Set("payload", fmt.Sprintf("event-%d", id))
			if _, err := events.Insert(tx, row); err != nil {
				return err
			}
			u, err := meta.NewRowFor("v")
			if err != nil {
				return err
			}
			u.Set("v", id+1)
			return meta.Update(tx, slot, u)
		}, mainline.Durable()); err != nil {
			log.Fatal(err)
		}
		c++
		if c%200 == 0 {
			st := eng.Stats()
			fmt.Printf("committed %d durable txns (checkpoints: %d, wal segments truncated: %d)\n",
				c, st.Checkpoint.Taken, st.Checkpoint.SegmentsTruncated)
		}
	}
	return c
}

// check asserts the crash invariant and prints recovery statistics.
func check(eng *mainline.Engine, events, meta *mainline.Table) bool {
	c, _ := counter(eng, meta)
	seen := make(map[int64]bool)
	dup := false
	if err := eng.View(func(tx *mainline.Txn) error {
		return events.Scan(tx, []string{"id"}, func(_ mainline.TupleSlot, row *mainline.Row) bool {
			id := row.Int64("id")
			if seen[id] {
				dup = true
				return false
			}
			seen[id] = true
			return true
		})
	}); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("recovered: counter=%d events=%d | checkpoint seq %d (%d rows), tail: %d txns / %d records, torn=%v\n",
		c, len(seen), st.Recovery.CheckpointSeq, st.Recovery.CheckpointRows,
		st.Recovery.TailTxnsApplied, st.Recovery.TailRecordsApplied, st.Recovery.TornTail)
	switch {
	case dup:
		fmt.Println("FAIL: duplicate event id")
	case int64(len(seen)) != c:
		fmt.Printf("FAIL: %d events for counter %d\n", len(seen), c)
	default:
		for id := int64(0); id < c; id++ {
			if !seen[id] {
				fmt.Printf("FAIL: missing event %d\n", id)
				return false
			}
		}
		fmt.Println("invariant holds: events are exactly {0..counter-1}")
		return true
	}
	return false
}

func run(dir string, seconds int) {
	eng, events, meta := open(dir)
	var deadline time.Time
	if seconds > 0 {
		deadline = time.Now().Add(time.Duration(seconds) * time.Second)
	}
	c := appendEvents(eng, events, meta, -1, deadline)
	// Only reached on a clean deadline exit; a SIGKILL never gets here.
	fmt.Printf("clean stop at %d txns\n", c)
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
}

func verify(dir string) bool {
	eng, events, meta := open(dir)
	defer eng.Close()
	// Guard against vacuous success: if the workload died before ever
	// committing, an empty directory would satisfy the invariant
	// trivially and a broken run phase would still turn CI green.
	if !eng.Stats().Recovery.Bootstrapped {
		fmt.Println("FAIL: data directory has no recovered state — did the run phase ever start?")
		return false
	}
	if c, _ := counter(eng, meta); c == 0 {
		fmt.Println("FAIL: counter is 0 — the workload never committed")
		return false
	}
	return check(eng, events, meta)
}

func demo(txns int) {
	dir, err := os.MkdirTemp("", "mainline-crashrecovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, events, meta := open(dir)
	appendEvents(eng, events, meta, txns, time.Time{})
	info, err := eng.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint %d: %d rows, %d bytes, %d WAL segments truncated\n",
		info.Seq, info.Rows, info.BytesWritten, info.SegmentsRemoved)
	appendEvents(eng, events, meta, txns/3, time.Time{}) // post-checkpoint tail
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restarting from the data directory...")

	eng2, events2, meta2 := open(dir)
	defer eng2.Close()
	if !check(eng2, events2, meta2) {
		log.Fatal("demo verification failed")
	}
	st := eng2.Stats()
	if st.Recovery.CheckpointSeq == 0 {
		log.Fatal("restart did not anchor on a checkpoint")
	}
	fmt.Println("crash recovery demo passed")
}
