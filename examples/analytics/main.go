// Analytics-on-OLTP: run a write-heavy workload, let the background
// pipeline freeze cold blocks, and execute analytical scans directly over
// the engine's Arrow memory while new transactions keep arriving — the
// serverless-HTAP picture the paper closes §5 with.
package main

import (
	"fmt"
	"log"
	"time"

	"mainline"
	"mainline/internal/arrow"
)

func main() {
	eng, err := mainline.Open(
		mainline.WithBackground(),
		mainline.WithColdThreshold(20*time.Millisecond),
		mainline.WithTransformPeriod(10*time.Millisecond),
		mainline.WithGCPeriod(5*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	orders, err := eng.CreateTable("orders", mainline.NewSchema(
		mainline.Field{Name: "o_id", Type: mainline.INT64},
		mainline.Field{Name: "region", Type: mainline.STRING},
		mainline.Field{Name: "amount", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}

	regions := []string{"north-region", "south-region", "east-region", "west-region"}
	insert := func(from, to int) {
		err := eng.Update(func(tx *mainline.Txn) error {
			row := orders.NewRow()
			for i := from; i < to; i++ {
				row.Reset()
				row.Set("o_id", int64(i))
				row.Set("region", regions[i%len(regions)])
				row.Set("amount", int64(i%500))
				if _, err := orders.Insert(tx, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Phase 1: bulk OLTP ingest.
	insert(0, 20000)
	// Give the background pipeline time to cool and freeze the data.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		states := eng.BlockStates("orders")
		if states[3] > 0 && states[0] == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	states := eng.BlockStates("orders")
	fmt.Printf("after cooldown, block states [hot cooling freezing frozen]: %v\n", states)

	// Phase 2: analytics over engine memory. Frozen blocks are scanned in
	// place (no version checks, no copies); the export API hands back raw
	// Arrow arrays in a read-only transaction's snapshot.
	var batches []*mainline.RecordBatch
	var frozen, materialized int
	if err := eng.View(func(tx *mainline.Txn) error {
		var err error
		batches, frozen, materialized, err = orders.ExportBatches(tx)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan sources: %d zero-copy blocks, %d materialized\n", frozen, materialized)
	total := int64(0)
	byRegion := map[string]int64{}
	for _, rb := range batches {
		amounts := rb.Column("amount")
		region := rb.Column("region")
		sum, err := arrow.SumInt64(amounts)
		if err != nil {
			log.Fatal(err)
		}
		total += sum
		for i := 0; i < rb.NumRows; i++ {
			byRegion[region.Str(i)] += amounts.Int64(i)
		}
	}
	fmt.Printf("total amount: %d\n", total)
	for _, r := range regions {
		fmt.Printf("  %-13s %d\n", r, byRegion[r])
	}

	// Phase 2b: the same aggregation through the vectorized scan API —
	// predicate pushdown runs typed kernels directly over the frozen Arrow
	// buffers, and blocks whose zone maps cannot match are pruned without
	// being touched.
	var bigOrders, bigAmount int64
	if err := eng.View(func(tx *mainline.Txn) error {
		return orders.ScanBatches(tx, []string{"amount"}, mainline.Ge("amount", 400), func(b *mainline.Batch) bool {
			am := b.Column("amount")
			for i := 0; i < b.Len(); i++ {
				bigOrders++
				bigAmount += b.Int64(am, i)
			}
			return true
		})
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vectorized scan: %d orders with amount >= 400, totalling %d\n", bigOrders, bigAmount)

	// A point lookup outside every block's id range is answered by zone
	// maps alone — no block data is touched.
	if err := eng.View(func(tx *mainline.Txn) error {
		return orders.Filter(tx, mainline.Eq("o_id", int64(10_000_000)), nil,
			func(mainline.TupleSlot, *mainline.Row) bool { return true })
	}); err != nil {
		log.Fatal(err)
	}
	sc := eng.Stats().Scan
	fmt.Printf("scan stats: %d blocks in place, %d versioned, %d pruned by zone maps\n",
		sc.BlocksFrozen, sc.BlocksVersioned, sc.BlocksPruned)

	// Phase 3: writes keep working — the touched block flips back to hot
	// and the pipeline re-freezes it later.
	if err := eng.Update(func(tx *mainline.Txn) error {
		var firstSlot mainline.TupleSlot
		if err := orders.Scan(tx, []string{"o_id"}, func(slot mainline.TupleSlot, _ *mainline.Row) bool {
			firstSlot = slot
			return false
		}); err != nil {
			return err
		}
		u, err := orders.NewRowFor("amount")
		if err != nil {
			return err
		}
		u.Set("amount", int64(999999))
		return orders.Update(tx, firstSlot, u)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a write, block states: %v (one block thawed)\n", eng.BlockStates("orders"))
	st := eng.Stats().Transform
	fmt.Printf("pipeline stats: %d groups compacted, %d tuples moved, %d blocks frozen\n",
		st.GroupsCompacted, st.TuplesMoved, st.BlocksFrozen)
}
