// Analytics-on-OLTP: run a write-heavy workload, let the background
// pipeline freeze cold blocks, and execute analytical scans directly over
// the engine's Arrow memory while new transactions keep arriving — the
// serverless-HTAP picture the paper closes §5 with.
package main

import (
	"fmt"
	"log"
	"time"

	"mainline"
	"mainline/internal/arrow"
)

func main() {
	eng, err := mainline.Open(mainline.Options{
		Background:      true,
		ColdThreshold:   20 * time.Millisecond,
		TransformPeriod: 10 * time.Millisecond,
		GCPeriod:        5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	orders, err := eng.CreateTable("orders", mainline.NewSchema(
		mainline.Field{Name: "o_id", Type: mainline.INT64},
		mainline.Field{Name: "region", Type: mainline.STRING},
		mainline.Field{Name: "amount", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}

	regions := []string{"north-region", "south-region", "east-region", "west-region"}
	insert := func(from, to int) {
		tx := eng.Begin()
		row := orders.NewRow()
		for i := from; i < to; i++ {
			row.Reset()
			row.SetInt64(0, int64(i))
			row.SetVarlen(1, []byte(regions[i%len(regions)]))
			row.SetInt64(2, int64(i%500))
			if _, err := orders.Insert(tx, row); err != nil {
				log.Fatal(err)
			}
		}
		eng.Commit(tx)
	}

	// Phase 1: bulk OLTP ingest.
	insert(0, 20000)
	// Give the background pipeline time to cool and freeze the data.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		states := eng.BlockStates("orders")
		if states[3] > 0 && states[0] == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	states := eng.BlockStates("orders")
	fmt.Printf("after cooldown, block states [hot cooling freezing frozen]: %v\n", states)

	// Phase 2: analytics over engine memory. Frozen blocks are scanned in
	// place (no version checks, no copies); the export API hands back raw
	// Arrow arrays.
	mgr, _, _, cat := eng.Internals()
	tbl := cat.Table("orders")
	tx := mgr.Begin()
	batches, frozen, materialized, err := tbl.ExportBatches(tx)
	mgr.Commit(tx, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan sources: %d zero-copy blocks, %d materialized\n", frozen, materialized)
	total := int64(0)
	byRegion := map[string]int64{}
	for _, rb := range batches {
		amounts := rb.Column("amount")
		region := rb.Column("region")
		sum, err := arrow.SumInt64(amounts)
		if err != nil {
			log.Fatal(err)
		}
		total += sum
		for i := 0; i < rb.NumRows; i++ {
			byRegion[region.Str(i)] += amounts.Int64(i)
		}
	}
	fmt.Printf("total amount: %d\n", total)
	for _, r := range regions {
		fmt.Printf("  %-13s %d\n", r, byRegion[r])
	}

	// Phase 3: writes keep working — the touched block flips back to hot
	// and the pipeline re-freezes it later.
	tx2 := eng.Begin()
	proj, _ := orders.ProjectionOf("amount")
	row := proj.NewRow()
	row.SetInt64(0, 999999)
	var firstSlot mainline.TupleSlot
	scanProj, _ := orders.ProjectionOf("o_id")
	_ = orders.Scan(tx2, scanProj, func(slot mainline.TupleSlot, r *mainline.Row) bool {
		firstSlot = slot
		return false
	})
	if err := orders.Update(tx2, firstSlot, row); err != nil {
		log.Fatal(err)
	}
	eng.Commit(tx2)
	fmt.Printf("after a write, block states: %v (one block thawed)\n", eng.BlockStates("orders"))
	st := eng.TransformStats()
	fmt.Printf("pipeline stats: %d groups compacted, %d tuples moved, %d blocks frozen\n",
		st.GroupsCompacted, st.TuplesMoved, st.BlocksFrozen)
}
