package mainline

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/wal"
)

func accountsSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "owner", Type: STRING, Nullable: true},
		Field{Name: "balance", Type: INT64},
	)
}

func insertAccount(t *testing.T, eng *Engine, tbl *Table, id, balance int64) TupleSlot {
	t.Helper()
	var slot TupleSlot
	if err := eng.Update(func(tx *Txn) error {
		row := tbl.NewRow()
		row.Set("id", id)
		row.Set("owner", fmt.Sprintf("owner-%d", id))
		row.Set("balance", balance)
		var err error
		slot, err = tbl.Insert(tx, row)
		return err
	}, Durable()); err != nil {
		t.Fatal(err)
	}
	return slot
}

func sumBalances(t *testing.T, eng *Engine, tbl *Table) (count int, total int64) {
	t.Helper()
	if err := eng.View(func(tx *Txn) error {
		return tbl.Scan(tx, []string{"balance"}, func(_ TupleSlot, row *Row) bool {
			count++
			total += row.Int64("balance")
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	return count, total
}

// TestDataDirKillAndRestart is the acceptance round trip: open with
// WithDataDir, load data, checkpoint, commit more transactions, "SIGKILL"
// (abandon the engine without Close), reopen, and observe (a) all
// committed data visible, (b) only the post-checkpoint WAL tail replayed,
// (c) pre-checkpoint WAL segments deleted, and (d) each checkpoint table
// file readable back as a standalone Arrow IPC stream.
func TestDataDirKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir), WithWALSegmentSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	var slots []TupleSlot
	const preRows = 120
	for i := 0; i < preRows; i++ {
		slots = append(slots, insertAccount(t, eng, tbl, int64(i), 1000))
	}

	walDir := filepath.Join(dir, "wal")
	preSegs, err := wal.ListSegments(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(preSegs) < 2 {
		t.Fatalf("expected segment rotation before checkpoint, got %d segments", len(preSegs))
	}

	info, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != preRows || info.Tables != 1 {
		t.Fatalf("checkpoint info = %+v", info)
	}
	// The first checkpoint retains its covered segments: recovery can fall
	// back one checkpoint, which is only sound while the log still covers
	// everything after the previous snapshot (here: genesis). Truncation
	// happens when the NEXT checkpoint supersedes this one.
	maxPre := preSegs[len(preSegs)-1].Seq
	postSegs, err := wal.ListSegments(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(postSegs) < len(preSegs) {
		t.Fatalf("first checkpoint deleted fallback segments: %d -> %d", len(preSegs), len(postSegs))
	}

	// (d) the checkpoint table file is a standalone Arrow IPC stream.
	f, err := os.Open(filepath.Join(info.Dir, fmt.Sprintf("t-%d.arrow", tbl.ID)))
	if err != nil {
		t.Fatal(err)
	}
	at, err := arrow.ReadTable(f)
	f.Close()
	if err != nil {
		t.Fatalf("checkpoint file not readable as Arrow IPC: %v", err)
	}
	if at.NumRows() != preRows {
		t.Fatalf("checkpoint stream has %d rows, want %d", at.NumRows(), preRows)
	}

	// Post-checkpoint tail: inserts, an update of a pre-checkpoint row
	// (exercises the slot sidecar), and a delete.
	const postInserts = 30
	for i := 0; i < postInserts; i++ {
		insertAccount(t, eng, tbl, int64(1000+i), 500)
	}
	if err := eng.Update(func(tx *Txn) error {
		u, err := tbl.NewRowFor("balance")
		if err != nil {
			return err
		}
		u.Set("balance", int64(7777))
		if err := tbl.Update(tx, slots[3], u); err != nil {
			return err
		}
		return tbl.Delete(tx, slots[4])
	}, Durable()); err != nil {
		t.Fatal(err)
	}
	wantCount := preRows + postInserts - 1
	wantTotal := int64(preRows-2)*1000 + 7777 + int64(postInserts)*500
	if c, tot := sumBalances(t, eng, tbl); c != wantCount || tot != wantTotal {
		t.Fatalf("pre-crash state: %d rows / %d total, want %d / %d", c, tot, wantCount, wantTotal)
	}
	postTxns := postInserts + 1 // the update+delete txn

	// "SIGKILL": abandon the engine without Close. Background loops are
	// off and every commit was durable, so the files are a crash image.
	// A real kill releases the flock with the process; the in-process
	// simulation must drop it by hand.
	eng.dirLock()
	eng2, err := Open(WithDataDir(dir), WithWALSegmentSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	tbl2 := eng2.Table("accounts")
	if tbl2 == nil {
		t.Fatal("table not rehydrated from catalog.json")
	}

	// (a) all committed data visible.
	if c, tot := sumBalances(t, eng2, tbl2); c != wantCount || tot != wantTotal {
		t.Fatalf("post-restart state: %d rows / %d total, want %d / %d", c, tot, wantCount, wantTotal)
	}

	// (b) only the post-checkpoint tail was replayed.
	st := eng2.Stats()
	if !st.Recovery.Bootstrapped {
		t.Fatal("recovery stats say nothing was bootstrapped")
	}
	if st.Recovery.CheckpointSeq != info.Seq {
		t.Fatalf("bootstrapped from checkpoint %d, want %d", st.Recovery.CheckpointSeq, info.Seq)
	}
	if st.Recovery.CheckpointRows != preRows {
		t.Fatalf("checkpoint restored %d rows, want %d", st.Recovery.CheckpointRows, preRows)
	}
	if st.Recovery.TailTxnsApplied != postTxns {
		t.Fatalf("tail replayed %d txns, want exactly the %d post-checkpoint ones", st.Recovery.TailTxnsApplied, postTxns)
	}
	if st.Recovery.ReanchorSeq <= info.Seq {
		t.Fatalf("bootstrap did not re-anchor (reanchor seq %d)", st.Recovery.ReanchorSeq)
	}

	// (c) pre-checkpoint WAL segments are deleted once the re-anchor
	// checkpoint supersedes the manual one: every surviving segment is
	// newer than every pre-checkpoint segment.
	remaining, err := wal.ListSegments(walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range remaining {
		if s.Seq <= maxPre {
			t.Fatalf("pre-checkpoint segment %d survived the superseding checkpoint", s.Seq)
		}
	}
	if st.Checkpoint.SegmentsTruncated == 0 {
		t.Fatal("re-anchor checkpoint truncated no segments")
	}

	// The engine keeps working after recovery: more durable commits and a
	// second restart round trip.
	insertAccount(t, eng2, tbl2, 5000, 123)
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	eng3, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	if c, tot := sumBalances(t, eng3, eng3.Table("accounts")); c != wantCount+1 || tot != wantTotal+123 {
		t.Fatalf("second restart: %d rows / %d total, want %d / %d", c, tot, wantCount+1, wantTotal+123)
	}
}

// TestDataDirCrashMidTail covers the pure-WAL crash path: no manual
// checkpoint, torn bytes on the tail, restart recovers the committed
// prefix.
func TestDataDirCrashMidTail(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		insertAccount(t, eng, tbl, int64(i), 10)
	}
	// Tear the active segment: append garbage, as a crash mid-write would.
	segs, err := wal.ListSegments(filepath.Join(dir, "wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %d", err, len(segs))
	}
	f, err := os.OpenFile(segs[len(segs)-1].Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Crash: the first engine is simply abandoned, never Closed. A real
	// kill releases the flock with the process; drop it by hand here.
	eng.dirLock()
	eng2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := eng2.Stats()
	if !st.Recovery.TornTail {
		t.Fatal("torn tail not detected")
	}
	if st.Recovery.TailTxnsApplied != 25 {
		t.Fatalf("replayed %d txns, want 25", st.Recovery.TailTxnsApplied)
	}
	if c, tot := sumBalances(t, eng2, eng2.Table("accounts")); c != 25 || tot != 250 {
		t.Fatalf("recovered %d rows / %d total", c, tot)
	}

	// The recovered tear must have been repaired: committing new work and
	// reopening again must succeed (a retained garbage tail would read as
	// a mid-history hole and refuse this second open).
	insertAccount(t, eng2, eng2.Table("accounts"), 100, 10)
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	eng3, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatalf("reopen after recovered crash failed: %v", err)
	}
	defer eng3.Close()
	if st3 := eng3.Stats(); st3.Recovery.TornTail {
		t.Fatal("repaired tear still reported torn on the next startup")
	}
	if c, tot := sumBalances(t, eng3, eng3.Table("accounts")); c != 26 || tot != 260 {
		t.Fatalf("post-repair state: %d rows / %d total, want 26 / 260", c, tot)
	}
}

// TestBackgroundCheckpointer verifies WithCheckpointInterval drives
// checkpoints and truncation without manual calls.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(
		WithDataDir(dir),
		WithBackground(),
		WithCheckpointInterval(10*time.Millisecond),
		WithWALSegmentSize(2048),
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		insertAccount(t, eng, tbl, int64(i), 1)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := eng.Stats(); st.Checkpoint.Taken >= 1 && st.Checkpoint.LastSeq >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never ran: %+v", eng.Stats().Checkpoint)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice stays safe with the checkpointer wired in.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// And the data survives.
	eng2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if c, _ := sumBalances(t, eng2, eng2.Table("accounts")); c != 50 {
		t.Fatalf("recovered %d rows, want 50", c)
	}
}

// TestRecoverOwnWALRejected pins the ErrRecoverOwnWAL footgun check for
// both WAL flavors.
func TestRecoverOwnWALRejected(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	eng, err := Open(WithWAL(logPath, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.CreateTable("t", accountsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(logPath); !errors.Is(err, ErrRecoverOwnWAL) {
		t.Fatalf("Recover(own log) = %v, want ErrRecoverOwnWAL", err)
	}
	// A different (even missing) path is still allowed.
	if err := eng.Recover(filepath.Join(dir, "other.log")); err != nil {
		t.Fatalf("Recover(other) = %v", err)
	}

	dir2 := t.TempDir()
	eng2, err := Open(WithDataDir(dir2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	segs, err := wal.ListSegments(filepath.Join(dir2, "wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %d", err, len(segs))
	}
	if err := eng2.Recover(segs[0].Path); !errors.Is(err, ErrRecoverOwnWAL) {
		t.Fatalf("Recover(own segment) = %v, want ErrRecoverOwnWAL", err)
	}
	// A symlink from elsewhere to a live segment resolves to the same
	// inode and must be rejected too.
	link := filepath.Join(t.TempDir(), "sneaky.log")
	if err := os.Symlink(segs[0].Path, link); err != nil {
		t.Skipf("symlink: %v", err)
	}
	if err := eng2.Recover(link); !errors.Is(err, ErrRecoverOwnWAL) {
		t.Fatalf("Recover(symlink to own segment) = %v, want ErrRecoverOwnWAL", err)
	}
	// Even a foreign log is rejected on a data-dir engine: replay would
	// bypass the WAL and the imported rows would not survive a crash.
	if err := eng2.Recover(logPath); !errors.Is(err, ErrRecoverDataDir) {
		t.Fatalf("Recover(foreign log) on data-dir engine = %v, want ErrRecoverDataDir", err)
	}
}

// TestDataDirExclusiveLock pins the flock: a second engine cannot open a
// live data directory, and Close releases it.
func TestDataDirExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithDataDir(dir)); err == nil {
		t.Fatal("second Open of a live data directory succeeded")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	eng2.Close()
}

// TestCheckpointIntervalRequiresDataDir pins the option validation.
func TestCheckpointIntervalRequiresDataDir(t *testing.T) {
	if _, err := Open(WithCheckpointInterval(time.Second)); err == nil {
		t.Fatal("WithCheckpointInterval without WithDataDir accepted")
	}
}

// TestDataDirExclusiveWithWAL pins the option conflict.
func TestDataDirExclusiveWithWAL(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(WithDataDir(dir), WithWAL(filepath.Join(dir, "w.log"), 0)); err == nil {
		t.Fatal("WithDataDir+WithWAL accepted")
	}
	if _, err := Open(); err != nil { // plain open unaffected
		t.Fatal(err)
	}
}

// TestCheckpointWithoutDataDir pins ErrNoDataDir.
func TestCheckpointWithoutDataDir(t *testing.T) {
	eng, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Checkpoint(); !errors.Is(err, ErrNoDataDir) {
		t.Fatalf("Checkpoint() = %v, want ErrNoDataDir", err)
	}
}

// TestFallbackAfterSuccessorTruncation pins the retention rule that makes
// the checkpoint fallback sound: after checkpoint N+1 truncates N's
// segments, corrupting N+1 must still leave a fully recoverable directory,
// because the WAL retains everything after N's snapshot.
func TestFallbackAfterSuccessorTruncation(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir), WithWALSegmentSize(2048))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		insertAccount(t, eng, tbl, int64(i), 10)
	}
	if _, err := eng.Checkpoint(); err != nil { // seq 1
		t.Fatal(err)
	}
	for i := 40; i < 70; i++ {
		insertAccount(t, eng, tbl, int64(i), 10)
	}
	info2, err := eng.Checkpoint() // seq 2: truncates seq 1's segments
	if err != nil {
		t.Fatal(err)
	}
	if info2.SegmentsRemoved == 0 {
		t.Fatal("successor checkpoint truncated nothing")
	}
	for i := 70; i < 80; i++ {
		insertAccount(t, eng, tbl, int64(i), 10)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest checkpoint's data file.
	path := filepath.Join(info2.Dir, fmt.Sprintf("t-%d.arrow", tbl.ID))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(WithDataDir(dir), WithWALSegmentSize(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	st := eng2.Stats()
	if st.Recovery.CheckpointSeq != 1 || st.Recovery.CheckpointFallbacks != 1 {
		t.Fatalf("anchored on seq %d with %d fallbacks, want seq 1 / 1 fallback",
			st.Recovery.CheckpointSeq, st.Recovery.CheckpointFallbacks)
	}
	if c, tot := sumBalances(t, eng2, eng2.Table("accounts")); c != 80 || tot != 800 {
		t.Fatalf("fallback recovery lost data: %d rows / %d total, want 80 / 800", c, tot)
	}
}

// TestTornMiddleSegmentRefusesOpen pins the hole-in-history check: a torn
// segment followed by segments holding records must fail Open instead of
// recovering over the gap.
func TestTornMiddleSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir), WithWALSegmentSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		insertAccount(t, eng, tbl, int64(i), 10)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.ListSegments(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Tear the tail off a middle segment.
	mid := segs[len(segs)/2]
	if err := os.Truncate(mid.Path, mid.Size-5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithDataDir(dir)); err == nil {
		t.Fatal("Open recovered over a mid-history gap")
	}
}

// TestCheckpointerWithoutBackground pins that WithCheckpointInterval works
// without WithBackground — a configured interval is never a silent no-op.
func TestCheckpointerWithoutBackground(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir), WithCheckpointInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("accounts", accountsSchema())
	if err != nil {
		t.Fatal(err)
	}
	insertAccount(t, eng, tbl, 1, 1)
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Checkpoint.Taken == 0 {
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never ran without WithBackground")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentCreateTablePersistence pins the serialized CreateTable +
// catalog.json install: concurrent creators must all land in the durable
// catalog, and a reopened engine must know every table the WAL could
// reference.
func TestConcurrentCreateTablePersistence(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			tbl, err := eng.CreateTable(fmt.Sprintf("t%d", i), accountsSchema())
			if err != nil {
				errs <- err
				return
			}
			errs <- eng.Update(func(tx *Txn) error {
				row := tbl.NewRow()
				row.Set("id", int64(i))
				row.Set("balance", int64(i))
				_, err := tbl.Insert(tx, row)
				return err
			}, Durable())
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	for i := 0; i < n; i++ {
		tbl := eng2.Table(fmt.Sprintf("t%d", i))
		if tbl == nil {
			t.Fatalf("table t%d missing after restart", i)
		}
		if c, _ := sumBalances(t, eng2, tbl); c != 1 {
			t.Fatalf("table t%d has %d rows, want 1", i, c)
		}
	}
}
