package mainline

import (
	"path/filepath"
	"testing"
	"time"
)

// TestStatsLatencyPopulated drives a durable workload through a data
// directory and asserts every published distribution the subsystems feed
// actually accumulated samples — the engine-level contract behind the
// /metrics exposition.
func TestStatsLatencyPopulated(t *testing.T) {
	dir := t.TempDir()
	var logged []SlowOp
	eng, err := Open(
		WithDataDir(filepath.Join(dir, "data")),
		WithBackground(),
		WithSlowOpThreshold(time.Nanosecond), // capture everything
		WithSlowOpLog(func(sp SlowOp) { logged = append(logged, sp) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tbl, err := eng.CreateTable("t", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "v", Type: INT64},
	))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := tbl.CreateIndex("by_id", "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx, err := eng.Begin(Durable())
		if err != nil {
			t.Fatal(err)
		}
		row, err := tbl.NewRowFor("id", "v")
		if err != nil {
			t.Fatal(err)
		}
		row.Set("id", int64(i))
		row.Set("v", int64(i*i))
		if _, err := tbl.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.View(func(tx *Txn) error {
		_, _, err := tx.GetBy(idx, nil, int64(7))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	s := eng.Stats()
	checks := []struct {
		name string
		h    HistSnapshot
	}{
		{"Commit", s.Latency.Commit},
		{"CommitCritical", s.Latency.CommitCritical},
		{"WALSync", s.Latency.WALSync},
		{"WALGroupTxns", s.Latency.WALGroupTxns},
		{"WALGroupBytes", s.Latency.WALGroupBytes},
		{"Checkpoint", s.Latency.Checkpoint},
		{"CheckpointTable", s.Latency.CheckpointTable},
		{"IndexLookup", s.Latency.IndexLookup},
	}
	for _, c := range checks {
		if c.h.Count == 0 {
			t.Errorf("Stats().Latency.%s empty after durable workload", c.name)
		}
		if p50, p99 := c.h.Quantile(0.50), c.h.Quantile(0.99); p99 < p50 {
			t.Errorf("%s: p99 %d < p50 %d", c.name, p99, p50)
		}
	}
	if s.Latency.Commit.Count < 50 {
		t.Errorf("Commit count %d, want >= 50", s.Latency.Commit.Count)
	}
	if s.Duty.WALFlush.Runs == 0 {
		t.Errorf("WAL flush duty never ran")
	}
	if s.Duty.Checkpoint.Runs == 0 {
		t.Errorf("checkpoint duty never ran")
	}

	// Slow-op plumbing: 1ns threshold captures every commit, the ring
	// returns them newest first, and the logger saw each capture.
	ops := eng.SlowOps()
	if len(ops) == 0 {
		t.Fatal("no slow ops at 1ns threshold")
	}
	if len(logged) == 0 {
		t.Error("WithSlowOpLog saw no spans")
	}
	var commitSpans int
	for _, op := range ops {
		if op.Kind == "commit" {
			commitSpans++
			if len(op.Phases) == 0 {
				t.Error("commit span without phases")
			}
		}
	}
	if commitSpans == 0 {
		t.Error("no commit spans in ring")
	}

	h := eng.Health()
	if h.LastCheckpointAge < 0 {
		t.Errorf("LastCheckpointAge %v after explicit checkpoint", h.LastCheckpointAge)
	}

	// Raising the threshold stops capture.
	eng.SetSlowOpThreshold(time.Hour)
	before := eng.Health().SlowOps
	if err := eng.Update(func(tx *Txn) error {
		row, err := tbl.NewRowFor("id", "v")
		if err != nil {
			return err
		}
		row.Set("id", int64(1000))
		row.Set("v", int64(0))
		_, err = tbl.Insert(tx, row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if after := eng.Health().SlowOps; after != before {
		t.Errorf("capture count moved %d -> %d with 1h threshold", before, after)
	}
}
