package mainline

// Cold-tier concurrency stress: scans, batch scans, and indexed reads
// race EvictAll and writer-forced rethaws over a tiny cache budget, in
// barriered iterations so TSan gets clean happens-before edges (the PR 6
// HTAP stress pattern). Every reader verifies snapshot integrity — a row
// must show either its original amount or a complete writer value, never
// a torn mix — and each iteration ends with an exact equivalence check
// against the accumulated write history, followed by a refreeze so the
// next round evicts again.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mainline/internal/storage"
	"mainline/internal/transform"
)

// stressStripe selects the rows the writer updates.
func stressStripe(id int64) bool { return id%97 == 13 }

// stressPayload is the deterministic payload the fixture inserted.
func stressPayload(id int64) (string, bool) {
	if id%9 == 0 {
		return "", true
	}
	return "pay-" + strings.Repeat("v", int(id%7)) + "-tail", false
}

func TestColdTierConcurrentStress(t *testing.T) {
	eng, tbl, _ := coldFixture(t, 1<<15) // tiny budget: constant cache churn
	idx := tbl.Index("by_id")
	if idx == nil {
		t.Fatal("index missing")
	}
	const total = coldBlocks * coldPerBlock

	iters, scanners := 12, 3
	if raceEnabled {
		iters, scanners = 5, 2
	}
	if testing.Short() {
		iters = 3
	}

	// amounts holds the last committed write per stripe id; only the
	// single writer goroutine mutates it, and only between barriers.
	amounts := map[int64]int64{}
	expectAmount := func(id int64) int64 {
		if v, ok := amounts[id]; ok {
			return v
		}
		return id % 500
	}

	// checkRow verifies one materialized row against the snapshot
	// invariant: payload is immutable; amount is the original value or a
	// complete writer value (id*1e6 + k), never a torn mix.
	checkRow := func(id int64, payload string, null bool, amount int64) error {
		wantPay, wantNull := stressPayload(id)
		if null != wantNull || (!null && payload != wantPay) {
			return fmt.Errorf("id %d: payload %q/%v, want %q/%v", id, payload, null, wantPay, wantNull)
		}
		if amount == id%500 {
			return nil
		}
		if !stressStripe(id) || amount/1_000_000 != id {
			return fmt.Errorf("id %d: torn amount %d", id, amount)
		}
		return nil
	}

	scanPass := func() error {
		return eng.View(func(tx *Txn) error {
			seen := 0
			if err := tbl.Scan(tx, nil, func(_ TupleSlot, row *Row) bool {
				seen++
				if err := checkRow(row.Int64("id"), row.String("payload"), row.Null("payload"), row.Int64("amount")); err != nil {
					t.Error(err)
					return false
				}
				return true
			}); err != nil {
				return err
			}
			if seen != total {
				return fmt.Errorf("scan saw %d rows, want %d", seen, total)
			}
			res, err := tbl.Aggregate(tx, NewQuery().CountAll())
			if err != nil {
				return err
			}
			if res.Count(0, 0) != total {
				return fmt.Errorf("aggregate counted %d rows, want %d", res.Count(0, 0), total)
			}
			return nil
		})
	}

	batchPass := func() error {
		return eng.View(func(tx *Txn) error {
			seen := 0
			return tbl.ScanBatches(tx, nil, nil, func(b *Batch) bool {
				id, pl, am := b.Column("id"), b.Column("payload"), b.Column("amount")
				for i := 0; i < b.Len(); i++ {
					seen++
					var pay string
					if !b.IsNull(pl, i) {
						pay = b.String(pl, i)
					}
					if err := checkRow(b.Int64(id, i), pay, b.IsNull(pl, i), b.Int64(am, i)); err != nil {
						t.Error(err)
						return false
					}
				}
				return true
			})
		})
	}

	pointPass := func(seed int64) error {
		return eng.View(func(tx *Txn) error {
			out := tbl.NewRow()
			for k := int64(0); k < 32; k++ {
				id := (seed*131 + k*61) % total
				target := (id/1000)*1000 + id%coldPerBlock // map into a populated range
				_, ok, err := tx.GetBy(idx, out, target)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("GetBy(%d) missed", target)
				}
				if err := checkRow(out.Int64("id"), out.String("payload"), out.Null("payload"), out.Int64("amount")); err != nil {
					return err
				}
			}
			return nil
		})
	}

	// writePass updates the stripe through the index — point writes into
	// evicted blocks force the rethaw path under the readers' feet.
	writePass := func(iter int) error {
		k := int64(iter + 1)
		for blk := 0; blk < coldBlocks; blk++ {
			for i := 0; i < coldPerBlock; i++ {
				id := int64(blk*1000 + i)
				if !stressStripe(id) {
					continue
				}
				v := id*1_000_000 + k
				err := eng.Update(func(tx *Txn) error {
					out := tbl.NewRow()
					slot, ok, err := tx.GetBy(idx, out, id)
					if err != nil {
						return err
					}
					if !ok {
						return fmt.Errorf("writer: GetBy(%d) missed", id)
					}
					out.Set("amount", v)
					return tbl.Update(tx, slot, out)
				})
				if err != nil {
					return err
				}
				amounts[id] = v
			}
		}
		return nil
	}

	refreeze := func() {
		for i := 0; i < 3; i++ {
			eng.RunGC()
		}
		for i, blk := range tbl.Blocks() {
			if blk.State() != storage.StateHot || blk.HasActiveVersions() {
				continue
			}
			mode := transform.ModeGather
			if i%2 == 1 {
				mode = transform.ModeDictionary
			}
			blk.SetState(storage.StateFreezing)
			if err := transform.GatherBlock(blk, mode); err != nil {
				t.Fatal(err)
			}
		}
	}

	for iter := 0; iter < iters; iter++ {
		if _, err := eng.Admin().EvictAll(); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		errs := make(chan error, scanners+4)
		for s := 0; s < scanners; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				if s%2 == 0 {
					errs <- scanPass()
				} else {
					errs <- batchPass()
				}
			}(s)
		}
		wg.Add(1)
		go func(iter int) {
			defer wg.Done()
			errs <- pointPass(int64(iter))
		}(iter)
		wg.Add(1)
		go func(iter int) {
			defer wg.Done()
			errs <- writePass(iter)
		}(iter)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-evict mid-flight: races fetches, rethaws, and the cache.
			for k := 0; k < 3; k++ {
				if _, err := eng.Admin().EvictAll(); err != nil {
					errs <- err
					return
				}
				runtime.Gosched()
			}
			errs <- nil
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}

		// Barrier: exact equivalence against the accumulated write history.
		if err := eng.View(func(tx *Txn) error {
			seen := 0
			return tbl.Scan(tx, nil, func(_ TupleSlot, row *Row) bool {
				seen++
				id := row.Int64("id")
				if got, want := row.Int64("amount"), expectAmount(id); got != want {
					t.Fatalf("iter %d: id %d amount %d, want %d", iter, id, got, want)
				}
				return true
			})
		}); err != nil {
			t.Fatal(err)
		}

		refreeze()
	}

	if st := eng.Stats().Tier; st.Evictions == 0 || st.Rethaws == 0 || st.Fetches == 0 {
		t.Fatalf("stress never exercised the tier: %+v", st)
	}
}
