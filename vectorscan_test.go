package mainline

import (
	"strings"
	"testing"

	"mainline/internal/storage"
	"mainline/internal/transform"
)

// scanFixture builds a 4-block table (int64 id, string payload, int64
// amount) with 1000-spaced id ranges per block and freezes everything.
func scanFixture(t testing.TB, blocks, perBlock int) (*Engine, *Table) {
	t.Helper()
	eng, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	tbl, err := eng.CreateTable("events", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "payload", Type: STRING, Nullable: true},
		Field{Name: "amount", Type: INT64},
	))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		err := eng.Update(func(tx *Txn) error {
			row := tbl.NewRow()
			for i := 0; i < perBlock; i++ {
				id := int64(b*1000 + i)
				row.Reset()
				row.Set("id", id)
				if id%9 == 0 {
					row.Set("payload", nil)
				} else {
					row.Set("payload", "payload-"+strings.Repeat("x", int(id%7))+"-tail")
				}
				row.Set("amount", id%500)
				if _, err := tbl.Insert(tx, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		blk := tbl.Blocks()[len(tbl.Blocks())-1]
		blk.SetInsertHead(blk.Layout.NumSlots)
	}
	// Freeze each block in place (no compaction, so every block keeps its
	// distinct id range — what the zone-map assertions rely on).
	for i := 0; i < 3; i++ {
		eng.RunGC()
	}
	for _, blk := range tbl.Blocks() {
		if blk.HasActiveVersions() {
			t.Fatal("version chains not pruned; cannot freeze")
		}
		blk.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(blk, transform.ModeGather); err != nil {
			t.Fatal(err)
		}
	}
	return eng, tbl
}

// TestFilterMatchesScan cross-checks Filter against a brute-force Scan for
// every public predicate builder.
func TestFilterMatchesScan(t *testing.T) {
	eng, tbl := scanFixture(t, 4, 200)
	preds := []struct {
		name  string
		pred  *Pred
		match func(id int64, payload string, null bool) bool
	}{
		{"eq-int", Eq("id", 1042), func(id int64, _ string, _ bool) bool { return id == 1042 }},
		{"between", Between("id", 150, 2050), func(id int64, _ string, _ bool) bool { return id >= 150 && id <= 2050 }},
		{"lt", Lt("id", 180), func(id int64, _ string, _ bool) bool { return id < 180 }},
		{"ge", Ge("id", 3100), func(id int64, _ string, _ bool) bool { return id >= 3100 }},
		{"gt-amount", Gt("amount", 400), func(id int64, _ string, _ bool) bool { return id%500 > 400 }},
		{"eq-str", Eq("payload", "payload--tail"), func(_ int64, p string, null bool) bool { return !null && p == "payload--tail" }},
		{"le-str", Le("payload", "payload-xx-tail"), func(_ int64, p string, null bool) bool { return !null && p <= "payload-xx-tail" }},
	}
	err := eng.View(func(tx *Txn) error {
		for _, pc := range preds {
			want := map[int64]bool{}
			if err := tbl.Scan(tx, nil, func(_ TupleSlot, row *Row) bool {
				if pc.match(row.Int64("id"), row.String("payload"), row.Null("payload")) {
					want[row.Int64("id")] = true
				}
				return true
			}); err != nil {
				return err
			}
			got := map[int64]bool{}
			if err := tbl.Filter(tx, pc.pred, nil, func(_ TupleSlot, row *Row) bool {
				got[row.Int64("id")] = true
				return true
			}); err != nil {
				return err
			}
			if len(got) != len(want) {
				t.Fatalf("%s: want %d rows, got %d", pc.name, len(want), len(got))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("%s: missing id %d", pc.name, id)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZoneMapPruningStats asserts the frozen/pruned split the acceptance
// criteria require: a predicate selecting one block's id range must prune
// the other frozen blocks without taking their in-place read counter
// (BlocksFrozen counts exactly the blocks that took it), and a predicate
// outside every range must prune everything.
func TestZoneMapPruningStats(t *testing.T) {
	eng, tbl := scanFixture(t, 4, 200)
	before := eng.Stats().Scan
	var n int
	if err := eng.View(func(tx *Txn) error {
		return tbl.Filter(tx, Between("id", 2000, 2049), nil, func(TupleSlot, *Row) bool {
			n++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats().Scan
	if n != 50 {
		t.Fatalf("matched %d rows, want 50", n)
	}
	if p := after.BlocksPruned - before.BlocksPruned; p != 3 {
		t.Fatalf("pruned %d blocks, want 3", p)
	}
	if f := after.BlocksFrozen - before.BlocksFrozen; f != 1 {
		t.Fatalf("took the in-place read counter on %d blocks, want 1", f)
	}
	if e := after.TuplesEmitted - before.TuplesEmitted; e != 50 {
		t.Fatalf("emitted %d tuples, want 50", e)
	}

	// No block holds id 9999: the scan must not touch a single block.
	before = eng.Stats().Scan
	if err := eng.View(func(tx *Txn) error {
		return tbl.Filter(tx, Eq("id", 9999), nil, func(TupleSlot, *Row) bool {
			t.Fatal("impossible predicate matched")
			return false
		})
	}); err != nil {
		t.Fatal(err)
	}
	after = eng.Stats().Scan
	if p := after.BlocksPruned - before.BlocksPruned; p != 4 {
		t.Fatalf("pruned %d blocks, want 4", p)
	}
	if f := after.BlocksFrozen - before.BlocksFrozen; f != 0 {
		t.Fatalf("pruned scan took the in-place read counter on %d blocks", f)
	}
}

// TestScanBatchesPublicAPI drives the batch API end to end: column
// resolution, typed accessors, null handling, zero-copy frozen batches.
func TestScanBatchesPublicAPI(t *testing.T) {
	eng, tbl := scanFixture(t, 2, 100)
	var total int64
	var nulls, rows, frozenBatches int
	err := eng.View(func(tx *Txn) error {
		return tbl.ScanBatches(tx, []string{"amount", "payload"}, nil, func(b *Batch) bool {
			if b.Frozen() {
				frozenBatches++
			}
			am, pl := b.Column("amount"), b.Column("payload")
			if am < 0 || pl < 0 {
				t.Fatal("column resolution failed")
			}
			if b.Column("id") >= 0 {
				t.Fatal("unprojected column resolved")
			}
			for i := 0; i < b.Len(); i++ {
				rows++
				total += b.Int64(am, i)
				if b.IsNull(pl, i) {
					nulls++
				} else if !strings.HasPrefix(b.String(pl, i), "payload-") {
					t.Fatalf("bad payload %q", b.String(pl, i))
				}
			}
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 200 || frozenBatches != 2 {
		t.Fatalf("rows=%d frozenBatches=%d", rows, frozenBatches)
	}
	var wantTotal int64
	var wantNulls int
	for b := 0; b < 2; b++ {
		for i := 0; i < 100; i++ {
			id := int64(b*1000 + i)
			wantTotal += id % 500
			if id%9 == 0 {
				wantNulls++
			}
		}
	}
	if total != wantTotal || nulls != wantNulls {
		t.Fatalf("total=%d want %d; nulls=%d want %d", total, wantTotal, nulls, wantNulls)
	}
}

// TestPredCompileErrors checks the typed error paths of predicate
// compilation.
func TestPredCompileErrors(t *testing.T) {
	eng, tbl := scanFixture(t, 1, 10)
	cases := []*Pred{
		Eq("nope", 1),         // unknown column
		Eq("id", "a string"),  // type mismatch: string vs int column
		Gt("payload", 42),     // type mismatch: int vs varlen column
		Between("id", 1, "x"), // mixed operand types
	}
	_ = eng.View(func(tx *Txn) error {
		for i, p := range cases {
			if err := tbl.Filter(tx, p, nil, func(TupleSlot, *Row) bool { return true }); err == nil {
				t.Fatalf("case %d: expected compile error", i)
			}
			if err := tbl.ScanBatches(tx, nil, p, func(*Batch) bool { return true }); err == nil {
				t.Fatalf("case %d: expected compile error (batches)", i)
			}
		}
		return nil
	})
}

// TestFilterHotPath exercises predicate pushdown over an un-frozen table
// (columnar scratch path), including a narrow projection that omits the
// predicate column.
func TestFilterHotPath(t *testing.T) {
	eng, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("hot", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "name", Type: STRING},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(tx *Txn) error {
		row := tbl.NewRow()
		for i := 0; i < 3000; i++ { // spans multiple hot chunks
			row.Reset()
			row.Set("id", i)
			row.Set("name", "n-"+strings.Repeat("y", i%5))
			if _, err := tbl.Insert(tx, row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := eng.View(func(tx *Txn) error {
		return tbl.Filter(tx, Between("id", 1500, 1502), []string{"name"}, func(_ TupleSlot, row *Row) bool {
			got = append(got, row.String("name"))
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "n-" || got[1] != "n-y" || got[2] != "n-yy" {
		t.Fatalf("hot filter got %v", got)
	}
}
