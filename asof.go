package mainline

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"mainline/internal/arrow"
	"mainline/internal/checkpoint"
	"mainline/internal/checkpoint/manifestlog"
)

var asofCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Time travel: every tiered checkpoint commits a version record into
// the manifest log (<DataDir>/MANIFEST.log) referencing that snapshot's
// table content as content-addressed chunk objects in the object store.
// AsOf resolves a timestamp to the version that served it and streams
// the frozen chunks back — reads go to the store, never the live
// tables, so historical scans cost the engine nothing.

// Snapshot is a read-only historical database version resolved by
// Engine.AsOf. It is immutable: the chunks it references are
// content-addressed objects no later checkpoint rewrites, so a Snapshot
// stays readable for as long as its version is not pruned.
type Snapshot struct {
	eng *Engine
	rec *manifestlog.VersionRecord
}

// AsOf resolves the newest committed snapshot version at or before ts
// (a commit timestamp, as returned by Txn.CommitTs or recorded in
// CheckpointInfo.SnapshotTs). Versions are created by checkpoints on an
// engine opened with both WithDataDir and an object store; without
// those it returns ErrNoDataDir / ErrNoObjectStore. A ts earlier than
// all retained history returns ErrNoSuchVersion; a ts whose covering
// version was pruned returns ErrVersionPruned.
func (e *Engine) AsOf(ts uint64) (*Snapshot, error) {
	if e.manifest == nil {
		if e.opts.DataDir == "" {
			return nil, ErrNoDataDir
		}
		return nil, ErrNoObjectStore
	}
	rec, err := e.manifest.Resolve(ts)
	if err != nil {
		return nil, err
	}
	return &Snapshot{eng: e, rec: rec}, nil
}

// Version returns the snapshot's version number (its checkpoint
// sequence).
func (s *Snapshot) Version() uint64 { return s.rec.Version }

// SnapshotTs returns the snapshot's consistency point: every commit at
// or below it is visible, nothing newer is.
func (s *Snapshot) SnapshotTs() uint64 { return s.rec.SnapshotTs }

// Tables lists the table names captured in this version.
func (s *Snapshot) Tables() []string {
	names := make([]string, 0, len(s.rec.Tables))
	for _, t := range s.rec.Tables {
		names = append(names, t.Name)
	}
	return names
}

// TableRows returns the row count of the named table in this version
// (ok false when the version has no such table).
func (s *Snapshot) TableRows(name string) (int64, bool) {
	if t := s.table(name); t != nil {
		return t.Rows, true
	}
	return 0, false
}

func (s *Snapshot) table(name string) *checkpoint.TableChunks {
	for i := range s.rec.Tables {
		if s.rec.Tables[i].Name == name {
			return &s.rec.Tables[i]
		}
	}
	return nil
}

// ScanTable streams the named table's content at this version as Arrow
// record batches, fetching each chunk from the object store and
// verifying its size and CRC-32C against the manifest record. fn
// returning an error stops the scan.
func (s *Snapshot) ScanTable(name string, fn func(*RecordBatch) error) error {
	t := s.table(name)
	if t == nil {
		return fmt.Errorf("mainline: version %d has no table %q", s.rec.Version, name)
	}
	for i := range t.Chunks {
		if err := s.scanChunk(t, &t.Chunks[i], fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanTableRange streams only the chunks that may hold rows with the
// named integer column in [min, max], using the zone maps recorded in
// the manifest — pruning happens before any object-store read, so a
// selective historical query over a bottomless table fetches only the
// chunks it needs. Returns how many chunks were read and how many the
// zones pruned.
func (s *Snapshot) ScanTableRange(name, col string, min, max int64, fn func(*RecordBatch) error) (read, pruned int, err error) {
	t := s.table(name)
	if t == nil {
		return 0, 0, fmt.Errorf("mainline: version %d has no table %q", s.rec.Version, name)
	}
	ci := -1
	for i, f := range t.Fields {
		if f.Name == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, 0, fmt.Errorf("mainline: version %d table %q has no column %q", s.rec.Version, name, col)
	}
	for i := range t.Chunks {
		c := &t.Chunks[i]
		if !c.MightMatchRange(ci, min, max) {
			pruned++
			continue
		}
		if err := s.scanChunk(t, c, fn); err != nil {
			return read, pruned, err
		}
		read++
	}
	return read, pruned, nil
}

// scanChunk fetches, verifies, decodes, and delivers one chunk.
func (s *Snapshot) scanChunk(t *checkpoint.TableChunks, c *checkpoint.ChunkRef, fn func(*RecordBatch) error) error {
	data, err := s.eng.tier.Store().Get(c.Key)
	if err != nil {
		return fmt.Errorf("mainline: fetching chunk %s of %s@%d: %w", c.Key, t.Name, s.rec.Version, err)
	}
	if int64(len(data)) != c.Size || crc32.Checksum(data, asofCRCTable) != c.CRC {
		return fmt.Errorf("mainline: chunk %s of %s@%d corrupt (size %d/%d)", c.Key, t.Name, s.rec.Version, len(data), c.Size)
	}
	rd := arrow.NewReader(bytes.NewReader(data))
	for {
		rb, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("mainline: decoding chunk %s: %w", c.Key, err)
		}
		if err := fn(rb); err != nil {
			return err
		}
	}
}

// PruneSnapshots drops all but the newest keep versions from the
// manifest log and deletes the chunk objects no retained version
// references. The prune record commits (and fsyncs) before any object
// is deleted, so a crash mid-prune can only over-retain objects — an
// installed version never references a deleted one. Returns how many
// versions were pruned and how many objects deleted. keep < 1 keeps 1.
func (a Admin) PruneSnapshots(keep int) (versionsPruned, objectsDeleted int, err error) {
	e := a.eng
	if e.manifest == nil {
		return 0, 0, ErrNoObjectStore
	}
	if keep < 1 {
		keep = 1
	}
	retained := e.manifest.Versions()
	if len(retained) <= keep {
		return 0, 0, nil
	}
	doomed := make([]uint64, 0, len(retained)-keep)
	for _, v := range retained[:len(retained)-keep] {
		doomed = append(doomed, v.Version)
	}
	// Compute the orphan set BEFORE the prune record lands: afterwards
	// the doomed versions are flagged pruned and no longer distinguish
	// "referenced only by doomed" from "referenced by nothing".
	orphans := e.manifest.UnreferencedKeys(doomed)
	if err := e.manifest.AppendPrune(doomed); err != nil {
		return 0, 0, err
	}
	store := e.tier.Store()
	for _, key := range orphans {
		// Best-effort: a failed delete leaves an unreferenced object
		// behind; the next prune retries nothing (the key is already
		// unreferenced), so report the error.
		if derr := store.Delete(key); derr != nil {
			return len(doomed), objectsDeleted, derr
		}
		objectsDeleted++
	}
	return len(doomed), objectsDeleted, nil
}
