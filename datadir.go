package mainline

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mainline/internal/checkpoint"
	"mainline/internal/checkpoint/manifestlog"
	"mainline/internal/fsutil"
	"mainline/internal/objstore"
	"mainline/internal/storage"
	"mainline/internal/wal"
)

// Data directory layout:
//
//	<dir>/catalog.json      — persisted schema catalog (atomic rename)
//	<dir>/wal/wal-<seq>.log — rotating WAL segments
//	<dir>/checkpoints/<seq>/ — Arrow IPC checkpoints (see internal/checkpoint)
func (e *Engine) walDir() string      { return filepath.Join(e.opts.DataDir, "wal") }
func (e *Engine) ckptDir() string     { return filepath.Join(e.opts.DataDir, "checkpoints") }
func (e *Engine) catalogPath() string { return filepath.Join(e.opts.DataDir, "catalog.json") }

// CheckpointInfo summarizes one checkpoint taken via Engine.Checkpoint.
type CheckpointInfo struct {
	// Seq is the checkpoint sequence number.
	Seq uint64
	// SnapshotTs is the snapshot timestamp the checkpoint captured: every
	// commit at or below it is in the checkpoint files, everything beyond
	// stays in the WAL tail.
	SnapshotTs uint64
	// Tables and Rows count what was captured.
	Tables int
	Rows   int64
	// BytesWritten is the checkpoint's on-disk footprint.
	BytesWritten int64
	// SegmentsRemoved is how many WAL segments the checkpoint released.
	SegmentsRemoved int
	// Dir is the installed checkpoint directory.
	Dir string
}

// Checkpoint takes a durable snapshot now: every table is scanned through
// a read-only transaction and written as a standalone Arrow IPC file plus
// manifest (atomically installed), then WAL segments wholly covered by the
// snapshot are deleted. Returns ErrNoDataDir without WithDataDir and
// ErrEngineClosed after Close. Safe to call concurrently with transactions;
// concurrent Checkpoint calls serialize.
func (e *Engine) Checkpoint() (CheckpointInfo, error) {
	if e.opts.DataDir == "" {
		return CheckpointInfo{}, ErrNoDataDir
	}
	// Hold off Close for the duration so the log manager stays usable for
	// truncation.
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return CheckpointInfo{}, ErrEngineClosed
	}
	// A degraded engine must not checkpoint: the snapshot could capture
	// commits the wedged log never made durable, and the subsequent WAL
	// truncation would then delete the only durable copy of older state.
	if e.degraded.Load() {
		return CheckpointInfo{}, e.degradedErr()
	}
	return e.checkpointLocked()
}

// checkpointLocked runs one checkpoint under the checkpoint mutex; the
// caller holds closeMu.RLock (or is the bootstrap, before Open returns).
func (e *Engine) checkpointLocked() (CheckpointInfo, error) {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	// The WAL is truncated only through the PREVIOUS retained checkpoint's
	// snapshot, not the new one's: recovery falls back one checkpoint on
	// checksum failure, and the fallback is only sound while the log still
	// covers everything after the older snapshot. Log retention is
	// therefore one full checkpoint interval, and a checkpoint's segments
	// are released by its successor.
	prevSnapshot := e.ckptLastTs.Load()
	t0 := time.Now()
	// With a cold tier attached the checkpoint is tiered: table content
	// is additionally uploaded as content-addressed chunk objects, and —
	// only after the checkpoint installs — committed as a version record
	// in the manifest log, where AsOf finds it.
	var store objstore.Store
	if e.tier != nil && e.manifest != nil {
		store = e.tier.Store()
	}
	info, chunks, err := checkpoint.TakeTiered(e.fsys, e.ckptDir(), e.cat, e.mgr, e.obs.ckptTable, store)
	if err != nil {
		e.ckptFailed.Add(1)
		return CheckpointInfo{}, err
	}
	if store != nil {
		rec := &manifestlog.VersionRecord{
			Version:         info.Seq,
			SnapshotTs:      info.SnapshotTs,
			LastTs:          info.LastTs,
			CreatedUnixNano: time.Now().UnixNano(),
			Tables:          chunks,
		}
		if err := e.manifest.AppendVersion(rec); err != nil {
			// The checkpoint itself installed fine — recovery is intact —
			// but the version never became visible to AsOf. Surface the
			// failure; the caller's retry takes the next sequence number.
			e.ckptFailed.Add(1)
			return CheckpointInfo{}, err
		}
	}
	d := time.Since(t0)
	e.obs.ckpt.Record(d)
	e.obs.ckptDuty.Observe(d)
	e.ckptLastWall.Store(time.Now().UnixNano())
	removed := 0
	if e.logMgr != nil {
		// A truncation error leaves extra (harmless, replayable) segments
		// behind; the checkpoint itself is installed, so don't fail.
		removed, _ = e.logMgr.Truncate(prevSnapshot)
	}
	e.ckptTaken.Add(1)
	e.ckptRows.Add(info.Rows)
	e.ckptBytes.Add(info.BytesWritten)
	e.ckptSegsTruncated.Add(int64(removed))
	e.ckptLastSeq.Store(info.Seq)
	e.ckptLastTs.Store(info.SnapshotTs)
	return CheckpointInfo{
		Seq:             info.Seq,
		SnapshotTs:      info.SnapshotTs,
		Tables:          info.Tables,
		Rows:            info.Rows,
		BytesWritten:    info.BytesWritten,
		SegmentsRemoved: removed,
		Dir:             info.Dir,
	}, nil
}

// bootstrapDataDir brings the engine up from its data directory: rehydrate
// the schema catalog, load the newest valid checkpoint, stream-replay the
// WAL tail beyond its snapshot timestamp, re-seed the timestamp counter
// above every retained log record, open the segmented WAL for new commits,
// and finally re-anchor with a fresh checkpoint.
//
// The re-anchor step is load-bearing, not an optimization: WAL records
// address tuples by physical slot, and a rebuild necessarily assigns new
// slots. Taking a checkpoint (whose slot sidecar records the NEW slots)
// and truncating the old segments establishes the invariant that retained
// WAL segments only ever reference the slot space of the newest
// checkpoint — which is exactly what the next recovery will seed its slot
// map from.
func (e *Engine) bootstrapDataDir() error {
	o := &e.opts
	for _, dir := range []string{o.DataDir, e.walDir(), e.ckptDir()} {
		if err := e.fsys.MkdirAll(dir); err != nil {
			return fmt.Errorf("mainline: creating data dir: %w", err)
		}
	}
	// Exclusive ownership: a second process opening the same directory
	// would interleave an independent timestamp counter and slot lineage
	// into the WAL. flock releases on process death, so no stale locks.
	release, err := fsutil.LockDir(o.DataDir)
	if err != nil {
		return fmt.Errorf("mainline: %w", err)
	}
	e.dirLock = release

	// 1. Schema catalog.
	restoredTables, err := e.cat.Load(e.catalogPath())
	if err != nil {
		return err
	}
	for _, t := range restoredTables {
		e.observer.Watch(t.DataTable)
	}

	// 2. Newest valid checkpoint.
	var (
		afterTs uint64
		slotMap = make(map[storage.TupleSlot]storage.TupleSlot)
		maxTs   uint64
	)
	restored, err := checkpoint.Restore(e.ckptDir(), e.cat, e.mgr)
	if err != nil {
		return err
	}
	if restored != nil {
		afterTs = restored.Manifest.SnapshotTs
		slotMap = restored.SlotMap
		maxTs = restored.Manifest.LastTs
		if restored.Manifest.SnapshotTs > maxTs {
			maxTs = restored.Manifest.SnapshotTs
		}
		e.recovery.Bootstrapped = true
		e.recovery.CheckpointSeq = restored.Manifest.Seq
		e.recovery.CheckpointRows = restored.Rows
		e.recovery.CheckpointFallbacks = restored.Fallbacks
		// Seed the "previous checkpoint" watermark so the re-anchor (and
		// the first post-restart checkpoint) truncates through the
		// restored snapshot, not from zero.
		e.ckptLastSeq.Store(restored.Manifest.Seq)
		e.ckptLastTs.Store(restored.Manifest.SnapshotTs)
	}

	// 3. WAL tail, one segment at a time, bounded memory.
	segs, err := wal.ListSegments(e.walDir())
	if err != nil {
		return err
	}
	tables := e.cat.DataTables()
	sealed := make([]wal.SegmentInfo, 0, len(segs))
	tornAt := -1
	var tornPrefix int64
	for i, seg := range segs {
		res, err := wal.ReplayFile(seg.Path, e.mgr, tables, &wal.ReplayOptions{AfterTs: afterTs, SlotMap: slotMap})
		if err != nil {
			return fmt.Errorf("mainline: replaying %s: %w", filepath.Base(seg.Path), err)
		}
		// A crash tears only the last segment that received writes (a
		// failed flush wedges the log manager, and recovered tears are
		// repaired below). A torn segment FOLLOWED by a segment holding
		// records therefore means a hole in the middle of history —
		// applying past it would fabricate a state that never existed, so
		// refuse to open rather than recover silently over the gap.
		if tornAt >= 0 && res.MaxTs > 0 {
			return fmt.Errorf("mainline: WAL segment %s is torn mid-history (%s holds later records) — refusing to recover over the gap",
				filepath.Base(segs[tornAt].Path), filepath.Base(seg.Path))
		}
		if res.TornTail {
			tornAt = i
			tornPrefix = res.CleanPrefix
		}
		e.recovery.Bootstrapped = true
		e.recovery.TailSegments++
		e.recovery.TailTxnsApplied += res.TxnsApplied
		e.recovery.TailTxnsSkipped += res.TxnsSkipped
		e.recovery.TailRecordsApplied += res.RecordsApplied
		e.recovery.TornTail = e.recovery.TornTail || res.TornTail
		if res.MaxTs > maxTs {
			maxTs = res.MaxTs
		}
		seg.MaxTs = res.MaxTs
		sealed = append(sealed, seg)
	}
	if tornAt >= 0 {
		// Repair the tear now that its clean prefix is recovered: truncate
		// the garbage tail so this segment — which outlives the re-anchor
		// checkpoint (it serves the fallback) — does not read as a
		// mid-history hole on the next startup. This is the tail-tolerance
		// rule Postgres and RocksDB default to; the cut size is surfaced
		// in RecoveryStats for operators who need to investigate.
		if err := truncateSegment(segs[tornAt].Path, tornPrefix); err != nil {
			return fmt.Errorf("mainline: repairing torn WAL segment: %w", err)
		}
		e.recovery.TornBytesTruncated = segs[tornAt].Size - tornPrefix
		sealed[tornAt].Size = tornPrefix
	}

	// 4. Post-recovery commits must never collide with retained records.
	e.mgr.AdvanceTimestampTo(maxTs)

	// 4b. Rebuild declared indexes over the recovered state. Declarations
	// were recorded (not built) at catalog load, so the checkpoint restore
	// and WAL replay above ran maintenance-free; one backfill scan per
	// index over the final visible rows reproduces exactly the entries a
	// clean shutdown would have held.
	if err := e.rebuildIndexes(); err != nil {
		return err
	}

	// 5. Segmented WAL for new commits; old segments stay sealed behind it
	// until the re-anchor checkpoint releases them.
	sink, err := wal.OpenSegmentedSinkFS(e.fsys, e.walDir(), o.WALSegmentSize, sealed)
	if err != nil {
		return err
	}
	e.logMgr = wal.NewLogManager(sink)
	e.logMgr.SyncDelay = o.LogSyncDelay
	e.logMgr.Attach(e.mgr)

	// 6. Re-anchor when any prior state was loaded. The checkpoint itself
	// is deferred to Open, which runs it only after the cold tier and
	// manifest log are wired — that way a re-anchor on an engine with an
	// object store commits a manifest version record like every other
	// checkpoint, instead of silently skipping the tiered path.
	e.needReanchor = restored != nil || e.recovery.TailTxnsApplied > 0 || e.recovery.TailTxnsSkipped > 0
	return nil
}

// reanchor takes the bootstrap's deferred re-anchor checkpoint. On
// failure the WAL sink opened in bootstrap step 5 must not leak its
// descriptor and fresh segment.
func (e *Engine) reanchor() error {
	e.needReanchor = false
	info, err := e.checkpointLocked()
	if err != nil {
		_ = e.logMgr.Close()
		e.logMgr = nil
		return fmt.Errorf("mainline: re-anchor checkpoint: %w", err)
	}
	e.recovery.ReanchorSeq = info.Seq
	return nil
}

// rebuildIndexes re-creates and backfills every index declared in the
// persisted catalog. Runs single-threaded during bootstrap, before Open
// returns.
func (e *Engine) rebuildIndexes() error {
	start := time.Now()
	for _, t := range e.cat.Tables() {
		for _, spec := range t.TakeRestoredIndexSpecs() {
			ti, err := t.CreateIndex(spec)
			if err != nil {
				return fmt.Errorf("mainline: rebuilding index %s.%s: %w", t.Name, spec.Name, err)
			}
			tx := e.mgr.Begin()
			n, err := ti.Backfill(tx)
			e.mgr.Commit(tx, nil)
			if err != nil {
				return fmt.Errorf("mainline: rebuilding index %s.%s: %w", t.Name, spec.Name, err)
			}
			e.recovery.IndexesRebuilt++
			e.recovery.IndexEntriesRebuilt += n
		}
	}
	if e.recovery.IndexesRebuilt > 0 {
		e.recovery.IndexRebuildDuration = time.Since(start)
	}
	return nil
}

// truncateSegment cuts a torn WAL segment back to its clean prefix and
// fsyncs the result.
func truncateSegment(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ckptMaxBackoffFactor caps the checkpoint retry backoff at this multiple
// of the configured interval.
const ckptMaxBackoffFactor = 8

// startCheckpointer launches the background checkpoint loop. A failed
// attempt (ENOSPC, a sync error on the checkpoint files) leaves the
// previous checkpoint installed and is RETRIED with bounded exponential
// backoff — checkpoint faults are transient and never degrade the engine;
// the backoff just keeps a persistently full disk from being hammered
// every interval. Success (or a terminal ErrDegraded/ErrEngineClosed)
// resets the delay to the configured interval.
func (e *Engine) startCheckpointer(interval time.Duration) {
	e.ckptStop = make(chan struct{})
	e.ckptDone = make(chan struct{})
	go func() {
		defer close(e.ckptDone)
		delay := interval
		timer := time.NewTimer(delay)
		defer timer.Stop()
		for {
			select {
			case <-e.ckptStop:
				return
			case <-timer.C:
				_, err := e.Checkpoint()
				switch {
				case err == nil, errors.Is(err, ErrDegraded), errors.Is(err, ErrEngineClosed):
					delay = interval
				default:
					// Failures are counted in stats (ckptFailed); back off
					// up to ckptMaxBackoffFactor × interval and try again.
					delay *= 2
					if max := interval * ckptMaxBackoffFactor; delay > max {
						delay = max
					}
				}
				timer.Reset(delay)
			}
		}
	}()
}

// stopCheckpointer halts the background checkpoint loop. It must run
// BEFORE Close acquires the write side of closeMu: an in-flight
// Checkpoint holds the read side, and Go's RWMutex blocks new readers
// once a writer waits — stopping first avoids that deadlock.
func (e *Engine) stopCheckpointer() {
	if e.ckptStop == nil {
		return
	}
	e.ckptStopOnce.Do(func() {
		close(e.ckptStop)
		<-e.ckptDone
	})
}

// ownsWALPath reports whether path refers to the engine's own live log:
// the single WAL file, or any segment of the data directory's WAL.
// Comparison is by file inode (os.SameFile), so symlinks and relative
// paths cannot dodge the check.
func (e *Engine) ownsWALPath(path string) bool {
	st, err := os.Stat(path)
	if err != nil {
		return false
	}
	if e.opts.LogPath != "" {
		if own, err := os.Stat(e.opts.LogPath); err == nil && os.SameFile(st, own) {
			return true
		}
	}
	if e.opts.DataDir != "" {
		// The target's own inode against every live segment file — a
		// symlink from elsewhere resolves to the same inode.
		if segs, err := wal.ListSegments(e.walDir()); err == nil {
			for _, s := range segs {
				if own, err := os.Stat(s.Path); err == nil && os.SameFile(st, own) {
					return true
				}
			}
		}
		// And anything that lives inside the WAL directory itself.
		if parent, err := os.Stat(filepath.Dir(path)); err == nil {
			if walD, err := os.Stat(e.walDir()); err == nil && os.SameFile(parent, walD) {
				return true
			}
		}
	}
	return false
}
