package mainline

import (
	"time"

	"mainline/internal/catalog"
	"mainline/internal/txn"
)

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Transform counts transformation pipeline work (compactions, moves,
	// freezes).
	Transform TransformStats
	// Scan counts scan work across all tables: blocks read in place
	// (frozen) vs through the version chain, blocks pruned by zone maps,
	// and tuples emitted to scan callbacks.
	Scan ScanStats
	// ActiveTxns is the number of in-flight transactions.
	ActiveTxns int
	// WAL reports write-ahead log activity (zero-valued with Enabled
	// false when the engine has no log).
	WAL WALStats
	// Checkpoint reports checkpoint subsystem activity (Enabled false
	// without WithDataDir).
	Checkpoint CheckpointStats
	// Tier reports cold-tier activity — evictions, rethaws, block-cache
	// traffic, object-store volume (Enabled false without an object
	// store).
	Tier TierStats
	// Recovery reports what Open's data-directory bootstrap did
	// (zero-valued when the engine started empty).
	Recovery RecoveryStats
	// Index aggregates engine-managed index activity across all tables.
	Index IndexStats
	// Exec counts analytical-executor work (Table.Aggregate / Table.Join):
	// morsels dispatched to workers, partial aggregates merged, workers
	// launched, rows aggregated, and dictionary fast-path blocks.
	Exec ExecStats
	// Server counts network serving-layer activity (zero-valued with
	// Enabled false when no mainline-serve server is attached to the
	// engine; see internal/server).
	Server ServerStats
	// Latency publishes the engine's latency and size distributions as
	// histogram snapshots (commit path, WAL group commit, checkpoint,
	// GC, queries, index reads). See LatencyStats.
	Latency LatencyStats
	// Duty publishes background-subsystem duty cycles (GC, transform,
	// WAL flusher, checkpointer).
	Duty DutyStats
	// GC publishes garbage-collector progress: retired versions and the
	// watermark lag behind the engine clock.
	GC GCStats
}

// ServerStats counts network serving-layer activity: connection and
// request admission, per-plane request traffic, streamed and ingested
// volume, and rejection/deadline/reap counts. A server registers its
// counters with Admin().SetServerStats; the struct is the /metrics
// payload's data source.
type ServerStats struct {
	// Enabled reports whether a serving layer is attached to this engine.
	Enabled bool
	// Sessions is the number of currently connected sessions;
	// SessionsTotal counts every session ever admitted, and
	// SessionsRejected every connection refused by the session cap (or
	// during drain).
	Sessions         int64
	SessionsTotal    int64
	SessionsRejected int64
	// Requests counts requests dispatched to handlers;
	// RequestsRejected counts requests refused by the global in-flight
	// cap. DeadlineHits counts requests that died at their deadline.
	Requests         int64
	RequestsRejected int64
	DeadlineHits     int64
	// TxnsReaped counts server-side transactions aborted because their
	// session disconnected (or a deadline killed them) before finishing.
	TxnsReaped int64
	// Transactional-plane request counts by kind.
	BeginOps     int64
	CommitOps    int64
	AbortOps     int64
	InsertOps    int64
	UpdateOps    int64
	DeleteOps    int64
	SelectOps    int64
	IndexReadOps int64
	// Analytical-plane request counts and volumes: DoGet streams engine
	// blocks out as Arrow IPC; DoPut ingests client record batches
	// through the transactional write path.
	DoGetOps      int64
	DoPutOps      int64
	BytesStreamed int64
	BytesIngested int64
	RowsStreamed  int64
	RowsIngested  int64
}

// IndexStats aggregates engine-managed index activity: tree sizes, read
// traffic, how much MVCC re-verification the reads performed, and what the
// last recovery's rebuild cost.
type IndexStats struct {
	// Indexes is the number of registered indexes; Entries sums their live
	// (key, slot) pairs, stale entries awaiting deferred removal included.
	Indexes int
	Entries int64
	// Lookups counts point reads (GetBy); RangeScans counts RangeBy /
	// PrefixBy scans.
	Lookups    int64
	RangeScans int64
	// SlotsReverified counts candidate slots re-checked through the
	// version chain; StaleFiltered counts the candidates that check
	// rejected (entry pointing at a version the reader cannot see, or at a
	// re-keyed tuple). A high stale ratio means the GC is lagging the
	// delete rate.
	SlotsReverified int64
	StaleFiltered   int64
	// EntriesPublished counts insertions published at commit;
	// EntriesRetired counts deferred removals that have physically run.
	EntriesPublished int64
	EntriesRetired   int64
	// RebuildIndexes / RebuildEntries / RebuildDuration describe the index
	// rebuild the last data-directory recovery performed (zero when the
	// engine started fresh).
	RebuildIndexes  int
	RebuildEntries  int64
	RebuildDuration time.Duration
}

// WALStats counts write-ahead log activity.
type WALStats struct {
	// Enabled reports whether the engine was opened with a WAL.
	Enabled bool
	// Txns is the number of transactions whose commit records were
	// flushed.
	Txns int64
	// Bytes is the total log bytes written.
	Bytes int64
	// Syncs is the number of fsyncs issued (Txns/Syncs is the achieved
	// group-commit size).
	Syncs int64
}

// CheckpointStats counts checkpoint subsystem activity.
type CheckpointStats struct {
	// Enabled reports whether the engine was opened with WithDataDir.
	Enabled bool
	// Taken is the number of checkpoints installed (the bootstrap
	// re-anchor included); Failed counts attempts that errored.
	Taken  int64
	Failed int64
	// Rows and BytesWritten total the rows and bytes captured across all
	// checkpoints.
	Rows         int64
	BytesWritten int64
	// SegmentsTruncated is the number of WAL segment files deleted
	// because a checkpoint wholly covered them.
	SegmentsTruncated int64
	// LastSeq and LastSnapshotTs identify the newest checkpoint.
	LastSeq        uint64
	LastSnapshotTs uint64
}

// RecoveryStats records what Open's data-directory bootstrap did. All
// fields are fixed once Open returns.
type RecoveryStats struct {
	// Bootstrapped reports whether any prior state (checkpoint or WAL)
	// was found and loaded.
	Bootstrapped bool
	// CheckpointSeq and CheckpointRows describe the checkpoint the
	// bootstrap anchored on (zero when none existed).
	CheckpointSeq  uint64
	CheckpointRows int64
	// CheckpointFallbacks counts newer checkpoints skipped because their
	// manifest or file checksums failed.
	CheckpointFallbacks int
	// TailSegments is how many WAL segment files were scanned.
	TailSegments int
	// TailTxnsApplied counts committed transactions replayed from the WAL
	// tail — with a fresh checkpoint this is only the post-checkpoint
	// work, the quantity the subsystem exists to bound.
	TailTxnsApplied int
	// TailTxnsSkipped counts logged transactions already covered by the
	// checkpoint (their segments straddled the snapshot timestamp).
	TailTxnsSkipped int
	// TailRecordsApplied counts redo records applied from the tail.
	TailRecordsApplied int
	// TornTail reports whether any segment ended mid-record (expected
	// after a crash; the clean prefix was recovered).
	TornTail bool
	// TornBytesTruncated is how many garbage tail bytes the bootstrap cut
	// off the torn segment while repairing it (Postgres/RocksDB-style
	// tail tolerance) — nonzero values on a machine that did not crash
	// deserve investigation.
	TornBytesTruncated int64
	// ReanchorSeq is the checkpoint the bootstrap installed afterwards to
	// re-anchor the slot space (0 when the directory was fresh).
	ReanchorSeq uint64
	// IndexesRebuilt / IndexEntriesRebuilt / IndexRebuildDuration describe
	// the engine-managed index rebuild: every index declared in the
	// persisted catalog is re-created and backfilled from the recovered
	// tables after checkpoint restore + WAL tail replay.
	IndexesRebuilt       int
	IndexEntriesRebuilt  int64
	IndexRebuildDuration time.Duration
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Transform:  e.transformer.Stats(),
		ActiveTxns: e.mgr.ActiveCount(),
		Recovery:   e.recovery,
		Exec:       e.execCounters.Snapshot(),
	}
	for _, t := range e.cat.Tables() {
		s.Scan.Add(t.ScanStatsSnapshot())
		for _, ti := range t.Indexes() {
			c := ti.Counters()
			s.Index.Indexes++
			s.Index.Entries += c.Entries
			s.Index.Lookups += c.Lookups
			s.Index.RangeScans += c.RangeScans
			s.Index.SlotsReverified += c.SlotsReverified
			s.Index.StaleFiltered += c.StaleFiltered
			s.Index.EntriesPublished += c.EntriesPublished
			s.Index.EntriesRetired += c.EntriesRetired
		}
	}
	s.Index.RebuildIndexes = e.recovery.IndexesRebuilt
	s.Index.RebuildEntries = e.recovery.IndexEntriesRebuilt
	s.Index.RebuildDuration = e.recovery.IndexRebuildDuration
	if e.logMgr != nil {
		s.WAL.Enabled = true
		s.WAL.Txns, s.WAL.Bytes, s.WAL.Syncs = e.logMgr.Stats()
	}
	if fn, ok := e.serverStatsFn.Load().(func() ServerStats); ok && fn != nil {
		s.Server = fn()
		s.Server.Enabled = true
	}
	s.Latency = LatencyStats{
		Commit:          e.obs.commit.Snapshot(),
		CommitCritical:  e.obs.commitCrit.Snapshot(),
		CommitLatchWait: e.obs.commitLatch.Snapshot(),
		BeginStampWait:  e.obs.beginStamp.Snapshot(),
		WALSync:         e.obs.walSync.Snapshot(),
		WALGroupTxns:    e.obs.walGroupTxns.Snapshot(),
		WALGroupBytes:   e.obs.walGroupBytes.Snapshot(),
		Checkpoint:      e.obs.ckpt.Snapshot(),
		CheckpointTable: e.obs.ckptTable.Snapshot(),
		GCPass:          e.obs.gcPass.Snapshot(),
		Query:           e.obs.query.Snapshot(),
		IndexLookup:     e.obs.indexLookup.Snapshot(),
	}
	s.Duty = DutyStats{
		GC:         e.obs.gcDuty.Snapshot(),
		Transform:  e.obs.transformDuty.Snapshot(),
		WALFlush:   e.obs.walDuty.Snapshot(),
		Checkpoint: e.obs.ckptDuty.Snapshot(),
	}
	s.Tier = e.tierStats()
	s.GC.Unlinked, s.GC.Deallocated = e.collector.Totals()
	s.GC.WatermarkLag = e.collector.WatermarkLag()
	if e.opts.DataDir != "" {
		s.Checkpoint = CheckpointStats{
			Enabled:           true,
			Taken:             e.ckptTaken.Load(),
			Failed:            e.ckptFailed.Load(),
			Rows:              e.ckptRows.Load(),
			BytesWritten:      e.ckptBytes.Load(),
			SegmentsTruncated: e.ckptSegsTruncated.Load(),
			LastSeq:           e.ckptLastSeq.Load(),
			LastSnapshotTs:    e.ckptLastTs.Load(),
		}
	}
	return s
}

// Admin exposes the wired subsystems that in-module tooling (workload
// loaders, export servers, figure harnesses) programs against directly.
// It replaces the old Engine.Internals quadruple with the two capabilities
// those consumers actually use; external users should not need it.
type Admin struct {
	eng *Engine
}

// Admin returns the engine's administrative surface.
func (e *Engine) Admin() Admin { return Admin{eng: e} }

// TxnManager returns the transaction manager (workload drivers that
// operate on internal tables).
func (a Admin) TxnManager() *txn.Manager { return a.eng.mgr }

// Catalog returns the table registry (export servers, loaders).
func (a Admin) Catalog() *catalog.Catalog { return a.eng.cat }

// SetServerStats registers (or, with nil, detaches) the serving layer's
// counter snapshot; Stats().Server reports it with Enabled set. At most
// one server's counters are visible at a time — a second registration
// replaces the first.
func (a Admin) SetServerStats(fn func() ServerStats) {
	a.eng.serverStatsFn.Store(fn)
}

// SimulateCrash abandons the engine as a process kill would: background
// loops stop WITHOUT final flushes or checkpoints, queued-but-unacked
// commits are dropped (their durability callbacks fail — a real kill
// would vaporize the waiters outright), the data directory lock is
// released so a successor can open the same directory in-process, and
// the engine refuses further use as if Closed. Nothing is synced,
// truncated, or checkpointed on the way out: the on-disk state is a
// crash image. For crash-recovery tests and the chaos harness.
func (a Admin) SimulateCrash() {
	e := a.eng
	e.stopCheckpointer()
	e.stopTierSweeper()
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	if e.opts.Background {
		e.transformer.Stop()
		e.collector.Stop()
	}
	if e.logMgr != nil {
		e.logMgr.Abandon()
	}
	if e.dirLock != nil {
		e.dirLock()
		e.dirLock = nil
	}
}
