package mainline

import (
	"mainline/internal/catalog"
	"mainline/internal/txn"
)

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Transform counts transformation pipeline work (compactions, moves,
	// freezes).
	Transform TransformStats
	// ActiveTxns is the number of in-flight transactions.
	ActiveTxns int
	// WAL reports write-ahead log activity (zero-valued with Enabled
	// false when the engine has no log).
	WAL WALStats
}

// WALStats counts write-ahead log activity.
type WALStats struct {
	// Enabled reports whether the engine was opened with a WAL.
	Enabled bool
	// Txns is the number of transactions whose commit records were
	// flushed.
	Txns int64
	// Bytes is the total log bytes written.
	Bytes int64
	// Syncs is the number of fsyncs issued (Txns/Syncs is the achieved
	// group-commit size).
	Syncs int64
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Transform:  e.transformer.Stats(),
		ActiveTxns: e.mgr.ActiveCount(),
	}
	if e.logMgr != nil {
		s.WAL.Enabled = true
		s.WAL.Txns, s.WAL.Bytes, s.WAL.Syncs = e.logMgr.Stats()
	}
	return s
}

// Admin exposes the wired subsystems that in-module tooling (workload
// loaders, export servers, figure harnesses) programs against directly.
// It replaces the old Engine.Internals quadruple with the two capabilities
// those consumers actually use; external users should not need it.
type Admin struct {
	eng *Engine
}

// Admin returns the engine's administrative surface.
func (e *Engine) Admin() Admin { return Admin{eng: e} }

// TxnManager returns the transaction manager (workload drivers that
// operate on internal tables).
func (a Admin) TxnManager() *txn.Manager { return a.eng.mgr }

// Catalog returns the table registry (export servers, loaders).
func (a Admin) Catalog() *catalog.Catalog { return a.eng.cat }
