package mainline

import (
	"errors"

	"mainline/internal/checkpoint/manifestlog"
	"mainline/internal/core"
	"mainline/internal/index"
	"mainline/internal/storage"
)

// The typed error taxonomy of the public API. API misuse (double commit,
// commit after abort, use after Close) returns one of these instead of
// panicking; match with errors.Is — retry wrappers and the managed Update
// closure wrap them with context.
var (
	// ErrWriteConflict is returned when a transaction tries to write a
	// tuple whose newest version it cannot see — the engine disallows
	// write-write conflicts to avoid cascading rollbacks. Abort and retry
	// with a fresh snapshot (Engine.Update does this automatically).
	ErrWriteConflict = core.ErrWriteConflict
	// ErrNotFound is returned for writes against a tuple whose latest
	// version is deleted or absent.
	ErrNotFound = core.ErrNotFound
	// ErrTxnFinished is returned when operating on a transaction that has
	// already committed or aborted.
	ErrTxnFinished = core.ErrTxnFinished
	// ErrEngineClosed is returned by Begin, View, Update, CreateTable,
	// Recover, and Txn.Commit after Engine.Close.
	ErrEngineClosed = errors.New("mainline: engine closed")
	// ErrReadOnlyTxn is returned for writes through a transaction begun
	// with the ReadOnly option.
	ErrReadOnlyTxn = errors.New("mainline: write in read-only transaction")
	// ErrRecoverOwnWAL is returned by Engine.Recover when the path is the
	// engine's own live log (the single WAL file, or any file inside the
	// data directory's WAL). Replaying a log into the engine that is
	// appending to it would interleave fresh commit timestamps with the
	// replayed history and corrupt the log; recover into an engine whose
	// WAL lives elsewhere (or use WithDataDir, which replays its own tail
	// safely at Open).
	ErrRecoverOwnWAL = errors.New("mainline: recovering the engine's own live WAL")
	// ErrNoDataDir is returned by Engine.Checkpoint when the engine was
	// opened without WithDataDir — there is nowhere durable to write.
	ErrNoDataDir = errors.New("mainline: checkpoint requires WithDataDir")
	// ErrDegraded is returned once the engine has sealed itself into
	// degraded read-only mode after a WAL write or fsync failure: the log
	// can no longer make commits durable, so durable Begins, all writes,
	// and write/durable Commits refuse with this error while reads and
	// non-durable snapshots keep serving. The returned error wraps the
	// root cause (match the errno with errors.Is through the chain).
	// Degraded mode is terminal for the process: restart the engine to
	// recover from the log's durable prefix.
	ErrDegraded = errors.New("mainline: engine degraded (durability lost)")
	// ErrRecoverDataDir is returned by Engine.Recover on engines opened
	// with WithDataDir: replay bypasses the WAL, so the imported
	// transactions would be lost by a crash before the next checkpoint.
	// Data directories recover themselves at Open.
	ErrRecoverDataDir = errors.New("mainline: Recover is not supported with WithDataDir (recovery happens at Open)")
	// ErrNoSuchVersion is returned by Engine.AsOf when the requested
	// timestamp predates all retained history — no committed snapshot
	// version has a snapshot timestamp at or below it.
	ErrNoSuchVersion = manifestlog.ErrNoVersion
	// ErrVersionPruned is returned by Engine.AsOf when the version that
	// served the requested timestamp has been pruned
	// (Admin().PruneSnapshots) and its chunk objects may be deleted.
	ErrVersionPruned = manifestlog.ErrVersionPruned
	// ErrNoObjectStore is returned by the tier surface (Admin().EvictAll,
	// Admin().TierSweep, Engine.AsOf time travel) when the engine was
	// opened without WithObjectStore / WithObjectStoreBackend — there is
	// no cold tier to evict to or read from.
	ErrNoObjectStore = errors.New("mainline: no object store configured")
	// ErrDuplicateColumn is returned when a projection — Table.Scan,
	// Filter, ScanBatches, or NewRowFor column lists — names the same
	// column twice. Projections are positional; a duplicated column would
	// silently alias one value slot under two positions.
	ErrDuplicateColumn = storage.ErrDuplicateColumn
	// ErrInvalidPrefixLen is returned by NewShardedIndex when prefixLen is
	// not positive — shard selection hashes the first prefixLen key bytes,
	// so the length must be at least 1.
	ErrInvalidPrefixLen = index.ErrInvalidPrefixLen
)
