package mainline

// AsOf end-to-end: on an engine with a data dir AND an object store,
// every checkpoint commits a version record to the manifest log whose
// chunks live in the store. AsOf resolves commit timestamps to verified
// historical snapshots served entirely from the store; manifest zone
// maps prune cold chunks before any fetch (counter-asserted); content
// addressing shares unchanged chunks across versions; pruning retires
// old versions and deletes exactly the orphaned objects while retained
// versions stay readable; and the manifest log reloads across an
// engine restart.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"mainline/internal/objstore"
	"mainline/internal/storage"
	"mainline/internal/transform"
)

const (
	// asofRows exceeds the checkpoint's 8192-row batch size so each
	// version spans two chunks: ids [0,8191] and [8192,...]. Mutations in
	// the test touch only the second chunk's id range, so the first chunk
	// is bit-identical across versions and shared by content addressing.
	asofRows      = 10000
	asofChunkRows = 8192
)

type asofContent struct {
	rows      int
	balance   int64
	balanceAt map[int64]int64
}

func readSnapshot(t *testing.T, snap *Snapshot) asofContent {
	t.Helper()
	got := asofContent{balanceAt: map[int64]int64{}}
	err := snap.ScanTable("ledger", func(rb *RecordBatch) error {
		id, note, bal := rb.Column("id"), rb.Column("note"), rb.Column("balance")
		for i := 0; i < rb.NumRows; i++ {
			got.rows++
			got.balance += bal.Int64(i)
			got.balanceAt[id.Int64(i)] = bal.Int64(i)
			if id.Int64(i)%9 == 0 {
				if !note.IsNull(i) {
					return fmt.Errorf("id %d note should be null", id.Int64(i))
				}
			} else if want := fmt.Sprintf("note-%d", id.Int64(i)); note.Str(i) != want {
				return fmt.Errorf("id %d note %q, want %q", id.Int64(i), note.Str(i), want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAsOfTimeTravel(t *testing.T) {
	root := t.TempDir()
	dataDir := filepath.Join(root, "data")
	objDir := filepath.Join(root, "objects")

	openEng := func() (*Engine, *objstore.CountingStore) {
		t.Helper()
		fs, err := objstore.NewFSStore(objDir, nil)
		if err != nil {
			t.Fatal(err)
		}
		cs := objstore.NewCountingStore(fs)
		eng, err := Open(
			WithDataDir(dataDir),
			WithObjectStoreBackend(cs),
			WithTierSweepInterval(time.Hour),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng, cs
	}

	eng, cs := openEng()
	defer func() { eng.Close() }()
	tbl, err := eng.CreateTable("ledger", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "note", Type: STRING, Nullable: true},
		Field{Name: "balance", Type: INT64},
	))
	if err != nil {
		t.Fatal(err)
	}

	var slotHot TupleSlot // slot of id 9001, mutated for version 2
	if err := eng.Update(func(tx *Txn) error {
		row := tbl.NewRow()
		for i := 0; i < asofRows; i++ {
			id := int64(i)
			row.Reset()
			row.Set("id", id)
			if id%9 == 0 {
				row.Set("note", nil)
			} else {
				row.Set("note", fmt.Sprintf("note-%d", id))
			}
			row.Set("balance", id%500)
			slot, err := tbl.Insert(tx, row)
			if err != nil {
				return err
			}
			if id == 9001 {
				slotHot = slot
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Seal and freeze what we can so the checkpoint export exercises the
	// frozen zero-copy path alongside hot materialization.
	blocks := tbl.Blocks()
	last := blocks[len(blocks)-1]
	last.SetInsertHead(last.Layout.NumSlots)
	for i := 0; i < 3; i++ {
		eng.RunGC()
	}
	for i, blk := range blocks {
		if blk.State() != storage.StateHot || blk.HasActiveVersions() {
			continue
		}
		mode := transform.ModeGather
		if i%2 == 1 {
			mode = transform.ModeDictionary
		}
		blk.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(blk, mode); err != nil {
			t.Fatal(err)
		}
	}

	// No version exists yet: nothing to travel to.
	if _, err := eng.AsOf(0); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("AsOf before first checkpoint = %v, want ErrNoSuchVersion", err)
	}

	info1, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	keysV1, err := cs.List("chunk/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keysV1) != 2 {
		t.Fatalf("version 1 uploaded %d chunk objects, want 2", len(keysV1))
	}

	// Version 2: rewrite one row in the SECOND chunk's id range (forcing
	// a thaw if its block froze) and append a row. The first chunk's
	// content is untouched, so its object is shared with version 1.
	if err := eng.Update(func(tx *Txn) error {
		row := tbl.NewRow()
		row.Set("id", int64(9001))
		row.Set("note", "note-9001")
		row.Set("balance", int64(999_999))
		return tbl.Update(tx, slotHot, row)
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(tx *Txn) error {
		row := tbl.NewRow()
		row.Set("id", int64(88888))
		row.Set("note", "note-88888")
		row.Set("balance", int64(777))
		_, err := tbl.Insert(tx, row)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	info2, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Seq <= info1.Seq || info2.SnapshotTs <= info1.SnapshotTs {
		t.Fatalf("checkpoint 2 (%d@%d) does not advance on 1 (%d@%d)",
			info2.Seq, info2.SnapshotTs, info1.Seq, info1.SnapshotTs)
	}
	keysV2, err := cs.List("chunk/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keysV2) != 3 {
		t.Fatalf("store holds %d chunk objects after version 2, want 3 (first chunk shared)", len(keysV2))
	}

	// Each snapshot serves its own consistency point, bit-exactly.
	const wantBase = 2_495_000 // sum of id%500 over ids 0..9999
	snap1, err := eng.AsOf(info1.SnapshotTs)
	if err != nil {
		t.Fatal(err)
	}
	if snap1.Version() != info1.Seq || snap1.SnapshotTs() != info1.SnapshotTs {
		t.Fatalf("snap1 resolved %d@%d, want %d@%d", snap1.Version(), snap1.SnapshotTs(), info1.Seq, info1.SnapshotTs)
	}
	v1 := readSnapshot(t, snap1)
	if v1.rows != asofRows || v1.balance != wantBase || v1.balanceAt[9001] != 9001%500 {
		t.Fatalf("v1 content: rows %d balance %d id9001 %d", v1.rows, v1.balance, v1.balanceAt[9001])
	}
	snap2, err := eng.AsOf(info2.SnapshotTs)
	if err != nil {
		t.Fatal(err)
	}
	v2 := readSnapshot(t, snap2)
	if v2.rows != asofRows+1 || v2.balanceAt[9001] != 999_999 || v2.balanceAt[88888] != 777 {
		t.Fatalf("v2 content: rows %d id9001 %d id88888 %d", v2.rows, v2.balanceAt[9001], v2.balanceAt[88888])
	}
	if rows, ok := snap1.TableRows("ledger"); !ok || rows != int64(asofRows) {
		t.Fatalf("snap1 TableRows = %d, %v", rows, ok)
	}

	// Zone-pruned historical range scan: the first chunk's id zone
	// [0,8191] excludes the probe range, so only the second chunk is
	// fetched from the store.
	gets0 := cs.Gets()
	seen := 0
	read, pruned, err := snap1.ScanTableRange("ledger", "id", 9000, 9500, func(rb *RecordBatch) error {
		seen += rb.NumRows
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if read != 1 || pruned != 1 {
		t.Fatalf("range scan read %d pruned %d, want 1/1", read, pruned)
	}
	if want := asofRows - asofChunkRows; seen != want {
		t.Fatalf("range scan delivered %d rows, want the covering chunk's %d", seen, want)
	}
	if d := cs.Gets() - gets0; d != 1 {
		t.Fatalf("range scan fetched %d objects, want exactly 1 (pruned chunk must not be read)", d)
	}

	// Prune history: v1 goes away and exactly its orphaned second-chunk
	// object is deleted — the shared first chunk survives for v2.
	vp, od, err := eng.Admin().PruneSnapshots(1)
	if err != nil {
		t.Fatal(err)
	}
	if vp != 1 || od != 1 {
		t.Fatalf("PruneSnapshots = %d versions, %d objects; want 1, 1", vp, od)
	}
	keysPruned, err := cs.List("chunk/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keysPruned) != 2 {
		t.Fatalf("chunk objects after prune = %d, want 2", len(keysPruned))
	}
	if _, err := eng.AsOf(info1.SnapshotTs); !errors.Is(err, ErrVersionPruned) {
		t.Fatalf("AsOf(pruned) = %v, want ErrVersionPruned", err)
	}
	snap2b, err := eng.AsOf(info2.SnapshotTs)
	if err != nil {
		t.Fatalf("retained version unreadable after prune: %v", err)
	}
	if got := readSnapshot(t, snap2b); got.rows != v2.rows || got.balance != v2.balance {
		t.Fatalf("retained version content drifted after prune: %+v vs %+v", got, v2)
	}

	// Restart: the manifest log reloads; the retained version still
	// resolves by its timestamp (the re-anchor checkpoint's newer version
	// does not shadow it) and the prune record still holds.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, _ := openEng()
	defer eng2.Close()
	snap3, err := eng2.AsOf(info2.SnapshotTs)
	if err != nil {
		t.Fatal(err)
	}
	if snap3.Version() != info2.Seq {
		t.Fatalf("after reopen AsOf(ts2) resolved version %d, want %d", snap3.Version(), info2.Seq)
	}
	if got := readSnapshot(t, snap3); got.rows != v2.rows || got.balanceAt[9001] != 999_999 {
		t.Fatalf("after reopen v2 content: %+v", got)
	}
	if _, err := eng2.AsOf(info1.SnapshotTs); !errors.Is(err, ErrVersionPruned) {
		t.Fatalf("after reopen AsOf(pruned) = %v, want ErrVersionPruned", err)
	}
	latest, err := eng2.AsOf(^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version() <= info2.Seq {
		t.Fatalf("re-anchor checkpoint did not append a version: latest %d", latest.Version())
	}
	if rows, ok := latest.TableRows("ledger"); !ok || rows != int64(asofRows+1) {
		t.Fatalf("latest version rows = %d, %v", rows, ok)
	}
}
