//go:build race

package mainline_test

// raceEnabled mirrors the in-package race flag for external tests.
const raceEnabled = true
