package mainline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func acctSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "region", Type: INT32},
		Field{Name: "balance", Type: INT64},
		Field{Name: "tag", Type: STRING, Nullable: true},
	)
}

// TestIndexOwnWritesAndAbortRollback pins the write-set protocol: a
// transaction sees its own unpublished index entries (point and range
// reads), an abort publishes nothing, and a commit publishes everything.
func TestIndexOwnWritesAndAbortRollback(t *testing.T) {
	eng := openEngine(t)
	tbl, err := eng.CreateTable("acct", acctSchema())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := tbl.CreateIndex("pk", "id")
	if err != nil {
		t.Fatal(err)
	}

	insert := func(tx *Txn, id int64) {
		t.Helper()
		row := tbl.NewRow()
		row.Set("id", id)
		row.Set("region", 1)
		row.Set("balance", id*10)
		if _, err := tbl.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
	}

	// Uncommitted writes are visible to their own transaction only.
	tx := begin(t, eng)
	insert(tx, 1)
	insert(tx, 2)
	if _, ok, err := tx.GetBy(idx, nil, int64(1)); err != nil || !ok {
		t.Fatalf("own uncommitted insert invisible to GetBy: %v %v", ok, err)
	}
	var seen []int64
	if err := tx.RangeBy(idx, []any{int64(0)}, nil, []string{"id"}, func(_ TupleSlot, row *Row) bool {
		seen = append(seen, row.Int64("id"))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("own uncommitted inserts in range = %v", seen)
	}
	if idx.Len() != 0 {
		t.Fatalf("tree holds %d entries before commit", idx.Len())
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// Abort published nothing — not to the tree, not to readers.
	if idx.Len() != 0 {
		t.Fatalf("abort leaked %d entries", idx.Len())
	}
	if err := eng.View(func(tx *Txn) error {
		if _, ok, _ := tx.GetBy(idx, nil, int64(1)); ok {
			t.Fatal("aborted insert visible through index")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Commit publishes.
	tx2 := begin(t, eng)
	insert(tx2, 3)
	commit(t, tx2)
	if idx.Len() != 1 {
		t.Fatalf("tree holds %d entries after commit, want 1", idx.Len())
	}
	if err := eng.View(func(tx *Txn) error {
		if _, ok, _ := tx.GetBy(idx, nil, int64(3)); !ok {
			t.Fatal("committed insert invisible through index")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexKeyUpdateSnapshots pins re-keying: after an update moves a
// tuple to a new key, an older snapshot still reaches the row under the
// OLD key (and not the new one), a newer snapshot the reverse — both from
// the same trees, by virtue of the visibility re-check.
func TestIndexKeyUpdateSnapshots(t *testing.T) {
	eng := openEngine(t)
	tbl, _ := eng.CreateTable("acct", acctSchema())
	idx, err := tbl.CreateIndex("pk", "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(tx *Txn) error {
		row := tbl.NewRow()
		row.Set("id", int64(100))
		row.Set("region", 1)
		row.Set("balance", int64(5))
		_, err := tbl.Insert(tx, row)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	old := begin(t, eng, ReadOnly()) // snapshot before the re-key
	slot, ok, _ := old.GetBy(idx, nil, int64(100))
	if !ok {
		t.Fatal("row invisible to pre-update snapshot")
	}

	// Re-key 100 -> 200.
	if err := eng.Update(func(tx *Txn) error {
		u, err := tbl.NewRowFor("id")
		if err != nil {
			return err
		}
		u.Set("id", int64(200))
		return tbl.Update(tx, slot, u)
	}); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still sees the row under its OLD key only.
	if _, ok, _ := old.GetBy(idx, nil, int64(100)); !ok {
		t.Fatal("old snapshot lost the row under the old key")
	}
	if _, ok, _ := old.GetBy(idx, nil, int64(200)); ok {
		t.Fatal("old snapshot sees the row under the new key")
	}
	if err := old.Abort(); err != nil {
		t.Fatal(err)
	}

	// A fresh snapshot sees the reverse.
	if err := eng.View(func(tx *Txn) error {
		if _, ok, _ := tx.GetBy(idx, nil, int64(100)); ok {
			t.Fatal("new snapshot sees the stale old-key entry")
		}
		if _, ok, _ := tx.GetBy(idx, nil, int64(200)); !ok {
			t.Fatal("new snapshot misses the row under the new key")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Both entries are physically present until the GC retires the old
	// one; afterwards exactly one remains — no phantom.
	if idx.Len() != 2 {
		t.Fatalf("expected stale+fresh entries before GC, got %d", idx.Len())
	}
	for i := 0; i < 3; i++ {
		eng.RunGC()
	}
	if idx.Len() != 1 {
		t.Fatalf("stale entry survived GC: Len = %d", idx.Len())
	}
	st := eng.Stats().Index
	if st.StaleFiltered == 0 || st.EntriesRetired == 0 {
		t.Fatalf("stats did not observe stale filtering/retirement: %+v", st)
	}
}

// TestIndexRecoveryRebuild proves engine-managed indexes survive a crash:
// declarations persist in catalog.json, and after a SIGKILL-style abandon
// (no Close, flock dropped by hand) + reopen, every index is rebuilt from
// checkpoint restore + WAL tail replay with identical logical content.
func TestIndexRecoveryRebuild(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(WithDataDir(dir), WithWALSegmentSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.CreateTable("acct", acctSchema())
	if err != nil {
		t.Fatal(err)
	}
	pk, err := tbl.CreateIndex("pk", "id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateShardedIndex("reg", 4, "region", "id"); err != nil {
		t.Fatal(err)
	}

	insert := func(id int64) {
		t.Helper()
		if err := eng.Update(func(tx *Txn) error {
			row := tbl.NewRow()
			row.Set("id", id)
			row.Set("region", int32(id%5))
			row.Set("balance", id*3)
			row.Set("tag", fmt.Sprintf("tag-%d", id))
			_, err := tbl.Insert(tx, row)
			return err
		}, Durable()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		insert(int64(i))
	}
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: inserts, a re-key, a delete — all of which
	// the rebuild must reflect.
	for i := 50; i < 80; i++ {
		insert(int64(i))
	}
	if err := eng.Update(func(tx *Txn) error {
		slot, ok, err := tx.GetBy(pk, nil, int64(10))
		if err != nil || !ok {
			return fmt.Errorf("row 10 missing: %v", err)
		}
		u, err := tbl.NewRowFor("id")
		if err != nil {
			return err
		}
		u.Set("id", int64(999))
		if err := tbl.Update(tx, slot, u); err != nil {
			return err
		}
		slot2, ok, err := tx.GetBy(pk, nil, int64(11))
		if err != nil || !ok {
			return fmt.Errorf("row 11 missing: %v", err)
		}
		return tbl.Delete(tx, slot2)
	}, Durable()); err != nil {
		t.Fatal(err)
	}

	enumerate := func(eng *Engine, tbl *Table, idxName string) []string {
		t.Helper()
		var out []string
		err := eng.View(func(tx *Txn) error {
			idx := tbl.Index(idxName)
			if idx == nil {
				return fmt.Errorf("index %q missing", idxName)
			}
			return tx.RangeBy(idx, nil, nil, []string{"id", "region", "balance", "tag"}, func(_ TupleSlot, row *Row) bool {
				out = append(out, fmt.Sprintf("%d|%d|%d|%s", row.Int64("id"), row.Int32("region"), row.Int64("balance"), row.String("tag")))
				return true
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	wantPK := enumerate(eng, tbl, "pk")
	wantReg := enumerate(eng, tbl, "reg")
	if len(wantPK) != 79 { // 80 inserts - 1 delete
		t.Fatalf("pre-crash pk enumeration = %d rows", len(wantPK))
	}

	// "SIGKILL": abandon without Close; a real kill releases the flock
	// with the process, the in-process simulation drops it by hand.
	eng.dirLock()
	eng2, err := Open(WithDataDir(dir), WithWALSegmentSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	tbl2 := eng2.Table("acct")
	if tbl2 == nil {
		t.Fatal("table not rehydrated")
	}
	st := eng2.Stats().Index
	if st.RebuildIndexes != 2 {
		t.Fatalf("RebuildIndexes = %d, want 2", st.RebuildIndexes)
	}
	if st.RebuildEntries != int64(2*len(wantPK)) {
		t.Fatalf("RebuildEntries = %d, want %d", st.RebuildEntries, 2*len(wantPK))
	}
	if st.RebuildDuration <= 0 {
		t.Fatal("RebuildDuration not recorded")
	}
	gotPK := enumerate(eng2, tbl2, "pk")
	gotReg := enumerate(eng2, tbl2, "reg")
	if len(gotPK) != len(wantPK) || len(gotReg) != len(wantReg) {
		t.Fatalf("rebuilt sizes: pk %d/%d, reg %d/%d", len(gotPK), len(wantPK), len(gotReg), len(wantReg))
	}
	for i := range wantPK {
		if gotPK[i] != wantPK[i] {
			t.Fatalf("pk[%d]: got %q want %q", i, gotPK[i], wantPK[i])
		}
	}
	for i := range wantReg {
		if gotReg[i] != wantReg[i] {
			t.Fatalf("reg[%d]: got %q want %q", i, gotReg[i], wantReg[i])
		}
	}

	// Maintenance is live on the rebuilt indexes.
	if err := eng2.Update(func(tx *Txn) error {
		row := tbl2.NewRow()
		row.Set("id", int64(5000))
		row.Set("region", 1)
		row.Set("balance", int64(1))
		_, err := tbl2.Insert(tx, row)
		return err
	}, Durable()); err != nil {
		t.Fatal(err)
	}
	if err := eng2.View(func(tx *Txn) error {
		if _, ok, _ := tx.GetBy(tbl2.Index("pk"), nil, int64(5000)); !ok {
			t.Fatal("post-recovery insert invisible through rebuilt index")
		}
		if _, ok, _ := tx.GetBy(tbl2.Index("pk"), nil, int64(11)); ok {
			t.Fatal("pre-crash deleted row resurrected in rebuilt index")
		}
		if _, ok, _ := tx.GetBy(tbl2.Index("pk"), nil, int64(999)); !ok {
			t.Fatal("pre-crash re-keyed row missing under new key")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexMVCCStress hammers one indexed table with concurrent
// inserters, deleters, aborters, and readers while the GC runs, then
// proves the end state phantom-free. Invariants checked DURING the run:
//
//   - an id whose insert aborted is never reachable through the index;
//   - an id recorded committed before a reader began is found;
//   - an id recorded deleted before a reader began is not found
//     (committed-only visibility both ways).
//
// After the run and GC quiescence: the tree holds exactly one entry per
// live row (deferred removals all executed — no phantom slots).
//
// Under the race detector the in-place update path is excluded (its
// byte-level tearing is deliberate, repaired through the version chain —
// see CI notes); without -race the stress also re-keys rows.
func TestIndexMVCCStress(t *testing.T) {
	eng := openEngine(t)
	tbl, _ := eng.CreateTable("acct", acctSchema())
	idx, err := tbl.CreateShardedIndex("pk", 8, "id")
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		readers      = 4
		perWriter    = 300
		preloadCount = 128
	)

	// Oracle: per-id state recorded AFTER the corresponding commit, so a
	// reader that observes the state before beginning its snapshot has a
	// snapshot ordered after the commit.
	const (
		stAbsent int32 = iota
		stLive
		stDeleted
		stAborted
	)
	var state [writers*perWriter + preloadCount]atomic.Int32

	insertRow := func(tx *Txn, id int64) error {
		row := tbl.NewRow()
		row.Set("id", id)
		row.Set("region", int32(id%7))
		row.Set("balance", id)
		_, err := tbl.Insert(tx, row)
		return err
	}

	for i := 0; i < preloadCount; i++ {
		if err := eng.Update(func(tx *Txn) error { return insertRow(tx, int64(i)) }); err != nil {
			t.Fatal(err)
		}
		state[i].Store(stLive)
	}

	stop := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				eng.RunGC()
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(preloadCount + w*perWriter + i)
				switch i % 4 {
				case 0, 1: // commit an insert; half get deleted again
					if err := eng.Update(func(tx *Txn) error { return insertRow(tx, id) }); err != nil {
						errCh <- err
						return
					}
					state[id].Store(stLive)
					if i%4 == 1 {
						err := eng.Update(func(tx *Txn) error {
							slot, ok, err := tx.GetBy(idx, nil, id)
							if err != nil || !ok {
								return fmt.Errorf("own committed row missing before delete: %v %v", ok, err)
							}
							return tbl.Delete(tx, slot)
						})
						if err != nil {
							errCh <- err
							return
						}
						state[id].Store(stDeleted)
					}
				case 2: // abort an insert
					tx, err := eng.Begin()
					if err != nil {
						errCh <- err
						return
					}
					if err := insertRow(tx, id); err != nil {
						errCh <- err
						return
					}
					if err := tx.Abort(); err != nil {
						errCh <- err
						return
					}
					state[id].Store(stAborted)
				case 3: // delete a preloaded row owned by this writer
					pre := int64(w*(preloadCount/writers) + (i/4)%(preloadCount/writers))
					if state[pre].Load() != stLive {
						continue
					}
					err := eng.Update(func(tx *Txn) error {
						slot, ok, err := tx.GetBy(idx, nil, pre)
						if err != nil {
							return err
						}
						if !ok {
							return nil // already deleted by an earlier round
						}
						return tbl.Delete(tx, slot)
					})
					if err != nil && !errors.Is(err, ErrWriteConflict) {
						errCh <- err
						return
					}
					if err == nil {
						state[pre].Store(stDeleted)
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			total := writers*perWriter + preloadCount
			for i := 0; i < 2000; i++ {
				id := int64((i*2654435761 + r) % total)
				// Read the oracle BEFORE beginning: the snapshot then
				// starts after whatever commit recorded that state.
				st := state[id].Load()
				err := eng.View(func(tx *Txn) error {
					_, ok, err := tx.GetBy(idx, nil, id)
					if err != nil {
						return err
					}
					switch st {
					case stLive:
						if !ok {
							return fmt.Errorf("id %d: committed row invisible", id)
						}
					case stDeleted:
						if ok {
							return fmt.Errorf("id %d: deleted row visible (phantom)", id)
						}
					case stAborted:
						if ok {
							return fmt.Errorf("id %d: aborted insert visible", id)
						}
					}
					return nil
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	gcWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesce the GC so every deferred removal has run, then prove the
	// tree phantom-free: exactly one entry per live row.
	for i := 0; i < 5; i++ {
		eng.RunGC()
	}
	live := 0
	for i := range state {
		if state[i].Load() == stLive {
			live++
		}
	}
	if got := idx.Len(); got != live {
		t.Fatalf("tree holds %d entries, %d rows live — phantom or lost entries", got, live)
	}
	if err := eng.View(func(tx *Txn) error {
		n, err := tbl.CountVisible(tx)
		if err != nil {
			return err
		}
		if n != live {
			return fmt.Errorf("table holds %d rows, oracle says %d", n, live)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats().Index
	if st.Lookups == 0 || st.SlotsReverified == 0 || st.EntriesPublished == 0 || st.EntriesRetired == 0 {
		t.Fatalf("stress exercised no index machinery: %+v", st)
	}
}

// TestIndexMVCCStressRekey adds in-place re-keying updates to the mix —
// excluded under -race (deliberate byte-level tearing of the in-place
// update, repaired via the version chain).
func TestIndexMVCCStressRekey(t *testing.T) {
	if raceEnabled {
		t.Skip("in-place update tearing is deliberate; see CI race-job notes")
	}
	eng := openEngine(t)
	tbl, _ := eng.CreateTable("acct", acctSchema())
	idx, err := tbl.CreateShardedIndex("pk", 8, "id")
	if err != nil {
		t.Fatal(err)
	}
	const rows = 64
	for i := 0; i < rows; i++ {
		if err := eng.Update(func(tx *Txn) error {
			row := tbl.NewRow()
			row.Set("id", int64(i))
			row.Set("region", 1)
			row.Set("balance", int64(i))
			_, err := tbl.Insert(tx, row)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				eng.RunGC()
			}
		}
	}()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint id range and bounces each row
			// between id and id+rows, so every update re-keys.
			lo, hi := w*(rows/4), (w+1)*(rows/4)
			for i := 0; i < 400; i++ {
				base := int64(lo + i%(hi-lo))
				err := eng.Update(func(tx *Txn) error {
					cur := base
					slot, ok, err := tx.GetBy(idx, nil, cur)
					if err != nil {
						return err
					}
					if !ok {
						cur = base + rows
						if slot, ok, err = tx.GetBy(idx, nil, cur); err != nil || !ok {
							return fmt.Errorf("row %d lost (%v)", base, err)
						}
					}
					u, err := tbl.NewRowFor("id")
					if err != nil {
						return err
					}
					next := base + rows
					if cur == next {
						next = base
					}
					u.Set("id", next)
					return tbl.Update(tx, slot, u)
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Readers: every row is always reachable under exactly one of its two
	// keys within one snapshot.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				base := int64((i*31 + r) % rows)
				err := eng.View(func(tx *Txn) error {
					_, okA, err := tx.GetBy(idx, nil, base)
					if err != nil {
						return err
					}
					_, okB, err := tx.GetBy(idx, nil, base+rows)
					if err != nil {
						return err
					}
					if okA == okB {
						return fmt.Errorf("row %d visible under %v keys in one snapshot", base, okA && okB)
					}
					return nil
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	gcWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for i := 0; i < 5; i++ {
		eng.RunGC()
	}
	if got := idx.Len(); got != rows {
		t.Fatalf("tree holds %d entries after quiescence, want %d", got, rows)
	}
}
