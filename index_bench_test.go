package mainline

// Benchmarks for engine-managed indexed reads (ISSUE 5 acceptance): an
// indexed point read (GetBy — tree descent + MVCC re-verification) must
// beat a full vectorized Filter over a >=4-block frozen table by >=10x,
// because the Filter touches every block while the index touches one
// tuple. The range benchmark compares an ordered index sweep against the
// equivalent zone-map-pruned Filter.

import (
	"fmt"
	"testing"

	"mainline/internal/storage"
	"mainline/internal/transform"
)

// indexFixture builds a frozen table of blocks x perBlock rows with
// engine-maintained indexes and globally unique ids (block b holds
// b*perBlock .. (b+1)*perBlock-1).
func indexFixture(t testing.TB, blocks, perBlock int) (*Engine, *Table, *IndexHandle) {
	t.Helper()
	eng, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	tbl, err := eng.CreateTable("events", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "payload", Type: STRING},
		Field{Name: "amount", Type: INT64},
	))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := tbl.CreateIndex("pk", "id")
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		err := eng.Update(func(tx *Txn) error {
			row := tbl.NewRow()
			for i := 0; i < perBlock; i++ {
				id := int64(b*perBlock + i)
				row.Reset()
				row.Set("id", id)
				row.Set("payload", fmt.Sprintf("payload-%08d-some-tail", id))
				row.Set("amount", id%500)
				if _, err := tbl.Insert(tx, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		blk := tbl.Blocks()[len(tbl.Blocks())-1]
		blk.SetInsertHead(blk.Layout.NumSlots)
	}
	for i := 0; i < 3; i++ {
		eng.RunGC()
	}
	for _, blk := range tbl.Blocks() {
		if blk.HasActiveVersions() {
			t.Fatal("version chains not pruned; cannot freeze")
		}
		blk.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(blk, transform.ModeGather); err != nil {
			t.Fatal(err)
		}
	}
	return eng, tbl, idx
}

// Index benchmark geometry: 4 near-full 1 MB blocks (the layout holds
// ~25.9k slots; 20k rows each keeps headroom), so the Filter's surviving
// block still costs a 20k-row kernel pass while the tree descent stays
// logarithmic.
const (
	indexBenchBlocks   = 4
	indexBenchPerBlock = 20000
)

// BenchmarkIndexedGet compares a point read through the engine-managed
// index against the two scan-based ways of answering the same query on a
// 4-block frozen table. Acceptance: indexed >= 10x filter-pushdown.
func BenchmarkIndexedGet(b *testing.B) {
	eng, tbl, idx := indexFixture(b, indexBenchBlocks, indexBenchPerBlock)
	defer eng.Close()
	total := int64(indexBenchBlocks * indexBenchPerBlock)

	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		out, err := tbl.NewRowFor("id", "amount")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			id := int64(i*2654435761) % total
			if id < 0 {
				id += total
			}
			err := eng.View(func(tx *Txn) error {
				_, ok, err := tx.GetBy(idx, out, id)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("id %d missing", id)
				}
				benchSink += out.Int64("amount")
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("filter-pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id := int64(i*2654435761) % total
			if id < 0 {
				id += total
			}
			n := 0
			err := eng.View(func(tx *Txn) error {
				return tbl.Filter(tx, Eq("id", id), []string{"id", "amount"}, func(_ TupleSlot, row *Row) bool {
					benchSink += row.Int64("amount")
					n++
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != 1 {
				b.Fatalf("matched %d rows for id %d", n, id)
			}
		}
	})

	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id := int64(i*2654435761) % total
			if id < 0 {
				id += total
			}
			err := eng.View(func(tx *Txn) error {
				return tbl.Scan(tx, []string{"id", "amount"}, func(_ TupleSlot, row *Row) bool {
					if row.Int64("id") == id {
						benchSink += row.Int64("amount")
						return false
					}
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexedRange sweeps 200 consecutive keys through RangeBy
// against the equivalent zone-map-pruned Filter (the Filter wins the
// bandwidth game inside one block; the index wins ordering and
// cross-block point placement).
func BenchmarkIndexedRange(b *testing.B) {
	eng, tbl, idx := indexFixture(b, indexBenchBlocks, indexBenchPerBlock)
	defer eng.Close()
	total := int64(indexBenchBlocks * indexBenchPerBlock)
	const span = 200

	b.Run("range-by", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := (int64(i) * 977) % (total - span)
			n := 0
			err := eng.View(func(tx *Txn) error {
				return tx.RangeBy(idx, []any{lo}, []any{lo + span}, []string{"amount"}, func(TupleSlot, *Row) bool {
					n++
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != span {
				b.Fatalf("range emitted %d rows", n)
			}
		}
	})

	b.Run("filter-pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := (int64(i) * 977) % (total - span)
			n := 0
			err := eng.View(func(tx *Txn) error {
				return tbl.Filter(tx, Between("id", lo, lo+span-1), []string{"amount"}, func(TupleSlot, *Row) bool {
					n++
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != span {
				b.Fatalf("filter matched %d rows", n)
			}
		}
	})
}
