// Command mainline-chaos is the CI entry point for the fault-injection
// torture harness (internal/workload/chaos). Three modes:
//
//	-mode all    run every scenario at the given seed in-process (faults +
//	             simulated crash + reopen + verify) and exit non-zero on
//	             any lost acked-durable commit or torn state. CI's chaos
//	             job runs this for each of its fixed seeds.
//	-mode run    run one scenario's workload and keep the process alive
//	             until killed, journaling every acked commit (fsynced) to
//	             -acked. CI SIGKILLs this process mid-workload.
//	-mode verify reopen the directory after a real kill and check every
//	             journaled ack survived, untorn.
//
// The run/verify pair is the cross-process SIGKILL test: unlike -mode
// all's simulated crash, nothing of the first process survives but the
// disk.
package main

import (
	"flag"
	"fmt"
	"os"

	"mainline/internal/workload/chaos"
)

func main() {
	var (
		mode     = flag.String("mode", "all", "all | run | verify")
		dir      = flag.String("dir", "", "engine data directory (required)")
		scenario = flag.String("scenario", "sigkill", "fsync-fail | enospc | torn-write | sigkill | objstore (run mode)")
		seed     = flag.Int64("seed", 1, "fault/payload/crash-point seed")
		workers  = flag.Int("workers", 4, "concurrent durable committers")
		ops      = flag.Int("ops", 150, "durable commits per worker")
		acked    = flag.String("acked", "", "acked-commit journal path (run/verify modes)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "-dir is required")
		os.Exit(2)
	}

	switch *mode {
	case "all":
		failed := false
		for _, sc := range chaos.Scenarios() {
			sub := fmt.Sprintf("%s/%s", *dir, sc)
			if err := os.MkdirAll(sub, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res, err := chaos.Run(chaos.Config{
				Dir:      sub,
				Scenario: sc,
				Seed:     *seed,
				Workers:  *workers,
				Ops:      *ops,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos %s: %v\n", sc, err)
				os.Exit(1)
			}
			fmt.Println(res)
			if !res.Ok() {
				failed = true
			}
		}
		if failed {
			fmt.Fprintln(os.Stderr, "chaos: INVARIANT VIOLATED (lost acks or torn state)")
			os.Exit(1)
		}
	case "run":
		if *acked == "" {
			fmt.Fprintln(os.Stderr, "-acked is required in run mode")
			os.Exit(2)
		}
		// The workload runs to completion if nobody kills us; either way
		// the journal holds exactly the acked prefix for verify mode.
		res, err := chaos.Run(chaos.Config{
			Dir:          *dir,
			Scenario:     chaos.Scenario(*scenario),
			Seed:         *seed,
			Workers:      *workers,
			Ops:          *ops,
			AckedPath:    *acked,
			ExternalKill: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res)
		if !res.Ok() {
			os.Exit(1)
		}
	case "verify":
		if *acked == "" {
			fmt.Fprintln(os.Stderr, "-acked is required in verify mode")
			os.Exit(2)
		}
		res, err := chaos.VerifyJournal(*dir, *acked, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res)
		if !res.Ok() {
			fmt.Fprintln(os.Stderr, "chaos: INVARIANT VIOLATED (lost acks or torn state)")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q\n", *mode)
		os.Exit(2)
	}
}
