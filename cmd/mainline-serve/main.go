// Command mainline-serve runs the engine behind its Arrow-native network
// serving layer: the framed two-plane protocol (transactional RPC +
// streaming DoGet/DoPut export) on -addr, and the /metrics + /healthz +
// /debug/slowops operational sidecar on -http (-debug adds pprof and
// expvar; -slow-op tunes the slow-op capture threshold). SIGTERM or SIGINT drains gracefully:
// accepting stops, in-flight requests get -grace to finish, leaked
// transactions are reaped, then the engine (and its WAL) closes cleanly.
//
//	mainline-serve -addr :7878 -http :7879 -data /var/lib/mainline
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mainline"
	"mainline/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7878", "protocol listen address")
		httpAddr     = flag.String("http", ":7879", "metrics/health listen address (empty = disabled)")
		dataDir      = flag.String("data", "", "durable data directory (empty = in-memory)")
		maxSessions  = flag.Int("max-sessions", 256, "max concurrent sessions")
		maxInflight  = flag.Int("max-inflight", 64, "max concurrently executing requests")
		maxTxns      = flag.Int("max-txns", 64, "max open transactions per session")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-write network timeout while streaming")
		grace        = flag.Duration("grace", 10*time.Second, "drain grace on SIGTERM")
		debug        = flag.Bool("debug", false, "serve net/http/pprof and expvar on the -http sidecar")
		slowOp       = flag.Duration("slow-op", 0, "slow-op capture threshold for /debug/slowops (0 = 100ms default; 1ns captures everything)")
	)
	flag.Parse()

	opts := []mainline.Option{mainline.WithBackground()}
	if *dataDir != "" {
		opts = append(opts, mainline.WithDataDir(*dataDir))
	}
	if *slowOp != 0 {
		opts = append(opts, mainline.WithSlowOpThreshold(*slowOp))
	}
	eng, err := mainline.Open(opts...)
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}

	srv := server.New(eng, server.Config{
		Addr:              *addr,
		HTTPAddr:          *httpAddr,
		MaxSessions:       *maxSessions,
		MaxInflight:       *maxInflight,
		MaxTxnsPerSession: *maxTxns,
		WriteTimeout:      *writeTimeout,
		DebugEndpoints:    *debug,
	})
	bound, err := srv.Listen()
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if h := srv.HTTPAddr(); h != "" {
		log.Printf("serving on %s (metrics on http://%s/metrics)", bound, h)
	} else {
		log.Printf("serving on %s", bound)
	}
	if *dataDir != "" {
		rs := eng.Stats().Recovery
		if rs.Bootstrapped {
			log.Printf("recovered data dir %s: checkpoint seq %d, %d WAL txns replayed, %d indexes rebuilt",
				*dataDir, rs.CheckpointSeq, rs.TailTxnsApplied, rs.IndexesRebuilt)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	s := <-sig
	log.Printf("%s: draining (grace %s)...", s, *grace)
	srv.Shutdown(*grace)
	st := srv.Stats()
	log.Printf("drained: %d sessions served, %d requests, %d txns reaped",
		st.SessionsTotal, st.Requests, st.TxnsReaped)
	if err := eng.Close(); err != nil {
		log.Fatalf("close engine: %v", err)
	}
	log.Printf("engine closed cleanly")
}
