// Command tpcc loads and drives the TPC-C workload against the engine,
// optionally with the background transformation pipeline, and reports
// throughput, block-state coverage, and consistency — the interactive
// version of the paper's §6.1 experiment.
//
// Unlike examples/tpcc (which uses the public handle-scoped API plus
// Engine.Admin), this harness assembles the internal subsystems directly:
// it installs the WAL hook only after the load so the initial population
// is not logged, and watches only the cold ORDER tables — knobs the
// public Open surface deliberately does not expose.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"path/filepath"

	"mainline/internal/catalog"
	"mainline/internal/checkpoint"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/wal"
	"mainline/internal/workload/tpcc"
)

func main() {
	var (
		warehouses = flag.Int("warehouses", 4, "number of warehouses")
		workers    = flag.Int("workers", 4, "worker goroutines (one home warehouse each)")
		duration   = flag.Duration("duration", 5*time.Second, "measurement duration")
		mode       = flag.String("transform", "gather", "transformation: off|gather|dictionary")
		full       = flag.Bool("full-scale", false, "spec-size database (100K items, 3K customers/district)")
		threshold  = flag.Duration("threshold", 10*time.Millisecond, "cold-block threshold")

		walPath     = flag.String("wal", "", "write-ahead log file (enables group-commit logging)")
		durable     = flag.Bool("durable", false, "terminals wait for the group-commit fsync (needs -wal or -datadir)")
		syncLatency = flag.Duration("sync-latency", 0, "emulate a log device with this fsync cost (0 = raw)")
		syncDelay   = flag.Duration("sync-delay", 0, "group-formation window before each log flush")

		dataDir  = flag.String("datadir", "", "data directory: segmented WAL + Arrow checkpoints (excludes -wal)")
		doCkpt   = flag.Bool("checkpoint", false, "take a checkpoint after the run and truncate the WAL (needs -datadir)")
		segBytes = flag.Int64("segment-size", 0, "WAL segment rotation threshold in bytes (0 = 4MB default)")
	)
	flag.Parse()
	if *dataDir != "" && *walPath != "" {
		fmt.Fprintln(os.Stderr, "-datadir and -wal are mutually exclusive")
		os.Exit(2)
	}
	if *dataDir != "" && *syncLatency > 0 {
		// The segmented sink writes to the real device; silently dropping
		// the emulated latency would make -datadir numbers incomparable to
		// -wal runs carrying the same flag.
		fmt.Fprintln(os.Stderr, "-sync-latency is only supported with -wal")
		os.Exit(2)
	}
	logging := *walPath != "" || *dataDir != ""
	if !logging {
		switch {
		case *durable:
			fmt.Fprintln(os.Stderr, "-durable requires -wal or -datadir")
			os.Exit(2)
		case *syncLatency > 0:
			fmt.Fprintln(os.Stderr, "-sync-latency requires -wal")
			os.Exit(2)
		case *syncDelay > 0:
			fmt.Fprintln(os.Stderr, "-sync-delay requires -wal")
			os.Exit(2)
		}
	}
	if *doCkpt && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint requires -datadir")
		os.Exit(2)
	}
	if *segBytes > 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "-segment-size requires -datadir")
		os.Exit(2)
	}

	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	cfg := tpcc.DefaultConfig(*warehouses)
	if *full {
		cfg = tpcc.Full(*warehouses)
	}
	db, err := tpcc.NewDatabase(mgr, cat, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading %d warehouses (%d items, %d customers/district)...\n",
		cfg.Warehouses, cfg.Items, cfg.CustomersPerDistrict)
	t0 := time.Now()
	p, err := tpcc.Load(db, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(t0).Round(time.Millisecond))

	// The WAL hook is installed after load so the initial population is not
	// logged; the run's transactions are.
	var lm *wal.LogManager
	var ckptDir string
	var segSink *wal.SegmentedSink
	switch {
	case *dataDir != "":
		ckptDir = filepath.Join(*dataDir, "checkpoints")
		// This harness does not bootstrap (no catalog.json, no replay), so
		// it cannot account for a previous run's segments; require a fresh
		// directory rather than report truncation numbers that exclude
		// untracked old segments.
		if segs, err := wal.ListSegments(filepath.Join(*dataDir, "wal")); err == nil && len(segs) > 0 {
			fmt.Fprintf(os.Stderr, "-datadir %s holds WAL segments from a previous run; use a fresh directory\n", *dataDir)
			os.Exit(2)
		}
		sink, err := wal.OpenSegmentedSink(filepath.Join(*dataDir, "wal"), *segBytes, nil)
		if err != nil {
			log.Fatal(err)
		}
		segSink = sink
		lm = wal.NewLogManager(sink)
		lm.SyncDelay = *syncDelay
		lm.Attach(mgr)
		lm.Start(5 * time.Millisecond)
		db.Durable = *durable
	case *walPath != "":
		var err error
		lm, err = wal.OpenPipeline(*walPath, mgr, *syncLatency, *syncDelay, 5*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		db.Durable = *durable
	}

	g := gc.New(mgr)
	obs := transform.NewObserver()
	for _, tbl := range db.OrderTables() {
		obs.Watch(tbl.DataTable)
	}
	g.SetObserver(obs)
	tcfg := transform.DefaultConfig()
	tcfg.Threshold = *threshold
	var tr *transform.Transformer
	switch *mode {
	case "off":
	case "gather":
		tcfg.Mode = transform.ModeGather
		tr = transform.New(mgr, g, obs, tcfg)
	case "dictionary":
		tcfg.Mode = transform.ModeDictionary
		tr = transform.New(mgr, g, obs, tcfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown -transform %q\n", *mode)
		os.Exit(2)
	}

	g.Start(10 * time.Millisecond)
	if tr != nil {
		tr.Start(10 * time.Millisecond)
	}
	fmt.Printf("running %d workers for %v (transform=%s)...\n", *workers, *duration, *mode)
	res := tpcc.Run(db, p, *workers, *duration, 99)
	if tr != nil {
		tr.Stop()
	}
	g.Stop()

	fmt.Printf("\nthroughput: %.0f txn/s, %.0f tpmC (committed %d, aborted %d)\n",
		res.Throughput(), res.TpmC(), res.Total(), res.Aborted)
	if *doCkpt {
		// Push queued commits to disk and snapshot every table as Arrow
		// IPC. Matching the engine's fallback-safe rule, a checkpoint's
		// own segments are released only by its successor — and in this
		// fresh directory there is no predecessor — so the run reports
		// the log a restart would SKIP (covered by the checkpoint) rather
		// than deleting it.
		lm.FlushOnce()
		t1 := time.Now()
		info, err := checkpoint.Take(nil, ckptDir, cat, mgr)
		if err != nil {
			log.Fatal(err)
		}
		// Seal the active segment (Truncate through ts 0 rotates but
		// deletes only empty segments) so coverage accounting sees it.
		_, _ = lm.Truncate(0)
		var coveredSegs int
		var coveredBytes int64
		for _, s := range segSink.SealedSegments() {
			if s.MaxTs > 0 && s.MaxTs <= info.SnapshotTs {
				coveredSegs++
				coveredBytes += s.Size
			}
		}
		fmt.Printf("checkpoint %d: %d tables, %d rows, %.1f MB in %v; covers %d WAL segments (%.1f MB) a restart now skips\n",
			info.Seq, info.Tables, info.Rows, float64(info.BytesWritten)/(1<<20),
			time.Since(t1).Round(time.Millisecond), coveredSegs, float64(coveredBytes)/(1<<20))
	}
	if lm != nil {
		// Close first: it drains the final group, so Stats covers the run.
		if err := lm.Close(); err != nil {
			log.Fatal(err)
		}
		txns, bytes, syncs := lm.Stats()
		group := 0.0
		if syncs > 0 {
			group = float64(txns) / float64(syncs)
		}
		fmt.Printf("wal: %d txns logged, %d bytes, %d fsyncs (%.1f txns/fsync, durable=%v)\n",
			txns, bytes, syncs, group, *durable)
	}
	names := []string{"new-order", "payment", "order-status", "delivery", "stock-level"}
	for i, n := range res.Committed {
		fmt.Printf("  %-13s %8d (%.1f%%)\n", names[i], n, 100*float64(n)/float64(res.Total()))
	}
	total, frozen, cooling := 0, 0, 0
	for _, tbl := range db.OrderTables() {
		for _, b := range tbl.Blocks() {
			if b.InsertHead() == 0 {
				continue
			}
			total++
			switch b.State() {
			case storage.StateFrozen:
				frozen++
			case storage.StateCooling:
				cooling++
			}
		}
	}
	if total > 0 {
		fmt.Printf("cold-table blocks: %d total, %.0f%% frozen, %.0f%% cooling\n",
			total, 100*float64(frozen)/float64(total), 100*float64(cooling)/float64(total))
	}
	if tr != nil {
		st := tr.Stats()
		fmt.Printf("pipeline: %d compactions, %d moves, %d frozen, %d recycled, %d preemptions\n",
			st.GroupsCompacted, st.TuplesMoved, st.BlocksFrozen, st.BlocksRecycled, st.Preemptions)
	}
	if err := tpcc.CheckConsistency(db); err != nil {
		log.Fatalf("consistency FAILED: %v", err)
	}
	fmt.Println("consistency checks passed")
}
