// Command tpcc loads and drives the TPC-C workload against the engine,
// optionally with the background transformation pipeline, and reports
// throughput, block-state coverage, and consistency — the interactive
// version of the paper's §6.1 experiment.
//
// Unlike examples/tpcc (which uses the public handle-scoped API plus
// Engine.Admin), this harness assembles the internal subsystems directly:
// it installs the WAL hook only after the load so the initial population
// is not logged, and watches only the cold ORDER tables — knobs the
// public Open surface deliberately does not expose.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mainline/internal/catalog"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/wal"
	"mainline/internal/workload/tpcc"
)

func main() {
	var (
		warehouses = flag.Int("warehouses", 4, "number of warehouses")
		workers    = flag.Int("workers", 4, "worker goroutines (one home warehouse each)")
		duration   = flag.Duration("duration", 5*time.Second, "measurement duration")
		mode       = flag.String("transform", "gather", "transformation: off|gather|dictionary")
		full       = flag.Bool("full-scale", false, "spec-size database (100K items, 3K customers/district)")
		threshold  = flag.Duration("threshold", 10*time.Millisecond, "cold-block threshold")

		walPath     = flag.String("wal", "", "write-ahead log file (enables group-commit logging)")
		durable     = flag.Bool("durable", false, "terminals wait for the group-commit fsync (needs -wal)")
		syncLatency = flag.Duration("sync-latency", 0, "emulate a log device with this fsync cost (0 = raw)")
		syncDelay   = flag.Duration("sync-delay", 0, "group-formation window before each log flush")
	)
	flag.Parse()
	if *walPath == "" {
		switch {
		case *durable:
			fmt.Fprintln(os.Stderr, "-durable requires -wal")
			os.Exit(2)
		case *syncLatency > 0:
			fmt.Fprintln(os.Stderr, "-sync-latency requires -wal")
			os.Exit(2)
		case *syncDelay > 0:
			fmt.Fprintln(os.Stderr, "-sync-delay requires -wal")
			os.Exit(2)
		}
	}

	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	cfg := tpcc.DefaultConfig(*warehouses)
	if *full {
		cfg = tpcc.Full(*warehouses)
	}
	db, err := tpcc.NewDatabase(mgr, cat, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading %d warehouses (%d items, %d customers/district)...\n",
		cfg.Warehouses, cfg.Items, cfg.CustomersPerDistrict)
	t0 := time.Now()
	p, err := tpcc.Load(db, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(t0).Round(time.Millisecond))

	// The WAL hook is installed after load so the initial population is not
	// logged; the run's transactions are.
	var lm *wal.LogManager
	if *walPath != "" {
		var err error
		lm, err = wal.OpenPipeline(*walPath, mgr, *syncLatency, *syncDelay, 5*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		db.Durable = *durable
	}

	g := gc.New(mgr)
	obs := transform.NewObserver()
	for _, tbl := range db.OrderTables() {
		obs.Watch(tbl.DataTable)
	}
	g.SetObserver(obs)
	tcfg := transform.DefaultConfig()
	tcfg.Threshold = *threshold
	tcfg.OnMove = db.OnTupleMove()
	var tr *transform.Transformer
	switch *mode {
	case "off":
	case "gather":
		tcfg.Mode = transform.ModeGather
		tr = transform.New(mgr, g, obs, tcfg)
	case "dictionary":
		tcfg.Mode = transform.ModeDictionary
		tr = transform.New(mgr, g, obs, tcfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown -transform %q\n", *mode)
		os.Exit(2)
	}

	g.Start(10 * time.Millisecond)
	if tr != nil {
		tr.Start(10 * time.Millisecond)
	}
	fmt.Printf("running %d workers for %v (transform=%s)...\n", *workers, *duration, *mode)
	res := tpcc.Run(db, p, *workers, *duration, 99)
	if tr != nil {
		tr.Stop()
	}
	g.Stop()

	fmt.Printf("\nthroughput: %.0f txn/s, %.0f tpmC (committed %d, aborted %d)\n",
		res.Throughput(), res.TpmC(), res.Total(), res.Aborted)
	if lm != nil {
		// Close first: it drains the final group, so Stats covers the run.
		if err := lm.Close(); err != nil {
			log.Fatal(err)
		}
		txns, bytes, syncs := lm.Stats()
		group := 0.0
		if syncs > 0 {
			group = float64(txns) / float64(syncs)
		}
		fmt.Printf("wal: %d txns logged, %d bytes, %d fsyncs (%.1f txns/fsync, durable=%v)\n",
			txns, bytes, syncs, group, *durable)
	}
	names := []string{"new-order", "payment", "order-status", "delivery", "stock-level"}
	for i, n := range res.Committed {
		fmt.Printf("  %-13s %8d (%.1f%%)\n", names[i], n, 100*float64(n)/float64(res.Total()))
	}
	total, frozen, cooling := 0, 0, 0
	for _, tbl := range db.OrderTables() {
		for _, b := range tbl.Blocks() {
			if b.InsertHead() == 0 {
				continue
			}
			total++
			switch b.State() {
			case storage.StateFrozen:
				frozen++
			case storage.StateCooling:
				cooling++
			}
		}
	}
	if total > 0 {
		fmt.Printf("cold-table blocks: %d total, %.0f%% frozen, %.0f%% cooling\n",
			total, 100*float64(frozen)/float64(total), 100*float64(cooling)/float64(total))
	}
	if tr != nil {
		st := tr.Stats()
		fmt.Printf("pipeline: %d compactions, %d moves, %d frozen, %d recycled, %d preemptions\n",
			st.GroupsCompacted, st.TuplesMoved, st.BlocksFrozen, st.BlocksRecycled, st.Preemptions)
	}
	if err := tpcc.CheckConsistency(db); err != nil {
		log.Fatalf("consistency FAILED: %v", err)
	}
	fmt.Println("consistency checks passed")
}
