// Command flight-demo runs an export server over a demo table (server
// mode) or fetches a table from a running server and reports transfer
// statistics (client mode) — a two-terminal demonstration of the Arrow
// Flight-style zero-copy export (§5).
//
//	flight-demo -serve :7788
//	flight-demo -fetch 127.0.0.1:7788 -table demo -proto flight
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"mainline"
	"mainline/internal/arrow"
	"mainline/internal/export"
)

func main() {
	var (
		serve = flag.String("serve", "", "address to serve a demo table on")
		fetch = flag.String("fetch", "", "address to fetch from")
		table = flag.String("table", "demo", "table name to fetch")
		proto = flag.String("proto", "flight", "protocol: flight|vectorized|pgwire")
		rows  = flag.Int("rows", 500000, "demo table rows (server mode)")
	)
	flag.Parse()
	switch {
	case *serve != "":
		runServer(*serve, *rows)
	case *fetch != "":
		runClient(*fetch, *table, *proto)
	default:
		fmt.Fprintln(os.Stderr, "specify -serve ADDR or -fetch ADDR")
		os.Exit(2)
	}
}

func runServer(addr string, rows int) {
	eng, err := mainline.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("demo", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "name", Type: mainline.STRING},
		mainline.Field{Name: "value", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loading %d rows...", rows)
	const batch = 5000
	row := tbl.NewRow()
	for done := 0; done < rows; {
		tx, err := eng.Begin()
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < batch && done < rows; i++ {
			row.Reset()
			row.SetInt64(0, int64(done))
			row.SetVarlen(1, []byte(fmt.Sprintf("row-%d-payload-string", done)))
			row.SetInt64(2, int64(done%100000))
			if _, err := tbl.Insert(tx, row); err != nil {
				log.Fatal(err)
			}
			done++
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	if !eng.FreezeAll(0) {
		log.Fatal("freeze did not converge")
	}
	adm := eng.Admin()
	srv := export.NewServer(adm.TxnManager(), adm.Catalog())
	bound, err := srv.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serving table %q (%d rows, frozen) on %s — Ctrl-C to stop", "demo", rows, bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func runClient(addr, table, protoName string) {
	var proto export.Protocol
	switch protoName {
	case "flight":
		proto = export.ProtoFlight
	case "vectorized":
		proto = export.ProtoVectorized
	case "pgwire":
		proto = export.ProtoPGWire
	default:
		log.Fatalf("unknown protocol %q", protoName)
	}
	res, err := export.Fetch(addr, proto, table)
	if err != nil {
		log.Fatal(err)
	}
	checksum := uint64(0)
	for _, rb := range res.Table.Batches {
		checksum ^= arrow.Checksum(rb)
	}
	fmt.Printf("fetched %d rows, %d bytes in %v (%.1f MB/s), checksum %016x\n",
		res.Table.NumRows(), res.Bytes, res.Elapsed.Round(res.Elapsed/100),
		float64(res.Bytes)/(1<<20)/res.Elapsed.Seconds(), checksum)
}
