// Command flight-demo is a two-terminal demonstration of the Arrow
// Flight-style zero-copy export (§5), running over the mainline-serve
// protocol: server mode boots the full serving layer over a demo table
// (frozen, so DoGet streams its blocks zero-copy); client mode pulls the
// table with a streaming DoGet and reports transfer statistics.
//
//	flight-demo -serve :7788
//	flight-demo -fetch 127.0.0.1:7788 -table demo
//
// Protocol comparisons (Arrow IPC vs vectorized vs PGWire vs simulated
// RDMA) live in `mainline-bench fig01` / `fig15`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mainline"
	"mainline/client"
	"mainline/internal/arrow"
	"mainline/internal/server"
)

func main() {
	var (
		serve = flag.String("serve", "", "address to serve a demo table on")
		fetch = flag.String("fetch", "", "address to fetch from")
		table = flag.String("table", "demo", "table name to fetch")
		rows  = flag.Int("rows", 500000, "demo table rows (server mode)")
	)
	flag.Parse()
	switch {
	case *serve != "":
		runServer(*serve, *rows)
	case *fetch != "":
		runClient(*fetch, *table)
	default:
		fmt.Fprintln(os.Stderr, "specify -serve ADDR or -fetch ADDR")
		os.Exit(2)
	}
}

func runServer(addr string, rows int) {
	eng, err := mainline.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("demo", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "name", Type: mainline.STRING},
		mainline.Field{Name: "value", Type: mainline.INT64},
	))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loading %d rows...", rows)
	const batch = 5000
	row := tbl.NewRow()
	for done := 0; done < rows; {
		tx, err := eng.Begin()
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < batch && done < rows; i++ {
			row.Reset()
			row.SetInt64(0, int64(done))
			row.SetVarlen(1, []byte(fmt.Sprintf("row-%d-payload-string", done)))
			row.SetInt64(2, int64(done%100000))
			if _, err := tbl.Insert(tx, row); err != nil {
				log.Fatal(err)
			}
			done++
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	if !eng.FreezeAll(0) {
		log.Fatal("freeze did not converge")
	}
	srv := server.New(eng, server.Config{Addr: addr})
	bound, err := srv.Listen()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving table %q (%d rows, frozen) on %s — Ctrl-C to stop", "demo", rows, bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Shutdown(5 * time.Second)
}

func runClient(addr, table string) {
	c, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	checksum := uint64(0)
	start := time.Now()
	st, err := c.DoGet(table, nil, nil, func(rb *mainline.RecordBatch) error {
		checksum ^= arrow.Checksum(rb)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("fetched %d rows (%d frozen / %d materialized blocks), %d bytes in %v (%.1f MB/s), checksum %016x\n",
		st.Rows, st.Frozen, st.Materialized, st.Bytes, elapsed.Round(elapsed/100),
		float64(st.Bytes)/(1<<20)/elapsed.Seconds(), checksum)
}
