// Command mainline-bench regenerates the paper's evaluation figures
// (§6: Figures 1 and 10–15) at a configurable scale and prints each as an
// aligned table. Absolute numbers depend on the host; the shapes —
// orderings, crossovers, rough factors — are the reproduction target
// (see EXPERIMENTS.md).
//
// Usage:
//
//	mainline-bench [flags] fig1|fig10|fig11|fig12|fig13|fig14|fig15|commit|scan|index|olap|net|recovery|cold|all
//
// The extra "commit" target (not a paper figure) sweeps the parallel
// commit pipeline: durable TPC-C throughput versus terminals under WAL
// group commit. The "scan" target sweeps the vectorized batch-scan engine (rows/sec and
// allocs/op, tuple vs vectorized, hot vs frozen vs zone-map-pruned).
// The "index" target sweeps engine-managed indexed reads (point lookups
// and ordered ranges) against the vectorized Filter and full Scan, and
// fails unless the indexed point read beats the Filter by >= 10x.
// The "olap" target sweeps morsel-driven parallel aggregation (rows/sec
// vs worker count over a frozen dictionary-encoded table) and fails on an
// 8-core host unless 8 workers reach >= 3x the single-worker rate.
// The "net" target sweeps the serving layer under a keyed client fleet
// (mixed OLTP writes + streaming exports, replay-verified; -addr targets
// an external mainline-serve). The "recovery" target sweeps restart time
// against WAL length with and without checkpoint anchoring (including a
// cold crash-restart with every block evicted). The "cold" target sweeps
// batch-scan throughput over a fully evicted table across block cache
// budgets and fails unless the cache-warm cold scan reaches >= 0.8x the
// resident rate at an unlimited budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mainline"
	"mainline/internal/bench"
	"mainline/internal/benchutil"
	"mainline/internal/coldbench"
	"mainline/internal/recoverybench"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "multiply default workload sizes")
		blocks   = flag.Int("blocks", 16, "blocks per transformation microbenchmark")
		perBlock = flag.Int("per-block", 0, "tuples per block (0 = full 1MB capacity)")
		rows     = flag.Int("rows", 200000, "LINEITEM rows for fig1/fig15")
		ops      = flag.Int("ops", 400000, "operations per fig11 point")
		duration = flag.Duration("duration", 2*time.Second, "seconds per fig10 point")
		workers  = flag.String("workers", "1,2,4,8", "fig10 worker counts")
		addr     = flag.String("addr", "", "net target: external mainline-serve address (empty = self-host)")
		clients  = flag.String("clients", "1,4,16,64", "net target: client counts to sweep")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mainline-bench [flags] fig1|fig10|fig11|fig12|fig13|fig14|fig15|commit|scan|index|olap|net|recovery|cold|all")
		os.Exit(2)
	}
	s := func(n int) int {
		v := int(float64(n) * *scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	target := flag.Arg(0)
	run := func(name string, fn func() (*benchutil.Table, error)) {
		if target != "all" && target != name {
			return
		}
		start := time.Now()
		t, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		t.Print(os.Stdout)
		fmt.Printf("  (%s in %s)\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig1", func() (*benchutil.Table, error) { return bench.Fig1(s(*rows)) })
	run("fig10", func() (*benchutil.Table, error) {
		cfg := bench.DefaultFig10Config()
		cfg.Duration = *duration
		cfg.Workers = parseInts(*workers)
		return bench.Fig10(cfg)
	})
	run("fig11", func() (*benchutil.Table, error) { return bench.Fig11(nil, s(*ops)) })
	run("fig12", func() (*benchutil.Table, error) {
		// Main panel (mixed layout) plus the fixed/varlen variants (12c/d).
		res, err := bench.Fig12(bench.VariantMixed, s(*blocks), *perBlock, nil)
		if err != nil {
			return nil, err
		}
		res.Table.Print(os.Stdout)
		resC, err := bench.Fig12(bench.VariantFixed, s(*blocks), *perBlock, nil)
		if err != nil {
			return nil, err
		}
		resC.Table.Print(os.Stdout)
		resD, err := bench.Fig12(bench.VariantVarlen, s(*blocks), *perBlock, nil)
		return resD.Table, err
	})
	run("fig13", func() (*benchutil.Table, error) {
		return bench.Fig13(bench.VariantMixed, s(*blocks), *perBlock, nil)
	})
	run("fig14", func() (*benchutil.Table, error) {
		return bench.Fig14(bench.VariantMixed, s(*blocks), *perBlock, []int{1, 2, 4, 8, 16}, nil)
	})
	run("fig15", func() (*benchutil.Table, error) { return bench.Fig15(s(*rows), nil) })
	run("commit", func() (*benchutil.Table, error) {
		cfg := bench.DefaultGroupCommitConfig()
		cfg.Duration = *duration
		cfg.Workers = parseInts(*workers)
		t, _, err := bench.GroupCommit(cfg)
		return t, err
	})
	run("scan", func() (*benchutil.Table, error) {
		cfg := bench.DefaultScanConfig()
		cfg.PerBlock = s(cfg.PerBlock)
		return bench.Scan(cfg)
	})
	run("index", func() (*benchutil.Table, error) {
		cfg := bench.DefaultIndexBenchConfig()
		cfg.Lookups = s(cfg.Lookups)
		cfg.Ranges = s(cfg.Ranges)
		return bench.IndexBench(cfg)
	})
	run("olap", func() (*benchutil.Table, error) {
		cfg := bench.DefaultOlapConfig()
		cfg.PerBlock = s(cfg.PerBlock)
		return bench.Olap(cfg)
	})
	run("net", func() (*benchutil.Table, error) {
		cfg := bench.DefaultNetConfig()
		cfg.Addr = *addr
		cfg.Duration = *duration
		cfg.Clients = parseInts(*clients)
		return bench.Net(cfg)
	})
	run("recovery", func() (*benchutil.Table, error) {
		cfg := recoverybench.DefaultRecoveryConfig()
		for i, n := range cfg.TxnCounts {
			cfg.TxnCounts[i] = s(n)
		}
		t, _, err := recoverybench.Recovery(cfg)
		return t, err
	})
	run("cold", func() (*benchutil.Table, error) {
		cfg := coldbench.DefaultConfig()
		cfg.PerBlock = s(cfg.PerBlock)
		t, pts, err := coldbench.ColdScan(cfg)
		if err != nil {
			return nil, err
		}
		// Acceptance: at an unlimited cache the steady-state cold scan
		// keeps >= 0.8x of the resident throughput.
		for _, pt := range pts {
			if pt.Budget == mainline.BlockCacheUnlimited && pt.WarmRate < 0.8*pt.ResidentRate {
				return nil, fmt.Errorf("cache-warm cold scan %.1f Mrows/s < 0.8x resident %.1f Mrows/s",
					pt.WarmRate/1e6, pt.ResidentRate/1e6)
			}
		}
		return t, nil
	})
}

func parseInts(s string) []int {
	var out []int
	cur := 0
	has := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if has {
				out = append(out, cur)
			}
			cur, has = 0, false
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int(s[i]-'0')
			has = true
		}
	}
	return out
}
