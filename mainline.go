// Package mainline is an in-memory, multi-versioned OLTP storage engine
// that keeps table data in a relaxed form of the Apache Arrow columnar
// format and lazily transforms cold blocks into canonical Arrow, so that
// analytical tools can consume the database with zero serialization cost.
//
// It is a from-scratch Go reproduction of "Mainlining Databases: Supporting
// Fast Transactional Workloads on Universal Columnar Data File Formats"
// (Li et al., VLDB 2020) — the storage architecture of the DB-X / NoisePage
// DBMS. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
//
// Quickstart:
//
//	eng, _ := mainline.Open(mainline.Options{})
//	defer eng.Close()
//	tbl, _ := eng.CreateTable("item", mainline.NewSchema(
//		mainline.Field{Name: "id", Type: mainline.INT64},
//		mainline.Field{Name: "name", Type: mainline.STRING, Nullable: true},
//	))
//	tx := eng.Begin()
//	row := tbl.NewRow()
//	row.SetInt64(0, 101)
//	row.SetVarlen(1, []byte("JOE"))
//	slot, _ := tbl.Insert(tx, row)
//	eng.Commit(tx)
//	_ = slot
package mainline

import (
	"fmt"
	"io"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/gc"
	"mainline/internal/index"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/wal"
)

// Re-exported types so in-module consumers program against one package.
type (
	// Schema describes a table's columns.
	Schema = arrow.Schema
	// Field is one column of a schema.
	Field = arrow.Field
	// RecordBatch is a set of equal-length Arrow columns.
	RecordBatch = arrow.RecordBatch
	// ArrowTable is an ordered collection of record batches.
	ArrowTable = arrow.Table
	// Txn is a transaction handle.
	Txn = txn.Transaction
	// TupleSlot identifies a stored tuple.
	TupleSlot = storage.TupleSlot
	// Row is a materialized (partial) tuple.
	Row = storage.ProjectedRow
	// Projection selects a subset of columns.
	Projection = storage.Projection
	// ColumnID indexes a column in a table layout.
	ColumnID = storage.ColumnID
	// Index is an ordered secondary index.
	Index = index.Index
	// KeyBuilder builds memcomparable index keys.
	KeyBuilder = index.KeyBuilder
	// TransformStats counts transformation pipeline work.
	TransformStats = transform.Stats
)

// Re-exported column types.
const (
	INT8    = arrow.INT8
	INT16   = arrow.INT16
	INT32   = arrow.INT32
	INT64   = arrow.INT64
	FLOAT64 = arrow.FLOAT64
	STRING  = arrow.STRING
	BINARY  = arrow.BINARY
)

// Common errors re-exported from the Data Table API.
var (
	ErrWriteConflict = core.ErrWriteConflict
	ErrNotFound      = core.ErrNotFound
)

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return arrow.NewSchema(fields...) }

// NewKeyBuilder creates a key builder with a capacity hint.
func NewKeyBuilder(capacity int) *KeyBuilder { return index.NewKeyBuilder(capacity) }

// NewBTreeIndex creates a single-tree ordered index.
func NewBTreeIndex() Index { return index.NewBTree() }

// NewShardedIndex creates a hash-sharded ordered index for keys whose first
// prefixLen bytes partition the workload.
func NewShardedIndex(shards, prefixLen int) Index { return index.NewSharded(shards, prefixLen) }

// TransformMode selects the gather target for cold blocks.
type TransformMode = transform.Mode

// Gather targets.
const (
	// TransformGather produces canonical Arrow (contiguous varlen buffers).
	TransformGather = transform.ModeGather
	// TransformDictionary produces dictionary-compressed columns.
	TransformDictionary = transform.ModeDictionary
)

// Options configures an Engine.
type Options struct {
	// LogPath enables write-ahead logging to the given file.
	LogPath string
	// LogFlushInterval bounds group-commit latency (default 5ms).
	LogFlushInterval time.Duration
	// LogSyncDelay is the group-formation window before each WAL flush:
	// the flusher waits this long after the first enqueued commit so
	// concurrent committers join the same fsync (0 = flush immediately).
	LogSyncDelay time.Duration
	// Background starts the GC, transformation, and log-flush loops.
	// When false (tests, benchmarks) drive them manually with RunGC /
	// RunTransform.
	Background bool
	// GCPeriod is the garbage collection interval (default 10ms).
	GCPeriod time.Duration
	// TransformPeriod is the transformation pass interval (default 10ms).
	TransformPeriod time.Duration
	// ColdThreshold is how long a block must stay unmodified to freeze
	// (default 10ms, the paper's aggressive setting).
	ColdThreshold time.Duration
	// CompactionGroupSize caps blocks per compaction transaction
	// (default 50, the paper's sweet spot).
	CompactionGroupSize int
	// TransformMode selects gather vs dictionary compression.
	TransformMode TransformMode
	// DisableTransform turns the background transformation off entirely
	// (the paper's "no transformation" baseline).
	DisableTransform bool
	// OnTupleMove observes compaction movements (index maintenance).
	OnTupleMove transform.OnMove
}

func (o *Options) defaults() {
	if o.LogFlushInterval == 0 {
		o.LogFlushInterval = 5 * time.Millisecond
	}
	if o.GCPeriod == 0 {
		o.GCPeriod = 10 * time.Millisecond
	}
	if o.TransformPeriod == 0 {
		o.TransformPeriod = 10 * time.Millisecond
	}
	if o.ColdThreshold == 0 {
		o.ColdThreshold = 10 * time.Millisecond
	}
	if o.CompactionGroupSize == 0 {
		o.CompactionGroupSize = 50
	}
}

// Engine is the assembled storage engine: block registry, transaction
// manager, garbage collector, transformation pipeline, catalog, and
// (optionally) the write-ahead log.
type Engine struct {
	opts Options

	reg         *storage.Registry
	mgr         *txn.Manager
	collector   *gc.GarbageCollector
	observer    *transform.Observer
	transformer *transform.Transformer
	logMgr      *wal.LogManager
	cat         *catalog.Catalog
}

// Open assembles an engine.
func Open(opts Options) (*Engine, error) {
	opts.defaults()
	e := &Engine{opts: opts}
	e.reg = storage.NewRegistry()
	e.mgr = txn.NewManager(e.reg)
	e.cat = catalog.New(e.reg)
	e.collector = gc.New(e.mgr)
	e.observer = transform.NewObserver()
	e.collector.SetObserver(e.observer)
	cfg := transform.Config{
		Threshold: opts.ColdThreshold,
		GroupSize: opts.CompactionGroupSize,
		Mode:      opts.TransformMode,
		OnMove:    opts.OnTupleMove,
	}
	e.transformer = transform.New(e.mgr, e.collector, e.observer, cfg)

	if opts.LogPath != "" {
		sink, err := wal.OpenFileSink(opts.LogPath)
		if err != nil {
			return nil, err
		}
		e.logMgr = wal.NewLogManager(sink)
		e.logMgr.SyncDelay = opts.LogSyncDelay
		e.logMgr.Attach(e.mgr)
	}
	if opts.Background {
		e.collector.Start(opts.GCPeriod)
		if !opts.DisableTransform {
			e.transformer.Start(opts.TransformPeriod)
		}
		if e.logMgr != nil {
			e.logMgr.Start(opts.LogFlushInterval)
		}
	}
	return e, nil
}

// Close stops background work and releases the log.
func (e *Engine) Close() error {
	if e.opts.Background {
		e.transformer.Stop()
		e.collector.Stop()
	}
	if e.logMgr != nil {
		return e.logMgr.Close()
	}
	return nil
}

// CreateTable registers a table with the given Arrow schema.
func (e *Engine) CreateTable(name string, schema *Schema) (*Table, error) {
	t, err := e.cat.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	e.observer.Watch(t.DataTable)
	return &Table{Table: t, eng: e}, nil
}

// Table resolves a table by name.
func (e *Engine) Table(name string) *Table {
	t := e.cat.Table(name)
	if t == nil {
		return nil
	}
	return &Table{Table: t, eng: e}
}

// Begin starts a transaction.
func (e *Engine) Begin() *Txn { return e.mgr.Begin() }

// Commit commits tx; the returned timestamp orders it against other
// transactions. With logging enabled durability is asynchronous — use
// CommitDurable to block until the commit record is on disk.
func (e *Engine) Commit(tx *Txn) uint64 { return e.mgr.Commit(tx, nil) }

// CommitDurable commits and waits for the WAL fsync (no-op without a log).
func (e *Engine) CommitDurable(tx *Txn) uint64 {
	done := make(chan struct{})
	ts := e.mgr.Commit(tx, func() { close(done) })
	<-done
	return ts
}

// Abort rolls tx back.
func (e *Engine) Abort(tx *Txn) { e.mgr.Abort(tx) }

// RunGC performs one synchronous garbage collection pass.
func (e *Engine) RunGC() { e.collector.RunOnce() }

// RunTransform performs one synchronous transformation pass and reports
// blocks frozen.
func (e *Engine) RunTransform() int { return e.transformer.RunOnce() }

// FreezeAll drives GC and transformation synchronously until every block of
// every table is frozen (or maxPasses passes elapse). Intended for
// benchmarks and examples that need a fully cold database.
func (e *Engine) FreezeAll(maxPasses int) bool {
	if maxPasses <= 0 {
		maxPasses = 100
	}
	for pass := 0; pass < maxPasses; pass++ {
		e.collector.RunOnce()
		e.transformer.ForcePass()
		if e.allFrozen() {
			return true
		}
	}
	return e.allFrozen()
}

func (e *Engine) allFrozen() bool {
	for _, t := range e.cat.Tables() {
		for _, b := range t.Blocks() {
			if b.InsertHead() > 0 && b.State() != storage.StateFrozen {
				return false
			}
		}
	}
	return true
}

// TransformStats snapshots pipeline counters.
func (e *Engine) TransformStats() TransformStats { return e.transformer.Stats() }

// BlockStates counts blocks of the named table by state:
// [hot, cooling, freezing, frozen] — Figure 10b's metric.
func (e *Engine) BlockStates(table string) (counts [4]int) {
	t := e.cat.Table(table)
	if t == nil {
		return
	}
	for _, b := range t.Blocks() {
		counts[b.State()]++
	}
	return
}

// Recover replays a WAL file into this (fresh) engine. The commit hook is
// detached for the duration so replayed transactions are not re-appended
// to the engine's own log. Recovering an engine whose LogPath is the
// replayed file itself is not supported: post-recovery commits draw fresh
// timestamps from a reset counter, which would collide with the existing
// records — recover into a fresh log and retire the old file.
func (e *Engine) Recover(path string) error {
	if e.logMgr != nil {
		e.mgr.SetCommitHook(nil)
		defer e.logMgr.Attach(e.mgr)
	}
	_, err := wal.Recover(path, e.mgr, e.cat.DataTables())
	return err
}

// FlushLog forces one synchronous group commit (no-op without a log).
func (e *Engine) FlushLog() {
	if e.logMgr != nil {
		e.logMgr.FlushOnce()
	}
}

// Internals exposes the wired subsystems to in-module tooling (benchmarks,
// export servers). External users should not need it.
func (e *Engine) Internals() (*txn.Manager, *gc.GarbageCollector, *transform.Transformer, *catalog.Catalog) {
	return e.mgr, e.collector, e.transformer, e.cat
}

// Table wraps a catalog table with engine-aware helpers.
type Table struct {
	*catalog.Table
	eng *Engine
}

// NewRow allocates a full-width row for inserts.
func (t *Table) NewRow() *Row { return t.AllColumnsProjection().NewRow() }

// ProjectionOf builds a projection over the named columns.
func (t *Table) ProjectionOf(cols ...string) (*Projection, error) {
	ids := make([]ColumnID, len(cols))
	for i, name := range cols {
		idx := t.Schema.FieldIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("mainline: table %s has no column %q", t.Name, name)
		}
		ids[i] = ColumnID(idx)
	}
	return storage.NewProjection(t.Layout(), ids)
}

// ExportIPC streams the table to w in the Arrow IPC format: frozen blocks
// zero-copy, hot blocks transactionally materialized. It returns bytes
// written and how many blocks took each path.
func (t *Table) ExportIPC(w io.Writer, tx *Txn) (written int64, frozen, materialized int, err error) {
	batches, fz, mat, err := t.ExportBatches(tx)
	if err != nil {
		return 0, 0, 0, err
	}
	wr := arrow.NewWriter(w)
	for _, rb := range batches {
		// Schemas can differ per block (dictionary-compressed vs hot
		// materialized); re-announce on change.
		if err := wr.WriteSchema(rb.Schema); err != nil {
			return wr.BytesWritten, fz, mat, err
		}
		if err := wr.WriteBatch(rb); err != nil {
			return wr.BytesWritten, fz, mat, err
		}
	}
	if err := wr.Close(); err != nil {
		return wr.BytesWritten, fz, mat, err
	}
	return wr.BytesWritten, fz, mat, nil
}
