// Package mainline is an in-memory, multi-versioned OLTP storage engine
// that keeps table data in a relaxed form of the Apache Arrow columnar
// format and lazily transforms cold blocks into canonical Arrow, so that
// analytical tools can consume the database with zero serialization cost.
//
// It is a from-scratch Go reproduction of "Mainlining Databases: Supporting
// Fast Transactional Workloads on Universal Columnar Data File Formats"
// (Li et al., VLDB 2020) — the storage architecture of the DB-X / NoisePage
// DBMS. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
//
// The API is transaction-centric, mirroring the paper's Data Table API:
// every read and write flows through a *Txn handle obtained from Begin (or
// the managed View/Update closures), and the handle owns its lifecycle —
// tx.Commit / tx.Abort return typed errors (ErrTxnFinished,
// ErrWriteConflict, ErrEngineClosed) instead of panicking on misuse.
//
// Quickstart:
//
//	eng, _ := mainline.Open()
//	defer eng.Close()
//	tbl, _ := eng.CreateTable("item", mainline.NewSchema(
//		mainline.Field{Name: "id", Type: mainline.INT64},
//		mainline.Field{Name: "name", Type: mainline.STRING, Nullable: true},
//	))
//	_ = eng.Update(func(tx *mainline.Txn) error {
//		row := tbl.NewRow()
//		row.Set("id", 101)
//		row.Set("name", "JOE")
//		_, err := tbl.Insert(tx, row)
//		return err
//	})
package mainline

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/exec"
	"mainline/internal/fault"
	"mainline/internal/gc"
	"mainline/internal/index"
	"mainline/internal/checkpoint/manifestlog"
	"mainline/internal/objstore"
	"mainline/internal/storage"
	"mainline/internal/tier"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/wal"
)

// Re-exported types so in-module consumers program against one package.
type (
	// Schema describes a table's columns.
	Schema = arrow.Schema
	// Field is one column of a schema.
	Field = arrow.Field
	// RecordBatch is a set of equal-length Arrow columns.
	RecordBatch = arrow.RecordBatch
	// ArrowTable is an ordered collection of record batches.
	ArrowTable = arrow.Table
	// TupleSlot identifies a stored tuple.
	TupleSlot = storage.TupleSlot
	// Projection selects a subset of columns.
	Projection = storage.Projection
	// ColumnID indexes a column in a table layout.
	ColumnID = storage.ColumnID
	// Index is an ordered secondary index.
	Index = index.Index
	// KeyBuilder builds memcomparable index keys.
	KeyBuilder = index.KeyBuilder
	// TransformStats counts transformation pipeline work.
	TransformStats = transform.Stats
	// ScanStats counts scan-path work (frozen vs versioned blocks, zone-map
	// pruning, tuples emitted).
	ScanStats = core.ScanStats
	// ExecStats counts analytical-executor work (morsels, partial merges,
	// workers, rows aggregated, dictionary fast-path blocks).
	ExecStats = exec.Stats
)

// Re-exported column types.
const (
	INT8    = arrow.INT8
	INT16   = arrow.INT16
	INT32   = arrow.INT32
	INT64   = arrow.INT64
	FLOAT64 = arrow.FLOAT64
	STRING  = arrow.STRING
	BINARY  = arrow.BINARY
)

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return arrow.NewSchema(fields...) }

// NewKeyBuilder creates a key builder with a capacity hint.
func NewKeyBuilder(capacity int) *KeyBuilder { return index.NewKeyBuilder(capacity) }

// NewBTreeIndex creates a single-tree ordered index — the standalone
// index library. For indexes the engine maintains transactionally, use
// Table.CreateIndex instead.
func NewBTreeIndex() Index { return index.NewBTree() }

// NewShardedIndex creates a hash-sharded ordered index for keys whose
// first prefixLen bytes partition the workload. prefixLen must be at
// least 1; a non-positive value returns ErrInvalidPrefixLen (earlier
// versions panicked at the first lookup). For engine-maintained indexes
// use Table.CreateShardedIndex instead.
func NewShardedIndex(shards, prefixLen int) (Index, error) {
	s, err := index.NewSharded(shards, prefixLen)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// TransformMode selects the gather target for cold blocks.
type TransformMode = transform.Mode

// Gather targets.
const (
	// TransformGather produces canonical Arrow (contiguous varlen buffers).
	TransformGather = transform.ModeGather
	// TransformDictionary produces dictionary-compressed columns.
	TransformDictionary = transform.ModeDictionary
)

// Engine is the assembled storage engine: block registry, transaction
// manager, garbage collector, transformation pipeline, catalog, and
// (optionally) the write-ahead log.
type Engine struct {
	opts Options

	reg         *storage.Registry
	mgr         *txn.Manager
	collector   *gc.GarbageCollector
	observer    *transform.Observer
	transformer *transform.Transformer
	logMgr      *wal.LogManager
	cat         *catalog.Catalog
	tier        *tier.Manager
	manifest    *manifestlog.Log

	// walRunning records that the log flush loop was started; durable
	// commits block on it. When false, durable commits drive the flush
	// themselves so they can never deadlock.
	walRunning bool

	// closeMu serializes Close against in-flight Commits: Commit holds
	// the read side from its closed-check through completion, so Close
	// cannot stop the flush loop between a durable committer's check and
	// its wait for the durability callback. Checkpoint holds the read
	// side too, for the same reason (it truncates through the log
	// manager).
	closeMu sync.RWMutex
	closed  atomic.Bool

	// fsys is the filesystem seam every persistence path goes through:
	// fault.OS{} in production, a fault.Injector under test/chaos.
	fsys fault.FS

	// degraded seals the engine read-only after a WAL write/fsync failure
	// (see enterDegraded). degradedCause holds the ErrDegraded-wrapped
	// root cause handed to refused operations.
	degraded      atomic.Bool
	degradedCause atomic.Value // error

	// Checkpoint subsystem state (DataDir mode).
	catSaveMu    sync.Mutex // serializes CreateTable + catalog.json install
	ckptMu       sync.Mutex // serializes checkpoints
	ckptStop     chan struct{}
	ckptDone     chan struct{}
	ckptStopOnce sync.Once

	// Cold-tier sweeper state (object-store mode, Background).
	tierStop     chan struct{}
	tierDone     chan struct{}
	tierStopOnce sync.Once

	// Checkpoint counters (Stats).
	ckptTaken         atomic.Int64
	ckptFailed        atomic.Int64
	ckptRows          atomic.Int64
	ckptBytes         atomic.Int64
	ckptSegsTruncated atomic.Int64
	ckptLastSeq       atomic.Uint64
	ckptLastTs        atomic.Uint64
	// ckptLastWall is the wall clock (unix nanos) of the last installed
	// checkpoint — Health()'s checkpoint-age source. 0 = never.
	ckptLastWall atomic.Int64

	// obs bundles the engine's always-on observability instruments
	// (latency histograms, duty meters, slow-op ring); see observe.go.
	obs *engineObs

	// recovery records what Open's bootstrap did; immutable afterwards.
	recovery RecoveryStats

	// needReanchor is set by the bootstrap when prior state was loaded;
	// Open takes the re-anchor checkpoint after the cold tier and
	// manifest log are wired so it commits a version record like every
	// other checkpoint. Cleared before Open returns.
	needReanchor bool

	// execCounters accumulates analytical-executor statistics
	// (Stats().Exec) across every Aggregate/Join on this engine.
	execCounters exec.Counters

	// serverStatsFn, when set via Admin().SetServerStats, snapshots the
	// attached network serving layer's counters for Stats().Server.
	serverStatsFn atomic.Value // func() ServerStats

	// dirLock releases the data directory's exclusive flock (nil without
	// DataDir). Held from bootstrap until Close.
	dirLock func()
}

// Open assembles an engine. With no options it is purely in-memory with
// the background loops off (drive them with RunGC / RunTransform /
// FreezeAll); see the With* options for WAL, background loops, and
// transformation tuning. The legacy Options struct is itself an Option, so
// Open(Options{...}) keeps working.
func Open(opts ...Option) (*Engine, error) {
	var o Options
	for _, opt := range opts {
		opt.apply(&o)
	}
	o.defaults()
	e := &Engine{opts: o}
	e.reg = storage.NewRegistry()
	e.mgr = txn.NewManager(e.reg)
	e.cat = catalog.New(e.reg)
	e.collector = gc.New(e.mgr)
	e.observer = transform.NewObserver()
	e.collector.SetObserver(e.observer)
	cfg := transform.Config{
		Threshold: o.ColdThreshold,
		GroupSize: o.CompactionGroupSize,
		Mode:      o.TransformMode,
		OnMove:    o.OnTupleMove,
	}
	e.transformer = transform.New(e.mgr, e.collector, e.observer, cfg)
	// Observability is always on: the instruments must exist before the
	// data-directory bootstrap below (its re-anchor checkpoint records
	// into them) and the cost is a few time.Now() calls per operation.
	e.obs = newEngineObs(o.SlowOpThreshold, o.SlowOpLog)
	e.obs.wire(e)
	e.fsys = o.FaultFS
	if e.fsys == nil {
		e.fsys = fault.OS{}
	}

	switch {
	case o.DataDir != "" && o.LogPath != "":
		return nil, fmt.Errorf("mainline: WithDataDir and WithWAL are mutually exclusive")
	case o.ObjectStoreDir != "" && o.ObjectStore != nil:
		return nil, fmt.Errorf("mainline: WithObjectStore and WithObjectStoreBackend are mutually exclusive")
	case (o.BlockCacheBytes != 0 || o.TierSweepInterval != 0 || o.TierEvictAfterSweeps != 0) &&
		o.ObjectStoreDir == "" && o.ObjectStore == nil:
		// A cache budget or sweep cadence with nowhere to evict to would be
		// a silent no-op — same trap as a checkpoint interval without a
		// data directory.
		return nil, fmt.Errorf("mainline: block cache and tier sweep options require an object store")
	case o.CheckpointInterval > 0 && o.DataDir == "":
		// Without a data directory there is nothing to checkpoint; a
		// silently ignored interval would leave the user believing their
		// log is bounded.
		return nil, fmt.Errorf("mainline: WithCheckpointInterval requires WithDataDir")
	case o.WALSegmentSize > 0 && o.DataDir == "":
		// The single-file WAL never rotates; ignoring the size silently
		// would be the same trap.
		return nil, fmt.Errorf("mainline: WithWALSegmentSize requires WithDataDir")
	case o.DataDir != "":
		// Durable data directory: rehydrate catalog, load the newest
		// valid checkpoint, replay the WAL tail, open the segmented log.
		if err := e.bootstrapDataDir(); err != nil {
			if e.dirLock != nil {
				e.dirLock()
			}
			return nil, err
		}
	case o.LogPath != "":
		sink, err := wal.OpenFileSinkFS(e.fsys, o.LogPath)
		if err != nil {
			return nil, err
		}
		e.logMgr = wal.NewLogManager(sink)
		e.logMgr.SyncDelay = o.LogSyncDelay
		e.logMgr.Attach(e.mgr)
	}
	if o.ObjectStoreDir != "" || o.ObjectStore != nil {
		store := o.ObjectStore
		if store == nil {
			fsStore, err := objstore.NewFSStore(o.ObjectStoreDir, e.fsys)
			if err != nil {
				if e.dirLock != nil {
					e.dirLock()
				}
				return nil, err
			}
			store = fsStore
		}
		budget := o.BlockCacheBytes
		switch budget {
		case BlockCacheUnlimited:
			budget = -1 // the cache treats negative as unbounded
		case BlockCacheNone:
			budget = 0 // and zero as no retention
		}
		// Buffer drops are deferred through the GC's action epoch so
		// readers that raced an eviction (and fell back to version-chain
		// reads holding slices into the buffer) finish first.
		e.tier = tier.NewManager(store, budget, o.TierEvictAfterSweeps, e.collector.RegisterAction)
		// Tables restored by the data-directory bootstrap above get the
		// tier too; their blocks all start resident (eviction state is
		// in-RAM only), so no cold read can have been attempted yet.
		for _, t := range e.cat.Tables() {
			t.DataTable.AttachColdTier(e.tier)
		}
		// With a data directory too, checkpoints commit version records
		// into the manifest log — Engine.AsOf's history source. Open
		// tolerates (and repairs) a torn or corrupted tail.
		if o.DataDir != "" {
			log, err := manifestlog.Open(e.fsys, filepath.Join(o.DataDir, manifestlog.LogName))
			if err != nil {
				if e.dirLock != nil {
					e.dirLock()
				}
				return nil, err
			}
			e.manifest = log
		}
	}
	// Deferred from bootstrap step 6: with the tier and manifest wired,
	// the re-anchor checkpoint is tiered too.
	if e.needReanchor {
		if err := e.reanchor(); err != nil {
			if e.dirLock != nil {
				e.dirLock()
			}
			return nil, err
		}
	}
	if e.logMgr != nil {
		e.obs.wireWAL(e.logMgr)
		// A WAL flush failure is fail-stop for durability, not for the
		// process: the log manager has already failed every waiter when
		// OnError runs; the engine then seals itself degraded read-only
		// instead of panicking (the library default).
		e.logMgr.OnError = e.enterDegraded
	}
	if o.Background {
		e.collector.Start(o.GCPeriod)
		if !o.DisableTransform {
			e.transformer.Start(o.TransformPeriod)
		}
		if e.logMgr != nil {
			e.logMgr.Start(o.LogFlushInterval)
			e.walRunning = true
		}
		if e.tier != nil {
			e.startTierSweeper(o.TierSweepInterval)
		}
	}
	// The checkpointer is independent of the Background loops: a
	// configured interval must never be a silent no-op, because without
	// checkpoints the WAL grows unboundedly.
	if o.DataDir != "" && o.CheckpointInterval > 0 {
		e.startCheckpointer(o.CheckpointInterval)
	}
	return e, nil
}

// Close stops background work and releases the log. It is idempotent:
// the first call wins, later calls return nil. After Close, Begin / View /
// Update and Commit of in-flight transactions return ErrEngineClosed.
func (e *Engine) Close() error {
	// The background checkpointer must stop before the write lock is
	// requested: its Checkpoint calls hold the read side, and a waiting
	// writer blocks new readers (see stopCheckpointer).
	e.stopCheckpointer()
	// The tier sweeper registers deferred buffer drops with the GC, so it
	// stops before the GC does.
	e.stopTierSweeper()
	// The write lock waits out in-flight Commits (which hold the read
	// side), so no committer can observe the engine open and then find
	// the flush loop stopped underneath its durability wait.
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	if e.opts.Background {
		e.transformer.Stop()
		e.collector.Stop()
	}
	var err error
	if e.logMgr != nil {
		err = e.logMgr.Close()
	}
	if e.dirLock != nil {
		e.dirLock()
		e.dirLock = nil
	}
	return err
}

// Closed reports whether Close has been called.
func (e *Engine) Closed() bool { return e.closed.Load() }

// CreateTable registers a table with the given Arrow schema. In degraded
// mode it refuses with ErrDegraded: the schema could not be durably
// recorded, so recovery would not know the table.
func (e *Engine) CreateTable(name string, schema *Schema) (*Table, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if e.degraded.Load() {
		return nil, e.degradedErr()
	}
	// In data-directory mode the in-memory registration and the
	// catalog.json install must be one serialized step: concurrent
	// creators otherwise race the snapshot-write-rename sequence and can
	// install a stale catalog missing a table the WAL already references.
	if e.opts.DataDir != "" {
		e.catSaveMu.Lock()
		defer e.catSaveMu.Unlock()
	}
	t, err := e.cat.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	if e.tier != nil {
		t.DataTable.AttachColdTier(e.tier)
	}
	if e.opts.DataDir != "" {
		// Persist the schema before any transaction can log records
		// against the new table: recovery reads catalog.json first, so
		// every table ID the WAL mentions must already be there. On
		// failure the registration is rolled back, so a durable engine
		// can never hold a table the next recovery won't know.
		if err := e.cat.Save(e.fsys, e.catalogPath()); err != nil {
			e.cat.Drop(name)
			return nil, fmt.Errorf("mainline: persisting catalog: %w", err)
		}
	}
	e.observer.Watch(t.DataTable)
	return &Table{Table: t, eng: e}, nil
}

// Table resolves a table by name (nil if absent).
func (e *Engine) Table(name string) *Table {
	t := e.cat.Table(name)
	if t == nil {
		return nil
	}
	return &Table{Table: t, eng: e}
}

// RunGC performs one synchronous garbage collection pass.
func (e *Engine) RunGC() { e.collector.RunOnce() }

// RunTransform performs one synchronous transformation pass and reports
// blocks frozen.
func (e *Engine) RunTransform() int { return e.transformer.RunOnce() }

// FreezeAll drives GC and transformation synchronously until every block of
// every table is frozen (or maxPasses passes elapse). Intended for
// benchmarks and examples that need a fully cold database.
func (e *Engine) FreezeAll(maxPasses int) bool {
	if maxPasses <= 0 {
		maxPasses = 100
	}
	for pass := 0; pass < maxPasses; pass++ {
		e.collector.RunOnce()
		e.transformer.ForcePass()
		if e.allFrozen() {
			return true
		}
	}
	return e.allFrozen()
}

func (e *Engine) allFrozen() bool {
	for _, t := range e.cat.Tables() {
		for _, b := range t.Blocks() {
			if b.InsertHead() > 0 && b.State() != storage.StateFrozen {
				return false
			}
		}
	}
	return true
}

// BlockStates counts blocks of the named table by state:
// [hot, cooling, freezing, frozen] — Figure 10b's metric.
func (e *Engine) BlockStates(table string) (counts [4]int) {
	t := e.cat.Table(table)
	if t == nil {
		return
	}
	for _, b := range t.Blocks() {
		s := b.State()
		if s == storage.StateThawing {
			s = storage.StateHot // transient drain on the way to hot
		}
		counts[s]++
	}
	return
}

// Recover replays a WAL file into this (fresh) engine. The commit hook is
// detached for the duration so replayed transactions are not re-appended
// to the engine's own log. Replay streams the file, so memory is bounded
// by one transaction's records, not the log size.
//
// Recovering the engine's own live WAL is rejected with ErrRecoverOwnWAL:
// post-recovery commits draw fresh timestamps from a reset counter, which
// would collide with the existing records and silently corrupt the log —
// recover into a fresh log and retire the old file.
//
// Recover is also rejected (ErrRecoverDataDir) on engines opened with
// WithDataDir: replay detaches the commit hook, so the imported
// transactions would exist only in memory — in neither the checkpoint nor
// the WAL tail — and a crash before the next checkpoint would silently
// drop them despite the data directory's durability contract. Data
// directories recover themselves at Open.
func (e *Engine) Recover(path string) error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if e.ownsWALPath(path) {
		return ErrRecoverOwnWAL
	}
	if e.opts.DataDir != "" {
		return ErrRecoverDataDir
	}
	if e.logMgr != nil {
		e.mgr.SetCommitHook(nil)
		defer e.logMgr.Attach(e.mgr)
	}
	_, err := wal.Recover(path, e.mgr, e.cat.DataTables())
	return err
}

// FlushLog forces one synchronous group commit (no-op without a log or
// after Close).
func (e *Engine) FlushLog() {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return
	}
	if e.logMgr != nil {
		e.logMgr.FlushOnce()
	}
}
