package mainline

import (
	"fmt"
	"math"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/storage"
)

// Pred is a typed single-column predicate for Table.Filter and
// Table.ScanBatches, built with Eq / Lt / Le / Gt / Ge / Between. The
// engine pushes it down to the scan: frozen blocks whose zone maps prove
// no row can match are pruned without being touched, and the survivors are
// filtered by typed kernels running directly over Arrow buffers. NULL
// values never match any predicate.
type Pred struct {
	col    string
	op     predOp
	v1, v2 any
}

type predOp uint8

const (
	opEq predOp = iota
	opLt
	opLe
	opGt
	opGe
	opBetween
)

// Eq matches rows whose named column equals v.
func Eq(col string, v any) *Pred { return &Pred{col: col, op: opEq, v1: v} }

// Lt matches rows whose named column is strictly less than v.
func Lt(col string, v any) *Pred { return &Pred{col: col, op: opLt, v1: v} }

// Le matches rows whose named column is less than or equal to v.
func Le(col string, v any) *Pred { return &Pred{col: col, op: opLe, v1: v} }

// Gt matches rows whose named column is strictly greater than v.
func Gt(col string, v any) *Pred { return &Pred{col: col, op: opGt, v1: v} }

// Ge matches rows whose named column is greater than or equal to v.
func Ge(col string, v any) *Pred { return &Pred{col: col, op: opGe, v1: v} }

// Between matches rows whose named column lies in [lo, hi], both bounds
// inclusive.
func Between(col string, lo, hi any) *Pred {
	return &Pred{col: col, op: opBetween, v1: lo, v2: hi}
}

// compile resolves the predicate against a table's schema into the typed
// range form the scan kernels evaluate.
func (p *Pred) compile(t *catalog.Table) (*core.Predicate, error) {
	f := t.Schema.FieldIndex(p.col)
	if f < 0 {
		return nil, fmt.Errorf("mainline: no column %q", p.col)
	}
	col := storage.ColumnID(f)
	switch ftype := t.Schema.Fields[f].Type; {
	case ftype == arrow.FLOAT64:
		return p.compileFloat(col)
	case ftype == arrow.STRING || ftype == arrow.BINARY:
		return p.compileBytes(col)
	case ftype.FixedWidth():
		return p.compileInt(col)
	default:
		return nil, fmt.Errorf("mainline: column %q: unsupported predicate type %s", p.col, ftype)
	}
}

func (p *Pred) compileInt(col storage.ColumnID) (*core.Predicate, error) {
	v1, err := predInt(p.col, p.v1)
	if err != nil {
		return nil, err
	}
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	switch p.op {
	case opEq:
		lo, hi = v1, v1
	case opLt:
		if v1 == math.MinInt64 {
			return core.MatchNonePred(col), nil
		}
		hi = v1 - 1
	case opLe:
		hi = v1
	case opGt:
		if v1 == math.MaxInt64 {
			return core.MatchNonePred(col), nil
		}
		lo = v1 + 1
	case opGe:
		lo = v1
	case opBetween:
		v2, err := predInt(p.col, p.v2)
		if err != nil {
			return nil, err
		}
		lo, hi = v1, v2
	}
	return core.NewIntPred(col, lo, hi), nil
}

func (p *Pred) compileFloat(col storage.ColumnID) (*core.Predicate, error) {
	v1, err := predFloat(p.col, p.v1)
	if err != nil {
		return nil, err
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	loStrict, hiStrict := false, false
	switch p.op {
	case opEq:
		lo, hi = v1, v1
	case opLt:
		hi, hiStrict = v1, true
	case opLe:
		hi = v1
	case opGt:
		lo, loStrict = v1, true
	case opGe:
		lo = v1
	case opBetween:
		v2, err := predFloat(p.col, p.v2)
		if err != nil {
			return nil, err
		}
		lo, hi = v1, v2
	}
	return core.NewFloatPred(col, lo, hi, loStrict, hiStrict), nil
}

func (p *Pred) compileBytes(col storage.ColumnID) (*core.Predicate, error) {
	v1, err := predBytes(p.col, p.v1)
	if err != nil {
		return nil, err
	}
	var lo, hi []byte
	loStrict, hiStrict := false, false
	switch p.op {
	case opEq:
		lo, hi = v1, v1
	case opLt:
		hi, hiStrict = v1, true
	case opLe:
		hi = v1
	case opGt:
		lo, loStrict = v1, true
	case opGe:
		lo = v1
	case opBetween:
		v2, err := predBytes(p.col, p.v2)
		if err != nil {
			return nil, err
		}
		lo, hi = v1, v2
	}
	return core.NewBytesPred(col, lo, hi, loStrict, hiStrict), nil
}

func predInt(col string, v any) (int64, error) {
	switch x := v.(type) {
	case int:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case int64:
		return x, nil
	default:
		return 0, fmt.Errorf("mainline: column %q is an integer column, cannot compare with %T", col, v)
	}
}

func predFloat(col string, v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("mainline: column %q is FLOAT64, cannot compare with %T", col, v)
	}
}

func predBytes(col string, v any) ([]byte, error) {
	switch x := v.(type) {
	case string:
		b := make([]byte, len(x))
		copy(b, x)
		return b, nil
	case []byte:
		return x, nil
	default:
		return nil, fmt.Errorf("mainline: column %q is variable-length, cannot compare with %T", col, v)
	}
}

// Batch is a column-oriented view of visible tuples from one block,
// delivered by Table.ScanBatches. Frozen-block batches alias the engine's
// Arrow memory zero-copy; hot-block batches read from a columnar scratch.
// A batch — and every slice obtained from it — is valid only until the
// callback returns. Resolve column names to positions once with Column,
// then use the positional accessors.
type Batch struct {
	b      *core.Batch
	schema *Schema
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.b.Len() }

// Frozen reports whether the batch aliases frozen Arrow memory (true) or a
// materialized hot-block scratch (false).
func (b *Batch) Frozen() bool { return b.b.Frozen() }

// Column resolves a schema column name to its position in the batch's
// projection, or -1 when the column is absent.
func (b *Batch) Column(name string) int {
	f := b.schema.FieldIndex(name)
	if f < 0 {
		return -1
	}
	return b.b.Projection().IndexOf(storage.ColumnID(f))
}

// Slot returns the tuple slot of row i (usable with Table.Select/Update).
func (b *Batch) Slot(i int) TupleSlot { return b.b.Slot(i) }

// IsNull reports whether column position col of row i is NULL.
func (b *Batch) IsNull(col, i int) bool { return b.b.IsNull(col, i) }

// Int64 loads column position col of row i as int64 (8-byte columns).
func (b *Batch) Int64(col, i int) int64 { return b.b.Int64(col, i) }

// Int loads column position col of row i widened to int64 by column width.
func (b *Batch) Int(col, i int) int64 { return b.b.Int(col, i) }

// Float64 loads column position col of row i (FLOAT64 columns).
func (b *Batch) Float64(col, i int) float64 { return b.b.Float64(col, i) }

// Bytes returns the varlen value at column position col of row i; nil for
// NULL. The slice aliases batch memory — copy it to retain.
func (b *Batch) Bytes(col, i int) []byte { return b.b.Bytes(col, i) }

// String returns the varlen value at column position col of row i as a
// string ("" for NULL).
func (b *Batch) String(col, i int) string { return string(b.b.Bytes(col, i)) }

// ScanBatches visits the tuples visible to tx that satisfy pred (nil for
// all), batch-at-a-time over the named columns (all columns when cols is
// nil). It is the vectorized counterpart of Scan: frozen blocks are
// zone-map pruned and kernel-filtered without materialization. fn must not
// retain the batch; returning false stops the scan.
func (t *Table) ScanBatches(tx *Txn, cols []string, pred *Pred, fn func(b *Batch) bool) error {
	if err := tx.usable(); err != nil {
		return err
	}
	proj, cpred, err := t.scanArgs(cols, pred)
	if err != nil {
		return err
	}
	pub := &Batch{schema: t.Schema}
	return t.DataTable.ScanBatches(tx.raw, proj, cpred, func(b *core.Batch) bool {
		pub.b = b
		return fn(pub)
	})
}

// Filter visits every tuple visible to tx that satisfies pred,
// materializing the named columns (all when cols is nil) into row and
// invoking fn — Scan with predicate pushdown: the filtering runs
// vectorized and only matching rows are materialized. fn must not retain
// row; returning false stops the scan.
func (t *Table) Filter(tx *Txn, pred *Pred, cols []string, fn func(slot TupleSlot, row *Row) bool) error {
	if err := tx.usable(); err != nil {
		return err
	}
	proj, cpred, err := t.scanArgs(cols, pred)
	if err != nil {
		return err
	}
	row := &Row{ProjectedRow: proj.NewRow(), schema: t.Schema}
	return t.DataTable.ScanBatches(tx.raw, proj, cpred, func(b *core.Batch) bool {
		nc := proj.NumCols()
		for i := 0; i < b.Len(); i++ {
			pr := row.ProjectedRow
			pr.Reset()
			for j := 0; j < nc; j++ {
				if b.IsNull(j, i) {
					pr.SetNull(j)
					continue
				}
				if proj.IsVarlenAt(j) {
					pr.SetVarlen(j, b.Bytes(j, i))
				} else {
					b.FixedAt(j, i, pr.FixedBytes(j))
					pr.Nulls.Clear(j)
				}
			}
			if !fn(b.Slot(i), row) {
				return false
			}
		}
		return true
	})
}

// scanArgs resolves the projection (cached) and compiles the predicate.
func (t *Table) scanArgs(cols []string, pred *Pred) (*storage.Projection, *core.Predicate, error) {
	proj := t.AllColumnsProjection()
	if len(cols) > 0 {
		var err error
		proj, err = t.Table.ProjectionOf(cols...)
		if err != nil {
			return nil, nil, err
		}
	}
	var cpred *core.Predicate
	if pred != nil {
		var err error
		cpred, err = pred.compile(t.Table)
		if err != nil {
			return nil, nil, err
		}
	}
	return proj, cpred, nil
}
