//go:build !race

package mainline_test

const raceEnabled = false
