package mainline

import (
	"io"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/storage"
)

// Table wraps a catalog table with the handle-scoped data API: every read
// and write takes a *Txn. The embedded catalog.Table keeps schema, layout,
// index, and block inspection available.
type Table struct {
	*catalog.Table
	eng *Engine
}

// NewRow allocates a full-width row for inserts.
func (t *Table) NewRow() *Row {
	return &Row{ProjectedRow: t.AllColumnsProjection().NewRow(), schema: t.Schema}
}

// NewRowFor allocates a row over the named columns only — the shape for
// partial updates and projected reads.
func (t *Table) NewRowFor(cols ...string) (*Row, error) {
	proj, err := t.Table.ProjectionOf(cols...)
	if err != nil {
		return nil, err
	}
	return &Row{ProjectedRow: proj.NewRow(), schema: t.Schema}, nil
}

// Insert adds a tuple with the values of row (columns absent from the
// row's projection become NULL) and returns its slot.
func (t *Table) Insert(tx *Txn, row *Row) (TupleSlot, error) {
	if err := tx.writable(); err != nil {
		return 0, err
	}
	return t.DataTable.Insert(tx.raw, row.ProjectedRow)
}

// Update applies the values in row to the tuple at slot. A concurrent
// writer of the same tuple surfaces as ErrWriteConflict — abort and retry
// on a fresh snapshot (Engine.Update automates that).
func (t *Table) Update(tx *Txn, slot TupleSlot, row *Row) error {
	if err := tx.writable(); err != nil {
		return err
	}
	return t.DataTable.Update(tx.raw, slot, row.ProjectedRow)
}

// Delete removes the tuple at slot from tx's snapshot onward.
func (t *Table) Delete(tx *Txn, slot TupleSlot) error {
	if err := tx.writable(); err != nil {
		return err
	}
	return t.DataTable.Delete(tx.raw, slot)
}

// Select materializes the version of the tuple at slot visible to tx into
// out. found is false when the tuple does not exist in tx's snapshot.
func (t *Table) Select(tx *Txn, slot TupleSlot, out *Row) (found bool, err error) {
	if err := tx.usable(); err != nil {
		return false, err
	}
	return t.DataTable.Select(tx.raw, slot, out.ProjectedRow)
}

// Scan visits every tuple visible to tx, materializing the named columns
// (all columns when cols is nil) and invoking fn. fn must not retain row.
// Returning false from fn stops the scan.
func (t *Table) Scan(tx *Txn, cols []string, fn func(slot TupleSlot, row *Row) bool) error {
	if err := tx.usable(); err != nil {
		return err
	}
	proj := t.AllColumnsProjection()
	if len(cols) > 0 {
		var err error
		proj, err = t.Table.ProjectionOf(cols...)
		if err != nil {
			return err
		}
	}
	row := &Row{schema: t.Schema}
	return t.DataTable.Scan(tx.raw, proj, func(slot storage.TupleSlot, pr *storage.ProjectedRow) bool {
		row.ProjectedRow = pr
		return fn(slot, row)
	})
}

// CountVisible returns the number of tuples visible to tx.
func (t *Table) CountVisible(tx *Txn) (int, error) {
	if err := tx.usable(); err != nil {
		return 0, err
	}
	return t.DataTable.CountVisible(tx.raw), nil
}

// ExportBatches materializes the table as Arrow record batches in tx's
// snapshot: frozen blocks zero-copy, hot blocks transactionally
// materialized. It reports how many blocks took each path.
func (t *Table) ExportBatches(tx *Txn) (batches []*RecordBatch, frozen, materialized int, err error) {
	if err := tx.usable(); err != nil {
		return nil, 0, 0, err
	}
	return t.Table.ExportBatches(tx.raw)
}

// ExportIPC streams the table to w in the Arrow IPC format: frozen blocks
// zero-copy, hot blocks transactionally materialized. It returns bytes
// written and how many blocks took each path.
func (t *Table) ExportIPC(w io.Writer, tx *Txn) (written int64, frozen, materialized int, err error) {
	batches, fz, mat, err := t.ExportBatches(tx)
	if err != nil {
		return 0, 0, 0, err
	}
	wr := arrow.NewWriter(w)
	for _, rb := range batches {
		// Schemas can differ per block (dictionary-compressed vs hot
		// materialized); re-announce on change.
		if err := wr.WriteSchema(rb.Schema); err != nil {
			return wr.BytesWritten, fz, mat, err
		}
		if err := wr.WriteBatch(rb); err != nil {
			return wr.BytesWritten, fz, mat, err
		}
	}
	if err := wr.Close(); err != nil {
		return wr.BytesWritten, fz, mat, err
	}
	return wr.BytesWritten, fz, mat, nil
}
