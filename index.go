package mainline

import (
	"fmt"
	"runtime"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/storage"
)

// IndexHandle names an engine-managed secondary index on a table. The
// engine maintains the index inside the transaction protocol: writes
// buffer index deltas in the transaction's write set, commits publish them
// under the commit latch, aborts discard them, and deleted entries leave
// the tree only after every snapshot that could need them has finished.
// Reads through GetBy / RangeBy / PrefixBy re-verify every candidate
// against the MVCC version chain, so a stale entry can never surface a
// tuple the transaction is not entitled to see.
//
// Obtain handles from Table.CreateIndex / Table.CreateShardedIndex /
// Table.Index. Handles are safe for concurrent use.
type IndexHandle struct {
	t  *Table
	ti *core.TableIndex
}

// Name returns the index's registered name.
func (h *IndexHandle) Name() string { return h.ti.Name() }

// Columns returns the schema column names forming the key, in key order.
func (h *IndexHandle) Columns() []string {
	ids := h.ti.KeyColumns()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = h.t.Schema.Fields[int(id)].Name
	}
	return out
}

// Len returns the number of live entries (stale entries awaiting deferred
// removal included).
func (h *IndexHandle) Len() int { return h.ti.Len() }

// CreateIndex declares an engine-managed index named name over the given
// schema columns (key order), registers it in the catalog — persisted to
// catalog.json and rebuilt at recovery when the engine has a data
// directory — and backfills it from the rows already visible. From this
// call on, the engine maintains the index transactionally; rows with a
// NULL key column are not indexed.
func (t *Table) CreateIndex(name string, cols ...string) (*IndexHandle, error) {
	return t.createIndex(catalog.IndexSpec{Name: name, Columns: cols})
}

// CreateShardedIndex is CreateIndex with the tree hash-partitioned across
// shards lock domains by the key's leading column — the shape for
// workloads whose keys open with a partition column (one shard count per
// expected concurrent writer is a good default). Range reads that fix the
// leading column stay within one shard.
func (t *Table) CreateShardedIndex(name string, shards int, cols ...string) (*IndexHandle, error) {
	return t.createIndex(catalog.IndexSpec{Name: name, Columns: cols, Shards: shards})
}

func (t *Table) createIndex(spec catalog.IndexSpec) (*IndexHandle, error) {
	e := t.eng
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	// Data-directory mode: registration and catalog.json install are one
	// serialized step, as in CreateTable — recovery must know every index
	// it may be asked to rebuild.
	if e.opts.DataDir != "" {
		e.catSaveMu.Lock()
		defer e.catSaveMu.Unlock()
	}
	ti, err := t.Table.CreateIndex(spec)
	if err != nil {
		return nil, err
	}
	rollback := func() {
		t.Table.DropIndex(spec.Name)
		if e.opts.DataDir != "" {
			// Best-effort: the spec must not survive in catalog.json when
			// the handle was never returned.
			_ = e.cat.Save(e.fsys, e.catalogPath())
		}
	}
	if e.opts.DataDir != "" {
		if err := e.cat.Save(e.fsys, e.catalogPath()); err != nil {
			t.Table.DropIndex(spec.Name)
			return nil, fmt.Errorf("mainline: persisting catalog: %w", err)
		}
	}
	// Wait out every transaction that began before maintenance attached:
	// such a writer buffers no index deltas, so the backfill snapshot must
	// start after it finishes or its rows could be missed by both paths.
	// (Consequence: do not call CreateIndex while holding an open
	// transaction on the same goroutine.) Writers beginning after the
	// attach maintain the index themselves; the backfill deduplicates the
	// overlap.
	attachTs := e.mgr.Timestamp()
	for e.mgr.OldestActiveTs() <= attachTs {
		runtime.Gosched()
	}
	tx := e.mgr.Begin()
	_, err = ti.Backfill(tx)
	e.mgr.Commit(tx, nil)
	if err != nil {
		// A partial entry set cannot be served — verification filters wrong
		// entries but cannot restore missing ones.
		rollback()
		return nil, fmt.Errorf("mainline: backfilling index %s.%s: %w", t.Name, spec.Name, err)
	}
	return &IndexHandle{t: t, ti: ti}, nil
}

// Index returns the named engine-managed index, or nil when the table has
// no index of that name.
func (t *Table) Index(name string) *IndexHandle {
	ti := t.Table.Index(name)
	if ti == nil {
		return nil
	}
	return &IndexHandle{t: t, ti: ti}
}

// appendKeyVal encodes one key component, schema-typed: integer values
// (any signed Go integer, range-checked) for fixed-width columns, float64
// for FLOAT64 columns, string/[]byte for varlen columns.
func (h *IndexHandle) appendKeyVal(kb *KeyBuilder, col ColumnID, name string, v any) error {
	layout := h.t.Layout()
	if layout.IsVarlen(col) {
		switch x := v.(type) {
		case string:
			kb.String(x)
		case []byte:
			kb.RawBytes(x)
		default:
			return fmt.Errorf("mainline: index %s: key column %q is variable-length, cannot use %T", h.Name(), name, v)
		}
		return nil
	}
	if h.t.Schema.Fields[int(col)].Type == arrow.FLOAT64 {
		switch x := v.(type) {
		case float64:
			kb.Float64(x)
		case float32:
			kb.Float64(float64(x))
		case int:
			kb.Float64(float64(x))
		case int64:
			kb.Float64(float64(x))
		default:
			return fmt.Errorf("mainline: index %s: key column %q is FLOAT64, cannot use %T", h.Name(), name, v)
		}
		return nil
	}
	var n int64
	switch x := v.(type) {
	case int:
		n = int64(x)
	case int8:
		n = int64(x)
	case int16:
		n = int64(x)
	case int32:
		n = int64(x)
	case int64:
		n = x
	default:
		return fmt.Errorf("mainline: index %s: key column %q is an integer column, cannot use %T", h.Name(), name, v)
	}
	switch width := layout.AttrSize(col); width {
	case 8:
		kb.Int64(n)
	case 4:
		if n < -1<<31 || n > 1<<31-1 {
			return fmt.Errorf("mainline: index %s: value %d overflows 4-byte key column %q", h.Name(), n, name)
		}
		kb.Int32(int32(n))
	case 2:
		if n < -1<<15 || n > 1<<15-1 {
			return fmt.Errorf("mainline: index %s: value %d overflows 2-byte key column %q", h.Name(), n, name)
		}
		kb.Int16(int16(n))
	default:
		if n < -1<<7 || n > 1<<7-1 {
			return fmt.Errorf("mainline: index %s: value %d overflows 1-byte key column %q", h.Name(), n, name)
		}
		kb.Int8(int8(n))
	}
	return nil
}

// encodeKey builds the memcomparable key for vals. requireFull demands one
// value per key column (point lookups); otherwise a prefix of the key
// columns is accepted (range and prefix scans).
func (h *IndexHandle) encodeKey(vals []any, requireFull bool) ([]byte, error) {
	ids := h.ti.KeyColumns()
	if len(vals) > len(ids) {
		return nil, fmt.Errorf("mainline: index %s has %d key columns, got %d values", h.Name(), len(ids), len(vals))
	}
	if requireFull && len(vals) != len(ids) {
		return nil, fmt.Errorf("mainline: index %s point lookup needs all %d key columns, got %d values", h.Name(), len(ids), len(vals))
	}
	kb := NewKeyBuilder(8 * len(vals))
	for i, v := range vals {
		name := h.t.Schema.Fields[int(ids[i])].Name
		if err := h.appendKeyVal(kb, ids[i], name, v); err != nil {
			return nil, err
		}
	}
	return kb.Bytes(), nil
}

// GetBy returns the slot of the tuple matching the full index key that is
// visible to the transaction, materializing it into out when out is
// non-nil (obtain out from Table.NewRow / Table.NewRowFor). Key values are
// schema-typed, one per key column. The read sees the transaction's own
// uncommitted writes; stale index entries are filtered by re-verifying
// against the version chain, never surfaced.
func (tx *Txn) GetBy(idx *IndexHandle, out *Row, key ...any) (TupleSlot, bool, error) {
	if err := tx.usable(); err != nil {
		return 0, false, err
	}
	k, err := idx.encodeKey(key, true)
	if err != nil {
		return 0, false, err
	}
	var pr *storage.ProjectedRow
	if out != nil {
		pr = out.ProjectedRow
	}
	t0 := time.Now()
	slot, ok := idx.ti.GetVisible(tx.raw, k, pr)
	tx.eng.obs.indexLookup.RecordSince(t0)
	return slot, ok, nil
}

// rangeRow prepares the materialization row for a range read over the
// named columns (all columns when cols is nil).
func (tx *Txn) rangeRow(idx *IndexHandle, cols []string) (*Row, error) {
	proj := idx.t.AllColumnsProjection()
	if len(cols) > 0 {
		var err error
		proj, err = idx.t.Table.ProjectionOf(cols...)
		if err != nil {
			return nil, err
		}
	}
	return &Row{ProjectedRow: proj.NewRow(), schema: idx.t.Schema}, nil
}

// RangeBy visits, in key order, every tuple visible to the transaction
// whose index key lies in [lo, hi) — lo and hi are schema-typed value
// tuples over a prefix of the key columns; hi nil means unbounded. The
// named columns (all when cols is nil) are materialized into a reused row;
// fn must not retain it, and returning false stops the scan. Like GetBy,
// every candidate is re-verified against the version chain, and the
// transaction's own uncommitted inserts are merged in key order.
func (tx *Txn) RangeBy(idx *IndexHandle, lo, hi []any, cols []string, fn func(slot TupleSlot, row *Row) bool) error {
	if err := tx.usable(); err != nil {
		return err
	}
	loKey, err := idx.encodeKey(lo, false)
	if err != nil {
		return err
	}
	var hiKey []byte
	if len(hi) > 0 {
		if hiKey, err = idx.encodeKey(hi, false); err != nil {
			return err
		}
	}
	row, err := tx.rangeRow(idx, cols)
	if err != nil {
		return err
	}
	t0 := time.Now()
	idx.ti.Ascend(tx.raw, loKey, hiKey, row.ProjectedRow, func(slot storage.TupleSlot, _ *storage.ProjectedRow) bool {
		return fn(slot, row)
	})
	tx.eng.obs.indexLookup.RecordSince(t0)
	return nil
}

// PrefixBy visits, in key order, every visible tuple whose index key
// starts with the given schema-typed prefix (a leading subset of the key
// columns), with RangeBy's materialization and verification semantics.
func (tx *Txn) PrefixBy(idx *IndexHandle, prefix []any, cols []string, fn func(slot TupleSlot, row *Row) bool) error {
	if err := tx.usable(); err != nil {
		return err
	}
	p, err := idx.encodeKey(prefix, false)
	if err != nil {
		return err
	}
	row, err := tx.rangeRow(idx, cols)
	if err != nil {
		return err
	}
	t0 := time.Now()
	idx.ti.AscendPrefix(tx.raw, p, row.ProjectedRow, func(slot storage.TupleSlot, _ *storage.ProjectedRow) bool {
		return fn(slot, row)
	})
	tx.eng.obs.indexLookup.RecordSince(t0)
	return nil
}
