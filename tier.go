package mainline

import (
	"time"

	"mainline/internal/tier"
)

// Engine-level wiring of the cold storage tier (internal/tier): the
// background eviction sweeper, the administrative eviction surface, and
// the TierStats snapshot. The tier itself is configured with
// WithObjectStore / WithObjectStoreBackend.

// TierStats counts cold-tier activity (Enabled false without an object
// store). Eviction and cache traffic come from the tier manager; the
// cold-scan counters (blocks served from the store, cold blocks pruned
// by zone maps without a fetch) live in Stats().Scan.
type TierStats struct {
	// Enabled reports whether the engine was opened with an object store.
	Enabled bool
	// Evictions counts blocks demoted to the store; Rethaws counts
	// evicted blocks whose buffers were re-installed for a write.
	Evictions int64
	Rethaws   int64
	// Fetches counts object-store reads of cold payloads (cache misses
	// that reached the store); CacheHits / CacheMisses / CacheEvictions
	// count block-cache traffic, and CacheBytes is its current footprint.
	Fetches        int64
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheBytes     int64
	// BytesUploaded / BytesFetched total the object-store volume in each
	// direction.
	BytesUploaded int64
	BytesFetched  int64
}

// startTierSweeper launches the background eviction loop: every interval
// it ages each frozen resident block and demotes those frozen for the
// configured number of consecutive sweeps. A sweep error (store
// unreachable, disk full) leaves the remaining blocks resident and is
// retried next interval — eviction is an optimization, never required
// for correctness.
func (e *Engine) startTierSweeper(interval time.Duration) {
	e.tierStop = make(chan struct{})
	e.tierDone = make(chan struct{})
	go func() {
		defer close(e.tierDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-e.tierStop:
				return
			case <-t.C:
				_, _ = e.tierSweepOnce(false)
			}
		}
	}()
}

// stopTierSweeper halts the background eviction loop (idempotent, no-op
// when it never started).
func (e *Engine) stopTierSweeper() {
	if e.tierStop == nil {
		return
	}
	e.tierStopOnce.Do(func() {
		close(e.tierStop)
		<-e.tierDone
	})
}

// tierSweepOnce runs one eviction sweep over every table. force ignores
// sweep ages. The first store error aborts the sweep.
func (e *Engine) tierSweepOnce(force bool) (int, error) {
	total := 0
	for _, t := range e.cat.Tables() {
		n, err := e.tier.SweepBlocks(t.Blocks(), force)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TierSweep runs one synchronous age-based eviction sweep over every
// table and reports blocks evicted — the manual drive for engines
// without Background (tests, benchmarks). Returns ErrNoObjectStore
// without an object store.
func (a Admin) TierSweep() (int, error) {
	if a.eng.tier == nil {
		return 0, ErrNoObjectStore
	}
	return a.eng.tierSweepOnce(false)
}

// EvictAll force-evicts every currently frozen resident block to the
// object store, regardless of sweep age, and reports how many were
// demoted. Blocks that are hot, cooling, or still carry version chains
// are skipped — freeze first (FreezeAll) for a fully cold database.
// Returns ErrNoObjectStore without an object store.
func (a Admin) EvictAll() (int, error) {
	if a.eng.tier == nil {
		return 0, ErrNoObjectStore
	}
	return a.eng.tierSweepOnce(true)
}

// Tier returns the cold-tier manager (nil without an object store) —
// the seam tier tests and benchmarks program against directly.
func (a Admin) Tier() *tier.Manager { return a.eng.tier }

// tierStats snapshots the manager's counters for Stats().
func (e *Engine) tierStats() TierStats {
	if e.tier == nil {
		return TierStats{}
	}
	c := e.tier.Snapshot()
	return TierStats{
		Enabled:        true,
		Evictions:      c.Evictions,
		Rethaws:        c.Rethaws,
		Fetches:        c.Fetches,
		CacheHits:      c.CacheHits,
		CacheMisses:    c.CacheMisses,
		CacheEvictions: c.CacheEvicts,
		CacheBytes:     c.CacheBytes,
		BytesUploaded:  c.BytesUploaded,
		BytesFetched:   c.BytesFetched,
	}
}
