package mainline_test

// One testing.B benchmark per reproduced figure (paper §6). These run the
// same harnesses as cmd/mainline-bench at reduced scale so `go test
// -bench=.` finishes in minutes; use the CLI for paper-scale sweeps.

import (
	"fmt"
	"testing"
	"time"

	"mainline"
	"mainline/internal/bench"
	"mainline/internal/workload/tpcc"
)

// BenchmarkFig01DataTransformCost measures the three Figure 1 export paths
// end to end (in-memory Arrow, CSV dump+parse, row wire protocol).
func BenchmarkFig01DataTransformCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig1(20000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(benchWriter{b})
		}
	}
}

// BenchmarkFig10TPCCThroughput runs the TPC-C sweep (Figure 10) with the
// three transformation configurations.
func BenchmarkFig10TPCCThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultFig10Config()
		cfg.Workers = []int{1, 2, 4}
		cfg.Duration = 300 * time.Millisecond
		t, err := bench.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(benchWriter{b})
		}
	}
}

// BenchmarkFig11RowVsColumn measures raw insert/update speed for the
// simulated row store vs the columnar layout (Figure 11).
func BenchmarkFig11RowVsColumn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig11([]int{1, 8, 32, 64}, 40000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(benchWriter{b})
		}
	}
}

// BenchmarkFig12Transformation measures the four block-transformation
// algorithms across emptiness levels (Figure 12a), including the phase
// breakdown (12b).
func BenchmarkFig12Transformation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig12(bench.VariantMixed, 4, 0, []int{0, 5, 20, 60})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Table.Print(benchWriter{b})
		}
	}
}

// BenchmarkFig12FixedVsVarlen runs the layout variants (Figures 12c/12d).
func BenchmarkFig12FixedVsVarlen(b *testing.B) {
	for _, variant := range []bench.LayoutVariant{bench.VariantFixed, bench.VariantVarlen} {
		b.Run(variant.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig12(variant, 4, 0, []int{5, 40}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13WriteAmplification counts tuple movements for snapshot vs
// approximate vs optimal compaction (Figure 13).
func BenchmarkFig13WriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig13(bench.VariantMixed, 8, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(benchWriter{b})
		}
	}
}

// BenchmarkFig14CompactionGroupSize sweeps group sizes (Figure 14).
func BenchmarkFig14CompactionGroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig14(bench.VariantMixed, 8, 0, []int{1, 2, 4, 8}, []int{5, 20, 60})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(benchWriter{b})
		}
	}
}

// BenchmarkFig15DataExport measures the four export mechanisms against
// frozen fractions (Figure 15).
func BenchmarkFig15DataExport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig15(20000, []int{0, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(benchWriter{b})
		}
	}
}

// BenchmarkCommitPipeline sweeps the parallel commit pipeline: TPC-C
// terminals issuing durable commits against the group-commit WAL, 1→8
// workers. txns/fsync is the achieved group size; the speedup column is
// the pipeline's scaling (I/O amortization, so it shows even on one core).
func BenchmarkCommitPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultGroupCommitConfig()
		cfg.Duration = 500 * time.Millisecond
		t, _, err := bench.GroupCommit(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(benchWriter{b})
		}
	}
}

// TestCommitPipelineScaling asserts the headline property of the parallel
// commit pipeline: aggregate durable-commit throughput at 4 workers is at
// least 2x the 1-worker figure (groups amortize the sync cost). The probe
// uses the emulated-latency sink so the result does not depend on the
// host's fsync speed.
func TestCommitPipelineScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent scaling probe")
	}
	if raceEnabled {
		t.Skip("race-detector overhead makes the sweep CPU-bound")
	}
	cfg := bench.DefaultGroupCommitConfig()
	cfg.Workers = []int{1, 4}
	cfg.Duration = time.Second
	_, pts, err := bench.GroupCommit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, at4 := pts[0].TxnPerSec, pts[1].TxnPerSec
	t.Logf("1 worker: %.0f txn/s, 4 workers: %.0f txn/s (%.1fx, group size %.1f)",
		base, at4, at4/base, pts[1].GroupSize)
	if at4 < 2*base {
		t.Fatalf("4-worker throughput %.0f < 2x 1-worker %.0f", at4, base)
	}
}

// BenchmarkCheckpoint measures one full checkpoint (snapshot scan, Arrow
// IPC write, manifest install, WAL truncation) over a populated table.
func BenchmarkCheckpoint(b *testing.B) {
	dir := b.TempDir()
	eng, err := mainline.Open(mainline.WithDataDir(dir))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("t", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "payload", Type: mainline.STRING},
	))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Update(func(tx *mainline.Txn) error {
		row := tbl.NewRow()
		for i := 0; i < 20000; i++ {
			row.Reset()
			row.SetInt64(0, int64(i))
			row.SetVarlen(1, []byte(fmt.Sprintf("checkpoint-payload-%d", i)))
			if _, err := tbl.Insert(tx, row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	eng.FlushLog()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		info, err := eng.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		bytes = info.BytesWritten
	}
	b.SetBytes(bytes)
}

// BenchmarkTPCCNewOrder micro-measures the New-Order profile alone.
func BenchmarkTPCCNewOrder(b *testing.B) {
	eng, err := mainline.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	adm := eng.Admin()
	db, err := tpcc.NewDatabase(adm.TxnManager(), adm.Catalog(), tpcc.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	p, err := tpcc.Load(db, 42)
	if err != nil {
		b.Fatal(err)
	}
	wk := tpcc.NewWorker(db, p, 1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wk.NewOrder(); err != nil && err != tpcc.ErrUserAbort {
			b.Fatal(err)
		}
	}
}

// benchWriter routes table output through b.Logf so it shows only with -v.
type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Logf("%s", p)
	return len(p), nil
}
