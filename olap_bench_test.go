package mainline

// Benchmarks for the analytical operator layer (ISSUE 6 acceptance):
// grouped aggregation over a frozen dictionary-encoded table against the
// equivalent hand-rolled tuple scan, and the same query across worker
// counts. rows/s is the headline metric; the parallel points show the
// morsel-driven scaling the olap bench target enforces (>= 3x from 1 to 8
// workers on an 8-core host).

import (
	"fmt"
	"runtime"
	"testing"
)

const (
	olapBenchBlocks   = 8
	olapBenchPerBlock = 5000
)

// olapBenchFixture builds a frozen dictionary-encoded table: int64 id,
// string grp (16 values), int64 val.
func olapBenchFixture(b *testing.B) (*Engine, *Table) {
	b.Helper()
	eng, err := Open(WithTransformMode(TransformDictionary))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	tbl, err := eng.CreateTable("olap", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "grp", Type: STRING},
		Field{Name: "val", Type: INT64},
	))
	if err != nil {
		b.Fatal(err)
	}
	id := int64(0)
	for blk := 0; blk < olapBenchBlocks; blk++ {
		err := eng.Update(func(tx *Txn) error {
			row := tbl.NewRow()
			for i := 0; i < olapBenchPerBlock; i++ {
				row.Reset()
				row.Set("id", id)
				row.Set("grp", fmt.Sprintf("group-%02d", id%16))
				row.Set("val", id%1000)
				if _, err := tbl.Insert(tx, row); err != nil {
					return err
				}
				id++
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		last := tbl.Blocks()[len(tbl.Blocks())-1]
		last.SetInsertHead(last.Layout.NumSlots)
	}
	if !eng.FreezeAll(10) {
		b.Fatal("could not freeze")
	}
	return eng, tbl
}

// BenchmarkAggregateFrozen compares GROUP BY grp: COUNT(*), SUM(val),
// MIN(id), MAX(id) computed by the operator (single worker — the operator
// overhead alone) against the same aggregation hand-rolled over a tuple
// scan.
func BenchmarkAggregateFrozen(b *testing.B) {
	eng, tbl := olapBenchFixture(b)
	totalRows := int64(olapBenchBlocks * olapBenchPerBlock)
	query := NewQuery().GroupBy("grp").CountAll().Sum("val").Min("id").Max("id").Workers(1)

	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			type agg struct{ n, sum, mn, mx int64 }
			groups := map[string]*agg{}
			err := eng.View(func(tx *Txn) error {
				return tbl.Scan(tx, []string{"id", "grp", "val"}, func(_ TupleSlot, row *Row) bool {
					st := groups[row.String("grp")]
					if st == nil {
						st = &agg{mn: 1 << 62, mx: -(1 << 62)}
						groups[row.String("grp")] = st
					}
					st.n++
					st.sum += row.Int64("val")
					if id := row.Int64("id"); id < st.mn {
						st.mn = id
					} else if id > st.mx {
						st.mx = id
					}
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			benchSink += int64(len(groups))
		}
		b.ReportMetric(float64(totalRows*int64(b.N))/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("operator", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := eng.View(func(tx *Txn) error {
				res, err := tbl.Aggregate(tx, query)
				if err != nil {
					return err
				}
				benchSink += int64(res.Len())
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(totalRows*int64(b.N))/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkAggregateParallel sweeps the same query across worker counts.
func BenchmarkAggregateParallel(b *testing.B) {
	eng, tbl := olapBenchFixture(b)
	totalRows := int64(olapBenchBlocks * olapBenchPerBlock)
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n >= 8 {
		counts = append(counts, 8)
	}
	for _, workers := range counts {
		query := NewQuery().GroupBy("grp").CountAll().Sum("val").Min("id").Max("id").Workers(workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := eng.View(func(tx *Txn) error {
					res, err := tbl.Aggregate(tx, query)
					if err != nil {
						return err
					}
					benchSink += int64(res.Len())
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(totalRows*int64(b.N))/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
