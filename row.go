package mainline

import (
	"fmt"

	"mainline/internal/arrow"
	"mainline/internal/storage"
)

// Row is a materialized (partial) tuple bound to a table schema. Beside
// the embedded positional setters (SetInt64(0, v), SetVarlen(1, b), ...)
// it offers name-addressed access: row.Set("name", v) and typed getters
// like row.Int64("id"). Obtain rows from Table.NewRow (all columns) or
// Table.NewRowFor (a named subset).
//
// The name-addressed integer getters shadow the positional ones of the
// embedded ProjectedRow; reach those through row.ProjectedRow if needed.
type Row struct {
	*storage.ProjectedRow
	schema *arrow.Schema
}

// col resolves a schema column name to its schema field index and the
// row's projection-local index.
func (r *Row) col(name string) (field, i int, err error) {
	f := r.schema.FieldIndex(name)
	if f < 0 {
		return -1, -1, fmt.Errorf("mainline: no column %q", name)
	}
	i = r.P.IndexOf(storage.ColumnID(f))
	if i < 0 {
		return -1, -1, fmt.Errorf("mainline: column %q not in row's projection", name)
	}
	return f, i, nil
}

// Set stores v into the named column, encoding by the column's SCHEMA
// type: nil sets NULL; string/[]byte go to varlen columns (a []byte value
// is referenced, not copied); float64 (or any signed integer) goes to
// FLOAT64 columns; signed integers go to integer columns, range-checked
// against the column width. Mismatches (float into an integer column,
// string into a fixed column, ...) are errors — never silent bit
// reinterpretation.
func (r *Row) Set(name string, v any) error {
	f, i, err := r.col(name)
	if err != nil {
		return err
	}
	if v == nil {
		r.SetNull(i)
		return nil
	}
	ftype := r.schema.Fields[f].Type
	if r.P.Layout.IsVarlen(storage.ColumnID(f)) {
		switch x := v.(type) {
		case string:
			r.SetVarlen(i, []byte(x))
		case []byte:
			r.SetVarlen(i, x)
		default:
			return fmt.Errorf("mainline: column %q is variable-length, cannot store %T", name, v)
		}
		return nil
	}
	if ftype == arrow.FLOAT64 {
		switch x := v.(type) {
		case float64:
			r.SetFloat64(i, x)
		case int:
			r.SetFloat64(i, float64(x))
		case int64:
			r.SetFloat64(i, float64(x))
		case int32:
			r.SetFloat64(i, float64(x))
		case int16:
			r.SetFloat64(i, float64(x))
		case int8:
			r.SetFloat64(i, float64(x))
		default:
			return fmt.Errorf("mainline: column %q is FLOAT64, cannot store %T", name, v)
		}
		return nil
	}
	var n int64
	switch x := v.(type) {
	case int:
		n = int64(x)
	case int8:
		n = int64(x)
	case int16:
		n = int64(x)
	case int32:
		n = int64(x)
	case int64:
		n = x
	default:
		return fmt.Errorf("mainline: column %q is an integer column, cannot store %T", name, v)
	}
	switch width := r.P.Layout.AttrSize(storage.ColumnID(f)); width {
	case 8:
		r.SetInt64(i, n)
	case 4:
		if n < -1<<31 || n > 1<<31-1 {
			return fmt.Errorf("mainline: value %d overflows 4-byte column %q", n, name)
		}
		r.SetInt32(i, int32(n))
	case 2:
		if n < -1<<15 || n > 1<<15-1 {
			return fmt.Errorf("mainline: value %d overflows 2-byte column %q", n, name)
		}
		r.SetInt16(i, int16(n))
	case 1:
		if n < -1<<7 || n > 1<<7-1 {
			return fmt.Errorf("mainline: value %d overflows 1-byte column %q", n, name)
		}
		r.SetInt8(i, int8(n))
	default:
		return fmt.Errorf("mainline: column %q has unsupported width %d", name, width)
	}
	return nil
}

// intAt widens the fixed-width value at projection index i to int64. A
// FLOAT64 column converts by value, never by bit reinterpretation.
func (r *Row) intAt(i int) int64 {
	col := r.P.Cols[i]
	if r.schema.Fields[int(col)].Type == arrow.FLOAT64 {
		return int64(r.ProjectedRow.Float64(i))
	}
	switch r.P.Layout.AttrSize(col) {
	case 8:
		return r.ProjectedRow.Int64(i)
	case 4:
		return int64(r.ProjectedRow.Int32(i))
	case 2:
		return int64(r.ProjectedRow.Int16(i))
	default:
		return int64(r.ProjectedRow.Int8(i))
	}
}

// valueAt resolves name for a getter: ok only when the column exists in
// the projection and is non-NULL.
func (r *Row) valueAt(name string) (int, bool) {
	_, i, err := r.col(name)
	if err != nil || r.ProjectedRow.IsNull(i) {
		return -1, false
	}
	return i, true
}

// Int64 loads the named fixed-width column widened to int64; 0 when the
// column is absent or NULL (check Null for the distinction).
func (r *Row) Int64(name string) int64 {
	if i, ok := r.valueAt(name); ok {
		return r.intAt(i)
	}
	return 0
}

// Int32 loads the named column as int32 (see Int64 for absent/NULL).
func (r *Row) Int32(name string) int32 { return int32(r.Int64(name)) }

// Int16 loads the named column as int16 (see Int64 for absent/NULL).
func (r *Row) Int16(name string) int16 { return int16(r.Int64(name)) }

// Int8 loads the named column as int8 (see Int64 for absent/NULL).
func (r *Row) Int8(name string) int8 { return int8(r.Int64(name)) }

// Float64 loads the named FLOAT64 column (integer columns convert by
// value); 0 when absent or NULL.
func (r *Row) Float64(name string) float64 {
	if i, ok := r.valueAt(name); ok {
		if r.schema.Fields[int(r.P.Cols[i])].Type == arrow.FLOAT64 {
			return r.ProjectedRow.Float64(i)
		}
		return float64(r.intAt(i))
	}
	return 0
}

// String loads the named varlen column as a string; "" when absent or NULL.
func (r *Row) String(name string) string { return string(r.Bytes(name)) }

// Bytes loads the named varlen column; nil when absent or NULL. The slice
// aliases the row's buffer — copy it to retain past the next Reset.
func (r *Row) Bytes(name string) []byte {
	if i, ok := r.valueAt(name); ok {
		return r.Varlen(i)
	}
	return nil
}

// Null reports whether the named column is NULL (or absent from the
// projection).
func (r *Row) Null(name string) bool {
	_, ok := r.valueAt(name)
	return !ok
}
