package mainline

import (
	"time"

	"mainline/internal/fault"
	"mainline/internal/objstore"
	"mainline/internal/transform"
)

// Block-cache budget sentinels for WithBlockCacheBytes. Any positive
// value is a byte budget; zero (the field's zero value) means the 64MB
// default.
const (
	// BlockCacheUnlimited caches every fetched cold block forever.
	BlockCacheUnlimited int64 = -1
	// BlockCacheNone disables retention: every cold read fetches from the
	// object store (concurrent readers of the same block still share one
	// in-flight fetch).
	BlockCacheNone int64 = -2
)

// Option configures an Engine at Open. Options are applied in order; later
// options override earlier ones.
type Option interface {
	apply(*Options)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// Options is the engine configuration. It predates the functional options
// and is kept as a thin compatibility shim: an Options value is itself an
// Option that REPLACES the whole configuration, so legacy
// Open(Options{...}) call sites keep compiling unchanged. New code should
// prefer the With* options.
type Options struct {
	// DataDir enables the durable data directory: a segmented WAL
	// (DataDir/wal), Arrow-IPC checkpoints (DataDir/checkpoints), and a
	// persisted schema catalog (DataDir/catalog.json). Open bootstraps
	// from the newest valid checkpoint and replays only the WAL tail.
	// Mutually exclusive with LogPath.
	DataDir string
	// CheckpointInterval runs the background checkpointer every interval
	// (requires DataDir; 0 disables — call Engine.Checkpoint manually).
	// The checkpointer runs regardless of Background: a configured
	// interval is never a silent no-op.
	CheckpointInterval time.Duration
	// WALSegmentSize is the rotation threshold for WAL segment files in
	// DataDir mode (default 4MB).
	WALSegmentSize int64
	// LogPath enables write-ahead logging to the given single file.
	LogPath string
	// LogFlushInterval bounds group-commit latency (default 5ms).
	LogFlushInterval time.Duration
	// LogSyncDelay is the group-formation window before each WAL flush:
	// the flusher waits this long after the first enqueued commit so
	// concurrent committers join the same fsync (0 = flush immediately).
	LogSyncDelay time.Duration
	// Background starts the GC, transformation, and log-flush loops.
	// When false (tests, benchmarks) drive them manually with RunGC /
	// RunTransform.
	Background bool
	// GCPeriod is the garbage collection interval (default 10ms).
	GCPeriod time.Duration
	// TransformPeriod is the transformation pass interval (default 10ms).
	TransformPeriod time.Duration
	// ColdThreshold is how long a block must stay unmodified to freeze
	// (default 10ms, the paper's aggressive setting).
	ColdThreshold time.Duration
	// CompactionGroupSize caps blocks per compaction transaction
	// (default 50, the paper's sweet spot).
	CompactionGroupSize int
	// TransformMode selects gather vs dictionary compression.
	TransformMode TransformMode
	// DisableTransform turns the background transformation off entirely
	// (the paper's "no transformation" baseline).
	DisableTransform bool
	// OnTupleMove observes compaction movements (index maintenance).
	OnTupleMove transform.OnMove
	// SlowOpThreshold is the slow-op capture threshold: operations
	// (commits, server requests) at or above it are recorded into the
	// in-memory trace ring (Engine.SlowOps, /debug/slowops). 0 means the
	// 100ms default; use WithSlowOpThreshold(1) to capture everything.
	SlowOpThreshold time.Duration
	// SlowOpLog, when set, receives each captured slow-op span
	// synchronously — keep it fast; it only runs for slow ops.
	SlowOpLog func(SlowOp)
	// FaultFS routes every persistence-layer filesystem operation (WAL
	// segments, checkpoints, catalog installs) through the given
	// fault.FS. nil means the real filesystem; tests and the chaos
	// harness pass a fault.Injector to produce deterministic fsync
	// failures, torn writes, and ENOSPC schedules.
	FaultFS fault.FS
	// ObjectStoreDir enables the cold tier backed by a local-filesystem
	// object store rooted at the given directory: long-frozen blocks are
	// demoted there and served back through the block cache. Mutually
	// exclusive with ObjectStore.
	ObjectStoreDir string
	// ObjectStore enables the cold tier backed by the given store
	// implementation (tests pass fault-injecting or counting wrappers).
	// Mutually exclusive with ObjectStoreDir.
	ObjectStore objstore.Store
	// BlockCacheBytes is the cold-block cache budget: decoded cold
	// payloads are retained LRU up to this many bytes. 0 means the 64MB
	// default; BlockCacheUnlimited and BlockCacheNone are sentinels.
	// Requires an object store.
	BlockCacheBytes int64
	// TierSweepInterval is the background eviction sweep period (default
	// 100ms; the sweeper only runs with Background). Each sweep ages every
	// frozen resident block and demotes those frozen for
	// TierEvictAfterSweeps consecutive sweeps. Requires an object store.
	TierSweepInterval time.Duration
	// TierEvictAfterSweeps is how many consecutive sweeps a block must
	// stay frozen and untouched before the sweeper evicts it (default 2).
	// Requires an object store.
	TierEvictAfterSweeps int
}

// apply makes a legacy Options value usable as an Option: it replaces the
// entire accumulated configuration.
func (o Options) apply(dst *Options) { *dst = o }

func (o *Options) defaults() {
	if o.LogFlushInterval == 0 {
		o.LogFlushInterval = 5 * time.Millisecond
	}
	if o.GCPeriod == 0 {
		o.GCPeriod = 10 * time.Millisecond
	}
	if o.TransformPeriod == 0 {
		o.TransformPeriod = 10 * time.Millisecond
	}
	if o.ColdThreshold == 0 {
		o.ColdThreshold = 10 * time.Millisecond
	}
	if o.CompactionGroupSize == 0 {
		o.CompactionGroupSize = 50
	}
	if o.SlowOpThreshold == 0 {
		o.SlowOpThreshold = 100 * time.Millisecond
	}
	// Tier defaults are filled only when a store is configured so that a
	// tier knob set WITHOUT a store stays visible to Open's validation.
	if o.ObjectStoreDir != "" || o.ObjectStore != nil {
		if o.BlockCacheBytes == 0 {
			o.BlockCacheBytes = 64 << 20
		}
		if o.TierSweepInterval == 0 {
			o.TierSweepInterval = 100 * time.Millisecond
		}
		if o.TierEvictAfterSweeps == 0 {
			o.TierEvictAfterSweeps = 2
		}
	}
}

// WithDataDir enables the durable data directory rooted at dir: WAL
// segments under dir/wal (rotated at the configured segment size,
// truncated by checkpoints), Arrow IPC checkpoints under dir/checkpoints,
// and the schema catalog at dir/catalog.json. Open bootstraps from the
// newest valid checkpoint (falling back one on checksum failure), replays
// only the WAL tail beyond its snapshot timestamp, and re-anchors with a
// fresh checkpoint so retained segments always address the live slot
// space. Mutually exclusive with WithWAL.
func WithDataDir(dir string) Option {
	return optionFunc(func(o *Options) { o.DataDir = dir })
}

// WithCheckpointInterval runs the background checkpointer every interval
// (requires WithDataDir). It runs with or without WithBackground; with 0,
// checkpoints are taken only via Engine.Checkpoint.
func WithCheckpointInterval(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.CheckpointInterval = d })
}

// WithWALSegmentSize sets the WAL segment rotation threshold (default
// 4MB). Requires WithDataDir — the single-file WAL never rotates. Smaller
// segments truncate more aggressively; larger ones rotate less often.
func WithWALSegmentSize(n int64) Option {
	return optionFunc(func(o *Options) { o.WALSegmentSize = n })
}

// WithWAL enables write-ahead logging to path. syncDelay is the
// group-formation window before each WAL flush: the flusher waits this
// long after the first enqueued commit so concurrent committers join the
// same fsync (0 = flush immediately).
func WithWAL(path string, syncDelay time.Duration) Option {
	return optionFunc(func(o *Options) {
		o.LogPath = path
		o.LogSyncDelay = syncDelay
	})
}

// WithLogFlushInterval bounds group-commit latency when the background
// flush loop runs (default 5ms).
func WithLogFlushInterval(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.LogFlushInterval = d })
}

// WithBackground starts the GC, transformation, and log-flush loops at
// Open. Without it, drive them manually (RunGC / RunTransform / FlushLog /
// FreezeAll) — the mode tests and benchmarks want.
func WithBackground() Option {
	return optionFunc(func(o *Options) { o.Background = true })
}

// WithGCPeriod sets the background garbage collection interval.
func WithGCPeriod(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.GCPeriod = d })
}

// WithTransformPeriod sets the background transformation pass interval.
func WithTransformPeriod(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.TransformPeriod = d })
}

// WithColdThreshold sets how long a block must stay unmodified before the
// transformer freezes it.
func WithColdThreshold(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.ColdThreshold = d })
}

// WithCompactionGroupSize caps blocks per compaction transaction.
func WithCompactionGroupSize(n int) Option {
	return optionFunc(func(o *Options) { o.CompactionGroupSize = n })
}

// WithTransformMode selects gather vs dictionary compression for frozen
// blocks.
func WithTransformMode(m TransformMode) Option {
	return optionFunc(func(o *Options) { o.TransformMode = m })
}

// WithoutTransform turns the background transformation off entirely (the
// paper's "no transformation" baseline); GC still runs.
func WithoutTransform() Option {
	return optionFunc(func(o *Options) { o.DisableTransform = true })
}

// WithOnTupleMove observes compaction movements (index maintenance).
func WithOnTupleMove(fn transform.OnMove) Option {
	return optionFunc(func(o *Options) { o.OnTupleMove = fn })
}

// WithSlowOpThreshold sets the slow-op capture threshold (default
// 100ms): commits and server requests at or above it are recorded as
// structured spans in the in-memory trace ring, readable via
// Engine.SlowOps and the /debug/slowops sidecar endpoint. Use 1 (one
// nanosecond) to capture everything — useful in tests and smoke drives.
func WithSlowOpThreshold(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.SlowOpThreshold = d })
}

// WithSlowOpLog installs a logger that receives each captured slow-op
// span synchronously (it only runs for ops over the threshold, never on
// the fast path).
func WithSlowOpLog(fn func(SlowOp)) Option {
	return optionFunc(func(o *Options) { o.SlowOpLog = fn })
}

// WithObjectStore enables the cold storage tier backed by a local
// filesystem object store rooted at dir: the background sweeper (or
// Admin().EvictAll) demotes long-frozen blocks there, scans and point
// reads over evicted blocks fall through to the store via the block
// cache, and writes re-thaw blocks on demand. All store writes go
// through the engine's fault.FS seam (WithFaultFS), so the chaos
// harness can inject ENOSPC and torn uploads. Mutually exclusive with
// WithObjectStoreBackend.
func WithObjectStore(dir string) Option {
	return optionFunc(func(o *Options) { o.ObjectStoreDir = dir })
}

// WithObjectStoreBackend enables the cold storage tier over the given
// store implementation — the seam tests use to count, fault, or stall
// object reads (see objstore.FaultStore / objstore.CountingStore).
// Mutually exclusive with WithObjectStore.
func WithObjectStoreBackend(store objstore.Store) Option {
	return optionFunc(func(o *Options) { o.ObjectStore = store })
}

// WithBlockCacheBytes sets the cold-block cache budget: decoded cold
// payloads are retained LRU up to n bytes (0 = 64MB default;
// BlockCacheUnlimited / BlockCacheNone are sentinels). Requires an
// object store option.
func WithBlockCacheBytes(n int64) Option {
	return optionFunc(func(o *Options) { o.BlockCacheBytes = n })
}

// WithTierSweepInterval sets the background eviction sweep period
// (default 100ms; runs only with WithBackground — tests drive sweeps
// with Admin().TierSweep). Requires an object store option.
func WithTierSweepInterval(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.TierSweepInterval = d })
}

// WithTierEvictAfterSweeps sets how many consecutive sweeps a block
// must stay frozen and untouched before eviction (default 2). Requires
// an object store option.
func WithTierEvictAfterSweeps(n int) Option {
	return optionFunc(func(o *Options) { o.TierEvictAfterSweeps = n })
}

// WithFaultFS routes every persistence-layer filesystem operation through
// fsys — the fault-injection seam. Production never needs this (nil means
// the real filesystem); tests and the chaos harness pass a
// fault.Injector carrying a seeded schedule of fsync failures, torn
// writes, ENOSPC, and latency stalls.
func WithFaultFS(fsys fault.FS) Option {
	return optionFunc(func(o *Options) { o.FaultFS = fsys })
}
