package mainline_test

// External test package: the recovery sweep lives in
// internal/recoverybench, which imports the root package, so it cannot be
// exercised from the in-package test binary without an import cycle.

import (
	"testing"

	"mainline/internal/recoverybench"
)

// BenchmarkRecovery runs the restart sweep at reduced scale: reopen time
// with a full-log replay vs a checkpoint-anchored tail.
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := recoverybench.DefaultRecoveryConfig()
		cfg.TxnCounts = []int{500, 2000}
		t, _, err := recoverybench.Recovery(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t.Print(logWriter{b})
		}
	}
}

// TestRecoverySweepTailBounded asserts the subsystem's headline property at
// tiny scale: the checkpointed variant's replayed tail stays constant while
// the baseline's grows with history.
func TestRecoverySweepTailBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-reopen sweep")
	}
	cfg := recoverybench.DefaultRecoveryConfig()
	cfg.TxnCounts = []int{200, 800}
	cfg.TailTxns = 16
	_, pts, err := recoverybench.Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.NoCkptTail != pt.Txns {
			t.Fatalf("baseline @%d replayed %d txns, want full history", pt.Txns, pt.NoCkptTail)
		}
		if pt.CkptTail != cfg.TailTxns {
			t.Fatalf("checkpointed @%d replayed %d txns, want the %d-txn tail", pt.Txns, pt.CkptTail, cfg.TailTxns)
		}
		if pt.CkptWALBytes >= pt.NoCkptWALBytes {
			t.Fatalf("checkpointed WAL (%d bytes) not smaller than baseline (%d)", pt.CkptWALBytes, pt.NoCkptWALBytes)
		}
		// Cold crash-restart: blocks were evicted to the object store and
		// the engine crashed without Close, yet the reopen rebuilt every
		// row from the local checkpoint + WAL tail and replayed only the
		// bounded tail — recovery never needs the cold tier resident.
		if pt.EvictedEvictions == 0 {
			t.Fatalf("cold variant @%d evicted nothing; the scenario never went cold", pt.Txns)
		}
		if want := int64((pt.Txns + cfg.TailTxns) * cfg.RowsPerTxn); pt.EvictedRows != want {
			t.Fatalf("cold crash-restart @%d recovered %d rows, want %d", pt.Txns, pt.EvictedRows, want)
		}
		if pt.EvictedTail != cfg.TailTxns {
			t.Fatalf("cold crash-restart @%d replayed %d txns, want the %d-txn tail", pt.Txns, pt.EvictedTail, cfg.TailTxns)
		}
	}
}

// logWriter routes table output through b.Logf.
type logWriter struct{ b *testing.B }

func (w logWriter) Write(p []byte) (int, error) {
	w.b.Logf("%s", p)
	return len(p), nil
}
