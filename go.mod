module mainline

go 1.24
