package mainline

// Benchmarks for the vectorized scan engine (ISSUE 4 acceptance): the
// batch path against the tuple-at-a-time path on a 4-block frozen
// int64+varlen table, zone-map-pruned range reads, and hot-table
// filtering. rows/s is the headline metric; run with -benchmem to see the
// allocation gap (the tuple path materializes every row through a
// ProjectedRow, the batch path reads frozen Arrow memory in place).

import (
	"testing"
)

// benchSink defeats dead-store elimination of benchmark accumulators.
var benchSink int64

const (
	scanBenchBlocks   = 4
	scanBenchPerBlock = 5000
)

// BenchmarkScanFrozen compares full-table consumption of a 4-block frozen
// table: "tuple" materializes rows through Table.Scan, "vectorized" reads
// the same columns through Table.ScanBatches. Both sum the id column and
// null-check the payload column per row.
func BenchmarkScanFrozen(b *testing.B) {
	eng, tbl := scanFixture(b, scanBenchBlocks, scanBenchPerBlock)
	defer eng.Close()
	totalRows := int64(scanBenchBlocks * scanBenchPerBlock)
	cols := []string{"id", "payload"}

	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int64
			var nulls int
			err := eng.View(func(tx *Txn) error {
				return tbl.Scan(tx, cols, func(_ TupleSlot, row *Row) bool {
					sum += row.Int64("id")
					if row.Null("payload") {
						nulls++
					}
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			benchSink += sum + int64(nulls)
		}
		b.ReportMetric(float64(totalRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})

	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int64
			var nulls int
			err := eng.View(func(tx *Txn) error {
				return tbl.ScanBatches(tx, cols, nil, func(batch *Batch) bool {
					id, pl := batch.Column("id"), batch.Column("payload")
					for r := 0; r < batch.Len(); r++ {
						sum += batch.Int64(id, r)
						if batch.IsNull(pl, r) {
							nulls++
						}
					}
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			benchSink += sum + int64(nulls)
		}
		b.ReportMetric(float64(totalRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkScanFrozenPruned measures a zone-map-pruned range read: the
// predicate's id range lives in one of the four frozen blocks, so three
// blocks are skipped without being touched.
func BenchmarkScanFrozenPruned(b *testing.B) {
	eng, tbl := scanFixture(b, scanBenchBlocks, scanBenchPerBlock)
	defer eng.Close()
	// ids 7000..7999 exist only in the last block (fixture ids overlap:
	// block b holds b*1000 .. b*1000+perBlock-1).
	pred := Between("id", 7000, 7999)
	b.ReportAllocs()
	b.ResetTimer()
	matched := 0
	for i := 0; i < b.N; i++ {
		matched = 0
		err := eng.View(func(tx *Txn) error {
			return tbl.ScanBatches(tx, []string{"id"}, pred, func(batch *Batch) bool {
				matched += batch.Len()
				return true
			})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if matched != 1000 {
		b.Fatalf("matched %d rows, want 1000", matched)
	}
	b.ReportMetric(float64(scanBenchBlocks*scanBenchPerBlock)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkFilterFrozen measures predicate pushdown with row
// materialization (Table.Filter) against the same range read done with a
// hand-rolled filter over Table.Scan.
func BenchmarkFilterFrozen(b *testing.B) {
	eng, tbl := scanFixture(b, scanBenchBlocks, scanBenchPerBlock)
	defer eng.Close()

	b.Run("scan-manual", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			err := eng.View(func(tx *Txn) error {
				return tbl.Scan(tx, nil, func(_ TupleSlot, row *Row) bool {
					if id := row.Int64("id"); id >= 7100 && id <= 7400 {
						n++
					}
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != 301 {
				b.Fatalf("matched %d", n)
			}
		}
	})

	b.Run("filter-pushdown", func(b *testing.B) {
		pred := Between("id", 7100, 7400)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			err := eng.View(func(tx *Txn) error {
				return tbl.Filter(tx, pred, nil, func(_ TupleSlot, row *Row) bool {
					n++
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != 301 {
				b.Fatalf("matched %d", n)
			}
		}
	})
}

// BenchmarkScanHot measures the hot-block paths: the amortized columnar
// staging (vectorized) against per-slot version reconstruction (tuple) on
// an un-frozen table.
func BenchmarkScanHot(b *testing.B) {
	eng, err := Open()
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("hot", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "payload", Type: STRING},
	))
	if err != nil {
		b.Fatal(err)
	}
	const rows = 20000
	if err := eng.Update(func(tx *Txn) error {
		row := tbl.NewRow()
		for i := 0; i < rows; i++ {
			row.Reset()
			row.Set("id", i)
			row.Set("payload", "hot-payload-value")
			if _, err := tbl.Insert(tx, row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}

	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int64
			err := eng.View(func(tx *Txn) error {
				return tbl.Scan(tx, nil, func(_ TupleSlot, row *Row) bool {
					sum += row.Int64("id")
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			benchSink += sum
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})

	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int64
			err := eng.View(func(tx *Txn) error {
				return tbl.ScanBatches(tx, nil, nil, func(batch *Batch) bool {
					id := batch.Column("id")
					for r := 0; r < batch.Len(); r++ {
						sum += batch.Int64(id, r)
					}
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
			benchSink += sum
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}
