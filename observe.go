package mainline

import (
	"time"

	"mainline/internal/obs"
	"mainline/internal/txn"
	"mainline/internal/wal"
)

// Observability re-exports: one package to program against.
type (
	// HistSnapshot is an immutable latency/size histogram snapshot with
	// Quantile(p)/Mean()/Merge().
	HistSnapshot = obs.HistSnapshot
	// DutySnapshot reports a background subsystem's duty cycle.
	DutySnapshot = obs.DutySnapshot
	// SlowOp is one captured slow-operation span (txn id, request kind,
	// per-phase timings).
	SlowOp = obs.Span
	// SlowOpPhase is one timed segment of a SlowOp.
	SlowOpPhase = obs.Phase
)

// slowOpRingCap bounds the in-memory slow-op ring; old spans are evicted
// newest-wins.
const slowOpRingCap = 256

// LatencyStats publishes the engine's latency and size distributions as
// histogram snapshots (Stats().Latency). Durations are in nanoseconds —
// use QuantileDuration; WALGroupTxns/WALGroupBytes are raw counts/bytes.
type LatencyStats struct {
	// Commit is public Txn.Commit end to end, durable wait included.
	Commit HistSnapshot
	// CommitCritical is the manager's commit critical path (latch
	// acquisition through retire, excluding the durability wait).
	CommitCritical HistSnapshot
	// CommitLatchWait is time spent acquiring the commit shard latch.
	CommitLatchWait HistSnapshot
	// BeginStampWait is Begin's stamping barrier, recorded only for
	// Begins that actually spun.
	BeginStampWait HistSnapshot
	// WALSync is the write+fsync wall time per commit group.
	WALSync HistSnapshot
	// WALGroupTxns / WALGroupBytes are the per-fsync group size
	// distributions (transactions and bytes).
	WALGroupTxns  HistSnapshot
	WALGroupBytes HistSnapshot
	// Checkpoint is whole-checkpoint duration; CheckpointTable is the
	// per-table capture duration within checkpoints.
	Checkpoint      HistSnapshot
	CheckpointTable HistSnapshot
	// GCPass is garbage-collection pass duration.
	GCPass HistSnapshot
	// Query is analytical-executor duration (Aggregate / Join).
	Query HistSnapshot
	// IndexLookup is engine-managed index read duration (GetBy /
	// RangeBy / PrefixBy).
	IndexLookup HistSnapshot
}

// DutyStats publishes background-subsystem duty cycles (Stats().Duty).
type DutyStats struct {
	GC         DutySnapshot
	Transform  DutySnapshot
	WALFlush   DutySnapshot
	Checkpoint DutySnapshot
}

// GCStats publishes garbage-collector progress (Stats().GC).
type GCStats struct {
	// Unlinked / Deallocated are lifetime retired-version counts.
	Unlinked     int64
	Deallocated  int64
	// WatermarkLag is epoch − oldest-active as of the latest GC pass:
	// how far version reclamation trails the clock. A stuck snapshot
	// shows up here as unbounded growth.
	WatermarkLag uint64
}

// engineObs bundles the engine's always-on instruments. Everything is
// created at Open — instrumentation overhead is a few time.Now() calls
// per operation (measured <2% on the durable commit bench, see
// DESIGN.md "Observability").
type engineObs struct {
	reg  *obs.Registry
	ring *obs.TraceRing

	commit        *obs.Histogram
	commitCrit    *obs.Histogram
	commitLatch   *obs.Histogram
	beginStamp    *obs.Histogram
	walSync       *obs.Histogram
	walGroupTxns  *obs.Histogram
	walGroupBytes *obs.Histogram
	ckpt          *obs.Histogram
	ckptTable     *obs.Histogram
	gcPass        *obs.Histogram
	query         *obs.Histogram
	indexLookup   *obs.Histogram

	gcDuty        *obs.Duty
	transformDuty *obs.Duty
	walDuty       *obs.Duty
	ckptDuty      *obs.Duty
}

func newEngineObs(threshold time.Duration, logFn func(SlowOp)) *engineObs {
	r := obs.NewRegistry(slowOpRingCap, threshold)
	if logFn != nil {
		r.Ring().SetLogger(obs.Logger(logFn))
	}
	h := func(name, help, unit string) *obs.Histogram {
		return r.NewHistogram(name, help, unit, "")
	}
	return &engineObs{
		reg:  r,
		ring: r.Ring(),
		commit: h("mainline_commit_seconds",
			"Txn.Commit end to end, durable wait included", "seconds"),
		commitCrit: h("mainline_commit_critical_seconds",
			"commit critical path: latch through retire", "seconds"),
		commitLatch: h("mainline_commit_latch_wait_seconds",
			"commit shard latch acquisition wait", "seconds"),
		beginStamp: h("mainline_begin_stamp_wait_seconds",
			"Begin stamping barrier wait (only Begins that spun)", "seconds"),
		walSync: h("mainline_wal_sync_seconds",
			"WAL group write+fsync wall time", "seconds"),
		walGroupTxns: h("mainline_wal_group_txns",
			"transactions coalesced per fsync", ""),
		walGroupBytes: h("mainline_wal_group_bytes",
			"bytes written per fsync", ""),
		ckpt: h("mainline_checkpoint_seconds",
			"whole-checkpoint duration", "seconds"),
		ckptTable: h("mainline_checkpoint_table_seconds",
			"per-table capture duration within checkpoints", "seconds"),
		gcPass: h("mainline_gc_pass_seconds",
			"garbage-collection pass duration", "seconds"),
		query: h("mainline_query_seconds",
			"analytical executor duration (Aggregate/Join)", "seconds"),
		indexLookup: h("mainline_index_lookup_seconds",
			"engine-managed index read duration", "seconds"),
		gcDuty:        r.NewDuty("gc"),
		transformDuty: r.NewDuty("transform"),
		walDuty:       r.NewDuty("wal_flush"),
		ckptDuty:      r.NewDuty("checkpoint"),
	}
}

// wire installs the instruments into the subsystems that exist at
// engine-assembly time (the WAL attaches later, see wireWAL).
func (o *engineObs) wire(e *Engine) {
	e.mgr.SetMetrics(txn.Metrics{
		CommitLatency:   o.commitCrit,
		CommitLatchWait: o.commitLatch,
		BeginStampWait:  o.beginStamp,
	})
	e.collector.SetMetrics(o.gcPass, o.gcDuty)
	e.transformer.SetDuty(o.transformDuty)
	e.execCounters.SetLatency(o.query)
}

// wireWAL installs the group-commit instruments; called after whichever
// Open path (data directory or single-file WAL) created the log manager.
func (o *engineObs) wireWAL(l *wal.LogManager) {
	l.SetMetrics(wal.Metrics{
		SyncLatency: o.walSync,
		GroupTxns:   o.walGroupTxns,
		GroupBytes:  o.walGroupBytes,
		FlushDuty:   o.walDuty,
	})
}

// Obs returns the engine's observability registry: the serving layer
// renders it at /metrics and feeds the slow-op ring from request
// handling.
func (a Admin) Obs() *obs.Registry { return a.eng.obs.reg }

// SlowOps returns the captured slow-op spans, newest first. Ops are
// captured when they exceed the WithSlowOpThreshold threshold (default
// 100ms); the ring holds the most recent 256.
func (e *Engine) SlowOps() []SlowOp { return e.obs.ring.Snapshot() }

// SetSlowOpThreshold changes the slow-op capture threshold at runtime.
func (e *Engine) SetSlowOpThreshold(d time.Duration) { e.obs.ring.SetThreshold(d) }

// HealthStats is the operational health summary behind /healthz: how far
// the durable and reclamation machinery trail the clock.
type HealthStats struct {
	// WALTruncationLag is engine-clock ticks since the newest
	// checkpoint's snapshot — the un-truncated WAL span that a restart
	// would replay. Zero without a data directory.
	WALTruncationLag uint64
	// LastCheckpointAge is wall time since the last installed
	// checkpoint; negative when no checkpoint has ever been taken.
	LastCheckpointAge time.Duration
	// GCWatermarkLag is epoch − oldest-active as of the latest GC pass.
	GCWatermarkLag uint64
	// SlowOps is the total number of slow-op spans ever captured.
	SlowOps int64
	// Degraded reports the engine has sealed itself read-only after a WAL
	// failure; DegradedReason carries the root cause. See ErrDegraded.
	Degraded       bool
	DegradedReason string
}

// Health reports the engine's operational health summary.
func (e *Engine) Health() HealthStats {
	h := HealthStats{
		GCWatermarkLag:    e.collector.WatermarkLag(),
		SlowOps:           e.obs.ring.Captured(),
		LastCheckpointAge: -1,
	}
	if wall := e.ckptLastWall.Load(); wall > 0 {
		h.LastCheckpointAge = time.Since(time.Unix(0, wall))
	}
	if degraded, cause := e.Degraded(); degraded {
		h.Degraded = true
		h.DegradedReason = cause.Error()
	}
	if e.opts.DataDir != "" {
		if last := e.ckptLastTs.Load(); last > 0 {
			if cur := e.mgr.CurrentTime(); cur > last {
				h.WALTruncationLag = cur - last
			}
		}
	}
	return h
}
