package mainline

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"mainline/internal/txn"
)

// Txn is a transaction handle. Obtain one from Engine.Begin (or let
// View/Update manage it) and finish it exactly once with Commit or Abort;
// a second completion returns ErrTxnFinished. A Txn is single-threaded:
// only its owning goroutine may touch it.
type Txn struct {
	eng *Engine
	raw *txn.Transaction

	readOnly bool
	durable  bool
}

// TxnOption configures one transaction at Begin.
type TxnOption func(*txnSettings)

type txnSettings struct {
	readOnly bool
	durable  bool
	attempts int
}

// ReadOnly marks the transaction read-only: table writes through it return
// ErrReadOnlyTxn. Reads still get a full snapshot.
func ReadOnly() TxnOption {
	return func(s *txnSettings) { s.readOnly = true }
}

// Durable makes Commit block until the transaction's commit record is on
// disk (the WAL group-commit fsync). Without a WAL the commit is
// acknowledged synchronously, so Durable never deadlocks; with a WAL whose
// flush loop is not running (engine opened without WithBackground), Commit
// drives one flush itself.
func Durable() TxnOption {
	return func(s *txnSettings) { s.durable = true }
}

// Attempts bounds Engine.Update's retry budget for this call (default 16).
// It has no effect on Begin.
func Attempts(n int) TxnOption {
	return func(s *txnSettings) { s.attempts = n }
}

// Begin starts a transaction. It fails with ErrEngineClosed after Close,
// and with ErrDegraded for Durable transactions once the engine has
// sealed itself degraded — durability can no longer be promised, so the
// refusal happens up front rather than at Commit. Non-durable snapshots
// still begin (reads keep serving in degraded mode; writes are refused at
// the table operations).
func (e *Engine) Begin(opts ...TxnOption) (*Txn, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	var s txnSettings
	for _, o := range opts {
		o(&s)
	}
	if s.durable && e.degraded.Load() {
		return nil, e.degradedErr()
	}
	return &Txn{eng: e, raw: e.mgr.Begin(), readOnly: s.readOnly, durable: s.durable}, nil
}

// usable returns the typed error for a handle that must still be live.
func (t *Txn) usable() error {
	if t == nil || t.raw == nil || t.raw.Finished() {
		return ErrTxnFinished
	}
	return nil
}

// writable additionally rejects read-only handles and — the single write
// gate every table operation flows through — refuses writes once the
// engine is degraded: a write the log can never persist must not enter
// the version chains.
func (t *Txn) writable() error {
	if err := t.usable(); err != nil {
		return err
	}
	if t.readOnly {
		return ErrReadOnlyTxn
	}
	if t.eng.degraded.Load() {
		return t.eng.degradedErr()
	}
	return nil
}

// Commit finishes the transaction; the returned timestamp orders it
// against other transactions. For a Durable transaction it also blocks
// until the commit record is on disk. Committing a finished transaction
// returns ErrTxnFinished; committing after Engine.Close returns
// ErrEngineClosed (the transaction is left un-finished — Abort it).
func (t *Txn) Commit() (uint64, error) {
	if err := t.usable(); err != nil {
		return 0, err
	}
	e := t.eng
	// Hold off Engine.Close for the duration: once the closed-check
	// passes, the WAL flush loop (if any) stays alive until the durable
	// wait completes.
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		return 0, ErrEngineClosed
	}
	// Degraded engine: a write or durable commit must not be acked — the
	// log cannot persist it. The transaction is aborted (the handle is
	// finished; its in-memory effects roll back) and ErrDegraded returned.
	// Read-only non-durable commits proceed: they need no log.
	if e.degraded.Load() && (t.durable || t.raw.WriteSetSize() > 0 || len(t.raw.RedoRecords()) > 0) {
		e.mgr.Abort(t.raw)
		return 0, e.degradedErr()
	}
	start := time.Now()
	if !t.durable {
		ts := e.mgr.Commit(t.raw, nil)
		t.observeCommit(start, ts, time.Since(start), 0)
		return ts, nil
	}
	if e.walRunning || e.logMgr == nil {
		// Flush loop running, or no WAL at all (the callback then fires
		// synchronously inside Commit): the plain durable wait suffices.
		done := make(chan struct{})
		var derr error
		ts := e.mgr.Commit(t.raw, func(err error) { derr = err; close(done) })
		crit := time.Since(start)
		<-done
		if derr != nil {
			// The log wedged before our commit record was durable: the
			// commit is in memory but was never acked durable, and the
			// engine is (or is about to be) degraded. Fail the ack.
			return 0, fmt.Errorf("%w: %w", ErrDegraded, derr)
		}
		t.observeCommit(start, ts, crit, time.Since(start)-crit)
		return ts, nil
	}
	// Foreground WAL, no flush loop: drive the flush ourselves so the
	// durable wait can never deadlock. One FlushOnce is not always
	// enough — the log's dependency-closed write frontier can re-queue
	// our chunk while a concurrent committer sits inside its commit
	// critical section — so flush until our callback fires.
	done := make(chan struct{})
	var derr error
	ts := e.mgr.Commit(t.raw, func(err error) { derr = err; close(done) })
	crit := time.Since(start)
	for {
		e.logMgr.FlushOnce()
		select {
		case <-done:
			if derr != nil {
				return 0, fmt.Errorf("%w: %w", ErrDegraded, derr)
			}
			t.observeCommit(start, ts, crit, time.Since(start)-crit)
			return ts, nil
		default:
			runtime.Gosched()
		}
	}
}

// observeCommit records the public commit latency and, when the total
// crosses the slow-op threshold, captures a span with the critical
// section and durable wait as separate phases.
func (t *Txn) observeCommit(start time.Time, ts uint64, crit, durableWait time.Duration) {
	o := t.eng.obs
	total := crit + durableWait
	o.commit.Record(total)
	if !o.ring.Exceeds(total) {
		return
	}
	sp := SlowOp{
		Kind:   "commit",
		TxnID:  ts,
		Start:  start,
		DurNs:  int64(total),
		Phases: []SlowOpPhase{{Name: "commit_critical", DurNs: int64(crit)}},
	}
	if t.durable {
		sp.Phases = append(sp.Phases, SlowOpPhase{Name: "durable_wait", DurNs: int64(durableWait)})
	}
	o.ring.Observe(sp)
}

// Abort rolls the transaction back. Aborting a finished transaction
// returns ErrTxnFinished. Abort works even after Engine.Close (it only
// touches in-memory state), so deferred cleanup is always safe.
func (t *Txn) Abort() error {
	if err := t.usable(); err != nil {
		return err
	}
	t.eng.mgr.Abort(t.raw)
	return nil
}

// StartTs returns the transaction's snapshot timestamp.
func (t *Txn) StartTs() uint64 { return t.raw.StartTs() }

// CommitTs returns the final commit timestamp (0 before commit).
func (t *Txn) CommitTs() uint64 { return t.raw.CommitTs() }

// Committed reports whether Commit succeeded.
func (t *Txn) Committed() bool { return t.raw.Committed() }

// Aborted reports whether the transaction rolled back.
func (t *Txn) Aborted() bool { return t.raw.Aborted() }

// Finished reports whether the transaction has completed either way.
func (t *Txn) Finished() bool { return t.raw.Finished() }

// IsReadOnly reports whether the handle was begun with ReadOnly.
func (t *Txn) IsReadOnly() bool { return t.readOnly }

// View runs fn in a read-only transaction and commits it when fn returns
// nil. If fn returns an error the transaction is aborted and the error
// returned unchanged. The transaction is finished even if fn panics, so a
// recovered panic cannot leak an active handle that pins the GC
// watermark.
func (e *Engine) View(fn func(*Txn) error) error {
	tx, err := e.Begin(ReadOnly())
	if err != nil {
		return err
	}
	defer func() {
		if !tx.Finished() {
			_ = tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		return err
	}
	if tx.Finished() {
		return nil
	}
	_, err = tx.Commit()
	return err
}

// Update retry policy: exponential backoff with jitter, bounded both in
// per-wait duration and in total attempts.
const (
	defaultUpdateAttempts = 16
	retryBaseBackoff      = 100 * time.Microsecond
	retryMaxBackoff       = 5 * time.Millisecond
)

// retryBackoff returns the jittered wait before retry number `retry` (1+).
func retryBackoff(retry int) time.Duration {
	d := retryMaxBackoff
	if retry <= 6 { // 100µs << 6 > 5ms, avoid the shift past the cap
		if s := retryBaseBackoff << uint(retry-1); s < d {
			d = s
		}
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Update runs fn in a read-write transaction and commits it when fn
// returns nil. If fn returns ErrWriteConflict (the first-writer-wins
// rejection every table write can surface), the transaction is aborted and
// fn retried on a fresh snapshot with bounded exponential backoff — the
// idiom OLTP drivers otherwise hand-roll. Any other error aborts and is
// returned unchanged. When the retry budget (Attempts, default 16) is
// exhausted the last conflict is returned wrapped, still matching
// errors.Is(err, ErrWriteConflict). Each attempt's transaction is
// finished even if fn panics (see View).
func (e *Engine) Update(fn func(*Txn) error, opts ...TxnOption) error {
	var s txnSettings
	for _, o := range opts {
		o(&s)
	}
	attempts := s.attempts
	if attempts <= 0 {
		attempts = defaultUpdateAttempts
	}
	var err error
	for i := 1; i <= attempts; i++ {
		if i > 1 {
			time.Sleep(retryBackoff(i - 1))
		}
		if err = e.updateAttempt(fn, opts); err == nil {
			return nil
		}
		if !errors.Is(err, ErrWriteConflict) {
			return err
		}
	}
	return fmt.Errorf("mainline: Update retries exhausted after %d attempts: %w", attempts, err)
}

// updateAttempt runs one Update try; the handle is always finished on
// return, panic included.
func (e *Engine) updateAttempt(fn func(*Txn) error, opts []TxnOption) error {
	tx, err := e.Begin(opts...)
	if err != nil {
		return err
	}
	defer func() {
		if !tx.Finished() {
			_ = tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		return err
	}
	if tx.Finished() { // fn finished the handle itself
		return nil
	}
	_, err = tx.Commit()
	return err
}
