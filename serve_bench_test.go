package mainline_test

// Serving-layer benchmarks live in an external test package: the server
// package imports mainline, so importing it from an in-package test would
// be an import cycle.

import (
	"fmt"
	"testing"

	"mainline"
	"mainline/client"
	"mainline/internal/server"
)

func loadFrozenTable(b *testing.B, eng *mainline.Engine, rows int) *mainline.Table {
	b.Helper()
	tbl, err := eng.CreateTable("t", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "payload", Type: mainline.STRING},
	))
	if err != nil {
		b.Fatal(err)
	}
	tx, err := eng.Begin()
	if err != nil {
		b.Fatal(err)
	}
	row := tbl.NewRow()
	for i := 0; i < rows; i++ {
		row.Reset()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, []byte(fmt.Sprintf("payload-%d-abcdefghijklmnop", i)))
		if _, err := tbl.Insert(tx, row); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	if !eng.FreezeAll(100) {
		b.Fatal("freeze failed")
	}
	return tbl
}

// BenchmarkExportProtocols measures steady-state fetch bandwidth per
// protocol on a frozen table (the Figure 15 100%-frozen points, isolated).
func BenchmarkExportProtocols(b *testing.B) {
	eng, err := mainline.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	loadFrozenTable(b, eng, 50000)
	adm := eng.Admin()
	srv := server.NewCompareServer(adm.TxnManager(), adm.Catalog())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, proto := range []server.Protocol{server.ProtoFlight, server.ProtoVectorized, server.ProtoPGWire} {
		b.Run(proto.String(), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := server.Fetch(addr, proto, "t")
				if err != nil {
					b.Fatal(err)
				}
				bytes += res.Bytes
			}
			b.SetBytes(bytes / int64(b.N))
		})
	}
}

// BenchmarkServeDoGet measures the full serving layer's streaming export
// path (framed protocol + admission + deadline machinery) on the same
// frozen table, for comparison against the bare CompareServer numbers.
func BenchmarkServeDoGet(b *testing.B) {
	eng, err := mainline.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	loadFrozenTable(b, eng, 50000)
	srv := server.New(eng, server.Config{Addr: "127.0.0.1:0"})
	addr, err := srv.Listen()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		st, err := c.DoGet("t", nil, nil, func(rb *mainline.RecordBatch) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		bytes += st.Bytes
	}
	b.SetBytes(bytes / int64(b.N))
}
