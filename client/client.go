// Package client is the Go client for mainline-serve, the engine's
// Arrow-native network serving layer. It speaks both protocol planes:
//
//   - Transactional RPC: Begin/Commit/Abort, point reads and writes by
//     slot, and indexed reads (GetBy/RangeBy) over a compact binary
//     encoding.
//   - Analytical streaming: DoGet pulls a table (optionally projected and
//     filtered) as Arrow record batches — frozen blocks leave the server
//     zero-copy — and DoPut bulk-ingests batches through one server-side
//     transaction.
//
// Server rejections keep their type across the wire: errors unwrap to the
// exported sentinels, so errors.Is(err, client.ErrServerBusy) and
// errors.Is(err, mainline.ErrWriteConflict) work as they would in-process.
//
// One Client owns one connection and serializes requests on it; open one
// client per worker for parallelism — connections are the unit the
// server's admission control counts.
//
// Quickstart:
//
//	c, err := client.Dial("127.0.0.1:7878")
//	tx, err := c.Begin()
//	slot, err := tx.Insert("item", []string{"id", "name"}, []any{int64(1), "JOE"})
//	_, err = tx.Commit()
//	_, err = c.DoGet("item", nil, nil, func(rb *mainline.RecordBatch) error {
//		... // rb is Arrow: columns straight off the server's frozen blocks
//	})
package client

import (
	"mainline"
	"mainline/internal/server"
)

// Re-exported client surface (implemented next to the server so both ends
// share one wire codec).
type (
	// Client is a connection to a mainline-serve server.
	Client = server.Client
	// DialOption configures Dial.
	DialOption = server.DialOption
	// Tx is a server-side transaction handle.
	Tx = server.Tx
	// TxOption configures Begin.
	TxOption = server.TxOption
	// RowData is one decoded row from Select/GetBy/RangeBy.
	RowData = server.RowData
	// GetStats summarizes one DoGet stream.
	GetStats = server.GetStats
	// Pred is a single-column predicate for filtered DoGet.
	Pred = server.WirePred
	// RemoteError is a server-reported error; it unwraps to the matching
	// sentinel.
	RemoteError = server.RemoteError
)

// Dial connects to a mainline-serve address and performs the handshake.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return server.Dial(addr, opts...)
}

// Dial options.
var (
	// WithDialTimeout bounds connect + handshake (default 5s).
	WithDialTimeout = server.WithDialTimeout
	// WithRequestTimeout attaches a server-enforced deadline to every
	// request; expiry aborts the transaction the request was using.
	WithRequestTimeout = server.WithRequestTimeout
	// WithMaxFrame overrides the largest frame the client accepts.
	WithMaxFrame = server.WithMaxFrame
)

// Begin options.
const (
	// ReadOnly begins a read-only transaction.
	ReadOnly = server.TxReadOnly
	// Durable makes the commit wait for WAL fsync.
	Durable = server.TxDurable
)

// Typed server rejections (compare with errors.Is). Engine errors —
// mainline.ErrWriteConflict and friends — also survive the wire.
var (
	// ErrServerBusy: admission control shed this connection or request.
	ErrServerBusy = server.ErrServerBusy
	// ErrDraining: the server is shutting down gracefully.
	ErrDraining = server.ErrDraining
	// ErrDeadlineExceeded: the request's deadline passed; any transaction
	// it was using has been aborted server-side.
	ErrDeadlineExceeded = server.ErrDeadlineExceeded
	// ErrUnknownTable / ErrUnknownIndex / ErrUnknownTxn: bad names.
	ErrUnknownTable = server.ErrUnknownTable
	ErrUnknownIndex = server.ErrUnknownIndex
	ErrUnknownTxn   = server.ErrUnknownTxn
	// ErrTableExists: CreateTable of a taken name.
	ErrTableExists = server.ErrTableExists
	// ErrBadRequest: the server could not decode the request.
	ErrBadRequest = server.ErrBadRequest
	// ErrTooManyTxns: the per-session open-transaction cap was hit.
	ErrTooManyTxns = server.ErrTooManyTxns
)

// Predicate constructors for filtered DoGet.

// Eq matches col == v.
func Eq(col string, v any) *Pred { return &Pred{Col: col, Op: server.PredEq, V1: v} }

// Lt matches col < v.
func Lt(col string, v any) *Pred { return &Pred{Col: col, Op: server.PredLt, V1: v} }

// Le matches col <= v.
func Le(col string, v any) *Pred { return &Pred{Col: col, Op: server.PredLe, V1: v} }

// Gt matches col > v.
func Gt(col string, v any) *Pred { return &Pred{Col: col, Op: server.PredGt, V1: v} }

// Ge matches col >= v.
func Ge(col string, v any) *Pred { return &Pred{Col: col, Op: server.PredGe, V1: v} }

// Between matches lo <= col <= hi.
func Between(col string, lo, hi any) *Pred {
	return &Pred{Col: col, Op: server.PredBetween, V1: lo, V2: hi}
}

// NewSchema re-exports mainline.NewSchema so pure network clients can
// declare tables without importing the engine package.
func NewSchema(fields ...mainline.Field) *mainline.Schema { return mainline.NewSchema(fields...) }
