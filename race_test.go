//go:build race

package mainline

// raceEnabled reports that the race detector is active; timing-sensitive
// scaling probes skip themselves because instrumentation overhead makes a
// 1-core host CPU-bound long before the sync latency matters.
const raceEnabled = true
