package mainline

import (
	"fmt"

	"mainline/internal/arrow"
	"mainline/internal/exec"
	"mainline/internal/storage"
)

// Query describes a GROUP-BY aggregation for Table.Aggregate, built
// fluently:
//
//	q := mainline.NewQuery().
//		GroupBy("city").
//		CountAll().
//		Sum("amount").
//		Where(mainline.Ge("amount", 0)).
//		Workers(4)
//	res, err := table.Aggregate(tx, q)
//
// Aggregates are evaluated with SQL semantics: COUNT(col) counts non-NULL
// inputs, SUM/MIN/MAX/AVG over zero non-NULL inputs are NULL, NULL group
// keys form their own group, and float MIN/MAX order NaN above every
// number (Postgres total order), so results are deterministic regardless
// of scan order or worker count.
type Query struct {
	groupBy []string
	aggs    []queryAgg
	pred    *Pred
	workers int
}

type queryAgg struct {
	op  exec.AggOp
	col string // "" for COUNT(*)
}

// NewQuery returns an empty aggregation query.
func NewQuery() *Query { return &Query{} }

// GroupBy appends grouping columns. With no GroupBy the query computes a
// single global aggregate row (even over an empty table).
func (q *Query) GroupBy(cols ...string) *Query {
	q.groupBy = append(q.groupBy, cols...)
	return q
}

// CountAll appends COUNT(*) — rows per group, NULLs included.
func (q *Query) CountAll() *Query {
	q.aggs = append(q.aggs, queryAgg{op: exec.OpCount})
	return q
}

// Count appends COUNT(col): non-NULL values of col per group.
func (q *Query) Count(col string) *Query {
	q.aggs = append(q.aggs, queryAgg{op: exec.OpCount, col: col})
	return q
}

// Sum appends SUM(col) over a numeric column.
func (q *Query) Sum(col string) *Query {
	q.aggs = append(q.aggs, queryAgg{op: exec.OpSum, col: col})
	return q
}

// Min appends MIN(col) over a numeric column.
func (q *Query) Min(col string) *Query {
	q.aggs = append(q.aggs, queryAgg{op: exec.OpMin, col: col})
	return q
}

// Max appends MAX(col) over a numeric column.
func (q *Query) Max(col string) *Query {
	q.aggs = append(q.aggs, queryAgg{op: exec.OpMax, col: col})
	return q
}

// Avg appends AVG(col) over a numeric column (always a float64 result).
func (q *Query) Avg(col string) *Query {
	q.aggs = append(q.aggs, queryAgg{op: exec.OpAvg, col: col})
	return q
}

// Where pushes a scan predicate below the aggregation (zone-map pruning
// and kernel filtering apply, exactly as in Table.Filter).
func (q *Query) Where(pred *Pred) *Query {
	q.pred = pred
	return q
}

// Workers sets the parallel worker count; <= 0 (the default) uses
// NumCPU. Workers are capped at the table's block count.
func (q *Query) Workers(n int) *Query {
	q.workers = n
	return q
}

// Aggregate executes q inside tx with the morsel-driven parallel
// executor: workers pull block-granular morsels from one snapshot of the
// table's block list, aggregate them vectorized (dictionary-encoded
// frozen blocks aggregate on int32 codes directly), and merge their
// partial results. The result is snapshot-consistent — identical to
// computing the same aggregates with a tuple-at-a-time Scan in tx — and
// deterministically ordered by group key bytes.
func (t *Table) Aggregate(tx *Txn, q *Query) (*AggResult, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	plan := &exec.AggPlan{Table: t.DataTable, Workers: q.workers}
	groupFloat := make([]bool, 0, len(q.groupBy))
	for _, name := range q.groupBy {
		f := t.Schema.FieldIndex(name)
		if f < 0 {
			return nil, fmt.Errorf("mainline: no column %q", name)
		}
		plan.GroupBy = append(plan.GroupBy, storage.ColumnID(f))
		groupFloat = append(groupFloat, t.Schema.Fields[f].Type == arrow.FLOAT64)
	}
	for _, a := range q.aggs {
		spec := exec.AggSpec{Op: a.op, Col: -1}
		if a.col != "" {
			f := t.Schema.FieldIndex(a.col)
			if f < 0 {
				return nil, fmt.Errorf("mainline: no column %q", a.col)
			}
			spec.Col = f
			spec.Float = t.Schema.Fields[f].Type == arrow.FLOAT64
		}
		plan.Aggs = append(plan.Aggs, spec)
	}
	if q.pred != nil {
		cpred, err := q.pred.compile(t.Table)
		if err != nil {
			return nil, err
		}
		plan.Pred = cpred
	}
	r, err := exec.Aggregate(tx.raw, plan, &tx.eng.execCounters)
	if err != nil {
		return nil, err
	}
	return &AggResult{r: r, groupFloat: groupFloat}, nil
}

// AggResult is a finalized aggregation: Len() group rows, each carrying
// the group-key columns (in GroupBy order) and the aggregate values (in
// the order they were added to the Query). Rows are sorted by encoded
// group key, so equal inputs always produce identical results.
type AggResult struct {
	r          *exec.AggResult
	groupFloat []bool
}

// Len returns the number of groups.
func (r *AggResult) Len() int { return r.r.Len() }

// NumGroupCols returns the number of GROUP-BY columns.
func (r *AggResult) NumGroupCols() int { return r.r.NumGroupCols() }

// NumAggs returns the number of aggregates per group.
func (r *AggResult) NumAggs() int { return r.r.NumAggs() }

// GroupIsNull reports whether group column col of group row is NULL.
func (r *AggResult) GroupIsNull(row, col int) bool { return r.r.GroupIsNull(row, col) }

// GroupInt returns fixed-width group column col of group row widened to
// int64 (0 when NULL; FLOAT64 group columns convert by value).
func (r *AggResult) GroupInt(row, col int) int64 {
	if r.r.GroupIsNull(row, col) {
		return 0
	}
	if r.groupFloat[col] {
		return int64(r.r.GroupFloat(row, col))
	}
	return r.r.GroupInt(row, col)
}

// GroupFloat returns FLOAT64 group column col of group row (integer group
// columns convert by value; 0 when NULL).
func (r *AggResult) GroupFloat(row, col int) float64 {
	if r.r.GroupIsNull(row, col) {
		return 0
	}
	if r.groupFloat[col] {
		return r.r.GroupFloat(row, col)
	}
	return float64(r.r.GroupInt(row, col))
}

// GroupBytes returns varlen group column col of group row (nil when
// NULL). The slice aliases the result's key storage — copy to mutate.
func (r *AggResult) GroupBytes(row, col int) []byte { return r.r.GroupBytes(row, col) }

// GroupString returns varlen group column col of group row ("" when NULL).
func (r *AggResult) GroupString(row, col int) string { return string(r.r.GroupBytes(row, col)) }

// IsNull reports whether aggregate a of group row is SQL NULL (COUNT
// never is; the others are when no non-NULL input reached them).
func (r *AggResult) IsNull(row, a int) bool { return r.r.IsNull(row, a) }

// Count returns the non-NULL input count of aggregate a in group row: the
// value of COUNT aggregates, the denominator of AVG.
func (r *AggResult) Count(row, a int) int64 { return r.r.Count(row, a) }

// Int returns integer aggregate a of group row (COUNT/SUM/MIN/MAX over
// integer columns). 0 when IsNull.
func (r *AggResult) Int(row, a int) int64 {
	if r.r.IsNull(row, a) {
		return 0
	}
	return r.r.Int(row, a)
}

// Float returns float aggregate a of group row (SUM/MIN/MAX over FLOAT64
// columns, and AVG over any numeric column). 0 when IsNull.
func (r *AggResult) Float(row, a int) float64 {
	if r.r.IsNull(row, a) {
		return 0
	}
	return r.r.Float(row, a)
}

// JoinRow is one side of a join match; see Table.Join. Columns are
// addressed by position in the JoinSpec payload lists.
type JoinRow = exec.JoinRow

// JoinSpec names the key and payload columns of a Table.Join. Key columns
// must both be numeric or both string/binary; NULL keys never join.
type JoinSpec struct {
	BuildKey, ProbeKey   string
	BuildCols, ProbeCols []string
}

// Join executes an inner hash equi-join inside tx: this table is the
// build side (materialized into a hash table), probe streams through the
// vectorized scan. Probe blocks whose key column is dictionary-encoded
// probe once per distinct code rather than once per row. fn receives the
// payload columns of each matching pair; returning false stops the join.
func (t *Table) Join(tx *Txn, probe *Table, spec JoinSpec, fn func(build, probe *JoinRow) bool) error {
	if err := tx.usable(); err != nil {
		return err
	}
	plan := &exec.JoinPlan{Build: t.DataTable, Probe: probe.DataTable}
	resolve := func(tab *Table, name string) (storage.ColumnID, error) {
		f := tab.Schema.FieldIndex(name)
		if f < 0 {
			return 0, fmt.Errorf("mainline: no column %q", name)
		}
		return storage.ColumnID(f), nil
	}
	var err error
	if plan.BuildKey, err = resolve(t, spec.BuildKey); err != nil {
		return err
	}
	if plan.ProbeKey, err = resolve(probe, spec.ProbeKey); err != nil {
		return err
	}
	for _, name := range spec.BuildCols {
		c, err := resolve(t, name)
		if err != nil {
			return err
		}
		plan.BuildCols = append(plan.BuildCols, c)
	}
	for _, name := range spec.ProbeCols {
		c, err := resolve(probe, name)
		if err != nil {
			return err
		}
		plan.ProbeCols = append(plan.ProbeCols, c)
	}
	return exec.HashJoin(tx.raw, plan, &tx.eng.execCounters, fn)
}
