package mainline

// Public-API tests for Table.Aggregate / Table.Join: oracle equivalence
// against a tuple-at-a-time Scan, worker-count invariance, Stats().Exec
// counters, the duplicate-projection typed error, and empty-table
// semantics.

import (
	"errors"
	"math"
	"testing"
)

// aggFixture builds a sales table (int64 id, int32 region, float64 amount,
// string city) with NULLs in every column but id, freezes the first blocks
// (dictionary encoding included via the engine's own transformer), and
// leaves a hot tail.
func aggFixture(t testing.TB) (*Engine, *Table) {
	t.Helper()
	eng, err := Open(WithTransformMode(TransformDictionary))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	tbl, err := eng.CreateTable("sales", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "region", Type: INT32, Nullable: true},
		Field{Name: "amount", Type: FLOAT64, Nullable: true},
		Field{Name: "city", Type: STRING, Nullable: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"aden", "brno", "cork", "drin", "espo"}
	insert := func(from, to int64) {
		err := eng.Update(func(tx *Txn) error {
			row := tbl.NewRow()
			for id := from; id < to; id++ {
				row.Reset()
				row.Set("id", id)
				if id%11 == 0 {
					row.Set("region", nil)
				} else {
					row.Set("region", int32(id%5))
				}
				if id%13 == 0 {
					row.Set("amount", nil)
				} else if id%89 == 0 {
					row.Set("amount", math.NaN())
				} else {
					// Exact halves: parallel float sums match serially.
					row.Set("amount", float64(id%600-300)/2)
				}
				if id%7 == 0 {
					row.Set("city", nil)
				} else {
					row.Set("city", cities[id%int64(len(cities))])
				}
				if _, err := tbl.Insert(tx, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	insert(0, 700)
	blk := tbl.Blocks()[len(tbl.Blocks())-1]
	blk.SetInsertHead(blk.Layout.NumSlots)
	if !eng.FreezeAll(10) {
		t.Fatal("could not freeze prefix")
	}
	insert(700, 900) // hot tail
	return eng, tbl
}

// scanOracle recomputes COUNT(*) / COUNT(amount) / SUM(amount) /
// MIN(id) / MAX(id) per city with a plain tuple scan.
type cityAgg struct {
	rows, amounts int64
	sumAmount     float64
	minID, maxID  int64
}

func scanOracle(t *testing.T, eng *Engine, tbl *Table) map[string]*cityAgg {
	t.Helper()
	want := map[string]*cityAgg{}
	err := eng.View(func(tx *Txn) error {
		return tbl.Scan(tx, []string{"id", "amount", "city"}, func(_ TupleSlot, row *Row) bool {
			key := "\x00" // NULL city group
			if !row.Null("city") {
				key = row.String("city")
			}
			st := want[key]
			if st == nil {
				st = &cityAgg{minID: math.MaxInt64, maxID: math.MinInt64}
				want[key] = st
			}
			st.rows++
			if !row.Null("amount") {
				st.amounts++
				st.sumAmount += row.Float64("amount")
			}
			if id := row.Int64("id"); true {
				if id < st.minID {
					st.minID = id
				}
				if id > st.maxID {
					st.maxID = id
				}
			}
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestAggregateMatchesScan(t *testing.T) {
	eng, tbl := aggFixture(t)
	want := scanOracle(t, eng, tbl)
	err := eng.View(func(tx *Txn) error {
		for _, workers := range []int{1, 4} {
			res, err := tbl.Aggregate(tx, NewQuery().
				GroupBy("city").
				CountAll().Count("amount").Sum("amount").Min("id").Max("id").
				Workers(workers))
			if err != nil {
				return err
			}
			if res.Len() != len(want) {
				t.Fatalf("workers=%d: %d groups, want %d", workers, res.Len(), len(want))
			}
			for r := 0; r < res.Len(); r++ {
				key := "\x00"
				if !res.GroupIsNull(r, 0) {
					key = res.GroupString(r, 0)
				}
				st := want[key]
				if st == nil {
					t.Fatalf("workers=%d: group %q not in scan oracle", workers, key)
				}
				if res.Int(r, 0) != st.rows || res.Int(r, 1) != st.amounts {
					t.Fatalf("workers=%d group %q: counts (%d, %d) want (%d, %d)",
						workers, key, res.Int(r, 0), res.Int(r, 1), st.rows, st.amounts)
				}
				got, wantSum := res.Float(r, 2), st.sumAmount
				if got != wantSum && !(math.IsNaN(got) && math.IsNaN(wantSum)) {
					t.Fatalf("workers=%d group %q: SUM(amount) %v want %v", workers, key, got, wantSum)
				}
				if res.Int(r, 3) != st.minID || res.Int(r, 4) != st.maxID {
					t.Fatalf("workers=%d group %q: MIN/MAX(id) (%d, %d) want (%d, %d)",
						workers, key, res.Int(r, 3), res.Int(r, 4), st.minID, st.maxID)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggregateWhereAndAvg(t *testing.T) {
	eng, tbl := aggFixture(t)
	err := eng.View(func(tx *Txn) error {
		res, err := tbl.Aggregate(tx, NewQuery().
			Count("id").Sum("id").Avg("id").
			Where(Between("id", 100, 299)))
		if err != nil {
			return err
		}
		if res.Len() != 1 {
			t.Fatalf("global query: %d rows", res.Len())
		}
		// ids 100..299: count 200, sum 200*(100+299)/2.
		if res.Int(0, 0) != 200 || res.Int(0, 1) != 39900 {
			t.Fatalf("COUNT/SUM = %d/%d, want 200/39900", res.Int(0, 0), res.Int(0, 1))
		}
		if got := res.Float(0, 2); got != 39900.0/200 {
			t.Fatalf("AVG = %v, want %v", got, 39900.0/200)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggregateExecStats(t *testing.T) {
	eng, tbl := aggFixture(t)
	before := eng.Stats().Exec
	err := eng.View(func(tx *Txn) error {
		_, err := tbl.Aggregate(tx, NewQuery().GroupBy("city").CountAll().Workers(2))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	after := eng.Stats().Exec
	if after.Queries != before.Queries+1 {
		t.Fatalf("Queries: %d -> %d", before.Queries, after.Queries)
	}
	if after.MorselsDispatched <= before.MorselsDispatched ||
		after.RowsAggregated <= before.RowsAggregated ||
		after.WorkersLaunched <= before.WorkersLaunched {
		t.Fatalf("exec counters did not advance: %+v -> %+v", before, after)
	}
	if after.DictFastBlocks <= before.DictFastBlocks {
		t.Fatalf("dictionary fast path never engaged on the frozen prefix: %+v", after)
	}
}

func TestAggregateEmptyTablePublic(t *testing.T) {
	eng, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("empty", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "v", Type: FLOAT64, Nullable: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	err = eng.View(func(tx *Txn) error {
		res, err := tbl.Aggregate(tx, NewQuery().GroupBy("id").CountAll())
		if err != nil {
			return err
		}
		if res.Len() != 0 {
			t.Fatalf("grouped empty: %d groups", res.Len())
		}
		res, err = tbl.Aggregate(tx, NewQuery().CountAll().Sum("v"))
		if err != nil {
			return err
		}
		if res.Len() != 1 || res.Int(0, 0) != 0 || res.IsNull(0, 0) {
			t.Fatal("global empty: want one row with COUNT(*) = 0 (not NULL)")
		}
		if !res.IsNull(0, 1) {
			t.Fatal("global empty: SUM must be NULL")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAggregateUnknownColumn(t *testing.T) {
	eng, tbl := aggFixture(t)
	err := eng.View(func(tx *Txn) error {
		if _, err := tbl.Aggregate(tx, NewQuery().GroupBy("nope").CountAll()); err == nil {
			t.Fatal("unknown group column must error")
		}
		if _, err := tbl.Aggregate(tx, NewQuery().Sum("nope")); err == nil {
			t.Fatal("unknown aggregate column must error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateProjectionColumn pins the typed error for projections that
// name the same column twice, across every public entry point that builds
// a projection from a column list.
func TestDuplicateProjectionColumn(t *testing.T) {
	eng, tbl := aggFixture(t)
	if _, err := tbl.NewRowFor("id", "id"); !errors.Is(err, ErrDuplicateColumn) {
		t.Fatalf("NewRowFor: err = %v, want ErrDuplicateColumn", err)
	}
	err := eng.View(func(tx *Txn) error {
		err := tbl.Scan(tx, []string{"id", "id"}, func(_ TupleSlot, _ *Row) bool { return true })
		if !errors.Is(err, ErrDuplicateColumn) {
			t.Fatalf("Scan: err = %v, want ErrDuplicateColumn", err)
		}
		err = tbl.ScanBatches(tx, []string{"amount", "amount"}, nil, func(_ *Batch) bool { return true })
		if !errors.Is(err, ErrDuplicateColumn) {
			t.Fatalf("ScanBatches: err = %v, want ErrDuplicateColumn", err)
		}
		err = tbl.Filter(tx, Ge("id", 0), []string{"city", "city"}, func(_ TupleSlot, _ *Row) bool { return true })
		if !errors.Is(err, ErrDuplicateColumn) {
			t.Fatalf("Filter: err = %v, want ErrDuplicateColumn", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinPublic(t *testing.T) {
	eng, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dim, err := eng.CreateTable("regions", NewSchema(
		Field{Name: "region", Type: INT32},
		Field{Name: "name", Type: STRING},
	))
	if err != nil {
		t.Fatal(err)
	}
	fact, err := eng.CreateTable("orders", NewSchema(
		Field{Name: "id", Type: INT64},
		Field{Name: "region", Type: INT32, Nullable: true},
		Field{Name: "qty", Type: INT64},
	))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"north", "south", "east"}
	err = eng.Update(func(tx *Txn) error {
		row := dim.NewRow()
		for i, n := range names {
			row.Reset()
			row.Set("region", int32(i))
			row.Set("name", n)
			if _, err := dim.Insert(tx, row); err != nil {
				return err
			}
		}
		orow := fact.NewRow()
		for i := int64(0); i < 50; i++ {
			orow.Reset()
			orow.Set("id", i)
			if i%10 == 0 {
				orow.Set("region", nil) // NULL keys never join
			} else {
				orow.Set("region", int32(i%5)) // regions 3, 4 dangle
			}
			orow.Set("qty", i)
			if _, err := fact.Insert(tx, orow); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: orders with region in {0, 1, 2} and a non-NULL key.
	wantMatches := 0
	perRegion := map[string]int64{}
	err = eng.View(func(tx *Txn) error {
		return fact.Scan(tx, []string{"region", "qty"}, func(_ TupleSlot, row *Row) bool {
			if row.Null("region") {
				return true
			}
			if r := row.Int32("region"); r >= 0 && int(r) < len(names) {
				wantMatches++
				perRegion[names[r]] += row.Int64("qty")
			}
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	got := 0
	gotPerRegion := map[string]int64{}
	err = eng.View(func(tx *Txn) error {
		return dim.Join(tx, fact, JoinSpec{
			BuildKey: "region", ProbeKey: "region",
			BuildCols: []string{"name"}, ProbeCols: []string{"qty"},
		}, func(build, probe *JoinRow) bool {
			got++
			gotPerRegion[string(build.Bytes(0))] += probe.Int(0)
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantMatches || got == 0 {
		t.Fatalf("join matches: got %d want %d", got, wantMatches)
	}
	for name, want := range perRegion {
		if gotPerRegion[name] != want {
			t.Fatalf("region %q: SUM(qty) %d want %d", name, gotPerRegion[name], want)
		}
	}
	if s := eng.Stats().Exec; s.JoinBuildRows == 0 || s.JoinProbeRows == 0 {
		t.Fatalf("join counters not populated: %+v", s)
	}
}
