package chbench

import "testing"

// TestHybridRun drives the full hybrid workload at test scale: TPC-C
// terminals committing throughout, verified parallel aggregations and
// joins interleaved. The oracle checks inside Run are the assertion — a
// returned error means an analytical snapshot diverged from the
// tuple-path truth.
func TestHybridRun(t *testing.T) {
	if raceEnabled {
		t.Skip("TPC-C terminals are deliberately racy at tuple byte level; see race_flag_test.go")
	}
	cfg := DefaultConfig()
	cfg.Queries = 6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != cfg.Queries {
		t.Fatalf("completed %d queries, want %d", res.Queries, cfg.Queries)
	}
	if res.TPCC.Total() == 0 {
		t.Fatal("no transactional work committed — the run was not hybrid")
	}
	// Each pass is one aggregation plus one join.
	if res.Exec.Queries != 2*int64(cfg.Queries) {
		t.Fatalf("exec counted %d queries, want %d", res.Exec.Queries, 2*cfg.Queries)
	}
	if res.Exec.MorselsDispatched == 0 || res.Exec.RowsAggregated == 0 {
		t.Fatalf("operator counters not populated: %+v", res.Exec)
	}
	if res.Exec.JoinBuildRows == 0 || res.Exec.JoinProbeRows == 0 {
		t.Fatalf("join counters not populated: %+v", res.Exec)
	}
	if res.QueriesPerSec <= 0 {
		t.Fatal("rate not computed")
	}
}
