//go:build race

package chbench

// raceEnabled reports that the race detector is active. The hybrid run
// drives TPC-C terminals, whose in-place update protocol is deliberately
// racy at tuple byte level (torn reads repair through the version chain —
// the same reason internal/workload/tpcc is excluded from the CI race
// job), so the full-contact hybrid test skips under TSan. The race-clean
// phased HTAP aggregation stress lives in internal/exec.
const raceEnabled = true
