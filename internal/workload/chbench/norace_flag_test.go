//go:build !race

package chbench

// raceEnabled reports that the race detector is active; see
// race_flag_test.go.
const raceEnabled = false
