// Package chbench runs a CH-benCHmark-style hybrid workload: TPC-C
// terminals execute the transactional mix while concurrent analytical
// queries — morsel-driven parallel aggregations and hash joins over the
// same live tables — stream through their own snapshots. Every
// aggregation is cross-checked inside its transaction against a
// tuple-at-a-time oracle, so the run doubles as an HTAP consistency
// check: a single divergent count means a worker saw a torn snapshot.
//
// The background pipeline (GC + transformation) runs throughout, so
// queries sweep hot, cooling, and frozen dictionary blocks in the same
// pass — the paper's §6.1 setting with an OLAP lane added.
package chbench

import (
	"fmt"
	"sync"
	"time"

	"mainline/internal/catalog"
	"mainline/internal/exec"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/workload/tpcc"
)

// Config sizes a hybrid run.
type Config struct {
	// Warehouses is the TPC-C scale factor.
	Warehouses int
	// Terminals is the number of transactional worker goroutines.
	Terminals int
	// Queries is the number of verified analytical passes to run; the
	// transactional side runs until the last query completes.
	Queries int
	// AnalyticsWorkers is the parallel worker count per aggregation.
	AnalyticsWorkers int
	// Seed drives both the loader and the terminals.
	Seed uint64
}

// DefaultConfig is a small but fully hybrid setup.
func DefaultConfig() Config {
	return Config{Warehouses: 2, Terminals: 2, Queries: 20, AnalyticsWorkers: 4, Seed: 42}
}

// Result reports a hybrid run.
type Result struct {
	// TPCC is the transactional side: committed per profile, tpmC.
	TPCC *tpcc.RunResult
	// Queries is the number of verified analytical passes completed.
	Queries int
	// QueriesPerSec is the analytical rate over the run.
	QueriesPerSec float64
	// Exec is the operator-layer counter snapshot (morsels, partials,
	// dictionary fast-path blocks, join cardinalities).
	Exec exec.Stats
}

// Run executes the hybrid workload and verifies every analytical query
// against its tuple-path oracle.
func Run(cfg Config) (*Result, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	db, err := tpcc.NewDatabase(mgr, cat, tpcc.DefaultConfig(cfg.Warehouses))
	if err != nil {
		return nil, err
	}
	p, err := tpcc.Load(db, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Background pipeline: GC feeding the observer, transformation to
	// dictionary-encoded frozen blocks over the cold ORDER tables.
	g := gc.New(mgr)
	obs := transform.NewObserver()
	for _, tbl := range db.OrderTables() {
		obs.Watch(tbl.DataTable)
	}
	g.SetObserver(obs)
	tcfg := transform.DefaultConfig()
	tcfg.Mode = transform.ModeDictionary
	tr := transform.New(mgr, g, obs, tcfg)
	g.Start(5 * time.Millisecond)
	tr.Start(5 * time.Millisecond)
	defer func() {
		tr.Stop()
		g.Stop()
	}()

	// Transactional lane: terminals run until the analytical lane is done.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	committed := make([][5]int64, cfg.Terminals)
	start := time.Now()
	for i := 0; i < cfg.Terminals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := int32(i%cfg.Warehouses) + 1
			wk := tpcc.NewWorker(db, p, w, cfg.Seed+uint64(i)*7919)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if profile, ok := wk.RunOne(); ok {
					committed[i][profile]++
				}
			}
		}(i)
	}

	// Analytical lane.
	var counters exec.Counters
	queries := 0
	analyticsErr := func() error {
		for q := 0; q < cfg.Queries; q++ {
			if err := verifiedAggregate(mgr, db, cfg.AnalyticsWorkers, &counters); err != nil {
				return fmt.Errorf("query %d: %w", q, err)
			}
			if err := verifiedJoin(mgr, db, &counters); err != nil {
				return fmt.Errorf("join %d: %w", q, err)
			}
			queries++
		}
		return nil
	}()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if analyticsErr != nil {
		return nil, analyticsErr
	}

	res := &Result{
		TPCC:          &tpcc.RunResult{Elapsed: elapsed},
		Queries:       queries,
		QueriesPerSec: float64(queries) / elapsed.Seconds(),
		Exec:          counters.Snapshot(),
	}
	for _, c := range committed {
		for profile, n := range c {
			res.TPCC.Committed[profile] += n
		}
	}
	return res, nil
}

// verifiedAggregate runs the CH-style revenue query — GROUP BY
// (ol_w_id, ol_d_id): COUNT(*), SUM(ol_amount), MAX(ol_o_id),
// COUNT(ol_delivery_d) — in parallel, then recomputes it tuple-at-a-time
// in the SAME transaction and demands exact equality.
func verifiedAggregate(mgr *txn.Manager, db *tpcc.Database, workers int, c *exec.Counters) error {
	ol := db.OrderLine
	groupBy := []storage.ColumnID{tpcc.OLWID, tpcc.OLDID}
	aggs := []exec.AggSpec{
		{Op: exec.OpCount, Col: -1},
		{Op: exec.OpSum, Col: tpcc.OLAmount},
		{Op: exec.OpMax, Col: tpcc.OLOID},
		{Op: exec.OpCount, Col: tpcc.OLDeliveryD},
	}

	tx := mgr.Begin()
	defer mgr.Commit(tx, nil)
	res, err := exec.Aggregate(tx, &exec.AggPlan{
		Table: ol.DataTable, GroupBy: groupBy, Aggs: aggs, Workers: workers,
	}, c)
	if err != nil {
		return err
	}

	type state struct{ rows, amount, maxOID, delivered int64 }
	oracle := map[[2]int64]*state{}
	err = ol.Scan(tx, ol.AllColumnsProjection(), func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
		k := [2]int64{int64(row.Int32(tpcc.OLWID)), int64(row.Int32(tpcc.OLDID))}
		st := oracle[k]
		if st == nil {
			st = &state{maxOID: -1 << 62}
			oracle[k] = st
		}
		st.rows++
		st.amount += row.Int64(tpcc.OLAmount)
		if oid := int64(row.Int32(tpcc.OLOID)); oid > st.maxOID {
			st.maxOID = oid
		}
		if !row.IsNull(tpcc.OLDeliveryD) {
			st.delivered++
		}
		return true
	})
	if err != nil {
		return err
	}

	if res.Len() != len(oracle) {
		return fmt.Errorf("chbench: %d groups parallel vs %d tuple-path", res.Len(), len(oracle))
	}
	for r := 0; r < res.Len(); r++ {
		k := [2]int64{res.GroupInt(r, 0), res.GroupInt(r, 1)}
		st := oracle[k]
		if st == nil {
			return fmt.Errorf("chbench: group %v not in tuple-path oracle", k)
		}
		if res.Int(r, 0) != st.rows || res.Int(r, 1) != st.amount ||
			res.Int(r, 2) != st.maxOID || res.Int(r, 3) != st.delivered {
			return fmt.Errorf("chbench: group %v diverged: parallel (%d, %d, %d, %d) vs tuple (%d, %d, %d, %d)",
				k, res.Int(r, 0), res.Int(r, 1), res.Int(r, 2), res.Int(r, 3),
				st.rows, st.amount, st.maxOID, st.delivered)
		}
	}
	return nil
}

// verifiedJoin probes ORDER_LINE against ITEM on the item id. Every order
// line references an existing item (referential integrity the loader and
// New-Order maintain), so the match count must equal the probe-side row
// count — checked against a tuple scan in the same transaction.
func verifiedJoin(mgr *txn.Manager, db *tpcc.Database, c *exec.Counters) error {
	tx := mgr.Begin()
	defer mgr.Commit(tx, nil)

	matches := 0
	err := exec.HashJoin(tx, &exec.JoinPlan{
		Build: db.Item.DataTable, Probe: db.OrderLine.DataTable,
		BuildKey: tpcc.IID, ProbeKey: tpcc.OLIID,
		BuildCols: []storage.ColumnID{tpcc.IPrice},
		ProbeCols: []storage.ColumnID{tpcc.OLQuantity},
	}, c, func(_, _ *exec.JoinRow) bool {
		matches++
		return true
	})
	if err != nil {
		return err
	}
	rows := 0
	ol := db.OrderLine
	err = ol.Scan(tx, ol.AllColumnsProjection(), func(storage.TupleSlot, *storage.ProjectedRow) bool {
		rows++
		return true
	})
	if err != nil {
		return err
	}
	if matches != rows {
		return fmt.Errorf("chbench: join matched %d of %d order lines — referential integrity or snapshot broken", matches, rows)
	}
	return nil
}
