// Package netbench is the keyed-fleet stress driver for the serving
// layer: N concurrent network clients mix OLTP point writes (indexed
// upserts and deletes through the transactional plane) with streaming
// analytical exports (DoGet over the same connection fleet), all over real
// TCP against a real server.
//
// Correctness is replay-verified: every client owns a disjoint key range
// and tracks the value/version it last committed per key in a local
// oracle, rolled back on abort. After the fleet stops, one full DoGet
// export is compared against the merged oracle in both directions — a
// single divergent key is a mismatch. Mid-run exports additionally check
// structural invariants (keys in range, no duplicate keys per snapshot),
// which would catch a torn zero-copy block or a non-snapshot read.
//
// The driver also probes admission control while the fleet holds every
// session slot: extra dials must be rejected immediately with a typed
// ErrServerBusy, never hang.
package netbench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mainline"
	"mainline/internal/obs"
	"mainline/internal/server"
)

// Config shapes a netbench run.
type Config struct {
	// Addr targets a running server; empty self-hosts an in-process
	// engine + server (the unit-test and sweep path).
	Addr string
	// Clients is the fleet size (each client = one connection).
	Clients int
	// KeysPerClient bounds each client's disjoint key range.
	KeysPerClient int
	// Duration bounds the mixed-op phase.
	Duration time.Duration
	// ExportEvery issues a streaming DoGet after this many write ops per
	// client (0 disables mid-run exports).
	ExportEvery int
	// DeleteFrac is the fraction of ops that delete instead of upsert.
	DeleteFrac float64
	// ProbeAdmission dials past the session cap during the run (self-host
	// mode sizes MaxSessions to the fleet so the probe must bounce).
	ProbeAdmission bool
	// Seed makes runs reproducible.
	Seed int64
	// Table is the benchmark table name.
	Table string
}

// DefaultConfig returns the standard mixed-fleet shape.
func DefaultConfig() Config {
	return Config{
		Clients:        64,
		KeysPerClient:  256,
		Duration:       2 * time.Second,
		ExportEvery:    50,
		DeleteFrac:     0.1,
		ProbeAdmission: true,
		Seed:           1,
		Table:          "netbench",
	}
}

// Result reports a run.
type Result struct {
	// Ops is committed write transactions; Aborts counts transactions
	// that failed to commit (deadline hits included).
	Ops    int64
	Aborts int64
	// Exports / ExportRows / ExportBytes total the streaming DoGets.
	Exports     int64
	ExportRows  int64
	ExportBytes int64
	// BusyRejections counts admission-probe dials bounced with
	// ErrServerBusy; ProbeHangs counts probe dials that neither connected
	// nor errored within a second (must stay 0 — "reject, never hang").
	BusyRejections int64
	ProbeHangs     int64
	// Mismatches counts oracle divergences in the final replay
	// verification (must be 0); InvariantViolations counts mid-run export
	// snapshots that broke structural invariants (must be 0).
	Mismatches          int64
	InvariantViolations int64
	// FinalRows is the row count of the closing export; Elapsed is the
	// mixed-op phase wall time.
	FinalRows int
	Elapsed   time.Duration
	// Latency is the per-write-transaction round-trip distribution
	// (Begin through Commit over the wire), captured into an
	// internal/obs histogram by every fleet member.
	Latency obs.HistSnapshot
	// ServerStats snapshots the server counters after the run (self-host
	// mode only).
	ServerStats mainline.ServerStats

	// lat is the live histogram behind Latency while the fleet runs.
	lat *obs.Histogram
}

// TxnPerSec is committed write throughput.
func (r *Result) TxnPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// oracleEntry is one key's last-committed state.
type oracleEntry struct {
	v, ver int64
}

var netSchema = mainline.NewSchema(
	mainline.Field{Name: "k", Type: mainline.INT64},
	mainline.Field{Name: "v", Type: mainline.INT64},
	mainline.Field{Name: "ver", Type: mainline.INT64},
	mainline.Field{Name: "pad", Type: mainline.STRING, Nullable: true},
)

var writeCols = []string{"k", "v", "ver", "pad"}

// Run executes one netbench configuration.
func Run(cfg Config) (*Result, error) {
	if cfg.Clients <= 0 || cfg.KeysPerClient <= 0 {
		return nil, fmt.Errorf("netbench: need positive Clients and KeysPerClient")
	}
	if cfg.Table == "" {
		cfg.Table = "netbench"
	}
	addr := cfg.Addr
	var srv *server.Server
	if addr == "" {
		eng, err := mainline.Open()
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		// Size the session cap to exactly the fleet so the admission probe
		// deterministically bounces while every client is connected; the
		// verifier dials after the fleet closes and retries while the
		// server reaps the freed slots.
		srv = server.New(eng, server.Config{Addr: "127.0.0.1:0", MaxSessions: cfg.Clients})
		if addr, err = srv.Listen(); err != nil {
			return nil, err
		}
		defer srv.Close()
	}

	// Schema setup on a throwaway connection.
	setup, err := server.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := setup.CreateTable(cfg.Table, netSchema); err != nil && !errors.Is(err, server.ErrTableExists) {
		setup.Close()
		return nil, err
	}
	if err := setup.CreateIndex(cfg.Table, "by_k", 0, "k"); err != nil {
		setup.Close()
		return nil, err
	}
	setup.Close()

	// Connect the fleet up front so the probe runs against a full house.
	// The setup connection's slot frees asynchronously, so the last fleet
	// dial may transiently bounce — retry it.
	clients := make([]*server.Client, cfg.Clients)
	for i := range clients {
		c, err := dialRetry(addr, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("netbench: fleet dial %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	res := &Result{lat: obs.NewHistogram("netbench_txn", "", "seconds", "")}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients+1)
	oracles := make([]map[int64]oracleEntry, cfg.Clients)

	start := time.Now()
	for ci := range clients {
		wg.Add(1)
		oracles[ci] = make(map[int64]oracleEntry, cfg.KeysPerClient)
		go func(ci int) {
			defer wg.Done()
			if err := driveClient(cfg, clients[ci], ci, oracles[ci], stop, res); err != nil {
				select {
				case errCh <- fmt.Errorf("client %d: %w", ci, err):
				default:
				}
			}
		}(ci)
	}
	if cfg.ProbeAdmission {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probeAdmission(addr, stop, res)
		}()
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Latency = res.lat.Snapshot()
	select {
	case err := <-errCh:
		return res, err
	default:
	}

	// Release the fleet's sessions, then replay-verify on a fresh one.
	for _, c := range clients {
		c.Close()
	}
	if err := verify(addr, cfg, oracles, res); err != nil {
		return res, err
	}
	if srv != nil {
		res.ServerStats = srv.Stats()
	}
	return res, nil
}

// dialRetry dials, retrying typed busy rejections until the deadline —
// used where a just-closed connection's slot may not be reaped yet.
func dialRetry(addr string, patience time.Duration) (*server.Client, error) {
	deadline := time.Now().Add(patience)
	for {
		c, err := server.Dial(addr)
		if err == nil {
			return c, nil
		}
		if !errors.Is(err, server.ErrServerBusy) || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// driveClient runs one fleet member's mixed loop: keyed upserts/deletes
// with oracle bookkeeping, plus a periodic streaming export over its own
// key range.
func driveClient(cfg Config, c *server.Client, ci int, oracle map[int64]oracleEntry, stop <-chan struct{}, res *Result) error {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
	lo := int64(ci) * int64(cfg.KeysPerClient)
	hi := lo + int64(cfg.KeysPerClient)
	ops := 0
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		k := lo + rng.Int63n(hi-lo)
		if err := writeOnce(cfg, c, rng, k, oracle, res); err != nil {
			return err
		}
		ops++
		if cfg.ExportEvery > 0 && ops%cfg.ExportEvery == 0 {
			if err := exportOnce(cfg, c, lo, hi, res); err != nil {
				return err
			}
		}
	}
}

// writeOnce is one oracle-tracked transaction against key k.
func writeOnce(cfg Config, c *server.Client, rng *rand.Rand, k int64, oracle map[int64]oracleEntry, res *Result) error {
	defer res.lat.RecordSince(time.Now())
	tx, err := c.Begin()
	if err != nil {
		return err
	}
	cur, err := tx.GetBy(cfg.Table, "by_k", []any{k}, "k", "ver")
	if err != nil {
		tx.Abort()
		atomic.AddInt64(&res.Aborts, 1)
		return nil
	}
	del := cur != nil && rng.Float64() < cfg.DeleteFrac
	var v, ver int64
	switch {
	case del:
		err = tx.Delete(cfg.Table, cur.Slot)
	case cur != nil:
		v, ver = rng.Int63n(1<<40), cur.Int("ver")+1
		err = tx.Update(cfg.Table, cur.Slot, writeCols[1:3], []any{v, ver})
	default:
		v, ver = rng.Int63n(1<<40), 1
		_, err = tx.Insert(cfg.Table, writeCols, []any{k, v, ver, fmt.Sprintf("pad-%d-%d", k, ver)})
	}
	if err != nil {
		tx.Abort()
		atomic.AddInt64(&res.Aborts, 1)
		return nil
	}
	if _, err := tx.Commit(); err != nil {
		// Commit failure (conflict, deadline): the oracle keeps the old
		// state — exactly what replay verification checks.
		atomic.AddInt64(&res.Aborts, 1)
		return nil
	}
	if del {
		delete(oracle, k)
	} else {
		oracle[k] = oracleEntry{v: v, ver: ver}
	}
	atomic.AddInt64(&res.Ops, 1)
	return nil
}

// exportOnce streams this client's key range and checks snapshot
// invariants: every key in range, no key twice.
func exportOnce(cfg Config, c *server.Client, lo, hi int64, res *Result) error {
	seen := make(map[int64]struct{})
	rows := 0
	st, err := c.DoGet(cfg.Table, []string{"k"}, &server.WirePred{Col: "k", Op: server.PredBetween, V1: lo, V2: hi - 1},
		func(rb *mainline.RecordBatch) error {
			kc := rb.Column("k")
			for i := 0; i < rb.NumRows; i++ {
				k := kc.Int64(i)
				if k < lo || k >= hi {
					atomic.AddInt64(&res.InvariantViolations, 1)
				}
				if _, dup := seen[k]; dup {
					atomic.AddInt64(&res.InvariantViolations, 1)
				}
				seen[k] = struct{}{}
			}
			rows += rb.NumRows
			return nil
		})
	if err != nil {
		return fmt.Errorf("export [%d,%d): %w", lo, hi, err)
	}
	atomic.AddInt64(&res.Exports, 1)
	atomic.AddInt64(&res.ExportRows, int64(rows))
	atomic.AddInt64(&res.ExportBytes, st.Bytes)
	return nil
}

// probeAdmission hammers the session cap while the fleet holds every
// slot: each dial must fail fast with a typed ErrServerBusy.
func probeAdmission(addr string, stop <-chan struct{}, res *Result) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		done := make(chan error, 1)
		go func() {
			c, err := server.Dial(addr, server.WithDialTimeout(2*time.Second))
			if err == nil {
				c.Close()
			}
			done <- err
		}()
		select {
		case err := <-done:
			if errors.Is(err, server.ErrServerBusy) {
				atomic.AddInt64(&res.BusyRejections, 1)
			}
		case <-time.After(time.Second):
			atomic.AddInt64(&res.ProbeHangs, 1)
			<-done
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// verify merges the per-client oracles and compares them against one
// final full export, both directions.
func verify(addr string, cfg Config, oracles []map[int64]oracleEntry, res *Result) error {
	expect := make(map[int64]oracleEntry)
	for _, o := range oracles {
		for k, e := range o {
			expect[k] = e
		}
	}
	// The fleet's slots free asynchronously as the server reaps the
	// closed connections; retry busy rejections briefly.
	c, err := dialRetry(addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("netbench: verifier dial: %w", err)
	}
	defer c.Close()
	got := make(map[int64]oracleEntry)
	_, err = c.DoGet(cfg.Table, nil, nil, func(rb *mainline.RecordBatch) error {
		kc, vc, verc := rb.Column("k"), rb.Column("v"), rb.Column("ver")
		for i := 0; i < rb.NumRows; i++ {
			k := kc.Int64(i)
			if _, dup := got[k]; dup {
				res.Mismatches++
			}
			got[k] = oracleEntry{v: vc.Int64(i), ver: verc.Int64(i)}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("netbench: final export: %w", err)
	}
	res.FinalRows = len(got)
	for k, e := range expect {
		if g, ok := got[k]; !ok || g != e {
			res.Mismatches++
		}
	}
	for k := range got {
		if _, ok := expect[k]; !ok {
			res.Mismatches++
		}
	}
	return nil
}
