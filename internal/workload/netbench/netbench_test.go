package netbench

import (
	"testing"
	"time"
)

// TestNetbenchFleet is the acceptance run at test scale: 64 concurrent
// network clients mixing transactional writes with streaming DoGet
// exports, replay-verified against the merged per-client oracles, with
// the admission probe hammering the full session table throughout.
func TestNetbenchFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("netbench fleet is a multi-second stress run")
	}
	cfg := DefaultConfig()
	cfg.Clients = 64
	cfg.KeysPerClient = 128
	cfg.Duration = 1500 * time.Millisecond
	cfg.ExportEvery = 25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ops=%d aborts=%d exports=%d exportRows=%d busy=%d finalRows=%d txn/s=%.0f",
		res.Ops, res.Aborts, res.Exports, res.ExportRows, res.BusyRejections,
		res.FinalRows, res.TxnPerSec())
	if res.Ops == 0 {
		t.Fatal("fleet committed no transactions")
	}
	if res.Exports == 0 {
		t.Fatal("fleet streamed no exports")
	}
	if res.Mismatches != 0 {
		t.Fatalf("replay verification: %d mismatches", res.Mismatches)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("export snapshots: %d structural invariant violations", res.InvariantViolations)
	}
	if res.ProbeHangs != 0 {
		t.Fatalf("admission probe: %d dials hung instead of rejecting", res.ProbeHangs)
	}
	if res.BusyRejections == 0 {
		t.Fatal("admission probe saw no ErrServerBusy rejections with a full session table")
	}
	if res.ServerStats.SessionsRejected == 0 {
		t.Fatal("server counters recorded no rejected sessions")
	}
}

// TestNetbenchSmall exercises the driver shape cheaply (also the -short
// path): a handful of clients, no probe, still replay-verified.
func TestNetbenchSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clients = 4
	cfg.KeysPerClient = 64
	cfg.Duration = 300 * time.Millisecond
	cfg.ExportEvery = 10
	cfg.ProbeAdmission = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no committed transactions")
	}
	if res.Mismatches != 0 || res.InvariantViolations != 0 {
		t.Fatalf("verification failed: %d mismatches, %d invariant violations",
			res.Mismatches, res.InvariantViolations)
	}
}
