// Package chaos is the torture harness behind the fault-injection layer
// (internal/fault): it runs a mixed durable workload against a real data
// directory while a seeded fault schedule fires — WAL fsync failures,
// ENOSPC mid-checkpoint, torn WAL tails, or a simulated SIGKILL — then
// reopens the directory and verifies the engine's two recovery promises:
//
//   - No lost acks: every commit the engine acked durable is present
//     after recovery, byte for byte.
//   - No torn state: every recovered row carries a payload whose checksum
//     and content match what was written, and every installed checkpoint
//     passes its manifest CRC verification.
//
// Rows that were committed in memory but never acked durable MAY survive
// (the OS can keep unsynced bytes); the harness counts them as Extra —
// allowed, since durability is a lower bound, and dependency-closed
// flushing guarantees they never contradict the acked prefix.
//
// Everything is derived from one seed — fault offsets, payloads, crash
// points — so a failing run replays exactly with the same seed.
package chaos

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mainline"
	"mainline/internal/checkpoint"
	"mainline/internal/checkpoint/manifestlog"
	"mainline/internal/fault"
	"mainline/internal/objstore"
)

// Scenario names one fault schedule.
type Scenario string

// The four torture scenarios.
const (
	// FsyncFail fails a WAL fsync mid-run: the engine must fail the whole
	// commit group and seal itself degraded.
	FsyncFail Scenario = "fsync-fail"
	// ENOSPC injects out-of-space errors into checkpoint writes while the
	// workload keeps committing: attempts abort, the engine stays healthy.
	ENOSPC Scenario = "enospc"
	// TornWrite tears a WAL write partway through, leaving a physically
	// torn tail for recovery to repair.
	TornWrite Scenario = "torn-write"
	// SIGKILL crashes the engine mid-workload with no fault prelude
	// (Admin().SimulateCrash in-process; the CLI variant is killed for
	// real by CI).
	SIGKILL Scenario = "sigkill"
	// ObjStore attaches a cold tier whose object store fails and stalls on
	// a seeded schedule (Get EIO, Put ENOSPC, ReadRange stalls) while an
	// evictor and a cold reader race the committers and the checkpointer.
	// Beyond the two standard promises, verification proves that every
	// chunk referenced by an installed manifest version exists in the
	// store with its recorded size and CRC — a half-uploaded object is
	// never referenced.
	ObjStore Scenario = "objstore"
)

// Scenarios lists every scenario, in CI order.
func Scenarios() []Scenario {
	return []Scenario{FsyncFail, ENOSPC, TornWrite, SIGKILL, ObjStore}
}

// coldDir is the object store's location inside a chaos data directory.
func coldDir(dir string) string { return filepath.Join(dir, "cold") }

// Config parameterizes one torture run.
type Config struct {
	// Dir is the engine data directory (created if missing).
	Dir string
	// Scenario selects the fault schedule.
	Scenario Scenario
	// Seed derives everything: fault offsets, payloads, crash points.
	Seed int64
	// Workers is the number of concurrent durable committers (default 4).
	Workers int
	// Ops is the per-worker durable commit budget (default 150).
	Ops int
	// CheckpointEvery is the background checkpoint period while the
	// workload runs (default 2ms; <0 disables).
	CheckpointEvery time.Duration
	// AckedPath, when set, appends an fsynced "worker seq" line per acked
	// commit, so a separate process (the CLI's verify mode, after a real
	// SIGKILL) can check the no-lost-acks invariant.
	AckedPath string
	// ExternalKill (the CLI's run mode) skips the simulated crash and the
	// in-process verification: the crash is a real SIGKILL from outside,
	// and VerifyJournal checks the invariants in a fresh process.
	ExternalKill bool
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Ops <= 0 {
		c.Ops = 150
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 2 * time.Millisecond
	}
}

// Result reports one run plus its verification.
type Result struct {
	Scenario Scenario
	Seed     int64

	// Workload accounting.
	Acked          int  // commits acked durable (the invariant set)
	Refused        int  // commits failed or refused — never acked
	CheckpointErrs int  // background checkpoint attempts that aborted
	FaultsFired    int  // injected faults that actually fired
	Evictions      int  // blocks demoted to the object store (ObjStore)
	Degraded       bool // engine ended degraded

	// Verification.
	Recovered int // rows present after reopen
	Lost      int // acked commits missing after recovery — MUST be 0
	Torn      int // rows or checkpoints failing integrity — MUST be 0
	Extra     int // unacked commits that survived (allowed)
}

// Ok reports whether the run upheld both recovery promises.
func (r *Result) Ok() bool { return r.Lost == 0 && r.Torn == 0 }

// String renders the one-line summary the CLI prints.
func (r *Result) String() string {
	return fmt.Sprintf("chaos %-10s seed=%d acked=%d refused=%d ckpt_errs=%d faults=%d evictions=%d degraded=%v recovered=%d lost=%d torn=%d extra=%d",
		r.Scenario, r.Seed, r.Acked, r.Refused, r.CheckpointErrs, r.FaultsFired,
		r.Evictions, r.Degraded, r.Recovered, r.Lost, r.Torn, r.Extra)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// payloadFor derives the deterministic payload of commit (worker, seq):
// verification recomputes it instead of trusting anything on disk.
func payloadFor(seed, worker, seq int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ worker<<32 ^ seq ^ 0x5e3779b97f4a7c15))
	p := make([]byte, 32+rng.Intn(96))
	for i := range p {
		p[i] = byte('a' + rng.Intn(26))
	}
	return p
}

func schema() *mainline.Schema {
	return mainline.NewSchema(
		mainline.Field{Name: "worker", Type: mainline.INT64},
		mainline.Field{Name: "seq", Type: mainline.INT64},
		mainline.Field{Name: "sum", Type: mainline.INT64},
		mainline.Field{Name: "payload", Type: mainline.STRING},
	)
}

type ackKey struct{ worker, seq int64 }

// ackedSet is the harness's ground truth: commits the engine acked
// durable, mirrored to an fsynced journal when configured.
type ackedSet struct {
	mu   sync.Mutex
	set  map[ackKey]struct{}
	file *os.File
}

func newAckedSet(path string) (*ackedSet, error) {
	a := &ackedSet{set: make(map[ackKey]struct{})}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		a.file = f
	}
	return a, nil
}

// add records one acked commit. The journal line is written and fsynced
// AFTER the engine's ack, so the journal can never claim an ack the
// engine did not give (a kill between ack and journal write only
// under-reports, which weakens but never falsifies verification).
func (a *ackedSet) add(worker, seq int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.set[ackKey{worker, seq}] = struct{}{}
	if a.file != nil {
		if _, err := fmt.Fprintf(a.file, "%d %d\n", worker, seq); err != nil {
			return err
		}
		return a.file.Sync()
	}
	return nil
}

func (a *ackedSet) close() {
	if a.file != nil {
		_ = a.file.Close()
	}
}

// arm installs the scenario's fault schedule on the injector. Offsets are
// drawn from rng so each seed tortures a different point of the run.
func arm(inj *fault.Injector, s Scenario, rng *rand.Rand) {
	switch s {
	case FsyncFail:
		inj.AddRule(fault.Rule{
			Op: fault.OpSync, Path: "wal-",
			Skip: 3 + rng.Intn(40), Count: 1, Err: syscall.EIO,
		})
	case TornWrite:
		inj.AddRule(fault.Rule{
			Op: fault.OpWrite, Path: "wal-",
			Skip: 5 + rng.Intn(60), Count: 1,
			TornBytes: 1 + rng.Intn(128), Err: syscall.EIO,
		})
	case ENOSPC:
		// Two checkpoint write sites, several firings each: attempts abort
		// and retry while the workload keeps going.
		inj.AddRule(fault.Rule{
			Op: fault.OpWrite, Path: ".arrow",
			Skip: rng.Intn(3), Count: 2, Err: syscall.ENOSPC,
		})
		inj.AddRule(fault.Rule{
			Op: fault.OpWrite, Path: checkpoint.ManifestName,
			Skip: rng.Intn(2), Count: 2, Err: syscall.ENOSPC,
		})
	case SIGKILL, ObjStore:
		// No filesystem faults: the crash (and, for ObjStore, the store's
		// own fault schedule) is the fault.
	}
}

// armStore installs the object-store fault schedule: transient Get
// failures (fail-then-succeed), ENOSPC on uploads, and a stalled read.
func armStore(fs *objstore.FaultStore, rng *rand.Rand) {
	fs.AddRule(objstore.Rule{
		Op: objstore.OpGet, Skip: rng.Intn(4), Count: 2, Err: syscall.EIO,
	})
	fs.AddRule(objstore.Rule{
		Op: objstore.OpPut, Skip: 1 + rng.Intn(6), Count: 2, Err: syscall.ENOSPC,
	})
	fs.AddRule(objstore.Rule{
		Op: objstore.OpReadRange, Count: 3, Stall: 2 * time.Millisecond,
	})
}

// Run executes one torture run: workload + faults + crash, then reopen
// and verify. The returned Result is complete even when the invariants
// fail — callers check Result.Ok().
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Scenario: cfg.Scenario, Seed: cfg.Seed}

	inj := fault.NewInjector(fault.OS{}, cfg.Seed)
	arm(inj, cfg.Scenario, rng)

	opts := []mainline.Option{
		mainline.WithDataDir(cfg.Dir),
		mainline.WithFaultFS(inj),
		mainline.WithWALSegmentSize(16 << 10),
	}
	var fstore *objstore.FaultStore
	if cfg.Scenario == ObjStore {
		inner, serr := objstore.NewFSStore(coldDir(cfg.Dir), nil)
		if serr != nil {
			return nil, fmt.Errorf("chaos: cold store: %w", serr)
		}
		fstore = objstore.NewFaultStore(inner)
		armStore(fstore, rng)
		opts = append(opts,
			mainline.WithObjectStoreBackend(fstore),
			mainline.WithBlockCacheBytes(64<<10), // tiny: constant cache churn
			mainline.WithTierSweepInterval(time.Hour),
		)
	}
	eng, err := mainline.Open(opts...)
	if err != nil {
		return nil, fmt.Errorf("chaos: open: %w", err)
	}
	tbl, err := eng.CreateTable("chaos", schema())
	if err != nil {
		return nil, fmt.Errorf("chaos: create table: %w", err)
	}
	acked, err := newAckedSet(cfg.AckedPath)
	if err != nil {
		return nil, err
	}
	defer acked.close()

	// Background checkpointer: runs concurrently with the committers so
	// checkpoint faults land mid-workload.
	ckptStop := make(chan struct{})
	var ckptDone sync.WaitGroup
	var ckptErrs atomic.Int64
	if cfg.CheckpointEvery > 0 {
		ckptDone.Add(1)
		go func() {
			defer ckptDone.Done()
			tick := time.NewTicker(cfg.CheckpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-tick.C:
					if _, err := eng.Checkpoint(); err != nil {
						ckptErrs.Add(1)
					}
				}
			}
		}()
	}

	// ObjStore scenario: an evictor keeps demoting frozen blocks to the
	// faulty store while a cold reader forces fetches back through it.
	// Both tolerate refusals — a failed eviction leaves the block
	// resident, a failed fetch fails the scan; neither may corrupt.
	tierStop := make(chan struct{})
	var tierDone sync.WaitGroup
	if cfg.Scenario == ObjStore {
		tierDone.Add(2)
		go func() {
			defer tierDone.Done()
			for {
				select {
				case <-tierStop:
					return
				default:
				}
				eng.RunGC()
				eng.FreezeAll(1)
				_, _ = eng.Admin().EvictAll()
				time.Sleep(300 * time.Microsecond)
			}
		}()
		go func() {
			defer tierDone.Done()
			for {
				select {
				case <-tierStop:
					return
				default:
				}
				_ = eng.View(func(tx *mainline.Txn) error {
					return tbl.Scan(tx, []string{"worker"},
						func(_ mainline.TupleSlot, _ *mainline.Row) bool { return true })
				})
				time.Sleep(500 * time.Microsecond)
			}
		}()
	}

	// SIGKILL scenario: crash from the side once a seed-derived number of
	// acks has landed, while the committers are still running.
	var ackCount atomic.Int64
	crashAfter := int64(0)
	if cfg.Scenario == SIGKILL && !cfg.ExternalKill {
		crashAfter = int64(cfg.Workers*cfg.Ops/4 + rng.Intn(cfg.Workers*cfg.Ops/2+1))
		go func() {
			for ackCount.Load() < crashAfter {
				time.Sleep(200 * time.Microsecond)
			}
			eng.Admin().SimulateCrash()
		}()
	}

	var (
		wg      sync.WaitGroup
		refused atomic.Int64
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int64) {
			defer wg.Done()
			for seq := int64(0); seq < int64(cfg.Ops); seq++ {
				payload := payloadFor(cfg.Seed, worker, seq)
				sum := int64(crc32.Checksum(payload, crcTable))
				err := eng.Update(func(tx *mainline.Txn) error {
					row := tbl.NewRow()
					row.Set("worker", worker)
					row.Set("seq", seq)
					row.Set("sum", sum)
					row.Set("payload", string(payload))
					_, err := tbl.Insert(tx, row)
					return err
				}, mainline.Durable())
				if err != nil {
					refused.Add(1)
					if errors.Is(err, mainline.ErrDegraded) || errors.Is(err, mainline.ErrEngineClosed) {
						// The log is gone (or the crash already hit):
						// nothing further can be acked.
						return
					}
					continue
				}
				ackCount.Add(1)
				if aerr := acked.add(worker, seq); aerr != nil {
					// Journal failure is harness breakage, not an engine
					// fault; give up on this worker rather than lie.
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(ckptStop)
	ckptDone.Wait()
	close(tierStop)
	tierDone.Wait()

	res.Acked = len(acked.set)
	res.Refused = int(refused.Load())
	res.CheckpointErrs = int(ckptErrs.Load())
	res.FaultsFired = inj.FiredCount()
	if fstore != nil {
		res.FaultsFired += fstore.FiredCount()
		res.Evictions = int(eng.Stats().Tier.Evictions)
	}
	degraded, _ := eng.Degraded()
	res.Degraded = degraded

	// Waiting for an external kill: leave the engine open and the crash to
	// whoever sent us here. Process exit without Close is itself a crash
	// image, so even an un-killed run verifies honestly afterwards.
	if cfg.ExternalKill {
		return res, nil
	}

	// Crash. For SIGKILL the side goroutine already did (SimulateCrash is
	// idempotent); every other scenario crashes here, so recovery always
	// faces an un-Closed image.
	eng.Admin().SimulateCrash()

	if err := verify(cfg.Dir, cfg.Seed, acked.set, res); err != nil {
		return res, err
	}
	return res, nil
}

// VerifyJournal re-runs verification against an acked journal written by
// a previous process (the CLI's post-SIGKILL mode).
func VerifyJournal(dir, ackedPath string, seed int64) (*Result, error) {
	res := &Result{Scenario: SIGKILL, Seed: seed}
	set := make(map[ackKey]struct{})
	data, err := os.ReadFile(ackedPath)
	if err != nil {
		return nil, err
	}
	var worker, seq int64
	for len(data) > 0 {
		var n int
		if _, err := fmt.Sscanf(string(data), "%d %d\n", &worker, &seq); err != nil {
			break
		}
		for n = 0; n < len(data) && data[n] != '\n'; n++ {
		}
		data = data[min(n+1, len(data)):]
		set[ackKey{worker, seq}] = struct{}{}
	}
	res.Acked = len(set)
	if err := verify(dir, seed, set, res); err != nil {
		return res, err
	}
	return res, nil
}

// verify reopens dir with a clean filesystem and checks the two promises:
// every acked commit present and untorn, every installed checkpoint
// passing its CRC manifest.
func verify(dir string, seed int64, acked map[ackKey]struct{}, res *Result) error {
	eng, err := mainline.Open(mainline.WithDataDir(dir))
	if err != nil {
		return fmt.Errorf("chaos: reopen for verify: %w", err)
	}
	defer eng.Close()
	tbl := eng.Table("chaos")
	if tbl == nil {
		if len(acked) > 0 {
			res.Lost = len(acked)
			return nil
		}
		return nil
	}
	recovered := make(map[ackKey]struct{})
	err = eng.View(func(tx *mainline.Txn) error {
		return tbl.Scan(tx, []string{"worker", "seq", "sum", "payload"},
			func(_ mainline.TupleSlot, row *mainline.Row) bool {
				res.Recovered++
				k := ackKey{row.Int64("worker"), row.Int64("seq")}
				recovered[k] = struct{}{}
				payload := row.Bytes("payload")
				want := payloadFor(seed, k.worker, k.seq)
				if string(payload) != string(want) ||
					row.Int64("sum") != int64(crc32.Checksum(payload, crcTable)) {
					res.Torn++
				}
				return true
			})
	})
	if err != nil {
		return fmt.Errorf("chaos: verify scan: %w", err)
	}
	for k := range acked {
		if _, ok := recovered[k]; !ok {
			res.Lost++
		}
	}
	for k := range recovered {
		if _, ok := acked[k]; !ok {
			res.Extra++
		}
	}
	// Installed checkpoints must verify: a checkpoint is installed by the
	// final rename, so a torn one here means the atomic-install protocol
	// broke.
	ckptDir := filepath.Join(dir, "checkpoints")
	seqs, err := checkpoint.ListSeqs(ckptDir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		cdir := filepath.Join(ckptDir, fmt.Sprintf("%08d", seq))
		m, merr := checkpoint.ReadManifest(cdir)
		if merr != nil {
			res.Torn++
			continue
		}
		if verr := checkpoint.Verify(cdir, m); verr != nil {
			res.Torn++
		}
	}
	// With a cold tier, installed manifest versions must reference only
	// fully uploaded chunks: a version record is appended after its
	// checkpoint installs, so a crash or a Put fault can orphan objects
	// but never leave a version pointing at a missing or torn one.
	manPath := filepath.Join(dir, manifestlog.LogName)
	if _, serr := os.Stat(manPath); serr == nil {
		log, lerr := manifestlog.Open(fault.OS{}, manPath)
		if lerr != nil {
			res.Torn++
			return nil
		}
		store, oerr := os2store(dir)
		if oerr != nil {
			return oerr
		}
		for _, v := range log.Versions() {
			for _, tc := range v.Tables {
				for _, c := range tc.Chunks {
					data, gerr := store.Get(c.Key)
					if gerr != nil || int64(len(data)) != c.Size ||
						crc32.Checksum(data, crcTable) != c.CRC {
						res.Torn++
					}
				}
			}
		}
	}
	return nil
}

// os2store opens the run's cold store fault-free for verification.
func os2store(dir string) (objstore.Store, error) {
	return objstore.NewFSStore(coldDir(dir), nil)
}
