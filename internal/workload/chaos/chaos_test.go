package chaos

import (
	"path/filepath"
	"testing"
)

// TestTortureAllScenarios is the in-process acceptance run: every
// scenario at several seeds, each asserting zero lost acked-durable
// commits and zero torn-state detections. CI's chaos job runs the same
// matrix through cmd/mainline-chaos.
func TestTortureAllScenarios(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, scenario := range Scenarios() {
		for _, seed := range seeds {
			t.Run(string(scenario)+"/"+string('0'+rune(seed)), func(t *testing.T) {
				res, err := Run(Config{
					Dir:      t.TempDir(),
					Scenario: scenario,
					Seed:     seed,
					Workers:  4,
					Ops:      60,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Log(res)
				if !res.Ok() {
					t.Fatalf("invariant violated: %s", res)
				}
				if res.Acked == 0 {
					t.Fatal("run acked nothing; the scenario never exercised the workload")
				}
				switch scenario {
				case FsyncFail, TornWrite:
					if !res.Degraded {
						t.Fatal("WAL fault did not degrade the engine")
					}
					if res.FaultsFired == 0 {
						t.Fatal("no fault fired")
					}
				case ENOSPC:
					if res.Degraded {
						t.Fatal("checkpoint ENOSPC degraded the engine")
					}
					if res.CheckpointErrs == 0 {
						t.Fatal("no checkpoint attempt hit the injected ENOSPC")
					}
				case SIGKILL:
					if res.Degraded {
						t.Fatal("sigkill run reported degraded")
					}
				case ObjStore:
					if res.Degraded {
						t.Fatal("object-store faults degraded the engine")
					}
					if res.FaultsFired == 0 {
						t.Fatal("no store fault fired")
					}
				}
			})
		}
	}
}

// TestVerifyJournal round-trips the cross-process verification path the
// CLI uses after a real SIGKILL: run with an acked journal, then verify
// from the journal alone.
func TestVerifyJournal(t *testing.T) {
	dir := t.TempDir()
	ackedPath := filepath.Join(t.TempDir(), "acked.log")
	res, err := Run(Config{
		Dir:       dir,
		Scenario:  SIGKILL,
		Seed:      42,
		Workers:   2,
		Ops:       40,
		AckedPath: ackedPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("run: %s", res)
	}
	vres, err := VerifyJournal(dir, ackedPath, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(vres)
	if !vres.Ok() {
		t.Fatalf("journal verify: %s", vres)
	}
	if vres.Acked != res.Acked {
		t.Fatalf("journal recorded %d acks, run recorded %d", vres.Acked, res.Acked)
	}
}
