package synthetic

import (
	"testing"

	"mainline/internal/storage"
	"mainline/internal/txn"
)

func TestNewTableShapes(t *testing.T) {
	reg := storage.NewRegistry()
	col, err := NewTable(reg, ColumnStore, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if col.Layout().NumColumns() != 16 {
		t.Fatalf("column layout has %d columns", col.Layout().NumColumns())
	}
	row, err := NewTable(reg, RowStore, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Layout().NumColumns() != 1 || row.Layout().AttrSize(0) != 128 {
		t.Fatalf("row layout: %d cols, size %d", row.Layout().NumColumns(), row.Layout().AttrSize(0))
	}
	if ColumnStore.String() != "column" || RowStore.String() != "row" {
		t.Fatal("kind names wrong")
	}
}

func TestInsertsAndUpdatesBothLayouts(t *testing.T) {
	for _, kind := range []LayoutKind{ColumnStore, RowStore} {
		reg := storage.NewRegistry()
		mgr := txn.NewManager(reg)
		table, err := NewTable(reg, kind, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		done, err := RunInserts(mgr, table, kind, 8, 500, 64, 3)
		if err != nil || done != 500 {
			t.Fatalf("%s inserts: %d %v", kind, done, err)
		}
		slots, err := Populate(mgr, table, kind, 8, 100, 4)
		if err != nil || len(slots) != 100 {
			t.Fatalf("%s populate: %v", kind, err)
		}
		done, err = RunUpdates(mgr, table, kind, 8, 4, 300, 64, slots, 5)
		if err != nil || done != 300 {
			t.Fatalf("%s updates: %d %v", kind, done, err)
		}
		tx := mgr.Begin()
		if got := table.CountVisible(tx); got != 600 {
			t.Fatalf("%s visible = %d", kind, got)
		}
		mgr.Commit(tx, nil)
	}
}

// The row-store's write amplification: its update before-image is always
// the full tuple, while the column store's covers only modified columns.
func TestRowStoreDeltaGranularity(t *testing.T) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	rowTable, _ := NewTable(reg, RowStore, 64, 1)
	colTable, _ := NewTable(reg, ColumnStore, 64, 2)
	rowSlots, err := Populate(mgr, rowTable, RowStore, 64, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	colSlots, err := Populate(mgr, colTable, ColumnStore, 64, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUpdates(mgr, rowTable, RowStore, 64, 1, 1, 1, rowSlots, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUpdates(mgr, colTable, ColumnStore, 64, 1, 1, 1, colSlots, 7); err != nil {
		t.Fatal(err)
	}
	// Inspect the newest undo records' delta sizes.
	rowBlock := reg.BlockFor(rowSlots[0])
	colBlock := reg.BlockFor(colSlots[0])
	var rowDelta, colDelta int
	for s := uint32(0); s < rowBlock.InsertHead(); s++ {
		if rec := rowBlock.VersionPtr(s); rec != nil && rec.Kind == storage.KindUpdate {
			rowDelta = rec.Delta.SizeBytes()
		}
	}
	for s := uint32(0); s < colBlock.InsertHead(); s++ {
		if rec := colBlock.VersionPtr(s); rec != nil && rec.Kind == storage.KindUpdate {
			colDelta = rec.Delta.SizeBytes()
		}
	}
	if rowDelta == 0 || colDelta == 0 {
		t.Fatalf("missing update records: row=%d col=%d", rowDelta, colDelta)
	}
	if rowDelta <= colDelta*8 {
		t.Fatalf("row delta (%d) should dwarf single-column delta (%d)", rowDelta, colDelta)
	}
}
