// Package synthetic implements the paper's row-vs-column microbenchmark
// (Figure 11): raw storage insert/update throughput as tuple width grows,
// comparing the engine's columnar layout against a simulated row-store —
// a single wide column holding all attributes contiguously, exactly as the
// paper models it (§6.1 "Row vs. Column").
package synthetic

import (
	"fmt"

	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/txn"
	"mainline/internal/util"
)

// LayoutKind selects the physical shape.
type LayoutKind int

// Physical shapes.
const (
	// ColumnStore declares one 8-byte column per attribute.
	ColumnStore LayoutKind = iota
	// RowStore declares a single column of attrs*8 bytes.
	RowStore
)

// String names the layout.
func (k LayoutKind) String() string {
	if k == RowStore {
		return "row"
	}
	return "column"
}

// NewTable creates a table shaped for the experiment.
func NewTable(reg *storage.Registry, kind LayoutKind, attrs int, id uint32) (*core.DataTable, error) {
	var defs []storage.AttrDef
	if kind == RowStore {
		defs = []storage.AttrDef{storage.FixedAttr(uint16(attrs * 8))}
	} else {
		defs = make([]storage.AttrDef, attrs)
		for i := range defs {
			defs[i] = storage.FixedAttr(8)
		}
	}
	layout, err := storage.NewBlockLayout(defs)
	if err != nil {
		return nil, err
	}
	return core.NewDataTable(reg, layout, id, fmt.Sprintf("synth-%s-%d", kind, attrs)), nil
}

// RunInserts inserts n tuples of `attrs` 8-byte attributes and returns the
// number completed (for ops/sec accounting by the caller). One transaction
// batches `batch` inserts to keep commit overhead proportional for both
// layouts.
func RunInserts(mgr *txn.Manager, table *core.DataTable, kind LayoutKind, attrs, n, batch int, seed uint64) (int, error) {
	rng := util.NewRand(seed)
	proj := table.AllColumnsProjection()
	row := proj.NewRow()
	done := 0
	for done < n {
		tx := mgr.Begin()
		for i := 0; i < batch && done < n; i++ {
			fillRow(row, kind, attrs, rng)
			if _, err := table.Insert(tx, row); err != nil {
				mgr.Abort(tx)
				return done, err
			}
			done++
		}
		mgr.Commit(tx, nil)
	}
	return done, nil
}

func fillRow(row *storage.ProjectedRow, kind LayoutKind, attrs int, rng *util.Rand) {
	if kind == RowStore {
		rng.Bytes(row.FixedBytes(0))
		row.Nulls.Clear(0)
		return
	}
	for i := 0; i < attrs; i++ {
		row.SetInt64(i, int64(rng.Uint64()))
	}
}

// Populate inserts n tuples and returns their slots (update targets).
func Populate(mgr *txn.Manager, table *core.DataTable, kind LayoutKind, attrs, n int, seed uint64) ([]storage.TupleSlot, error) {
	rng := util.NewRand(seed)
	proj := table.AllColumnsProjection()
	row := proj.NewRow()
	slots := make([]storage.TupleSlot, 0, n)
	tx := mgr.Begin()
	for i := 0; i < n; i++ {
		fillRow(row, kind, attrs, rng)
		slot, err := table.Insert(tx, row)
		if err != nil {
			mgr.Abort(tx)
			return nil, err
		}
		slots = append(slots, slot)
	}
	mgr.Commit(tx, nil)
	return slots, nil
}

// RunUpdates performs n updates touching `modified` attributes per update.
// The column store updates exactly those columns (small before-images); the
// row store must write through its single wide column, so its before-image
// is always the whole tuple — the write-amplification asymmetry Figure 11
// demonstrates.
func RunUpdates(mgr *txn.Manager, table *core.DataTable, kind LayoutKind, attrs, modified, n, batch int, slots []storage.TupleSlot, seed uint64) (int, error) {
	rng := util.NewRand(seed)
	var proj *storage.Projection
	if kind == RowStore {
		proj = table.AllColumnsProjection()
	} else {
		cols := make([]storage.ColumnID, modified)
		for i := range cols {
			cols[i] = storage.ColumnID(i)
		}
		proj = storage.MustProjection(table.Layout(), cols)
	}
	row := proj.NewRow()
	done := 0
	for done < n {
		tx := mgr.Begin()
		for i := 0; i < batch && done < n; i++ {
			slot := slots[rng.Intn(len(slots))]
			if kind == RowStore {
				// Touch the first `modified` attribute bytes; the column
				// write still covers the whole wide attribute.
				buf := row.FixedBytes(0)
				rng.Bytes(buf[:modified*8])
				row.Nulls.Clear(0)
			} else {
				for c := 0; c < modified; c++ {
					row.SetInt64(c, int64(rng.Uint64()))
				}
			}
			if err := table.Update(tx, slot, row); err != nil {
				// Conflicts cannot happen single-threaded; surface others.
				mgr.Abort(tx)
				return done, err
			}
			done++
		}
		mgr.Commit(tx, nil)
	}
	return done, nil
}
