// Package tpcc implements the TPC-C benchmark (paper §6.1) against the
// storage engine: the nine tables, population per the specification's
// domains (with a configurable scale so laptops can run it), the five
// transaction profiles with the standard mix, a multi-worker driver with
// one warehouse per worker, and the specification's consistency checks.
//
// Money values are stored as int64 hundredths (cents); dates as Unix
// nanoseconds. All keys are memcomparable composites starting with the
// warehouse ID, so sharded indexes give warehouse-partitioned concurrency.
package tpcc

import (
	"fmt"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/index"
	"mainline/internal/obs"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// Config scales the database. Defaults follow the spec's ratios at reduced
// absolute size; Full() restores spec sizes.
type Config struct {
	Warehouses            int
	DistrictsPerWarehouse int
	CustomersPerDistrict  int
	Items                 int
	InitialOrders         int // per district
	// IndexShards spreads index write locks; 0 derives from Warehouses.
	IndexShards int
}

// DefaultConfig is a laptop-scale configuration preserving spec ratios.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:            warehouses,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  30,
		Items:                 1000,
		InitialOrders:         30,
	}
}

// Full returns the specification-sized configuration (100 K items, 3 K
// customers and orders per district).
func Full(warehouses int) Config {
	return Config{
		Warehouses:            warehouses,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  3000,
		Items:                 100000,
		InitialOrders:         3000,
	}
}

func (c *Config) shards() int {
	if c.IndexShards > 0 {
		return c.IndexShards
	}
	n := c.Warehouses
	if n < 4 {
		n = 4
	}
	return n
}

// Column positions per table, in schema order.
// WAREHOUSE
const (
	WID = iota
	WName
	WStreet1
	WStreet2
	WCity
	WState
	WZip
	WTax
	WYtd
)

// DISTRICT
const (
	DID = iota
	DWID
	DName
	DStreet1
	DStreet2
	DCity
	DState
	DZip
	DTax
	DYtd
	DNextOID
)

// CUSTOMER
const (
	CID = iota
	CDID
	CWID
	CFirst
	CMiddle
	CLast
	CStreet1
	CStreet2
	CCity
	CState
	CZip
	CPhone
	CSince
	CCredit
	CCreditLim
	CDiscount
	CBalance
	CYtdPayment
	CPaymentCnt
	CDeliveryCnt
	CData
)

// HISTORY
const (
	HCID = iota
	HCDID
	HCWID
	HDID
	HWID
	HDate
	HAmount
	HData
)

// NEW_ORDER
const (
	NOOID = iota
	NODID
	NOWID
)

// ORDER
const (
	OID = iota
	ODID
	OWID
	OCID
	OEntryD
	OCarrierID
	OOlCnt
	OAllLocal
)

// ORDER_LINE
const (
	OLOID = iota
	OLDID
	OLWID
	OLNumber
	OLIID
	OLSupplyWID
	OLDeliveryD
	OLQuantity
	OLAmount
	OLDistInfo
)

// ITEM
const (
	IID = iota
	IImID
	IName
	IPrice
	IData
)

// STOCK
const (
	SIID       = 0
	SWID       = 1
	SQuantity  = 2
	SDist01    = 3 // s_dist_01 .. s_dist_10 occupy columns 3..12
	SYtd       = 13
	SOrderCnt  = 14
	SRemoteCnt = 15
	SData      = 16
)

func i32(name string) arrow.Field  { return arrow.Field{Name: name, Type: arrow.INT32} }
func i64(name string) arrow.Field  { return arrow.Field{Name: name, Type: arrow.INT64} }
func str(name string) arrow.Field  { return arrow.Field{Name: name, Type: arrow.STRING} }
func i32n(name string) arrow.Field { return arrow.Field{Name: name, Type: arrow.INT32, Nullable: true} }
func i64n(name string) arrow.Field { return arrow.Field{Name: name, Type: arrow.INT64, Nullable: true} }

func warehouseSchema() *arrow.Schema {
	return arrow.NewSchema(i32("w_id"), str("w_name"), str("w_street_1"), str("w_street_2"),
		str("w_city"), str("w_state"), str("w_zip"), i64("w_tax"), i64("w_ytd"))
}

func districtSchema() *arrow.Schema {
	return arrow.NewSchema(i32("d_id"), i32("d_w_id"), str("d_name"), str("d_street_1"),
		str("d_street_2"), str("d_city"), str("d_state"), str("d_zip"), i64("d_tax"),
		i64("d_ytd"), i32("d_next_o_id"))
}

func customerSchema() *arrow.Schema {
	return arrow.NewSchema(i32("c_id"), i32("c_d_id"), i32("c_w_id"), str("c_first"),
		str("c_middle"), str("c_last"), str("c_street_1"), str("c_street_2"), str("c_city"),
		str("c_state"), str("c_zip"), str("c_phone"), i64("c_since"), str("c_credit"),
		i64("c_credit_lim"), i64("c_discount"), i64("c_balance"), i64("c_ytd_payment"),
		i32("c_payment_cnt"), i32("c_delivery_cnt"), str("c_data"))
}

func historySchema() *arrow.Schema {
	return arrow.NewSchema(i32("h_c_id"), i32("h_c_d_id"), i32("h_c_w_id"), i32("h_d_id"),
		i32("h_w_id"), i64("h_date"), i64("h_amount"), str("h_data"))
}

func newOrderSchema() *arrow.Schema {
	return arrow.NewSchema(i32("no_o_id"), i32("no_d_id"), i32("no_w_id"))
}

func orderSchema() *arrow.Schema {
	return arrow.NewSchema(i32("o_id"), i32("o_d_id"), i32("o_w_id"), i32("o_c_id"),
		i64("o_entry_d"), i32n("o_carrier_id"), i32("o_ol_cnt"), i32("o_all_local"))
}

func orderLineSchema() *arrow.Schema {
	return arrow.NewSchema(i32("ol_o_id"), i32("ol_d_id"), i32("ol_w_id"), i32("ol_number"),
		i32("ol_i_id"), i32("ol_supply_w_id"), i64n("ol_delivery_d"), i32("ol_quantity"),
		i64("ol_amount"), str("ol_dist_info"))
}

func itemSchema() *arrow.Schema {
	return arrow.NewSchema(i32("i_id"), i32("i_im_id"), str("i_name"), i64("i_price"), str("i_data"))
}

func stockSchema() *arrow.Schema {
	fields := []arrow.Field{i32("s_i_id"), i32("s_w_id"), i32("s_quantity")}
	for i := 1; i <= 10; i++ {
		fields = append(fields, str(fmt.Sprintf("s_dist_%02d", i)))
	}
	fields = append(fields, i64("s_ytd"), i32("s_order_cnt"), i32("s_remote_cnt"), str("s_data"))
	return arrow.NewSchema(fields...)
}

// Database bundles the TPC-C tables, their indexes, and the engine handles.
type Database struct {
	Cfg Config
	Mgr *txn.Manager
	Cat *catalog.Catalog

	// Durable switches workers to durable commits: every transaction waits
	// for the WAL group-commit fsync covering its commit record before the
	// terminal proceeds — the mode in which group commit determines
	// throughput. Meaningful only with a wal.LogManager hook installed on
	// Mgr (without one the callback fires synchronously and the wait is
	// free).
	Durable bool

	// CommitLatency, when set, receives every terminal commit's wall time
	// (durable wait included) — benchmarks read p50/p95/p99 off it.
	CommitLatency *obs.Histogram

	Warehouse *catalog.Table
	District  *catalog.Table
	Customer  *catalog.Table
	History   *catalog.Table
	NewOrder  *catalog.Table
	Order     *catalog.Table
	OrderLine *catalog.Table
	Item      *catalog.Table
	Stock     *catalog.Table

	// Primary-key and secondary indexes — engine-managed: declared here,
	// maintained by the engine inside the transaction protocol (inserts /
	// updates / deletes buffer index deltas that publish at commit), read
	// through MVCC-verified lookups. No TPC-C code mutates an index.
	WarehousePK *core.TableIndex // (w_id)
	DistrictPK  *core.TableIndex // (w_id, d_id)
	CustomerPK  *core.TableIndex // (w_id, d_id, c_id)
	CustomerND  *core.TableIndex // (w_id, d_id, c_last, c_first) -> customer
	ItemPK      *core.TableIndex // (i_id)
	StockPK     *core.TableIndex // (w_id, i_id)
	OrderPK     *core.TableIndex // (w_id, d_id, o_id)
	OrderCust   *core.TableIndex // (w_id, d_id, c_id, o_id)
	NewOrderPK  *core.TableIndex // (w_id, d_id, o_id)
	OrderLinePK *core.TableIndex // (w_id, d_id, o_id, ol_number)
}

// NewDatabase creates the tables and declares their engine-managed
// indexes (empty).
func NewDatabase(mgr *txn.Manager, cat *catalog.Catalog, cfg Config) (*Database, error) {
	db := &Database{Cfg: cfg, Mgr: mgr, Cat: cat}
	var err error
	create := func(name string, schema *arrow.Schema) *catalog.Table {
		if err != nil {
			return nil
		}
		var t *catalog.Table
		t, err = cat.CreateTable(name, schema)
		return t
	}
	db.Warehouse = create("warehouse", warehouseSchema())
	db.District = create("district", districtSchema())
	db.Customer = create("customer", customerSchema())
	db.History = create("history", historySchema())
	db.NewOrder = create("new_order", newOrderSchema())
	db.Order = create("order", orderSchema())
	db.OrderLine = create("order_line", orderLineSchema())
	db.Item = create("item", itemSchema())
	db.Stock = create("stock", stockSchema())
	if err != nil {
		return nil, err
	}
	sh := cfg.shards()
	declare := func(t *catalog.Table, name string, shards int, cols ...string) *core.TableIndex {
		if err != nil {
			return nil
		}
		var ti *core.TableIndex
		ti, err = t.CreateIndex(catalog.IndexSpec{Name: name, Columns: cols, Shards: shards})
		return ti
	}
	db.WarehousePK = declare(db.Warehouse, "pk", sh, "w_id")
	db.DistrictPK = declare(db.District, "pk", sh, "d_w_id", "d_id")
	db.CustomerPK = declare(db.Customer, "pk", sh, "c_w_id", "c_d_id", "c_id")
	db.CustomerND = declare(db.Customer, "name", sh, "c_w_id", "c_d_id", "c_last", "c_first")
	db.ItemPK = declare(db.Item, "pk", 0, "i_id") // read-mostly after load
	db.StockPK = declare(db.Stock, "pk", sh, "s_w_id", "s_i_id")
	db.OrderPK = declare(db.Order, "pk", sh, "o_w_id", "o_d_id", "o_id")
	db.OrderCust = declare(db.Order, "cust", sh, "o_w_id", "o_d_id", "o_c_id", "o_id")
	db.NewOrderPK = declare(db.NewOrder, "pk", sh, "no_w_id", "no_d_id", "no_o_id")
	db.OrderLinePK = declare(db.OrderLine, "pk", sh, "ol_w_id", "ol_d_id", "ol_o_id", "ol_number")
	if err != nil {
		return nil, err
	}
	return db, nil
}

// FromCatalog rebinds a Database to tables and indexes already registered
// in cat — the shape recovery produces (catalog.json declares both, and
// the engine rebuilds index entries at Open). Returns an error if any
// table or index is missing.
func FromCatalog(mgr *txn.Manager, cat *catalog.Catalog, cfg Config) (*Database, error) {
	db := &Database{Cfg: cfg, Mgr: mgr, Cat: cat}
	var err error
	lookup := func(name string) *catalog.Table {
		t := cat.Table(name)
		if t == nil && err == nil {
			err = fmt.Errorf("tpcc: table %q missing from catalog", name)
		}
		return t
	}
	db.Warehouse = lookup("warehouse")
	db.District = lookup("district")
	db.Customer = lookup("customer")
	db.History = lookup("history")
	db.NewOrder = lookup("new_order")
	db.Order = lookup("order")
	db.OrderLine = lookup("order_line")
	db.Item = lookup("item")
	db.Stock = lookup("stock")
	if err != nil {
		return nil, err
	}
	idx := func(t *catalog.Table, name string) *core.TableIndex {
		ti := t.Index(name)
		if ti == nil && err == nil {
			err = fmt.Errorf("tpcc: index %s.%s missing from catalog", t.Name, name)
		}
		return ti
	}
	db.WarehousePK = idx(db.Warehouse, "pk")
	db.DistrictPK = idx(db.District, "pk")
	db.CustomerPK = idx(db.Customer, "pk")
	db.CustomerND = idx(db.Customer, "name")
	db.ItemPK = idx(db.Item, "pk")
	db.StockPK = idx(db.Stock, "pk")
	db.OrderPK = idx(db.Order, "pk")
	db.OrderCust = idx(db.Order, "cust")
	db.NewOrderPK = idx(db.NewOrder, "pk")
	db.OrderLinePK = idx(db.OrderLine, "pk")
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Projections returns the cached projection set the transaction profiles
// use (rebinding after recovery, where Load is not called).
func (db *Database) Projections() *projections { return db.buildProjections() }

// commit finishes tx per the database's durability mode: asynchronous by
// default, or blocking on the WAL group-commit fsync when Durable is set.
func (db *Database) commit(tx *txn.Transaction) uint64 {
	if h := db.CommitLatency; h != nil {
		defer h.RecordSince(time.Now())
	}
	if !db.Durable {
		return db.Mgr.Commit(tx, nil)
	}
	// A durable-wait error means the log wedged mid-benchmark; the
	// harness's OnError handler decides the run's fate, so the timestamp
	// is returned either way.
	ts, _ := db.Mgr.CommitDurable(tx)
	return ts
}

// Key builders for the composite indexes.

func wKey(w int32) []byte { return index.NewKeyBuilder(4).Int32(w).Clone() }

func dKey(w, d int32) []byte { return index.NewKeyBuilder(8).Int32(w).Int32(d).Clone() }

func cKey(w, d, c int32) []byte {
	return index.NewKeyBuilder(12).Int32(w).Int32(d).Int32(c).Clone()
}

func cNameKey(w, d int32, last, first string) []byte {
	return index.NewKeyBuilder(32).Int32(w).Int32(d).String(last).String(first).Clone()
}

func cNamePrefix(w, d int32, last string) []byte {
	return index.NewKeyBuilder(32).Int32(w).Int32(d).String(last).Bytes()
}

func iKey(i int32) []byte { return index.NewKeyBuilder(4).Int32(i).Clone() }

func sKey(w, i int32) []byte { return index.NewKeyBuilder(8).Int32(w).Int32(i).Clone() }

func oKey(w, d, o int32) []byte {
	return index.NewKeyBuilder(12).Int32(w).Int32(d).Int32(o).Clone()
}

func oCustKey(w, d, c, o int32) []byte {
	return index.NewKeyBuilder(16).Int32(w).Int32(d).Int32(c).Int32(o).Clone()
}

func olKey(w, d, o, n int32) []byte {
	return index.NewKeyBuilder(16).Int32(w).Int32(d).Int32(o).Int32(n).Clone()
}

// OrderTables returns the tables the paper targets for transformation
// (ORDER, ORDER_LINE, HISTORY, ITEM — the cold-data generators, §6.1).
func (db *Database) OrderTables() []*catalog.Table {
	return []*catalog.Table{db.Order, db.OrderLine, db.History, db.Item}
}

// Projections cached for the hot paths.
type projections struct {
	wAll, dAll, cAll, hAll, noAll, oAll, olAll, iAll, sAll *storage.Projection

	wTaxYtd   *storage.Projection // w_tax, w_ytd
	dTaxNext  *storage.Projection // d_tax, d_next_o_id
	dNext     *storage.Projection // d_next_o_id
	dYtd      *storage.Projection // d_ytd
	wYtd      *storage.Projection // w_ytd
	cDisc     *storage.Projection // c_discount, c_last, c_credit
	cPay      *storage.Projection // c_balance, c_ytd_payment, c_payment_cnt, c_data, c_credit
	cBalDeliv *storage.Projection // c_balance, c_delivery_cnt
	cRead     *storage.Projection // c_id, c_balance, c_first, c_middle, c_last
	iRead     *storage.Projection // i_price, i_name, i_data
	sUpd      *storage.Projection // s_quantity, s_ytd, s_order_cnt, s_remote_cnt
	sRead     *storage.Projection // s_quantity, s_dist_XX (all), s_data
	oCarrier  *storage.Projection // o_carrier_id
	oRead     *storage.Projection // o_id, o_carrier_id, o_entry_d, o_c_id, o_ol_cnt
	olDeliv   *storage.Projection // ol_amount, ol_delivery_d
	olRead    *storage.Projection // ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d
	noRead    *storage.Projection // no_o_id
}

func (db *Database) buildProjections() *projections {
	mp := func(t *catalog.Table, cols ...int) *storage.Projection {
		ids := make([]storage.ColumnID, len(cols))
		for i, c := range cols {
			ids[i] = storage.ColumnID(c)
		}
		return storage.MustProjection(t.Layout(), ids)
	}
	p := &projections{
		wAll:  db.Warehouse.AllColumnsProjection(),
		dAll:  db.District.AllColumnsProjection(),
		cAll:  db.Customer.AllColumnsProjection(),
		hAll:  db.History.AllColumnsProjection(),
		noAll: db.NewOrder.AllColumnsProjection(),
		oAll:  db.Order.AllColumnsProjection(),
		olAll: db.OrderLine.AllColumnsProjection(),
		iAll:  db.Item.AllColumnsProjection(),
		sAll:  db.Stock.AllColumnsProjection(),

		wTaxYtd:   mp(db.Warehouse, WTax, WYtd),
		dTaxNext:  mp(db.District, DTax, DNextOID),
		dNext:     mp(db.District, DNextOID),
		dYtd:      mp(db.District, DYtd),
		wYtd:      mp(db.Warehouse, WYtd),
		cDisc:     mp(db.Customer, CDiscount, CLast, CCredit),
		cPay:      mp(db.Customer, CBalance, CYtdPayment, CPaymentCnt, CData, CCredit),
		cBalDeliv: mp(db.Customer, CBalance, CDeliveryCnt),
		cRead:     mp(db.Customer, CID, CBalance, CFirst, CMiddle, CLast),
		iRead:     mp(db.Item, IPrice, IName, IData),
		sUpd:      mp(db.Stock, SQuantity, SYtd, SOrderCnt, SRemoteCnt),
		sRead:     mp(db.Stock, SQuantity, SDist01, SDist01+1, SDist01+2, SDist01+3, SDist01+4, SDist01+5, SDist01+6, SDist01+7, SDist01+8, SDist01+9, SData),
		oCarrier:  mp(db.Order, OCarrierID),
		oRead:     mp(db.Order, OID, OCarrierID, OEntryD, OCID, OOlCnt),
		olDeliv:   mp(db.OrderLine, OLAmount, OLDeliveryD),
		olRead:    mp(db.OrderLine, OLIID, OLSupplyWID, OLQuantity, OLAmount, OLDeliveryD),
		noRead:    mp(db.NewOrder, NOOID),
	}
	return p
}
