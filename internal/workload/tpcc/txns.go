package tpcc

import (
	"errors"
	"fmt"
	"time"

	"mainline/internal/storage"
	"mainline/internal/util"
)

// ErrUserAbort marks the spec-mandated 1% of New-Order transactions that
// roll back on an unused item number.
var ErrUserAbort = errors.New("tpcc: simulated user abort")

// Worker executes TPC-C transactions against one home warehouse (the
// paper's setup: one warehouse per client).
type Worker struct {
	DB  *Database
	W   int32
	Rng *util.Rand
	P   *projections
	Now func() int64
	// Aborts counts conflict-driven retries abandoned.
	Aborts int
}

// NewWorker builds a worker bound to warehouse w.
func NewWorker(db *Database, p *projections, w int32, seed uint64) *Worker {
	return &Worker{DB: db, W: w, Rng: util.NewRand(seed), P: p, Now: func() int64 { return time.Now().UnixNano() }}
}

// pick runs the standard transaction mix: 45% New-Order, 43% Payment,
// 4% Order-Status, 4% Delivery, 4% Stock-Level.
func (wk *Worker) pick() int {
	r := wk.Rng.Intn(100)
	switch {
	case r < 45:
		return 0
	case r < 88:
		return 1
	case r < 92:
		return 2
	case r < 96:
		return 3
	default:
		return 4
	}
}

// RunOne executes one transaction from the mix; reports its profile index
// and whether it committed.
func (wk *Worker) RunOne() (profile int, committed bool) {
	profile = wk.pick()
	var err error
	switch profile {
	case 0:
		err = wk.NewOrder()
	case 1:
		err = wk.Payment()
	case 2:
		err = wk.OrderStatus()
	case 3:
		err = wk.Delivery()
	case 4:
		err = wk.StockLevel()
	}
	if err != nil && !errors.Is(err, ErrUserAbort) {
		wk.Aborts++
		return profile, false
	}
	return profile, true
}

func (wk *Worker) randomDistrict() int32 {
	return int32(wk.Rng.IntRange(1, wk.DB.Cfg.DistrictsPerWarehouse))
}

func (wk *Worker) nuCustomer() int32 {
	max := wk.DB.Cfg.CustomersPerDistrict
	if max > 1023 {
		return int32(wk.Rng.NURand(1023, 1, max, cIDC))
	}
	return int32(wk.Rng.IntRange(1, max))
}

func (wk *Worker) nuItem() int32 {
	max := wk.DB.Cfg.Items
	if max > 8191 {
		return int32(wk.Rng.NURand(8191, 1, max, iIDC))
	}
	return int32(wk.Rng.IntRange(1, max))
}

// NewOrder implements the New-Order profile (spec §2.4).
func (wk *Worker) NewOrder() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	c := wk.nuCustomer()
	olCnt := wk.Rng.IntRange(5, 15)
	rollback := wk.Rng.Intn(100) == 0 // 1% simulated user aborts

	tx := db.Mgr.Begin()
	abort := func(err error) error {
		db.Mgr.Abort(tx)
		return err
	}

	// Warehouse tax (read-only) — indexed point read: the engine verifies
	// the slot's visibility through the version chain and materializes the
	// visible version in one call.
	wRow := p.wTaxYtd.NewRow()
	if _, ok := db.WarehousePK.GetVisible(tx, wKey(w), wRow); !ok {
		return abort(fmt.Errorf("tpcc: warehouse %d missing", w))
	}

	// District: read tax + next order id, increment next order id.
	dRow := p.dTaxNext.NewRow()
	dSlot, ok := db.DistrictPK.GetVisible(tx, dKey(w, d), dRow)
	if !ok {
		return abort(fmt.Errorf("tpcc: district missing"))
	}
	oID := dRow.Int32(1)
	upd := p.dNext.NewRow()
	upd.SetInt32(0, oID+1)
	if err := db.District.Update(tx, dSlot, upd); err != nil {
		return abort(err)
	}

	// Customer discount/credit (read-only).
	cRow := p.cDisc.NewRow()
	if _, ok := db.CustomerPK.GetVisible(tx, cKey(w, d, c), cRow); !ok {
		return abort(fmt.Errorf("tpcc: customer missing"))
	}

	// Insert ORDER and NEW_ORDER; their index entries ride the write set
	// and publish at commit. (o_all_local is recorded optimistically;
	// remote stock picks below do not retro-update it — acceptable at our
	// reproduction scale where runs are single-warehouse-per-worker.)
	oRow := p.oAll.NewRow()
	oRow.SetInt32(OID, oID)
	oRow.SetInt32(ODID, d)
	oRow.SetInt32(OWID, w)
	oRow.SetInt32(OCID, c)
	oRow.SetInt64(OEntryD, wk.Now())
	oRow.SetNull(OCarrierID)
	oRow.SetInt32(OOlCnt, int32(olCnt))
	oRow.SetInt32(OAllLocal, 1)
	if _, err := db.Order.Insert(tx, oRow); err != nil {
		return abort(err)
	}
	noRow := p.noAll.NewRow()
	noRow.SetInt32(NOOID, oID)
	noRow.SetInt32(NODID, d)
	noRow.SetInt32(NOWID, w)
	if _, err := db.NewOrder.Insert(tx, noRow); err != nil {
		return abort(err)
	}

	// Order lines.
	olRow := p.olAll.NewRow()
	iRow := p.iRead.NewRow()
	sRow := p.sRead.NewRow()
	sUpd := p.sUpd.NewRow()
	sCur := p.sUpd.NewRow()
	for n := 1; n <= olCnt; n++ {
		item := wk.nuItem()
		if rollback && n == olCnt {
			// Unused item number: the spec's deliberate rollback.
			db.Mgr.Abort(tx)
			return ErrUserAbort
		}
		if _, ok := db.ItemPK.GetVisible(tx, iKey(item), iRow); !ok {
			return abort(fmt.Errorf("tpcc: item %d missing", item))
		}
		price := iRow.Int64(0)

		// Stock read + update (1% remote warehouse when multi-warehouse).
		supplyW := w
		if db.Cfg.Warehouses > 1 && wk.Rng.Intn(100) == 0 {
			for {
				supplyW = int32(wk.Rng.IntRange(1, db.Cfg.Warehouses))
				if supplyW != w {
					break
				}
			}
		}
		sSlot, ok := db.StockPK.GetVisible(tx, sKey(supplyW, item), sCur)
		if !ok {
			return abort(fmt.Errorf("tpcc: stock missing"))
		}
		if found, err := db.Stock.Select(tx, sSlot, sRow); err != nil || !found {
			return abort(fmt.Errorf("tpcc: stock dist read: %v", err))
		}
		qty := sCur.Int32(0)
		quantity := int32(wk.Rng.IntRange(1, 10))
		if qty >= quantity+10 {
			qty -= quantity
		} else {
			qty = qty - quantity + 91
		}
		remote := sCur.Int32(3)
		if supplyW != w {
			remote++
		}
		sUpd.SetInt32(0, qty)
		sUpd.SetInt64(1, sCur.Int64(1)+int64(quantity))
		sUpd.SetInt32(2, sCur.Int32(2)+1)
		sUpd.SetInt32(3, remote)
		if err := db.Stock.Update(tx, sSlot, sUpd); err != nil {
			return abort(err)
		}

		amount := int64(quantity) * price
		olRow.Reset()
		olRow.SetInt32(OLOID, oID)
		olRow.SetInt32(OLDID, d)
		olRow.SetInt32(OLWID, w)
		olRow.SetInt32(OLNumber, int32(n))
		olRow.SetInt32(OLIID, item)
		olRow.SetInt32(OLSupplyWID, supplyW)
		olRow.SetNull(OLDeliveryD)
		olRow.SetInt32(OLQuantity, quantity)
		olRow.SetInt64(OLAmount, amount)
		// sRead projection: index 0 = s_quantity, 1..10 = s_dist_01..10.
		olRow.SetVarlen(OLDistInfo, sRow.Varlen(int(d)))
		if _, err := db.OrderLine.Insert(tx, olRow); err != nil {
			return abort(err)
		}
	}

	db.commit(tx)
	return nil
}

// Payment implements the Payment profile (spec §2.5).
func (wk *Worker) Payment() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	amount := int64(wk.Rng.IntRange(100, 500000))

	// 85% home-district customer; 15% remote district (single warehouse in
	// our runs keeps the warehouse local, matching the paper's setup).
	cw, cd := w, d
	if db.Cfg.Warehouses > 1 && wk.Rng.Intn(100) < 15 {
		for {
			cw = int32(wk.Rng.IntRange(1, db.Cfg.Warehouses))
			if cw != w {
				break
			}
		}
		cd = int32(wk.Rng.IntRange(1, db.Cfg.DistrictsPerWarehouse))
	}

	tx := db.Mgr.Begin()
	abort := func(err error) error {
		db.Mgr.Abort(tx)
		return err
	}

	// Warehouse YTD update.
	wRow := p.wYtd.NewRow()
	wSlot, ok := db.WarehousePK.GetVisible(tx, wKey(w), wRow)
	if !ok {
		return abort(fmt.Errorf("tpcc: warehouse read failed"))
	}
	wUpd := p.wYtd.NewRow()
	wUpd.SetInt64(0, wRow.Int64(0)+amount)
	if err := db.Warehouse.Update(tx, wSlot, wUpd); err != nil {
		return abort(err)
	}

	// District YTD update.
	dRow := p.dYtd.NewRow()
	dSlot, ok := db.DistrictPK.GetVisible(tx, dKey(w, d), dRow)
	if !ok {
		return abort(fmt.Errorf("tpcc: district read failed"))
	}
	dUpd := p.dYtd.NewRow()
	dUpd.SetInt64(0, dRow.Int64(0)+amount)
	if err := db.District.Update(tx, dSlot, dUpd); err != nil {
		return abort(err)
	}

	// Customer: 60% by last name (ordered secondary-index prefix scan,
	// midpoint per spec), 40% by id.
	var cSlot storage.TupleSlot
	var cid int32
	if wk.Rng.Intn(100) < 60 {
		last := LastName(wk.Rng.NURand(255, 0, 999, cLastC))
		var slots []storage.TupleSlot
		db.CustomerND.AscendPrefix(tx, cNamePrefix(cw, cd, last), nil, func(s storage.TupleSlot, _ *storage.ProjectedRow) bool {
			slots = append(slots, s)
			return true
		})
		if len(slots) == 0 {
			// Name space is sparse at reduced scale: fall back to id.
			cid = wk.nuCustomer()
			cSlot, _ = db.CustomerPK.GetVisible(tx, cKey(cw, cd, cid), nil)
		} else {
			cSlot = slots[(len(slots)+1)/2-1] // midpoint per spec
		}
	} else {
		cid = wk.nuCustomer()
		cSlot, _ = db.CustomerPK.GetVisible(tx, cKey(cw, cd, cid), nil)
	}
	if !cSlot.Valid() {
		return abort(fmt.Errorf("tpcc: customer not found"))
	}
	cRow := p.cPay.NewRow()
	if found, err := db.Customer.Select(tx, cSlot, cRow); err != nil || !found {
		return abort(fmt.Errorf("tpcc: customer read: %v", err))
	}
	cUpd := p.cPay.NewRow()
	cUpd.SetInt64(0, cRow.Int64(0)-amount)
	cUpd.SetInt64(1, cRow.Int64(1)+amount)
	cUpd.SetInt32(2, cRow.Int32(2)+1)
	if string(cRow.Varlen(4)) == "BC" {
		// Bad-credit customers accrete payment history into c_data.
		data := fmt.Sprintf("%d %d %d %d %d|%s", cid, cd, cw, d, amount, cRow.Varlen(3))
		if len(data) > 500 {
			data = data[:500]
		}
		cUpd.SetVarlen(3, []byte(data))
	} else {
		cUpd.SetVarlen(3, cRow.Varlen(3))
	}
	cUpd.SetVarlen(4, cRow.Varlen(4))
	if err := db.Customer.Update(tx, cSlot, cUpd); err != nil {
		return abort(err)
	}

	// History insert.
	hRow := p.hAll.NewRow()
	hRow.SetInt32(HCID, cid)
	hRow.SetInt32(HCDID, cd)
	hRow.SetInt32(HCWID, cw)
	hRow.SetInt32(HDID, d)
	hRow.SetInt32(HWID, w)
	hRow.SetInt64(HDate, wk.Now())
	hRow.SetInt64(HAmount, amount)
	hRow.SetVarlen(HData, []byte("payment-history-entry"))
	if _, err := db.History.Insert(tx, hRow); err != nil {
		return abort(err)
	}
	db.commit(tx)
	return nil
}

// OrderStatus implements the read-only Order-Status profile (spec §2.6).
func (wk *Worker) OrderStatus() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	c := wk.nuCustomer()

	tx := db.Mgr.Begin()
	defer db.commit(tx)

	cRow := p.cRead.NewRow()
	if _, ok := db.CustomerPK.GetVisible(tx, cKey(w, d, c), cRow); !ok {
		return fmt.Errorf("tpcc: customer missing")
	}

	// Most recent order for the customer: scanning the (w,d,c,o) index
	// backwards is unsupported; scan forward and keep the last visible
	// order (the engine filters entries this snapshot cannot see).
	var lastOrder storage.TupleSlot
	oRow := p.oRead.NewRow()
	db.OrderCust.AscendPrefix(tx, cKey(w, d, c), oRow, func(s storage.TupleSlot, _ *storage.ProjectedRow) bool {
		lastOrder = s
		return true
	})
	if !lastOrder.Valid() {
		return nil // customer has no orders yet
	}
	lastOID := oRow.Int32(0) // oRow holds the last materialized order

	// Its order lines.
	olRow := p.olRead.NewRow()
	count := 0
	db.OrderLinePK.AscendPrefix(tx, oKey(w, d, lastOID), olRow, func(storage.TupleSlot, *storage.ProjectedRow) bool {
		count++
		return true
	})
	if count == 0 {
		return fmt.Errorf("tpcc: order %d has no lines", lastOID)
	}
	return nil
}

// Delivery implements the Delivery profile (spec §2.7), processing each
// district's oldest undelivered order.
func (wk *Worker) Delivery() error {
	db, p := wk.DB, wk.P
	w := wk.W
	carrier := int32(wk.Rng.IntRange(1, 10))
	now := wk.Now()

	for d := int32(1); d <= int32(db.Cfg.DistrictsPerWarehouse); d++ {
		tx := db.Mgr.Begin()
		// Oldest NEW_ORDER for the district: the first VERIFIED entry in
		// key order (stale entries of already-delivered orders whose
		// deferred removal has not run yet are skipped by the engine).
		var noSlot storage.TupleSlot
		noRow := p.noRead.NewRow()
		db.NewOrderPK.AscendPrefix(tx, dKey(w, d), noRow, func(s storage.TupleSlot, _ *storage.ProjectedRow) bool {
			noSlot = s
			return false // first = oldest (o_id ascending)
		})
		if !noSlot.Valid() {
			db.commit(tx)
			continue
		}
		oID := noRow.Int32(0)
		// Deleting buffers the index-entry removal; it publishes at commit
		// and leaves the tree once no snapshot can still see the order.
		if err := db.NewOrder.Delete(tx, noSlot); err != nil {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}

		// Stamp the order's carrier.
		oRead := p.oRead.NewRow()
		oSlot, ok := db.OrderPK.GetVisible(tx, oKey(w, d, oID), oRead)
		if !ok {
			db.Mgr.Abort(tx)
			continue
		}
		cid := oRead.Int32(3)
		oUpd := p.oCarrier.NewRow()
		oUpd.SetInt32(0, carrier)
		if err := db.Order.Update(tx, oSlot, oUpd); err != nil {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}

		// Deliver every line; sum amounts.
		total := int64(0)
		lineErr := false
		olRow := p.olDeliv.NewRow()
		upd := p.olDeliv.NewRow()
		db.OrderLinePK.AscendPrefix(tx, oKey(w, d, oID), olRow, func(s storage.TupleSlot, _ *storage.ProjectedRow) bool {
			total += olRow.Int64(0)
			upd.Reset()
			upd.SetInt64(0, olRow.Int64(0))
			upd.SetInt64(1, now)
			if err := db.OrderLine.Update(tx, s, upd); err != nil {
				lineErr = true
				return false
			}
			return true
		})
		if lineErr {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}

		// Credit the customer.
		cRow := p.cBalDeliv.NewRow()
		cSlot, ok := db.CustomerPK.GetVisible(tx, cKey(w, d, cid), cRow)
		if !ok {
			db.Mgr.Abort(tx)
			continue
		}
		cUpd := p.cBalDeliv.NewRow()
		cUpd.SetInt32(1, cRow.Int32(1)+1)
		cUpd.SetInt64(0, cRow.Int64(0)+total)
		if err := db.Customer.Update(tx, cSlot, cUpd); err != nil {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}
		db.commit(tx)
	}
	return nil
}

// StockLevel implements the read-only Stock-Level profile (spec §2.8).
func (wk *Worker) StockLevel() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	threshold := int32(wk.Rng.IntRange(10, 20))

	tx := db.Mgr.Begin()
	defer db.commit(tx)

	dRow := p.dNext.NewRow()
	if _, ok := db.DistrictPK.GetVisible(tx, dKey(w, d), dRow); !ok {
		return fmt.Errorf("tpcc: district missing")
	}
	nextO := dRow.Int32(0)
	lowO := nextO - 20
	if lowO < 1 {
		lowO = 1
	}

	// Distinct items in the last 20 orders with stock below threshold —
	// an index range read over (w, d, [lowO, nextO)).
	items := make(map[int32]struct{})
	olRow := p.olRead.NewRow()
	db.OrderLinePK.Ascend(tx, oKey(w, d, lowO), oKey(w, d, nextO), olRow, func(storage.TupleSlot, *storage.ProjectedRow) bool {
		items[olRow.Int32(0)] = struct{}{}
		return true
	})
	low := 0
	sRow := p.sUpd.NewRow()
	for item := range items {
		if _, ok := db.StockPK.GetVisible(tx, sKey(w, item), sRow); ok && sRow.Int32(0) < threshold {
			low++
		}
	}
	_ = low
	return nil
}
