package tpcc

import (
	"errors"
	"fmt"
	"time"

	"mainline/internal/storage"
	"mainline/internal/util"
)

// ErrUserAbort marks the spec-mandated 1% of New-Order transactions that
// roll back on an unused item number.
var ErrUserAbort = errors.New("tpcc: simulated user abort")

// Worker executes TPC-C transactions against one home warehouse (the
// paper's setup: one warehouse per client).
type Worker struct {
	DB  *Database
	W   int32
	Rng *util.Rand
	P   *projections
	Now func() int64
	// Aborts counts conflict-driven retries abandoned.
	Aborts int
}

// NewWorker builds a worker bound to warehouse w.
func NewWorker(db *Database, p *projections, w int32, seed uint64) *Worker {
	return &Worker{DB: db, W: w, Rng: util.NewRand(seed), P: p, Now: func() int64 { return time.Now().UnixNano() }}
}

// pick runs the standard transaction mix: 45% New-Order, 43% Payment,
// 4% Order-Status, 4% Delivery, 4% Stock-Level.
func (wk *Worker) pick() int {
	r := wk.Rng.Intn(100)
	switch {
	case r < 45:
		return 0
	case r < 88:
		return 1
	case r < 92:
		return 2
	case r < 96:
		return 3
	default:
		return 4
	}
}

// RunOne executes one transaction from the mix; reports its profile index
// and whether it committed.
func (wk *Worker) RunOne() (profile int, committed bool) {
	profile = wk.pick()
	var err error
	switch profile {
	case 0:
		err = wk.NewOrder()
	case 1:
		err = wk.Payment()
	case 2:
		err = wk.OrderStatus()
	case 3:
		err = wk.Delivery()
	case 4:
		err = wk.StockLevel()
	}
	if err != nil && !errors.Is(err, ErrUserAbort) {
		wk.Aborts++
		return profile, false
	}
	return profile, true
}

func (wk *Worker) randomDistrict() int32 {
	return int32(wk.Rng.IntRange(1, wk.DB.Cfg.DistrictsPerWarehouse))
}

func (wk *Worker) nuCustomer() int32 {
	max := wk.DB.Cfg.CustomersPerDistrict
	if max > 1023 {
		return int32(wk.Rng.NURand(1023, 1, max, cIDC))
	}
	return int32(wk.Rng.IntRange(1, max))
}

func (wk *Worker) nuItem() int32 {
	max := wk.DB.Cfg.Items
	if max > 8191 {
		return int32(wk.Rng.NURand(8191, 1, max, iIDC))
	}
	return int32(wk.Rng.IntRange(1, max))
}

// NewOrder implements the New-Order profile (spec §2.4).
func (wk *Worker) NewOrder() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	c := wk.nuCustomer()
	olCnt := wk.Rng.IntRange(5, 15)
	rollback := wk.Rng.Intn(100) == 0 // 1% simulated user aborts

	tx := db.Mgr.Begin()
	abort := func(err error) error {
		db.Mgr.Abort(tx)
		return err
	}

	// Warehouse tax (read-only).
	wSlot, ok := db.WarehousePK.GetOne(wKey(w))
	if !ok {
		return abort(fmt.Errorf("tpcc: warehouse %d missing", w))
	}
	wRow := p.wTaxYtd.NewRow()
	if found, err := db.Warehouse.Select(tx, wSlot, wRow); err != nil || !found {
		return abort(fmt.Errorf("tpcc: warehouse read: %v", err))
	}

	// District: read tax + next order id, increment next order id.
	dSlot, ok := db.DistrictPK.GetOne(dKey(w, d))
	if !ok {
		return abort(fmt.Errorf("tpcc: district missing"))
	}
	dRow := p.dTaxNext.NewRow()
	if found, err := db.District.Select(tx, dSlot, dRow); err != nil || !found {
		return abort(fmt.Errorf("tpcc: district read: %v", err))
	}
	oID := dRow.Int32(1)
	upd := p.dNext.NewRow()
	upd.SetInt32(0, oID+1)
	if err := db.District.Update(tx, dSlot, upd); err != nil {
		return abort(err)
	}

	// Customer discount/credit (read-only).
	cSlot, ok := db.CustomerPK.GetOne(cKey(w, d, c))
	if !ok {
		return abort(fmt.Errorf("tpcc: customer missing"))
	}
	cRow := p.cDisc.NewRow()
	if found, err := db.Customer.Select(tx, cSlot, cRow); err != nil || !found {
		return abort(fmt.Errorf("tpcc: customer read: %v", err))
	}

	// Insert ORDER and NEW_ORDER. (o_all_local is recorded optimistically;
	// remote stock picks below do not retro-update it — acceptable at our
	// reproduction scale where runs are single-warehouse-per-worker.)
	oRow := p.oAll.NewRow()
	oRow.SetInt32(OID, oID)
	oRow.SetInt32(ODID, d)
	oRow.SetInt32(OWID, w)
	oRow.SetInt32(OCID, c)
	oRow.SetInt64(OEntryD, wk.Now())
	oRow.SetNull(OCarrierID)
	oRow.SetInt32(OOlCnt, int32(olCnt))
	oRow.SetInt32(OAllLocal, 1)
	oSlot, err := db.Order.Insert(tx, oRow)
	if err != nil {
		return abort(err)
	}
	noRow := p.noAll.NewRow()
	noRow.SetInt32(NOOID, oID)
	noRow.SetInt32(NODID, d)
	noRow.SetInt32(NOWID, w)
	noSlot, err := db.NewOrder.Insert(tx, noRow)
	if err != nil {
		return abort(err)
	}

	// Order lines.
	type olInsert struct {
		slot storage.TupleSlot
		n    int32
	}
	olSlots := make([]olInsert, 0, olCnt)
	olRow := p.olAll.NewRow()
	iRow := p.iRead.NewRow()
	sRow := p.sRead.NewRow()
	sUpd := p.sUpd.NewRow()
	sCur := p.sUpd.NewRow()
	for n := 1; n <= olCnt; n++ {
		item := wk.nuItem()
		if rollback && n == olCnt {
			// Unused item number: the spec's deliberate rollback.
			db.Mgr.Abort(tx)
			return ErrUserAbort
		}
		iSlot, ok := db.ItemPK.GetOne(iKey(item))
		if !ok {
			return abort(fmt.Errorf("tpcc: item %d missing", item))
		}
		if found, err := db.Item.Select(tx, iSlot, iRow); err != nil || !found {
			return abort(fmt.Errorf("tpcc: item read: %v", err))
		}
		price := iRow.Int64(0)

		// Stock read + update (1% remote warehouse when multi-warehouse).
		supplyW := w
		if db.Cfg.Warehouses > 1 && wk.Rng.Intn(100) == 0 {
			for {
				supplyW = int32(wk.Rng.IntRange(1, db.Cfg.Warehouses))
				if supplyW != w {
					break
				}
			}
		}
		sSlot, ok := db.StockPK.GetOne(sKey(supplyW, item))
		if !ok {
			return abort(fmt.Errorf("tpcc: stock missing"))
		}
		if found, err := db.Stock.Select(tx, sSlot, sCur); err != nil || !found {
			return abort(fmt.Errorf("tpcc: stock read: %v", err))
		}
		if found, err := db.Stock.Select(tx, sSlot, sRow); err != nil || !found {
			return abort(fmt.Errorf("tpcc: stock dist read: %v", err))
		}
		qty := sCur.Int32(0)
		quantity := int32(wk.Rng.IntRange(1, 10))
		if qty >= quantity+10 {
			qty -= quantity
		} else {
			qty = qty - quantity + 91
		}
		remote := sCur.Int32(3)
		if supplyW != w {
			remote++
		}
		sUpd.SetInt32(0, qty)
		sUpd.SetInt64(1, sCur.Int64(1)+int64(quantity))
		sUpd.SetInt32(2, sCur.Int32(2)+1)
		sUpd.SetInt32(3, remote)
		if err := db.Stock.Update(tx, sSlot, sUpd); err != nil {
			return abort(err)
		}

		amount := int64(quantity) * price
		olRow.Reset()
		olRow.SetInt32(OLOID, oID)
		olRow.SetInt32(OLDID, d)
		olRow.SetInt32(OLWID, w)
		olRow.SetInt32(OLNumber, int32(n))
		olRow.SetInt32(OLIID, item)
		olRow.SetInt32(OLSupplyWID, supplyW)
		olRow.SetNull(OLDeliveryD)
		olRow.SetInt32(OLQuantity, quantity)
		olRow.SetInt64(OLAmount, amount)
		// sRead projection: index 0 = s_quantity, 1..10 = s_dist_01..10.
		olRow.SetVarlen(OLDistInfo, sRow.Varlen(int(d)))
		olSlot, err := db.OrderLine.Insert(tx, olRow)
		if err != nil {
			return abort(err)
		}
		olSlots = append(olSlots, olInsert{olSlot, int32(n)})
	}

	db.commit(tx)
	// Index maintenance after commit (single-writer per warehouse makes
	// this safe; a production engine would use deferred index actions).
	db.OrderPK.Insert(oKey(w, d, oID), oSlot)
	db.OrderCust.Insert(oCustKey(w, d, c, oID), oSlot)
	db.NewOrderPK.Insert(oKey(w, d, oID), noSlot)
	for _, ol := range olSlots {
		db.OrderLinePK.Insert(olKey(w, d, oID, ol.n), ol.slot)
	}
	return nil
}

// Payment implements the Payment profile (spec §2.5).
func (wk *Worker) Payment() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	amount := int64(wk.Rng.IntRange(100, 500000))

	// 85% home-district customer; 15% remote district (single warehouse in
	// our runs keeps the warehouse local, matching the paper's setup).
	cw, cd := w, d
	if db.Cfg.Warehouses > 1 && wk.Rng.Intn(100) < 15 {
		for {
			cw = int32(wk.Rng.IntRange(1, db.Cfg.Warehouses))
			if cw != w {
				break
			}
		}
		cd = int32(wk.Rng.IntRange(1, db.Cfg.DistrictsPerWarehouse))
	}

	tx := db.Mgr.Begin()
	abort := func(err error) error {
		db.Mgr.Abort(tx)
		return err
	}

	// Warehouse YTD update.
	wSlot, _ := db.WarehousePK.GetOne(wKey(w))
	wRow := p.wYtd.NewRow()
	if found, err := db.Warehouse.Select(tx, wSlot, wRow); err != nil || !found {
		return abort(fmt.Errorf("tpcc: warehouse read: %v", err))
	}
	wUpd := p.wYtd.NewRow()
	wUpd.SetInt64(0, wRow.Int64(0)+amount)
	if err := db.Warehouse.Update(tx, wSlot, wUpd); err != nil {
		return abort(err)
	}

	// District YTD update.
	dSlot, _ := db.DistrictPK.GetOne(dKey(w, d))
	dRow := p.dYtd.NewRow()
	if found, err := db.District.Select(tx, dSlot, dRow); err != nil || !found {
		return abort(fmt.Errorf("tpcc: district read: %v", err))
	}
	dUpd := p.dYtd.NewRow()
	dUpd.SetInt64(0, dRow.Int64(0)+amount)
	if err := db.District.Update(tx, dSlot, dUpd); err != nil {
		return abort(err)
	}

	// Customer: 60% by last name, 40% by id.
	var cSlot storage.TupleSlot
	var cid int32
	if wk.Rng.Intn(100) < 60 {
		last := LastName(wk.Rng.NURand(255, 0, 999, cLastC))
		var slots []storage.TupleSlot
		db.CustomerND.ScanPrefix(cNamePrefix(cw, cd, last), func(_ []byte, s storage.TupleSlot) bool {
			slots = append(slots, s)
			return true
		})
		if len(slots) == 0 {
			// Name space is sparse at reduced scale: fall back to id.
			cid = wk.nuCustomer()
			cSlot, _ = db.CustomerPK.GetOne(cKey(cw, cd, cid))
		} else {
			cSlot = slots[(len(slots)+1)/2-1] // midpoint per spec
		}
	} else {
		cid = wk.nuCustomer()
		cSlot, _ = db.CustomerPK.GetOne(cKey(cw, cd, cid))
	}
	if !cSlot.Valid() {
		return abort(fmt.Errorf("tpcc: customer not found"))
	}
	cRow := p.cPay.NewRow()
	if found, err := db.Customer.Select(tx, cSlot, cRow); err != nil || !found {
		return abort(fmt.Errorf("tpcc: customer read: %v", err))
	}
	cUpd := p.cPay.NewRow()
	cUpd.SetInt64(0, cRow.Int64(0)-amount)
	cUpd.SetInt64(1, cRow.Int64(1)+amount)
	cUpd.SetInt32(2, cRow.Int32(2)+1)
	if string(cRow.Varlen(4)) == "BC" {
		// Bad-credit customers accrete payment history into c_data.
		data := fmt.Sprintf("%d %d %d %d %d|%s", cid, cd, cw, d, amount, cRow.Varlen(3))
		if len(data) > 500 {
			data = data[:500]
		}
		cUpd.SetVarlen(3, []byte(data))
	} else {
		cUpd.SetVarlen(3, cRow.Varlen(3))
	}
	cUpd.SetVarlen(4, cRow.Varlen(4))
	if err := db.Customer.Update(tx, cSlot, cUpd); err != nil {
		return abort(err)
	}

	// History insert.
	hRow := p.hAll.NewRow()
	hRow.SetInt32(HCID, cid)
	hRow.SetInt32(HCDID, cd)
	hRow.SetInt32(HCWID, cw)
	hRow.SetInt32(HDID, d)
	hRow.SetInt32(HWID, w)
	hRow.SetInt64(HDate, wk.Now())
	hRow.SetInt64(HAmount, amount)
	hRow.SetVarlen(HData, []byte("payment-history-entry"))
	if _, err := db.History.Insert(tx, hRow); err != nil {
		return abort(err)
	}
	db.commit(tx)
	return nil
}

// OrderStatus implements the read-only Order-Status profile (spec §2.6).
func (wk *Worker) OrderStatus() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	c := wk.nuCustomer()

	tx := db.Mgr.Begin()
	defer db.commit(tx)

	cSlot, ok := db.CustomerPK.GetOne(cKey(w, d, c))
	if !ok {
		return fmt.Errorf("tpcc: customer missing")
	}
	cRow := p.cRead.NewRow()
	if found, err := db.Customer.Select(tx, cSlot, cRow); err != nil || !found {
		return fmt.Errorf("tpcc: customer read: %v", err)
	}

	// Most recent order for the customer: scan the (w,d,c,o) index
	// backwards is unsupported; scan forward and keep the last.
	var lastOrder storage.TupleSlot
	var lastOID int32 = -1
	db.OrderCust.ScanPrefix(cKey(w, d, c), func(k []byte, s storage.TupleSlot) bool {
		lastOrder = s
		return true
	})
	if !lastOrder.Valid() {
		return nil // customer has no orders yet
	}
	oRow := p.oRead.NewRow()
	if found, err := db.Order.Select(tx, lastOrder, oRow); err != nil || !found {
		return fmt.Errorf("tpcc: order read: %v", err)
	}
	lastOID = oRow.Int32(0)

	// Its order lines.
	olRow := p.olRead.NewRow()
	count := 0
	db.OrderLinePK.ScanPrefix(oKey(w, d, lastOID), func(_ []byte, s storage.TupleSlot) bool {
		if found, _ := db.OrderLine.Select(tx, s, olRow); found {
			count++
		}
		return true
	})
	if count == 0 {
		return fmt.Errorf("tpcc: order %d has no lines", lastOID)
	}
	return nil
}

// Delivery implements the Delivery profile (spec §2.7), processing each
// district's oldest undelivered order.
func (wk *Worker) Delivery() error {
	db, p := wk.DB, wk.P
	w := wk.W
	carrier := int32(wk.Rng.IntRange(1, 10))
	now := wk.Now()

	for d := int32(1); d <= int32(db.Cfg.DistrictsPerWarehouse); d++ {
		tx := db.Mgr.Begin()
		// Oldest NEW_ORDER for the district.
		var noSlot storage.TupleSlot
		var noKeyBytes []byte
		db.NewOrderPK.ScanPrefix(dKey(w, d), func(k []byte, s storage.TupleSlot) bool {
			noSlot = s
			noKeyBytes = append([]byte(nil), k...)
			return false // first = oldest (o_id ascending)
		})
		if !noSlot.Valid() {
			db.commit(tx)
			continue
		}
		noRow := p.noRead.NewRow()
		found, err := db.NewOrder.Select(tx, noSlot, noRow)
		if err != nil || !found {
			db.Mgr.Abort(tx)
			continue
		}
		oID := noRow.Int32(0)
		if err := db.NewOrder.Delete(tx, noSlot); err != nil {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}

		// Stamp the order's carrier.
		oSlot, ok := db.OrderPK.GetOne(oKey(w, d, oID))
		if !ok {
			db.Mgr.Abort(tx)
			continue
		}
		oRead := p.oRead.NewRow()
		if found, err := db.Order.Select(tx, oSlot, oRead); err != nil || !found {
			db.Mgr.Abort(tx)
			continue
		}
		cid := oRead.Int32(3)
		oUpd := p.oCarrier.NewRow()
		oUpd.SetInt32(0, carrier)
		if err := db.Order.Update(tx, oSlot, oUpd); err != nil {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}

		// Deliver every line; sum amounts.
		total := int64(0)
		lineErr := false
		olRow := p.olDeliv.NewRow()
		db.OrderLinePK.ScanPrefix(oKey(w, d, oID), func(_ []byte, s storage.TupleSlot) bool {
			if found, err := db.OrderLine.Select(tx, s, olRow); err != nil || !found {
				lineErr = true
				return false
			}
			total += olRow.Int64(0)
			upd := p.olDeliv.NewRow()
			upd.SetInt64(0, olRow.Int64(0))
			upd.SetInt64(1, now)
			if err := db.OrderLine.Update(tx, s, upd); err != nil {
				lineErr = true
				return false
			}
			return true
		})
		if lineErr {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}

		// Credit the customer.
		cSlot, ok := db.CustomerPK.GetOne(cKey(w, d, cid))
		if !ok {
			db.Mgr.Abort(tx)
			continue
		}
		cRow := p.cBalDeliv.NewRow()
		if found, err := db.Customer.Select(tx, cSlot, cRow); err != nil || !found {
			db.Mgr.Abort(tx)
			continue
		}
		cUpd := p.cBalDeliv.NewRow()
		cUpd.SetInt32(1, cRow.Int32(1)+1)
		cUpd.SetInt64(0, cRow.Int64(0)+total)
		if err := db.Customer.Update(tx, cSlot, cUpd); err != nil {
			db.Mgr.Abort(tx)
			wk.Aborts++
			continue
		}
		db.commit(tx)
		db.NewOrderPK.Delete(noKeyBytes, noSlot)
	}
	return nil
}

// StockLevel implements the read-only Stock-Level profile (spec §2.8).
func (wk *Worker) StockLevel() error {
	db, p := wk.DB, wk.P
	w := wk.W
	d := wk.randomDistrict()
	threshold := int32(wk.Rng.IntRange(10, 20))

	tx := db.Mgr.Begin()
	defer db.commit(tx)

	dSlot, ok := db.DistrictPK.GetOne(dKey(w, d))
	if !ok {
		return fmt.Errorf("tpcc: district missing")
	}
	dRow := p.dNext.NewRow()
	if found, err := db.District.Select(tx, dSlot, dRow); err != nil || !found {
		return fmt.Errorf("tpcc: district read: %v", err)
	}
	nextO := dRow.Int32(0)
	lowO := nextO - 20
	if lowO < 1 {
		lowO = 1
	}

	// Distinct items in the last 20 orders with stock below threshold.
	items := make(map[int32]struct{})
	olRow := p.olRead.NewRow()
	db.OrderLinePK.Scan(oKey(w, d, lowO), oKey(w, d, nextO), func(_ []byte, s storage.TupleSlot) bool {
		if found, _ := db.OrderLine.Select(tx, s, olRow); found {
			items[olRow.Int32(0)] = struct{}{}
		}
		return true
	})
	low := 0
	sRow := p.sUpd.NewRow()
	for item := range items {
		sSlot, ok := db.StockPK.GetOne(sKey(w, item))
		if !ok {
			continue
		}
		if found, _ := db.Stock.Select(tx, sSlot, sRow); found && sRow.Int32(0) < threshold {
			low++
		}
	}
	_ = low
	return nil
}
