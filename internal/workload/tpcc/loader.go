package tpcc

import (
	"fmt"
	"time"

	"mainline/internal/storage"
	"mainline/internal/txn"
	"mainline/internal/util"
)

// Last-name syllables per the TPC-C specification (§4.3.2.3).
var lastNameParts = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName renders spec last name number n (0-999).
func LastName(n int) string {
	return lastNameParts[n/100] + lastNameParts[(n/10)%10] + lastNameParts[n%10]
}

// NURand constants fixed at load time (the spec randomizes C; one value is
// fine for reproduction).
const (
	cLastC = 123
	cIDC   = 259
	iIDC   = 7911
)

// Loader populates the database.
type Loader struct {
	db  *Database
	rng *util.Rand
	p   *projections
	now int64
}

// Load populates all nine tables, returning the cached projections used by
// the transaction profiles. Indexes are engine-managed: each batch's
// commit publishes the entries for the rows it inserted.
func Load(db *Database, seed uint64) (*projections, error) {
	l := &Loader{db: db, rng: util.NewRand(seed), p: db.buildProjections(), now: time.Now().UnixNano()}
	if err := l.loadItems(); err != nil {
		return nil, err
	}
	for w := 1; w <= db.Cfg.Warehouses; w++ {
		if err := l.loadWarehouse(int32(w)); err != nil {
			return nil, err
		}
	}
	return l.p, nil
}

// insert wraps a single-row load transaction. Loading batches many rows
// per transaction for speed.
func (l *Loader) batch(fn func(tx *txnHandle) error) error {
	tx := l.db.Mgr.Begin()
	h := &txnHandle{db: l.db, tx: tx}
	if err := fn(h); err != nil {
		l.db.Mgr.Abort(tx)
		return err
	}
	l.db.Mgr.Commit(tx, nil)
	return nil
}

func (l *Loader) loadItems() error {
	return l.batch(func(h *txnHandle) error {
		row := l.p.iAll.NewRow()
		for i := 1; i <= l.db.Cfg.Items; i++ {
			row.Reset()
			row.SetInt32(IID, int32(i))
			row.SetInt32(IImID, int32(l.rng.IntRange(1, 10000)))
			row.SetVarlen(IName, []byte(l.rng.AlphaString(14, 24)))
			row.SetInt64(IPrice, int64(l.rng.IntRange(100, 10000)))
			data := l.rng.AlphaString(26, 50)
			if l.rng.Intn(10) == 0 {
				data = data[:8] + "ORIGINAL" + data[16:]
			}
			row.SetVarlen(IData, []byte(data))
			if _, err := l.db.Item.Insert(h.tx, row); err != nil {
				return err
			}
		}
		return nil
	})
}

func (l *Loader) loadWarehouse(w int32) error {
	err := l.batch(func(h *txnHandle) error {
		row := l.p.wAll.NewRow()
		row.SetInt32(WID, w)
		row.SetVarlen(WName, []byte(l.rng.AlphaString(6, 10)))
		l.address(row, WStreet1)
		row.SetInt64(WTax, int64(l.rng.IntRange(0, 2000)))
		row.SetInt64(WYtd, 30000000) // 300,000.00
		if _, err := l.db.Warehouse.Insert(h.tx, row); err != nil {
			return err
		}

		// Stock for every item.
		srow := l.p.sAll.NewRow()
		for i := 1; i <= l.db.Cfg.Items; i++ {
			srow.Reset()
			srow.SetInt32(SIID, int32(i))
			srow.SetInt32(SWID, w)
			srow.SetInt32(SQuantity, int32(l.rng.IntRange(10, 100)))
			for d := 0; d < 10; d++ {
				srow.SetVarlen(SDist01+d, []byte(l.rng.AlphaString(24, 24)))
			}
			srow.SetInt64(SYtd, 0)
			srow.SetInt32(SOrderCnt, 0)
			srow.SetInt32(SRemoteCnt, 0)
			data := l.rng.AlphaString(26, 50)
			if l.rng.Intn(10) == 0 {
				data = data[:8] + "ORIGINAL" + data[16:]
			}
			srow.SetVarlen(SData, []byte(data))
			if _, err := l.db.Stock.Insert(h.tx, srow); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for d := 1; d <= l.db.Cfg.DistrictsPerWarehouse; d++ {
		if err := l.loadDistrict(w, int32(d)); err != nil {
			return err
		}
	}
	return nil
}

func (l *Loader) address(row *storage.ProjectedRow, firstCol int) {
	row.SetVarlen(firstCol, []byte(l.rng.AlphaString(10, 20)))   // street_1
	row.SetVarlen(firstCol+1, []byte(l.rng.AlphaString(10, 20))) // street_2
	row.SetVarlen(firstCol+2, []byte(l.rng.AlphaString(10, 20))) // city
	row.SetVarlen(firstCol+3, []byte(l.rng.AlphaString(2, 2)))   // state
	row.SetVarlen(firstCol+4, []byte(l.rng.NumString(4, 4)+"11111"))
}

func (l *Loader) loadDistrict(w, d int32) error {
	cfg := l.db.Cfg
	err := l.batch(func(h *txnHandle) error {
		row := l.p.dAll.NewRow()
		row.SetInt32(DID, d)
		row.SetInt32(DWID, w)
		row.SetVarlen(DName, []byte(l.rng.AlphaString(6, 10)))
		l.address(row, DStreet1)
		row.SetInt64(DTax, int64(l.rng.IntRange(0, 2000)))
		row.SetInt64(DYtd, 3000000) // 30,000.00
		row.SetInt32(DNextOID, int32(cfg.InitialOrders+1))
		if _, err := l.db.District.Insert(h.tx, row); err != nil {
			return err
		}

		// Customers + one history row each.
		crow := l.p.cAll.NewRow()
		hrow := l.p.hAll.NewRow()
		for c := 1; c <= cfg.CustomersPerDistrict; c++ {
			crow.Reset()
			crow.SetInt32(CID, int32(c))
			crow.SetInt32(CDID, d)
			crow.SetInt32(CWID, w)
			crow.SetVarlen(CFirst, []byte(l.rng.AlphaString(8, 16)))
			crow.SetVarlen(CMiddle, []byte("OE"))
			var last string
			if c <= 1000 {
				last = LastName(c - 1)
			} else {
				last = LastName(l.rng.NURand(255, 0, 999, cLastC))
			}
			crow.SetVarlen(CLast, []byte(last))
			l.address(crow, CStreet1)
			crow.SetVarlen(CPhone, []byte(l.rng.NumString(16, 16)))
			crow.SetInt64(CSince, l.now)
			credit := "GC"
			if l.rng.Intn(10) == 0 {
				credit = "BC"
			}
			crow.SetVarlen(CCredit, []byte(credit))
			crow.SetInt64(CCreditLim, 5000000)
			crow.SetInt64(CDiscount, int64(l.rng.IntRange(0, 5000)))
			crow.SetInt64(CBalance, -1000)
			crow.SetInt64(CYtdPayment, 1000)
			crow.SetInt32(CPaymentCnt, 1)
			crow.SetInt32(CDeliveryCnt, 0)
			crow.SetVarlen(CData, []byte(l.rng.AlphaString(300, 500)))
			if _, err := l.db.Customer.Insert(h.tx, crow); err != nil {
				return err
			}

			hrow.Reset()
			hrow.SetInt32(HCID, int32(c))
			hrow.SetInt32(HCDID, d)
			hrow.SetInt32(HCWID, w)
			hrow.SetInt32(HDID, d)
			hrow.SetInt32(HWID, w)
			hrow.SetInt64(HDate, l.now)
			hrow.SetInt64(HAmount, 1000)
			hrow.SetVarlen(HData, []byte(l.rng.AlphaString(12, 24)))
			if _, err := l.db.History.Insert(h.tx, hrow); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return l.loadOrders(w, d)
}

func (l *Loader) loadOrders(w, d int32) error {
	cfg := l.db.Cfg
	return l.batch(func(h *txnHandle) error {
		// Orders reference customers in a random permutation (spec).
		perm := l.rng.Perm(cfg.CustomersPerDistrict)
		orow := l.p.oAll.NewRow()
		olrow := l.p.olAll.NewRow()
		norow := l.p.noAll.NewRow()
		for o := 1; o <= cfg.InitialOrders; o++ {
			cid := int32(perm[(o-1)%len(perm)] + 1)
			olCnt := l.rng.IntRange(5, 15)
			delivered := o <= cfg.InitialOrders*7/10 // last ~30% undelivered
			orow.Reset()
			orow.SetInt32(OID, int32(o))
			orow.SetInt32(ODID, d)
			orow.SetInt32(OWID, w)
			orow.SetInt32(OCID, cid)
			orow.SetInt64(OEntryD, l.now)
			if delivered {
				orow.SetInt32(OCarrierID, int32(l.rng.IntRange(1, 10)))
			} else {
				orow.SetNull(OCarrierID)
			}
			orow.SetInt32(OOlCnt, int32(olCnt))
			orow.SetInt32(OAllLocal, 1)
			if _, err := l.db.Order.Insert(h.tx, orow); err != nil {
				return err
			}

			for n := 1; n <= olCnt; n++ {
				olrow.Reset()
				olrow.SetInt32(OLOID, int32(o))
				olrow.SetInt32(OLDID, d)
				olrow.SetInt32(OLWID, w)
				olrow.SetInt32(OLNumber, int32(n))
				olrow.SetInt32(OLIID, int32(l.rng.IntRange(1, cfg.Items)))
				olrow.SetInt32(OLSupplyWID, w)
				if delivered {
					olrow.SetInt64(OLDeliveryD, l.now)
					olrow.SetInt64(OLAmount, 0)
				} else {
					olrow.SetNull(OLDeliveryD)
					olrow.SetInt64(OLAmount, int64(l.rng.IntRange(1, 999999)))
				}
				olrow.SetInt32(OLQuantity, 5)
				olrow.SetVarlen(OLDistInfo, []byte(l.rng.AlphaString(24, 24)))
				if _, err := l.db.OrderLine.Insert(h.tx, olrow); err != nil {
					return err
				}
			}
			if !delivered {
				norow.Reset()
				norow.SetInt32(NOOID, int32(o))
				norow.SetInt32(NODID, d)
				norow.SetInt32(NOWID, w)
				if _, err := l.db.NewOrder.Insert(h.tx, norow); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// txnHandle carries a transaction through loader helpers.
type txnHandle struct {
	db *Database
	tx *txn.Transaction
}

func init() {
	// Sanity: the stock schema positions must match the declared constants.
	s := stockSchema()
	if s.Fields[SYtd].Name != "s_ytd" || s.Fields[SData].Name != "s_data" {
		panic(fmt.Sprintf("tpcc: stock schema misaligned: %v", s.Fields))
	}
	c := customerSchema()
	if c.Fields[CData].Name != "c_data" {
		panic("tpcc: customer schema misaligned")
	}
}
