package tpcc

import (
	"fmt"

	"mainline/internal/storage"
)

// CheckConsistency runs the TPC-C consistency conditions the specification
// defines for auditing a database after a measurement interval (§3.3.2):
//
//	C1: W_YTD = sum(D_YTD) for every warehouse.
//	C2: D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID) per district (when
//	    undelivered orders remain).
//	C3: max(NO_O_ID) - min(NO_O_ID) + 1 = count(NEW_ORDER rows) per
//	    district.
//	C4: sum(O_OL_CNT) = count(ORDER_LINE rows) per district.
func CheckConsistency(db *Database) error {
	p := db.buildProjections()
	tx := db.Mgr.Begin()
	defer db.Mgr.Commit(tx, nil)

	// Gather district aggregates.
	type distAgg struct {
		ytd     int64
		nextOID int32
	}
	districts := map[[2]int32]*distAgg{}
	dRow := storage.MustProjection(db.District.Layout(), []storage.ColumnID{DID, DWID, DYtd, DNextOID}).NewRow()
	_ = db.District.Scan(tx, dRow.P, func(_ storage.TupleSlot, r *storage.ProjectedRow) bool {
		districts[[2]int32{r.Int32(1), r.Int32(0)}] = &distAgg{ytd: r.Int64(2), nextOID: r.Int32(3)}
		return true
	})

	// C1: warehouse YTD equals the sum of its districts'.
	wProj := storage.MustProjection(db.Warehouse.Layout(), []storage.ColumnID{WID, WYtd})
	var c1Err error
	_ = db.Warehouse.Scan(tx, wProj, func(_ storage.TupleSlot, r *storage.ProjectedRow) bool {
		w := r.Int32(0)
		sum := int64(0)
		for key, agg := range districts {
			if key[0] == w {
				sum += agg.ytd
			}
		}
		if r.Int64(1) != sum {
			c1Err = fmt.Errorf("tpcc C1: W%d ytd=%d, sum(D_YTD)=%d", w, r.Int64(1), sum)
			return false
		}
		return true
	})
	if c1Err != nil {
		return c1Err
	}

	// Aggregates over ORDER, NEW_ORDER, ORDER_LINE.
	type oAgg struct {
		maxOID   int32
		olCntSum int64
	}
	orders := map[[2]int32]*oAgg{}
	oProj := storage.MustProjection(db.Order.Layout(), []storage.ColumnID{OID, ODID, OWID, OOlCnt})
	_ = db.Order.Scan(tx, oProj, func(_ storage.TupleSlot, r *storage.ProjectedRow) bool {
		key := [2]int32{r.Int32(2), r.Int32(1)}
		agg := orders[key]
		if agg == nil {
			agg = &oAgg{}
			orders[key] = agg
		}
		if r.Int32(0) > agg.maxOID {
			agg.maxOID = r.Int32(0)
		}
		agg.olCntSum += int64(r.Int32(3))
		return true
	})
	type noAgg struct {
		minOID, maxOID int32
		count          int64
	}
	newOrders := map[[2]int32]*noAgg{}
	noProj := storage.MustProjection(db.NewOrder.Layout(), []storage.ColumnID{NOOID, NODID, NOWID})
	_ = db.NewOrder.Scan(tx, noProj, func(_ storage.TupleSlot, r *storage.ProjectedRow) bool {
		key := [2]int32{r.Int32(2), r.Int32(1)}
		agg := newOrders[key]
		if agg == nil {
			agg = &noAgg{minOID: 1 << 30}
			newOrders[key] = agg
		}
		o := r.Int32(0)
		if o < agg.minOID {
			agg.minOID = o
		}
		if o > agg.maxOID {
			agg.maxOID = o
		}
		agg.count++
		return true
	})
	olCounts := map[[2]int32]int64{}
	olProj := storage.MustProjection(db.OrderLine.Layout(), []storage.ColumnID{OLDID, OLWID})
	_ = db.OrderLine.Scan(tx, olProj, func(_ storage.TupleSlot, r *storage.ProjectedRow) bool {
		olCounts[[2]int32{r.Int32(1), r.Int32(0)}]++
		return true
	})

	for key, d := range districts {
		oa := orders[key]
		if oa == nil {
			continue
		}
		// C2: d_next_o_id - 1 == max(o_id); and == max(no_o_id) when
		// undelivered orders remain.
		if d.nextOID-1 != oa.maxOID {
			return fmt.Errorf("tpcc C2: W%dD%d next_o_id-1=%d max(O_ID)=%d", key[0], key[1], d.nextOID-1, oa.maxOID)
		}
		if na := newOrders[key]; na != nil && na.count > 0 {
			if d.nextOID-1 != na.maxOID {
				return fmt.Errorf("tpcc C2: W%dD%d next_o_id-1=%d max(NO_O_ID)=%d", key[0], key[1], d.nextOID-1, na.maxOID)
			}
			// C3: contiguous NEW_ORDER ids.
			if na.maxOID-na.minOID+1 != int32(na.count) {
				return fmt.Errorf("tpcc C3: W%dD%d new_order ids not contiguous: [%d,%d] count %d", key[0], key[1], na.minOID, na.maxOID, na.count)
			}
		}
		// C4: sum(o_ol_cnt) == count(order_line).
		if oa.olCntSum != olCounts[key] {
			return fmt.Errorf("tpcc C4: W%dD%d sum(ol_cnt)=%d order_lines=%d", key[0], key[1], oa.olCntSum, olCounts[key])
		}
	}
	_ = p
	return nil
}
