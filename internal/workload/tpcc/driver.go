package tpcc

import (
	"sync"
	"sync/atomic"
	"time"
)

// RunResult reports a driver run.
type RunResult struct {
	// Committed counts committed transactions per profile
	// [NewOrder, Payment, OrderStatus, Delivery, StockLevel].
	Committed [5]int64
	// Aborted counts conflict aborts (user aborts excluded).
	Aborted int64
	// Elapsed is wall-clock run time.
	Elapsed time.Duration
}

// Total sums committed transactions.
func (r *RunResult) Total() int64 {
	t := int64(0)
	for _, c := range r.Committed {
		t += c
	}
	return t
}

// Throughput returns committed transactions per second.
func (r *RunResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Total()) / r.Elapsed.Seconds()
}

// TpmC returns committed New-Order transactions per minute — the TPC-C
// headline metric.
func (r *RunResult) TpmC() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed[0]) / r.Elapsed.Minutes()
}

// Run drives `workers` goroutines — one home warehouse each (wrapping when
// workers exceed warehouses) — for the given duration.
func Run(db *Database, p *projections, workers int, duration time.Duration, seed uint64) *RunResult {
	var committed [5]atomic.Int64
	var aborted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := int32(i%db.Cfg.Warehouses) + 1
			wk := NewWorker(db, p, w, seed+uint64(i)*7919)
			for {
				select {
				case <-stop:
					aborted.Add(int64(wk.Aborts))
					return
				default:
				}
				profile, ok := wk.RunOne()
				if ok {
					committed[profile].Add(1)
				}
			}
		}(i)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	res := &RunResult{Elapsed: time.Since(start), Aborted: aborted.Load()}
	for i := range res.Committed {
		res.Committed[i] = committed[i].Load()
	}
	return res
}

// RunCount drives each worker for a fixed number of transactions (tests:
// deterministic work instead of wall-clock).
func RunCount(db *Database, p *projections, workers, txnsPerWorker int, seed uint64) *RunResult {
	var committed [5]atomic.Int64
	var aborted atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := int32(i%db.Cfg.Warehouses) + 1
			wk := NewWorker(db, p, w, seed+uint64(i)*7919)
			for n := 0; n < txnsPerWorker; n++ {
				profile, ok := wk.RunOne()
				if ok {
					committed[profile].Add(1)
				}
			}
			aborted.Add(int64(wk.Aborts))
		}(i)
	}
	wg.Wait()
	res := &RunResult{Elapsed: time.Since(start), Aborted: aborted.Load()}
	for i := range res.Committed {
		res.Committed[i] = committed[i].Load()
	}
	return res
}
