package tpcc

import (
	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/transform"
)

// OnTupleMove returns the compaction callback that keeps every index
// consistent when Phase 1 relocates tuples: each movement deletes the old
// (key, slot) pairs and inserts the new ones. This is precisely the index
// write amplification the paper charges against tuple movement (§6.2,
// Figure 13) — the per-movement cost is constant, so minimizing movements
// minimizes index churn.
func (db *Database) OnTupleMove() transform.OnMove {
	tables := map[*core.DataTable]func(row *storage.ProjectedRow, old, new storage.TupleSlot){
		db.Warehouse.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			k := wKey(row.Int32(WID))
			db.WarehousePK.Delete(k, old)
			db.WarehousePK.Insert(k, new)
		},
		db.District.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			k := dKey(row.Int32(DWID), row.Int32(DID))
			db.DistrictPK.Delete(k, old)
			db.DistrictPK.Insert(k, new)
		},
		db.Customer.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			pk := cKey(row.Int32(CWID), row.Int32(CDID), row.Int32(CID))
			db.CustomerPK.Delete(pk, old)
			db.CustomerPK.Insert(pk, new)
			nd := cNameKey(row.Int32(CWID), row.Int32(CDID), string(row.Varlen(CLast)), string(row.Varlen(CFirst)))
			db.CustomerND.Delete(nd, old)
			db.CustomerND.Insert(nd, new)
		},
		db.Item.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			k := iKey(row.Int32(IID))
			db.ItemPK.Delete(k, old)
			db.ItemPK.Insert(k, new)
		},
		db.Stock.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			k := sKey(row.Int32(SWID), row.Int32(SIID))
			db.StockPK.Delete(k, old)
			db.StockPK.Insert(k, new)
		},
		db.Order.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			pk := oKey(row.Int32(OWID), row.Int32(ODID), row.Int32(OID))
			db.OrderPK.Delete(pk, old)
			db.OrderPK.Insert(pk, new)
			ck := oCustKey(row.Int32(OWID), row.Int32(ODID), row.Int32(OCID), row.Int32(OID))
			db.OrderCust.Delete(ck, old)
			db.OrderCust.Insert(ck, new)
		},
		db.NewOrder.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			k := oKey(row.Int32(NOWID), row.Int32(NODID), row.Int32(NOOID))
			db.NewOrderPK.Delete(k, old)
			db.NewOrderPK.Insert(k, new)
		},
		db.OrderLine.DataTable: func(row *storage.ProjectedRow, old, new storage.TupleSlot) {
			k := olKey(row.Int32(OLWID), row.Int32(OLDID), row.Int32(OLOID), row.Int32(OLNumber))
			db.OrderLinePK.Delete(k, old)
			db.OrderLinePK.Insert(k, new)
		},
		// HISTORY has no indexes.
	}
	return func(table *core.DataTable, old, new storage.TupleSlot, row *storage.ProjectedRow) error {
		if fn, ok := tables[table]; ok {
			fn(row, old, new)
		}
		return nil
	}
}
