package tpcc

import (
	"testing"

	"mainline/internal/catalog"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
)

func newDB(t *testing.T, warehouses int) (*Database, *projections) {
	t.Helper()
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	db, err := NewDatabase(mgr, cat, DefaultConfig(warehouses))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Load(db, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db, p
}

func TestFromCatalogRebinds(t *testing.T) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	if _, err := NewDatabase(mgr, cat, DefaultConfig(1)); err != nil {
		t.Fatal(err)
	}
	// A second Database bound to the same catalog resolves every table and
	// engine-managed index by name — the shape a recovery rebind uses.
	db2, err := FromCatalog(mgr, cat, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if db2.CustomerND == nil || db2.CustomerND.Name() != "name" {
		t.Fatal("secondary index not rebound")
	}
	if p := db2.Projections(); p == nil || p.cAll == nil {
		t.Fatal("projection rebuild failed")
	}
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", LastName(999))
	}
}

func TestLoadPopulation(t *testing.T) {
	db, _ := newDB(t, 2)
	cfg := db.Cfg
	tx := db.Mgr.Begin()
	defer db.Mgr.Commit(tx, nil)

	counts := map[string]int{
		"warehouse": db.Warehouse.CountVisible(tx),
		"district":  db.District.CountVisible(tx),
		"customer":  db.Customer.CountVisible(tx),
		"item":      db.Item.CountVisible(tx),
		"stock":     db.Stock.CountVisible(tx),
		"order":     db.Order.CountVisible(tx),
		"new_order": db.NewOrder.CountVisible(tx),
		"history":   db.History.CountVisible(tx),
	}
	nd := cfg.Warehouses * cfg.DistrictsPerWarehouse
	if counts["warehouse"] != cfg.Warehouses {
		t.Fatalf("warehouses = %d", counts["warehouse"])
	}
	if counts["district"] != nd {
		t.Fatalf("districts = %d", counts["district"])
	}
	if counts["customer"] != nd*cfg.CustomersPerDistrict {
		t.Fatalf("customers = %d", counts["customer"])
	}
	if counts["item"] != cfg.Items {
		t.Fatalf("items = %d", counts["item"])
	}
	if counts["stock"] != cfg.Warehouses*cfg.Items {
		t.Fatalf("stock = %d", counts["stock"])
	}
	if counts["order"] != nd*cfg.InitialOrders {
		t.Fatalf("orders = %d", counts["order"])
	}
	undelivered := cfg.InitialOrders - cfg.InitialOrders*7/10
	if counts["new_order"] != nd*undelivered {
		t.Fatalf("new_orders = %d want %d", counts["new_order"], nd*undelivered)
	}
	if counts["history"] != nd*cfg.CustomersPerDistrict {
		t.Fatalf("history = %d", counts["history"])
	}
	// Index sizes line up with row counts.
	if db.CustomerPK.Len() != counts["customer"] || db.OrderPK.Len() != counts["order"] {
		t.Fatal("index sizes mismatch")
	}
}

func TestLoadedDatabaseIsConsistent(t *testing.T) {
	db, _ := newDB(t, 1)
	if err := CheckConsistency(db); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderAdvancesDistrict(t *testing.T) {
	db, p := newDB(t, 1)
	wk := NewWorker(db, p, 1, 7)
	before := nextOID(t, db, 1, 1)
	// Run New-Orders until district 1 receives one.
	for i := 0; i < 200; i++ {
		if err := wk.NewOrder(); err != nil && err != ErrUserAbort {
			t.Fatal(err)
		}
		if nextOID(t, db, 1, 1) > before {
			break
		}
	}
	if nextOID(t, db, 1, 1) <= before {
		t.Fatal("d_next_o_id never advanced")
	}
	if err := CheckConsistency(db); err != nil {
		t.Fatal(err)
	}
}

func nextOID(t *testing.T, db *Database, w, d int32) int32 {
	t.Helper()
	tx := db.Mgr.Begin()
	defer db.Mgr.Commit(tx, nil)
	row := storage.MustProjection(db.District.Layout(), []storage.ColumnID{DNextOID}).NewRow()
	if _, ok := db.DistrictPK.GetVisible(tx, dKey(w, d), row); !ok {
		t.Fatal("district missing")
	}
	return row.Int32(0)
}

func TestPaymentUpdatesYTD(t *testing.T) {
	db, p := newDB(t, 1)
	wk := NewWorker(db, p, 1, 9)
	wBefore := warehouseYTD(t, db, 1)
	for i := 0; i < 20; i++ {
		if err := wk.Payment(); err != nil {
			t.Fatal(err)
		}
	}
	if warehouseYTD(t, db, 1) <= wBefore {
		t.Fatal("w_ytd did not grow")
	}
	if err := CheckConsistency(db); err != nil {
		t.Fatal(err)
	}
}

func warehouseYTD(t *testing.T, db *Database, w int32) int64 {
	t.Helper()
	tx := db.Mgr.Begin()
	defer db.Mgr.Commit(tx, nil)
	row := storage.MustProjection(db.Warehouse.Layout(), []storage.ColumnID{WYtd}).NewRow()
	if _, ok := db.WarehousePK.GetVisible(tx, wKey(w), row); !ok {
		t.Fatal("warehouse read failed")
	}
	return row.Int64(0)
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	db, p := newDB(t, 1)
	wk := NewWorker(db, p, 1, 11)
	tx := db.Mgr.Begin()
	before := db.NewOrder.CountVisible(tx)
	db.Mgr.Commit(tx, nil)
	if before == 0 {
		t.Fatal("no initial undelivered orders")
	}
	if err := wk.Delivery(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Mgr.Begin()
	after := db.NewOrder.CountVisible(tx2)
	db.Mgr.Commit(tx2, nil)
	if after >= before {
		t.Fatalf("new_order count %d -> %d", before, after)
	}
	// One order per district was delivered.
	if before-after != db.Cfg.DistrictsPerWarehouse {
		t.Fatalf("delivered %d orders, want %d", before-after, db.Cfg.DistrictsPerWarehouse)
	}
}

func TestOrderStatusAndStockLevelReadOnly(t *testing.T) {
	db, p := newDB(t, 1)
	wk := NewWorker(db, p, 1, 13)
	for i := 0; i < 10; i++ {
		if err := wk.OrderStatus(); err != nil {
			t.Fatal(err)
		}
		if err := wk.StockLevel(); err != nil {
			t.Fatal(err)
		}
	}
	// Read-only profiles must not change the database.
	if err := CheckConsistency(db); err != nil {
		t.Fatal(err)
	}
}

func TestMixedWorkloadConsistency(t *testing.T) {
	db, p := newDB(t, 2)
	res := RunCount(db, p, 2, 150, 99)
	if res.Total() == 0 {
		t.Fatal("nothing committed")
	}
	if res.Committed[0] == 0 || res.Committed[1] == 0 {
		t.Fatalf("mix skewed: %+v", res.Committed)
	}
	if err := CheckConsistency(db); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWorkersSameWarehouse(t *testing.T) {
	// More workers than warehouses: conflicts happen, consistency must hold.
	db, p := newDB(t, 1)
	res := RunCount(db, p, 4, 80, 123)
	if res.Total() == 0 {
		t.Fatal("nothing committed")
	}
	if err := CheckConsistency(db); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadWithTransformPipeline(t *testing.T) {
	// The paper's headline experiment shape: run TPC-C while the
	// GC+transform pipeline freezes cold blocks; data stays consistent.
	db, p := newDB(t, 1)
	g := gc.New(db.Mgr)
	obs := transform.NewObserver()
	for _, tbl := range db.OrderTables() {
		obs.Watch(tbl.DataTable)
	}
	g.SetObserver(obs)
	cfg := transform.DefaultConfig()
	cfg.Threshold = 0
	tr := transform.New(db.Mgr, g, obs, cfg)

	for round := 0; round < 5; round++ {
		res := RunCount(db, p, 1, 40, uint64(round))
		if res.Total() == 0 {
			t.Fatal("nothing committed")
		}
		g.RunOnce()
		tr.RunOnce()
	}
	for i := 0; i < 10; i++ {
		g.RunOnce()
		tr.RunOnce()
	}
	if tr.Stats().BlocksFrozen == 0 {
		t.Fatalf("pipeline froze nothing: %+v", tr.Stats())
	}
	if err := CheckConsistency(db); err != nil {
		t.Fatal(err)
	}
}
