package tpch

import (
	"testing"

	"mainline/internal/catalog"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

func TestLineItemSchemaShape(t *testing.T) {
	s := LineItemSchema()
	if s.NumFields() != 16 {
		t.Fatalf("LINEITEM has %d columns, want 16", s.NumFields())
	}
	if s.FieldIndex("l_orderkey") != 0 || s.FieldIndex("l_comment") != 15 {
		t.Fatal("column order wrong")
	}
}

func TestLoadGeneratesValidRows(t *testing.T) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	table, err := Load(mgr, cat, "lineitem", 2000, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	tx := mgr.Begin()
	defer mgr.Commit(tx, nil)
	if got := table.CountVisible(tx); got != 2000 {
		t.Fatalf("rows = %d", got)
	}
	// Domains: quantity in [100, 5000] (cents of 1-50), linenumber >= 1,
	// receiptdate after shipdate.
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{3, 4, 10, 12})
	checked := 0
	_ = table.Scan(tx, proj, func(_ storage.TupleSlot, r *storage.ProjectedRow) bool {
		if r.Int32(0) < 1 || r.Int32(0) > 7 {
			t.Errorf("linenumber %d out of range", r.Int32(0))
			return false
		}
		if q := r.Int64(1); q < 100 || q > 5000 {
			t.Errorf("quantity %d out of range", q)
			return false
		}
		if r.Int32(3) <= r.Int32(2) {
			t.Errorf("receiptdate %d not after shipdate %d", r.Int32(3), r.Int32(2))
			return false
		}
		checked++
		return true
	})
	if checked != 2000 {
		t.Fatalf("checked %d rows", checked)
	}
	// Loading into the same name appends.
	if _, err := Load(mgr, cat, "lineitem", 100, 50, 43); err != nil {
		t.Fatal(err)
	}
	tx2 := mgr.Begin()
	defer mgr.Commit(tx2, nil)
	if got := table.CountVisible(tx2); got != 2100 {
		t.Fatalf("after append: %d", got)
	}
}
