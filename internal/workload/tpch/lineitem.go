// Package tpch provides the TPC-H LINEITEM table used by the paper's
// Figure 1 experiment: measuring how long it takes to move an OLTP-resident
// table into an analytical client via (a) an in-memory Arrow hand-off,
// (b) a CSV dump + reparse, and (c) a row-oriented SQL wire protocol.
// Row counts are configurable; the paper used scale factor 10 (60 M rows),
// far beyond what a laptop-scale reproduction needs for the shape to show.
package tpch

import (
	"fmt"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/txn"
	"mainline/internal/util"
)

// LineItemSchema returns the 16-column LINEITEM schema. Prices, discounts,
// and taxes are int64 hundredths; dates are days since 1992-01-01.
func LineItemSchema() *arrow.Schema {
	i64 := func(n string) arrow.Field { return arrow.Field{Name: n, Type: arrow.INT64} }
	i32 := func(n string) arrow.Field { return arrow.Field{Name: n, Type: arrow.INT32} }
	str := func(n string) arrow.Field { return arrow.Field{Name: n, Type: arrow.STRING} }
	return arrow.NewSchema(
		i64("l_orderkey"), i64("l_partkey"), i64("l_suppkey"), i32("l_linenumber"),
		i64("l_quantity"), i64("l_extendedprice"), i64("l_discount"), i64("l_tax"),
		str("l_returnflag"), str("l_linestatus"),
		i32("l_shipdate"), i32("l_commitdate"), i32("l_receiptdate"),
		str("l_shipinstruct"), str("l_shipmode"), str("l_comment"),
	)
}

var (
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	returnFlags   = []string{"R", "A", "N"}
	lineStatuses  = []string{"O", "F"}
)

// Load creates (if needed) and populates a LINEITEM table with n rows,
// batching batch rows per transaction. Returns the table.
func Load(mgr *txn.Manager, cat *catalog.Catalog, name string, n, batch int, seed uint64) (*catalog.Table, error) {
	table := cat.Table(name)
	if table == nil {
		var err error
		table, err = cat.CreateTable(name, LineItemSchema())
		if err != nil {
			return nil, err
		}
	}
	if batch <= 0 {
		batch = 1000
	}
	rng := util.NewRand(seed)
	row := table.AllColumnsProjection().NewRow()
	orderkey := int64(1)
	line := 1
	for done := 0; done < n; {
		tx := mgr.Begin()
		for i := 0; i < batch && done < n; i++ {
			row.Reset()
			row.SetInt64(0, orderkey)
			row.SetInt64(1, int64(rng.IntRange(1, 200000)))
			row.SetInt64(2, int64(rng.IntRange(1, 10000)))
			row.SetInt32(3, int32(line))
			qty := int64(rng.IntRange(1, 50))
			row.SetInt64(4, qty*100)
			row.SetInt64(5, qty*int64(rng.IntRange(90000, 110000)))
			row.SetInt64(6, int64(rng.IntRange(0, 10)))
			row.SetInt64(7, int64(rng.IntRange(0, 8)))
			row.SetVarlen(8, []byte(returnFlags[rng.Intn(len(returnFlags))]))
			row.SetVarlen(9, []byte(lineStatuses[rng.Intn(len(lineStatuses))]))
			ship := int32(rng.IntRange(1, 2500))
			row.SetInt32(10, ship)
			row.SetInt32(11, ship+int32(rng.IntRange(-30, 30)))
			row.SetInt32(12, ship+int32(rng.IntRange(1, 30)))
			row.SetVarlen(13, []byte(shipInstructs[rng.Intn(len(shipInstructs))]))
			row.SetVarlen(14, []byte(shipModes[rng.Intn(len(shipModes))]))
			row.SetVarlen(15, []byte(rng.AlphaString(10, 43)))
			if _, err := table.Insert(tx, row); err != nil {
				mgr.Abort(tx)
				return nil, fmt.Errorf("tpch: loading row %d: %w", done, err)
			}
			done++
			line++
			if line > 7 || rng.Intn(3) == 0 {
				orderkey++
				line = 1
			}
		}
		mgr.Commit(tx, nil)
	}
	return table, nil
}
