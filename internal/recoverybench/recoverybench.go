package recoverybench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mainline"
	"mainline/internal/benchutil"
	"mainline/internal/wal"
)

// RecoveryConfig scales the recovery-time-vs-WAL-length experiment.
type RecoveryConfig struct {
	// TxnCounts are the committed-transaction counts to sweep.
	TxnCounts []int
	// RowsPerTxn is how many rows each transaction inserts (default 4).
	RowsPerTxn int
	// TailTxns is the post-checkpoint work in the checkpointed variant
	// (default 64) — the bounded tail a restart must replay.
	TailTxns int
	// Dir receives the per-point data directories ("" = temp, removed
	// afterwards).
	Dir string
}

// DefaultRecoveryConfig returns the laptop-scale sweep.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		TxnCounts:  []int{1000, 4000, 16000},
		RowsPerTxn: 4,
		TailTxns:   64,
	}
}

// RecoveryPoint is one sweep measurement.
type RecoveryPoint struct {
	Txns int
	// NoCkpt* describe a restart that replays the whole log from genesis.
	NoCkptWALBytes int64
	NoCkptReopen   time.Duration
	NoCkptTail     int
	// Ckpt* describe a restart anchored on a checkpoint: the WAL holds
	// only the tail, and replay is bounded by checkpoint cadence.
	CkptWALBytes int64
	CkptReopen   time.Duration
	CkptTail     int
	// Evicted* describe a crash-restart of a fully cold database: every
	// eligible block frozen and evicted to the object store, then the
	// engine crashes without Close. Recovery rebuilds from the local
	// checkpoint and WAL tail alone — the cold tier is never required to
	// be resident, because eviction state is RAM-only.
	EvictedReopen    time.Duration
	EvictedTail      int
	EvictedRows      int64
	EvictedEvictions int64
}

// Recovery measures restart time against WAL length with and without
// checkpoints. Both variants commit the same workload through the
// segmented WAL and then reopen the data directory; the checkpointed
// variant takes one checkpoint before a short tail of extra transactions,
// so its reopen replays TailTxns transactions regardless of history
// length, while the baseline replays everything.
func Recovery(cfg RecoveryConfig) (*benchutil.Table, []RecoveryPoint, error) {
	if len(cfg.TxnCounts) == 0 {
		cfg.TxnCounts = DefaultRecoveryConfig().TxnCounts
	}
	if cfg.RowsPerTxn <= 0 {
		cfg.RowsPerTxn = 4
	}
	if cfg.TailTxns <= 0 {
		cfg.TailTxns = 64
	}
	root := cfg.Dir
	if root == "" {
		dir, err := os.MkdirTemp("", "mainline-recovery")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		root = dir
	}

	t := &benchutil.Table{
		Title: "Recovery time vs WAL length — checkpoint-anchored restart",
		Note: fmt.Sprintf("%d rows/txn; checkpointed variant replays a %d-txn tail regardless of history",
			cfg.RowsPerTxn, cfg.TailTxns),
		Header: []string{"txns", "wal KB", "reopen", "tail txns", "wal KB (ckpt)", "reopen (ckpt)", "tail (ckpt)", "speedup", "reopen (cold crash)"},
	}
	var points []RecoveryPoint
	for i, n := range cfg.TxnCounts {
		pt := RecoveryPoint{Txns: n}
		var err error
		pt.NoCkptWALBytes, pt.NoCkptReopen, pt.NoCkptTail, err =
			recoveryPoint(filepath.Join(root, fmt.Sprintf("no-ckpt-%d", i)), n, cfg.RowsPerTxn, 0, false)
		if err != nil {
			return nil, nil, fmt.Errorf("recovery @%d txns (no ckpt): %w", n, err)
		}
		pt.CkptWALBytes, pt.CkptReopen, pt.CkptTail, err =
			recoveryPoint(filepath.Join(root, fmt.Sprintf("ckpt-%d", i)), n, cfg.RowsPerTxn, cfg.TailTxns, true)
		if err != nil {
			return nil, nil, fmt.Errorf("recovery @%d txns (ckpt): %w", n, err)
		}
		if err := evictedPoint(filepath.Join(root, fmt.Sprintf("cold-%d", i)), n, cfg.RowsPerTxn, cfg.TailTxns, &pt); err != nil {
			return nil, nil, fmt.Errorf("recovery @%d txns (cold crash): %w", n, err)
		}
		points = append(points, pt)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", pt.NoCkptWALBytes/1024),
			pt.NoCkptReopen.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", pt.NoCkptTail),
			fmt.Sprintf("%d", pt.CkptWALBytes/1024),
			pt.CkptReopen.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", pt.CkptTail),
			benchutil.Ratio(float64(pt.NoCkptReopen), float64(pt.CkptReopen)),
			pt.EvictedReopen.Round(time.Millisecond).String(),
		)
	}
	return t, points, nil
}

func eventsSchema() *mainline.Schema {
	return mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "payload", Type: mainline.STRING},
		mainline.Field{Name: "amount", Type: mainline.INT64},
	)
}

// commitTxns commits count transactions of rowsPerTxn inserts each,
// advancing *id across calls so payload rows stay unique.
func commitTxns(eng *mainline.Engine, tbl *mainline.Table, count, rowsPerTxn int, id *int64) error {
	for i := 0; i < count; i++ {
		if err := eng.Update(func(tx *mainline.Txn) error {
			row := tbl.NewRow()
			for r := 0; r < rowsPerTxn; r++ {
				row.Reset()
				row.SetInt64(0, *id)
				row.SetVarlen(1, []byte("recovery-sweep-payload-row"))
				row.SetInt64(2, *id%97)
				if _, err := tbl.Insert(tx, row); err != nil {
					return err
				}
				*id++
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// evictedPoint measures the cold crash-restart: same checkpointed
// workload, but every eligible block is frozen and evicted to an object
// store before a simulated crash (no Close). The reopen must rebuild
// the full row set from the local checkpoint and WAL tail without the
// cold tier being resident.
func evictedPoint(dir string, n, rowsPerTxn, tailTxns int, pt *RecoveryPoint) error {
	cold := filepath.Join(dir, "cold")
	open := func() (*mainline.Engine, error) {
		return mainline.Open(mainline.WithDataDir(dir), mainline.WithObjectStore(cold))
	}
	eng, err := open()
	if err != nil {
		return err
	}
	tbl, err := eng.CreateTable("events", eventsSchema())
	if err != nil {
		return err
	}
	id := int64(0)
	if err := commitTxns(eng, tbl, n, rowsPerTxn, &id); err != nil {
		return err
	}
	eng.FlushLog()
	if _, err := eng.Checkpoint(); err != nil {
		return err
	}
	if _, err := eng.Checkpoint(); err != nil {
		return err
	}
	if err := commitTxns(eng, tbl, tailTxns, rowsPerTxn, &id); err != nil {
		return err
	}
	eng.FlushLog()
	eng.FreezeAll(0)
	evicted, err := eng.Admin().EvictAll()
	if err != nil {
		return err
	}
	pt.EvictedEvictions = int64(evicted)
	eng.Admin().SimulateCrash()

	start := time.Now()
	eng2, err := open()
	if err != nil {
		return err
	}
	pt.EvictedReopen = time.Since(start)
	pt.EvictedTail = eng2.Stats().Recovery.TailTxnsApplied
	tbl2 := eng2.Table("events")
	if tbl2 == nil {
		return fmt.Errorf("recoverybench: events table missing after cold crash-restart")
	}
	if err := eng2.View(func(tx *mainline.Txn) error {
		res, err := tbl2.Aggregate(tx, mainline.NewQuery().CountAll())
		if err != nil {
			return err
		}
		pt.EvictedRows = int64(res.Count(0, 0))
		return nil
	}); err != nil {
		return err
	}
	return eng2.Close()
}

// recoveryPoint loads n transactions into a data directory (taking a
// checkpoint before tailTxns extra ones when checkpointed), closes, and
// times the reopen.
func recoveryPoint(dir string, n, rowsPerTxn, tailTxns int, checkpointed bool) (walBytes int64, reopen time.Duration, tail int, err error) {
	eng, err := mainline.Open(mainline.WithDataDir(dir))
	if err != nil {
		return 0, 0, 0, err
	}
	tbl, err := eng.CreateTable("events", eventsSchema())
	if err != nil {
		return 0, 0, 0, err
	}
	id := int64(0)
	if err := commitTxns(eng, tbl, n, rowsPerTxn, &id); err != nil {
		return 0, 0, 0, err
	}
	if checkpointed {
		eng.FlushLog()
		// Two checkpoints: truncation is fallback-safe, so a checkpoint's
		// segments are released by its successor — the steady state of a
		// periodic checkpointer, which is what this variant models.
		if _, err := eng.Checkpoint(); err != nil {
			return 0, 0, 0, err
		}
		if _, err := eng.Checkpoint(); err != nil {
			return 0, 0, 0, err
		}
		if err := commitTxns(eng, tbl, tailTxns, rowsPerTxn, &id); err != nil {
			return 0, 0, 0, err
		}
	}
	eng.FlushLog()
	if err := eng.Close(); err != nil {
		return 0, 0, 0, err
	}

	segs, err := wal.ListSegments(filepath.Join(dir, "wal"))
	if err != nil {
		return 0, 0, 0, err
	}
	for _, s := range segs {
		walBytes += s.Size
	}

	start := time.Now()
	eng2, err := mainline.Open(mainline.WithDataDir(dir))
	if err != nil {
		return 0, 0, 0, err
	}
	reopen = time.Since(start)
	tail = eng2.Stats().Recovery.TailTxnsApplied
	if err := eng2.Close(); err != nil {
		return 0, 0, 0, err
	}
	return walBytes, reopen, tail, nil
}
