//go:build unix

package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// LockDir takes an exclusive advisory lock on dir/LOCK, preventing two
// processes from opening the same data directory — double-open would
// interleave two independent timestamp counters and slot lineages into
// one WAL. The lock is released by the returned func, or automatically by
// the OS when the process dies (flock semantics), so a crash never leaves
// a stale lock.
func LockDir(dir string) (release func(), err error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("data directory is locked by another process: %w", err)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
