//go:build !unix

package fsutil

// LockDir is a no-op on platforms without flock; double-open protection
// is advisory and unix-only.
func LockDir(dir string) (release func(), err error) {
	return func() {}, nil
}
