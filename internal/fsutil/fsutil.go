// Package fsutil holds the small durability helpers the persistence
// layers (WAL segments, checkpoints, catalog) share, so a future fix to
// fsync handling lands in one place.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// SyncDir fsyncs a directory so file creations, removals, and renames
// inside it are durable. Best-effort: some filesystems reject directory
// fsync, and the callers' subsequent file fsyncs carry the data itself.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// WriteFileSync writes data to path and fsyncs the file before closing.
func WriteFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AtomicWriteFile installs data at path via temp file + fsync + rename +
// directory sync, so readers observe either the old content or the new,
// never a torn write.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := WriteFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("installing %s: %w", path, err)
	}
	SyncDir(filepath.Dir(path))
	return nil
}
