// Package fsutil holds the small durability helpers the persistence
// layers (WAL segments, checkpoints, catalog) share. Every helper takes a
// fault.FS so the fault-injection layer sees each operation; production
// callers pass fault.OS{}.
package fsutil

import (
	"fmt"
	"path/filepath"

	"mainline/internal/fault"
)

// WriteFileSync writes data to path (truncating), fsyncs the file, and —
// because the file may be newly created — fsyncs the parent directory
// too: a synced file whose directory entry was never synced can vanish
// whole across a crash, which for a checkpoint manifest would silently
// drop the checkpoint.
func WriteFileSync(fsys fault.FS, path string, data []byte) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// AtomicWriteFile installs data at path via temp file + fsync + rename +
// directory sync, so readers observe either the old content or the new,
// never a torn write. Every fsync error — the directory's included — is
// returned: a swallowed directory-sync failure would let the caller
// treat a still-volatile rename as durable (fault.FS already tolerates
// the benign EINVAL/ENOTSUP "directories don't fsync here" case).
func AtomicWriteFile(fsys fault.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	if err := WriteFileSync(fsys, tmp, data); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("installing %s: %w", path, err)
	}
	return fsys.SyncDir(filepath.Dir(path))
}
