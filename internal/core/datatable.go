// Package core implements the paper's Data Table API (§3.1): the
// abstraction layer through which transactions read and write tuples. It
// materializes the correct tuple version for hot blocks by copying the
// latest version and replaying before-images down the version chain, and
// elides that work entirely for frozen blocks, which are read in place
// under the block's reader counter (§4.1).
package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"mainline/internal/storage"
	"mainline/internal/txn"
)

// Errors surfaced by Data Table operations.
var (
	// ErrWriteConflict is returned when a transaction tries to write a tuple
	// whose newest version it cannot see — the paper disallows write-write
	// conflicts to avoid cascading rollbacks.
	ErrWriteConflict = errors.New("core: write-write conflict")
	// ErrNotFound is returned for writes against a tuple whose latest
	// version is deleted or absent.
	ErrNotFound = errors.New("core: tuple not found")
	// ErrTxnFinished is returned when operating on a finished transaction.
	ErrTxnFinished = errors.New("core: transaction already finished")
	// ErrSlotOccupied is returned by InsertIntoSlot when the target slot has
	// a live version chain (compaction lost a race).
	ErrSlotOccupied = errors.New("core: slot occupied")
)

// DataTable is one table's storage: a set of blocks sharing a layout, an
// insertion point, and the MVCC read/write protocol.
type DataTable struct {
	// ID is the catalog identifier used in redo records.
	ID uint32
	// Name is the table's human-readable name.
	Name string

	reg    *storage.Registry
	layout *storage.BlockLayout

	mu     sync.RWMutex
	blocks []*storage.Block
	tail   *storage.Block

	// allColumns is the identity projection, reused for full-row reads.
	allColumns *storage.Projection

	// scanStats counts scan work (see ScanStats).
	scanStats scanCounters
	// indexes holds the attached engine-managed indexes (copy-on-write:
	// the write path loads the slice once per operation, attachment
	// replaces it under mu).
	indexes atomic.Pointer[[]*TableIndex]
	// scratchPools holds per-projection pools of hot-block staging areas
	// (see getScratch); scanProjCache memoizes predicate-extended
	// projections (see scanProjFor).
	scratchPools  sync.Map
	scanProjCache sync.Map
	// coldTier serves reads of evicted blocks and re-thaws them for
	// writes; nil when the engine runs without an object store.
	coldTier atomic.Pointer[coldTierRef]
}

// NewDataTable creates a table with the given layout and one empty block.
func NewDataTable(reg *storage.Registry, layout *storage.BlockLayout, id uint32, name string) *DataTable {
	t := &DataTable{ID: id, Name: name, reg: reg, layout: layout}
	t.allColumns = storage.MustProjection(layout, layout.AllColumns())
	t.tail = storage.NewBlock(reg, layout)
	t.blocks = []*storage.Block{t.tail}
	return t
}

// Layout returns the table's block layout.
func (t *DataTable) Layout() *storage.BlockLayout { return t.layout }

// Registry returns the block registry backing the table.
func (t *DataTable) Registry() *storage.Registry { return t.reg }

// AllColumnsProjection returns the shared identity projection.
func (t *DataTable) AllColumnsProjection() *storage.Projection { return t.allColumns }

// Blocks returns a snapshot of the table's block list.
func (t *DataTable) Blocks() []*storage.Block {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*storage.Block(nil), t.blocks...)
}

// NumBlocks reports the current block count.
func (t *DataTable) NumBlocks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.blocks)
}

// RemoveBlock detaches an emptied block from the table and retires it from
// the registry (compaction recycles blocks; paper §4.3 Phase 1).
func (t *DataTable) RemoveBlock(b *storage.Block) {
	t.mu.Lock()
	for i, x := range t.blocks {
		if x == b {
			t.blocks = append(t.blocks[:i], t.blocks[i+1:]...)
			break
		}
	}
	if t.tail == b {
		if n := len(t.blocks); n > 0 {
			t.tail = t.blocks[n-1]
		} else {
			t.tail = storage.NewBlock(t.reg, t.layout)
			t.blocks = append(t.blocks, t.tail)
		}
	}
	t.mu.Unlock()
	t.reg.Retire(b)
}

// allocateSlot reserves an insertion slot, growing the table when the tail
// block fills.
func (t *DataTable) allocateSlot() (*storage.Block, uint32) {
	for {
		t.mu.RLock()
		tail := t.tail
		t.mu.RUnlock()
		if slot, ok := tail.TryAllocateSlot(); ok {
			return tail, slot
		}
		t.mu.Lock()
		if t.tail == tail { // nobody else grew the table yet
			nb := storage.NewBlock(t.reg, t.layout)
			t.blocks = append(t.blocks, nb)
			t.tail = nb
		}
		t.mu.Unlock()
	}
}

// Insert adds a tuple with the values of row (columns absent from the
// projection become null) and returns its slot.
func (t *DataTable) Insert(tx *txn.Transaction, row *storage.ProjectedRow) (storage.TupleSlot, error) {
	if tx.Finished() {
		return 0, ErrTxnFinished
	}
	block, offset := t.allocateSlot()
	if err := t.markHot(block); err != nil {
		return 0, err
	}
	slot := storage.NewTupleSlot(block.ID, offset)

	// Install the version chain before any in-place state becomes visible.
	rec := tx.NewUndoRecord(storage.KindInsert, slot, nil)
	if !block.CASVersionPtr(offset, nil, rec) {
		// Fresh slots have no chain; this cannot happen unless slots are
		// reused incorrectly.
		tx.DropLastUndo() // unpublished record must not reach Abort
		return 0, ErrSlotOccupied
	}
	t.writeRow(block, offset, row)
	block.SetAllocated(offset, true)
	tx.LogRedo(t.ID, slot, storage.KindInsert, row.Clone())
	t.bufferIndexInserts(tx, row, slot)
	return slot, nil
}

// InsertIntoSlot places a tuple at a specific recycled slot — the
// compactor's primitive for filling gaps (§4.3 Phase 1). Unlike Insert it
// fails if the slot still has a version chain or is allocated.
func (t *DataTable) InsertIntoSlot(tx *txn.Transaction, slot storage.TupleSlot, row *storage.ProjectedRow) error {
	if tx.Finished() {
		return ErrTxnFinished
	}
	block := t.reg.BlockFor(slot)
	if block == nil {
		return ErrNotFound
	}
	offset := slot.Offset()
	if block.Allocated(offset) {
		return ErrSlotOccupied
	}
	if err := t.markHot(block); err != nil {
		return err
	}
	rec := tx.NewUndoRecord(storage.KindInsert, slot, nil)
	if !block.CASVersionPtr(offset, nil, rec) {
		// Retract the unpublished record: rolling it back at Abort would
		// clear the allocation bit of a tuple another writer owns.
		tx.DropLastUndo()
		return ErrSlotOccupied
	}
	t.writeRow(block, offset, row)
	block.SetAllocated(offset, true)
	if offset >= block.InsertHead() {
		block.SetInsertHead(offset + 1)
	}
	tx.LogRedo(t.ID, slot, storage.KindInsert, row.Clone())
	t.bufferIndexInserts(tx, row, slot)
	return nil
}

// writeRow stores row's values; unprojected columns become null.
func (t *DataTable) writeRow(block *storage.Block, offset uint32, row *storage.ProjectedRow) {
	for i, col := range row.P.Cols {
		switch {
		case row.IsNull(i):
			block.WriteNull(col, offset)
		case t.layout.IsVarlen(col):
			block.WriteVarlen(col, offset, row.Varlen(i))
		default:
			block.WriteFixed(col, offset, row.FixedBytes(i))
		}
	}
	// Full-width rows (the common case) cover every column in order; only
	// partial projections need the null-fill pass.
	if row.P.NumCols() == t.layout.NumColumns() {
		return
	}
	for c := 0; c < t.layout.NumColumns(); c++ {
		if row.P.IndexOf(storage.ColumnID(c)) < 0 {
			block.WriteNull(storage.ColumnID(c), offset)
		}
	}
}

// canWrite implements the paper's no-write-write-conflict rule: the newest
// version must be ours, or committed no later than our snapshot.
func canWrite(tx *txn.Transaction, head *storage.UndoRecord) bool {
	if head == nil {
		return true
	}
	ts := head.Timestamp()
	if ts == tx.TxnTs() {
		return true // our own previous write
	}
	if txn.IsUncommitted(ts) {
		return false
	}
	return ts <= tx.StartTs()
}

// Update applies the values in update to the tuple at slot, installing a
// before-image delta on the version chain. The delta covers exactly the
// updated columns (paper: deltas are physical before-images of the modified
// attributes).
func (t *DataTable) Update(tx *txn.Transaction, slot storage.TupleSlot, update *storage.ProjectedRow) error {
	if tx.Finished() {
		return ErrTxnFinished
	}
	block := t.reg.BlockFor(slot)
	if block == nil {
		return ErrNotFound
	}
	if err := t.markHot(block); err != nil {
		return err
	}
	offset := slot.Offset()

	head := block.VersionPtr(offset)
	if !canWrite(tx, head) {
		return ErrWriteConflict
	}
	if !block.Allocated(offset) {
		return ErrNotFound // latest version is deleted
	}

	// Capture the before-image of exactly the columns being modified. The
	// delta outlives this call on the version chain, so its varlen values
	// are heap copies (nil arena).
	delta := update.P.NewRow()
	t.readInPlace(block, offset, delta, nil)
	// Pre-image index keys must also be read before the in-place writes
	// land; they are buffered only if the CAS below wins.
	idxChanges := t.computeIndexUpdates(block, offset, update)

	rec := tx.NewUndoRecord(storage.KindUpdate, slot, delta)
	rec.SetNext(head)
	if !block.CASVersionPtr(offset, head, rec) {
		// The record never reached the chain; retract it, or Abort would
		// roll back a write that never happened and stomp the winner's
		// committed bytes with our stale before-image.
		tx.DropLastUndo()
		return ErrWriteConflict // another writer raced us
	}
	bufferIndexUpdates(tx, idxChanges, slot)

	// In-place update after the record is published: any reader that copies
	// torn bytes finds this record on the chain and repairs its copy with
	// the before-image.
	for i, col := range update.P.Cols {
		switch {
		case update.IsNull(i):
			block.WriteNull(col, offset)
		case t.layout.IsVarlen(col):
			block.WriteVarlen(col, offset, update.Varlen(i))
		default:
			block.WriteFixed(col, offset, update.FixedBytes(i))
		}
	}
	tx.LogRedo(t.ID, slot, storage.KindUpdate, update.Clone())
	return nil
}

// Delete removes the tuple at slot by clearing its allocation bit; contents
// stay in place for older snapshots (paper: deletes update the allocation
// bitmap instead of the contents).
func (t *DataTable) Delete(tx *txn.Transaction, slot storage.TupleSlot) error {
	if tx.Finished() {
		return ErrTxnFinished
	}
	block := t.reg.BlockFor(slot)
	if block == nil {
		return ErrNotFound
	}
	if err := t.markHot(block); err != nil {
		return err
	}
	offset := slot.Offset()
	head := block.VersionPtr(offset)
	if !canWrite(tx, head) {
		return ErrWriteConflict
	}
	if !block.Allocated(offset) {
		return ErrNotFound
	}
	idxChanges := t.computeIndexRemovals(block, offset)
	rec := tx.NewUndoRecord(storage.KindDelete, slot, nil)
	rec.SetNext(head)
	if !block.CASVersionPtr(offset, head, rec) {
		tx.DropLastUndo() // unpublished record must not reach Abort
		return ErrWriteConflict
	}
	bufferIndexRemovals(tx, idxChanges, slot)
	block.SetAllocated(offset, false)
	tx.LogRedo(t.ID, slot, storage.KindDelete, nil)
	return nil
}

// readInPlace copies the current in-place values of out's projected columns.
// Varlen values are copied out of block-owned memory: into arena when one is
// supplied (scans — the values live only until the callback returns), onto
// the heap when arena is nil (Select and before-images, whose rows escape).
func (t *DataTable) readInPlace(block *storage.Block, offset uint32, out *storage.ProjectedRow, arena *storage.ValueArena) {
	for i, col := range out.P.Cols {
		if !block.IsValid(col, offset) {
			out.SetNull(i)
			continue
		}
		if t.layout.IsVarlen(col) {
			if arena != nil {
				// Inline values are arena-copied (their entry bytes are
				// mutable); spilled values alias immutable buffers.
				out.SetVarlen(i, block.ReadVarlenStable(col, offset, arena))
			} else {
				v := block.ReadVarlen(col, offset)
				out.SetVarlen(i, append([]byte(nil), v...))
			}
		} else {
			copy(out.FixedBytes(i), block.AttrBytes(col, offset))
			out.Nulls.Clear(i)
		}
	}
}

// Select materializes the version of the tuple at slot visible to tx into
// out. found is false when the tuple does not exist in tx's snapshot.
func (t *DataTable) Select(tx *txn.Transaction, slot storage.TupleSlot, out *storage.ProjectedRow) (found bool, err error) {
	block := t.reg.BlockFor(slot)
	if block == nil {
		return false, nil
	}
	offset := slot.Offset()
	if offset >= block.InsertHead() {
		return false, nil
	}

	// Fast path: frozen blocks are read in place with no version checks —
	// the early materialization the paper elides for cold blocks.
	if block.BeginInPlaceRead() {
		if !block.Resident() {
			// Buffers are evicted; serve the cached cold payload. The
			// registration is released first — the payload is an immutable
			// copy of the observed frozen epoch, so it needs no pin.
			block.EndInPlaceRead()
			return t.selectCold(block, offset, out)
		}
		if !block.Allocated(offset) {
			block.EndInPlaceRead()
			return false, nil
		}
		t.readInPlace(block, offset, out, nil)
		block.EndInPlaceRead()
		return true, nil
	}

	return t.selectVersioned(tx, block, offset, out, nil)
}

// selectVersioned runs the paper's hot-block read protocol: copy the latest
// version under a version-pointer stability check, then traverse the chain
// applying before-images until reaching a visible version.
func (t *DataTable) selectVersioned(tx *txn.Transaction, block *storage.Block, offset uint32, out *storage.ProjectedRow, arena *storage.ValueArena) (bool, error) {
	var head *storage.UndoRecord
	var present bool
	for {
		head = block.VersionPtr(offset)
		present = block.Allocated(offset)
		out.Reset()
		t.readInPlace(block, offset, out, arena)
		if block.VersionPtr(offset) == head {
			break
		}
		// A writer published a new version mid-copy; retry. (GC unlinking
		// cannot re-link the same head, so pointer equality is sufficient.)
	}

	for rec := head; rec != nil; rec = rec.Next() {
		ts := rec.Timestamp()
		if ts == tx.TxnTs() || txn.Visible(ts, tx.StartTs()) {
			break
		}
		switch rec.Kind {
		case storage.KindUpdate:
			rec.Delta.ApplyDeltaTo(out)
		case storage.KindInsert:
			present = false
		case storage.KindDelete:
			present = true
		}
	}
	return present, nil
}

// Scan visits every tuple visible to tx, materializing proj's columns into
// row and invoking fn. fn must not retain row (its varlen values live in a
// per-scan arena that is recycled row to row). Frozen blocks are scanned in
// place; hot blocks reconstruct versions per slot. Returning false from fn
// stops the scan.
func (t *DataTable) Scan(tx *txn.Transaction, proj *storage.Projection, fn func(slot storage.TupleSlot, row *storage.ProjectedRow) bool) error {
	row := proj.NewRow()
	arena := storage.GetValueArena()
	defer storage.PutValueArena(arena)
	for _, block := range t.Blocks() {
		cont, err := t.scanBlock(tx, block, proj, row, arena, fn)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// scanBlock scans one block; cont is false if fn stopped the scan. An
// error means an evicted block's payload could not be fetched.
func (t *DataTable) scanBlock(tx *txn.Transaction, block *storage.Block, proj *storage.Projection, row *storage.ProjectedRow, arena *storage.ValueArena, fn func(storage.TupleSlot, *storage.ProjectedRow) bool) (bool, error) {
	emitted := int64(0)
	if block.BeginInPlaceRead() {
		if !block.Resident() {
			block.EndInPlaceRead()
			cb, err := t.fetchCold(block)
			if err != nil {
				return false, err
			}
			return t.scanColdBlock(block, cb, row, fn), nil
		}
		defer func() {
			block.EndInPlaceRead()
			t.scanStats.tuplesEmitted.Add(emitted)
		}()
		t.scanStats.blocksFrozen.Add(1)
		n := uint32(block.FrozenRows())
		for s := uint32(0); s < n; s++ {
			if !block.Allocated(s) {
				continue
			}
			row.Reset()
			arena.Reset()
			t.readInPlace(block, s, row, arena)
			emitted++
			if !fn(storage.NewTupleSlot(block.ID, s), row) {
				return false, nil
			}
		}
		return true, nil
	}
	defer func() { t.scanStats.tuplesEmitted.Add(emitted) }()
	t.scanStats.blocksVersioned.Add(1)
	head := block.InsertHead()
	for s := uint32(0); s < head; s++ {
		// Slots with no chain and no allocation are invisible to everyone.
		if !block.Allocated(s) && block.VersionPtr(s) == nil {
			continue
		}
		row.Reset()
		arena.Reset()
		found, err := t.selectVersioned(tx, block, s, row, arena)
		if err != nil || !found {
			continue
		}
		emitted++
		if !fn(storage.NewTupleSlot(block.ID, s), row) {
			return false, nil
		}
	}
	return true, nil
}

// CountVisible returns the number of tuples visible to tx (test helper and
// consistency checks).
func (t *DataTable) CountVisible(tx *txn.Transaction) int {
	count := 0
	proj := storage.MustProjection(t.layout, []storage.ColumnID{0})
	_ = t.Scan(tx, proj, func(storage.TupleSlot, *storage.ProjectedRow) bool {
		count++
		return true
	})
	return count
}
