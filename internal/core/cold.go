// Cold-tier integration of the Data Table: the read paths fall through
// to decoded cold payloads when a frozen block's buffers are evicted,
// and the write paths re-thaw (fetch + reinstall buffers) before any
// in-place mutation. The tier itself lives in internal/tier; core sees
// it only through the two-method ColdTier interface, attached per table
// by the engine.
package core

import (
	"errors"
	"runtime"

	"mainline/internal/storage"
)

// ErrNoColdTier is returned when a read or write reaches an evicted
// block on a table with no cold tier attached — a configuration that
// can only arise from detaching the object store of a data dir that
// already evicted blocks.
var ErrNoColdTier = errors.New("core: block is evicted but no cold tier is attached")

// ColdTier is the slice of the tier manager the Data Table needs:
// fetch a decoded cold payload (cached), and re-install an evicted
// block's buffers ahead of a thaw.
type ColdTier interface {
	// Fetch returns the block's decoded cold payload through the tier
	// cache. The result is immutable and shared.
	Fetch(b *storage.Block) (*storage.ColdBlock, error)
	// Rethaw rebuilds the block's in-RAM buffers from the store. Called
	// with the block's residency held at Rethawing; the caller flips
	// residency afterwards.
	Rethaw(b *storage.Block) error
}

// AttachColdTier wires the table to a cold tier. Safe to call once
// before the table serves traffic (engine Open / CreateTable).
func (t *DataTable) AttachColdTier(ct ColdTier) { t.coldTier.Store(&coldTierRef{ct}) }

type coldTierRef struct{ ct ColdTier }

func (t *DataTable) coldTierGet() ColdTier {
	if ref := t.coldTier.Load(); ref != nil {
		return ref.ct
	}
	return nil
}

// markHot is the tier-aware MarkHot every write path uses: thaw the
// block, re-thawing it from the cold tier first when its buffers are
// evicted. An error means the object store could not serve the payload;
// the write fails and the block stays frozen+evicted.
func (t *DataTable) markHot(block *storage.Block) error {
	for !block.MarkHotResident() {
		if err := t.rethawBlock(block); err != nil {
			return err
		}
	}
	return nil
}

// rethawBlock re-installs an evicted block's buffers, racing correctly
// with other writers (first CAS wins, the rest wait) and with the
// evictor's deferred buffer drop (which claims the same Rethawing slot).
func (t *DataTable) rethawBlock(block *storage.Block) error {
	for {
		switch block.Residency() {
		case storage.ResidencyResident:
			return nil
		case storage.ResidencyRethawing:
			runtime.Gosched()
		case storage.ResidencyEvicted:
			if !block.CASResidency(storage.ResidencyEvicted, storage.ResidencyRethawing) {
				continue
			}
			ct := t.coldTierGet()
			if ct == nil {
				block.SetResidency(storage.ResidencyEvicted)
				return ErrNoColdTier
			}
			if err := ct.Rethaw(block); err != nil {
				block.SetResidency(storage.ResidencyEvicted)
				return err
			}
			block.SetResidency(storage.ResidencyResident)
			return nil
		}
	}
}

// fetchCold returns the decoded payload of an evicted block.
func (t *DataTable) fetchCold(block *storage.Block) (*storage.ColdBlock, error) {
	ct := t.coldTierGet()
	if ct == nil {
		return nil, ErrNoColdTier
	}
	return ct.Fetch(block)
}

// selectCold is the point-read path for evicted blocks: the caller
// observed the block Frozen (BeginInPlaceRead succeeded, then released)
// and non-resident; the cached cold payload is that frozen epoch's
// content, which is the latest committed version for every active
// transaction — the same visibility argument as the resident in-place
// fast path. Point reads never thaw.
func (t *DataTable) selectCold(block *storage.Block, offset uint32, out *storage.ProjectedRow) (bool, error) {
	if !block.Allocated(offset) {
		return false, nil
	}
	cb, err := t.fetchCold(block)
	if err != nil {
		return false, err
	}
	if offset >= uint32(cb.Rows) {
		return false, nil
	}
	t.readCold(cb, offset, out, false)
	return true, nil
}

// readCold copies the cold payload's values at offset into out's
// projected columns. When alias is true varlen values alias the
// immutable payload (scan rows, consumed inside the callback); when
// false they are heap copies (Select rows escape).
func (t *DataTable) readCold(cb *storage.ColdBlock, offset uint32, out *storage.ProjectedRow, alias bool) {
	for i, col := range out.P.Cols {
		valid := cb.Validity[col]
		if cb.NullCounts[col] > 0 && valid != nil && !valid.Test(int(offset)) {
			out.SetNull(i)
			continue
		}
		if t.layout.IsVarlen(col) {
			view := cb.FrozenVarlenView(col)
			v := view.BytesAt(int(offset))
			if !alias {
				v = append([]byte(nil), v...)
			}
			out.SetVarlen(i, v)
		} else {
			w := t.layout.AttrSize(col)
			copy(out.FixedBytes(i), cb.Fixed[col][int(offset)*w:(int(offset)+1)*w])
			out.Nulls.Clear(i)
		}
	}
}

// scanColdBlock is the tuple-at-a-time scan path over an evicted block:
// iterate the frozen rows, skipping slots whose allocation bit (retained
// in RAM across eviction) is clear.
func (t *DataTable) scanColdBlock(block *storage.Block, cb *storage.ColdBlock, row *storage.ProjectedRow, fn func(storage.TupleSlot, *storage.ProjectedRow) bool) bool {
	emitted := int64(0)
	defer func() { t.scanStats.tuplesEmitted.Add(emitted) }()
	t.scanStats.blocksCold.Add(1)
	for s := uint32(0); s < uint32(cb.Rows); s++ {
		if !block.Allocated(s) {
			continue
		}
		row.Reset()
		t.readCold(cb, s, row, true)
		emitted++
		if !fn(storage.NewTupleSlot(block.ID, s), row) {
			return false
		}
	}
	return true
}

// coldBatch is the vectorized scan path over an evicted block: the same
// zone-map-pruned, kernel-filtered, view-backed flow as frozenBatch,
// pointed at the cached cold payload instead of block memory.
func (t *DataTable) coldBatch(block *storage.Block, batch *Batch, pred *Predicate, fn func(*Batch) bool) (bool, error) {
	cb, err := t.fetchCold(block)
	if err != nil {
		return false, err
	}
	t.scanStats.blocksCold.Add(1)
	n := cb.Rows
	if n == 0 {
		return true, nil
	}
	batch.setupCold(block, cb)
	if pred != nil {
		sv := storage.GetSelectionVector(n)
		defer storage.PutSelectionVector(sv)
		sv.SetIndices(evalFrozenPred(cb, pred, n, sv.Indices()[:0]))
		if sv.Len() == 0 {
			return true, nil
		}
		batch.sel = sv.Indices()
		batch.n = sv.Len()
	} else {
		batch.sel = nil
		batch.n = n
	}
	t.scanStats.tuplesEmitted.Add(int64(batch.n))
	return fn(batch), nil
}

// setupCold points the batch's column views at a decoded cold payload.
// The batch presents as frozen — consumers see identical view semantics;
// Slot() still resolves through the block ID.
func (b *Batch) setupCold(block *storage.Block, cb *storage.ColdBlock) {
	nc := b.proj.NumCols()
	if cap(b.fixedViews) < nc {
		b.fixedViews = make([]storage.FixedColView, nc)
		b.varlenViews = make([]storage.VarlenColView, nc)
	}
	b.fixedViews = b.fixedViews[:nc]
	b.varlenViews = b.varlenViews[:nc]
	for i, col := range b.proj.Cols {
		if b.proj.Layout.IsVarlen(col) {
			b.varlenViews[i] = cb.FrozenVarlenView(col)
		} else {
			b.fixedViews[i] = cb.FrozenFixedView(col)
		}
	}
	b.block = block
	b.frozen = true
	b.scr = nil
}

