//go:build !race

package core_test

// scanRaceEnabled reports that the race detector is active; see
// scan_race_flag_test.go.
const scanRaceEnabled = false
