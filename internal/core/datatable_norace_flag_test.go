//go:build !race

package core

// rmwRaceEnabled reports that the race detector is active; see
// datatable_race_flag_test.go.
const rmwRaceEnabled = false
