package core

import (
	"math"
	"testing"

	"mainline/internal/storage"
)

// TestScratchOverwriteClearsValidity pins the fast-path fallback bug the
// review caught: appendFast sets validity bits at index scr.n, and if the
// stability recheck then fails, appendRow (or a later appendFast) lands at
// the same index — its NULL columns must CLEAR the stale bits, or NULL
// surfaces as a non-NULL zero value.
func TestScratchOverwriteClearsValidity(t *testing.T) {
	layout, err := storage.NewBlockLayout([]storage.AttrDef{storage.FixedAttr(8), storage.VarlenAttr()})
	if err != nil {
		t.Fatal(err)
	}
	reg := storage.NewRegistry()
	block := storage.NewBlock(reg, layout)
	slot, _ := block.TryAllocateSlot()
	block.WriteFixed(0, slot, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	block.WriteVarlen(1, slot, []byte("value"))
	block.SetAllocated(slot, true)

	proj := storage.MustProjection(layout, layout.AllColumns())
	scr := newScratch(proj)
	scr.reset()

	// Simulate an appendFast whose recheck failed: bits set, n unchanged.
	scr.appendFast(block, slot)
	if !scr.valid[0].Test(0) || !scr.valid[1].Test(0) {
		t.Fatal("appendFast did not set validity")
	}

	// The fallback materializes an all-NULL visible version at the same
	// index; the stale bits must be cleared.
	nullRow := proj.NewRow()
	nullRow.SetNull(0)
	nullRow.SetNull(1)
	scr.appendRow(slot, nullRow)
	if scr.valid[0].Test(0) || scr.valid[1].Test(0) {
		t.Fatal("appendRow left stale validity bits from the aborted fast path")
	}

	// Same leak through a later appendFast at a reused index: a null
	// column must clear, not skip.
	scr.reset()
	scr.appendFast(block, slot) // sets bits at index 0, recheck "fails"
	block.WriteNull(0, slot)
	block.WriteNull(1, slot)
	scr.appendFast(block, slot)
	if scr.valid[0].Test(0) || scr.valid[1].Test(0) {
		t.Fatal("appendFast left stale validity bits on null columns")
	}
}

// TestNaNPredicateBoundMatchesNothing pins the NaN-bound fix: every float
// comparison against NaN is false, so a NaN bound must compile to the
// statically empty predicate instead of accidentally matching every row.
func TestNaNPredicateBoundMatchesNothing(t *testing.T) {
	for _, p := range []*Predicate{
		NewFloatPred(0, math.NaN(), math.NaN(), false, false),  // Eq(NaN)
		NewFloatPred(0, math.Inf(-1), math.NaN(), false, true), // Lt(NaN)
		NewFloatPred(0, math.NaN(), math.Inf(1), true, false),  // Gt(NaN)
	} {
		if !p.MatchNone {
			t.Fatalf("NaN-bounded predicate %+v not MatchNone", p)
		}
	}
	if NewFloatPred(0, 1, 2, false, false).MatchNone {
		t.Fatal("finite range wrongly MatchNone")
	}
}
