//go:build race

package core

// rmwRaceEnabled reports that the race detector is active. The lost-update
// regression test then serializes whole transactions behind a mutex: the
// engine's in-place update with torn-read repair is deliberately racy at
// tuple byte level (see DataTable.Update and the CI race-job note), so the
// full-contact variant — readers overlapping in-flight writers on the same
// slot — cannot be TSan-clean by design. The full-contact interleavings
// (CAS install races, conflict-retry aborts) run in the normal test job.
const rmwRaceEnabled = true
