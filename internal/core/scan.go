// Vectorized batch scans (the analytical read path). Instead of
// materializing every tuple through the version-chain protocol, the batch
// engine processes one block at a time: frozen blocks are pruned by
// freeze-time zone maps, filtered by typed kernels running directly over
// their Arrow buffers, and exposed zero-copy through column views under
// the block's reader counter; hot blocks amortize the MVCC protocol across
// a chunk — slots with no version chain are copied straight into a
// columnar scratch with a pointer-stability recheck, and only slots with a
// live chain pay for version traversal.
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mainline/internal/arrow"
	"mainline/internal/storage"
	"mainline/internal/txn"
	"mainline/internal/util"
)

// HotBatchSize is the chunk size for hot-block batch scans: large enough
// to amortize per-batch overhead, small enough that the columnar scratch
// stays cache-resident.
const HotBatchSize = 1024

// --- Scan statistics ---------------------------------------------------------

// ScanStats counts scan work since table creation (both the tuple-at-a-time
// and the batch paths).
type ScanStats struct {
	// BlocksFrozen counts blocks scanned in place under the reader counter.
	BlocksFrozen int64
	// BlocksVersioned counts blocks scanned through the version-chain
	// protocol (hot, cooling, or freezing at scan time).
	BlocksVersioned int64
	// BlocksPruned counts frozen blocks skipped entirely because their
	// zone map proved no row could match the predicate — pruned blocks
	// never take the in-place read counter.
	BlocksPruned int64
	// BlocksCold counts evicted blocks served from the cold tier (cache
	// or object store).
	BlocksCold int64
	// BlocksPrunedCold counts the subset of BlocksPruned whose block was
	// evicted: pruning decided on the in-RAM zone map alone, so these
	// blocks incurred zero object-store reads.
	BlocksPrunedCold int64
	// TuplesEmitted counts tuples handed to scan callbacks.
	TuplesEmitted int64
}

// Add accumulates o into s.
func (s *ScanStats) Add(o ScanStats) {
	s.BlocksFrozen += o.BlocksFrozen
	s.BlocksVersioned += o.BlocksVersioned
	s.BlocksPruned += o.BlocksPruned
	s.BlocksCold += o.BlocksCold
	s.BlocksPrunedCold += o.BlocksPrunedCold
	s.TuplesEmitted += o.TuplesEmitted
}

// scanCounters is the atomic backing store for ScanStats.
type scanCounters struct {
	blocksFrozen     atomic.Int64
	blocksVersioned  atomic.Int64
	blocksPruned     atomic.Int64
	blocksCold       atomic.Int64
	blocksPrunedCold atomic.Int64
	tuplesEmitted    atomic.Int64
}

// ScanStatsSnapshot returns the table's cumulative scan counters.
func (t *DataTable) ScanStatsSnapshot() ScanStats {
	return ScanStats{
		BlocksFrozen:     t.scanStats.blocksFrozen.Load(),
		BlocksVersioned:  t.scanStats.blocksVersioned.Load(),
		BlocksPruned:     t.scanStats.blocksPruned.Load(),
		BlocksCold:       t.scanStats.blocksCold.Load(),
		BlocksPrunedCold: t.scanStats.blocksPrunedCold.Load(),
		TuplesEmitted:    t.scanStats.tuplesEmitted.Load(),
	}
}

// --- Predicates --------------------------------------------------------------

// PredKind selects the typed comparison domain of a Predicate.
type PredKind uint8

// Predicate domains.
const (
	// PredInt compares fixed-width columns as signed integers of the
	// column's width.
	PredInt PredKind = iota
	// PredFloat compares 8-byte columns as float64.
	PredFloat
	// PredBytes compares variable-length columns lexicographically.
	PredBytes
)

// Predicate is a single-column range predicate in the shape the kernels
// evaluate: an inclusive integer range, a float range with per-bound
// strictness, or a bytes range with per-bound strictness. Point lookups
// (Eq) are ranges with lo == hi. NULL values never match.
type Predicate struct {
	// Col is the layout column the predicate applies to.
	Col storage.ColumnID
	// Kind selects the comparison domain.
	Kind PredKind
	// MatchNone marks a statically unsatisfiable predicate (e.g. an
	// equality value that overflows the column width); the scan emits
	// nothing without touching any block.
	MatchNone bool

	// LoInt/HiInt are the inclusive integer bounds (math.MinInt64 /
	// math.MaxInt64 for one-sided ranges).
	LoInt, HiInt int64
	// LoFloat/HiFloat are the float bounds (±Inf for one-sided ranges);
	// a strict flag excludes the bound itself.
	LoFloat, HiFloat             float64
	LoFloatStrict, HiFloatStrict bool
	// LoBytes/HiBytes are the bytes bounds (nil for one-sided ranges —
	// an empty-but-non-nil bound is a real bound).
	LoBytes, HiBytes             []byte
	LoBytesStrict, HiBytesStrict bool
}

// NewIntPred builds an inclusive integer range predicate.
func NewIntPred(col storage.ColumnID, lo, hi int64) *Predicate {
	return &Predicate{Col: col, Kind: PredInt, LoInt: lo, HiInt: hi, MatchNone: lo > hi}
}

// NewFloatPred builds a float range predicate with per-bound strictness.
// A NaN bound makes the predicate match nothing (every comparison against
// NaN is false, so no value can satisfy it).
func NewFloatPred(col storage.ColumnID, lo, hi float64, loStrict, hiStrict bool) *Predicate {
	return &Predicate{
		Col: col, Kind: PredFloat,
		LoFloat: lo, HiFloat: hi, LoFloatStrict: loStrict, HiFloatStrict: hiStrict,
		MatchNone: lo != lo || hi != hi || lo > hi || (lo == hi && (loStrict || hiStrict)),
	}
}

// NewBytesPred builds a lexicographic bytes range predicate. nil bounds are
// one-sided; bounds are copied by reference (callers must not mutate).
func NewBytesPred(col storage.ColumnID, lo, hi []byte, loStrict, hiStrict bool) *Predicate {
	p := &Predicate{
		Col: col, Kind: PredBytes,
		LoBytes: lo, HiBytes: hi, LoBytesStrict: loStrict, HiBytesStrict: hiStrict,
	}
	if lo != nil && hi != nil {
		if c := bytes.Compare(lo, hi); c > 0 || (c == 0 && (loStrict || hiStrict)) {
			p.MatchNone = true
		}
	}
	return p
}

// MatchNonePred builds the statically empty predicate.
func MatchNonePred(col storage.ColumnID) *Predicate {
	return &Predicate{Col: col, MatchNone: true}
}

// matchBytes reports whether v falls inside the bytes range.
func (p *Predicate) matchBytes(v []byte) bool {
	if p.LoBytes != nil {
		if c := bytes.Compare(v, p.LoBytes); c < 0 || (c == 0 && p.LoBytesStrict) {
			return false
		}
	}
	if p.HiBytes != nil {
		if c := bytes.Compare(v, p.HiBytes); c > 0 || (c == 0 && p.HiBytesStrict) {
			return false
		}
	}
	return true
}

// prunesBlock reports whether the zone map proves no row of the block can
// match — the predicate's range and the column's freeze-time [min, max]
// are disjoint, or the column was entirely NULL.
func (p *Predicate) prunesBlock(zm *storage.ZoneMap) bool {
	if p.MatchNone {
		return true
	}
	if int(p.Col) >= len(zm.Cols) {
		return false
	}
	cs := &zm.Cols[p.Col]
	if cs.AllNull(zm.Rows) {
		return true
	}
	switch p.Kind {
	case PredInt:
		if !cs.HasMinMax {
			return false
		}
		return cs.MaxInt < p.LoInt || cs.MinInt > p.HiInt
	case PredFloat:
		if !cs.HasFloat {
			// The column held values but none comparable (all NaN): no
			// range predicate can match.
			return true
		}
		if cs.MaxFloat < p.LoFloat || (p.LoFloatStrict && cs.MaxFloat == p.LoFloat) {
			return true
		}
		return cs.MinFloat > p.HiFloat || (p.HiFloatStrict && cs.MinFloat == p.HiFloat)
	case PredBytes:
		if !cs.HasMinMax {
			return false
		}
		if p.LoBytes != nil {
			if c := bytes.Compare(cs.MaxBytes, p.LoBytes); c < 0 || (c == 0 && p.LoBytesStrict) {
				return true
			}
		}
		if p.HiBytes != nil {
			if c := bytes.Compare(cs.MinBytes, p.HiBytes); c > 0 || (c == 0 && p.HiBytesStrict) {
				return true
			}
		}
	}
	return false
}

// validate checks the predicate against the table layout.
func (p *Predicate) validate(layout *storage.BlockLayout) error {
	if int(p.Col) >= layout.NumColumns() {
		return fmt.Errorf("core: predicate column %d out of range", p.Col)
	}
	varlen := layout.IsVarlen(p.Col)
	switch p.Kind {
	case PredBytes:
		if !varlen {
			return fmt.Errorf("core: bytes predicate on fixed-width column %d", p.Col)
		}
	case PredFloat:
		if varlen || layout.AttrSize(p.Col) != 8 {
			return fmt.Errorf("core: float predicate on column %d", p.Col)
		}
	case PredInt:
		if varlen || layout.AttrSize(p.Col) > 8 {
			return fmt.Errorf("core: integer predicate on column %d", p.Col)
		}
	}
	return nil
}

// --- Batch -------------------------------------------------------------------

// Batch is a column-oriented view of the visible tuples of (part of) one
// block. Frozen batches alias block memory zero-copy under the block's
// reader counter; hot batches read from a materialized columnar scratch.
// A batch, and every slice obtained from it, is valid only until the scan
// callback returns.
type Batch struct {
	block  *storage.Block
	proj   *storage.Projection
	frozen bool
	n      int
	// sel maps batch row -> block slot offset (frozen) or scratch row
	// (hot); nil means identity.
	sel []uint32

	// Frozen column views, indexed by projection position.
	fixedViews  []storage.FixedColView
	varlenViews []storage.VarlenColView

	scr *scratch
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Frozen reports whether the batch aliases frozen block memory.
func (b *Batch) Frozen() bool { return b.frozen }

// NumCols returns the number of projected columns.
func (b *Batch) NumCols() int { return b.proj.NumCols() }

// Projection returns the batch's projection.
func (b *Batch) Projection() *storage.Projection { return b.proj }

func (b *Batch) idx(row int) uint32 {
	if b.sel != nil {
		return b.sel[row]
	}
	return uint32(row)
}

// Slot returns the tuple slot of batch row i.
func (b *Batch) Slot(i int) storage.TupleSlot {
	idx := b.idx(i)
	if b.frozen {
		return storage.NewTupleSlot(b.block.ID, idx)
	}
	return storage.NewTupleSlot(b.block.ID, b.scr.slots[idx])
}

// IsNull reports whether projected column col of row i is NULL.
func (b *Batch) IsNull(col, i int) bool {
	idx := int(b.idx(i))
	if b.frozen {
		if b.proj.IsVarlenAt(col) {
			return b.varlenViews[col].IsNull(idx)
		}
		return b.fixedViews[col].IsNull(idx)
	}
	return !b.scr.valid[col].Test(idx)
}

// Int64 loads projected column col of row i as int64 (8-byte columns).
func (b *Batch) Int64(col, i int) int64 {
	idx := int(b.idx(i))
	if b.frozen {
		return b.fixedViews[col].Int64At(idx)
	}
	return int64(binary.LittleEndian.Uint64(b.scr.fixed[col][idx*8:]))
}

// Int loads projected column col of row i widened to int64 by the
// column's width.
func (b *Batch) Int(col, i int) int64 {
	idx := int(b.idx(i))
	if b.frozen {
		return b.fixedViews[col].IntAt(idx)
	}
	w := b.scr.widths[col]
	data := b.scr.fixed[col]
	switch w {
	case 8:
		return int64(binary.LittleEndian.Uint64(data[idx*8:]))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(data[idx*4:])))
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(data[idx*2:])))
	default:
		return int64(int8(data[idx]))
	}
}

// Float64 loads projected column col of row i as float64 (8-byte columns).
func (b *Batch) Float64(col, i int) float64 {
	return math.Float64frombits(uint64(b.Int64(col, i)))
}

// Bytes returns the varlen value of projected column col of row i (nil for
// NULL). The slice aliases batch memory — valid only inside the callback.
func (b *Batch) Bytes(col, i int) []byte {
	idx := int(b.idx(i))
	if b.frozen {
		return b.varlenViews[col].BytesAt(idx)
	}
	return b.scr.vars[col][idx]
}

// FixedAt copies the raw fixed-width bytes of (col, row i) — the accessor
// for wide columns the typed getters do not cover.
func (b *Batch) FixedAt(col, i int, dst []byte) {
	idx := int(b.idx(i))
	w := b.proj.Layout.AttrSize(b.proj.Cols[col])
	if b.frozen {
		copy(dst, b.fixedViews[col].Data[idx*w:(idx+1)*w])
		return
	}
	copy(dst, b.scr.fixed[col][idx*w:(idx+1)*w])
}

// SelIndices exposes the batch's selection vector: the block-slot (frozen)
// or scratch-row (hot) positions of the batch's rows, nil when the batch
// covers rows 0..Len()-1 identically. Together with RawFixed it lets
// vectorized consumers (aggregation kernels) run over batch memory
// directly; the slice is valid only until the scan callback returns.
func (b *Batch) SelIndices() []uint32 { return b.sel }

// RawFixed exposes the packed value buffer, validity bitmap (nil = no
// nulls), and byte width of fixed-width projected column col — frozen
// batches alias block Arrow memory, hot batches the staging scratch. Row
// positions in the buffer are pre-selection; combine with SelIndices.
func (b *Batch) RawFixed(col int) (data []byte, valid util.Bitmap, width int) {
	if b.frozen {
		v := &b.fixedViews[col]
		return v.Data, v.Valid, v.Width
	}
	return b.scr.fixed[col], b.scr.valid[col], b.scr.widths[col]
}

// Dict returns the sorted frozen dictionary backing projected varlen
// column col, or nil — hot batches and plain-gathered frozen columns have
// none. A non-nil dictionary enables the code-space fast paths: group keys
// and join keys become int32 codes, decoded once per distinct code.
func (b *Batch) Dict(col int) *storage.FrozenDict {
	if !b.frozen {
		return nil
	}
	return b.varlenViews[col].Dict()
}

// DictCode returns the dictionary code of projected column col at row i.
// Only meaningful when Dict(col) is non-nil and the value is non-NULL.
func (b *Batch) DictCode(col, i int) int32 {
	return b.varlenViews[col].Dict().CodeAt(int(b.idx(i)))
}

// setupFrozen points the batch's column views at block's Arrow buffers.
func (b *Batch) setupFrozen(block *storage.Block) {
	nc := b.proj.NumCols()
	if cap(b.fixedViews) < nc {
		b.fixedViews = make([]storage.FixedColView, nc)
		b.varlenViews = make([]storage.VarlenColView, nc)
	}
	b.fixedViews = b.fixedViews[:nc]
	b.varlenViews = b.varlenViews[:nc]
	for i, col := range b.proj.Cols {
		if b.proj.Layout.IsVarlen(col) {
			b.varlenViews[i] = block.FrozenVarlenView(col)
		} else {
			b.fixedViews[i] = block.FrozenFixedView(col)
		}
	}
	b.block = block
	b.frozen = true
	b.scr = nil
}

// --- Hot-block scratch -------------------------------------------------------

// scratch is the columnar staging area for hot-block batches: the visible
// version of each slot in the chunk is materialized once — fast-path slots
// (no version chain) by direct copy with a stability recheck, chained
// slots through the version protocol — and predicates then run over the
// packed columns exactly like they do over frozen memory.
type scratch struct {
	proj   *storage.Projection
	n      int
	slots  []uint32
	widths []int
	fixed  [][]byte // per column: packed values, nil for varlen columns
	valid  []util.Bitmap
	vars   [][][]byte // per column: value refs, nil for fixed columns
	arena  *storage.ValueArena
	row    *storage.ProjectedRow // reusable row for version-chain slots
}

func newScratch(proj *storage.Projection) *scratch {
	nc := proj.NumCols()
	s := &scratch{
		proj:   proj,
		slots:  make([]uint32, HotBatchSize),
		widths: make([]int, nc),
		fixed:  make([][]byte, nc),
		valid:  make([]util.Bitmap, nc),
		vars:   make([][][]byte, nc),
		arena:  new(storage.ValueArena),
		row:    proj.NewRow(),
	}
	for i, col := range proj.Cols {
		if proj.Layout.IsVarlen(col) {
			s.vars[i] = make([][]byte, HotBatchSize)
		} else {
			w := proj.Layout.AttrSize(col)
			s.widths[i] = w
			s.fixed[i] = make([]byte, HotBatchSize*w)
		}
		s.valid[i] = util.NewBitmap(HotBatchSize)
	}
	return s
}

// getScratch borrows a staging area shaped for proj from the table's
// per-projection pool (projections are memoized, so the pool set stays
// small); putScratch returns it.
func (t *DataTable) getScratch(proj *storage.Projection) *scratch {
	pi, _ := t.scratchPools.LoadOrStore(proj, &sync.Pool{})
	if s, ok := pi.(*sync.Pool).Get().(*scratch); ok {
		return s
	}
	return newScratch(proj)
}

func (t *DataTable) putScratch(s *scratch) {
	if pi, ok := t.scratchPools.Load(s.proj); ok {
		pi.(*sync.Pool).Put(s)
	}
}

// scanProjKey memoizes hidden-predicate-column projections.
type scanProjKey struct {
	proj *storage.Projection
	col  storage.ColumnID
}

// scanProjFor returns proj extended with col as a hidden trailing column,
// building (and validating) it once per (projection, column) pair.
func (t *DataTable) scanProjFor(proj *storage.Projection, col storage.ColumnID) (*storage.Projection, error) {
	key := scanProjKey{proj, col}
	if p, ok := t.scanProjCache.Load(key); ok {
		return p.(*storage.Projection), nil
	}
	cols := make([]storage.ColumnID, 0, proj.NumCols()+1)
	cols = append(cols, proj.Cols...)
	cols = append(cols, col)
	p, err := storage.NewProjection(t.layout, cols)
	if err != nil {
		return nil, err
	}
	actual, _ := t.scanProjCache.LoadOrStore(key, p)
	return actual.(*storage.Projection), nil
}

func (s *scratch) reset() {
	s.n = 0
	s.arena.Reset()
	for i := range s.valid {
		s.valid[i].ZeroAll()
	}
}

// appendFast copies the in-place values of slot into the scratch; the
// caller has seen a nil version pointer and re-verifies it afterwards.
// Index s.n may hold leftovers of a previous attempt that failed its
// stability recheck, so the null branch must clear the validity bit, not
// just skip setting it.
func (s *scratch) appendFast(block *storage.Block, slot uint32) {
	i := s.n
	for j, col := range s.proj.Cols {
		if !block.IsValid(col, slot) {
			s.valid[j].Clear(i)
			if s.fixed[j] != nil {
				w := s.widths[j]
				clear(s.fixed[j][i*w : (i+1)*w])
			} else {
				s.vars[j][i] = nil
			}
			continue
		}
		if s.fixed[j] != nil {
			w := s.widths[j]
			copy(s.fixed[j][i*w:(i+1)*w], block.AttrBytes(col, slot))
		} else {
			s.vars[j][i] = block.ReadVarlenStable(col, slot, s.arena)
		}
		s.valid[j].Set(i)
	}
	s.slots[i] = slot
}

// commitFast finalizes an appendFast row once the stability recheck passed.
func (s *scratch) commitFast() { s.n++ }

// appendRow copies a version-materialized row into the scratch. Like
// appendFast, it may overwrite the residue of an aborted fast-path copy
// at the same index, so NULL columns clear their validity bit explicitly.
func (s *scratch) appendRow(slot uint32, row *storage.ProjectedRow) {
	i := s.n
	for j := range s.proj.Cols {
		if row.IsNull(j) {
			s.valid[j].Clear(i)
			if s.fixed[j] != nil {
				w := s.widths[j]
				clear(s.fixed[j][i*w : (i+1)*w])
			} else {
				s.vars[j][i] = nil
			}
			continue
		}
		if s.fixed[j] != nil {
			w := s.widths[j]
			copy(s.fixed[j][i*w:(i+1)*w], row.FixedBytes(j))
		} else {
			s.vars[j][i] = row.Varlen(j)
		}
		s.valid[j].Set(i)
	}
	s.slots[i] = slot
	s.n++
}

// --- ScanBatches -------------------------------------------------------------

// scanPlan is the prepared, immutable description of one batch scan:
// validated predicate, exposed projection, and the (possibly extended)
// staging projection for hot blocks. A plan is cheap to prepare — the
// extended projection is memoized — and safe to share across the workers
// of a parallel scan, each of which drives its own blocks through
// batchScanBlock with private Batch/scratch state.
type scanPlan struct {
	proj     *storage.Projection
	scanProj *storage.Projection
	pred     *Predicate
	predIdx  int
	// empty marks a statically unsatisfiable predicate: the scan visits
	// nothing without touching any block.
	empty bool
}

// prepareScan validates pred against the layout and resolves the staging
// projection (the predicate column rides along as a hidden trailing column
// when it is not projected; see scanProjFor).
func (t *DataTable) prepareScan(proj *storage.Projection, pred *Predicate) (scanPlan, error) {
	if proj == nil {
		proj = t.allColumns
	}
	plan := scanPlan{proj: proj, scanProj: proj, pred: pred, predIdx: -1}
	if pred == nil {
		return plan, nil
	}
	if err := pred.validate(t.layout); err != nil {
		return scanPlan{}, err
	}
	if pred.MatchNone {
		plan.empty = true
		return plan, nil
	}
	plan.predIdx = proj.IndexOf(pred.Col)
	if plan.predIdx < 0 {
		sp, err := t.scanProjFor(proj, pred.Col)
		if err != nil {
			return scanPlan{}, err
		}
		plan.scanProj = sp
		plan.predIdx = proj.NumCols()
	}
	return plan, nil
}

// batchScanBlock runs one block of a prepared scan: frozen path (zone-map
// prune, kernel filter, zero-copy batch — falling through to the cold
// tier when the block is evicted) when the block is frozen, the
// columnar-scratch hot path otherwise. *scr is allocated lazily (many
// scans never meet a hot block); the caller returns it to the pool.
// cont is false when fn stopped the scan; an error means a cold fetch
// failed.
func (t *DataTable) batchScanBlock(tx *txn.Transaction, block *storage.Block, batch *Batch, scr **scratch, plan *scanPlan, fn func(*Batch) bool) (bool, error) {
	cont, handled, err := t.frozenBatch(tx, block, batch, plan.pred, fn)
	if err != nil {
		return false, err
	}
	if handled {
		return cont, nil
	}
	if *scr == nil {
		*scr = t.getScratch(plan.scanProj)
	}
	return t.hotBatches(tx, block, batch, *scr, plan.pred, plan.predIdx, fn), nil
}

// ScanBatches visits every tuple visible to tx that satisfies pred,
// batch-at-a-time. proj selects the exposed columns (nil for all), pred may
// be nil for an unfiltered scan. fn must not retain the batch or any slice
// obtained from it; returning false stops the scan.
//
// Frozen blocks are pruned by zone map where possible, filtered by typed
// kernels over their Arrow buffers, and exposed zero-copy. Other blocks
// are staged through a columnar scratch in chunks of HotBatchSize.
func (t *DataTable) ScanBatches(tx *txn.Transaction, proj *storage.Projection, pred *Predicate, fn func(b *Batch) bool) error {
	plan, err := t.prepareScan(proj, pred)
	if err != nil || plan.empty {
		return err
	}
	batch := &Batch{proj: plan.proj}
	var scr *scratch
	defer func() {
		if scr != nil {
			t.putScratch(scr)
		}
	}()
	for _, block := range t.Blocks() {
		cont, err := t.batchScanBlock(tx, block, batch, &scr, &plan, fn)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// ScanBlockBatches is the morsel-granular entry point of the batch scan:
// it visits the visible, pred-satisfying tuples of exactly one block —
// the unit a parallel executor fans across workers. The block must come
// from a Blocks() snapshot taken under the same transaction's lifetime;
// visiting every block of one snapshot exactly once is equivalent to one
// ScanBatches pass, regardless of which worker runs which block. The
// freeze/thaw protocol is respected per block: a block caught Thawing (or
// any non-frozen state) falls back to the version-chain staging path, so
// concurrent state transitions never tear a batch.
func (t *DataTable) ScanBlockBatches(tx *txn.Transaction, block *storage.Block, proj *storage.Projection, pred *Predicate, fn func(b *Batch) bool) error {
	plan, err := t.prepareScan(proj, pred)
	if err != nil || plan.empty {
		return err
	}
	batch := &Batch{proj: plan.proj}
	var scr *scratch
	_, err = t.batchScanBlock(tx, block, batch, &scr, &plan, fn)
	if scr != nil {
		t.putScratch(scr)
	}
	return err
}

// frozenBatch handles one block on the frozen path: zone-map prune, kernel
// filter, zero-copy batch, with evicted blocks falling through to the
// cold tier's cached payload. handled is false when the block is not
// frozen (the caller falls back to the hot path); cont is false when fn
// stopped the scan.
func (t *DataTable) frozenBatch(tx *txn.Transaction, block *storage.Block, batch *Batch, pred *Predicate, fn func(*Batch) bool) (cont, handled bool, err error) {
	_ = tx // frozen reads need no version checks; kept for symmetry
	// Zone-map pruning happens BEFORE the reader counter is taken: the
	// state must be observed Frozen before the map is loaded (see
	// storage.Block.ZoneMap for why that order is sound). The map stays
	// in RAM across eviction, so a pruned cold block never touches the
	// object store at all.
	if pred != nil && block.State() == storage.StateFrozen {
		if zm := block.ZoneMap(); zm != nil && pred.prunesBlock(zm) {
			t.scanStats.blocksPruned.Add(1)
			if !block.Resident() {
				t.scanStats.blocksPrunedCold.Add(1)
			}
			return true, true, nil
		}
	}
	if !block.BeginInPlaceRead() {
		return true, false, nil
	}
	if !block.Resident() {
		// The payload is an immutable copy of the frozen epoch just
		// observed; it needs no reader pin.
		block.EndInPlaceRead()
		cont, err := t.coldBatch(block, batch, pred, fn)
		return cont, true, err
	}
	defer block.EndInPlaceRead()
	t.scanStats.blocksFrozen.Add(1)
	n := block.FrozenRows()
	if n == 0 {
		return true, true, nil
	}
	batch.setupFrozen(block)
	var sv *storage.SelectionVector
	if pred != nil {
		sv = storage.GetSelectionVector(n)
		defer storage.PutSelectionVector(sv)
		sv.SetIndices(evalFrozenPred(block, pred, n, sv.Indices()[:0]))
		if sv.Len() == 0 {
			return true, true, nil
		}
		batch.sel = sv.Indices()
		batch.n = sv.Len()
	} else {
		batch.sel = nil
		batch.n = n
	}
	t.scanStats.tuplesEmitted.Add(int64(batch.n))
	return fn(batch), true, nil
}

// frozenViewSource is the common shape of resident frozen blocks and
// decoded cold payloads: both expose typed zero-copy column views, so
// the predicate kernels run identically over either.
type frozenViewSource interface {
	FrozenFixedView(storage.ColumnID) storage.FixedColView
	FrozenVarlenView(storage.ColumnID) storage.VarlenColView
}

// evalFrozenPred runs the typed kernel for pred over the source's Arrow
// buffers, appending matching slot offsets to out.
func evalFrozenPred(src frozenViewSource, pred *Predicate, n int, out []uint32) []uint32 {
	switch pred.Kind {
	case PredInt:
		view := src.FrozenFixedView(pred.Col)
		return selIntRange(view.Data, view.Valid, view.Width, n, pred.LoInt, pred.HiInt, out)
	case PredFloat:
		view := src.FrozenFixedView(pred.Col)
		return arrow.SelFloat64Range(view.Data, view.Valid, n, pred.LoFloat, pred.HiFloat, pred.LoFloatStrict, pred.HiFloatStrict, out)
	default: // PredBytes
		view := src.FrozenVarlenView(pred.Col)
		if d := view.Dict(); d != nil {
			// Sorted dictionary: the bytes range becomes an int32 code
			// range and values are never touched.
			loC, hiC := d.CodeRange(pred.LoBytes, pred.HiBytes, pred.LoBytesStrict, pred.HiBytesStrict)
			if loC >= hiC {
				return out
			}
			return arrow.SelInt32Range(d.Codes, view.Valid, n, loC, hiC-1, out)
		}
		for i := 0; i < n; i++ {
			if view.IsNull(i) {
				continue
			}
			if pred.matchBytes(view.BytesAt(i)) {
				out = append(out, uint32(i))
			}
		}
		return out
	}
}

// selIntRange dispatches the integer kernel by column width, narrowing the
// int64 bounds to the width (an empty narrowed range selects nothing).
func selIntRange(data []byte, valid util.Bitmap, width, n int, lo, hi int64, out []uint32) []uint32 {
	switch width {
	case 8:
		return arrow.SelInt64Range(data, valid, n, lo, hi, out)
	case 4:
		if lo > math.MaxInt32 || hi < math.MinInt32 {
			return out
		}
		return arrow.SelInt32Range(data, valid, n, int32(max(lo, math.MinInt32)), int32(min(hi, math.MaxInt32)), out)
	case 2:
		if lo > math.MaxInt16 || hi < math.MinInt16 {
			return out
		}
		return arrow.SelInt16Range(data, valid, n, int16(max(lo, math.MinInt16)), int16(min(hi, math.MaxInt16)), out)
	default:
		if lo > math.MaxInt8 || hi < math.MinInt8 {
			return out
		}
		return arrow.SelInt8Range(data, valid, n, int8(max(lo, math.MinInt8)), int8(min(hi, math.MaxInt8)), out)
	}
}

// hotBatches stages block through the columnar scratch in chunks,
// amortizing the version-chain protocol: chainless slots take the
// copy-and-recheck fast path, chained slots go through selectVersioned.
// Returns false when fn stopped the scan.
func (t *DataTable) hotBatches(tx *txn.Transaction, block *storage.Block, batch *Batch, scr *scratch, pred *Predicate, predIdx int, fn func(*Batch) bool) bool {
	t.scanStats.blocksVersioned.Add(1)
	head := block.InsertHead()
	for start := uint32(0); start < head; start += HotBatchSize {
		end := start + HotBatchSize
		if end > head {
			end = head
		}
		scr.reset()
		for s := start; s < end; s++ {
			if block.VersionPtr(s) == nil {
				if !block.Allocated(s) {
					continue // invisible to everyone
				}
				scr.appendFast(block, s)
				if block.VersionPtr(s) == nil {
					// No writer published a version while we copied, so
					// the copy is untorn and current.
					scr.commitFast()
					continue
				}
				// A writer raced us; fall through to the chain protocol.
			}
			scr.row.Reset()
			found, _ := t.selectVersioned(tx, block, s, scr.row, scr.arena)
			if found {
				scr.appendRow(s, scr.row)
			}
		}
		if scr.n == 0 {
			continue
		}
		batch.block = block
		batch.frozen = false
		batch.scr = scr
		if pred != nil {
			sv := storage.GetSelectionVector(scr.n)
			sv.SetIndices(evalScratchPred(scr, pred, predIdx, sv.Indices()[:0]))
			if sv.Len() == 0 {
				storage.PutSelectionVector(sv)
				continue
			}
			batch.sel = sv.Indices()
			batch.n = sv.Len()
			t.scanStats.tuplesEmitted.Add(int64(batch.n))
			cont := fn(batch)
			storage.PutSelectionVector(sv)
			if !cont {
				return false
			}
			continue
		}
		batch.sel = nil
		batch.n = scr.n
		t.scanStats.tuplesEmitted.Add(int64(batch.n))
		if !fn(batch) {
			return false
		}
	}
	return true
}

// evalScratchPred runs pred over the scratch's packed columns — the same
// kernels the frozen path uses, pointed at scratch memory.
func evalScratchPred(scr *scratch, pred *Predicate, predIdx int, out []uint32) []uint32 {
	n := scr.n
	switch pred.Kind {
	case PredInt:
		return selIntRange(scr.fixed[predIdx], scr.valid[predIdx], scr.widths[predIdx], n, pred.LoInt, pred.HiInt, out)
	case PredFloat:
		return arrow.SelFloat64Range(scr.fixed[predIdx], scr.valid[predIdx], n, pred.LoFloat, pred.HiFloat, pred.LoFloatStrict, pred.HiFloatStrict, out)
	default: // PredBytes
		vars := scr.vars[predIdx]
		valid := scr.valid[predIdx]
		for i := 0; i < n; i++ {
			if valid.Test(i) && pred.matchBytes(vars[i]) {
				out = append(out, uint32(i))
			}
		}
		return out
	}
}
