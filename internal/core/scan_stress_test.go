package core_test

// Equivalence stress for the two scan paths: writers churn a mixed
// hot/frozen table (thawing the frozen block underfoot) while readers
// assert that the tuple-at-a-time and batch paths observe the identical
// visible set within one snapshot.
//
// Two contact modes:
//
//   - full-contact (default): writers run continuously, overlapping
//     in-flight updates with the scans — the mode that exposed the
//     Frozen->Hot thaw race MarkHot's Thawing state now closes. The
//     engine's in-place update is deliberately racy at tuple byte level
//     (torn reads are repaired through the version chain), so this mode
//     is not TSan-clean by design.
//   - phased (race detector active): writers are joined before every
//     comparison, giving the race detector a happens-before-ordered
//     schedule over the same mixed hot/frozen state transitions,
//     including periodic refreezes.

import (
	"fmt"
	"sync"
	"testing"

	"mainline/internal/core"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
)

func TestScanEquivalenceUnderConcurrentWriters(t *testing.T) {
	m, table := scanEnv(t)
	const rows = 512
	insertN(t, m, table, 0, rows, 0)
	sealBlock(table)
	insertN(t, m, table, rows, 2*rows, 0)
	freezeBlocks(t, m, table.Blocks()[:1], transform.ModeGather)

	slots := make(map[int64]storage.TupleSlot, 2*rows)
	{
		tx := m.Begin()
		_ = table.Scan(tx, table.AllColumnsProjection(), func(slot storage.TupleSlot, row *storage.ProjectedRow) bool {
			slots[row.Int64(0)] = slot
			return true
		})
		m.Commit(tx, nil)
	}

	const writers = 4
	writerPass := func(w int, seed uint64, iters int, stop <-chan struct{}) {
		base := int64(w) * (2 * rows / writers)
		proj, _ := storage.NewProjection(table.Layout(), []storage.ColumnID{1})
		rng := seed
		for i := 0; iters == 0 || i < iters; i++ {
			if stop != nil {
				select {
				case <-stop:
					return
				default:
				}
			}
			rng = rng*6364136223846793005 + 1
			id := base + int64(rng%(2*uint64(rows)/writers))
			tx := m.Begin()
			up := proj.NewRow()
			up.SetVarlen(0, []byte(fmt.Sprintf("w%d-%d", w, rng%997)))
			if err := table.Update(tx, slots[id], up); err != nil {
				m.Abort(tx)
				continue
			}
			m.Commit(tx, nil)
		}
	}

	compare := func(iter int) {
		tx := m.Begin()
		tupleSeen := make(map[int64]string)
		_ = table.Scan(tx, table.AllColumnsProjection(), func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
			tupleSeen[row.Int64(0)] = string(row.Varlen(1))
			return true
		})
		batchSeen := make(map[int64]string)
		_ = table.ScanBatches(tx, nil, nil, func(b *core.Batch) bool {
			for i := 0; i < b.Len(); i++ {
				batchSeen[b.Int64(0, i)] = string(b.Bytes(1, i))
			}
			return true
		})
		if len(tupleSeen) != 2*rows || len(batchSeen) != 2*rows {
			m.Commit(tx, nil)
			t.Fatalf("iter %d: visible set sizes: tuple %d batch %d want %d", iter, len(tupleSeen), len(batchSeen), 2*rows)
		}
		for id, v := range tupleSeen {
			if batchSeen[id] != v {
				// Gather evidence with the reader still active: the chain
				// cannot lose records this snapshot needs.
				slot := slots[id]
				blk := table.Registry().BlockFor(slot)
				var chain string
				for rec := blk.VersionPtr(slot.Offset()); rec != nil; rec = rec.Next() {
					val := ""
					if rec.Delta != nil {
						val = string(rec.Delta.Varlen(0))
					}
					chain += fmt.Sprintf("[%v ts=%x delta=%q] ", rec.Kind, rec.Timestamp(), val)
				}
				m.Commit(tx, nil)
				t.Fatalf("iter %d: id %d: tuple %q batch %q\nstartTs=%x blockState=%v chain=%s",
					iter, id, v, batchSeen[id], tx.StartTs(), blk.State(), chain)
			}
		}
		m.Commit(tx, nil)
	}

	collector := gc.New(m)
	if scanRaceEnabled {
		// Phased: run writer passes to completion, then compare; refreeze
		// the first block periodically so scans keep crossing the
		// frozen/thawed boundary.
		for iter := 0; iter < 12; iter++ {
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					writerPass(w, uint64(iter*writers+w)*2654435761+12345, 40, nil)
				}(w)
			}
			wg.Wait()
			collector.RunOnce()
			collector.RunOnce()
			if iter%4 == 3 {
				b := table.Blocks()[0]
				if b.State() == storage.StateHot && !b.HasActiveVersions() {
					b.SetState(storage.StateFreezing)
					if err := transform.GatherBlock(b, transform.ModeGather); err != nil {
						t.Fatal(err)
					}
				}
			}
			compare(iter)
		}
		return
	}

	// Full-contact: writers and GC run continuously under the scans.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	t.Cleanup(func() { // also reached via t.Fatalf in compare
		close(stop)
		wg.Wait()
	})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			writerPass(w, uint64(w)*2654435761+12345, 0, stop)
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			collector.RunOnce()
		}
	}()
	for iter := 0; iter < 50; iter++ {
		compare(iter)
	}
}
