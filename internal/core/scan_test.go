package core_test

// Behavioral tests for the vectorized batch-scan engine: equivalence with
// the tuple-at-a-time path over mixed hot/frozen tables (including under
// concurrent writers), predicate kernels across the type domains,
// zone-map pruning, and pruning correctness when a pruned block is
// un-frozen mid-scan. They live in an external test package so real
// freezes can go through transform.GatherBlock.

import (
	"fmt"
	"math"
	"testing"

	"mainline/internal/core"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
)

func scanEnv(t *testing.T) (*txn.Manager, *core.DataTable) {
	t.Helper()
	reg := storage.NewRegistry()
	layout, err := storage.NewBlockLayout([]storage.AttrDef{storage.FixedAttr(8), storage.VarlenAttr()})
	if err != nil {
		t.Fatal(err)
	}
	return txn.NewManager(reg), core.NewDataTable(reg, layout, 1, "scan-test")
}

// insertN inserts ids [from, to) with value strings; every nullEvery-th row
// gets a NULL varlen (0 disables).
func insertN(t *testing.T, m *txn.Manager, table *core.DataTable, from, to int64, nullEvery int) {
	t.Helper()
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	for id := from; id < to; id++ {
		row.Reset()
		row.SetInt64(0, id)
		if nullEvery > 0 && id%int64(nullEvery) == 0 {
			row.SetNull(1)
		} else {
			row.SetVarlen(1, []byte(fmt.Sprintf("val-%06d", id)))
		}
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
	}
	m.Commit(tx, nil)
}

// sealBlock caps the current tail block so the next insert opens a new one.
func sealBlock(table *core.DataTable) {
	blocks := table.Blocks()
	b := blocks[len(blocks)-1]
	b.SetInsertHead(b.Layout.NumSlots)
}

// freezeBlocks prunes version chains and gathers every sealed block into
// the frozen state.
func freezeBlocks(t *testing.T, m *txn.Manager, blocks []*storage.Block, mode transform.Mode) {
	t.Helper()
	g := gc.New(m)
	for i := 0; i < 3; i++ {
		g.RunOnce()
	}
	for _, b := range blocks {
		if b.HasActiveVersions() {
			t.Fatal("chains not pruned; cannot freeze")
		}
		b.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(b, mode); err != nil {
			t.Fatal(err)
		}
	}
}

// tupleScan collects id -> value via the tuple-at-a-time path ("\x00null"
// for NULLs).
func tupleScan(t *testing.T, m *txn.Manager, table *core.DataTable, tx *txn.Transaction) map[int64]string {
	t.Helper()
	got := make(map[int64]string)
	err := table.Scan(tx, table.AllColumnsProjection(), func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
		v := "\x00null"
		if !row.IsNull(1) {
			v = string(row.Varlen(1))
		}
		got[row.Int64(0)] = v
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// batchScan collects id -> value via ScanBatches with an optional predicate.
func batchScan(t *testing.T, table *core.DataTable, tx *txn.Transaction, pred *core.Predicate) map[int64]string {
	t.Helper()
	got := make(map[int64]string)
	err := table.ScanBatches(tx, nil, pred, func(b *core.Batch) bool {
		for i := 0; i < b.Len(); i++ {
			v := "\x00null"
			if !b.IsNull(1, i) {
				v = string(b.Bytes(1, i))
			}
			got[b.Int64(0, i)] = v
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func diffMaps(t *testing.T, want, got map[int64]string, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: size mismatch want %d got %d", label, len(want), len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: id %d: want %q got %q", label, k, v, got[k])
		}
	}
}

// mixedTable builds 2 frozen blocks (ids 0..400, one plain-gathered, one
// dictionary) plus a hot block (ids 400..600 with some updates/deletes).
func mixedTable(t *testing.T) (*txn.Manager, *core.DataTable) {
	m, table := scanEnv(t)
	insertN(t, m, table, 0, 200, 7)
	sealBlock(table)
	insertN(t, m, table, 200, 400, 0)
	sealBlock(table)
	blocks := table.Blocks()
	freezeBlocks(t, m, blocks[:1], transform.ModeGather)
	freezeBlocks(t, m, blocks[1:2], transform.ModeDictionary)
	insertN(t, m, table, 400, 600, 11)
	// Hot-block churn: update some rows, delete some, leave an uncommitted
	// write in flight.
	tx := m.Begin()
	urow, _ := storage.NewProjection(table.Layout(), []storage.ColumnID{1})
	i := 0
	_ = table.Scan(tx, table.AllColumnsProjection(), func(slot storage.TupleSlot, row *storage.ProjectedRow) bool {
		id := row.Int64(0)
		if id >= 400 {
			switch i % 5 {
			case 0:
				up := urow.NewRow()
				up.SetVarlen(0, []byte(fmt.Sprintf("upd-%06d", id)))
				if err := table.Update(tx, slot, up); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := table.Delete(tx, slot); err != nil {
					t.Fatal(err)
				}
			}
			i++
		}
		return true
	})
	m.Commit(tx, nil)
	return m, table
}

func TestScanBatchesMatchesScanMixed(t *testing.T) {
	m, table := mixedTable(t)
	tx := m.Begin()
	defer m.Commit(tx, nil)
	diffMaps(t, tupleScan(t, m, table, tx), batchScan(t, table, tx, nil), "mixed")
}

func TestScanBatchesIntPredicate(t *testing.T) {
	m, table := mixedTable(t)
	tx := m.Begin()
	defer m.Commit(tx, nil)
	want := make(map[int64]string)
	for id, v := range tupleScan(t, m, table, tx) {
		if id >= 150 && id <= 450 {
			want[id] = v
		}
	}
	got := batchScan(t, table, tx, core.NewIntPred(0, 150, 450))
	diffMaps(t, want, got, "int-range")
}

func TestScanBatchesBytesPredicate(t *testing.T) {
	m, table := mixedTable(t)
	tx := m.Begin()
	defer m.Commit(tx, nil)
	lo, hi := []byte("val-000100"), []byte("val-000350")
	want := make(map[int64]string)
	for id, v := range tupleScan(t, m, table, tx) {
		if v != "\x00null" && v >= string(lo) && v < string(hi) {
			want[id] = v
		}
	}
	// [lo, hi): strict upper bound, spans the plain-gathered block, the
	// dictionary block, and part of the hot block's original values.
	got := batchScan(t, table, tx, core.NewBytesPred(1, lo, hi, false, true))
	diffMaps(t, want, got, "bytes-range")
}

func TestScanBatchesBytesEqOnDictionary(t *testing.T) {
	m, table := scanEnv(t)
	insertN(t, m, table, 0, 100, 0)
	sealBlock(table)
	freezeBlocks(t, m, table.Blocks()[:1], transform.ModeDictionary)
	tx := m.Begin()
	defer m.Commit(tx, nil)
	key := []byte("val-000042")
	got := batchScan(t, table, tx, core.NewBytesPred(1, key, key, false, false))
	if len(got) != 1 || got[42] != string(key) {
		t.Fatalf("dict eq: got %v", got)
	}
}

func TestScanBatchesFloatPredicate(t *testing.T) {
	m, table := scanEnv(t)
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	vals := []float64{-3.5, -0.1, 0, 1.25, 2.5, math.NaN(), 7.75, 100}
	for _, v := range vals {
		row.Reset()
		row.SetFloat64(0, v)
		row.SetVarlen(1, []byte("x"))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
	}
	m.Commit(tx, nil)
	sealBlock(table)
	freezeBlocks(t, m, table.Blocks()[:1], transform.ModeGather)

	rtx := m.Begin()
	defer m.Commit(rtx, nil)
	count := 0
	// (-0.1, 7.75]: strict lower, inclusive upper; NaN must not match.
	pred := core.NewFloatPred(0, -0.1, 7.75, true, false)
	err := table.ScanBatches(rtx, nil, pred, func(b *core.Batch) bool {
		count += b.Len()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 { // 0, 1.25, 2.5, 7.75
		t.Fatalf("float range matched %d rows, want 4", count)
	}
}

func TestScanBatchesPredColumnNotProjected(t *testing.T) {
	m, table := mixedTable(t)
	tx := m.Begin()
	defer m.Commit(tx, nil)
	proj, err := storage.NewProjection(table.Layout(), []storage.ColumnID{1})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	err = table.ScanBatches(tx, proj, core.NewIntPred(0, 100, 199), func(b *core.Batch) bool {
		if b.NumCols() != 1 {
			t.Fatalf("projection leaked hidden column: %d cols", b.NumCols())
		}
		n += b.Len()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// ids 100..199 all live in the first (frozen) block and none are
	// deleted there.
	if n != 100 {
		t.Fatalf("matched %d rows, want 100", n)
	}
}

func TestScanBatchesStopEarly(t *testing.T) {
	m, table := mixedTable(t)
	tx := m.Begin()
	defer m.Commit(tx, nil)
	calls := 0
	err := table.ScanBatches(tx, nil, nil, func(b *core.Batch) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("scan continued after stop: %d calls", calls)
	}
}

func TestZoneMapPruning(t *testing.T) {
	m, table := scanEnv(t)
	for b := int64(0); b < 4; b++ {
		insertN(t, m, table, b*1000, b*1000+100, 0)
		sealBlock(table)
	}
	freezeBlocks(t, m, table.Blocks()[:4], transform.ModeGather)

	tx := m.Begin()
	defer m.Commit(tx, nil)
	before := table.ScanStatsSnapshot()
	got := batchScan(t, table, tx, core.NewIntPred(0, 2000, 2050))
	after := table.ScanStatsSnapshot()

	if len(got) != 51 {
		t.Fatalf("matched %d rows, want 51", len(got))
	}
	// Three of the four frozen blocks have disjoint id ranges: pruned by
	// zone map without taking the in-place read counter.
	if p := after.BlocksPruned - before.BlocksPruned; p != 3 {
		t.Fatalf("pruned %d blocks, want 3", p)
	}
	if f := after.BlocksFrozen - before.BlocksFrozen; f != 1 {
		t.Fatalf("scanned %d frozen blocks in place, want 1", f)
	}
	if v := after.BlocksVersioned - before.BlocksVersioned; v != 0 {
		t.Fatalf("versioned-scanned %d blocks, want 0", v)
	}
	if e := after.TuplesEmitted - before.TuplesEmitted; e != 51 {
		t.Fatalf("emitted %d tuples, want 51", e)
	}

	// A varlen predicate outside every block's [min,max] prunes everything.
	before = table.ScanStatsSnapshot()
	got = batchScan(t, table, tx, core.NewBytesPred(1, []byte("zzz"), nil, false, false))
	after = table.ScanStatsSnapshot()
	if len(got) != 0 {
		t.Fatalf("impossible bytes pred matched %d rows", len(got))
	}
	if p := after.BlocksPruned - before.BlocksPruned; p != 4 {
		t.Fatalf("pruned %d blocks, want 4", p)
	}
	if f := after.BlocksFrozen - before.BlocksFrozen; f != 0 {
		t.Fatalf("in-place counter taken on %d pruned blocks", f)
	}
}

// TestZoneMapPruningUnfreezeMidScan drives the race the pruning protocol
// must survive: a block is pruned by zone map, then a writer un-freezes it
// mid-scan and installs a value that WOULD match the predicate. The
// in-flight scan's snapshot predates the write, so the result must not
// change; a later snapshot must see the new value through the hot path.
func TestZoneMapPruningUnfreezeMidScan(t *testing.T) {
	m, table := scanEnv(t)
	insertN(t, m, table, 5000, 5100, 0) // block A: ids 5000.., pruned
	sealBlock(table)
	insertN(t, m, table, 0, 100, 0) // block B: ids 0..99, matches
	sealBlock(table)
	freezeBlocks(t, m, table.Blocks()[:2], transform.ModeGather)

	// Find a slot in the pruned block to rewrite mid-scan.
	var bSlot storage.TupleSlot
	{
		tx := m.Begin()
		_ = table.Scan(tx, table.AllColumnsProjection(), func(slot storage.TupleSlot, row *storage.ProjectedRow) bool {
			if row.Int64(0) == 5000 {
				bSlot = slot
				return false
			}
			return true
		})
		m.Commit(tx, nil)
	}

	pred := core.NewIntPred(0, 0, 99) // matches block B only; A is pruned
	tx := m.Begin()
	pruneBase := table.ScanStatsSnapshot().BlocksPruned
	got := 0
	err := table.ScanBatches(tx, nil, pred, func(b *core.Batch) bool {
		// Mid-scan: block A has already been pruned (the scan visits it
		// first). Un-freeze it by writing id 5000 -> 50, which matches the
		// predicate but commits after the scan's snapshot.
		wtx := m.Begin()
		proj, _ := storage.NewProjection(table.Layout(), []storage.ColumnID{0})
		up := proj.NewRow()
		up.SetInt64(0, 50)
		if err := table.Update(wtx, bSlot, up); err != nil {
			t.Errorf("mid-scan update: %v", err)
		}
		m.Commit(wtx, nil)
		got += b.Len()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	if got != 100 {
		t.Fatalf("in-flight scan saw %d rows, want 100 (snapshot predates the write)", got)
	}
	if p := table.ScanStatsSnapshot().BlocksPruned - pruneBase; p != 1 {
		t.Fatalf("pruned %d blocks mid-scan, want 1", p)
	}

	// A fresh snapshot must see the thawed block's new value via the
	// versioned path (zone map is gone). Count rows, not distinct ids: the
	// rewritten row's id duplicates one of block B's.
	tx2 := m.Begin()
	defer m.Commit(tx2, nil)
	rows2, saw50 := 0, 0
	err = table.ScanBatches(tx2, nil, pred, func(b *core.Batch) bool {
		for i := 0; i < b.Len(); i++ {
			rows2++
			if b.Int64(0, i) == 50 {
				saw50++
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows2 != 101 {
		t.Fatalf("fresh scan saw %d rows, want 101", rows2)
	}
	if saw50 != 2 {
		t.Fatalf("fresh scan saw id 50 %d times, want 2 (block B's own + the rewritten row)", saw50)
	}
}
