package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mainline/internal/storage"
	"mainline/internal/txn"
)

// testEnv wires a registry, manager, and a two-column table (int64, varlen).
func testEnv(t *testing.T) (*txn.Manager, *DataTable) {
	t.Helper()
	reg := storage.NewRegistry()
	layout, err := storage.NewBlockLayout([]storage.AttrDef{storage.FixedAttr(8), storage.VarlenAttr()})
	if err != nil {
		t.Fatal(err)
	}
	m := txn.NewManager(reg)
	table := NewDataTable(reg, layout, 1, "test")
	return m, table
}

func insertRow(t *testing.T, m *txn.Manager, table *DataTable, id int64, name string) storage.TupleSlot {
	t.Helper()
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, id)
	row.SetVarlen(1, []byte(name))
	slot, err := table.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	return slot
}

func readRow(t *testing.T, m *txn.Manager, table *DataTable, slot storage.TupleSlot) (int64, string, bool) {
	t.Helper()
	tx := m.Begin()
	defer m.Commit(tx, nil)
	out := table.AllColumnsProjection().NewRow()
	found, err := table.Select(tx, slot, out)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		return 0, "", false
	}
	return out.Int64(0), string(out.Varlen(1)), true
}

func TestInsertSelect(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 101, "JOE")
	id, name, ok := readRow(t, m, table, slot)
	if !ok || id != 101 || name != "JOE" {
		t.Fatalf("got (%d, %q, %v)", id, name, ok)
	}
}

func TestInsertNotVisibleToConcurrentSnapshot(t *testing.T) {
	m, table := testEnv(t)
	early := m.Begin() // snapshot before the insert
	slot := insertRow(t, m, table, 1, "x")
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(early, slot, out)
	if found {
		t.Fatal("snapshot sees later insert")
	}
	m.Commit(early, nil)
	// A new transaction sees it.
	if _, _, ok := readRow(t, m, table, slot); !ok {
		t.Fatal("committed insert invisible to new txn")
	}
}

func TestUncommittedInsertInvisible(t *testing.T) {
	m, table := testEnv(t)
	writer := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 5)
	row.SetVarlen(1, []byte("pending"))
	slot, err := table.Insert(writer, row)
	if err != nil {
		t.Fatal(err)
	}
	// Another transaction must not see it...
	if _, _, ok := readRow(t, m, table, slot); ok {
		t.Fatal("uncommitted insert visible")
	}
	// ...but the writer sees its own write.
	own := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(writer, slot, own)
	if !found || own.Int64(0) != 5 {
		t.Fatal("writer cannot see own insert")
	}
	m.Commit(writer, nil)
}

func TestUpdateVersionVisibility(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "JOE")

	// Reader with a snapshot before the update.
	early := m.Begin()

	writer := m.Begin()
	upd := storage.MustProjection(table.Layout(), []storage.ColumnID{1}).NewRow()
	upd.SetVarlen(0, []byte("ANNA"))
	if err := table.Update(writer, slot, upd); err != nil {
		t.Fatal(err)
	}

	// Early reader still sees JOE (uncommitted update invisible).
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(early, slot, out)
	if !found || string(out.Varlen(1)) != "JOE" {
		t.Fatalf("early reader sees %q", out.Varlen(1))
	}
	m.Commit(writer, nil)
	// Early reader STILL sees JOE: snapshot isolation.
	out.Reset()
	found, _ = table.Select(early, slot, out)
	if !found || string(out.Varlen(1)) != "JOE" {
		t.Fatalf("after commit, early reader sees %q", out.Varlen(1))
	}
	m.Commit(early, nil)
	// Fresh reader sees ANNA.
	_, name, ok := readRow(t, m, table, slot)
	if !ok || name != "ANNA" {
		t.Fatalf("fresh reader sees %q", name)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "v")
	t1 := m.Begin()
	t2 := m.Begin()
	upd := storage.MustProjection(table.Layout(), []storage.ColumnID{0})
	u1 := upd.NewRow()
	u1.SetInt64(0, 100)
	if err := table.Update(t1, slot, u1); err != nil {
		t.Fatal(err)
	}
	u2 := upd.NewRow()
	u2.SetInt64(0, 200)
	if err := table.Update(t2, slot, u2); err != ErrWriteConflict {
		t.Fatalf("concurrent update err = %v, want conflict", err)
	}
	m.Commit(t1, nil)
	// t2's snapshot predates t1's commit: still a conflict (first-updater wins).
	if err := table.Update(t2, slot, u2); err != ErrWriteConflict {
		t.Fatalf("post-commit update err = %v, want conflict", err)
	}
	m.Abort(t2)
	// A fresh transaction may update.
	t3 := m.Begin()
	u3 := upd.NewRow()
	u3.SetInt64(0, 300)
	if err := table.Update(t3, slot, u3); err != nil {
		t.Fatalf("fresh update err = %v", err)
	}
	m.Commit(t3, nil)
	id, _, _ := readRow(t, m, table, slot)
	if id != 300 {
		t.Fatalf("final id = %d", id)
	}
}

func TestOwnWriteChaining(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "a")
	tx := m.Begin()
	upd := storage.MustProjection(table.Layout(), []storage.ColumnID{0})
	for i := int64(0); i < 5; i++ {
		u := upd.NewRow()
		u.SetInt64(0, 10+i)
		if err := table.Update(tx, slot, u); err != nil {
			t.Fatalf("own update %d: %v", i, err)
		}
	}
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(tx, slot, out)
	if !found || out.Int64(0) != 14 {
		t.Fatalf("own read = %d", out.Int64(0))
	}
	m.Commit(tx, nil)
	id, _, _ := readRow(t, m, table, slot)
	if id != 14 {
		t.Fatalf("committed id = %d", id)
	}
}

func TestDeleteVisibility(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "gone")
	early := m.Begin()
	deleter := m.Begin()
	if err := table.Delete(deleter, slot); err != nil {
		t.Fatal(err)
	}
	m.Commit(deleter, nil)
	// Early snapshot still sees the tuple.
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(early, slot, out)
	if !found || string(out.Varlen(1)) != "gone" {
		t.Fatal("early reader lost deleted tuple")
	}
	m.Commit(early, nil)
	// New snapshot does not.
	if _, _, ok := readRow(t, m, table, slot); ok {
		t.Fatal("deleted tuple visible to new txn")
	}
	// Updating a deleted tuple fails.
	tx := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{0}).NewRow()
	u.SetInt64(0, 9)
	if err := table.Update(tx, slot, u); err != ErrNotFound {
		t.Fatalf("update deleted: %v", err)
	}
	if err := table.Delete(tx, slot); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	m.Abort(tx)
}

func TestAbortedInsertInvisible(t *testing.T) {
	m, table := testEnv(t)
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 77)
	row.SetVarlen(1, []byte("phantom"))
	slot, err := table.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	m.Abort(tx)
	if _, _, ok := readRow(t, m, table, slot); ok {
		t.Fatal("aborted insert visible")
	}
}

func TestAbortedUpdateRestores(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "original-rather-long-value")
	tx := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{1}).NewRow()
	u.SetVarlen(0, []byte("scribbled-over-with-junk"))
	if err := table.Update(tx, slot, u); err != nil {
		t.Fatal(err)
	}
	m.Abort(tx)
	_, name, ok := readRow(t, m, table, slot)
	if !ok || name != "original-rather-long-value" {
		t.Fatalf("after abort: %q", name)
	}
}

func TestScanVisibleSet(t *testing.T) {
	m, table := testEnv(t)
	var slots []storage.TupleSlot
	for i := 0; i < 20; i++ {
		slots = append(slots, insertRow(t, m, table, int64(i), fmt.Sprintf("row-%d", i)))
	}
	// Delete the even rows.
	tx := m.Begin()
	for i := 0; i < 20; i += 2 {
		if err := table.Delete(tx, slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	m.Commit(tx, nil)

	reader := m.Begin()
	sum := int64(0)
	count := 0
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0})
	err := table.Scan(reader, proj, func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
		sum += row.Int64(0)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Commit(reader, nil)
	if count != 10 {
		t.Fatalf("scan count = %d", count)
	}
	if sum != 1+3+5+7+9+11+13+15+17+19 {
		t.Fatalf("scan sum = %d", sum)
	}
}

func TestScanEarlyStop(t *testing.T) {
	m, table := testEnv(t)
	for i := 0; i < 10; i++ {
		insertRow(t, m, table, int64(i), "x")
	}
	tx := m.Begin()
	defer m.Commit(tx, nil)
	n := 0
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0})
	_ = table.Scan(tx, proj, func(storage.TupleSlot, *storage.ProjectedRow) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d", n)
	}
}

func TestMultiBlockGrowth(t *testing.T) {
	m, table := testEnv(t)
	// Force growth past one block by faking a small remaining capacity.
	table.Blocks()[0].SetInsertHead(table.Layout().NumSlots - 2)
	for i := 0; i < 10; i++ {
		insertRow(t, m, table, int64(i), "x")
	}
	if table.NumBlocks() < 2 {
		t.Fatalf("blocks = %d, want growth", table.NumBlocks())
	}
	tx := m.Begin()
	defer m.Commit(tx, nil)
	if got := table.CountVisible(tx); got != 10 {
		t.Fatalf("visible = %d", got)
	}
}

func TestInsertIntoSlotForCompaction(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "victim")
	// Delete it and let the chain be "pruned" (simulate GC).
	tx := m.Begin()
	if err := table.Delete(tx, slot); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	block := table.Registry().BlockFor(slot)
	block.SetVersionPtr(slot.Offset(), nil) // GC truncation stand-in

	// Occupied slots are refused.
	other := insertRow(t, m, table, 2, "occupied")
	tx2 := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 3)
	row.SetVarlen(0+1, []byte("recycled"))
	if err := table.InsertIntoSlot(tx2, other, row); err != ErrSlotOccupied {
		t.Fatalf("occupied: %v", err)
	}
	// The empty slot is reusable.
	if err := table.InsertIntoSlot(tx2, slot, row); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx2, nil)
	id, name, ok := readRow(t, m, table, slot)
	if !ok || id != 3 || name != "recycled" {
		t.Fatalf("recycled read: %d %q %v", id, name, ok)
	}
}

func TestFrozenInPlaceRead(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 42, "cold-value-longer-than-12")
	block := table.Registry().BlockFor(slot)
	// Simulate the transformer: chain pruned, block frozen.
	block.SetVersionPtr(slot.Offset(), nil)
	block.SetFrozenMeta(int(block.InsertHead()), make([]*storage.FrozenVarlen, table.Layout().NumColumns()), make([]int, table.Layout().NumColumns()))
	block.SetState(storage.StateFrozen)

	id, name, ok := readRow(t, m, table, slot)
	if !ok || id != 42 || name != "cold-value-longer-than-12" {
		t.Fatalf("frozen read: %d %q %v", id, name, ok)
	}
	// Writing flips the block hot.
	tx := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{0}).NewRow()
	u.SetInt64(0, 43)
	if err := table.Update(tx, slot, u); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	if block.State() != storage.StateHot {
		t.Fatalf("block state after write: %s", block.State())
	}
}

func TestSelectMissing(t *testing.T) {
	m, table := testEnv(t)
	tx := m.Begin()
	defer m.Commit(tx, nil)
	out := table.AllColumnsProjection().NewRow()
	// Unknown block.
	if found, _ := table.Select(tx, storage.NewTupleSlot(999999, 0), out); found {
		t.Fatal("found tuple in unknown block")
	}
	// Unallocated slot in a real block.
	b := table.Blocks()[0]
	if found, _ := table.Select(tx, storage.NewTupleSlot(b.ID, 17), out); found {
		t.Fatal("found tuple in never-used slot")
	}
}

func TestFinishedTxnRejected(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "x")
	tx := m.Begin()
	m.Commit(tx, nil)
	row := table.AllColumnsProjection().NewRow()
	if _, err := table.Insert(tx, row); err != ErrTxnFinished {
		t.Fatalf("insert: %v", err)
	}
	if err := table.Update(tx, slot, row); err != ErrTxnFinished {
		t.Fatalf("update: %v", err)
	}
	if err := table.Delete(tx, slot); err != ErrTxnFinished {
		t.Fatalf("delete: %v", err)
	}
}

// Snapshot-isolation stress: concurrent transfers preserve the total sum for
// every reader — readers never observe a partially applied transfer.
func TestConcurrentTransfersInvariant(t *testing.T) {
	m, table := testEnv(t)
	const accounts = 16
	const workers = 4
	const transfers = 300
	slots := make([]storage.TupleSlot, accounts)
	for i := range slots {
		slots[i] = insertRow(t, m, table, 1000, fmt.Sprintf("acct-%d", i))
	}
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Reader goroutine continuously validates the invariant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := m.Begin()
			sum := int64(0)
			out := proj.NewRow()
			for _, s := range slots {
				found, _ := table.Select(tx, s, out)
				if found {
					sum += out.Int64(0)
				}
			}
			m.Commit(tx, nil)
			if sum != accounts*1000 {
				t.Errorf("invariant broken: sum = %d", sum)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := uint64(seed)*2654435761 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < transfers; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				tx := m.Begin()
				out := proj.NewRow()
				okF, _ := table.Select(tx, slots[from], out)
				fromBal := out.Int64(0)
				okT, _ := table.Select(tx, slots[to], out)
				toBal := out.Int64(0)
				if !okF || !okT {
					m.Abort(tx)
					continue
				}
				u := proj.NewRow()
				u.SetInt64(0, fromBal-7)
				if table.Update(tx, slots[from], u) != nil {
					m.Abort(tx)
					continue
				}
				u.SetInt64(0, toBal+7)
				if table.Update(tx, slots[to], u) != nil {
					m.Abort(tx)
					continue
				}
				m.Commit(tx, nil)
			}
		}(w)
	}
	// Wait for writers, then stop the reader.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	writersDone := make(chan struct{})
	go func() {
		// Writers are wg members 2..; simplest: poll final sum after all work.
		<-done
		close(writersDone)
	}()
	// Let writers finish, then stop reader.
	for i := 0; i < workers*transfers; i++ {
		select {
		case <-writersDone:
			i = workers * transfers
		default:
		}
	}
	close(stop)
	<-done

	// Final sum must be exact.
	tx := m.Begin()
	sum := int64(0)
	out := proj.NewRow()
	for _, s := range slots {
		if found, _ := table.Select(tx, s, out); found {
			sum += out.Int64(0)
		}
	}
	m.Commit(tx, nil)
	if sum != accounts*1000 {
		t.Fatalf("final sum = %d", sum)
	}
}

// TestReadModifyWriteNoLostUpdates hammers a single counter tuple with
// begin/read/increment/commit cycles from several goroutines, with
// write-conflict retries and voluntary aborts mixed in. Snapshot isolation
// plus the no-write-write-conflict rule must make exactly the successful
// commits' increments stick: final value == successful commits. It is the
// regression test for two races the TPC-C consistency audit used to trip:
//
//   - The orphaned-undo-record abort race: an Update whose version-chain
//     CAS lost the install race left its never-published record in the
//     transaction's undo buffer, and Abort then "rolled back" the write
//     that never happened — stomping the winning writer's committed bytes
//     with a stale before-image (now prevented by DropLastUndo). The
//     conflict-retry aborts here exercise exactly that path.
//   - The Begin/stamping race: a snapshot beginning while a
//     lower-timestamped commit was still stamping its undo records read
//     the before-image (stale for that snapshot) and then passed canWrite
//     once stamping landed (now prevented by waitForInFlightCommits). The
//     filler updates (8 private rows per worker, mirroring a TPC-C
//     Payment's record count) widen the stamping window.
func TestReadModifyWriteNoLostUpdates(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 0, "counter")
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0})

	const workers = 8
	const increments = 400
	const fillers = 8
	filler := make([][]storage.TupleSlot, workers)
	for w := range filler {
		filler[w] = make([]storage.TupleSlot, fillers)
		for i := range filler[w] {
			filler[w][i] = insertRow(t, m, table, 0, fmt.Sprintf("fill-%d-%d", w, i))
		}
	}
	var committed atomic.Int64
	var wg sync.WaitGroup
	// Under TSan whole transactions are serialized (see rmwRaceEnabled);
	// the lock is uncontended no-op cost otherwise.
	var gate sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 97
			for i := 0; i < increments; i++ {
				for {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					ok := func() bool {
						if rmwRaceEnabled {
							gate.Lock()
							defer gate.Unlock()
						}
						tx := m.Begin()
						u := proj.NewRow()
						pad := func(lo, hi int) bool {
							for _, s := range filler[w][lo:hi] {
								u.SetInt64(0, int64(i))
								if table.Update(tx, s, u) != nil {
									return false
								}
							}
							return true
						}
						out := proj.NewRow()
						found, err := table.Select(tx, slot, out)
						if err != nil || !found || !pad(0, fillers/2) {
							m.Abort(tx)
							return false
						}
						u.SetInt64(0, out.Int64(0)+1)
						if table.Update(tx, slot, u) != nil || !pad(fillers/2, fillers) {
							m.Abort(tx)
							return false
						}
						if rng%4 == 0 {
							// Voluntary rollback after a successful update —
							// the TPC-C Payment abort shape; its increment
							// must vanish without disturbing anyone else's.
							m.Abort(tx)
							return false
						}
						m.Commit(tx, nil)
						committed.Add(1)
						return true
					}()
					if ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	tx := m.Begin()
	out := proj.NewRow()
	if found, err := table.Select(tx, slot, out); err != nil || !found {
		t.Fatalf("counter read failed: %v", err)
	}
	m.Commit(tx, nil)
	want := committed.Load()
	if int64(workers*increments) != want {
		t.Fatalf("committed %d increments, want %d", want, workers*increments)
	}
	if got := out.Int64(0); got != want {
		t.Fatalf("lost updates: counter = %d after %d committed increments", got, want)
	}
}

func TestVarlenUpdateInlineToSpill(t *testing.T) {
	m, table := testEnv(t)
	slot := insertRow(t, m, table, 1, "tiny")
	tx := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{1}).NewRow()
	long := bytes.Repeat([]byte("x"), 100)
	u.SetVarlen(0, long)
	if err := table.Update(tx, slot, u); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	_, name, _ := readRow(t, m, table, slot)
	if name != string(long) {
		t.Fatalf("spilled update read %d bytes", len(name))
	}
	// And back to inline.
	tx2 := m.Begin()
	u2 := storage.MustProjection(table.Layout(), []storage.ColumnID{1}).NewRow()
	u2.SetVarlen(0, []byte("sm"))
	if err := table.Update(tx2, slot, u2); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx2, nil)
	_, name, _ = readRow(t, m, table, slot)
	if name != "sm" {
		t.Fatalf("inline update read %q", name)
	}
}

func TestNullColumns(t *testing.T) {
	m, table := testEnv(t)
	tx := m.Begin()
	// Insert covering only column 0: column 1 becomes null.
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0})
	row := proj.NewRow()
	row.SetInt64(0, 5)
	slot, err := table.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	reader := m.Begin()
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(reader, slot, out)
	m.Commit(reader, nil)
	if !found || !out.IsNull(1) || out.IsNull(0) {
		t.Fatal("null column handling wrong")
	}
}
