//go:build race

package core_test

// scanRaceEnabled reports that the race detector is active. The
// equivalence stress then runs in phased mode: writers are joined before
// every scan comparison, so every byte access is happens-before ordered.
// The engine's in-place update with torn-read repair is deliberately racy
// at tuple byte level (see core.DataTable.Update and the CI race-job
// note), so the full-contact variant — readers overlapping in-flight
// writers on the same slots — cannot be TSan-clean by design.
const scanRaceEnabled = true
