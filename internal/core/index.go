package core

// Engine-managed secondary indexes. The paper pairs its MVCC delta-storage
// tables with latch-free ordered indexes maintained by the engine inside
// the transaction protocol (§3.1): index writes ride the transaction's
// write set and publish at commit, index reads return slot candidates that
// are re-verified against the version chain before they are emitted, and
// physical entry removal is deferred through the GC's action epoch so no
// active snapshot can lose a tuple it is entitled to see.
//
// The maintenance protocol, per table operation:
//
//	Insert  — buffer an entry insertion for the new slot's key.
//	Update  — when the update overlaps the index's key columns, buffer a
//	          removal of the pre-image key and an insertion of the new key
//	          (no-ops when the encoded keys are equal).
//	Delete  — buffer a removal of the current key.
//	Commit  — the transaction manager publishes insertions inside the
//	          commit latch and hands removals to the GC deferrer.
//	Abort   — the buffered ops are dropped; nothing ever hit the tree.
//
// Readers therefore tolerate two transient states: an entry whose version
// is not yet (or never) visible to them, and a missing removal for a tuple
// they can no longer see. Both are resolved by re-reading the slot through
// the table's MVCC protocol and re-encoding its key.

import (
	"bytes"
	"sync"
	"sync/atomic"

	"mainline/internal/index"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// KeyColKind classifies an indexed column for order-preserving encoding.
type KeyColKind uint8

const (
	// KeyInt is a fixed-width signed integer (1, 2, 4, or 8 bytes).
	KeyInt KeyColKind = iota
	// KeyFloat is a FLOAT64 column.
	KeyFloat
	// KeyBytes is a variable-length (STRING/BINARY) column.
	KeyBytes
)

// KeyCol describes one column of an index key: which storage column it
// reads and how its value is encoded.
type KeyCol struct {
	// Col is the storage column the key component reads.
	Col storage.ColumnID
	// Kind selects the encoding.
	Kind KeyColKind
	// Width is the fixed-width byte size (KeyInt only).
	Width int
}

// IndexCounters is a point-in-time snapshot of one index's activity.
type IndexCounters struct {
	// Entries is the current number of live (key, slot) pairs, stale
	// entries awaiting deferred removal included.
	Entries int64
	// Lookups counts point reads (GetVisible); RangeScans counts
	// Ascend/AscendPrefix calls.
	Lookups    int64
	RangeScans int64
	// SlotsReverified counts candidate slots re-checked through the MVCC
	// version chain; StaleFiltered counts the candidates rejected by that
	// check (invisible version, or key no longer matching).
	SlotsReverified int64
	StaleFiltered   int64
	// EntriesPublished counts insertions published at commit;
	// EntriesRetired counts deferred removals that have physically run.
	EntriesPublished int64
	EntriesRetired   int64
}

// TableIndex is one engine-managed secondary index over a DataTable. It
// implements txn.IndexSink (the commit protocol's write side); reads go
// through GetVisible / Ascend / AscendPrefix, which re-verify every
// candidate slot against the version chain.
type TableIndex struct {
	name  string
	cols  []KeyCol
	table *DataTable
	tree  index.Index

	// keyProj projects exactly the key columns, for pre-image reads and
	// candidate verification.
	keyProj *storage.Projection
	// keyHint sizes fresh key builders.
	keyHint int

	scratch sync.Pool // *indexScratch

	lookups    atomic.Int64
	rangeScans atomic.Int64
	reverified atomic.Int64
	stale      atomic.Int64
	published  atomic.Int64
	retired    atomic.Int64
}

// indexScratch is the pooled per-operation working set of an index read.
type indexScratch struct {
	keyRow *storage.ProjectedRow
	kb     *index.KeyBuilder
	slots  []storage.TupleSlot
}

// NewTableIndex builds an index over t keyed by cols, backed by tree. The
// caller attaches it with AttachIndex (and backfills if the table already
// holds rows).
func NewTableIndex(t *DataTable, name string, cols []KeyCol, tree index.Index) (*TableIndex, error) {
	ids := make([]storage.ColumnID, len(cols))
	hint := 0
	for i, c := range cols {
		ids[i] = c.Col
		switch c.Kind {
		case KeyBytes:
			hint += 16
		case KeyFloat:
			hint += 8
		default:
			hint += c.Width
		}
	}
	proj, err := storage.NewProjection(t.Layout(), ids)
	if err != nil {
		return nil, err
	}
	ti := &TableIndex{name: name, cols: cols, table: t, tree: tree, keyProj: proj, keyHint: hint}
	ti.scratch.New = func() any {
		return &indexScratch{keyRow: proj.NewRow(), kb: index.NewKeyBuilder(hint)}
	}
	return ti, nil
}

// Name returns the index's registered name.
func (ti *TableIndex) Name() string { return ti.name }

// KeyColumns returns the storage columns forming the key, in key order.
func (ti *TableIndex) KeyColumns() []storage.ColumnID {
	ids := make([]storage.ColumnID, len(ti.cols))
	for i, c := range ti.cols {
		ids[i] = c.Col
	}
	return ids
}

// NumKeyColumns returns the key arity.
func (ti *TableIndex) NumKeyColumns() int { return len(ti.cols) }

// Len returns the number of live entries (stale ones included until their
// deferred removal runs).
func (ti *TableIndex) Len() int { return ti.tree.Len() }

// Table returns the indexed table.
func (ti *TableIndex) Table() *DataTable { return ti.table }

// Counters snapshots the index's activity counters.
func (ti *TableIndex) Counters() IndexCounters {
	return IndexCounters{
		Entries:          int64(ti.tree.Len()),
		Lookups:          ti.lookups.Load(),
		RangeScans:       ti.rangeScans.Load(),
		SlotsReverified:  ti.reverified.Load(),
		StaleFiltered:    ti.stale.Load(),
		EntriesPublished: ti.published.Load(),
		EntriesRetired:   ti.retired.Load(),
	}
}

// PublishEntry implements txn.IndexSink: the commit protocol makes a
// buffered insertion live. Publishes are reference-counted (InsertMulti):
// every published instance is cancelled by exactly one deferred removal,
// so a (key, slot) pair that is removed and later re-established — a row
// re-keyed A→B→A, or a compaction slot reuse — survives the earlier
// incarnation's still-inflight removal.
func (ti *TableIndex) PublishEntry(key []byte, slot storage.TupleSlot) {
	ti.tree.InsertMulti(key, slot)
	ti.published.Add(1)
}

// RemoveEntry implements txn.IndexSink: physical removal of a retired
// entry, invoked by the GC once every snapshot active at the owning
// transaction's commit has finished.
func (ti *TableIndex) RemoveEntry(key []byte, slot storage.TupleSlot) {
	ti.tree.Delete(key, slot)
	ti.retired.Add(1)
}

// getScratch / putScratch recycle the per-read working set.
func (ti *TableIndex) getScratch() *indexScratch {
	return ti.scratch.Get().(*indexScratch)
}

func (ti *TableIndex) putScratch(sc *indexScratch) {
	sc.slots = sc.slots[:0]
	ti.scratch.Put(sc)
}

// appendKeyCol encodes one key component from projection position i of row.
func appendKeyCol(kb *index.KeyBuilder, c KeyCol, row *storage.ProjectedRow, i int) {
	switch c.Kind {
	case KeyBytes:
		kb.RawBytes(row.Varlen(i))
	case KeyFloat:
		kb.Float64(row.Float64(i))
	default:
		switch c.Width {
		case 8:
			kb.Int64(row.Int64(i))
		case 4:
			kb.Int32(row.Int32(i))
		case 2:
			kb.Int16(row.Int16(i))
		default:
			kb.Int8(row.Int8(i))
		}
	}
}

// encodeFromRow encodes row's key into kb (reset first). It reports false —
// the row is not indexed — when a key column is absent from row's
// projection or NULL (partial-index semantics: NULL never enters the
// tree, mirroring the partial rows Insert accepts).
func (ti *TableIndex) encodeFromRow(row *storage.ProjectedRow, kb *index.KeyBuilder) bool {
	kb.Reset()
	for _, c := range ti.cols {
		i := row.P.IndexOf(c.Col)
		if i < 0 || row.IsNull(i) {
			return false
		}
		appendKeyCol(kb, c, row, i)
	}
	return true
}

// keyForRow returns an owned encoded key for row, or nil when the row is
// not indexed (NULL or absent key column).
func (ti *TableIndex) keyForRow(row *storage.ProjectedRow) []byte {
	kb := index.NewKeyBuilder(ti.keyHint)
	if !ti.encodeFromRow(row, kb) {
		return nil
	}
	return kb.Bytes()
}

// keyWithOverlay encodes the key of base (a keyProj row holding the
// current values) with upd's values overlaid — the post-update key. nil
// when a key column ends up NULL.
func (ti *TableIndex) keyWithOverlay(base, upd *storage.ProjectedRow) []byte {
	kb := index.NewKeyBuilder(ti.keyHint)
	for ki, c := range ti.cols {
		if j := upd.P.IndexOf(c.Col); j >= 0 {
			if upd.IsNull(j) {
				return nil
			}
			appendKeyCol(kb, c, upd, j)
			continue
		}
		if base.IsNull(ki) {
			return nil
		}
		appendKeyCol(kb, c, base, ki)
	}
	return kb.Bytes()
}

// overlaps reports whether p writes any of the index's key columns.
func (ti *TableIndex) overlaps(p *storage.Projection) bool {
	for _, c := range ti.cols {
		if p.IndexOf(c.Col) >= 0 {
			return true
		}
	}
	return false
}

// verify re-checks one candidate slot: the version of the tuple visible to
// tx must exist and must still carry the sought key. This is what lets the
// trees hold stale entries (deferred removals, uncommitted inserts,
// re-keyed updates) without ever corrupting a read.
func (ti *TableIndex) verify(tx *txn.Transaction, key []byte, slot storage.TupleSlot, sc *indexScratch) bool {
	ti.reverified.Add(1)
	sc.keyRow.Reset()
	found, _ := ti.table.Select(tx, slot, sc.keyRow)
	if !found || !ti.encodeFromRow(sc.keyRow, sc.kb) || !bytes.Equal(sc.kb.Bytes(), key) {
		ti.stale.Add(1)
		return false
	}
	return true
}

// emit verifies a candidate and, when out is non-nil, materializes the
// visible version into it before invoking fn. Returns false only when fn
// stopped the iteration.
func (ti *TableIndex) emit(tx *txn.Transaction, key []byte, slot storage.TupleSlot, out *storage.ProjectedRow, sc *indexScratch, fn func(storage.TupleSlot, *storage.ProjectedRow) bool) bool {
	if !ti.verify(tx, key, slot, sc) {
		return true
	}
	if out != nil {
		out.Reset()
		if found, _ := ti.table.Select(tx, slot, out); !found {
			return true
		}
	}
	return fn(slot, out)
}

// GetVisible returns the slot of the tuple with the given key visible to
// tx, materializing it into out when out is non-nil. Candidates come from
// the tree plus the transaction's own unpublished insertions, and each is
// re-verified through the version chain; stale entries are skipped, so a
// hit is always a tuple tx is entitled to see.
func (ti *TableIndex) GetVisible(tx *txn.Transaction, key []byte, out *storage.ProjectedRow) (storage.TupleSlot, bool) {
	ti.lookups.Add(1)
	sc := ti.getScratch()
	defer ti.putScratch(sc)
	sc.slots = ti.tree.Get(key, sc.slots[:0])
	for _, op := range tx.IndexOps() {
		if op.Sink == txn.IndexSink(ti) && !op.Remove && bytes.Equal(op.Key, key) {
			sc.slots = append(sc.slots, op.Slot)
		}
	}
	for _, slot := range sc.slots {
		if !ti.verify(tx, key, slot, sc) {
			continue
		}
		if out != nil {
			out.Reset()
			if found, _ := ti.table.Select(tx, slot, out); !found {
				continue
			}
		}
		return slot, true
	}
	return 0, false
}

// pendingInRange collects tx's own unpublished insertions into [lo, hi)
// (hi nil = unbounded), sorted by key, so range reads see the
// transaction's uncommitted writes.
func (ti *TableIndex) pendingInRange(tx *txn.Transaction, lo, hi []byte) []txn.IndexOp {
	var pend []txn.IndexOp
	for _, op := range tx.IndexOps() {
		if op.Sink != txn.IndexSink(ti) || op.Remove {
			continue
		}
		if bytes.Compare(op.Key, lo) < 0 || (hi != nil && bytes.Compare(op.Key, hi) >= 0) {
			continue
		}
		pend = append(pend, op)
	}
	if len(pend) > 1 {
		for i := 1; i < len(pend); i++ { // tiny insertion sort; write sets are small
			for j := i; j > 0 && bytes.Compare(pend[j-1].Key, pend[j].Key) > 0; j-- {
				pend[j-1], pend[j] = pend[j], pend[j-1]
			}
		}
	}
	return pend
}

// Ascend visits the index entries in [lo, hi) in key order (hi nil =
// unbounded), re-verifying each candidate against tx's snapshot. When out
// is non-nil the visible version is materialized into it before fn runs
// (fn receives out; it must not retain it); with out nil, fn receives only
// verified slots. The transaction's own unpublished insertions are merged
// in key order. fn returning false stops the scan.
//
// fn runs while an index shard latch is held: it must not commit or abort
// a transaction that wrote this index (buffered writes through the table
// are fine — they touch no tree until commit).
func (ti *TableIndex) Ascend(tx *txn.Transaction, lo, hi []byte, out *storage.ProjectedRow, fn func(slot storage.TupleSlot, row *storage.ProjectedRow) bool) {
	ti.rangeScans.Add(1)
	sc := ti.getScratch()
	defer ti.putScratch(sc)
	pend := ti.pendingInRange(tx, lo, hi)
	pi := 0
	stopped := false
	// Reference-counted publishes can transiently hold the same (key,
	// slot) instance more than once; emit each pair at most once per key.
	var curKey []byte
	var curSlots []storage.TupleSlot
	ti.tree.Scan(lo, hi, func(k []byte, s storage.TupleSlot) bool {
		for pi < len(pend) && bytes.Compare(pend[pi].Key, k) <= 0 {
			if !ti.emit(tx, pend[pi].Key, pend[pi].Slot, out, sc, fn) {
				stopped = true
				return false
			}
			pi++
		}
		if !bytes.Equal(curKey, k) {
			curKey = append(curKey[:0], k...)
			curSlots = curSlots[:0]
		} else {
			for _, seen := range curSlots {
				if seen == s {
					return true
				}
			}
		}
		curSlots = append(curSlots, s)
		if !ti.emit(tx, k, s, out, sc, fn) {
			stopped = true
			return false
		}
		return true
	})
	for !stopped && pi < len(pend) {
		if !ti.emit(tx, pend[pi].Key, pend[pi].Slot, out, sc, fn) {
			return
		}
		pi++
	}
}

// AscendPrefix visits every entry whose key starts with prefix, in key
// order, with Ascend's verification and materialization semantics.
func (ti *TableIndex) AscendPrefix(tx *txn.Transaction, prefix []byte, out *storage.ProjectedRow, fn func(slot storage.TupleSlot, row *storage.ProjectedRow) bool) {
	ti.Ascend(tx, prefix, index.PrefixEnd(prefix), out, fn)
}

// Backfill populates the tree from every tuple visible to tx — index
// creation over a non-empty table, and the recovery rebuild. Concurrent
// maintenance may insert the same (key, slot) pair; the trees deduplicate.
// Returns the number of entries inserted.
func (ti *TableIndex) Backfill(tx *txn.Transaction) (int64, error) {
	var n int64
	kb := index.NewKeyBuilder(ti.keyHint)
	err := ti.table.Scan(tx, ti.keyProj, func(slot storage.TupleSlot, row *storage.ProjectedRow) bool {
		if ti.encodeFromRow(row, kb) {
			ti.tree.Insert(kb.Clone(), slot)
			n++
		}
		return true
	})
	return n, err
}

// --- DataTable side: attachment and write-path maintenance. ---

// AttachIndex activates maintenance of ti on every subsequent write to the
// table. Attach before backfilling a non-empty table: entries the backfill
// races with are deduplicated. The combination misses nothing ONLY once
// every transaction that began before the attach has finished — such
// writers buffer no deltas, so the backfill snapshot must start after
// them (the public CreateIndex drains them; single-threaded callers are
// safe by construction).
func (t *DataTable) AttachIndex(ti *TableIndex) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.indexList()
	grown := make([]*TableIndex, len(cur), len(cur)+1)
	copy(grown, cur)
	grown = append(grown, ti)
	t.indexes.Store(&grown)
}

// DetachIndex deactivates maintenance of ti (index-creation rollback when
// catalog persistence fails). Entries already buffered by in-flight
// transactions still publish; readers just can no longer reach the tree.
func (t *DataTable) DetachIndex(ti *TableIndex) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.indexList()
	kept := make([]*TableIndex, 0, len(cur))
	for _, x := range cur {
		if x != ti {
			kept = append(kept, x)
		}
	}
	t.indexes.Store(&kept)
}

// Indexes returns the attached indexes (shared slice; do not mutate).
func (t *DataTable) Indexes() []*TableIndex { return t.indexList() }

func (t *DataTable) indexList() []*TableIndex {
	p := t.indexes.Load()
	if p == nil {
		return nil
	}
	return *p
}

// bufferIndexInserts queues index insertions for a newly written row.
func (t *DataTable) bufferIndexInserts(tx *txn.Transaction, row *storage.ProjectedRow, slot storage.TupleSlot) {
	for _, ti := range t.indexList() {
		if key := ti.keyForRow(row); key != nil {
			tx.BufferIndexInsert(ti, key, slot)
		}
	}
}

// indexKeyChange is one index's (pre-image, post-image) key pair for an
// update that overlaps its key columns.
type indexKeyChange struct {
	ti     *TableIndex
	oldKey []byte // nil: pre-image was not indexed
	newKey []byte // nil: post-image is not indexed
}

// computeIndexUpdates captures, for each index whose key columns the
// update writes, the pre-image key (read in place — legal because the
// caller has passed canWrite, so the in-place image is the latest
// committed version or the transaction's own) and the post-image key.
// Must run BEFORE the in-place writes; the result is buffered only if the
// version-pointer CAS succeeds.
func (t *DataTable) computeIndexUpdates(block *storage.Block, offset uint32, update *storage.ProjectedRow) []indexKeyChange {
	var changes []indexKeyChange
	for _, ti := range t.indexList() {
		if !ti.overlaps(update.P) {
			continue
		}
		sc := ti.getScratch()
		sc.keyRow.Reset()
		t.readInPlace(block, offset, sc.keyRow, nil)
		var oldKey []byte
		if ti.encodeFromRow(sc.keyRow, sc.kb) {
			oldKey = sc.kb.Clone()
		}
		newKey := ti.keyWithOverlay(sc.keyRow, update)
		ti.putScratch(sc)
		if bytes.Equal(oldKey, newKey) {
			continue
		}
		changes = append(changes, indexKeyChange{ti: ti, oldKey: oldKey, newKey: newKey})
	}
	return changes
}

// bufferIndexUpdates queues the key changes computed by
// computeIndexUpdates once the update has won its version-pointer CAS.
func bufferIndexUpdates(tx *txn.Transaction, changes []indexKeyChange, slot storage.TupleSlot) {
	for _, ch := range changes {
		if ch.oldKey != nil {
			tx.BufferIndexRemove(ch.ti, ch.oldKey, slot)
		}
		if ch.newKey != nil {
			tx.BufferIndexInsert(ch.ti, ch.newKey, slot)
		}
	}
}

// computeIndexRemovals captures each index's current key for a tuple about
// to be deleted (same in-place legality argument as computeIndexUpdates).
func (t *DataTable) computeIndexRemovals(block *storage.Block, offset uint32) []indexKeyChange {
	var changes []indexKeyChange
	for _, ti := range t.indexList() {
		sc := ti.getScratch()
		sc.keyRow.Reset()
		t.readInPlace(block, offset, sc.keyRow, nil)
		if ti.encodeFromRow(sc.keyRow, sc.kb) {
			changes = append(changes, indexKeyChange{ti: ti, oldKey: sc.kb.Clone()})
		}
		ti.putScratch(sc)
	}
	return changes
}

// bufferIndexRemovals queues the removals computed by computeIndexRemovals
// once the delete has won its version-pointer CAS.
func bufferIndexRemovals(tx *txn.Transaction, changes []indexKeyChange, slot storage.TupleSlot) {
	for _, ch := range changes {
		tx.BufferIndexRemove(ch.ti, ch.oldKey, slot)
	}
}
