// Package objstore is the cold-tier object store: an S3-shaped key/value
// interface (Store) over immutable, content-addressed objects, with a
// local-filesystem implementation (FSStore) whose write path rides the
// engine's fault.FS seam so the PR 9 injector covers the cold tier for
// free. Objects are written once (PutIfAbsent is the idiom for
// content-hash keys — a second writer of the same bytes is a no-op) and
// read back whole (Get) or by range (ReadRange).
//
// The read path has no fault.FS analogue (fault.FS is write-only by
// design), so read-side chaos — fail-N-then-succeed Get, stalled
// ReadRange — is injected one level up by FaultStore, a Store wrapper
// with its own deterministic rule table. CountingStore wraps any Store
// with operation/byte counters; the oracle equivalence suite uses it to
// prove zone-map-pruned cold blocks are never fetched.
package objstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mainline/internal/fault"
)

// ErrNotFound reports a Get/ReadRange/Delete of a key with no object.
var ErrNotFound = errors.New("objstore: object not found")

// Store is the object-store surface the tiered storage layer needs.
// Implementations must be safe for concurrent use. Keys are opaque
// "/"-separated paths; objects are immutable once written.
type Store interface {
	// Put writes data at key, overwriting any existing object. The
	// object is durable when Put returns.
	Put(key string, data []byte) error
	// PutIfAbsent writes data at key only if no object exists there.
	// It reports whether this call created the object. With
	// content-hash keys this makes concurrent uploads of identical
	// bytes idempotent.
	PutIfAbsent(key string, data []byte) (created bool, err error)
	// Get reads the whole object at key. It returns ErrNotFound if no
	// object exists.
	Get(key string) ([]byte, error)
	// ReadRange reads n bytes starting at off from the object at key.
	// A range past the end of the object is an error.
	ReadRange(key string, off, n int64) ([]byte, error)
	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object at key. Deleting a missing key returns
	// ErrNotFound.
	Delete(key string) error
}

// FSStore is a Store rooted at a local directory. Key segments map to
// subdirectories; each Put is temp-file + fsync + rename + parent-dir
// fsync, so a crash mid-upload leaves at worst an orphan temp file,
// never a torn object under a live key. Writes go through the supplied
// fault.FS; reads use the os package directly (fault.FS has no read
// surface — wrap with FaultStore for read faults).
type FSStore struct {
	root string
	fsys fault.FS

	mu  sync.Mutex   // serializes PutIfAbsent existence-check + install
	seq atomic.Int64 // temp-file uniquifier
}

// NewFSStore opens (creating if needed) a Store rooted at dir. All
// writes are routed through fsys.
func NewFSStore(dir string, fsys fault.FS) (*FSStore, error) {
	if fsys == nil {
		fsys = fault.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("objstore: creating root %s: %w", dir, err)
	}
	return &FSStore{root: dir, fsys: fsys}, nil
}

// Root returns the directory the store is rooted at.
func (s *FSStore) Root() string { return s.root }

func (s *FSStore) path(key string) (string, error) {
	if key == "" || strings.HasPrefix(key, "/") || strings.Contains(key, "..") {
		return "", fmt.Errorf("objstore: invalid key %q", key)
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

func (s *FSStore) install(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := s.fsys.MkdirAll(dir); err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp-%d", p, s.seq.Add(1))
	f, err := s.fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		s.fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		s.fsys.Remove(tmp)
		return err
	}
	if err := s.fsys.Rename(tmp, p); err != nil {
		s.fsys.Remove(tmp)
		return err
	}
	return s.fsys.SyncDir(dir)
}

// Put implements Store.
func (s *FSStore) Put(key string, data []byte) error { return s.install(key, data) }

// PutIfAbsent implements Store.
func (s *FSStore) PutIfAbsent(key string, data []byte) (bool, error) {
	p, err := s.path(key)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, statErr := os.Stat(p)
	if statErr == nil {
		return false, nil
	}
	if !os.IsNotExist(statErr) {
		return false, statErr
	}
	if err := s.install(key, data); err != nil {
		return false, err
	}
	return true, nil
}

// Get implements Store.
func (s *FSStore) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return data, err
}

// ReadRange implements Store.
func (s *FSStore) ReadRange(key string, off, n int64) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("objstore: range [%d,%d) of %s: %w", off, off+n, key, err)
	}
	return buf, nil
}

// List implements Store.
func (s *FSStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if info.IsDir() || strings.Contains(info.Name(), ".tmp-") {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *FSStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if _, err := os.Stat(p); os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return s.fsys.Remove(p)
}
