package objstore

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StoreOp classifies one Store operation for FaultStore rule matching.
type StoreOp uint8

// Operations a FaultStore rule can target.
const (
	// OpAny matches every operation.
	OpAny StoreOp = iota
	// OpPut matches Put and PutIfAbsent.
	OpPut
	// OpGet matches Get.
	OpGet
	// OpReadRange matches ReadRange.
	OpReadRange
	// OpList matches List.
	OpList
	// OpDelete matches Delete.
	OpDelete
)

// Rule is one fault schedule for a FaultStore: after Skip matching calls
// pass through, the next Count (0 = unlimited) matching calls either
// return Err or stall for Stall before proceeding. Key matches by
// substring; empty matches every key. Rules compose: the first armed rule
// that matches fires.
type Rule struct {
	Op    StoreOp
	Key   string
	Skip  int
	Count int
	Err   error
	Stall time.Duration

	seen  int
	fired int
}

// FaultStore wraps a Store with a deterministic read/write fault
// schedule — the cold-tier analogue of fault.Injector, needed because
// fault.FS is write-only and cannot inject Get/ReadRange failures. Use
// it for "fail-N-then-succeed Get", "ENOSPC on Put", and "stall on
// ReadRange" chaos scenarios.
type FaultStore struct {
	inner Store

	mu    sync.Mutex
	rules []*Rule
	fired atomic.Int64
}

// NewFaultStore wraps inner with an empty rule table.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{inner: inner} }

// AddRule arms one fault rule.
func (s *FaultStore) AddRule(r Rule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rc := r
	s.rules = append(s.rules, &rc)
}

// FiredCount reports how many faults have fired so far.
func (s *FaultStore) FiredCount() int { return int(s.fired.Load()) }

// decide returns the error to inject (nil = pass through), sleeping out
// any stall first.
func (s *FaultStore) decide(op StoreOp, key string) error {
	s.mu.Lock()
	var hit *Rule
	for _, r := range s.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Key != "" && !strings.Contains(key, r.Key) {
			continue
		}
		r.seen++
		if r.seen <= r.Skip {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		hit = r
		break
	}
	s.mu.Unlock()
	if hit == nil {
		return nil
	}
	s.fired.Add(1)
	if hit.Stall > 0 {
		time.Sleep(hit.Stall)
	}
	return hit.Err
}

// Put implements Store.
func (s *FaultStore) Put(key string, data []byte) error {
	if err := s.decide(OpPut, key); err != nil {
		return err
	}
	return s.inner.Put(key, data)
}

// PutIfAbsent implements Store.
func (s *FaultStore) PutIfAbsent(key string, data []byte) (bool, error) {
	if err := s.decide(OpPut, key); err != nil {
		return false, err
	}
	return s.inner.PutIfAbsent(key, data)
}

// Get implements Store.
func (s *FaultStore) Get(key string) ([]byte, error) {
	if err := s.decide(OpGet, key); err != nil {
		return nil, err
	}
	return s.inner.Get(key)
}

// ReadRange implements Store.
func (s *FaultStore) ReadRange(key string, off, n int64) ([]byte, error) {
	if err := s.decide(OpReadRange, key); err != nil {
		return nil, err
	}
	return s.inner.ReadRange(key, off, n)
}

// List implements Store.
func (s *FaultStore) List(prefix string) ([]string, error) {
	if err := s.decide(OpList, prefix); err != nil {
		return nil, err
	}
	return s.inner.List(prefix)
}

// Delete implements Store.
func (s *FaultStore) Delete(key string) error {
	if err := s.decide(OpDelete, key); err != nil {
		return err
	}
	return s.inner.Delete(key)
}

// CountingStore wraps a Store with operation and byte counters. The
// equivalence suite uses one to assert that zone-map-pruned cold blocks
// incur zero object-store reads.
type CountingStore struct {
	inner Store

	gets       atomic.Int64
	puts       atomic.Int64
	rangeReads atomic.Int64
	bytesRead  atomic.Int64
	bytesPut   atomic.Int64
}

// NewCountingStore wraps inner with zeroed counters.
func NewCountingStore(inner Store) *CountingStore { return &CountingStore{inner: inner} }

// Gets reports completed Get calls.
func (s *CountingStore) Gets() int64 { return s.gets.Load() }

// Puts reports completed Put/PutIfAbsent calls that wrote.
func (s *CountingStore) Puts() int64 { return s.puts.Load() }

// RangeReads reports completed ReadRange calls.
func (s *CountingStore) RangeReads() int64 { return s.rangeReads.Load() }

// BytesRead reports total bytes returned by Get and ReadRange.
func (s *CountingStore) BytesRead() int64 { return s.bytesRead.Load() }

// BytesPut reports total bytes written by Put and created PutIfAbsent.
func (s *CountingStore) BytesPut() int64 { return s.bytesPut.Load() }

// Put implements Store.
func (s *CountingStore) Put(key string, data []byte) error {
	if err := s.inner.Put(key, data); err != nil {
		return err
	}
	s.puts.Add(1)
	s.bytesPut.Add(int64(len(data)))
	return nil
}

// PutIfAbsent implements Store.
func (s *CountingStore) PutIfAbsent(key string, data []byte) (bool, error) {
	created, err := s.inner.PutIfAbsent(key, data)
	if err != nil {
		return created, err
	}
	if created {
		s.puts.Add(1)
		s.bytesPut.Add(int64(len(data)))
	}
	return created, nil
}

// Get implements Store.
func (s *CountingStore) Get(key string) ([]byte, error) {
	data, err := s.inner.Get(key)
	if err != nil {
		return nil, err
	}
	s.gets.Add(1)
	s.bytesRead.Add(int64(len(data)))
	return data, nil
}

// ReadRange implements Store.
func (s *CountingStore) ReadRange(key string, off, n int64) ([]byte, error) {
	data, err := s.inner.ReadRange(key, off, n)
	if err != nil {
		return nil, err
	}
	s.rangeReads.Add(1)
	s.bytesRead.Add(int64(len(data)))
	return data, nil
}

// List implements Store.
func (s *CountingStore) List(prefix string) ([]string, error) { return s.inner.List(prefix) }

// Delete implements Store.
func (s *CountingStore) Delete(key string) error { return s.inner.Delete(key) }
