package objstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"mainline/internal/fault"
)

func newStore(t *testing.T) *FSStore {
	t.Helper()
	s, err := NewFSStore(filepath.Join(t.TempDir(), "objects"), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t)
	payload := []byte("hello cold world")
	if err := s.Put("blk/abc", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("blk/abc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	// Overwrite through Put is allowed (last write wins).
	if err := s.Put("blk/abc", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get("blk/abc")
	if string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
}

func TestGetNotFound(t *testing.T) {
	s := newStore(t)
	if _, err := s.Get("blk/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.ReadRange("blk/missing", 0, 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadRange(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Delete("blk/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(missing) = %v, want ErrNotFound", err)
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := newStore(t)
	created, err := s.PutIfAbsent("blk/x", []byte("first"))
	if err != nil || !created {
		t.Fatalf("first PutIfAbsent = (%v, %v), want created", created, err)
	}
	created, err = s.PutIfAbsent("blk/x", []byte("second"))
	if err != nil || created {
		t.Fatalf("second PutIfAbsent = (%v, %v), want not created", created, err)
	}
	got, _ := s.Get("blk/x")
	if string(got) != "first" {
		t.Fatalf("content = %q, want the first write preserved", got)
	}
}

func TestReadRange(t *testing.T) {
	s := newStore(t)
	if err := s.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange("k", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "3456" {
		t.Fatalf("ReadRange(3,4) = %q", got)
	}
	// A range past the end of the object is an error, not a short read.
	if _, err := s.ReadRange("k", 8, 10); err == nil {
		t.Fatal("ReadRange past EOF succeeded")
	}
}

func TestListSortedAndScoped(t *testing.T) {
	s := newStore(t)
	for _, k := range []string{"blk/c", "blk/a", "chunk/z", "blk/b"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List("blk/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"blk/a", "blk/b", "blk/c"}
	if len(keys) != len(want) {
		t.Fatalf("List = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("List = %v, want %v", keys, want)
		}
	}
	all, err := s.List("")
	if err != nil || len(all) != 4 {
		t.Fatalf("List(\"\") = %v, %v", all, err)
	}
}

func TestListSkipsTempFiles(t *testing.T) {
	s := newStore(t)
	if err := s.Put("blk/real", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-install: a stranded temp file in the tree.
	if err := os.WriteFile(filepath.Join(s.Root(), "blk", "dead.tmp-42"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("blk/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "blk/real" {
		t.Fatalf("List sees temp garbage: %v", keys)
	}
}

func TestKeyValidation(t *testing.T) {
	s := newStore(t)
	for _, bad := range []string{"", "/abs", "a/../../escape", ".."} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", bad)
		}
	}
}

func TestDelete(t *testing.T) {
	s := newStore(t)
	if err := s.Put("blk/d", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("blk/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("blk/d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v", err)
	}
}

// TestPutThroughFaultFSEnospc proves store writes ride the engine's
// fault.FS seam: an injected ENOSPC on write fails the Put and leaves no
// partial object visible.
func TestPutThroughFaultFSEnospc(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	inj := fault.NewInjector(fault.OS{}, 1)
	inj.AddRule(fault.Rule{Op: fault.OpWrite, Path: "objects", Count: 1, Err: syscall.ENOSPC})
	s, err := NewFSStore(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("blk/full", []byte("payload")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under ENOSPC = %v", err)
	}
	if _, err := s.Get("blk/full"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial object visible after failed Put: %v", err)
	}
	// The schedule is exhausted; the retry succeeds.
	if err := s.Put("blk/full", []byte("payload")); err != nil {
		t.Fatalf("retry after ENOSPC: %v", err)
	}
}

func TestFaultStoreFailNThenSucceed(t *testing.T) {
	inner := newStore(t)
	if err := inner.Put("blk/k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner)
	wantErr := errors.New("injected")
	fs.AddRule(Rule{Op: OpGet, Key: "blk/", Count: 2, Err: wantErr})
	for i := 0; i < 2; i++ {
		if _, err := fs.Get("blk/k"); !errors.Is(err, wantErr) {
			t.Fatalf("Get %d = %v, want injected error", i, err)
		}
	}
	if got, err := fs.Get("blk/k"); err != nil || string(got) != "v" {
		t.Fatalf("Get after schedule exhausted = %q, %v", got, err)
	}
	if fs.FiredCount() != 2 {
		t.Fatalf("FiredCount = %d, want 2", fs.FiredCount())
	}
}

func TestFaultStoreSkipAndOpScoping(t *testing.T) {
	inner := newStore(t)
	fs := NewFaultStore(inner)
	wantErr := errors.New("boom")
	// Skip the first Put, fail the second; Gets unaffected.
	fs.AddRule(Rule{Op: OpPut, Skip: 1, Count: 1, Err: wantErr})
	if err := fs.Put("a", []byte("1")); err != nil {
		t.Fatalf("first Put should pass: %v", err)
	}
	if err := fs.Put("b", []byte("2")); !errors.Is(err, wantErr) {
		t.Fatalf("second Put = %v, want injected", err)
	}
	if err := fs.Put("c", []byte("3")); err != nil {
		t.Fatalf("third Put should pass: %v", err)
	}
	if _, err := fs.Get("a"); err != nil {
		t.Fatalf("Get caught a Put-scoped rule: %v", err)
	}
}

func TestFaultStoreStall(t *testing.T) {
	inner := newStore(t)
	if err := inner.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner)
	fs.AddRule(Rule{Op: OpReadRange, Count: 1, Stall: 30 * time.Millisecond})
	t0 := time.Now()
	if _, err := fs.ReadRange("k", 0, 1); err != nil {
		t.Fatalf("stall-only rule must not fail the op: %v", err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("ReadRange returned in %v, want >= 30ms stall", d)
	}
}

func TestCountingStore(t *testing.T) {
	inner := newStore(t)
	cs := NewCountingStore(inner)
	if err := cs.Put("a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if created, err := cs.PutIfAbsent("b", []byte("123")); err != nil || !created {
		t.Fatal(err)
	}
	if _, err := cs.PutIfAbsent("b", []byte("123")); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.ReadRange("a", 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get("missing"); err == nil {
		t.Fatal("expected not found")
	}
	// 2 successful puts (the no-op PutIfAbsent doesn't count), 1
	// successful get, 1 range read; the failed get doesn't count.
	if cs.Puts() != 2 || cs.Gets() != 1 || cs.RangeReads() != 1 {
		t.Fatalf("counts = puts %d gets %d ranges %d", cs.Puts(), cs.Gets(), cs.RangeReads())
	}
	if cs.BytesPut() != 8 || cs.BytesRead() != 7 {
		t.Fatalf("bytes = put %d read %d", cs.BytesPut(), cs.BytesRead())
	}
}

// TestConcurrentPutIfAbsent races many writers at one key: exactly one
// must win and the content must be a complete single payload.
func TestConcurrentPutIfAbsent(t *testing.T) {
	s := newStore(t)
	const workers = 16
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, 1024)
			created, err := s.PutIfAbsent("blk/contended", payload)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if created {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d winners, want exactly 1", wins)
	}
	got, err := s.Get("blk/contended")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 {
		t.Fatalf("payload length %d", len(got))
	}
	for _, b := range got[1:] {
		if b != got[0] {
			t.Fatal("payload interleaves two writers")
		}
	}
}
