package gc

import (
	"testing"
	"time"

	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

func testEnv(t *testing.T) (*txn.Manager, *core.DataTable, *GarbageCollector) {
	t.Helper()
	reg := storage.NewRegistry()
	layout, err := storage.NewBlockLayout([]storage.AttrDef{storage.FixedAttr(8), storage.VarlenAttr()})
	if err != nil {
		t.Fatal(err)
	}
	m := txn.NewManager(reg)
	table := core.NewDataTable(reg, layout, 1, "gc-test")
	return m, table, New(m)
}

func insert(t *testing.T, m *txn.Manager, table *core.DataTable, id int64) storage.TupleSlot {
	t.Helper()
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, id)
	row.SetVarlen(1, []byte("value-long-enough-to-spill"))
	slot, err := table.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	return slot
}

func update(t *testing.T, m *txn.Manager, table *core.DataTable, slot storage.TupleSlot, id int64) {
	t.Helper()
	tx := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{0}).NewRow()
	u.SetInt64(0, id)
	if err := table.Update(tx, slot, u); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
}

func TestGCUnlinksInvisibleChains(t *testing.T) {
	m, table, g := testEnv(t)
	slot := insert(t, m, table, 1)
	for i := int64(2); i <= 5; i++ {
		update(t, m, table, slot, i)
	}
	block := table.Registry().BlockFor(slot)
	if block.VersionPtr(slot.Offset()) == nil {
		t.Fatal("expected a version chain before GC")
	}
	st := g.RunOnce()
	if st.Drained != 5 {
		t.Fatalf("drained = %d", st.Drained)
	}
	if st.Unlinked != 5 {
		t.Fatalf("unlinked = %d", st.Unlinked)
	}
	if block.VersionPtr(slot.Offset()) != nil {
		t.Fatal("chain not truncated")
	}
	// Data untouched by pruning.
	tx := m.Begin()
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(tx, slot, out)
	m.Commit(tx, nil)
	if !found || out.Int64(0) != 5 {
		t.Fatalf("post-GC read: %d found=%v", out.Int64(0), found)
	}
}

func TestGCRespectsActiveReaders(t *testing.T) {
	m, table, g := testEnv(t)
	slot := insert(t, m, table, 1)
	reader := m.Begin() // holds a snapshot at version 1
	update(t, m, table, slot, 2)

	st := g.RunOnce()
	// The update's record is still needed by reader: chain must survive.
	block := table.Registry().BlockFor(slot)
	if block.VersionPtr(slot.Offset()) == nil {
		t.Fatal("chain pruned while reader needs it")
	}
	_ = st
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(reader, slot, out)
	if !found || out.Int64(0) != 1 {
		t.Fatalf("reader sees %d", out.Int64(0))
	}
	m.Commit(reader, nil)
	// Now the chain can go.
	g.RunOnce()
	g.RunOnce()
	if block.VersionPtr(slot.Offset()) != nil {
		t.Fatal("chain survived after reader finished")
	}
}

func TestGCTwoPhaseDeallocation(t *testing.T) {
	m, table, g := testEnv(t)
	pool := m.SegmentPool()
	slot := insert(t, m, table, 1)
	update(t, m, table, slot, 2)
	if pool.Outstanding() == 0 {
		t.Fatal("expected outstanding segments")
	}
	// First run unlinks but must NOT deallocate in the same pass.
	g.RunOnce()
	_, dealloc := g.Pending()
	if dealloc == 0 {
		t.Fatal("nothing pending deallocation after unlink")
	}
	if pool.Outstanding() == 0 {
		t.Fatal("segments deallocated in unlink pass")
	}
	// Second run (no new active txns) releases the segments.
	g.RunOnce()
	if pool.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after epoch passed", pool.Outstanding())
	}
	_, deallocated := g.Totals()
	if deallocated != 2 {
		t.Fatalf("deallocated = %d", deallocated)
	}
}

func TestGCDeallocWaitsForEpoch(t *testing.T) {
	m, table, g := testEnv(t)
	pool := m.SegmentPool()
	slot := insert(t, m, table, 1)
	update(t, m, table, slot, 2)
	// A transaction alive at unlink time may still be traversing the
	// records; deallocation must wait until it finishes.
	straggler := m.Begin()
	g.RunOnce() // unlink happens here, with straggler active
	g.RunOnce()
	if pool.Outstanding() == 0 {
		t.Fatal("segments freed while straggler active")
	}
	m.Commit(straggler, nil)
	g.RunOnce()
	g.RunOnce()
	if pool.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", pool.Outstanding())
	}
}

func TestDeferredActions(t *testing.T) {
	m, _, g := testEnv(t)
	ran := false
	blocker := m.Begin()
	g.RegisterAction(func() { ran = true })
	g.RunOnce()
	if ran {
		t.Fatal("action ran while registration-time txn active")
	}
	m.Commit(blocker, nil)
	st := g.RunOnce()
	if !ran || st.ActionsRun != 1 {
		t.Fatalf("action not run: ran=%v stats=%+v", ran, st)
	}
}

func TestDeferredActionOrdering(t *testing.T) {
	m, _, g := testEnv(t)
	var order []int
	g.RegisterAction(func() { order = append(order, 1) })
	g.RegisterAction(func() { order = append(order, 2) })
	g.RegisterAction(func() { order = append(order, 3) })
	_ = m
	g.RunOnce()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

type recordingObserver struct {
	mods []struct {
		slot  storage.TupleSlot
		kind  storage.RecordKind
		epoch uint64
	}
}

func (r *recordingObserver) ObserveModification(slot storage.TupleSlot, kind storage.RecordKind, epoch uint64) {
	r.mods = append(r.mods, struct {
		slot  storage.TupleSlot
		kind  storage.RecordKind
		epoch uint64
	}{slot, kind, epoch})
}

func TestAccessObservation(t *testing.T) {
	m, table, g := testEnv(t)
	obs := &recordingObserver{}
	g.SetObserver(obs)
	slot := insert(t, m, table, 1)
	update(t, m, table, slot, 2)
	tx := m.Begin()
	if err := table.Delete(tx, slot); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	g.RunOnce()
	if len(obs.mods) != 3 {
		t.Fatalf("observed %d modifications", len(obs.mods))
	}
	kinds := map[storage.RecordKind]int{}
	for _, mod := range obs.mods {
		if mod.slot != slot {
			t.Fatalf("observed wrong slot %v", mod.slot)
		}
		if mod.epoch == 0 {
			t.Fatal("epoch missing")
		}
		kinds[mod.kind]++
	}
	if kinds[storage.KindInsert] != 1 || kinds[storage.KindUpdate] != 1 || kinds[storage.KindDelete] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestGCKeepsNewerSuffix(t *testing.T) {
	m, table, g := testEnv(t)
	slot := insert(t, m, table, 1)
	update(t, m, table, slot, 2)
	g.RunOnce() // prune fully
	g.RunOnce()

	// Build a chain straddling the watermark: old committed update (will be
	// prunable) + reader pinning it + newer update (must be kept).
	update(t, m, table, slot, 3)
	reader := m.Begin()
	update(t, m, table, slot, 4)
	block := table.Registry().BlockFor(slot)
	g.RunOnce()
	// The newest record (id 3->4 before-image) must survive for reader.
	head := block.VersionPtr(slot.Offset())
	if head == nil {
		t.Fatal("whole chain pruned")
	}
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(reader, slot, out)
	if !found || out.Int64(0) != 3 {
		t.Fatalf("reader sees %d, want 3", out.Int64(0))
	}
	m.Commit(reader, nil)
}

func TestGCBackgroundLoop(t *testing.T) {
	m, table, g := testEnv(t)
	slot := insert(t, m, table, 1)
	update(t, m, table, slot, 2)
	g.Start(time.Millisecond)
	defer g.Stop()
	deadline := time.Now().Add(2 * time.Second)
	block := table.Registry().BlockFor(slot)
	for time.Now().Before(deadline) {
		if block.VersionPtr(slot.Offset()) == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background GC never pruned the chain")
}
