// Package gc implements the paper's garbage collector (§3.3): a two-phase
// unlink-then-deallocate pass over completed transactions driven by the
// oldest-active-transaction watermark, plus the epoch-protection style
// deferred-action framework (§4.4) that the transformation pipeline uses to
// reclaim pre-gather varlen memory, and the access-statistics piggyback that
// identifies cooling blocks (§4.2) without touching the transaction
// critical path.
package gc

import (
	"sync"
	"sync/atomic"
	"time"

	"mainline/internal/obs"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// AccessObserver receives modification observations harvested from undo
// records during GC runs. The transformation pipeline registers one to
// detect blocks that have stopped changing. The epoch argument is the GC
// invocation timestamp — the paper's "GC epoch" substitute for exact
// modification times.
type AccessObserver interface {
	ObserveModification(slot storage.TupleSlot, kind storage.RecordKind, epoch uint64)
}

// deferredAction is a callback that may run once every transaction active
// at registration time has finished.
type deferredAction struct {
	ts uint64
	fn func()
}

// Stats summarizes one GC invocation.
type Stats struct {
	// Drained is the number of completed transactions pulled this run.
	Drained int
	// Unlinked is the number of transactions whose records were unlinked.
	Unlinked int
	// Deallocated is the number of transactions whose undo segments were
	// returned to the pool.
	Deallocated int
	// ChainsTruncated counts version chains truncated this run.
	ChainsTruncated int
	// ActionsRun counts deferred actions executed.
	ActionsRun int
}

// GarbageCollector prunes version chains and recycles undo buffers. One
// collector serves one transaction manager; RunOnce may be called manually
// (tests, benchmarks) or from the background loop started by Start.
type GarbageCollector struct {
	mgr *txn.Manager
	reg *storage.Registry

	mu sync.Mutex
	// pendingUnlink holds completed transactions whose records are still
	// visible to some active transaction.
	pendingUnlink []*txn.Transaction
	// pendingDealloc holds unlinked transactions waiting out their epoch.
	pendingDealloc []*txn.Transaction
	// actions is ordered by registration timestamp (monotone).
	actions []deferredAction

	observer AccessObserver

	stopCh  chan struct{}
	doneCh  chan struct{}
	started atomic.Bool

	// Totals since creation, for observability.
	totalUnlinked    atomic.Int64
	totalDeallocated atomic.Int64

	// watermarkLag is epoch − oldest-active from the latest pass: how far
	// the GC watermark trails the clock, the paper's long-running-snapshot
	// pressure signal (a stuck reader shows up as unbounded lag).
	watermarkLag atomic.Uint64

	// passHist/duty are optional instruments (see SetMetrics).
	passHist *obs.Histogram
	duty     *obs.Duty
}

// SetMetrics installs the pass-duration histogram and duty meter (either
// may be nil). Call before Start.
func (g *GarbageCollector) SetMetrics(pass *obs.Histogram, duty *obs.Duty) {
	g.passHist = pass
	g.duty = duty
}

// WatermarkLag reports epoch − oldest-active as of the latest pass.
func (g *GarbageCollector) WatermarkLag() uint64 { return g.watermarkLag.Load() }

// New creates a collector for the manager and installs it as the manager's
// index deferrer, so committed index-entry removals wait out every snapshot
// active at commit time before the entries physically leave the trees.
func New(mgr *txn.Manager) *GarbageCollector {
	g := &GarbageCollector{mgr: mgr, reg: mgr.Registry()}
	mgr.SetIndexDeferrer(g)
	return g
}

// SetObserver registers the access observer (nil disables observation).
func (g *GarbageCollector) SetObserver(o AccessObserver) { g.observer = o }

// RegisterAction schedules fn to run once every transaction alive now has
// finished — the paper's timestamped deferred action (§4.4). Safe to call
// from any goroutine.
func (g *GarbageCollector) RegisterAction(fn func()) {
	ts := g.mgr.Timestamp()
	g.mu.Lock()
	g.actions = append(g.actions, deferredAction{ts: ts, fn: fn})
	g.mu.Unlock()
}

// RunOnce performs one collection pass and reports what it did.
func (g *GarbageCollector) RunOnce() Stats {
	var st Stats
	var t0 time.Time
	if g.passHist != nil || g.duty != nil {
		t0 = time.Now()
	}
	oldest := g.mgr.OldestActiveTs()
	epoch := g.mgr.Timestamp()
	if epoch > oldest {
		g.watermarkLag.Store(epoch - oldest)
	} else {
		g.watermarkLag.Store(0)
	}

	// Phase 0: run deferred actions whose registration epoch has passed.
	g.mu.Lock()
	nRun := 0
	for nRun < len(g.actions) && g.actions[nRun].ts < oldest {
		nRun++
	}
	toRun := g.actions[:nRun:nRun]
	g.actions = g.actions[nRun:]
	g.mu.Unlock()
	for _, a := range toRun {
		a.fn()
		st.ActionsRun++
	}

	// Phase 1: deallocate transactions whose unlink epoch has passed: no
	// active transaction can still be traversing their records.
	g.mu.Lock()
	var stillWaiting []*txn.Transaction
	for _, t := range g.pendingDealloc {
		if t.UnlinkTs() < oldest {
			t.ReleaseUndo()
			st.Deallocated++
		} else {
			stillWaiting = append(stillWaiting, t)
		}
	}
	g.pendingDealloc = stillWaiting
	g.mu.Unlock()
	g.totalDeallocated.Add(int64(st.Deallocated))

	// Phase 2: drain newly completed transactions; harvest access
	// observations; unlink those no longer visible to anyone.
	drained := g.mgr.DrainCompleted()
	st.Drained = len(drained)
	if g.observer != nil {
		for _, t := range drained {
			t.UndoIterate(func(r *storage.UndoRecord) bool {
				g.observer.ObserveModification(r.Slot, r.Kind, epoch)
				return true
			})
		}
	}

	g.mu.Lock()
	work := append(g.pendingUnlink, drained...)
	g.pendingUnlink = nil
	g.mu.Unlock()

	var unlinkable []*txn.Transaction
	var keep []*txn.Transaction
	chains := make(map[storage.TupleSlot]struct{})
	for _, t := range work {
		// A transaction's records become invisible once its commit (or
		// abort) timestamp falls below the watermark.
		if t.CommitTs() < oldest {
			unlinkable = append(unlinkable, t)
			t.UndoIterate(func(r *storage.UndoRecord) bool {
				chains[r.Slot] = struct{}{}
				return true
			})
		} else {
			keep = append(keep, t)
		}
	}

	// Truncate each affected chain exactly once (paper: avoids the
	// quadratic find-and-unlink per record).
	for slot := range chains {
		if g.truncateChain(slot, oldest) {
			st.ChainsTruncated++
		}
	}

	unlinkTs := g.mgr.Timestamp()
	for _, t := range unlinkable {
		t.SetUnlinkTs(unlinkTs)
	}
	st.Unlinked = len(unlinkable)
	g.totalUnlinked.Add(int64(st.Unlinked))

	g.mu.Lock()
	g.pendingUnlink = keep
	g.pendingDealloc = append(g.pendingDealloc, unlinkable...)
	g.mu.Unlock()
	if !t0.IsZero() {
		d := time.Since(t0)
		g.passHist.Record(d)
		g.duty.Observe(d)
	}
	return st
}

// truncateChain removes the invisible suffix of slot's version chain:
// records stamped at or before the watermark are never applied by any
// active or future reader, so the chain is cut after the last record newer
// than the watermark. Reports whether anything was removed.
func (g *GarbageCollector) truncateChain(slot storage.TupleSlot, oldest uint64) bool {
	block := g.reg.BlockFor(slot)
	if block == nil {
		return false
	}
	offset := slot.Offset()
	head := block.VersionPtr(offset)
	if head == nil {
		return false
	}
	if txn.Visible(head.Timestamp(), oldest-1) {
		// Head itself is visible to the oldest reader: nobody applies any
		// delta on this chain; drop it entirely. CAS so a racing writer
		// installing a new head wins and we retry next run.
		return block.CASVersionPtr(offset, head, nil)
	}
	// Keep the prefix of records still needed (ts newer than watermark or
	// uncommitted); cut after the last kept record.
	last := head
	for {
		next := last.Next()
		if next == nil {
			return false // nothing invisible to remove
		}
		if txn.Visible(next.Timestamp(), oldest-1) {
			// next and everything after are unneeded.
			return last.CompareAndSwapNext(next, nil)
		}
		last = next
	}
}

// Pending reports transactions queued for unlink and deallocation (tests).
func (g *GarbageCollector) Pending() (unlink, dealloc int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pendingUnlink), len(g.pendingDealloc)
}

// Totals returns lifetime unlink/deallocation counters.
func (g *GarbageCollector) Totals() (unlinked, deallocated int64) {
	return g.totalUnlinked.Load(), g.totalDeallocated.Load()
}

// Start launches the background loop with the given period (the paper runs
// GC every ~10 ms). Stop halts it.
func (g *GarbageCollector) Start(period time.Duration) {
	if g.started.Swap(true) {
		return
	}
	g.stopCh = make(chan struct{})
	g.doneCh = make(chan struct{})
	go func() {
		defer close(g.doneCh)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-g.stopCh:
				return
			case <-ticker.C:
				g.RunOnce()
			}
		}
	}()
}

// Stop halts the background loop and runs a final pass.
func (g *GarbageCollector) Stop() {
	if !g.started.Swap(false) {
		return
	}
	close(g.stopCh)
	<-g.doneCh
	g.RunOnce()
}
