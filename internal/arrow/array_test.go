package arrow

import (
	"testing"
	"testing/quick"
)

func TestTypeWidths(t *testing.T) {
	cases := []struct {
		typ   TypeID
		width int
	}{
		{INT8, 1}, {INT16, 2}, {INT32, 4}, {INT64, 8}, {FLOAT64, 8},
		{STRING, -1}, {BINARY, -1}, {BOOL, -1}, {DICT32, -1},
	}
	for _, c := range cases {
		if got := c.typ.ByteWidth(); got != c.width {
			t.Errorf("%s.ByteWidth() = %d, want %d", c.typ, got, c.width)
		}
	}
	if !STRING.VarLen() || !BINARY.VarLen() || INT64.VarLen() {
		t.Fatal("VarLen classification wrong")
	}
}

func TestInt64Builder(t *testing.T) {
	b := NewBuilder(INT64)
	vals := []int64{0, 1, -1, 1 << 40, -(1 << 40)}
	for _, v := range vals {
		b.AppendInt64(v)
	}
	a := b.Finish()
	if a.Length != len(vals) || a.NullCount != 0 {
		t.Fatalf("len=%d nulls=%d", a.Length, a.NullCount)
	}
	for i, v := range vals {
		if a.Int64(i) != v {
			t.Fatalf("a.Int64(%d) = %d, want %d", i, a.Int64(i), v)
		}
		if a.IsNull(i) {
			t.Fatalf("value %d null", i)
		}
	}
	if len(a.Values)%8 != 0 {
		t.Fatalf("values buffer not 8-byte padded: %d", len(a.Values))
	}
}

func TestNullsMaterializeLazily(t *testing.T) {
	b := NewBuilder(INT32)
	b.AppendInt32(7)
	b.AppendNull()
	b.AppendInt32(9)
	a := b.Finish()
	if a.NullCount != 1 {
		t.Fatalf("NullCount = %d", a.NullCount)
	}
	if a.IsNull(0) || !a.IsNull(1) || a.IsNull(2) {
		t.Fatal("null positions wrong")
	}
	if a.Int32(0) != 7 || a.Int32(2) != 9 {
		t.Fatal("values wrong around null")
	}
	if a.Int32(1) != 0 {
		t.Fatal("null slot should be zeroed")
	}
}

func TestStringBuilderOffsets(t *testing.T) {
	b := NewBuilder(STRING)
	vals := []string{"JOE", "", "MARK", "a-longer-string-value", ""}
	for _, v := range vals {
		b.AppendString(v)
	}
	a := b.Finish()
	for i, v := range vals {
		if got := a.Str(i); got != v {
			t.Fatalf("Str(%d) = %q, want %q", i, got, v)
		}
		if a.ValueLen(i) != len(v) {
			t.Fatalf("ValueLen(%d) = %d, want %d", i, a.ValueLen(i), len(v))
		}
	}
	// Offsets are monotonically non-decreasing, starting at 0.
	if a.offset(0) != 0 {
		t.Fatal("first offset not zero")
	}
	for i := 0; i < a.Length; i++ {
		if a.offset(i+1) < a.offset(i) {
			t.Fatal("offsets not monotone")
		}
	}
}

func TestStringNulls(t *testing.T) {
	b := NewBuilder(STRING)
	b.AppendString("x")
	b.AppendNull()
	b.AppendString("y")
	a := b.Finish()
	if !a.IsNull(1) || a.ValueLen(1) != 0 {
		t.Fatal("null string should be zero-length")
	}
	if a.Str(0) != "x" || a.Str(2) != "y" {
		t.Fatal("values around null corrupted")
	}
}

func TestBoolBuilder(t *testing.T) {
	b := NewBuilder(BOOL)
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, v := range pattern {
		b.AppendBool(v)
	}
	a := b.Finish()
	for i, v := range pattern {
		if a.Bool(i) != v {
			t.Fatalf("Bool(%d) = %v want %v", i, a.Bool(i), v)
		}
	}
}

func TestDictionaryBuilder(t *testing.T) {
	b := NewBuilder(DICT32)
	vals := []string{"red", "green", "red", "blue", "green", "red"}
	for _, v := range vals {
		b.AppendString(v)
	}
	a := b.Finish()
	if a.Dict == nil {
		t.Fatal("no dictionary")
	}
	if a.Dict.Length != 3 {
		t.Fatalf("dictionary has %d entries, want 3", a.Dict.Length)
	}
	for i, v := range vals {
		if a.Str(i) != v {
			t.Fatalf("Str(%d) = %q, want %q", i, a.Str(i), v)
		}
	}
	// Same value must map to same code.
	if a.Int32(0) != a.Int32(2) || a.Int32(2) != a.Int32(5) {
		t.Fatal("repeated values got different codes")
	}
}

func TestFloatAndSmallInts(t *testing.T) {
	fb := NewBuilder(FLOAT64)
	fb.AppendFloat64(3.25)
	fb.AppendFloat64(-0.5)
	fa := fb.Finish()
	if fa.Float64(0) != 3.25 || fa.Float64(1) != -0.5 {
		t.Fatal("float round-trip failed")
	}
	b8 := NewBuilder(INT8)
	b8.AppendInt8(-128)
	b8.AppendInt8(127)
	a8 := b8.Finish()
	if a8.Int8(0) != -128 || a8.Int8(1) != 127 {
		t.Fatal("int8 round-trip failed")
	}
	b16 := NewBuilder(INT16)
	b16.AppendInt16(-30000)
	a16 := b16.Finish()
	if a16.Int16(0) != -30000 {
		t.Fatal("int16 round-trip failed")
	}
}

func TestRecordBatchValidation(t *testing.T) {
	schema := NewSchema(Field{"id", INT64, false}, Field{"name", STRING, true})
	ids := NewBuilder(INT64)
	names := NewBuilder(STRING)
	ids.AppendInt64(1)
	ids.AppendInt64(2)
	names.AppendString("a")
	names.AppendString("b")
	rb, err := NewRecordBatch(schema, []*Array{ids.Finish(), names.Finish()})
	if err != nil {
		t.Fatal(err)
	}
	if rb.NumRows != 2 {
		t.Fatalf("NumRows = %d", rb.NumRows)
	}
	if rb.Column("name").Str(1) != "b" {
		t.Fatal("Column lookup wrong")
	}
	if rb.Column("missing") != nil {
		t.Fatal("missing column should be nil")
	}

	// Length mismatch must fail.
	short := NewBuilder(STRING)
	short.AppendString("only-one")
	ids2 := NewBuilder(INT64)
	ids2.AppendInt64(1)
	ids2.AppendInt64(2)
	if _, err := NewRecordBatch(schema, []*Array{ids2.Finish(), short.Finish()}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Type mismatch must fail.
	f := NewBuilder(FLOAT64)
	f.AppendFloat64(1)
	f2 := NewBuilder(STRING)
	f2.AppendString("x")
	if _, err := NewRecordBatch(schema, []*Array{f.Finish(), f2.Finish()}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestTableAppend(t *testing.T) {
	schema := NewSchema(Field{"v", INT64, false})
	other := NewSchema(Field{"v", INT32, false})
	tb := &Table{Schema: schema}
	b := NewBuilder(INT64)
	b.AppendInt64(5)
	rb, _ := NewRecordBatch(schema, []*Array{b.Finish()})
	if err := tb.AppendBatch(rb); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	b2 := NewBuilder(INT32)
	b2.AppendInt32(5)
	rb2, _ := NewRecordBatch(other, []*Array{b2.Finish()})
	if err := tb.AppendBatch(rb2); err == nil {
		t.Fatal("incompatible batch accepted")
	}
}

// Property: any []int64 round-trips through a builder.
func TestQuickInt64RoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		b := NewBuilder(INT64)
		for _, v := range vals {
			b.AppendInt64(v)
		}
		a := b.Finish()
		if a.Length != len(vals) {
			return false
		}
		for i, v := range vals {
			if a.Int64(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: any [][]byte round-trips through both STRING and DICT32 builders.
func TestQuickVarlenRoundTrip(t *testing.T) {
	f := func(vals [][]byte) bool {
		s := NewBuilder(BINARY)
		d := NewBuilder(DICT32)
		for _, v := range vals {
			s.AppendBytes(v)
			d.AppendBytes(v)
		}
		sa, da := s.Finish(), d.Finish()
		for i, v := range vals {
			if string(sa.Bytes(i)) != string(v) || string(da.Bytes(i)) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
