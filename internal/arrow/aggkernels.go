package arrow

import (
	"encoding/binary"
	"math"

	"mainline/internal/util"
)

// Aggregation kernels: tight accumulation loops over raw little-endian
// column buffers — the inner loops of the vectorized hash-aggregation
// operator. Like the selection kernels they run directly over a frozen
// block's Arrow memory or a hot batch's scratch columns. A nil validity
// bitmap means the column has no nulls; NULL values never contribute.
//
// Each kernel takes an optional selection vector: when sel is non-nil only
// the selected positions are visited (the shape a pushed-down predicate
// leaves behind), otherwise all n rows are.
//
// The count returned by every kernel is the number of non-NULL values
// accumulated — COUNT(col) semantics, and the denominator for AVG.

// AggSumInt64 accumulates 8-byte signed integers.
func AggSumInt64(vals []byte, valid util.Bitmap, sel []uint32, n int) (sum int64, count int64) {
	if sel != nil {
		for _, i := range sel {
			if valid == nil || valid.Test(int(i)) {
				sum += int64(binary.LittleEndian.Uint64(vals[i*8:]))
				count++
			}
		}
		return sum, count
	}
	if n == 0 {
		return 0, 0
	}
	_ = vals[n*8-1]
	if valid == nil {
		for i := 0; i < n; i++ {
			sum += int64(binary.LittleEndian.Uint64(vals[i*8:]))
		}
		return sum, int64(n)
	}
	for i := 0; i < n; i++ {
		if valid.Test(i) {
			sum += int64(binary.LittleEndian.Uint64(vals[i*8:]))
			count++
		}
	}
	return sum, count
}

// AggMinMaxInt64 tracks the extrema of 8-byte signed integers. min and max
// are meaningless when count is 0.
func AggMinMaxInt64(vals []byte, valid util.Bitmap, sel []uint32, n int) (mn, mx int64, count int64) {
	mn, mx = math.MaxInt64, math.MinInt64
	visit := func(i int) {
		v := int64(binary.LittleEndian.Uint64(vals[i*8:]))
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		count++
	}
	if sel != nil {
		for _, i := range sel {
			if valid == nil || valid.Test(int(i)) {
				visit(int(i))
			}
		}
		return mn, mx, count
	}
	for i := 0; i < n; i++ {
		if valid == nil || valid.Test(i) {
			visit(i)
		}
	}
	return mn, mx, count
}

// AggSumFloat64 accumulates 8-byte floats. NaN inputs are accumulated like
// any other value (SUM over a group containing NaN is NaN — SQL float
// semantics).
func AggSumFloat64(vals []byte, valid util.Bitmap, sel []uint32, n int) (sum float64, count int64) {
	if sel != nil {
		for _, i := range sel {
			if valid == nil || valid.Test(int(i)) {
				sum += math.Float64frombits(binary.LittleEndian.Uint64(vals[i*8:]))
				count++
			}
		}
		return sum, count
	}
	if n == 0 {
		return 0, 0
	}
	_ = vals[n*8-1]
	if valid == nil {
		for i := 0; i < n; i++ {
			sum += math.Float64frombits(binary.LittleEndian.Uint64(vals[i*8:]))
		}
		return sum, int64(n)
	}
	for i := 0; i < n; i++ {
		if valid.Test(i) {
			sum += math.Float64frombits(binary.LittleEndian.Uint64(vals[i*8:]))
			count++
		}
	}
	return sum, count
}

// AggMinMaxFloat64 tracks float extrema under the Postgres total order: NaN
// sorts greater than every number, so the result is independent of input
// order. The kernel accumulates extrema over the comparable (non-NaN)
// values and reports both the non-NULL count and the comparable count;
// the operator layer derives MIN (NaN only when every input was NaN) and
// MAX (NaN when any input was NaN) from the two. mn and mx are
// meaningless when cmp is 0.
func AggMinMaxFloat64(vals []byte, valid util.Bitmap, sel []uint32, n int) (mn, mx float64, count, cmp int64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	visit := func(i int) {
		v := math.Float64frombits(binary.LittleEndian.Uint64(vals[i*8:]))
		count++
		if v != v {
			return
		}
		cmp++
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if sel != nil {
		for _, i := range sel {
			if valid == nil || valid.Test(int(i)) {
				visit(int(i))
			}
		}
		return mn, mx, count, cmp
	}
	for i := 0; i < n; i++ {
		if valid == nil || valid.Test(i) {
			visit(i)
		}
	}
	return mn, mx, count, cmp
}

// AggCountValid counts non-NULL positions.
func AggCountValid(valid util.Bitmap, sel []uint32, n int) int64 {
	if valid == nil {
		if sel != nil {
			return int64(len(sel))
		}
		return int64(n)
	}
	var count int64
	if sel != nil {
		for _, i := range sel {
			if valid.Test(int(i)) {
				count++
			}
		}
		return count
	}
	for i := 0; i < n; i++ {
		if valid.Test(i) {
			count++
		}
	}
	return count
}
