package arrow

// Unit tests for the aggregation kernels against a scalar reference, over
// the full matrix of {nil valid, sparse valid} × {nil sel, sparse sel},
// plus the NaN total-order contract of AggMinMaxFloat64.

import (
	"encoding/binary"
	"math"
	"testing"

	"mainline/internal/util"
)

// kernelFixture builds n int64/float64 values in one raw buffer plus a
// validity bitmap clearing every 5th bit and a selection vector keeping
// every 3rd position.
func kernelFixture(n int, f func(i int) uint64) (vals []byte, valid util.Bitmap, sel []uint32) {
	vals = make([]byte, n*8)
	valid = util.NewBitmap(n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(vals[i*8:], f(i))
		if i%5 != 0 {
			valid.Set(i)
		}
		if i%3 == 0 {
			sel = append(sel, uint32(i))
		}
	}
	return vals, valid, sel
}

func TestAggSumInt64(t *testing.T) {
	const n = 257
	vals, valid, sel := kernelFixture(n, func(i int) uint64 { return uint64(int64(i*7 - 900)) })
	ref := func(valid util.Bitmap, sel []uint32) (int64, int64) {
		var sum, cnt int64
		for i := 0; i < n; i++ {
			if sel != nil && i%3 != 0 {
				continue
			}
			if valid != nil && !valid.Test(i) {
				continue
			}
			sum += int64(i*7 - 900)
			cnt++
		}
		return sum, cnt
	}
	for _, tc := range []struct {
		name  string
		valid util.Bitmap
		sel   []uint32
	}{
		{"dense", nil, nil}, {"valid", valid, nil}, {"sel", nil, sel}, {"valid+sel", valid, sel},
	} {
		wantSum, wantCnt := ref(tc.valid, tc.sel)
		sum, cnt := AggSumInt64(vals, tc.valid, tc.sel, n)
		if sum != wantSum || cnt != wantCnt {
			t.Fatalf("%s: got (%d, %d) want (%d, %d)", tc.name, sum, cnt, wantSum, wantCnt)
		}
	}
	if sum, cnt := AggSumInt64(nil, nil, nil, 0); sum != 0 || cnt != 0 {
		t.Fatalf("empty: got (%d, %d)", sum, cnt)
	}
}

func TestAggMinMaxInt64(t *testing.T) {
	const n = 100
	vals, valid, sel := kernelFixture(n, func(i int) uint64 { return uint64(int64((i*37)%201 - 100)) })
	for _, tc := range []struct {
		name  string
		valid util.Bitmap
		sel   []uint32
	}{
		{"dense", nil, nil}, {"valid", valid, nil}, {"sel", nil, sel}, {"valid+sel", valid, sel},
	} {
		wantMin, wantMax := int64(math.MaxInt64), int64(math.MinInt64)
		var wantCnt int64
		for i := 0; i < n; i++ {
			if tc.sel != nil && i%3 != 0 {
				continue
			}
			if tc.valid != nil && !tc.valid.Test(i) {
				continue
			}
			v := int64((i*37)%201 - 100)
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
			wantCnt++
		}
		mn, mx, cnt := AggMinMaxInt64(vals, tc.valid, tc.sel, n)
		if mn != wantMin || mx != wantMax || cnt != wantCnt {
			t.Fatalf("%s: got (%d, %d, %d) want (%d, %d, %d)", tc.name, mn, mx, cnt, wantMin, wantMax, wantCnt)
		}
	}
}

func TestAggSumFloat64(t *testing.T) {
	const n = 64
	// Exact halves: sums are associative, comparison can be exact.
	vals, valid, sel := kernelFixture(n, func(i int) uint64 {
		return math.Float64bits(float64(i%40-20) / 2)
	})
	for _, tc := range []struct {
		name  string
		valid util.Bitmap
		sel   []uint32
	}{
		{"dense", nil, nil}, {"valid", valid, nil}, {"sel", nil, sel}, {"valid+sel", valid, sel},
	} {
		var wantSum float64
		var wantCnt int64
		for i := 0; i < n; i++ {
			if tc.sel != nil && i%3 != 0 {
				continue
			}
			if tc.valid != nil && !tc.valid.Test(i) {
				continue
			}
			wantSum += float64(i%40-20) / 2
			wantCnt++
		}
		sum, cnt := AggSumFloat64(vals, tc.valid, tc.sel, n)
		if sum != wantSum || cnt != wantCnt {
			t.Fatalf("%s: got (%v, %d) want (%v, %d)", tc.name, sum, cnt, wantSum, wantCnt)
		}
	}
	// NaN propagates through the sum.
	nan := make([]byte, 16)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(1.5))
	binary.LittleEndian.PutUint64(nan[8:], math.Float64bits(math.NaN()))
	if sum, cnt := AggSumFloat64(nan, nil, nil, 2); !math.IsNaN(sum) || cnt != 2 {
		t.Fatalf("NaN sum: got (%v, %d), want (NaN, 2)", sum, cnt)
	}
}

// TestAggMinMaxFloat64 pins the Postgres total-order contract: cmp counts
// only comparable (non-NaN) values, count counts all non-NULL values, and
// extrema ignore NaN — so the operator layer can decide MIN=NaN iff cmp==0
// and MAX=NaN iff cmp<count regardless of input order.
func TestAggMinMaxFloat64(t *testing.T) {
	enc := func(vs ...float64) []byte {
		b := make([]byte, len(vs)*8)
		for i, v := range vs {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
		}
		return b
	}
	nan := math.NaN()

	mn, mx, cnt, cmp := AggMinMaxFloat64(enc(3.5, nan, -1.5, 2), nil, nil, 4)
	if mn != -1.5 || mx != 3.5 || cnt != 4 || cmp != 3 {
		t.Fatalf("mixed: got (%v, %v, %d, %d)", mn, mx, cnt, cmp)
	}

	// All NaN: cmp == 0 signals "MIN and MAX are both NaN".
	_, _, cnt, cmp = AggMinMaxFloat64(enc(nan, nan), nil, nil, 2)
	if cnt != 2 || cmp != 0 {
		t.Fatalf("all-NaN: got cnt=%d cmp=%d, want 2, 0", cnt, cmp)
	}

	// ±Inf are ordinary comparable values.
	mn, mx, cnt, cmp = AggMinMaxFloat64(enc(math.Inf(1), 0, math.Inf(-1)), nil, nil, 3)
	if !math.IsInf(mn, -1) || !math.IsInf(mx, 1) || cnt != 3 || cmp != 3 {
		t.Fatalf("inf: got (%v, %v, %d, %d)", mn, mx, cnt, cmp)
	}

	// Selection vector skips the NaN entirely.
	mn, mx, cnt, cmp = AggMinMaxFloat64(enc(1.5, nan, 2.5), nil, []uint32{0, 2}, 3)
	if mn != 1.5 || mx != 2.5 || cnt != 2 || cmp != 2 {
		t.Fatalf("sel: got (%v, %v, %d, %d)", mn, mx, cnt, cmp)
	}

	// Validity masks the NaN.
	valid := util.NewBitmap(3)
	valid.Set(0)
	valid.Set(2)
	mn, mx, cnt, cmp = AggMinMaxFloat64(enc(1.5, nan, 2.5), valid, nil, 3)
	if mn != 1.5 || mx != 2.5 || cnt != 2 || cmp != 2 {
		t.Fatalf("valid: got (%v, %v, %d, %d)", mn, mx, cnt, cmp)
	}
}

func TestAggCountValid(t *testing.T) {
	const n = 97
	valid := util.NewBitmap(n)
	var want int64
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			valid.Set(i)
			want++
		}
	}
	if got := AggCountValid(valid, nil, n); got != want {
		t.Fatalf("valid: got %d want %d", got, want)
	}
	if got := AggCountValid(nil, nil, n); got != int64(n) {
		t.Fatalf("dense: got %d want %d", got, n)
	}
	sel := []uint32{0, 1, 4, 5, 8}
	if got := AggCountValid(nil, sel, n); got != int64(len(sel)) {
		t.Fatalf("dense+sel: got %d want %d", got, len(sel))
	}
	var wantSel int64
	for _, i := range sel {
		if i%4 != 0 {
			wantSel++
		}
	}
	if got := AggCountValid(valid, sel, n); got != wantSel {
		t.Fatalf("valid+sel: got %d want %d", got, wantSel)
	}
}
