// Package arrow implements the subset of the Apache Arrow columnar
// in-memory format that the storage engine targets (paper §2.2): 8-byte
// aligned contiguous buffers, separate validity bitmaps, variable-length
// values as an offsets array into a contiguous byte buffer, and
// dictionary-encoded columns. It also provides an IPC-like stream framing so
// record batches can move between processes with zero re-encoding of the
// underlying buffers (§5), plus CSV import/export used by the Figure 1
// baseline.
//
// This is a from-scratch implementation against the published format
// description; it does not depend on the Arrow C++/Go libraries (the module
// is stdlib-only). Framing metadata uses a simple binary header instead of
// flatbuffers — see DESIGN.md "Substitutions".
package arrow

import "fmt"

// TypeID enumerates the physical types supported by this implementation.
type TypeID uint8

// Supported physical types.
const (
	INVALID TypeID = iota
	BOOL           // 1 bit per value in a packed bitmap
	INT8
	INT16
	INT32
	INT64
	FLOAT64
	STRING // variable-length UTF-8: int32 offsets + byte values
	BINARY // variable-length bytes: int32 offsets + byte values
	DICT32 // dictionary-encoded strings: int32 codes + string dictionary
)

// String implements fmt.Stringer.
func (t TypeID) String() string {
	switch t {
	case BOOL:
		return "bool"
	case INT8:
		return "int8"
	case INT16:
		return "int16"
	case INT32:
		return "int32"
	case INT64:
		return "int64"
	case FLOAT64:
		return "float64"
	case STRING:
		return "string"
	case BINARY:
		return "binary"
	case DICT32:
		return "dictionary<int32,string>"
	default:
		return "invalid"
	}
}

// ByteWidth returns the fixed byte width of the type's value buffer, or -1
// for variable-length and bit-packed types.
func (t TypeID) ByteWidth() int {
	switch t {
	case INT8:
		return 1
	case INT16:
		return 2
	case INT32:
		return 4
	case INT64, FLOAT64:
		return 8
	default:
		return -1
	}
}

// FixedWidth reports whether values of the type occupy a fixed number of
// bytes in a contiguous buffer.
func (t TypeID) FixedWidth() bool { return t.ByteWidth() > 0 }

// VarLen reports whether the type stores values through an offsets buffer.
func (t TypeID) VarLen() bool { return t == STRING || t == BINARY }

// Field describes one column of a schema.
type Field struct {
	Name     string
	Type     TypeID
	Nullable bool
}

// String renders the field as a DDL-ish fragment.
func (f Field) String() string {
	null := " NOT NULL"
	if f.Nullable {
		null = ""
	}
	return fmt.Sprintf("%s %s%s", f.Name, f.Type, null)
}

// Schema is an ordered list of fields, mirroring Arrow's table-like metadata
// imposed on collections of buffers (paper Figure 2).
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema {
	return &Schema{Fields: fields}
}

// NumFields returns the number of columns.
func (s *Schema) NumFields() int { return len(s.Fields) }

// FieldIndex returns the index of the named field or -1.
func (s *Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports deep equality of two schemas.
func (s *Schema) Equal(o *Schema) bool {
	if s.NumFields() != o.NumFields() {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema like a CREATE TABLE body.
func (s *Schema) String() string {
	out := "("
	for i, f := range s.Fields {
		if i > 0 {
			out += ", "
		}
		out += f.String()
	}
	return out + ")"
}
