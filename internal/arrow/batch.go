package arrow

import "fmt"

// RecordBatch is a collection of equal-length arrays conforming to a schema
// — the unit of data interchange in Arrow and the unit our storage engine
// emits per frozen block.
type RecordBatch struct {
	Schema  *Schema
	Columns []*Array
	NumRows int
}

// NewRecordBatch validates column/schema agreement and builds a batch.
func NewRecordBatch(schema *Schema, cols []*Array) (*RecordBatch, error) {
	if len(cols) != schema.NumFields() {
		return nil, fmt.Errorf("arrow: %d columns for %d fields", len(cols), schema.NumFields())
	}
	rows := 0
	for i, c := range cols {
		if c.Type != schema.Fields[i].Type {
			return nil, fmt.Errorf("arrow: column %d type %s != field type %s", i, c.Type, schema.Fields[i].Type)
		}
		if i == 0 {
			rows = c.Length
		} else if c.Length != rows {
			return nil, fmt.Errorf("arrow: column %d length %d != %d", i, c.Length, rows)
		}
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	return &RecordBatch{Schema: schema, Columns: cols, NumRows: rows}, nil
}

// Column returns the array for the named field, or nil.
func (rb *RecordBatch) Column(name string) *Array {
	idx := rb.Schema.FieldIndex(name)
	if idx < 0 {
		return nil
	}
	return rb.Columns[idx]
}

// DataSize returns total buffer bytes across all columns.
func (rb *RecordBatch) DataSize() int {
	n := 0
	for _, c := range rb.Columns {
		n += c.DataSize()
	}
	return n
}

// Table is an ordered collection of record batches sharing a schema; the
// shape of a fully frozen storage table.
type Table struct {
	Schema  *Schema
	Batches []*RecordBatch
}

// NumRows sums the rows of all batches.
func (t *Table) NumRows() int {
	n := 0
	for _, b := range t.Batches {
		n += b.NumRows
	}
	return n
}

// AppendBatch adds a batch after checking schema compatibility.
func (t *Table) AppendBatch(b *RecordBatch) error {
	if !t.Schema.Equal(b.Schema) {
		return fmt.Errorf("arrow: batch schema %s incompatible with table schema %s", b.Schema, t.Schema)
	}
	t.Batches = append(t.Batches, b)
	return nil
}
