package arrow

import (
	"bytes"
	"io"
	"testing"

	"mainline/internal/util"
)

func sampleBatch(t *testing.T, rows int) (*Schema, *RecordBatch) {
	t.Helper()
	schema := NewSchema(
		Field{"id", INT64, false},
		Field{"name", STRING, true},
		Field{"qty", INT32, false},
		Field{"color", DICT32, false},
	)
	ids := NewBuilder(INT64)
	names := NewBuilder(STRING)
	qty := NewBuilder(INT32)
	color := NewBuilder(DICT32)
	colors := []string{"red", "green", "blue"}
	for i := 0; i < rows; i++ {
		ids.AppendInt64(int64(i) * 7)
		if i%5 == 3 {
			names.AppendNull()
		} else {
			names.AppendString("name-" + string(rune('a'+i%26)))
		}
		qty.AppendInt32(int32(i % 100))
		color.AppendString(colors[i%3])
	}
	rb, err := NewRecordBatch(schema, []*Array{ids.Finish(), names.Finish(), qty.Finish(), color.Finish()})
	if err != nil {
		t.Fatal(err)
	}
	return schema, rb
}

func TestIPCRoundTrip(t *testing.T) {
	schema, rb := sampleBatch(t, 100)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteSchema(schema); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(rb); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Equal(schema) {
		t.Fatalf("schema mismatch: %s vs %s", r.Schema(), schema)
	}
	if got.NumRows != rb.NumRows {
		t.Fatalf("rows = %d, want %d", got.NumRows, rb.NumRows)
	}
	if Checksum(got) != Checksum(rb) {
		t.Fatal("checksum mismatch after round trip")
	}
	for i := 0; i < rb.NumRows; i++ {
		if got.Columns[0].Int64(i) != rb.Columns[0].Int64(i) {
			t.Fatalf("id[%d] mismatch", i)
		}
		if got.Columns[1].IsNull(i) != rb.Columns[1].IsNull(i) {
			t.Fatalf("null[%d] mismatch", i)
		}
		if !got.Columns[1].IsNull(i) && got.Columns[1].Str(i) != rb.Columns[1].Str(i) {
			t.Fatalf("name[%d] mismatch", i)
		}
		if got.Columns[3].Str(i) != rb.Columns[3].Str(i) {
			t.Fatalf("color[%d] mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestIPCMultipleBatches(t *testing.T) {
	schema, _ := sampleBatch(t, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const nBatches = 5
	var want []uint64
	for i := 0; i < nBatches; i++ {
		_, rb := sampleBatch(t, 10+i)
		want = append(want, Checksum(rb))
		if err := w.WriteBatch(rb); err != nil { // schema auto-written
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tab, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Batches) != nBatches {
		t.Fatalf("batches = %d", len(tab.Batches))
	}
	if !tab.Schema.Equal(schema) {
		t.Fatal("schema mismatch")
	}
	for i, rb := range tab.Batches {
		if Checksum(rb) != want[i] {
			t.Fatalf("batch %d checksum mismatch", i)
		}
	}
}

func TestIPCWriteTableReadTable(t *testing.T) {
	schema, rb1 := sampleBatch(t, 33)
	_, rb2 := sampleBatch(t, 17)
	tab := &Table{Schema: schema, Batches: []*RecordBatch{rb1, rb2}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 50 {
		t.Fatalf("NumRows = %d", got.NumRows())
	}
}

func TestIPCBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTARROW123456789")))
	if _, err := r.Next(); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestIPCTruncated(t *testing.T) {
	schema, rb := sampleBatch(t, 50)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteSchema(schema); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(rb); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut the stream mid-batch; the reader must error, not hang or panic.
	for _, cut := range []int{9, 20, len(full) / 2, len(full) - 3} {
		r := NewReader(bytes.NewReader(full[:cut]))
		_, err := r.Next()
		if err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestIPCZeroCopyBuffers(t *testing.T) {
	// Arrays constructed over raw buffers must survive the wire.
	vals := make([]byte, 8*4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			vals[i*8+j] = byte(i + 1)
		}
	}
	validity := util.NewBitmap(4)
	validity.SetAll(4)
	a := NewFixedArray(INT64, 4, vals, validity, 0)
	schema := NewSchema(Field{"raw", INT64, true})
	rb, err := NewRecordBatch(schema, []*Array{a})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBatch(rb); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batches[0].Columns[0].Int64(2) != a.Int64(2) {
		t.Fatal("zero-copy array corrupted on wire")
	}
}

func TestWriterCountsBytes(t *testing.T) {
	_, rb := sampleBatch(t, 64)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBatch(rb); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer has %d", w.BytesWritten, buf.Len())
	}
}
