package arrow

import (
	"encoding/binary"
	"math"
	"testing"

	"mainline/internal/util"
)

func packInt64(vals []int64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func eqSel(t *testing.T, got []uint32, want ...uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sel = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sel = %v, want %v", got, want)
		}
	}
}

func TestSelInt64Range(t *testing.T) {
	vals := packInt64([]int64{-5, 0, 3, 7, 7, 100, math.MinInt64, math.MaxInt64})
	eqSel(t, SelInt64Range(vals, nil, 8, 0, 7, nil), 1, 2, 3, 4)
	eqSel(t, SelInt64Range(vals, nil, 8, 7, 7, nil), 3, 4)
	eqSel(t, SelInt64Range(vals, nil, 8, math.MinInt64, math.MaxInt64, nil), 0, 1, 2, 3, 4, 5, 6, 7)
	eqSel(t, SelInt64Range(vals, nil, 8, 101, 200, nil)) // empty above
	eqSel(t, SelInt64Range(vals, nil, 0, 0, 0, nil))     // n == 0
	// Validity: null out positions 1 and 3.
	valid := util.NewBitmap(8)
	valid.SetAll(8)
	valid.Clear(1)
	valid.Clear(3)
	eqSel(t, SelInt64Range(vals, valid, 8, 0, 7, nil), 2, 4)
}

func TestSelNarrowWidths(t *testing.T) {
	v32 := make([]byte, 4*4)
	for i, v := range []int32{-2, 0, 5, math.MaxInt32} {
		binary.LittleEndian.PutUint32(v32[i*4:], uint32(v))
	}
	eqSel(t, SelInt32Range(v32, nil, 4, -2, 4, nil), 0, 1)

	v16 := make([]byte, 3*2)
	for i, v := range []int16{-1, 9, 300} {
		binary.LittleEndian.PutUint16(v16[i*2:], uint16(v))
	}
	eqSel(t, SelInt16Range(v16, nil, 3, 0, 299, nil), 1)

	v8 := []byte{uint8(256 - 7), 1, 127} // int8(-7), 1, 127
	eqSel(t, SelInt8Range(v8, nil, 3, -8, 0, nil), 0)
}

func TestSelFloat64Range(t *testing.T) {
	fs := []float64{-1.5, 0, 2.5, math.NaN(), math.Inf(1), 2.5}
	vals := make([]byte, len(fs)*8)
	for i, f := range fs {
		binary.LittleEndian.PutUint64(vals[i*8:], math.Float64bits(f))
	}
	// Inclusive both ends.
	eqSel(t, SelFloat64Range(vals, nil, 6, -1.5, 2.5, false, false, nil), 0, 1, 2, 5)
	// Strict both ends: drop the bound values.
	eqSel(t, SelFloat64Range(vals, nil, 6, -1.5, 2.5, true, true, nil), 1)
	// Unbounded: NaN still never matches.
	eqSel(t, SelFloat64Range(vals, nil, 6, math.Inf(-1), math.Inf(1), false, false, nil), 0, 1, 2, 4, 5)
}
