package arrow

import (
	"encoding/binary"
	"fmt"
	"math"

	"mainline/internal/util"
)

// Array is an immutable Arrow column: a validity bitmap plus one or two
// value buffers, depending on the physical type. All buffers are 8-byte
// aligned byte slices so they can be shipped over IPC without re-encoding.
type Array struct {
	Type      TypeID
	Length    int
	NullCount int

	// Validity holds one bit per value; nil means all values valid.
	Validity util.Bitmap

	// Values holds fixed-width data, bit-packed bools, varlen bytes (for
	// STRING/BINARY this is the contiguous values buffer), or int32
	// dictionary codes for DICT32.
	Values []byte

	// Offsets holds length+1 int32 offsets for STRING/BINARY, nil otherwise.
	Offsets []byte

	// Dict is the dictionary for DICT32 columns (itself a STRING array).
	Dict *Array
}

// IsNull reports whether value i is null.
func (a *Array) IsNull(i int) bool {
	return a.Validity != nil && !a.Validity.Test(i)
}

// IsValid reports whether value i is non-null.
func (a *Array) IsValid(i int) bool { return !a.IsNull(i) }

// Int64 returns value i of an INT64 array.
func (a *Array) Int64(i int) int64 {
	return int64(binary.LittleEndian.Uint64(a.Values[i*8:]))
}

// Int32 returns value i of an INT32 (or DICT32 code) array.
func (a *Array) Int32(i int) int32 {
	return int32(binary.LittleEndian.Uint32(a.Values[i*4:]))
}

// Int16 returns value i of an INT16 array.
func (a *Array) Int16(i int) int16 {
	return int16(binary.LittleEndian.Uint16(a.Values[i*2:]))
}

// Int8 returns value i of an INT8 array.
func (a *Array) Int8(i int) int8 { return int8(a.Values[i]) }

// Float64 returns value i of a FLOAT64 array.
func (a *Array) Float64(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(a.Values[i*8:]))
}

// Bool returns value i of a BOOL array.
func (a *Array) Bool(i int) bool {
	return util.Bitmap(a.Values).Test(i)
}

// offset returns the int32 offset at index i.
func (a *Array) offset(i int) int32 {
	return int32(binary.LittleEndian.Uint32(a.Offsets[i*4:]))
}

// Bytes returns value i of a STRING/BINARY array as a zero-copy slice of the
// values buffer. For DICT32 arrays it resolves the code through the
// dictionary.
func (a *Array) Bytes(i int) []byte {
	if a.Type == DICT32 {
		return a.Dict.Bytes(int(a.Int32(i)))
	}
	start, end := a.offset(i), a.offset(i+1)
	return a.Values[start:end]
}

// String returns value i of a STRING or DICT32 array.
func (a *Array) Str(i int) string { return string(a.Bytes(i)) }

// ValueLen returns the byte length of varlen value i.
func (a *Array) ValueLen(i int) int {
	if a.Type == DICT32 {
		return a.Dict.ValueLen(int(a.Int32(i)))
	}
	return int(a.offset(i+1) - a.offset(i))
}

// DataSize returns the total bytes held in this array's buffers (validity +
// offsets + values + dictionary), the quantity that matters for export
// bandwidth accounting.
func (a *Array) DataSize() int {
	n := len(a.Validity) + len(a.Values) + len(a.Offsets)
	if a.Dict != nil {
		n += a.Dict.DataSize()
	}
	return n
}

// validate performs structural sanity checks; used by tests and IPC read.
func (a *Array) validate() error {
	switch {
	case a.Type.FixedWidth():
		if len(a.Values) < a.Length*a.Type.ByteWidth() {
			return fmt.Errorf("arrow: %s array of length %d has %d value bytes", a.Type, a.Length, len(a.Values))
		}
	case a.Type == BOOL:
		if len(a.Values) < (a.Length+7)/8 {
			return fmt.Errorf("arrow: bool array of length %d has %d value bytes", a.Length, len(a.Values))
		}
	case a.Type.VarLen():
		if len(a.Offsets) < (a.Length+1)*4 {
			return fmt.Errorf("arrow: varlen array of length %d has %d offset bytes", a.Length, len(a.Offsets))
		}
		if a.Length > 0 {
			last := a.offset(a.Length)
			if int(last) > len(a.Values) {
				return fmt.Errorf("arrow: varlen final offset %d exceeds values buffer %d", last, len(a.Values))
			}
		}
	case a.Type == DICT32:
		if len(a.Values) < a.Length*4 {
			return fmt.Errorf("arrow: dict array of length %d has %d code bytes", a.Length, len(a.Values))
		}
		if a.Dict == nil {
			return fmt.Errorf("arrow: dict array missing dictionary")
		}
		return a.Dict.validate()
	}
	return nil
}

// --- Builders -------------------------------------------------------------

// Builder accumulates values for one column and produces an immutable Array.
// Builders are append-only and not safe for concurrent use.
type Builder struct {
	typ      TypeID
	length   int
	nulls    int
	validity util.Bitmap
	values   []byte
	offsets  []byte
	dict     map[string]int32
	dictVals *Builder
}

// NewBuilder creates a builder for the given type.
func NewBuilder(t TypeID) *Builder {
	b := &Builder{typ: t}
	if t.VarLen() {
		b.offsets = binary.LittleEndian.AppendUint32(b.offsets, 0)
	}
	if t == DICT32 {
		b.dict = make(map[string]int32)
		b.dictVals = NewBuilder(STRING)
	}
	return b
}

// Len returns the number of values appended so far.
func (b *Builder) Len() int { return b.length }

func (b *Builder) appendValid() {
	if b.validity != nil {
		b.growValidity()
		b.validity.Set(b.length)
	}
	b.length++
}

func (b *Builder) growValidity() {
	need := util.BitmapBytes(b.length + 1)
	for len(b.validity) < need {
		b.validity = append(b.validity, 0)
	}
}

// AppendNull appends a null value.
func (b *Builder) AppendNull() {
	if b.validity == nil {
		// Materialize a validity bitmap with all prior values valid.
		b.validity = util.NewBitmap(b.length + 64)
		b.validity.SetAll(b.length)
	}
	b.growValidity()
	b.validity.Clear(b.length)
	b.nulls++
	// Null still occupies a slot in fixed buffers / offsets.
	switch {
	case b.typ.FixedWidth():
		b.values = append(b.values, make([]byte, b.typ.ByteWidth())...)
	case b.typ == BOOL:
		b.ensureBoolByte()
	case b.typ.VarLen():
		b.offsets = binary.LittleEndian.AppendUint32(b.offsets, uint32(len(b.values)))
	case b.typ == DICT32:
		b.values = append(b.values, 0, 0, 0, 0)
	}
	b.length++
}

func (b *Builder) ensureBoolByte() {
	need := (b.length + 8) / 8
	for len(b.values) < need {
		b.values = append(b.values, 0)
	}
}

// AppendInt64 appends v to an INT64 builder.
func (b *Builder) AppendInt64(v int64) {
	b.values = binary.LittleEndian.AppendUint64(b.values, uint64(v))
	b.appendValid()
}

// AppendInt32 appends v to an INT32 builder.
func (b *Builder) AppendInt32(v int32) {
	b.values = binary.LittleEndian.AppendUint32(b.values, uint32(v))
	b.appendValid()
}

// AppendInt16 appends v to an INT16 builder.
func (b *Builder) AppendInt16(v int16) {
	b.values = binary.LittleEndian.AppendUint16(b.values, uint16(v))
	b.appendValid()
}

// AppendInt8 appends v to an INT8 builder.
func (b *Builder) AppendInt8(v int8) {
	b.values = append(b.values, byte(v))
	b.appendValid()
}

// AppendFloat64 appends v to a FLOAT64 builder.
func (b *Builder) AppendFloat64(v float64) {
	b.values = binary.LittleEndian.AppendUint64(b.values, math.Float64bits(v))
	b.appendValid()
}

// AppendBool appends v to a BOOL builder.
func (b *Builder) AppendBool(v bool) {
	b.ensureBoolByte()
	if v {
		util.Bitmap(b.values).Set(b.length)
	}
	b.appendValid()
}

// AppendBytes appends v to a STRING/BINARY/DICT32 builder.
func (b *Builder) AppendBytes(v []byte) {
	switch b.typ {
	case DICT32:
		code, ok := b.dict[string(v)]
		if !ok {
			code = int32(b.dictVals.Len())
			b.dict[string(v)] = code
			b.dictVals.AppendBytes(v)
		}
		b.values = binary.LittleEndian.AppendUint32(b.values, uint32(code))
	default:
		b.values = append(b.values, v...)
		b.offsets = binary.LittleEndian.AppendUint32(b.offsets, uint32(len(b.values)))
	}
	b.appendValid()
}

// AppendString appends s.
func (b *Builder) AppendString(s string) { b.AppendBytes([]byte(s)) }

// Finish freezes the builder into an Array. The builder must not be used
// afterwards. All buffers are padded to 8-byte multiples per the Arrow
// alignment rule.
func (b *Builder) Finish() *Array {
	a := &Array{
		Type:      b.typ,
		Length:    b.length,
		NullCount: b.nulls,
		Validity:  b.validity,
		Values:    pad8(b.values),
		Offsets:   pad8(b.offsets),
	}
	if b.typ == DICT32 {
		a.Dict = b.dictVals.Finish()
	}
	if !b.typ.VarLen() {
		a.Offsets = nil
	}
	return a
}

func pad8(buf []byte) []byte {
	if buf == nil {
		return nil
	}
	for len(buf)%8 != 0 {
		buf = append(buf, 0)
	}
	return buf
}

// --- Direct constructors (zero-copy from storage blocks) -------------------

// NewFixedArray wraps existing fixed-width column memory as an Array without
// copying. The storage engine uses this to expose frozen block columns
// in place (paper §4.1: readers access Arrow directly).
func NewFixedArray(t TypeID, length int, values []byte, validity util.Bitmap, nullCount int) *Array {
	return &Array{Type: t, Length: length, NullCount: nullCount, Values: values, Validity: validity}
}

// NewVarlenArray wraps existing offsets+values buffers as a STRING/BINARY
// array without copying.
func NewVarlenArray(t TypeID, length int, offsets, values []byte, validity util.Bitmap, nullCount int) *Array {
	return &Array{Type: t, Length: length, NullCount: nullCount, Offsets: offsets, Values: values, Validity: validity}
}

// NewDictArray wraps existing code and dictionary buffers as a DICT32 array.
func NewDictArray(length int, codes []byte, dict *Array, validity util.Bitmap, nullCount int) *Array {
	return &Array{Type: DICT32, Length: length, NullCount: nullCount, Values: codes, Dict: dict, Validity: validity}
}
