package arrow

import "testing"

func TestSumInt64(t *testing.T) {
	b := NewBuilder(INT64)
	b.AppendInt64(10)
	b.AppendNull()
	b.AppendInt64(-3)
	a := b.Finish()
	sum, err := SumInt64(a)
	if err != nil || sum != 7 {
		t.Fatalf("sum = %d err = %v", sum, err)
	}
	f := NewBuilder(FLOAT64)
	f.AppendFloat64(1)
	if _, err := SumInt64(f.Finish()); err == nil {
		t.Fatal("type check missing")
	}
}

func TestSumFloat64(t *testing.T) {
	b := NewBuilder(FLOAT64)
	b.AppendFloat64(1.5)
	b.AppendFloat64(2.5)
	b.AppendNull()
	sum, err := SumFloat64(b.Finish())
	if err != nil || sum != 4.0 {
		t.Fatalf("sum = %f err = %v", sum, err)
	}
}

func TestMinMaxInt64(t *testing.T) {
	b := NewBuilder(INT64)
	for _, v := range []int64{5, -2, 9, 0} {
		b.AppendInt64(v)
	}
	lo, hi, ok, err := MinMaxInt64(b.Finish())
	if err != nil || !ok || lo != -2 || hi != 9 {
		t.Fatalf("minmax = %d %d ok=%v err=%v", lo, hi, ok, err)
	}
	empty := NewBuilder(INT64)
	empty.AppendNull()
	_, _, ok, err = MinMaxInt64(empty.Finish())
	if err != nil || ok {
		t.Fatal("all-null column should report !ok")
	}
}

func TestFilterInt64(t *testing.T) {
	b := NewBuilder(INT64)
	for i := int64(0); i < 10; i++ {
		b.AppendInt64(i)
	}
	sel, err := FilterInt64(b.Finish(), func(v int64) bool { return v%3 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 6, 9}
	if len(sel) != len(want) {
		t.Fatalf("sel = %v", sel)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel = %v, want %v", sel, want)
		}
	}
}

func TestChecksumDetectsChange(t *testing.T) {
	_, rb := sampleBatch(t, 20)
	c1 := Checksum(rb)
	rb.Columns[0].Values[0] ^= 0xFF
	if Checksum(rb) == c1 {
		t.Fatal("checksum blind to mutation")
	}
	rb.Columns[0].Values[0] ^= 0xFF
	if Checksum(rb) != c1 {
		t.Fatal("checksum not deterministic")
	}
}

func TestCountValid(t *testing.T) {
	b := NewBuilder(INT64)
	b.AppendInt64(1)
	b.AppendNull()
	b.AppendInt64(2)
	if got := CountValid(b.Finish()); got != 2 {
		t.Fatalf("CountValid = %d", got)
	}
}
