package arrow

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// IPC stream framing.
//
// Real Arrow IPC frames flatbuffers metadata followed by a body of 8-byte
// aligned buffers. Flatbuffers is not in the Go standard library, so this
// implementation keeps the load-bearing property — record batch bodies are
// the raw column buffers, written and read without transformation — and
// replaces the metadata encoding with a compact little-endian binary header.
// A frozen block therefore goes onto the wire with zero serialization work
// beyond a ~100-byte header, which is exactly the effect the paper's export
// experiments measure (§5, §6.3).
//
// Stream layout:
//
//	magic   [8]byte  "MLARROW1"
//	message*         (type byte, u32 headerLen, header, padded body)
//	eos              (type byte 0, u32 0)

var streamMagic = [8]byte{'M', 'L', 'A', 'R', 'R', 'O', 'W', '1'}

// Message type tags.
const (
	msgEOS    = 0
	msgSchema = 1
	msgBatch  = 2
)

var (
	// ErrBadMagic indicates the stream does not start with the IPC magic.
	ErrBadMagic = errors.New("arrow/ipc: bad stream magic")
	// ErrNoSchema indicates a record batch arrived before any schema.
	ErrNoSchema = errors.New("arrow/ipc: record batch before schema")
)

var pad [8]byte

// Writer emits an IPC stream. Not safe for concurrent use.
type Writer struct {
	w           *bufio.Writer
	wroteMagic  bool
	wroteSchema bool
	scratch     []byte
	// BytesWritten counts payload bytes handed to the underlying writer.
	BytesWritten int64
}

// NewWriter wraps w in an IPC stream writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (wr *Writer) write(p []byte) error {
	n, err := wr.w.Write(p)
	wr.BytesWritten += int64(n)
	return err
}

func (wr *Writer) writePadded(p []byte) error {
	if err := wr.write(p); err != nil {
		return err
	}
	if rem := len(p) % 8; rem != 0 {
		return wr.write(pad[:8-rem])
	}
	return nil
}

// WriteSchema emits the stream magic and schema message.
func (wr *Writer) WriteSchema(s *Schema) error {
	if !wr.wroteMagic {
		if err := wr.write(streamMagic[:]); err != nil {
			return err
		}
		wr.wroteMagic = true
	}
	hdr := wr.scratch[:0]
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s.NumFields()))
	for _, f := range s.Fields {
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(f.Name)))
		hdr = append(hdr, f.Name...)
		hdr = append(hdr, byte(f.Type))
		if f.Nullable {
			hdr = append(hdr, 1)
		} else {
			hdr = append(hdr, 0)
		}
	}
	wr.scratch = hdr
	if err := wr.writeMessageHeader(msgSchema, hdr); err != nil {
		return err
	}
	wr.wroteSchema = true
	return nil
}

func (wr *Writer) writeMessageHeader(typ byte, hdr []byte) error {
	var h [5]byte
	h[0] = typ
	binary.LittleEndian.PutUint32(h[1:], uint32(len(hdr)))
	if err := wr.write(h[:]); err != nil {
		return err
	}
	return wr.writePadded(hdr)
}

// arrayBufs lists the buffers of one array in wire order.
func arrayBufs(a *Array) [][]byte {
	bufs := [][]byte{a.Validity, a.Offsets, a.Values}
	if a.Dict != nil {
		bufs = append(bufs, a.Dict.Validity, a.Dict.Offsets, a.Dict.Values)
	}
	return bufs
}

// WriteBatch emits one record batch. Column buffers are written directly —
// the zero-copy path for frozen blocks.
func (wr *Writer) WriteBatch(rb *RecordBatch) error {
	if !wr.wroteSchema {
		if err := wr.WriteSchema(rb.Schema); err != nil {
			return err
		}
	}
	hdr := wr.scratch[:0]
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(rb.NumRows))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(rb.Columns)))
	for _, c := range rb.Columns {
		hdr = append(hdr, byte(c.Type))
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(c.NullCount))
		if c.Dict != nil {
			hdr = append(hdr, 1)
			hdr = binary.LittleEndian.AppendUint32(hdr, uint32(c.Dict.Length))
		} else {
			hdr = append(hdr, 0)
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)
		}
		// Always six buffer-length slots (dict slots zero when absent) so
		// the header layout is fixed per column.
		bufs := arrayBufs(c)
		for j := 0; j < 6; j++ {
			var n int
			if j < len(bufs) {
				n = len(bufs[j])
			}
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(n))
		}
	}
	wr.scratch = hdr
	if err := wr.writeMessageHeader(msgBatch, hdr); err != nil {
		return err
	}
	for _, c := range rb.Columns {
		for _, buf := range arrayBufs(c) {
			if len(buf) == 0 {
				continue
			}
			if err := wr.writePadded(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close writes the end-of-stream marker and flushes.
func (wr *Writer) Close() error {
	if !wr.wroteMagic {
		if err := wr.write(streamMagic[:]); err != nil {
			return err
		}
	}
	var h [5]byte
	h[0] = msgEOS
	if err := wr.write(h[:]); err != nil {
		return err
	}
	return wr.w.Flush()
}

// Flush flushes buffered output without closing the stream.
func (wr *Writer) Flush() error { return wr.w.Flush() }

// WriteTable writes a schema, all batches of t, and the EOS marker.
func WriteTable(w io.Writer, t *Table) error {
	wr := NewWriter(w)
	if err := wr.WriteSchema(t.Schema); err != nil {
		return err
	}
	for _, b := range t.Batches {
		if err := wr.WriteBatch(b); err != nil {
			return err
		}
	}
	return wr.Close()
}

// Reader consumes an IPC stream.
type Reader struct {
	r         *bufio.Reader
	schema    *Schema
	readMagic bool
}

// NewReader wraps r in an IPC stream reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Schema returns the stream schema once a schema message has been read.
func (rd *Reader) Schema() *Schema { return rd.schema }

func (rd *Reader) readPadded(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return nil, err
	}
	if rem := n % 8; rem != 0 {
		if _, err := rd.r.Discard(8 - rem); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Next returns the next record batch, or io.EOF at end of stream. Schema
// messages are consumed transparently.
func (rd *Reader) Next() (*RecordBatch, error) {
	if !rd.readMagic {
		var m [8]byte
		if _, err := io.ReadFull(rd.r, m[:]); err != nil {
			return nil, err
		}
		if m != streamMagic {
			return nil, ErrBadMagic
		}
		rd.readMagic = true
	}
	for {
		var h [5]byte
		if _, err := io.ReadFull(rd.r, h[:]); err != nil {
			return nil, err
		}
		typ := h[0]
		hdrLen := int(binary.LittleEndian.Uint32(h[1:]))
		if typ == msgEOS {
			return nil, io.EOF
		}
		hdr, err := rd.readPadded(hdrLen)
		if err != nil {
			return nil, err
		}
		switch typ {
		case msgSchema:
			s, err := decodeSchema(hdr)
			if err != nil {
				return nil, err
			}
			rd.schema = s
		case msgBatch:
			if rd.schema == nil {
				return nil, ErrNoSchema
			}
			return rd.readBatch(hdr)
		default:
			return nil, fmt.Errorf("arrow/ipc: unknown message type %d", typ)
		}
	}
}

func decodeSchema(hdr []byte) (*Schema, error) {
	if len(hdr) < 4 {
		return nil, fmt.Errorf("arrow/ipc: short schema header")
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	hdr = hdr[4:]
	s := &Schema{Fields: make([]Field, 0, n)}
	for i := 0; i < n; i++ {
		if len(hdr) < 2 {
			return nil, fmt.Errorf("arrow/ipc: truncated schema field %d", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(hdr))
		hdr = hdr[2:]
		if len(hdr) < nameLen+2 {
			return nil, fmt.Errorf("arrow/ipc: truncated schema field %d", i)
		}
		name := string(hdr[:nameLen])
		typ := TypeID(hdr[nameLen])
		nullable := hdr[nameLen+1] == 1
		hdr = hdr[nameLen+2:]
		s.Fields = append(s.Fields, Field{Name: name, Type: typ, Nullable: nullable})
	}
	return s, nil
}

func (rd *Reader) readBatch(hdr []byte) (*RecordBatch, error) {
	if len(hdr) < 8 {
		return nil, fmt.Errorf("arrow/ipc: short batch header")
	}
	numRows := int(binary.LittleEndian.Uint32(hdr))
	ncols := int(binary.LittleEndian.Uint32(hdr[4:]))
	hdr = hdr[8:]
	type colMeta struct {
		typ       TypeID
		nullCount int
		dictLen   int
		hasDict   bool
		bufLens   [6]uint64
	}
	metas := make([]colMeta, ncols)
	for i := range metas {
		if len(hdr) < 10+6*8 {
			return nil, fmt.Errorf("arrow/ipc: truncated batch header col %d", i)
		}
		m := &metas[i]
		m.typ = TypeID(hdr[0])
		m.nullCount = int(binary.LittleEndian.Uint32(hdr[1:]))
		m.hasDict = hdr[5] == 1
		m.dictLen = int(binary.LittleEndian.Uint32(hdr[6:]))
		hdr = hdr[10:]
		for j := 0; j < 6; j++ {
			m.bufLens[j] = binary.LittleEndian.Uint64(hdr)
			hdr = hdr[8:]
		}
	}
	cols := make([]*Array, ncols)
	for i, m := range metas {
		bufs := make([][]byte, 6)
		for j := 0; j < 6; j++ {
			if m.bufLens[j] == 0 {
				continue
			}
			b, err := rd.readPadded(int(m.bufLens[j]))
			if err != nil {
				return nil, err
			}
			bufs[j] = b
		}
		a := &Array{
			Type:      m.typ,
			Length:    numRows,
			NullCount: m.nullCount,
			Validity:  bufs[0],
			Offsets:   bufs[1],
			Values:    bufs[2],
		}
		if m.hasDict {
			a.Dict = &Array{Type: STRING, Length: m.dictLen, Validity: bufs[3], Offsets: bufs[4], Values: bufs[5]}
		}
		if err := a.validate(); err != nil {
			return nil, err
		}
		cols[i] = a
	}
	return NewRecordBatch(rd.schema, cols)
}

// ReadTable consumes an entire stream into a Table.
func ReadTable(r io.Reader) (*Table, error) {
	rd := NewReader(r)
	var t *Table
	for {
		rb, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if t == nil {
			t = &Table{Schema: rd.Schema()}
		}
		t.Batches = append(t.Batches, rb)
	}
	if t == nil {
		if rd.Schema() == nil {
			return nil, fmt.Errorf("arrow/ipc: empty stream")
		}
		t = &Table{Schema: rd.Schema()}
	}
	return t, nil
}
