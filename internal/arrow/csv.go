package arrow

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV bridge. Figure 1 of the paper compares exporting a table through a SQL
// wire protocol against dumping it to CSV and re-parsing, against handing
// over in-memory buffers. These helpers implement the CSV leg: a text
// serialization that must be formatted on write and parsed on read — the
// "heavy-weight transformation" the paper wants to eliminate.

// WriteCSV renders all batches of t as RFC-4180 CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema.NumFields())
	for i, f := range t.Schema.Fields {
		header[i] = f.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, rb := range t.Batches {
		for i := 0; i < rb.NumRows; i++ {
			for j, col := range rb.Columns {
				row[j] = formatValue(col, i)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatValue(a *Array, i int) string {
	if a.IsNull(i) {
		return ""
	}
	switch a.Type {
	case BOOL:
		return strconv.FormatBool(a.Bool(i))
	case INT8:
		return strconv.FormatInt(int64(a.Int8(i)), 10)
	case INT16:
		return strconv.FormatInt(int64(a.Int16(i)), 10)
	case INT32:
		return strconv.FormatInt(int64(a.Int32(i)), 10)
	case INT64:
		return strconv.FormatInt(a.Int64(i), 10)
	case FLOAT64:
		return strconv.FormatFloat(a.Float64(i), 'g', -1, 64)
	case STRING, BINARY, DICT32:
		return a.Str(i)
	default:
		return ""
	}
}

// ReadCSV parses CSV produced by WriteCSV back into a Table with the given
// schema, batching batchRows rows per record batch (0 means one batch).
func ReadCSV(r io.Reader, schema *Schema, batchRows int) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("arrow/csv: reading header: %w", err)
	}
	if len(header) != schema.NumFields() {
		return nil, fmt.Errorf("arrow/csv: header has %d columns, schema %d", len(header), schema.NumFields())
	}
	t := &Table{Schema: schema}
	builders := newBuilders(schema)
	rows := 0
	flush := func() error {
		cols := make([]*Array, len(builders))
		for i, b := range builders {
			cols[i] = b.Finish()
		}
		rb, err := NewRecordBatch(schema, cols)
		if err != nil {
			return err
		}
		t.Batches = append(t.Batches, rb)
		builders = newBuilders(schema)
		rows = 0
		return nil
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i, field := range rec {
			if err := appendParsed(builders[i], schema.Fields[i], field); err != nil {
				return nil, err
			}
		}
		rows++
		if batchRows > 0 && rows >= batchRows {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if rows > 0 || len(t.Batches) == 0 {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func newBuilders(schema *Schema) []*Builder {
	bs := make([]*Builder, schema.NumFields())
	for i, f := range schema.Fields {
		bs[i] = NewBuilder(f.Type)
	}
	return bs
}

func appendParsed(b *Builder, f Field, s string) error {
	if s == "" && f.Nullable && f.Type != STRING && f.Type != BINARY && f.Type != DICT32 {
		b.AppendNull()
		return nil
	}
	switch f.Type {
	case BOOL:
		v, err := strconv.ParseBool(s)
		if err != nil {
			return fmt.Errorf("arrow/csv: field %s: %w", f.Name, err)
		}
		b.AppendBool(v)
	case INT8:
		v, err := strconv.ParseInt(s, 10, 8)
		if err != nil {
			return fmt.Errorf("arrow/csv: field %s: %w", f.Name, err)
		}
		b.AppendInt8(int8(v))
	case INT16:
		v, err := strconv.ParseInt(s, 10, 16)
		if err != nil {
			return fmt.Errorf("arrow/csv: field %s: %w", f.Name, err)
		}
		b.AppendInt16(int16(v))
	case INT32:
		v, err := strconv.ParseInt(s, 10, 32)
		if err != nil {
			return fmt.Errorf("arrow/csv: field %s: %w", f.Name, err)
		}
		b.AppendInt32(int32(v))
	case INT64:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("arrow/csv: field %s: %w", f.Name, err)
		}
		b.AppendInt64(v)
	case FLOAT64:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("arrow/csv: field %s: %w", f.Name, err)
		}
		b.AppendFloat64(v)
	case STRING, BINARY, DICT32:
		b.AppendString(s)
	default:
		return fmt.Errorf("arrow/csv: unsupported type %s", f.Type)
	}
	return nil
}
