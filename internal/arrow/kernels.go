package arrow

import (
	"encoding/binary"
	"math"

	"mainline/internal/util"
)

// Selection kernels: typed predicate evaluation over raw little-endian
// column buffers, appending the positions of matching rows to a selection
// slice. These are the batch-scan engine's inner loops — they run directly
// over a frozen block's Arrow memory (or a hot batch's scratch columns)
// with no per-row materialization. Nulls never match; a nil validity
// bitmap means the column has no nulls and the test is skipped.
//
// Integer bounds are inclusive on both sides (the predicate layer
// normalizes strict bounds). Float bounds carry explicit strictness
// because float bounds cannot be normalized by decrement; NaN values never
// match any range.

// SelInt64Range appends the positions in [0, n) whose 8-byte value v
// satisfies lo <= v <= hi.
func SelInt64Range(vals []byte, validity util.Bitmap, n int, lo, hi int64, out []uint32) []uint32 {
	if n == 0 {
		return out
	}
	_ = vals[n*8-1]
	if validity == nil {
		for i := 0; i < n; i++ {
			v := int64(binary.LittleEndian.Uint64(vals[i*8:]))
			if v >= lo && v <= hi {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		v := int64(binary.LittleEndian.Uint64(vals[i*8:]))
		if v >= lo && v <= hi && validity.Test(i) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// SelInt32Range appends the positions in [0, n) whose 4-byte value v
// satisfies lo <= v <= hi.
func SelInt32Range(vals []byte, validity util.Bitmap, n int, lo, hi int32, out []uint32) []uint32 {
	if n == 0 {
		return out
	}
	_ = vals[n*4-1]
	if validity == nil {
		for i := 0; i < n; i++ {
			v := int32(binary.LittleEndian.Uint32(vals[i*4:]))
			if v >= lo && v <= hi {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		v := int32(binary.LittleEndian.Uint32(vals[i*4:]))
		if v >= lo && v <= hi && validity.Test(i) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// SelInt16Range appends the positions in [0, n) whose 2-byte value v
// satisfies lo <= v <= hi.
func SelInt16Range(vals []byte, validity util.Bitmap, n int, lo, hi int16, out []uint32) []uint32 {
	if n == 0 {
		return out
	}
	_ = vals[n*2-1]
	for i := 0; i < n; i++ {
		v := int16(binary.LittleEndian.Uint16(vals[i*2:]))
		if v >= lo && v <= hi && (validity == nil || validity.Test(i)) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// SelInt8Range appends the positions in [0, n) whose 1-byte value v
// satisfies lo <= v <= hi.
func SelInt8Range(vals []byte, validity util.Bitmap, n int, lo, hi int8, out []uint32) []uint32 {
	if n == 0 {
		return out
	}
	_ = vals[n-1]
	for i := 0; i < n; i++ {
		v := int8(vals[i])
		if v >= lo && v <= hi && (validity == nil || validity.Test(i)) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// SelFloat64Range appends the positions in [0, n) whose float64 value
// falls inside the (lo, hi) range; each bound is inclusive unless its
// strict flag is set, and ±Inf bounds express one-sided ranges. NaN never
// matches.
func SelFloat64Range(vals []byte, validity util.Bitmap, n int, lo, hi float64, loStrict, hiStrict bool, out []uint32) []uint32 {
	if n == 0 {
		return out
	}
	_ = vals[n*8-1]
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(vals[i*8:]))
		if v < lo || v > hi || (loStrict && v == lo) || (hiStrict && v == hi) || v != v {
			continue
		}
		if validity == nil || validity.Test(i) {
			out = append(out, uint32(i))
		}
	}
	return out
}
