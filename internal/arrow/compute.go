package arrow

import "fmt"

// Minimal compute kernels. Examples and export clients use these to
// demonstrate analytics running directly over engine-emitted buffers — the
// paper's Figure 15 client passes exported data through a trivial compute
// step, as the client computation itself is irrelevant to the measurement.

// SumInt64 sums a non-null-skipping INT64 column; nulls contribute zero
// (their buffer slots are zeroed by the builders and the storage engine).
func SumInt64(a *Array) (int64, error) {
	if a.Type != INT64 {
		return 0, fmt.Errorf("arrow/compute: SumInt64 on %s", a.Type)
	}
	var sum int64
	for i := 0; i < a.Length; i++ {
		if a.IsValid(i) {
			sum += a.Int64(i)
		}
	}
	return sum, nil
}

// SumFloat64 sums a FLOAT64 column, skipping nulls.
func SumFloat64(a *Array) (float64, error) {
	if a.Type != FLOAT64 {
		return 0, fmt.Errorf("arrow/compute: SumFloat64 on %s", a.Type)
	}
	var sum float64
	for i := 0; i < a.Length; i++ {
		if a.IsValid(i) {
			sum += a.Float64(i)
		}
	}
	return sum, nil
}

// MinMaxInt64 returns the extrema of an INT64 column; ok is false if every
// value is null or the column is empty.
func MinMaxInt64(a *Array) (minV, maxV int64, ok bool, err error) {
	if a.Type != INT64 {
		return 0, 0, false, fmt.Errorf("arrow/compute: MinMaxInt64 on %s", a.Type)
	}
	for i := 0; i < a.Length; i++ {
		if a.IsNull(i) {
			continue
		}
		v := a.Int64(i)
		if !ok {
			minV, maxV, ok = v, v, true
			continue
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, ok, nil
}

// FilterInt64 returns the indices i where pred(value[i]) holds; nulls never
// match. The result is a selection vector in ascending order.
func FilterInt64(a *Array, pred func(int64) bool) ([]int, error) {
	if a.Type != INT64 {
		return nil, fmt.Errorf("arrow/compute: FilterInt64 on %s", a.Type)
	}
	var sel []int
	for i := 0; i < a.Length; i++ {
		if a.IsValid(i) && pred(a.Int64(i)) {
			sel = append(sel, i)
		}
	}
	return sel, nil
}

// CountValid returns the number of non-null values.
func CountValid(a *Array) int { return a.Length - a.NullCount }

// Checksum folds every buffer of every column of a batch into a 64-bit FNV-1a
// hash. Export clients use it to validate that bytes survived the wire, and
// as the stand-in "compute" over exported data.
func Checksum(rb *RecordBatch) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(p []byte) {
		for _, b := range p {
			h ^= uint64(b)
			h *= prime64
		}
	}
	for _, c := range rb.Columns {
		for _, buf := range arrayBufs(c) {
			mix(buf)
		}
	}
	return h
}
