package arrow

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	schema, rb := sampleBatch(t, 40)
	tab := &Table{Schema: schema, Batches: []*RecordBatch{rb}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, schema, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 40 {
		t.Fatalf("NumRows = %d", got.NumRows())
	}
	// Values survive (nulls in the name column come back as empty strings —
	// CSV cannot distinguish them, which is part of why CSV is a lossy,
	// costly interchange format).
	ri := 0
	for _, b := range got.Batches {
		for i := 0; i < b.NumRows; i++ {
			if b.Columns[0].Int64(i) != rb.Columns[0].Int64(ri) {
				t.Fatalf("row %d id mismatch", ri)
			}
			wantName := ""
			if !rb.Columns[1].IsNull(ri) {
				wantName = rb.Columns[1].Str(ri)
			}
			if b.Columns[1].Str(i) != wantName {
				t.Fatalf("row %d name mismatch", ri)
			}
			if b.Columns[3].Str(i) != rb.Columns[3].Str(ri) {
				t.Fatalf("row %d color mismatch", ri)
			}
			ri++
		}
	}
}

func TestCSVNullableInt(t *testing.T) {
	// Two columns: a single all-null column would serialize as a blank CSV
	// line, which encoding/csv skips — an inherent CSV ambiguity.
	schema := NewSchema(Field{"k", INT64, false}, Field{"v", INT64, true})
	k := NewBuilder(INT64)
	b := NewBuilder(INT64)
	k.AppendInt64(10)
	b.AppendInt64(1)
	k.AppendInt64(11)
	b.AppendNull()
	k.AppendInt64(12)
	b.AppendInt64(3)
	rb, _ := NewRecordBatch(schema, []*Array{k.Finish(), b.Finish()})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &Table{Schema: schema, Batches: []*RecordBatch{rb}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	col := got.Batches[0].Columns[1]
	if !col.IsNull(1) || col.IsNull(0) || col.IsNull(2) {
		t.Fatal("null int did not round-trip")
	}
}

func TestCSVHeaderMismatch(t *testing.T) {
	schema := NewSchema(Field{"a", INT64, false}, Field{"b", INT64, false})
	if _, err := ReadCSV(strings.NewReader("a\n1\n"), schema, 0); err == nil {
		t.Fatal("header mismatch accepted")
	}
}

func TestCSVParseError(t *testing.T) {
	schema := NewSchema(Field{"a", INT64, false})
	if _, err := ReadCSV(strings.NewReader("a\nnot-a-number\n"), schema, 0); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestCSVEmptyTable(t *testing.T) {
	schema := NewSchema(Field{"a", INT64, false})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &Table{Schema: schema}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatalf("NumRows = %d", got.NumRows())
	}
}
