package index

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"mainline/internal/storage"
)

func TestKeyBuilderOrdering(t *testing.T) {
	enc := func(v int64) []byte { return NewKeyBuilder(8).Int64(v).Clone() }
	vals := []int64{-(1 << 62), -1000, -1, 0, 1, 42, 1 << 62}
	for i := 1; i < len(vals); i++ {
		if bytes.Compare(enc(vals[i-1]), enc(vals[i])) >= 0 {
			t.Fatalf("Int64 order broken between %d and %d", vals[i-1], vals[i])
		}
	}
	encS := func(s string) []byte { return NewKeyBuilder(8).String(s).Clone() }
	strs := []string{"", "a", "aa", "ab", "b", "ba"}
	for i := 1; i < len(strs); i++ {
		if bytes.Compare(encS(strs[i-1]), encS(strs[i])) >= 0 {
			t.Fatalf("String order broken between %q and %q", strs[i-1], strs[i])
		}
	}
}

// Property: composite (int64, string) keys sort like their logical tuples.
func TestQuickCompositeKeyOrder(t *testing.T) {
	f := func(a1, a2 int64, s1, s2 string) bool {
		k1 := NewKeyBuilder(16).Int64(a1).String(s1).Clone()
		k2 := NewKeyBuilder(16).Int64(a2).String(s2).Clone()
		logical := 0
		switch {
		case a1 < a2:
			logical = -1
		case a1 > a2:
			logical = 1
		default:
			switch {
			case s1 < s2:
				logical = -1
			case s1 > s2:
				logical = 1
			}
		}
		return sign(bytes.Compare(k1, k2)) == logical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}

func TestKeyBuilderEmbeddedZeros(t *testing.T) {
	k1 := NewKeyBuilder(8).String("a\x00b").Clone()
	k2 := NewKeyBuilder(8).String("a\x00c").Clone()
	k3 := NewKeyBuilder(8).String("a").Clone()
	if bytes.Compare(k3, k1) >= 0 || bytes.Compare(k1, k2) >= 0 {
		t.Fatal("embedded zero ordering broken")
	}
}

func TestKeyBuilderFloat64Ordering(t *testing.T) {
	enc := func(v float64) []byte { return NewKeyBuilder(8).Float64(v).Clone() }
	vals := []float64{math.Inf(-1), -1e300, -1.5, -0.0, 1e-300, 1.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if bytes.Compare(enc(vals[i-1]), enc(vals[i])) >= 0 {
			t.Fatalf("Float64 order broken between %g and %g", vals[i-1], vals[i])
		}
	}
}

func TestNewShardedInvalidPrefixLen(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		if _, err := NewSharded(4, bad); !errors.Is(err, ErrInvalidPrefixLen) {
			t.Fatalf("NewSharded(4, %d) err = %v, want ErrInvalidPrefixLen", bad, err)
		}
	}
	if _, err := NewSharded(0, 1); err != nil {
		t.Fatalf("NewSharded(0, 1) err = %v", err)
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := PrefixEnd([]byte{1, 2, 3}); !bytes.Equal(got, []byte{1, 2, 4}) {
		t.Fatalf("PrefixEnd = %v", got)
	}
	if got := PrefixEnd([]byte{1, 0xFF}); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("PrefixEnd = %v", got)
	}
	if got := PrefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Fatalf("PrefixEnd = %v", got)
	}
}

func slotOf(i int) storage.TupleSlot { return storage.NewTupleSlot(uint64(i+1), 0) }

func TestBTreeBasicOps(t *testing.T) {
	tr := NewBTree()
	key := func(i int) []byte { return NewKeyBuilder(8).Int64(int64(i)).Clone() }
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Insert(key(i), slotOf(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		got, ok := tr.GetOne(key(i))
		if !ok || got != slotOf(i) {
			t.Fatalf("Get(%d) = %v %v", i, got, ok)
		}
	}
	if _, ok := tr.GetOne(key(n + 5)); ok {
		t.Fatal("found missing key")
	}
	// Ordered full scan.
	prev := -1
	count := 0
	tr.Scan(key(0), nil, func(k []byte, _ storage.TupleSlot) bool {
		count++
		cur := int(int64(bytesToUint(k)) - (1 << 62)) // not used for order check
		_ = cur
		if prev >= 0 && bytes.Compare(key(prev), k) > 0 {
			t.Fatal("scan out of order")
		}
		prev++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d", count)
	}
}

func bytesToUint(b []byte) uint64 {
	var v uint64
	for _, x := range b[:8] {
		v = v<<8 | uint64(x)
	}
	return v
}

func TestBTreeRangeScan(t *testing.T) {
	tr := NewBTree()
	key := func(i int) []byte { return NewKeyBuilder(8).Int64(int64(i)).Clone() }
	for i := 0; i < 500; i++ {
		tr.Insert(key(i), slotOf(i))
	}
	var got []int
	tr.Scan(key(100), key(110), func(k []byte, s storage.TupleSlot) bool {
		got = append(got, int(s.BlockID()-1))
		return true
	})
	if len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	count := 0
	tr.Scan(key(0), nil, func([]byte, storage.TupleSlot) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBTreeDuplicatesAndDelete(t *testing.T) {
	tr := NewBTree()
	k := NewKeyBuilder(8).String("dup").Clone()
	tr.Insert(k, slotOf(1))
	tr.Insert(k, slotOf(2))
	tr.Insert(k, slotOf(1)) // duplicate pair ignored
	if got := tr.Get(k, nil); len(got) != 2 {
		t.Fatalf("dup values = %v", got)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Delete(k, slotOf(1)) {
		t.Fatal("delete failed")
	}
	if got := tr.Get(k, nil); len(got) != 1 || got[0] != slotOf(2) {
		t.Fatalf("after delete: %v", got)
	}
	if tr.Delete(k, slotOf(99)) {
		t.Fatal("deleted missing value")
	}
	if !tr.Delete(k, 0) { // remove all
		t.Fatal("delete-all failed")
	}
	if tr.Get(k, nil) != nil || tr.Len() != 0 {
		t.Fatal("key survived delete-all")
	}
}

func TestBTreeInsertUnique(t *testing.T) {
	tr := NewBTree()
	k := NewKeyBuilder(8).Int64(7).Clone()
	if !tr.InsertUnique(k, slotOf(1)) {
		t.Fatal("first unique insert failed")
	}
	if tr.InsertUnique(k, slotOf(2)) {
		t.Fatal("duplicate unique insert succeeded")
	}
	got, _ := tr.GetOne(k)
	if got != slotOf(1) {
		t.Fatal("value clobbered")
	}
}

// Property: the tree agrees with a reference map under random operations.
func TestQuickBTreeVsModel(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := NewBTree()
		model := map[string]storage.TupleSlot{}
		for _, op := range ops {
			i := int(op % 512)
			k := NewKeyBuilder(8).Int64(int64(i)).Clone()
			switch (op / 512) % 3 {
			case 0:
				tr.Insert(k, slotOf(i))
				model[string(k)] = slotOf(i)
			case 1:
				tr.Delete(k, 0)
				delete(model, string(k))
			case 2:
				got, ok := tr.GetOne(k)
				want, wantOK := model[string(k)]
				if ok != wantOK || (ok && got != want) {
					return false
				}
			}
		}
		// Full scan equals sorted model.
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		ok := true
		tr.Scan([]byte{}, nil, func(k []byte, s storage.TupleSlot) bool {
			if i >= len(keys) || string(k) != keys[i] || s != model[keys[i]] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeConcurrentReaders(t *testing.T) {
	tr := NewBTree()
	key := func(i int) []byte { return NewKeyBuilder(8).Int64(int64(i)).Clone() }
	for i := 0; i < 5000; i++ {
		tr.Insert(key(i), slotOf(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				idx := (i * 37) % 5000
				if got, ok := tr.GetOne(key(idx)); !ok || got != slotOf(idx) {
					t.Errorf("concurrent read wrong at %d", idx)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestShardedSemantics(t *testing.T) {
	s, err := NewSharded(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Keys: (warehouse int64, counter int64).
	key := func(w, c int) []byte {
		return NewKeyBuilder(16).Int64(int64(w)).Int64(int64(c)).Clone()
	}
	for w := 0; w < 4; w++ {
		for c := 0; c < 100; c++ {
			s.Insert(key(w, c), slotOf(w*1000+c))
		}
	}
	if s.Len() != 400 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Point reads.
	got, ok := s.GetOne(key(2, 50))
	if !ok || got != slotOf(2050) {
		t.Fatal("sharded get wrong")
	}
	// Same-prefix range scan (single shard path).
	var seen []int
	s.Scan(key(1, 10), key(1, 20), func(_ []byte, v storage.TupleSlot) bool {
		seen = append(seen, int(v.BlockID()-1))
		return true
	})
	if len(seen) != 10 || seen[0] != 1010 {
		t.Fatalf("same-shard scan = %v", seen)
	}
	// Cross-shard scan (merge path) still yields global order.
	var keys [][]byte
	s.Scan(key(0, 0), nil, func(k []byte, _ storage.TupleSlot) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	})
	if len(keys) != 400 {
		t.Fatalf("cross-shard scan visited %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			t.Fatal("cross-shard scan out of order")
		}
	}
	// Unique inserts respect per-key uniqueness.
	if !s.InsertUnique(key(9, 9), slotOf(1)) || s.InsertUnique(key(9, 9), slotOf(2)) {
		t.Fatal("sharded unique semantics wrong")
	}
	// Delete.
	if !s.Delete(key(2, 50), slotOf(2050)) {
		t.Fatal("sharded delete failed")
	}
	if _, ok := s.GetOne(key(2, 50)); ok {
		t.Fatal("deleted key still present")
	}
}

func TestShardedConcurrentWriters(t *testing.T) {
	s, err := NewSharded(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	const per = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := NewKeyBuilder(16).Int64(int64(w)).Int64(int64(i)).Clone()
				s.Insert(k, slotOf(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*per {
		t.Fatalf("Len = %d", s.Len())
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i += 97 {
			k := NewKeyBuilder(16).Int64(int64(w)).Int64(int64(i)).Clone()
			got, ok := s.GetOne(k)
			if !ok || got != slotOf(w*per+i) {
				t.Fatalf("lost key %d/%d", w, i)
			}
		}
	}
}

func TestBTreeLargeSplits(t *testing.T) {
	tr := NewBTree()
	const n = 50000
	for i := 0; i < n; i++ {
		k := NewKeyBuilder(8).Int64(int64((i * 7919) % n)).Clone()
		tr.Insert(k, slotOf(i))
	}
	// Spot check deep-tree lookups.
	for i := 0; i < n; i += 1013 {
		k := NewKeyBuilder(8).Int64(int64(i)).Clone()
		if _, ok := tr.GetOne(k); !ok {
			t.Fatalf("missing key %d", i)
		}
	}
}

func TestShardedPrefixScan(t *testing.T) {
	s, err := NewSharded(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 20; c++ {
		k := NewKeyBuilder(16).Int64(7).Int64(int64(c)).Clone()
		s.Insert(k, slotOf(c))
	}
	prefix := NewKeyBuilder(8).Int64(7).Clone()
	count := 0
	s.ScanPrefix(prefix, func([]byte, storage.TupleSlot) bool {
		count++
		return true
	})
	if count != 20 {
		t.Fatalf("prefix scan visited %d", count)
	}
	_ = fmt.Sprint() // keep fmt import if unused elsewhere
}
