package index

import (
	"bytes"
	"hash/maphash"
	"sort"

	"mainline/internal/storage"
	"mainline/internal/util"
)

// Sharded partitions a logical index across many BTrees by hashing a fixed
// key prefix. Workloads whose keys open with a partition column (TPC-C's
// warehouse ID) get near-linear write concurrency, while range scans that
// fix the prefix stay within one shard. Cross-shard scans fall back to a
// merge.
type Sharded struct {
	shards    []*BTree
	prefixLen int
	seed      maphash.Seed
}

// NewSharded creates an index with the given shard count (rounded up to a
// power of two; values below 1 are treated as 1) hashing the first
// prefixLen key bytes. prefixLen must be at least 1 — shard selection
// hashes key[:prefixLen], so a non-positive length returns
// ErrInvalidPrefixLen instead of panicking at the first lookup.
func NewSharded(shardCount, prefixLen int) (*Sharded, error) {
	if prefixLen <= 0 {
		return nil, ErrInvalidPrefixLen
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	s := &Sharded{prefixLen: prefixLen, seed: maphash.MakeSeed()}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, NewBTree())
	}
	return s, nil
}

func (s *Sharded) shardOf(key []byte) *BTree {
	p := key
	if len(p) > s.prefixLen {
		p = p[:s.prefixLen]
	}
	var h maphash.Hash
	h.SetSeed(s.seed)
	_, _ = h.Write(p)
	return s.shards[h.Sum64()&uint64(len(s.shards)-1)]
}

// sameShard reports whether lo and hi share a full hash prefix, i.e. the
// scan provably stays within one shard.
func (s *Sharded) sameShard(lo, hi []byte) bool {
	if hi == nil {
		return false
	}
	if len(lo) < s.prefixLen || len(hi) < s.prefixLen {
		return false
	}
	return bytes.Equal(lo[:s.prefixLen], hi[:s.prefixLen])
}

// Len sums entries across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Insert adds (key, slot).
func (s *Sharded) Insert(key []byte, slot storage.TupleSlot) {
	s.shardOf(key).Insert(key, slot)
}

// InsertMulti adds (key, slot) without pair deduplication (see
// BTree.InsertMulti).
func (s *Sharded) InsertMulti(key []byte, slot storage.TupleSlot) {
	s.shardOf(key).InsertMulti(key, slot)
}

// InsertUnique adds (key, slot) if absent; reports success.
func (s *Sharded) InsertUnique(key []byte, slot storage.TupleSlot) bool {
	return s.shardOf(key).InsertUnique(key, slot)
}

// Get appends the slots under key to out (see BTree.Get).
func (s *Sharded) Get(key []byte, out []storage.TupleSlot) []storage.TupleSlot {
	return s.shardOf(key).Get(key, out)
}

// GetOne returns a single slot under key.
func (s *Sharded) GetOne(key []byte) (storage.TupleSlot, bool) {
	return s.shardOf(key).GetOne(key)
}

// Delete removes (key, slot) (slot 0 removes all values under key).
func (s *Sharded) Delete(key []byte, slot storage.TupleSlot) bool {
	return s.shardOf(key).Delete(key, slot)
}

// Scan visits [lo, hi) in key order. When the bounds share the hash prefix
// the scan touches a single shard; otherwise results from every shard are
// merged (correct but slower — workloads should fix the partition prefix).
func (s *Sharded) Scan(lo, hi []byte, fn func(key []byte, slot storage.TupleSlot) bool) {
	if s.sameShard(lo, hi) {
		s.shardOf(lo).Scan(lo, hi, fn)
		return
	}
	type pair struct {
		key  []byte
		slot storage.TupleSlot
	}
	var all []pair
	for _, sh := range s.shards {
		sh.Scan(lo, hi, func(k []byte, v storage.TupleSlot) bool {
			all = append(all, pair{append([]byte(nil), k...), v})
			return true
		})
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].key, all[j].key) < 0 })
	for _, p := range all {
		if !fn(p.key, p.slot) {
			return
		}
	}
}

// ScanPrefix visits keys starting with prefix.
func (s *Sharded) ScanPrefix(prefix []byte, fn func(key []byte, slot storage.TupleSlot) bool) {
	s.Scan(prefix, PrefixEnd(prefix), fn)
}

// Index is the interface shared by BTree and Sharded; table code programs
// against it.
type Index interface {
	Insert(key []byte, slot storage.TupleSlot)
	InsertMulti(key []byte, slot storage.TupleSlot)
	InsertUnique(key []byte, slot storage.TupleSlot) bool
	Get(key []byte, out []storage.TupleSlot) []storage.TupleSlot
	GetOne(key []byte) (storage.TupleSlot, bool)
	Delete(key []byte, slot storage.TupleSlot) bool
	Scan(lo, hi []byte, fn func(key []byte, slot storage.TupleSlot) bool)
	ScanPrefix(prefix []byte, fn func(key []byte, slot storage.TupleSlot) bool)
	Len() int
}

var (
	_ Index = (*BTree)(nil)
	_ Index = (*Sharded)(nil)
)

// DefaultShards picks a shard count for n expected concurrent writers.
func DefaultShards(n int) int {
	if n < 1 {
		n = 1
	}
	return util.AlignUp(n, 2)
}
