package index

import (
	"bytes"
	"sort"
	"sync"

	"mainline/internal/storage"
)

// Fanout bounds for nodes. 64-wide nodes keep the tree shallow while
// bounding copy costs on splits.
const (
	maxLeafKeys  = 64
	maxInnerKeys = 64
)

// BTree is an ordered map from memcomparable keys to TupleSlots supporting
// duplicate keys (each key holds a small set of slots). A single RWMutex
// guards the tree: point and range reads run concurrently; writers
// serialize. The Sharded wrapper spreads disjoint key spaces (e.g. TPC-C
// warehouses) over many trees to recover write concurrency.
type BTree struct {
	mu   sync.RWMutex
	root node
	size int
}

type node interface {
	// isLeaf discriminates without type switches on the hot path.
	isLeaf() bool
}

type leafNode struct {
	keys [][]byte
	vals [][]storage.TupleSlot
	next *leafNode
}

func (*leafNode) isLeaf() bool { return true }

type innerNode struct {
	// keys[i] is the smallest key in children[i+1].
	keys     [][]byte
	children []node
}

func (*innerNode) isLeaf() bool { return false }

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &leafNode{}}
}

// Len returns the number of (key, slot) pairs stored.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// findLeaf descends to the leaf that owns key, remembering the path.
func (t *BTree) findLeaf(key []byte, path *[]*innerNode) *leafNode {
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		if path != nil {
			*path = append(*path, in)
		}
		idx := sort.Search(len(in.keys), func(i int) bool { return bytes.Compare(in.keys[i], key) > 0 })
		n = in.children[idx]
	}
	return n.(*leafNode)
}

// Insert adds (key, slot). Duplicate (key, slot) pairs are ignored.
func (t *BTree) Insert(key []byte, slot storage.TupleSlot) {
	t.insert(key, slot, true)
}

// InsertMulti adds (key, slot) WITHOUT pair deduplication: an identical
// pair may be stored more than once, and each Delete removes exactly one
// instance. This is the commit-path primitive — every published entry is
// cancelled by exactly one deferred removal, so a re-published pair whose
// earlier incarnation still has a removal in flight survives it.
func (t *BTree) InsertMulti(key []byte, slot storage.TupleSlot) {
	t.insert(key, slot, false)
}

func (t *BTree) insert(key []byte, slot storage.TupleSlot, dedup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var path []*innerNode
	leaf := t.findLeaf(key, &path)
	idx := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if idx < len(leaf.keys) && bytes.Equal(leaf.keys[idx], key) {
		if dedup {
			for _, v := range leaf.vals[idx] {
				if v == slot {
					return
				}
			}
		}
		leaf.vals[idx] = append(leaf.vals[idx], slot)
		t.size++
		return
	}
	owned := append([]byte(nil), key...)
	leaf.keys = append(leaf.keys, nil)
	copy(leaf.keys[idx+1:], leaf.keys[idx:])
	leaf.keys[idx] = owned
	leaf.vals = append(leaf.vals, nil)
	copy(leaf.vals[idx+1:], leaf.vals[idx:])
	leaf.vals[idx] = []storage.TupleSlot{slot}
	t.size++
	if len(leaf.keys) > maxLeafKeys {
		t.splitLeaf(leaf, path)
	}
}

// InsertUnique adds (key, slot) only if the key is absent; reports whether
// the insert happened (unique-index semantics).
func (t *BTree) InsertUnique(key []byte, slot storage.TupleSlot) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	var path []*innerNode
	leaf := t.findLeaf(key, &path)
	idx := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if idx < len(leaf.keys) && bytes.Equal(leaf.keys[idx], key) {
		return false
	}
	owned := append([]byte(nil), key...)
	leaf.keys = append(leaf.keys, nil)
	copy(leaf.keys[idx+1:], leaf.keys[idx:])
	leaf.keys[idx] = owned
	leaf.vals = append(leaf.vals, nil)
	copy(leaf.vals[idx+1:], leaf.vals[idx:])
	leaf.vals[idx] = []storage.TupleSlot{slot}
	t.size++
	if len(leaf.keys) > maxLeafKeys {
		t.splitLeaf(leaf, path)
	}
	return true
}

func (t *BTree) splitLeaf(leaf *leafNode, path []*innerNode) {
	mid := len(leaf.keys) / 2
	right := &leafNode{
		keys: append([][]byte(nil), leaf.keys[mid:]...),
		vals: append([][]storage.TupleSlot(nil), leaf.vals[mid:]...),
		next: leaf.next,
	}
	leaf.keys = leaf.keys[:mid:mid]
	leaf.vals = leaf.vals[:mid:mid]
	leaf.next = right
	t.insertIntoParent(leaf, right.keys[0], right, path)
}

func (t *BTree) insertIntoParent(left node, sepKey []byte, right node, path []*innerNode) {
	if len(path) == 0 {
		t.root = &innerNode{keys: [][]byte{sepKey}, children: []node{left, right}}
		return
	}
	parent := path[len(path)-1]
	idx := sort.Search(len(parent.keys), func(i int) bool { return bytes.Compare(parent.keys[i], sepKey) > 0 })
	parent.keys = append(parent.keys, nil)
	copy(parent.keys[idx+1:], parent.keys[idx:])
	parent.keys[idx] = sepKey
	parent.children = append(parent.children, nil)
	copy(parent.children[idx+2:], parent.children[idx+1:])
	parent.children[idx+1] = right
	if len(parent.keys) > maxInnerKeys {
		t.splitInner(parent, path[:len(path)-1])
	}
}

func (t *BTree) splitInner(in *innerNode, path []*innerNode) {
	mid := len(in.keys) / 2
	sep := in.keys[mid]
	right := &innerNode{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	t.insertIntoParent(in, sep, right, path)
}

// Get appends the slots stored under key to out and returns the extended
// slice (out unchanged if the key is absent). The matches are copied while
// the tree latch is held, so the result stays valid — and race-free —
// under concurrent writers; pass a reusable scratch slice to avoid
// allocation on hot paths.
func (t *BTree) Get(key []byte, out []storage.TupleSlot) []storage.TupleSlot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key, nil)
	idx := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if idx < len(leaf.keys) && bytes.Equal(leaf.keys[idx], key) {
		out = append(out, leaf.vals[idx]...)
	}
	return out
}

// GetOne returns a single slot for key (unique-index read).
func (t *BTree) GetOne(key []byte) (storage.TupleSlot, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key, nil)
	idx := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if idx < len(leaf.keys) && bytes.Equal(leaf.keys[idx], key) && len(leaf.vals[idx]) > 0 {
		return leaf.vals[idx][0], true
	}
	return 0, false
}

// Delete removes (key, slot); with slot == 0 it removes every value under
// the key. Reports whether anything was removed. (Leaves are allowed to
// underflow — the engine's deletes are rare relative to lookups, matching
// the paper's index usage.)
func (t *BTree) Delete(key []byte, slot storage.TupleSlot) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.findLeaf(key, nil)
	idx := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if idx >= len(leaf.keys) || !bytes.Equal(leaf.keys[idx], key) {
		return false
	}
	if slot == 0 {
		t.size -= len(leaf.vals[idx])
		leaf.keys = append(leaf.keys[:idx], leaf.keys[idx+1:]...)
		leaf.vals = append(leaf.vals[:idx], leaf.vals[idx+1:]...)
		return true
	}
	vals := leaf.vals[idx]
	for i, v := range vals {
		if v == slot {
			leaf.vals[idx] = append(vals[:i], vals[i+1:]...)
			t.size--
			if len(leaf.vals[idx]) == 0 {
				leaf.keys = append(leaf.keys[:idx], leaf.keys[idx+1:]...)
				leaf.vals = append(leaf.vals[:idx], leaf.vals[idx+1:]...)
			}
			return true
		}
	}
	return false
}

// Scan visits keys in [lo, hi) in order, calling fn for each (key, slot)
// pair; hi == nil means unbounded. fn returning false stops the scan.
func (t *BTree) Scan(lo, hi []byte, fn func(key []byte, slot storage.TupleSlot) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(lo, nil)
	idx := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], lo) >= 0 })
	for leaf != nil {
		for ; idx < len(leaf.keys); idx++ {
			if hi != nil && bytes.Compare(leaf.keys[idx], hi) >= 0 {
				return
			}
			for _, v := range leaf.vals[idx] {
				if !fn(leaf.keys[idx], v) {
					return
				}
			}
		}
		leaf = leaf.next
		idx = 0
	}
}

// ScanPrefix visits every (key, slot) whose key starts with prefix.
func (t *BTree) ScanPrefix(prefix []byte, fn func(key []byte, slot storage.TupleSlot) bool) {
	t.Scan(prefix, PrefixEnd(prefix), fn)
}
