// Package index provides the ordered-index substrate the paper's evaluation
// runs on (it uses the OpenBw-Tree; we provide a concurrent B+tree — see
// DESIGN.md "Substitutions"). Keys are memcomparable byte strings built by
// KeyBuilder so multi-column keys sort correctly under bytes.Compare, and a
// hash-sharded wrapper spreads independent key ranges (e.g. TPC-C
// warehouses) across lock domains.
package index

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrInvalidPrefixLen is returned by NewSharded when prefixLen is not
// positive: the sharded index hashes the first prefixLen key bytes to pick
// a shard, and a non-positive length has no well-defined hash domain
// (earlier versions panicked slicing key[:prefixLen]).
var ErrInvalidPrefixLen = errors.New("index: sharded index prefixLen must be >= 1")

// KeyBuilder assembles order-preserving composite keys. Each appended
// column is encoded so that the concatenation compares (bytewise) in the
// same order as the column tuple compares logically.
type KeyBuilder struct {
	buf []byte
}

// NewKeyBuilder returns a builder with optional capacity hint.
func NewKeyBuilder(capacity int) *KeyBuilder {
	return &KeyBuilder{buf: make([]byte, 0, capacity)}
}

// Reset clears the builder for reuse.
func (k *KeyBuilder) Reset() *KeyBuilder {
	k.buf = k.buf[:0]
	return k
}

// Bytes returns the encoded key (aliases the builder; copy to retain).
func (k *KeyBuilder) Bytes() []byte { return k.buf }

// Clone returns an owned copy of the encoded key.
func (k *KeyBuilder) Clone() []byte { return append([]byte(nil), k.buf...) }

// Uint64 appends an unsigned integer (big-endian sorts naturally).
func (k *KeyBuilder) Uint64(v uint64) *KeyBuilder {
	k.buf = binary.BigEndian.AppendUint64(k.buf, v)
	return k
}

// Int64 appends a signed integer: flipping the sign bit makes negative
// values sort before positive ones bytewise.
func (k *KeyBuilder) Int64(v int64) *KeyBuilder {
	return k.Uint64(uint64(v) ^ (1 << 63))
}

// Int32 appends a 32-bit signed integer.
func (k *KeyBuilder) Int32(v int32) *KeyBuilder {
	k.buf = binary.BigEndian.AppendUint32(k.buf, uint32(v)^(1<<31))
	return k
}

// Int16 appends a 16-bit signed integer.
func (k *KeyBuilder) Int16(v int16) *KeyBuilder {
	k.buf = binary.BigEndian.AppendUint16(k.buf, uint16(v)^(1<<15))
	return k
}

// Int8 appends an 8-bit signed integer.
func (k *KeyBuilder) Int8(v int8) *KeyBuilder {
	k.buf = append(k.buf, uint8(v)^(1<<7))
	return k
}

// Float64 appends a float64 in an order-preserving encoding: positive
// values get their sign bit set, negative values are bitwise complemented,
// so the byte order matches the numeric order (NaNs sort above +Inf).
func (k *KeyBuilder) Float64(v float64) *KeyBuilder {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	k.buf = binary.BigEndian.AppendUint64(k.buf, bits)
	return k
}

// String appends a variable-length byte string terminated so that prefixes
// sort before extensions and embedded zero bytes stay ordered: every 0x00
// becomes 0x00 0xFF, and the value ends with 0x00 0x01.
func (k *KeyBuilder) String(s string) *KeyBuilder {
	for i := 0; i < len(s); i++ {
		c := s[i]
		k.buf = append(k.buf, c)
		if c == 0x00 {
			k.buf = append(k.buf, 0xFF)
		}
	}
	k.buf = append(k.buf, 0x00, 0x01)
	return k
}

// RawBytes appends bytes with the same escaping as String.
func (k *KeyBuilder) RawBytes(b []byte) *KeyBuilder {
	return k.String(string(b))
}

// PrefixEnd returns the smallest key strictly greater than every key having
// prefix p, or nil if p is all 0xFF (no upper bound). Used for prefix range
// scans.
func PrefixEnd(p []byte) []byte {
	end := append([]byte(nil), p...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
