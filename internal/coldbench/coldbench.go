// Package coldbench is the cold-tier scan sweep behind `mainline-bench
// cold`: batch-scan throughput over a fully evicted table across block
// cache budgets, against the resident baseline, plus the pruned-vs-
// fetched byte accounting for a zone-map-selective predicate. Like
// internal/recoverybench it imports the root package, so it lives
// outside internal/bench (which the root test binary links).
package coldbench

import (
	"fmt"
	"os"
	"time"

	"mainline"
	"mainline/internal/benchutil"
	"mainline/internal/objstore"
	"mainline/internal/storage"
	"mainline/internal/transform"
)

// Config sizes the cold-scan sweep.
type Config struct {
	// Blocks and PerBlock size the table (sealed blocks × rows).
	Blocks   int
	PerBlock int
	// Iters is the measured scan repetitions per point.
	Iters int
	// Budgets are the block cache budgets to sweep
	// (mainline.BlockCacheNone / byte counts / mainline.BlockCacheUnlimited).
	Budgets []int64
	// Dir receives the per-point object stores ("" = temp, removed).
	Dir string
}

// DefaultConfig is the laptop-scale sweep: no cache, a cache that holds
// roughly half the table, and an unlimited cache.
func DefaultConfig() Config {
	return Config{
		Blocks:   6,
		PerBlock: 4000,
		Iters:    8,
		Budgets:  []int64{mainline.BlockCacheNone, 4 << 20, mainline.BlockCacheUnlimited},
	}
}

// Point is one budget's measurement.
type Point struct {
	Budget int64
	// Rates in rows/sec: the resident (never evicted) baseline, the
	// first cold scan after eviction (cache empty), and the steady-state
	// cache-warm scan.
	ResidentRate float64
	ColdRate     float64
	WarmRate     float64
	// WarmFetches counts object-store reads during the warm iterations —
	// zero for a budget that holds the working set.
	WarmFetches int64
	// PrunedBlocks and PrunedFetches describe the selective predicate:
	// cold blocks skipped by zone maps, and store reads it still cost.
	PrunedBlocks  int64
	PrunedFetches int64
}

func budgetLabel(b int64) string {
	switch b {
	case mainline.BlockCacheNone:
		return "none"
	case mainline.BlockCacheUnlimited:
		return "unlimited"
	default:
		return fmt.Sprintf("%dMB", b>>20)
	}
}

// ColdScan runs the sweep and returns the comparison table alongside the
// raw points (the CI acceptance gate asserts on them directly).
func ColdScan(cfg Config) (*benchutil.Table, []Point, error) {
	if cfg.Blocks <= 0 || cfg.PerBlock <= 0 {
		d := DefaultConfig()
		cfg.Blocks, cfg.PerBlock = d.Blocks, d.PerBlock
	}
	if cfg.Iters <= 0 {
		cfg.Iters = DefaultConfig().Iters
	}
	if len(cfg.Budgets) == 0 {
		cfg.Budgets = DefaultConfig().Budgets
	}
	root := cfg.Dir
	if root == "" {
		dir, err := os.MkdirTemp("", "mainline-coldbench")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		root = dir
	}

	t := &benchutil.Table{
		Title: "Cold-tier scan throughput vs block cache budget",
		Note: fmt.Sprintf("%d blocks × %d rows, batch scans; warm = steady-state after the cold pass refilled the cache",
			cfg.Blocks, cfg.PerBlock),
		Header: []string{"cache", "resident Mrows/s", "cold Mrows/s", "warm Mrows/s", "warm/resident", "warm fetches", "pruned blocks", "pruned fetches"},
	}
	var points []Point
	for i, budget := range cfg.Budgets {
		pt, err := coldPoint(fmt.Sprintf("%s/pt-%d", root, i), budget, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("coldbench: budget %s: %w", budgetLabel(budget), err)
		}
		points = append(points, pt)
		t.AddRow(
			budgetLabel(budget),
			fmt.Sprintf("%.1f", pt.ResidentRate/1e6),
			fmt.Sprintf("%.1f", pt.ColdRate/1e6),
			fmt.Sprintf("%.1f", pt.WarmRate/1e6),
			benchutil.Ratio(pt.WarmRate, pt.ResidentRate),
			fmt.Sprintf("%d", pt.WarmFetches),
			fmt.Sprintf("%d", pt.PrunedBlocks),
			fmt.Sprintf("%d", pt.PrunedFetches),
		)
	}
	return t, points, nil
}

func coldPoint(dir string, budget int64, cfg Config) (Point, error) {
	pt := Point{Budget: budget}
	fs, err := objstore.NewFSStore(dir, nil)
	if err != nil {
		return pt, err
	}
	cs := objstore.NewCountingStore(fs)
	eng, err := mainline.Open(
		mainline.WithObjectStoreBackend(cs),
		mainline.WithBlockCacheBytes(budget),
		mainline.WithTierSweepInterval(time.Hour),
	)
	if err != nil {
		return pt, err
	}
	defer eng.Close()
	tbl, err := eng.CreateTable("cold", mainline.NewSchema(
		mainline.Field{Name: "id", Type: mainline.INT64},
		mainline.Field{Name: "payload", Type: mainline.STRING},
		mainline.Field{Name: "amount", Type: mainline.INT64},
	))
	if err != nil {
		return pt, err
	}
	// Sealed blocks with disjoint, 1e6-spaced id ranges so the selective
	// predicate below prunes all but one block by zone map alone.
	total := int64(0)
	for b := 0; b < cfg.Blocks; b++ {
		if err := eng.Update(func(tx *mainline.Txn) error {
			row := tbl.NewRow()
			for i := 0; i < cfg.PerBlock; i++ {
				id := int64(b)*1_000_000 + int64(i)
				row.Reset()
				row.Set("id", id)
				row.Set("payload", fmt.Sprintf("payload-%010d-some-tail", id))
				row.Set("amount", id%997)
				if _, err := tbl.Insert(tx, row); err != nil {
					return err
				}
				total++
			}
			return nil
		}); err != nil {
			return pt, err
		}
		blks := tbl.Blocks()
		blks[len(blks)-1].SetInsertHead(blks[len(blks)-1].Layout.NumSlots)
	}
	// Freeze without compaction so blocks keep their disjoint id ranges —
	// compaction would merge them and defeat the zone-pruning scenario.
	for i := 0; i < 3; i++ {
		eng.RunGC()
	}
	for _, blk := range tbl.Blocks() {
		if blk.HasActiveVersions() {
			return pt, fmt.Errorf("version chains not pruned; cannot freeze")
		}
		blk.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(blk, transform.ModeGather); err != nil {
			return pt, err
		}
	}

	scanOnce := func() error {
		return eng.View(func(tx *mainline.Txn) error {
			seen := int64(0)
			if err := tbl.ScanBatches(tx, nil, nil, func(b *mainline.Batch) bool {
				seen += int64(b.Len())
				return true
			}); err != nil {
				return err
			}
			if seen != total {
				return fmt.Errorf("scan saw %d rows, want %d", seen, total)
			}
			return nil
		})
	}
	rate := func(iters int) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := scanOnce(); err != nil {
				return 0, err
			}
		}
		return float64(total) * float64(iters) / time.Since(start).Seconds(), nil
	}

	// Resident baseline: frozen, never evicted.
	if pt.ResidentRate, err = rate(cfg.Iters); err != nil {
		return pt, err
	}

	if _, err := eng.Admin().EvictAll(); err != nil {
		return pt, err
	}
	// Cold pass: every block fetched (or refetched, for budgets too small
	// to retain them).
	if pt.ColdRate, err = rate(1); err != nil {
		return pt, err
	}
	// Warm passes: steady state at this budget.
	fetches0 := eng.Stats().Tier.Fetches
	if pt.WarmRate, err = rate(cfg.Iters); err != nil {
		return pt, err
	}
	pt.WarmFetches = eng.Stats().Tier.Fetches - fetches0

	// Selective predicate: block 0's id range only; every other cold
	// block must be pruned by its manifest zone map without a store read.
	scanBefore, gets := eng.Stats().Scan, cs.Gets()
	if err := eng.View(func(tx *mainline.Txn) error {
		n := 0
		if err := tbl.Filter(tx, mainline.Between("id", 0, int64(cfg.PerBlock)-1), nil,
			func(_ mainline.TupleSlot, _ *mainline.Row) bool {
				n++
				return true
			}); err != nil {
			return err
		}
		if n != cfg.PerBlock {
			return fmt.Errorf("selective scan matched %d rows, want %d", n, cfg.PerBlock)
		}
		return nil
	}); err != nil {
		return pt, err
	}
	pt.PrunedBlocks = eng.Stats().Scan.BlocksPrunedCold - scanBefore.BlocksPrunedCold
	pt.PrunedFetches = cs.Gets() - gets
	return pt, nil
}
