// Package transform implements the paper's block transformation pipeline
// (§4): the access observer that identifies cooling blocks from GC-harvested
// statistics, the two-phase hybrid transformation — Phase 1 transactional
// compaction with the approximate (and optional optimal) block-selection
// algorithm, Phase 2 in-place variable-length gather under the multi-stage
// hot/cooling/freezing/frozen lock — and the dictionary-compression
// alternative gather target.
package transform

import (
	"sync"
	"time"

	"mainline/internal/core"
	"mainline/internal/storage"
)

// Observer collects block modification times from the garbage collector's
// pass over undo records (§4.2). It never runs on the transaction critical
// path: the time of a GC invocation stands in for the modification time —
// never early, late by at most one GC period.
type Observer struct {
	mu     sync.Mutex
	tables []*core.DataTable
	// lastMod maps block ID to the wall-clock time of the GC run that last
	// observed a modification in it.
	lastMod map[uint64]time.Time
	// firstSeen is when a block entered observation (bulk-loaded blocks
	// cool from their registration time).
	firstSeen map[uint64]time.Time

	// now is injectable for tests.
	now func() time.Time
}

// NewObserver creates an empty observer.
func NewObserver() *Observer {
	return &Observer{
		lastMod:   make(map[uint64]time.Time),
		firstSeen: make(map[uint64]time.Time),
		now:       time.Now,
	}
}

// Watch registers a table for cold-block detection.
func (o *Observer) Watch(t *core.DataTable) {
	o.mu.Lock()
	o.tables = append(o.tables, t)
	o.mu.Unlock()
}

// ObserveModification implements gc.AccessObserver: the GC reports each
// undo record's slot and kind with the GC-run epoch. Only the block
// identity and the wall-clock arrival matter for cooling detection.
func (o *Observer) ObserveModification(slot storage.TupleSlot, _ storage.RecordKind, _ uint64) {
	o.mu.Lock()
	o.lastMod[slot.BlockID()] = o.now()
	o.mu.Unlock()
}

// ColdGroup pairs a table with blocks of that table deemed cold.
type ColdGroup struct {
	Table  *core.DataTable
	Blocks []*storage.Block
}

// Sweep scans watched tables for hot blocks that have not been modified for
// at least threshold and returns them grouped by table (compaction groups
// only ever mix blocks with the same layout — the paper groups per table).
// Swept blocks are dropped from the modification map so they are not
// re-reported until touched again.
func (o *Observer) Sweep(threshold time.Duration) []ColdGroup {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	var groups []ColdGroup
	for _, table := range o.tables {
		var cold []*storage.Block
		for _, b := range table.Blocks() {
			if b.State() != storage.StateHot {
				continue
			}
			if b.InsertHead() == 0 {
				continue // nothing to freeze
			}
			last, touched := o.lastMod[b.ID]
			if !touched {
				first, seen := o.firstSeen[b.ID]
				if !seen && threshold > 0 {
					o.firstSeen[b.ID] = now
					continue
				}
				last = first
			}
			if now.Sub(last) >= threshold {
				cold = append(cold, b)
				delete(o.lastMod, b.ID)
				delete(o.firstSeen, b.ID)
			}
		}
		if len(cold) > 0 {
			groups = append(groups, ColdGroup{Table: table, Blocks: cold})
		}
	}
	return groups
}

// SetClock overrides the observer's clock (tests).
func (o *Observer) SetClock(now func() time.Time) { o.now = now }
