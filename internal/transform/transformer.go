package transform

import (
	"sync"
	"sync/atomic"
	"time"

	"mainline/internal/core"
	"mainline/internal/gc"
	metrics "mainline/internal/obs"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// Config tunes the transformation pipeline.
type Config struct {
	// Threshold is how long a block must go unmodified before it is
	// considered cold (the paper's aggressive setting is 10 ms).
	Threshold time.Duration
	// GroupSize caps blocks per compaction group (Figure 14's knob);
	// 0 means all cold blocks of a table form one group.
	GroupSize int
	// Mode selects plain gather or dictionary compression.
	Mode Mode
	// Optimal enables the exhaustive partial-block selection; the
	// approximate algorithm is the default (§4.3).
	Optimal bool
	// OnMove propagates tuple movements (index maintenance hook).
	OnMove OnMove
}

// DefaultConfig mirrors the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{Threshold: 10 * time.Millisecond, GroupSize: 50, Mode: ModeGather}
}

// Stats counts pipeline work since creation.
type Stats struct {
	GroupsCompacted int64
	TuplesMoved     int64
	BlocksFrozen    int64
	BlocksRecycled  int64
	CompactionFails int64
	FreezeRetries   int64
	Preemptions     int64
}

// Transformer drives blocks from hot to frozen: it sweeps the observer for
// cold groups, compacts them transactionally, waits for the GC to clear the
// compaction's versions, then freezes block by block.
type Transformer struct {
	mgr *txn.Manager
	gc  *gc.GarbageCollector
	obs *Observer
	cfg Config

	mu sync.Mutex
	// cooling tracks blocks between compaction and freeze, with their table.
	cooling []coolingEntry

	stats struct {
		groupsCompacted atomic.Int64
		tuplesMoved     atomic.Int64
		blocksFrozen    atomic.Int64
		blocksRecycled  atomic.Int64
		compactionFails atomic.Int64
		freezeRetries   atomic.Int64
		preemptions     atomic.Int64
	}

	stopCh  chan struct{}
	doneCh  chan struct{}
	started atomic.Bool

	// duty, when set, accounts pipeline-pass busy time (the merge
	// interference signal the maintenance scheduler will watch).
	duty *metrics.Duty
}

// SetDuty installs the duty meter (nil disables). Call before Start.
func (tr *Transformer) SetDuty(d *metrics.Duty) { tr.duty = d }

type coolingEntry struct {
	table *core.DataTable
	block *storage.Block
}

// New creates a transformer. collector may be nil (tests, synchronous
// benches); block recycling then happens immediately instead of epoch-
// deferred.
func New(mgr *txn.Manager, collector *gc.GarbageCollector, obs *Observer, cfg Config) *Transformer {
	return &Transformer{mgr: mgr, gc: collector, obs: obs, cfg: cfg}
}

// Observer returns the transformer's access observer.
func (tr *Transformer) Observer() *Observer { return tr.obs }

// Stats snapshots pipeline counters.
func (tr *Transformer) Stats() Stats {
	return Stats{
		GroupsCompacted: tr.stats.groupsCompacted.Load(),
		TuplesMoved:     tr.stats.tuplesMoved.Load(),
		BlocksFrozen:    tr.stats.blocksFrozen.Load(),
		BlocksRecycled:  tr.stats.blocksRecycled.Load(),
		CompactionFails: tr.stats.compactionFails.Load(),
		FreezeRetries:   tr.stats.freezeRetries.Load(),
		Preemptions:     tr.stats.preemptions.Load(),
	}
}

// RunOnce performs one pipeline pass: sweep for new cold groups, compact
// them, and attempt to freeze cooling blocks. Returns the number of blocks
// frozen this pass.
func (tr *Transformer) RunOnce() int {
	defer tr.duty.Track()()
	for _, group := range tr.obs.Sweep(tr.cfg.Threshold) {
		tr.CompactAndQueue(group.Table, group.Blocks)
	}
	return tr.FreezePass()
}

// ForcePass is RunOnce with a zero cold threshold: every hot block is
// treated as cold immediately. Benchmarks and bulk-freeze paths use it to
// reach a fully frozen database deterministically.
func (tr *Transformer) ForcePass() int {
	for _, group := range tr.obs.Sweep(0) {
		tr.CompactAndQueue(group.Table, group.Blocks)
	}
	return tr.FreezePass()
}

// CompactAndQueue runs Phase 1 over the given cold blocks of one table,
// splitting them into compaction groups of the configured size, and queues
// the surviving blocks for the gather phase.
func (tr *Transformer) CompactAndQueue(table *core.DataTable, blocks []*storage.Block) {
	groupSize := tr.cfg.GroupSize
	if groupSize <= 0 || groupSize > len(blocks) {
		groupSize = len(blocks)
	}
	for start := 0; start < len(blocks); start += groupSize {
		end := start + groupSize
		if end > len(blocks) {
			end = len(blocks)
		}
		group := blocks[start:end]
		res, err := CompactGroup(tr.mgr, table, group, tr.cfg.Optimal, tr.cfg.OnMove)
		if err != nil {
			// A user transaction won the conflict; the blocks stay hot and
			// the observer will re-report them once they cool again.
			tr.stats.compactionFails.Add(1)
			continue
		}
		tr.stats.groupsCompacted.Add(1)
		tr.stats.tuplesMoved.Add(int64(res.Moved))
		tr.recycle(table, res.EmptiedBlocks)

		tr.mu.Lock()
		if res.Plan != nil {
			for _, b := range res.Plan.Full {
				tr.cooling = append(tr.cooling, coolingEntry{table, b})
			}
			if res.Plan.Partial != nil {
				tr.cooling = append(tr.cooling, coolingEntry{table, res.Plan.Partial})
			}
		}
		tr.mu.Unlock()
	}
}

// recycle returns emptied blocks to the system once no transaction can
// still read their old tuples (epoch-deferred through the GC).
func (tr *Transformer) recycle(table *core.DataTable, blocks []*storage.Block) {
	if len(blocks) == 0 {
		return
	}
	free := func() {
		for _, b := range blocks {
			table.RemoveBlock(b)
			tr.stats.blocksRecycled.Add(1)
		}
	}
	if tr.gc != nil {
		tr.gc.RegisterAction(free)
	} else {
		free()
	}
}

// FreezePass tries to move every cooling block to frozen; blocks whose
// versions are still visible stay queued, preempted blocks (flipped back to
// hot by a user write) are dropped back to the observer's care.
func (tr *Transformer) FreezePass() int {
	tr.mu.Lock()
	pending := tr.cooling
	tr.cooling = nil
	tr.mu.Unlock()

	frozen := 0
	var retry []coolingEntry
	for _, e := range pending {
		switch tr.TryFreeze(e.block) {
		case freezeDone:
			frozen++
		case freezeRetry:
			retry = append(retry, e)
		case freezePreempted:
			// Block went hot again; the observer re-detects it later.
		}
	}
	tr.mu.Lock()
	tr.cooling = append(tr.cooling, retry...)
	tr.mu.Unlock()
	return frozen
}

type freezeOutcome int

const (
	freezeDone freezeOutcome = iota
	freezeRetry
	freezePreempted
)

// TryFreeze runs the Phase-2 entry protocol on one cooling block (§4.3):
// the block must still be cooling (a user transaction may have preempted by
// CASing it back to hot) and its version column must be clear — any version
// implies a transaction overlapping the compaction transaction whose
// records the GC cannot have pruned yet, which is exactly the evidence the
// cooling sentinel exists to catch (Figure 9). Only then does the block
// move to freezing for the gather critical section.
func (tr *Transformer) TryFreeze(block *storage.Block) freezeOutcome {
	if block.State() != storage.StateCooling {
		tr.stats.preemptions.Add(1)
		return freezePreempted
	}
	if block.HasActiveVersions() {
		// Versions linger: the compaction transaction's records (or a
		// racing writer's) have not been unlinked yet. Wait for the GC.
		tr.stats.freezeRetries.Add(1)
		return freezeRetry
	}
	if !block.CASState(storage.StateCooling, storage.StateFreezing) {
		tr.stats.preemptions.Add(1)
		return freezePreempted
	}
	// Exclusive: perform the gather. A failure here (should not happen on a
	// compacted block) returns the block to the hot state.
	if err := GatherBlock(block, tr.cfg.Mode); err != nil {
		block.SetState(storage.StateHot)
		tr.stats.compactionFails.Add(1)
		return freezePreempted
	}
	tr.stats.blocksFrozen.Add(1)
	return freezeDone
}

// CoolingCount reports blocks queued between compaction and freeze.
func (tr *Transformer) CoolingCount() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.cooling)
}

// Start launches the background pipeline with the given pass period.
func (tr *Transformer) Start(period time.Duration) {
	if tr.started.Swap(true) {
		return
	}
	tr.stopCh = make(chan struct{})
	tr.doneCh = make(chan struct{})
	go func() {
		defer close(tr.doneCh)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-tr.stopCh:
				return
			case <-ticker.C:
				tr.RunOnce()
			}
		}
	}()
}

// Stop halts the background pipeline.
func (tr *Transformer) Stop() {
	if !tr.started.Swap(false) {
		return
	}
	close(tr.stopCh)
	<-tr.doneCh
}
