package transform

import (
	"fmt"
	"sort"

	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// blockOccupancy is the Phase-1 scan result for one block.
type blockOccupancy struct {
	block  *storage.Block
	filled []uint32 // allocated slot offsets, ascending
	empty  int      // empty slots counted against full capacity
}

// CompactionPlan describes which blocks become full (F), which block ends
// partially filled (p), and which end empty (E) — the paper's selection
// (§4.3 Phase 1).
type CompactionPlan struct {
	Full    []*storage.Block
	Partial *storage.Block // nil when t divides s
	Empty   []*storage.Block
	// Movements is the planned number of delete-insert pairs.
	Movements int
	// TotalTuples is t; SlotsPerBlock is s.
	TotalTuples   int
	SlotsPerBlock int
}

// scanOccupancy reads each block's allocation bitmap. Emptiness is measured
// against full block capacity: compaction's goal state fills blocks
// completely.
func scanOccupancy(blocks []*storage.Block) []blockOccupancy {
	occ := make([]blockOccupancy, len(blocks))
	for i, b := range blocks {
		o := blockOccupancy{block: b}
		b.IterateAllocated(func(slot uint32) bool {
			o.filled = append(o.filled, slot)
			return true
		})
		o.empty = int(b.Layout.NumSlots) - len(o.filled)
		occ[i] = o
	}
	return occ
}

// gapsIn counts unallocated slots among the first n slots of o.
func (o *blockOccupancy) gapsIn(n int) int {
	filled := 0
	for _, s := range o.filled {
		if int(s) < n {
			filled++
		}
	}
	return n - filled
}

// PlanCompaction selects F, p, and E. With optimal=false it uses the
// paper's approximate algorithm (sort by emptiness, take the ⌊t/s⌋ fullest
// as F, the next as p) which is within (t mod s) movements of optimal; with
// optimal=true it additionally tries every block as p and keeps the
// cheapest plan.
func PlanCompaction(blocks []*storage.Block, optimal bool) *CompactionPlan {
	occ := scanOccupancy(blocks)
	sort.SliceStable(occ, func(i, j int) bool { return occ[i].empty < occ[j].empty })

	t := 0
	for i := range occ {
		t += len(occ[i].filled)
	}
	if len(blocks) == 0 {
		return &CompactionPlan{}
	}
	s := int(blocks[0].Layout.NumSlots)
	nFull := t / s
	rem := t % s

	build := func(pIdx int) *CompactionPlan {
		plan := &CompactionPlan{TotalTuples: t, SlotsPerBlock: s}
		// F = the nFull fullest blocks, skipping the chosen p.
		taken := 0
		for i := range occ {
			if i == pIdx {
				continue
			}
			if taken < nFull {
				plan.Full = append(plan.Full, occ[i].block)
				plan.Movements += occ[i].empty
				taken++
			} else {
				plan.Empty = append(plan.Empty, occ[i].block)
			}
		}
		if pIdx >= 0 {
			plan.Partial = occ[pIdx].block
			plan.Movements += occ[pIdx].gapsIn(rem)
		}
		return plan
	}

	if rem == 0 {
		return build(-1)
	}
	if !optimal {
		// Approximate: p is the first block not taken into F — the
		// (nFull)-th fullest.
		return build(nFull)
	}
	var best *CompactionPlan
	for cand := 0; cand < len(occ); cand++ {
		p := build(cand)
		if best == nil || p.Movements < best.Movements {
			best = p
		}
	}
	return best
}

// CompactionResult reports what one executed compaction did.
type CompactionResult struct {
	Plan *CompactionPlan
	// Moved counts tuples physically relocated (each is a delete-insert
	// pair, the write amplification unit of Figure 13).
	Moved int
	// WriteSetSize is the compaction transaction's undo-record count
	// (Figure 14b).
	WriteSetSize int
	// EmptiedBlocks are blocks that finished with zero tuples and can be
	// recycled once the GC epoch passes.
	EmptiedBlocks []*storage.Block
}

// OnMove is an optional callback invoked for every tuple movement with the
// old and new slots — the hook through which indexes pay their update cost
// (the paper's write-amplification discussion).
type OnMove func(table *core.DataTable, oldSlot, newSlot storage.TupleSlot, row *storage.ProjectedRow) error

// CompactGroup executes Phase 1 on a compaction group: one transaction
// shuffles tuples out of sparse blocks into the gaps of the chosen full
// blocks, leaving the group "logically contiguous". After the moves, every
// involved block's status is set to cooling *before* the transaction
// commits — the ordering that closes the check-and-miss race (Figure 9).
// Any write-write conflict with a user transaction aborts the compaction
// (the paper's failure case; user transactions win).
func CompactGroup(mgr *txn.Manager, table *core.DataTable, blocks []*storage.Block, optimal bool, onMove OnMove) (*CompactionResult, error) {
	plan := PlanCompaction(blocks, optimal)
	res := &CompactionResult{Plan: plan}
	if plan.TotalTuples == 0 {
		// Nothing lives here; all blocks are empty.
		res.EmptiedBlocks = plan.Empty
		return res, nil
	}

	tx := mgr.Begin()
	abort := func(err error) (*CompactionResult, error) {
		mgr.Abort(tx)
		return nil, err
	}

	// Collect target gaps: all gaps in F, and gaps within the first
	// (t mod s) slots of p.
	type gap struct {
		block *storage.Block
		slot  uint32
	}
	var gaps []gap
	for _, b := range plan.Full {
		n := b.Layout.NumSlots
		for s := uint32(0); s < n; s++ {
			if !b.Allocated(s) {
				gaps = append(gaps, gap{b, s})
			}
		}
	}
	rem := plan.TotalTuples % plan.SlotsPerBlock
	if plan.Partial != nil {
		for s := uint32(0); s < uint32(rem); s++ {
			if !plan.Partial.Allocated(s) {
				gaps = append(gaps, gap{plan.Partial, s})
			}
		}
	}

	// Collect source tuples: everything in E, and p's tuples at or beyond
	// slot (t mod s).
	type src struct {
		block *storage.Block
		slot  uint32
	}
	var sources []src
	for _, b := range plan.Empty {
		b.IterateAllocated(func(s uint32) bool {
			sources = append(sources, src{b, s})
			return true
		})
	}
	if plan.Partial != nil {
		plan.Partial.IterateAllocated(func(s uint32) bool {
			if int(s) >= rem {
				sources = append(sources, src{plan.Partial, s})
			}
			return true
		})
	}
	if len(gaps) != len(sources) {
		// The accounting identity |gaps| == |sources| holds for any valid
		// selection; a mismatch means a concurrent writer changed the
		// group mid-plan. Yield to the user transaction.
		return abort(fmt.Errorf("transform: group changed during planning (%d gaps, %d sources)", len(gaps), len(sources)))
	}

	proj := table.AllColumnsProjection()
	row := proj.NewRow()
	for i := range sources {
		from := storage.NewTupleSlot(sources[i].block.ID, sources[i].slot)
		to := storage.NewTupleSlot(gaps[i].block.ID, gaps[i].slot)
		row.Reset()
		found, err := table.Select(tx, from, row)
		if err != nil {
			return abort(err)
		}
		if !found {
			return abort(fmt.Errorf("transform: source tuple %v vanished", from))
		}
		// Delete-then-insert, copying varlen values so ownership transfers
		// cleanly (§4.4 Memory Management; Select already deep-copied).
		if err := table.Delete(tx, from); err != nil {
			return abort(err)
		}
		if err := table.InsertIntoSlot(tx, to, row); err != nil {
			return abort(err)
		}
		if onMove != nil {
			if err := onMove(table, from, to, row); err != nil {
				return abort(err)
			}
		}
		res.Moved++
	}

	// Flag every surviving block cooling before committing: any transaction
	// that later modifies the block must overlap this compaction
	// transaction, so its versions remain detectable until the gather phase
	// re-checks (§4.3).
	for _, b := range plan.Full {
		b.CASState(storage.StateHot, storage.StateCooling)
	}
	if plan.Partial != nil {
		plan.Partial.CASState(storage.StateHot, storage.StateCooling)
	}

	res.WriteSetSize = tx.WriteSetSize()
	mgr.Commit(tx, nil)
	res.EmptiedBlocks = plan.Empty
	return res, nil
}
