package transform

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mainline/internal/storage"
	"mainline/internal/util"
)

// Mode selects the gather phase's target format (§4.4 Alternative Formats).
type Mode int

// Gather targets.
const (
	// ModeGather copies variable-length values into a contiguous buffer —
	// canonical Arrow.
	ModeGather Mode = iota
	// ModeDictionary builds a sorted dictionary and an int32 code array —
	// the Parquet/ORC-style compressed layout; an order of magnitude more
	// expensive than the plain gather.
	ModeDictionary
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeDictionary {
		return "dictionary"
	}
	return "gather"
}

// GatherBlock runs the Phase-2 critical section on a block already in the
// Freezing state: it copies varlen values into contiguous Arrow buffers (or
// a dictionary), rewrites every VarlenEntry to reference the new storage,
// serializes validity bitmaps into the block, computes null counts, and
// marks the block Frozen. Reads may proceed concurrently — only physical
// value locations change, never logical content (§4.3).
func GatherBlock(block *storage.Block, mode Mode) error {
	if block.State() != storage.StateFreezing {
		return fmt.Errorf("transform: gather on %s block", block.State())
	}
	layout := block.Layout
	rows := block.FilledSlots()
	// Compaction left tuples logically contiguous; verify before trusting
	// slot order.
	for s := uint32(0); s < uint32(rows); s++ {
		if !block.Allocated(s) {
			return fmt.Errorf("transform: gap at slot %d of %d; block not compacted", s, rows)
		}
	}

	nullCounts := make([]int, layout.NumColumns())
	frozen := make([]*storage.FrozenVarlen, layout.NumColumns())
	for c := 0; c < layout.NumColumns(); c++ {
		col := storage.ColumnID(c)
		valid := 0
		for s := uint32(0); s < uint32(rows); s++ {
			if block.IsValid(col, s) {
				valid++
			}
		}
		nullCounts[c] = rows - valid
		if !layout.IsVarlen(col) {
			block.WriteFrozenValidity(col, rows)
			continue
		}
		var err error
		if mode == ModeDictionary {
			frozen[c], err = gatherDictionary(block, col, rows)
		} else {
			frozen[c], err = gatherContiguous(block, col, rows)
		}
		if err != nil {
			return err
		}
		block.WriteFrozenValidity(col, rows)
	}
	block.SetFrozenMeta(rows, frozen, nullCounts)
	// Freeze-time statistics must be published before the state flips so a
	// scan that observes Frozen can trust any zone map it then loads (see
	// storage.ZoneMap).
	block.SetZoneMap(buildZoneMap(block, rows, nullCounts))
	// The pre-gather arena is unreachable once entries are rewritten; the
	// engine defers actual reclamation through the GC's action queue (the
	// caller registers it), and under Go the runtime frees the memory when
	// the last old reader drops its reference.
	block.ReleaseArena()
	block.SetState(storage.StateFrozen)
	return nil
}

// gatherContiguous builds the offsets+values pair for one varlen column and
// rewrites the column's entries to point into it. Every value is snapshotted
// through the column's CURRENT resolution (inline, arena, or previous frozen
// epoch) before anything is republished: on a re-freeze — a block that was
// frozen, possibly evicted and re-thawed, then thawed and modified — the
// unmodified entries are frozen handles, and resolving them after the alias
// swap would read the not-yet-filled replacement buffer. The new buffer is
// filled completely before the alias is published and any entry rewritten,
// so a concurrent reader resolving either entry epoch sees finished bytes.
func gatherContiguous(block *storage.Block, col storage.ColumnID, rows int) (*storage.FrozenVarlen, error) {
	vals := make([][]byte, rows)
	total := 0
	for s := uint32(0); s < uint32(rows); s++ {
		if block.IsValid(col, s) {
			vals[s] = block.ReadVarlen(col, s)
			total += len(vals[s])
		}
	}
	values := make([]byte, util.Align8(total))
	offsets := make([]byte, 0, util.Align8((rows+1)*4))
	offs := make([]int, rows)
	off := 0
	for s := 0; s < rows; s++ {
		offsets = binary.LittleEndian.AppendUint32(offsets, uint32(off))
		offs[s] = off
		if !block.IsValid(col, uint32(s)) {
			continue
		}
		off += copy(values[off:], vals[s])
	}
	offsets = binary.LittleEndian.AppendUint32(offsets, uint32(off))
	fv := &storage.FrozenVarlen{Values: values, Offsets: pad8(offsets)}
	block.SetFrozenVarlenAlias(col, fv)
	for s := 0; s < rows; s++ {
		if !block.IsValid(col, uint32(s)) {
			continue
		}
		// Rewrite against the new, stable buffer so the entry's
		// prefix/inline bytes alias immutable frozen memory.
		n := len(vals[s])
		block.RewriteVarlenEntry(col, uint32(s), values[offs[s]:offs[s]+n:offs[s]+n], offs[s])
	}
	return fv, nil
}

// gatherDictionary builds the sorted dictionary + code array for one varlen
// column (§4.4): one scan to collect the sorted value set, a second to emit
// codes and rewrite entries against dictionary storage. It returns the
// values-buffer alias installed for frozen-handle resolution.
func gatherDictionary(block *storage.Block, col storage.ColumnID, rows int) (*storage.FrozenVarlen, error) {
	// Scan 1: sorted set of distinct values, snapshotted through the
	// column's CURRENT resolution — scan 2 must not re-resolve entries
	// after the alias swap below, since on a re-freeze the old entries are
	// frozen handles whose offsets address the previous epoch's buffer.
	vals := make([][]byte, rows)
	set := make(map[string]struct{}, rows)
	for s := uint32(0); s < uint32(rows); s++ {
		if block.IsValid(col, s) {
			vals[s] = block.ReadVarlen(col, s)
			set[string(vals[s])] = struct{}{}
		}
	}
	words := make([]string, 0, len(set))
	for w := range set {
		words = append(words, w)
	}
	sort.Strings(words)

	dictValues := make([]byte, 0)
	dictOffsets := make([]byte, 0, util.Align8((len(words)+1)*4))
	codeOf := make(map[string]int32, len(words))
	valueOff := make(map[string]int, len(words))
	for i, w := range words {
		dictOffsets = binary.LittleEndian.AppendUint32(dictOffsets, uint32(len(dictValues)))
		codeOf[w] = int32(i)
		valueOff[w] = len(dictValues)
		dictValues = append(dictValues, w...)
	}
	dictOffsets = binary.LittleEndian.AppendUint32(dictOffsets, uint32(len(dictValues)))
	dictValues = pad8(dictValues)

	d := &storage.FrozenDict{
		DictOffsets: pad8(dictOffsets),
		DictValues:  dictValues,
		NumEntries:  len(words),
	}
	// ReadVarlen resolves frozen handles through FrozenVarlenCol: alias the
	// dictionary values buffer there before rewriting any entry.
	alias := &storage.FrozenVarlen{Values: dictValues}
	block.SetFrozenVarlenAlias(col, alias)

	// Scan 2: codes + entry rewrite against the dictionary buffer.
	codes := make([]byte, 0, util.Align8(rows*4))
	for s := uint32(0); s < uint32(rows); s++ {
		if !block.IsValid(col, s) {
			codes = binary.LittleEndian.AppendUint32(codes, 0)
			continue
		}
		w := string(vals[s])
		code, ok := codeOf[w]
		if !ok {
			return nil, fmt.Errorf("transform: value appeared during dictionary build")
		}
		codes = binary.LittleEndian.AppendUint32(codes, uint32(code))
		off := valueOff[w]
		block.RewriteVarlenEntry(col, s, dictValues[off:off+len(w):off+len(w)], off)
	}
	d.Codes = pad8(codes)
	block.SetFrozenDict(col, d)
	return alias, nil
}

func pad8(b []byte) []byte {
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return b
}
