package transform

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"mainline/internal/core"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

func testEnv(t *testing.T) (*txn.Manager, *core.DataTable) {
	t.Helper()
	reg := storage.NewRegistry()
	layout, err := storage.NewBlockLayout([]storage.AttrDef{storage.FixedAttr(8), storage.VarlenAttr()})
	if err != nil {
		t.Fatal(err)
	}
	return txn.NewManager(reg), core.NewDataTable(reg, layout, 1, "transform-test")
}

// fillBlocks inserts `perBlock` tuples into each of n fresh blocks by
// capping insertion heads, then deletes a fraction to open gaps. Returns
// the blocks and the surviving ids.
func fillBlocks(t *testing.T, m *txn.Manager, table *core.DataTable, nBlocks, perBlock int, deleteEvery int) map[int64]string {
	t.Helper()
	survivors := make(map[int64]string)
	var slots []storage.TupleSlot
	var ids []int64
	id := int64(0)
	for b := 0; b < nBlocks; b++ {
		var blk *storage.Block
		for i := 0; i < perBlock; i++ {
			tx := m.Begin()
			row := table.AllColumnsProjection().NewRow()
			val := fmt.Sprintf("value-%d-with-some-extra-length", id)
			row.SetInt64(0, id)
			row.SetVarlen(1, []byte(val))
			slot, err := table.Insert(tx, row)
			if err != nil {
				t.Fatal(err)
			}
			m.Commit(tx, nil)
			if blk == nil {
				blk = table.Registry().BlockFor(slot)
			}
			slots = append(slots, slot)
			ids = append(ids, id)
			survivors[id] = val
			id++
		}
		// Force the next insert into a new block.
		blk.SetInsertHead(blk.Layout.NumSlots)
	}
	if deleteEvery > 0 {
		tx := m.Begin()
		for i := 0; i < len(slots); i += deleteEvery {
			if err := table.Delete(tx, slots[i]); err != nil {
				t.Fatal(err)
			}
			delete(survivors, ids[i])
		}
		m.Commit(tx, nil)
	}
	return survivors
}

// pruneAll runs GC until chains are gone.
func pruneAll(m *txn.Manager) {
	g := gc.New(m)
	for i := 0; i < 3; i++ {
		g.RunOnce()
	}
}

func scanAll(t *testing.T, m *txn.Manager, table *core.DataTable) map[int64]string {
	t.Helper()
	tx := m.Begin()
	defer m.Commit(tx, nil)
	got := make(map[int64]string)
	_ = table.Scan(tx, table.AllColumnsProjection(), func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
		got[row.Int64(0)] = string(row.Varlen(1))
		return true
	})
	return got
}

func mapsEqual(a, b map[int64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestPlanCompactionShape(t *testing.T) {
	m, table := testEnv(t)
	fillBlocks(t, m, table, 3, 100, 2) // 3 sparse blocks + empty tail
	pruneAll(m)
	blocks := table.Blocks()[:3]
	plan := PlanCompaction(blocks, false)
	if plan.TotalTuples != 150 {
		t.Fatalf("t = %d", plan.TotalTuples)
	}
	s := int(table.Layout().NumSlots)
	if plan.SlotsPerBlock != s {
		t.Fatalf("s = %d", plan.SlotsPerBlock)
	}
	// 150 tuples fit in 0 full blocks (s ~32K) + 1 partial.
	if len(plan.Full) != 0 || plan.Partial == nil || len(plan.Empty) != 2 {
		t.Fatalf("plan: F=%d p=%v E=%d", len(plan.Full), plan.Partial != nil, len(plan.Empty))
	}
}

// Property: the approximate plan is within (t mod s) movements of optimal
// (the paper's §4.3 bound). Uses a synthetic occupancy model.
func TestQuickApproxWithinBound(t *testing.T) {
	reg := storage.NewRegistry()
	layout, err := storage.NewBlockLayout([]storage.AttrDef{storage.FixedAttr(8)})
	if err != nil {
		t.Fatal(err)
	}
	f := func(fills []uint16) bool {
		if len(fills) < 2 {
			return true
		}
		if len(fills) > 8 {
			fills = fills[:8]
		}
		// Build synthetic blocks with the given occupancy in tiny prefixes.
		blocks := make([]*storage.Block, len(fills))
		total := 0
		for i, f16 := range fills {
			b := storage.NewBlock(reg, layout)
			fill := int(f16) % 200
			for s := 0; s < fill; s++ {
				b.SetAllocated(uint32(s), true)
			}
			b.SetInsertHead(200)
			blocks[i] = b
			total += fill
		}
		if total == 0 {
			return true
		}
		approx := PlanCompaction(blocks, false)
		optimal := PlanCompaction(blocks, true)
		rem := total % int(layout.NumSlots)
		return approx.Movements <= optimal.Movements+rem && optimal.Movements <= approx.Movements
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactGroupPreservesData(t *testing.T) {
	m, table := testEnv(t)
	want := fillBlocks(t, m, table, 3, 200, 3)
	pruneAll(m)
	blocks := table.Blocks()[:3]
	res, err := CompactGroup(m, table, blocks, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved == 0 {
		t.Fatal("expected movements")
	}
	// Write set is a delete+insert pair per move.
	if res.WriteSetSize != 2*res.Moved {
		t.Fatalf("writeset = %d, moved = %d", res.WriteSetSize, res.Moved)
	}
	got := scanAll(t, m, table)
	if !mapsEqual(want, got) {
		t.Fatalf("data changed by compaction: %d vs %d rows", len(want), len(got))
	}
	// Tuples are logically contiguous: ⌊t/s⌋ full, one partial, rest empty.
	t2 := res.Plan.TotalTuples
	if len(res.Plan.Full) != t2/int(table.Layout().NumSlots) {
		t.Fatalf("full blocks = %d", len(res.Plan.Full))
	}
	if res.Plan.Partial != nil {
		rem := t2 % int(table.Layout().NumSlots)
		for s := 0; s < rem; s++ {
			if !res.Plan.Partial.Allocated(uint32(s)) {
				t.Fatalf("gap at slot %d of partial block", s)
			}
		}
	}
	for _, e := range res.EmptiedBlocks {
		if e.FilledSlots() != 0 {
			t.Fatalf("emptied block still has %d tuples", e.FilledSlots())
		}
	}
	// Surviving blocks are cooling.
	for _, b := range res.Plan.Full {
		if b.State() != storage.StateCooling {
			t.Fatalf("full block state %s", b.State())
		}
	}
}

func TestCompactGroupAbortsOnConflict(t *testing.T) {
	m, table := testEnv(t)
	fillBlocks(t, m, table, 2, 50, 2)
	pruneAll(m)
	blocks := table.Blocks()[:2]
	// A user transaction holds an uncommitted update on a tuple that must
	// move (every tuple of the sparser block is a mover candidate).
	var victim storage.TupleSlot
	blocks[1].IterateAllocated(func(s uint32) bool {
		victim = storage.NewTupleSlot(blocks[1].ID, s)
		return false
	})
	user := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{0}).NewRow()
	u.SetInt64(0, -1)
	if err := table.Update(user, victim, u); err != nil {
		t.Fatal(err)
	}
	if _, err := CompactGroup(m, table, blocks, false, nil); err == nil {
		t.Fatal("compaction should abort on user conflict")
	}
	m.Commit(user, nil)
	// User transaction's effect survives.
	tx := m.Begin()
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(tx, victim, out)
	m.Commit(tx, nil)
	if !found || out.Int64(0) != -1 {
		t.Fatal("user update lost")
	}
}

func freezeViaPipeline(t *testing.T, m *txn.Manager, table *core.DataTable, mode Mode) *Transformer {
	t.Helper()
	g := gc.New(m)
	obs := NewObserver()
	obs.Watch(table)
	g.SetObserver(obs)
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.Threshold = 0 // everything is instantly cold
	tr := New(m, g, obs, cfg)
	for i := 0; i < 10; i++ {
		g.RunOnce()
		tr.RunOnce()
	}
	return tr
}

func allFrozen(table *core.DataTable) bool {
	for _, b := range table.Blocks() {
		if b.InsertHead() > 0 && b.State() != storage.StateFrozen {
			return false
		}
	}
	return true
}

func TestPipelineFreezesAndPreservesData(t *testing.T) {
	m, table := testEnv(t)
	want := fillBlocks(t, m, table, 3, 300, 4)
	tr := freezeViaPipeline(t, m, table, ModeGather)
	if !allFrozen(table) {
		st := tr.Stats()
		t.Fatalf("blocks not frozen; stats %+v, cooling %d", st, tr.CoolingCount())
	}
	got := scanAll(t, m, table)
	if !mapsEqual(want, got) {
		t.Fatalf("data changed by freeze: want %d rows got %d", len(want), len(got))
	}
	// Frozen varlen columns expose contiguous Arrow buffers.
	for _, b := range table.Blocks() {
		if b.FrozenRows() == 0 {
			continue
		}
		fv := b.FrozenVarlenCol(1)
		if fv == nil || len(fv.Offsets) == 0 {
			t.Fatal("frozen varlen buffers missing")
		}
		if b.ArenaSize() != 0 {
			t.Fatal("hot arena not released at freeze")
		}
	}
	// Emptied blocks were recycled.
	if tr.Stats().BlocksRecycled == 0 {
		t.Fatal("no blocks recycled")
	}
}

func TestPipelineDictionaryMode(t *testing.T) {
	m, table := testEnv(t)
	// Few distinct values: dictionary pays off.
	tx := m.Begin()
	colors := []string{"red-a-rather-long-color", "green-a-rather-long-color", "blue-a-rather-long-color"}
	for i := 0; i < 300; i++ {
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, []byte(colors[i%3]))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
	}
	m.Commit(tx, nil)
	freezeViaPipeline(t, m, table, ModeDictionary)
	if !allFrozen(table) {
		t.Fatal("not frozen")
	}
	var b *storage.Block
	for _, blk := range table.Blocks() {
		if blk.FrozenRows() > 0 {
			b = blk
			break
		}
	}
	d := b.FrozenDictCol(1)
	if d == nil {
		t.Fatal("no dictionary")
	}
	// 3 distinct values → 4 offsets; codes for every row.
	if len(d.DictOffsets) < 4*4 {
		t.Fatalf("dict offsets len %d", len(d.DictOffsets))
	}
	// Reads still resolve through the dictionary.
	got := scanAll(t, m, table)
	if len(got) != 300 {
		t.Fatalf("rows after dict freeze: %d", len(got))
	}
	for id, v := range got {
		if v != colors[id%3] {
			t.Fatalf("row %d reads %q", id, v)
		}
	}
}

func TestGatherRequiresFreezing(t *testing.T) {
	m, table := testEnv(t)
	fillBlocks(t, m, table, 1, 10, 0)
	b := table.Blocks()[0]
	if err := GatherBlock(b, ModeGather); err == nil {
		t.Fatal("gather on hot block accepted")
	}
	_ = m
}

func TestTryFreezeRespectsVersions(t *testing.T) {
	m, table := testEnv(t)
	fillBlocks(t, m, table, 1, 10, 0)
	b := table.Blocks()[0]
	b.SetState(storage.StateCooling)
	tr := New(m, nil, NewObserver(), DefaultConfig())
	// Versions still present (no GC ran): must retry, not freeze.
	if got := tr.TryFreeze(b); got != freezeRetry {
		t.Fatalf("outcome = %v, want retry", got)
	}
	pruneAll(m)
	if got := tr.TryFreeze(b); got != freezeDone {
		t.Fatalf("outcome after GC = %v, want done", got)
	}
	if b.State() != storage.StateFrozen {
		t.Fatalf("state = %s", b.State())
	}
}

func TestTryFreezePreemptedByWriter(t *testing.T) {
	m, table := testEnv(t)
	fillBlocks(t, m, table, 1, 10, 0)
	pruneAll(m)
	b := table.Blocks()[0]
	b.SetState(storage.StateCooling)
	// A user write preempts cooling back to hot.
	b.MarkHot()
	tr := New(m, nil, NewObserver(), DefaultConfig())
	if got := tr.TryFreeze(b); got != freezePreempted {
		t.Fatalf("outcome = %v, want preempted", got)
	}
	if b.State() != storage.StateHot {
		t.Fatalf("state = %s", b.State())
	}
}

func TestWriteAfterFreezeThaws(t *testing.T) {
	m, table := testEnv(t)
	fillBlocks(t, m, table, 1, 20, 0)
	freezeViaPipeline(t, m, table, ModeGather)
	b := table.Blocks()[0]
	if b.State() != storage.StateFrozen {
		t.Fatalf("state = %s", b.State())
	}
	// Find a slot and update it: the block must go hot, and the update must
	// be readable (entry now points at the hot arena again).
	var slot storage.TupleSlot
	b.IterateAllocated(func(s uint32) bool {
		slot = storage.NewTupleSlot(b.ID, s)
		return false
	})
	tx := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{1}).NewRow()
	u.SetVarlen(0, []byte("freshly-written-after-thaw"))
	if err := table.Update(tx, slot, u); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	if b.State() != storage.StateHot {
		t.Fatalf("state after write = %s", b.State())
	}
	tx2 := m.Begin()
	out := table.AllColumnsProjection().NewRow()
	found, _ := table.Select(tx2, slot, out)
	m.Commit(tx2, nil)
	if !found || string(out.Varlen(1)) != "freshly-written-after-thaw" {
		t.Fatalf("post-thaw read: %q", out.Varlen(1))
	}
}

func TestObserverSweep(t *testing.T) {
	m, table := testEnv(t)
	obs := NewObserver()
	obs.Watch(table)
	now := time.Unix(1000, 0)
	obs.SetClock(func() time.Time { return now })

	fillBlocks(t, m, table, 1, 10, 0)
	b := table.Blocks()[0]
	obs.ObserveModification(storage.NewTupleSlot(b.ID, 0), storage.KindInsert, 1)

	// Too recent: nothing cold.
	if groups := obs.Sweep(time.Second); len(groups) != 0 {
		t.Fatalf("swept too early: %v", groups)
	}
	now = now.Add(2 * time.Second)
	groups := obs.Sweep(time.Second)
	if len(groups) != 1 || len(groups[0].Blocks) == 0 {
		t.Fatalf("sweep found %v", groups)
	}
	// Swept blocks are not re-reported while unmodified.
	if groups := obs.Sweep(time.Second); len(groups) != 0 {
		t.Fatal("block re-swept without modification")
	}
	// A new modification resets the clock.
	obs.ObserveModification(storage.NewTupleSlot(b.ID, 1), storage.KindUpdate, 2)
	if groups := obs.Sweep(time.Second); len(groups) != 0 {
		t.Fatal("swept immediately after modification")
	}
}

func TestObserverNeverModifiedBlocksCool(t *testing.T) {
	m, table := testEnv(t)
	obs := NewObserver()
	obs.Watch(table)
	now := time.Unix(1000, 0)
	obs.SetClock(func() time.Time { return now })
	fillBlocks(t, m, table, 1, 5, 0)
	// First sweep registers firstSeen; second (past threshold) reports.
	if groups := obs.Sweep(time.Second); len(groups) != 0 {
		t.Fatal("cold on first sight")
	}
	now = now.Add(2 * time.Second)
	if groups := obs.Sweep(time.Second); len(groups) != 1 {
		t.Fatal("bulk-loaded block never cooled")
	}
}

func TestFrozenValidityAndNullCounts(t *testing.T) {
	m, table := testEnv(t)
	tx := m.Begin()
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0}) // varlen col 1 omitted -> null
	for i := 0; i < 50; i++ {
		row := proj.NewRow()
		row.SetInt64(0, int64(i))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
	}
	m.Commit(tx, nil)
	freezeViaPipeline(t, m, table, ModeGather)
	b := table.Blocks()[0]
	if b.State() != storage.StateFrozen {
		t.Fatalf("state = %s", b.State())
	}
	if b.NullCount(0) != 0 || b.NullCount(1) != 50 {
		t.Fatalf("null counts: %d %d", b.NullCount(0), b.NullCount(1))
	}
	bm := b.FrozenValidity(1)
	if bm.CountOnes(b.FrozenRows()) != 0 {
		t.Fatal("null column has valid bits")
	}
}
