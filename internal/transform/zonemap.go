package transform

import (
	"bytes"

	"mainline/internal/storage"
)

// buildZoneMap computes freeze-time per-column statistics for a block the
// gather phase has just put into canonical Arrow form: min/max under every
// interpretation the predicate layer might ask for (signed integer by
// width, float64 for 8-byte columns, lexicographic bytes for varlen) plus
// null counts. It runs once per freeze inside the gather critical section,
// so the one extra column pass is amortized over every scan that prunes
// the block afterwards.
func buildZoneMap(block *storage.Block, rows int, nullCounts []int) *storage.ZoneMap {
	layout := block.Layout
	zm := &storage.ZoneMap{Rows: rows, Cols: make([]storage.ColumnStats, layout.NumColumns())}
	for c := 0; c < layout.NumColumns(); c++ {
		col := storage.ColumnID(c)
		cs := &zm.Cols[c]
		cs.NullCount = nullCounts[c]
		if cs.NullCount == rows {
			continue // all-null: no min/max, prunes every predicate
		}
		switch {
		case layout.IsVarlen(col):
			buildVarlenStats(block, col, rows, cs)
		case layout.AttrSize(col) <= 8:
			buildFixedStats(block, col, rows, cs)
		default:
			// Wide fixed columns (row-store experiments) are opaque blobs;
			// no numeric interpretation, no stats.
		}
	}
	return zm
}

func buildFixedStats(block *storage.Block, col storage.ColumnID, rows int, cs *storage.ColumnStats) {
	view := block.FrozenFixedView(col)
	for s := 0; s < rows; s++ {
		if !block.IsValid(col, uint32(s)) {
			continue
		}
		v := view.IntAt(s)
		if !cs.HasMinMax {
			cs.HasMinMax = true
			cs.MinInt, cs.MaxInt = v, v
		} else {
			if v < cs.MinInt {
				cs.MinInt = v
			}
			if v > cs.MaxInt {
				cs.MaxInt = v
			}
		}
		if view.Width == 8 {
			// Track the float interpretation in parallel: storage does not
			// know whether the schema calls this column INT64 or FLOAT64.
			f := view.Float64At(s)
			if f == f { // skip NaN — range predicates never match it
				if !cs.HasFloat {
					cs.HasFloat = true
					cs.MinFloat, cs.MaxFloat = f, f
				} else {
					if f < cs.MinFloat {
						cs.MinFloat = f
					}
					if f > cs.MaxFloat {
						cs.MaxFloat = f
					}
				}
			}
		}
	}
}

func buildVarlenStats(block *storage.Block, col storage.ColumnID, rows int, cs *storage.ColumnStats) {
	// Dictionary-compressed columns are already sorted: the extrema are the
	// first and last entries (the dictionary holds exactly the values
	// present at freeze time).
	if d := block.FrozenDictCol(col); d != nil && d.NumEntries > 0 {
		cs.HasMinMax = true
		cs.MinBytes = append([]byte(nil), d.Value(0)...)
		cs.MaxBytes = append([]byte(nil), d.Value(d.NumEntries-1)...)
		return
	}
	var minV, maxV []byte
	for s := 0; s < rows; s++ {
		if !block.IsValid(col, uint32(s)) {
			continue
		}
		v := block.ReadVarlen(col, uint32(s))
		if !cs.HasMinMax {
			cs.HasMinMax = true
			minV, maxV = v, v
			continue
		}
		if bytes.Compare(v, minV) < 0 {
			minV = v
		}
		if bytes.Compare(v, maxV) > 0 {
			maxV = v
		}
	}
	if cs.HasMinMax {
		cs.MinBytes = append([]byte(nil), minV...)
		cs.MaxBytes = append([]byte(nil), maxV...)
	}
}
