package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"

	"mainline/internal/arrow"
	"mainline/internal/objstore"
)

// Tiered capture: alongside the local checkpoint files, each table's
// snapshot batches are also encoded as standalone Arrow IPC chunk
// objects and uploaded to the object store under content-hash keys.
// The resulting TableChunks descriptions become a version record in the
// manifest commit log (internal/checkpoint/manifestlog), which is what
// backs Engine.AsOf time travel. Chunks are uploaded BEFORE the
// checkpoint installs; a failed attempt can therefore leave orphan
// objects behind, but — because the version record is only appended
// after a successful install — never an installed version referencing a
// half-uploaded object.

// ZoneMap is the min/max/null summary of one integer column within one
// chunk. It lives in the manifest record, not the chunk, so time-travel
// range scans prune cold chunks before any object-store read.
type ZoneMap struct {
	// Col is the column's index in the table schema.
	Col int `json:"col"`
	// Min and Max bound the column's non-null values in this chunk
	// (meaningless when HasValues is false).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Nulls counts the chunk's null rows in this column.
	Nulls int `json:"nulls,omitempty"`
	// HasValues distinguishes an all-null chunk from a populated one.
	HasValues bool `json:"has_values"`
}

// ChunkRef names one immutable chunk object: a standalone Arrow IPC
// stream (schema + one record batch) stored under its content hash.
type ChunkRef struct {
	// Key is the object key, "chunk/" + hex(sha256(payload)).
	Key string `json:"key"`
	// Size and CRC (CRC-32C) guard the fetched payload.
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
	// Rows is the chunk's row count.
	Rows int `json:"rows"`
	// Zones summarizes the integer columns for pruning.
	Zones []ZoneMap `json:"zones,omitempty"`
}

// TableChunks describes one table's full content at a snapshot as an
// ordered list of chunk objects.
type TableChunks struct {
	ID     uint32     `json:"id"`
	Name   string     `json:"name"`
	Rows   int64      `json:"rows"`
	Fields []FieldDef `json:"fields"`
	Chunks []ChunkRef `json:"chunks"`
}

// ChunkKey derives the content-addressed object key for a chunk payload.
func ChunkKey(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "chunk/" + hex.EncodeToString(sum[:])
}

// writeChunk encodes one record batch as a standalone Arrow IPC stream
// and uploads it under its content hash. PutIfAbsent makes re-uploads of
// unchanged data free: identical content across checkpoints hits the
// same key.
func writeChunk(store objstore.Store, schema *arrow.Schema, rb *arrow.RecordBatch) (ChunkRef, error) {
	var buf bytes.Buffer
	wr := arrow.NewWriter(&buf)
	if err := wr.WriteSchema(schema); err != nil {
		return ChunkRef{}, err
	}
	if err := wr.WriteBatch(rb); err != nil {
		return ChunkRef{}, err
	}
	if err := wr.Close(); err != nil {
		return ChunkRef{}, err
	}
	payload := buf.Bytes()
	key := ChunkKey(payload)
	if _, err := store.PutIfAbsent(key, payload); err != nil {
		return ChunkRef{}, fmt.Errorf("checkpoint: uploading chunk %s: %w", key, err)
	}
	return ChunkRef{
		Key:   key,
		Size:  int64(len(payload)),
		CRC:   crc32.Checksum(payload, crcTable),
		Rows:  rb.NumRows,
		Zones: chunkZones(rb),
	}, nil
}

// chunkZones computes per-integer-column min/max/null summaries of one
// batch.
func chunkZones(rb *arrow.RecordBatch) []ZoneMap {
	var zones []ZoneMap
	for ci, f := range rb.Schema.Fields {
		switch f.Type {
		case arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64:
		default:
			continue
		}
		col := rb.Columns[ci]
		z := ZoneMap{Col: ci}
		for i := 0; i < rb.NumRows; i++ {
			if col.IsNull(i) {
				z.Nulls++
				continue
			}
			var v int64
			switch f.Type {
			case arrow.INT8:
				v = int64(col.Int8(i))
			case arrow.INT16:
				v = int64(col.Int16(i))
			case arrow.INT32:
				v = int64(col.Int32(i))
			default:
				v = col.Int64(i)
			}
			if !z.HasValues || v < z.Min {
				z.Min = v
			}
			if !z.HasValues || v > z.Max {
				z.Max = v
			}
			z.HasValues = true
		}
		zones = append(zones, z)
	}
	return zones
}

// MightMatchRange reports whether a chunk could hold rows with column
// col in [min, max], according to its zone maps. A chunk with no zone
// for the column (non-integer, or a record written before zones) must
// be read.
func (c *ChunkRef) MightMatchRange(col int, min, max int64) bool {
	for _, z := range c.Zones {
		if z.Col != col {
			continue
		}
		if !z.HasValues {
			return false // all null: no value can match
		}
		return z.Min <= max && min <= z.Max
	}
	return true
}
