package manifestlog

// Torture tests for the manifest commit log: torn-tail truncation at
// every byte boundary, corrupted mid-log records, resolution semantics
// (AsOf's typed errors), append-after-repair, and the refcounted orphan
// computation that backs snapshot pruning.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mainline/internal/checkpoint"
)

func testVersion(v, snapTs uint64, keys ...string) *VersionRecord {
	chunks := make([]checkpoint.ChunkRef, 0, len(keys))
	for i, k := range keys {
		chunks = append(chunks, checkpoint.ChunkRef{
			Key: k, Size: 100, CRC: uint32(v)*1000 + uint32(i), Rows: 10,
			Zones: []checkpoint.ZoneMap{{Col: 0, Min: int64(v * 10), Max: int64(v*10 + 9), HasValues: true}},
		})
	}
	return &VersionRecord{
		Version:    v,
		SnapshotTs: snapTs,
		LastTs:     snapTs + 1,
		Tables: []checkpoint.TableChunks{
			{ID: 1, Name: "item", Rows: int64(10 * len(keys)), Chunks: chunks,
				Fields: []checkpoint.FieldDef{{Name: "id", Type: 4}}},
		},
	}
}

func openOrDie(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(nil, path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), LogName)
	l := openOrDie(t, path)
	if l.Latest() != nil {
		t.Fatal("fresh log should have no versions")
	}
	for v := uint64(1); v <= 3; v++ {
		if err := l.AppendVersion(testVersion(v, v*100, "chunk/a", "chunk/b")); err != nil {
			t.Fatalf("AppendVersion(%d): %v", v, err)
		}
	}

	re := openOrDie(t, path)
	if re.TornBytes() != 0 {
		t.Fatalf("clean log reported %d torn bytes", re.TornBytes())
	}
	vs := re.Versions()
	if len(vs) != 3 {
		t.Fatalf("reopened log has %d versions, want 3", len(vs))
	}
	for i, v := range vs {
		if v.Version != uint64(i+1) || v.SnapshotTs != uint64(i+1)*100 {
			t.Fatalf("version %d = {%d, %d}", i, v.Version, v.SnapshotTs)
		}
		if len(v.Tables) != 1 || len(v.Tables[0].Chunks) != 2 {
			t.Fatalf("version %d lost its chunk refs", v.Version)
		}
		if z := v.Tables[0].Chunks[0].Zones; len(z) != 1 || !z[0].HasValues {
			t.Fatalf("version %d lost its zone maps", v.Version)
		}
	}
}

func TestVersionMustAdvance(t *testing.T) {
	l := openOrDie(t, filepath.Join(t.TempDir(), LogName))
	if err := l.AppendVersion(testVersion(5, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendVersion(testVersion(5, 200)); err == nil {
		t.Fatal("duplicate version number accepted")
	}
	if err := l.AppendVersion(testVersion(4, 200)); err == nil {
		t.Fatal("regressing version number accepted")
	}
}

// TestTornTailEveryByte truncates a multi-record log at every possible
// byte boundary: Open must never fail, must recover exactly the records
// wholly contained in the prefix, and must repair the file so a
// subsequent append extends valid history.
func TestTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden")
	l := openOrDie(t, golden)
	var boundaries []int64 // valid end offsets after each record
	for v := uint64(1); v <= 3; v++ {
		if err := l.AppendVersion(testVersion(v, v*100, "chunk/x")); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(golden)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.Size())
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	wantVersions := func(cut int64) int {
		n := 0
		for _, b := range boundaries {
			if b <= cut {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(data)); cut++ {
		path := filepath.Join(dir, "torn")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		torn, err := Open(nil, path)
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		got := len(torn.Versions())
		want := wantVersions(cut)
		if got != want {
			t.Fatalf("cut=%d: recovered %d versions, want %d", cut, got, want)
		}
		// The repair must be physical: the file now ends at the last
		// valid boundary.
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		var wantSize int64
		for _, b := range boundaries {
			if b <= cut {
				wantSize = b
			}
		}
		if st.Size() != wantSize {
			t.Fatalf("cut=%d: repaired size %d, want %d", cut, st.Size(), wantSize)
		}
		// Appending after repair extends valid history.
		if err := torn.AppendVersion(testVersion(100, 9999)); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		re := openOrDie(t, path)
		if got := len(re.Versions()); got != want+1 {
			t.Fatalf("cut=%d: after repair+append reopen has %d versions, want %d", cut, got, want+1)
		}
	}
}

// TestCorruptMidLogRecord flips one byte in the middle record of three:
// Open must fall back to the records before the corruption instead of
// failing, even though the damage is not at the tail.
func TestCorruptMidLogRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogName)
	l := openOrDie(t, path)
	var boundaries []int64
	for v := uint64(1); v <= 3; v++ {
		if err := l.AppendVersion(testVersion(v, v*100)); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		boundaries = append(boundaries, st.Size())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte inside record 2 (skip its 8-byte header so
	// the CRC check, not the length sanity check, catches it).
	data[boundaries[0]+8+4] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openOrDie(t, path)
	vs := re.Versions()
	if len(vs) != 1 || vs[0].Version != 1 {
		t.Fatalf("corrupt mid-log: recovered %d versions, want just version 1", len(vs))
	}
	if re.TornBytes() == 0 {
		t.Fatal("corruption not reported in TornBytes")
	}
	// Version 3 is gone — it sat beyond the corruption — but the log must
	// keep working: resolve against version 1 and append anew.
	if _, err := re.Resolve(100); err != nil {
		t.Fatalf("Resolve(100) after repair: %v", err)
	}
	if err := re.AppendVersion(testVersion(4, 400)); err != nil {
		t.Fatalf("append after mid-log repair: %v", err)
	}
}

func TestResolveSemantics(t *testing.T) {
	l := openOrDie(t, filepath.Join(t.TempDir(), LogName))
	for v := uint64(1); v <= 3; v++ {
		if err := l.AppendVersion(testVersion(v, v*100)); err != nil {
			t.Fatal(err)
		}
	}

	// Before all history.
	if _, err := l.Resolve(99); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("Resolve(99) = %v, want ErrNoVersion", err)
	}
	// Exact boundaries and in-between timestamps.
	for _, tc := range []struct {
		ts   uint64
		want uint64
	}{{100, 1}, {150, 1}, {200, 2}, {299, 2}, {300, 3}, {1 << 60, 3}} {
		v, err := l.Resolve(tc.ts)
		if err != nil {
			t.Fatalf("Resolve(%d): %v", tc.ts, err)
		}
		if v.Version != tc.want {
			t.Fatalf("Resolve(%d) = version %d, want %d", tc.ts, v.Version, tc.want)
		}
	}

	// Prune version 1: timestamps it served now return ErrVersionPruned,
	// not silently the wrong (newer) version and not ErrNoVersion.
	if err := l.AppendPrune([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Resolve(150); !errors.Is(err, ErrVersionPruned) {
		t.Fatalf("Resolve(150) after prune = %v, want ErrVersionPruned", err)
	}
	if v, err := l.Resolve(250); err != nil || v.Version != 2 {
		t.Fatalf("Resolve(250) after prune = %v, %v", v, err)
	}
	// Prune state survives reopen.
	re := openOrDie(t, l.path)
	if _, err := re.Resolve(150); !errors.Is(err, ErrVersionPruned) {
		t.Fatalf("reopened Resolve(150) = %v, want ErrVersionPruned", err)
	}
}

// TestUnreferencedKeys verifies the refcount: a key shared with a
// retained version must survive a prune; keys only the doomed versions
// reference are orphans.
func TestUnreferencedKeys(t *testing.T) {
	l := openOrDie(t, filepath.Join(t.TempDir(), LogName))
	// v1 references {a, b}; v2 references {b, c}; v3 references {c, d}.
	if err := l.AppendVersion(testVersion(1, 100, "chunk/a", "chunk/b")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendVersion(testVersion(2, 200, "chunk/b", "chunk/c")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendVersion(testVersion(3, 300, "chunk/c", "chunk/d")); err != nil {
		t.Fatal(err)
	}
	orphans := l.UnreferencedKeys([]uint64{1, 2})
	// b is shared with v2 (also doomed) → orphan; c is shared with
	// retained v3 → kept; a is v1-only → orphan.
	if len(orphans) != 2 || orphans[0] != "chunk/a" || orphans[1] != "chunk/b" {
		t.Fatalf("orphans = %v, want [chunk/a chunk/b]", orphans)
	}
}

func TestEmptyAndMissingLog(t *testing.T) {
	dir := t.TempDir()
	// Missing file.
	l := openOrDie(t, filepath.Join(dir, "missing"))
	if _, err := l.Resolve(1); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("missing log Resolve = %v, want ErrNoVersion", err)
	}
	// Empty file.
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openOrDie(t, empty)
	if l2.Latest() != nil {
		t.Fatal("empty log should have no versions")
	}
	// Pure garbage file: everything truncated, log usable.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a manifest log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3 := openOrDie(t, junk)
	if l3.Latest() != nil || l3.TornBytes() == 0 {
		t.Fatal("garbage log should recover empty with torn bytes reported")
	}
	if err := l3.AppendVersion(testVersion(1, 100)); err != nil {
		t.Fatal(err)
	}
}
