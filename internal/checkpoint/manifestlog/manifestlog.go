// Package manifestlog is the append-only commit log of the tiered
// storage layer's version history — the promotion of the per-checkpoint
// MANIFEST.json into a durable, CRC-guarded sequence of version
// records, which is what backs Engine.AsOf time travel.
//
// # Format
//
// MANIFEST.log lives at the root of the data directory. Each record is
// framed
//
//	[u32 payload length][u32 CRC-32C of payload][payload JSON]
//
// little-endian, appended with a single write + fsync. Records are
// either version records — one per installed checkpoint, referencing
// that snapshot's table content as content-addressed chunk objects in
// the object store, with per-chunk zone maps for pre-fetch pruning — or
// prune records marking old versions as dropped.
//
// # Crash tolerance
//
// The log is read in full at Open. A torn tail (crash mid-append, at
// any byte boundary) and a corrupted mid-log record are both handled
// the same way: the longest valid prefix wins, everything after it is
// discarded and physically truncated so the next append extends valid
// history. Open never fails on log damage — the log is an index over
// immutable objects, so the worst outcome of truncation is losing
// access to newer versions, never corrupting data.
package manifestlog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"

	"mainline/internal/checkpoint"
	"mainline/internal/fault"
)

// LogName is the manifest log's filename inside a data directory.
const LogName = "MANIFEST.log"

// maxRecordLen bounds a single record; a framed length beyond it is
// treated as corruption (it would otherwise force a giant allocation).
const maxRecordLen = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Typed resolution errors (wrapped by the engine's public AsOf).
var (
	// ErrNoVersion means no version's snapshot timestamp is at or below
	// the requested time — the time predates retained history.
	ErrNoVersion = errors.New("manifestlog: no version at or before the requested timestamp")
	// ErrVersionPruned means the version that would serve the requested
	// time has been pruned and its objects may be gone.
	ErrVersionPruned = errors.New("manifestlog: the version covering the requested timestamp was pruned")
)

// VersionRecord describes one committed snapshot version: the tables'
// full content as chunk objects, addressable by AsOf.
type VersionRecord struct {
	// Version orders records; the engine uses the checkpoint sequence.
	Version uint64 `json:"version"`
	// SnapshotTs is the version's consistency point: AsOf(ts) resolves
	// to the newest version with SnapshotTs <= ts.
	SnapshotTs uint64 `json:"snapshot_ts"`
	// LastTs is the engine clock when the snapshot finished.
	LastTs uint64 `json:"last_ts"`
	// CreatedUnixNano is the wall-clock creation time (informational).
	CreatedUnixNano int64 `json:"created_unix_nano"`
	// Tables is the snapshot's content, one chunk list per table.
	Tables []checkpoint.TableChunks `json:"tables"`
}

// record is the framed payload: exactly one of Version / Prune is set.
type record struct {
	Kind    string         `json:"kind"`
	Version *VersionRecord `json:"version,omitempty"`
	// Prune lists version numbers dropped by a prune record.
	Prune []uint64 `json:"prune,omitempty"`
}

// Log is the opened manifest log. Appends are serialized; reads of the
// in-memory index take the same lock and are cheap.
type Log struct {
	fsys fault.FS
	path string

	mu       sync.Mutex
	versions []*VersionRecord // append order; Version strictly increasing
	pruned   map[uint64]bool
	// tornBytes is how much invalid tail Open truncated (0 = clean).
	tornBytes int64
}

// Open reads, validates, and (if damaged) repairs the manifest log at
// path. A missing file is an empty log. fsys routes the appends; nil
// means the real filesystem.
func Open(fsys fault.FS, path string) (*Log, error) {
	if fsys == nil {
		fsys = fault.OS{}
	}
	l := &Log{fsys: fsys, path: path, pruned: make(map[uint64]bool)}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return l, nil
		}
		return nil, fmt.Errorf("manifestlog: reading %s: %w", path, err)
	}
	validEnd := 0
	for validEnd < len(data) {
		rec, next, ok := parseRecord(data, validEnd)
		if !ok {
			break
		}
		l.apply(rec)
		validEnd = next
	}
	if validEnd < len(data) {
		// Torn tail or corrupt mid-log record: the valid prefix is the
		// log. Truncate so the next append extends valid history instead
		// of burying records behind garbage.
		l.tornBytes = int64(len(data) - validEnd)
		if err := truncateFile(path, int64(validEnd)); err != nil {
			return nil, fmt.Errorf("manifestlog: repairing %s: %w", path, err)
		}
	}
	return l, nil
}

// parseRecord decodes one framed record at off. ok is false at any
// sign of damage: short header, absurd or overlong length, CRC
// mismatch, or undecodable JSON.
func parseRecord(data []byte, off int) (*record, int, bool) {
	if off+8 > len(data) {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxRecordLen || off+8+int(n) > len(data) {
		return nil, 0, false
	}
	payload := data[off+8 : off+8+int(n)]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, false
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, 0, false
	}
	return &rec, off + 8 + int(n), true
}

// apply folds one valid record into the in-memory index. Unknown kinds
// are skipped (forward compatibility), as are version records that do
// not advance the version counter.
func (l *Log) apply(rec *record) {
	switch rec.Kind {
	case "version":
		if rec.Version == nil {
			return
		}
		if n := len(l.versions); n > 0 && rec.Version.Version <= l.versions[n-1].Version {
			return
		}
		l.versions = append(l.versions, rec.Version)
	case "prune":
		for _, v := range rec.Prune {
			l.pruned[v] = true
		}
	}
}

// append frames, appends, and fsyncs one record, then applies it.
// Callers hold l.mu.
func (l *Log) append(rec *record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	framed := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(framed, uint32(len(payload)))
	binary.LittleEndian.PutUint32(framed[4:], crc32.Checksum(payload, crcTable))
	copy(framed[8:], payload)
	f, err := l.fsys.Append(l.path)
	if err != nil {
		return fmt.Errorf("manifestlog: opening %s: %w", l.path, err)
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		return fmt.Errorf("manifestlog: appending: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("manifestlog: syncing: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	l.apply(rec)
	return nil
}

// AppendVersion commits one version record. The version number must
// advance past every record already in the log.
func (l *Log) AppendVersion(v *VersionRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.versions); n > 0 && v.Version <= l.versions[n-1].Version {
		return fmt.Errorf("manifestlog: version %d does not advance past %d", v.Version, l.versions[n-1].Version)
	}
	return l.append(&record{Kind: "version", Version: v})
}

// AppendPrune commits a prune record marking the given versions
// dropped. The record lands (and fsyncs) before any object deletion, so
// a crash mid-prune leaves versions that merely over-retain objects —
// never a live version pointing at deleted ones.
func (l *Log) AppendPrune(versions []uint64) error {
	if len(versions) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.append(&record{Kind: "prune", Prune: versions})
}

// Resolve returns the version serving timestamp ts: the newest version
// with SnapshotTs <= ts. A match that has been pruned returns
// ErrVersionPruned; no match at all returns ErrNoVersion.
func (l *Log) Resolve(ts uint64) (*VersionRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.versions) - 1; i >= 0; i-- {
		v := l.versions[i]
		if v.SnapshotTs > ts {
			continue
		}
		if l.pruned[v.Version] {
			return nil, fmt.Errorf("%w (version %d)", ErrVersionPruned, v.Version)
		}
		return v, nil
	}
	return nil, ErrNoVersion
}

// Versions returns the retained (unpruned) version records, ascending.
func (l *Log) Versions() []*VersionRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*VersionRecord, 0, len(l.versions))
	for _, v := range l.versions {
		if !l.pruned[v.Version] {
			out = append(out, v)
		}
	}
	return out
}

// Latest returns the newest retained version (nil when none).
func (l *Log) Latest() *VersionRecord {
	vs := l.Versions()
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1]
}

// TornBytes reports how much invalid tail Open truncated away.
func (l *Log) TornBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tornBytes
}

// UnreferencedKeys returns the object keys referenced by the given
// doomed versions but by no retained version — the set safe to delete
// after AppendPrune(doomed) commits. Content addressing makes the
// refcount trivial: identical chunks share a key, so a key is safe to
// delete only when no retained version references it.
func (l *Log) UnreferencedKeys(doomed []uint64) []string {
	doomedSet := make(map[uint64]bool, len(doomed))
	for _, v := range doomed {
		doomedSet[v] = true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	retained := make(map[string]bool)
	candidates := make(map[string]bool)
	for _, v := range l.versions {
		dead := doomedSet[v.Version] || l.pruned[v.Version]
		for _, t := range v.Tables {
			for _, c := range t.Chunks {
				if dead {
					candidates[c.Key] = true
				} else {
					retained[c.Key] = true
				}
			}
		}
	}
	var keys []string
	for k := range candidates {
		if !retained[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// truncateFile cuts path to size and fsyncs the result.
func truncateFile(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
