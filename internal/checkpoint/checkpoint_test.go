package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

func testEngine(t *testing.T) (*txn.Manager, *catalog.Catalog, *catalog.Table) {
	t.Helper()
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	tbl, err := cat.CreateTable("accounts", arrow.NewSchema(
		arrow.Field{Name: "id", Type: arrow.INT64},
		arrow.Field{Name: "owner", Type: arrow.STRING, Nullable: true},
		arrow.Field{Name: "balance", Type: arrow.INT64},
	))
	if err != nil {
		t.Fatal(err)
	}
	return mgr, cat, tbl
}

func insertRow(t *testing.T, mgr *txn.Manager, tbl *catalog.Table, id int64, owner string, balance int64) storage.TupleSlot {
	t.Helper()
	tx := mgr.Begin()
	row := tbl.AllColumnsProjection().NewRow()
	row.SetInt64(0, id)
	if owner == "" {
		row.SetNull(1)
	} else {
		row.SetVarlen(1, []byte(owner))
	}
	row.SetInt64(2, balance)
	slot, err := tbl.DataTable.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Commit(tx, nil)
	return slot
}

func TestTakeRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mgr, cat, tbl := testEngine(t)
	var slots []storage.TupleSlot
	for i := 0; i < 100; i++ {
		owner := "owner"
		if i%7 == 0 {
			owner = "" // exercise nulls
		}
		slots = append(slots, insertRow(t, mgr, tbl, int64(i), owner, int64(1000+i)))
	}
	// A post-insert update and delete so versions exist.
	tx := mgr.Begin()
	u := storage.MustProjection(tbl.Layout(), []storage.ColumnID{2}).NewRow()
	u.SetInt64(0, 9999)
	if err := tbl.DataTable.Update(tx, slots[5], u); err != nil {
		t.Fatal(err)
	}
	if err := tbl.DataTable.Delete(tx, slots[6]); err != nil {
		t.Fatal(err)
	}
	mgr.Commit(tx, nil)

	info, err := Take(nil, dir, cat, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Tables != 1 || info.Rows != 99 {
		t.Fatalf("info = %+v", info)
	}

	// The data file must read back as a standalone Arrow IPC stream.
	f, err := os.Open(filepath.Join(info.Dir, "t-1.arrow"))
	if err != nil {
		t.Fatal(err)
	}
	at, err := arrow.ReadTable(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if at.NumRows() != 99 {
		t.Fatalf("arrow table rows = %d", at.NumRows())
	}

	// Restore into a fresh engine.
	mgr2, cat2, tbl2 := testEngine(t)
	res, err := Restore(dir, cat2, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Rows != 99 || res.Manifest.Seq != 1 || res.Fallbacks != 0 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.SlotMap) != 99 {
		t.Fatalf("slot map has %d entries", len(res.SlotMap))
	}
	// The updated row must carry its snapshot value; the deleted row must
	// be absent; slot mapping must resolve the old physical address.
	newSlot, ok := res.SlotMap[slots[5]]
	if !ok {
		t.Fatal("updated row's old slot missing from map")
	}
	check := mgr2.Begin()
	defer mgr2.Commit(check, nil)
	out := tbl2.AllColumnsProjection().NewRow()
	found, err := tbl2.DataTable.Select(check, newSlot, out)
	if err != nil || !found {
		t.Fatalf("mapped slot unreadable: %v", err)
	}
	if out.Int64(2) != 9999 {
		t.Fatalf("balance = %d, want 9999", out.Int64(2))
	}
	if _, ok := res.SlotMap[slots[6]]; ok {
		t.Fatal("deleted row leaked into slot map")
	}
	if n := tbl2.DataTable.CountVisible(check); n != 99 {
		t.Fatalf("restored %d visible rows", n)
	}
}

func TestRestoreFallsBackOnCorruption(t *testing.T) {
	dir := t.TempDir()
	mgr, cat, tbl := testEngine(t)
	insertRow(t, mgr, tbl, 1, "a", 10)
	if _, err := Take(nil, dir, cat, mgr); err != nil {
		t.Fatal(err)
	}
	insertRow(t, mgr, tbl, 2, "b", 20)
	info2, err := Take(nil, dir, cat, mgr)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint's data file.
	path := filepath.Join(info2.Dir, "t-1.arrow")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	mgr2, cat2, tbl2 := testEngine(t)
	res, err := Restore(dir, cat2, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Seq != 1 || res.Fallbacks != 1 {
		t.Fatalf("res = seq %d fallbacks %d, want fallback to seq 1", res.Manifest.Seq, res.Fallbacks)
	}
	check := mgr2.Begin()
	defer mgr2.Commit(check, nil)
	if n := tbl2.DataTable.CountVisible(check); n != 1 {
		t.Fatalf("restored %d rows from fallback", n)
	}
}

func TestRestoreEmptyDirAndAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	mgr, cat, _ := testEngine(t)
	res, err := Restore(filepath.Join(dir, "none"), cat, mgr)
	if err != nil || res != nil {
		t.Fatalf("empty: %v %v", res, err)
	}

	// One checkpoint, then destroy it: Restore must error, not silently
	// start empty.
	mgr1, cat1, tbl1 := testEngine(t)
	insertRow(t, mgr1, tbl1, 1, "a", 10)
	info, err := Take(nil, dir, cat1, mgr1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(info.Dir, "t-1.slots")); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(dir, cat, mgr); err == nil {
		t.Fatal("restore of all-corrupt checkpoints must fail")
	}
}

func TestPruneKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	mgr, cat, tbl := testEngine(t)
	for i := 0; i < 4; i++ {
		insertRow(t, mgr, tbl, int64(i), "x", 1)
		if _, err := Take(nil, dir, cat, mgr); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := ListSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != keepCheckpoints {
		t.Fatalf("kept %d checkpoints: %v", len(seqs), seqs)
	}
	if seqs[len(seqs)-1] != 4 {
		t.Fatalf("newest kept = %d", seqs[len(seqs)-1])
	}
}

func TestEmptyTableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	mgr, cat, _ := testEngine(t)
	info, err := Take(nil, dir, cat, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 0 {
		t.Fatalf("rows = %d", info.Rows)
	}
	mgr2, cat2, tbl2 := testEngine(t)
	res, err := Restore(dir, cat2, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 0 {
		t.Fatalf("restored %d rows", res.Rows)
	}
	check := mgr2.Begin()
	defer mgr2.Commit(check, nil)
	if n := tbl2.DataTable.CountVisible(check); n != 0 {
		t.Fatalf("%d rows visible", n)
	}
}

// TestRestoreFallsBackOnCatalogMismatch pins the crash-window rule: a
// manifest naming a table the durable catalog lacks (CreateTable crashed
// before catalog.json landed) is an invalid checkpoint to fall back from,
// not a permanent Open failure.
func TestRestoreFallsBackOnCatalogMismatch(t *testing.T) {
	dir := t.TempDir()
	mgr, cat, tbl := testEngine(t)
	insertRow(t, mgr, tbl, 1, "a", 10)
	if _, err := Take(nil, dir, cat, mgr); err != nil { // seq 1: accounts only
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("ghost", arrow.NewSchema(
		arrow.Field{Name: "x", Type: arrow.INT64},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := Take(nil, dir, cat, mgr); err != nil { // seq 2: includes ghost
		t.Fatal(err)
	}

	// Restore into an engine whose durable catalog never learned "ghost".
	mgr2, cat2, tbl2 := testEngine(t)
	res, err := Restore(dir, cat2, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Seq != 1 || res.Fallbacks != 1 {
		t.Fatalf("anchored on seq %d with %d fallbacks, want seq 1 / 1", res.Manifest.Seq, res.Fallbacks)
	}
	check := mgr2.Begin()
	defer mgr2.Commit(check, nil)
	if n := tbl2.DataTable.CountVisible(check); n != 1 {
		t.Fatalf("fallback restored %d rows", n)
	}
}
