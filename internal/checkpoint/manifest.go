// Package checkpoint persists transactionally consistent snapshots of the
// database as genuine Arrow IPC files plus a small JSON manifest, and
// restores them at startup. The checkpoint is simultaneously the recovery
// anchor — startup loads the newest valid manifest and replays only the
// WAL tail beyond its snapshot timestamp — and a third-party-readable
// columnar export: every table file is a standalone Arrow IPC stream
// (internal/arrow.ReadTable reads it back), which is the paper's
// "storage IS the interchange format" thesis carried onto disk.
//
// # On-disk layout
//
// Inside a data directory's checkpoints/ subdirectory, each checkpoint is
// one directory named by an 8-digit sequence number:
//
//	checkpoints/
//	  00000001/
//	    MANIFEST.json   — snapshot timestamp, schemas, per-file checksums
//	    t-<id>.arrow    — one Arrow IPC stream per table (logical schema)
//	    t-<id>.slots    — the physical slot of each row, in row order
//	  00000002/ ...
//
// A checkpoint is written into a hidden .tmp-<seq> directory, synced, and
// atomically renamed into place, so a crash mid-checkpoint leaves only an
// ignorable temp directory. Restore walks sequences newest-first and falls
// back to the previous checkpoint when a manifest or file checksum fails.
//
// # Why slot sidecars
//
// WAL redo records address tuples physically (block, offset). A restored
// checkpoint necessarily assigns new physical slots, so replaying the WAL
// tail needs the mapping from logged pre-crash slots to rebuilt slots for
// every checkpointed row; the .slots sidecar records exactly that, in row
// order, and stays out of the .arrow file so the columnar export remains
// pure table data.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mainline/internal/fault"
)

// FormatVersion versions the manifest encoding.
const FormatVersion = 1

// ManifestName is the manifest file inside a checkpoint directory.
const ManifestName = "MANIFEST.json"

// keepCheckpoints is how many installed checkpoints are retained: the
// newest plus one fallback for checksum failures.
const keepCheckpoints = 2

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FieldDef mirrors one Arrow schema field in the manifest, so a checkpoint
// is self-describing even without the engine's catalog file.
type FieldDef struct {
	Name     string `json:"name"`
	Type     uint8  `json:"type"`
	Nullable bool   `json:"nullable,omitempty"`
}

// TableInfo describes one table's files within a checkpoint.
type TableInfo struct {
	ID       uint32     `json:"id"`
	Name     string     `json:"name"`
	Rows     int64      `json:"rows"`
	DataFile string     `json:"data_file"`
	DataSize int64      `json:"data_size"`
	DataCRC  uint32     `json:"data_crc"`
	SlotFile string     `json:"slot_file"`
	SlotSize int64      `json:"slot_size"`
	SlotCRC  uint32     `json:"slot_crc"`
	Fields   []FieldDef `json:"fields"`
}

// Manifest is the checkpoint's metadata root, installed last (inside the
// temp directory, before the atomic rename) so its presence implies the
// data files were fully written.
type Manifest struct {
	FormatVersion int `json:"format_version"`
	// Seq orders checkpoints; recovery bootstraps from the highest valid.
	Seq uint64 `json:"seq"`
	// SnapshotTs is the checkpoint's anchor: every transaction with commit
	// timestamp <= SnapshotTs is contained in the table files; WAL replay
	// applies only timestamps beyond it.
	SnapshotTs uint64 `json:"snapshot_ts"`
	// LastTs is the engine clock when the checkpoint finished; recovery
	// advances the timestamp counter past it.
	LastTs uint64 `json:"last_ts"`
	// CreatedUnixNano records wall-clock creation time (informational).
	CreatedUnixNano int64       `json:"created_unix_nano"`
	Tables          []TableInfo `json:"tables"`
}

// seqDirName renders a checkpoint directory name.
func seqDirName(seq uint64) string { return fmt.Sprintf("%08d", seq) }

// parseSeqDir extracts a sequence from a checkpoint directory name.
func parseSeqDir(name string) (uint64, bool) {
	if len(name) != 8 {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "%08d", &seq); err != nil {
		return 0, false
	}
	if name != seqDirName(seq) {
		return 0, false
	}
	return seq, true
}

// ListSeqs enumerates installed checkpoint sequences in dir, ascending.
// Temp directories (".tmp-*") are ignored. A missing dir is empty.
func ListSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: listing %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if seq, ok := parseSeqDir(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// ReadManifest loads and decodes a checkpoint directory's manifest.
func ReadManifest(ckptDir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(ckptDir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: parsing manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("checkpoint: manifest format version %d, want %d", m.FormatVersion, FormatVersion)
	}
	return &m, nil
}

// Verify checks every file the manifest names against its recorded size
// and CRC-32C, streaming so memory stays constant.
func Verify(ckptDir string, m *Manifest) error {
	for _, t := range m.Tables {
		for _, f := range []struct {
			name string
			size int64
			crc  uint32
		}{
			{t.DataFile, t.DataSize, t.DataCRC},
			{t.SlotFile, t.SlotSize, t.SlotCRC},
		} {
			size, crc, err := crcFile(filepath.Join(ckptDir, f.name))
			if err != nil {
				return err
			}
			if size != f.size || crc != f.crc {
				return fmt.Errorf("checkpoint: %s/%s corrupt (size %d/%d crc %08x/%08x)",
					filepath.Base(ckptDir), f.name, size, f.size, crc, f.crc)
			}
		}
	}
	return nil
}

// crcFile streams a file through CRC-32C.
func crcFile(path string) (int64, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	cw := &crcWriter{}
	n, err := io.Copy(cw, f)
	if err != nil {
		return 0, 0, err
	}
	return n, cw.crc, nil
}

// crcWriter accumulates CRC-32C and byte count over writes.
type crcWriter struct {
	w   io.Writer // optional passthrough
	n   int64
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	if cw.w != nil {
		n, err := cw.w.Write(p)
		cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
		cw.n += int64(n)
		return n, err
	}
	cw.crc = crc32.Update(cw.crc, crcTable, p)
	cw.n += int64(len(p))
	return len(p), nil
}

// prune removes installed checkpoints older than the newest keepCheckpoints
// and any leftover temp directories. Best-effort throughout — it only ever
// deletes checkpoints that newer, already-durable ones supersede, so a
// failed removal or directory sync costs disk space, never correctness;
// the next successful checkpoint retries. It can never delete the last
// good checkpoint: the newest keepCheckpoints sequences are always kept.
func prune(fsys fault.FS, dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var seqs []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), ".tmp-") {
			_ = fsys.RemoveAll(filepath.Join(dir, e.Name()))
			continue
		}
		if seq, ok := parseSeqDir(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) <= keepCheckpoints {
		return
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs[:len(seqs)-keepCheckpoints] {
		_ = fsys.RemoveAll(filepath.Join(dir, seqDirName(seq)))
	}
	_ = fsys.SyncDir(dir)
}
