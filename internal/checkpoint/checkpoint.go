package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/fault"
	"mainline/internal/fsutil"
	"mainline/internal/objstore"
	"mainline/internal/obs"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// snapshotBatchRows bounds builder memory while scanning.
const snapshotBatchRows = 8192

// Info summarizes one taken checkpoint.
type Info struct {
	// Seq is the checkpoint's sequence number.
	Seq uint64
	// SnapshotTs is the snapshot timestamp the checkpoint is anchored at.
	SnapshotTs uint64
	// LastTs is the engine clock when the checkpoint finished.
	LastTs uint64
	// Tables is the number of tables captured.
	Tables int
	// Rows is the total rows captured across tables.
	Rows int64
	// BytesWritten is the total bytes of data, sidecar, and manifest files.
	BytesWritten int64
	// Dir is the installed checkpoint directory.
	Dir string
}

// Take writes a transactionally consistent checkpoint of every catalog
// table into dir (the checkpoints directory, created if needed) and
// installs it atomically, performing all filesystem operations through
// fsys (nil = real filesystem). The snapshot is a read-only transaction:
// every row version visible at its start timestamp — and nothing newer —
// lands in the table files, so the manifest's SnapshotTs cleanly
// partitions history into "in the checkpoint" and "replay from the WAL
// tail". Any error before the final rename leaves the previous
// checkpoint installed and intact — a failed attempt is retried, never a
// reason to degrade.
func Take(fsys fault.FS, dir string, cat *catalog.Catalog, mgr *txn.Manager) (*Info, error) {
	return TakeObserved(fsys, dir, cat, mgr, nil)
}

// TakeObserved is Take with per-table instrumentation: when perTable is
// non-nil, each table's capture duration (scan + IPC write + sidecar) is
// recorded into it.
func TakeObserved(fsys fault.FS, dir string, cat *catalog.Catalog, mgr *txn.Manager, perTable *obs.Histogram) (*Info, error) {
	info, _, err := TakeTiered(fsys, dir, cat, mgr, perTable, nil)
	return info, err
}

// TakeTiered is TakeObserved with tiered capture: when store is
// non-nil, every table's snapshot batches are additionally encoded as
// standalone Arrow IPC chunks and uploaded to the object store under
// content-hash keys (see chunks.go), and the per-table chunk lists are
// returned for the caller to commit into the manifest log. Chunk
// uploads happen before the checkpoint installs, so a failed attempt
// may orphan objects but never publishes a version referencing missing
// data. A chunk upload failure (store unreachable, ENOSPC) fails the
// whole attempt — the previous checkpoint stays installed and the
// caller retries.
func TakeTiered(fsys fault.FS, dir string, cat *catalog.Catalog, mgr *txn.Manager, perTable *obs.Histogram, store objstore.Store) (*Info, []TableChunks, error) {
	if fsys == nil {
		fsys = fault.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	seqs, err := ListSeqs(dir)
	if err != nil {
		return nil, nil, err
	}
	seq := uint64(1)
	if n := len(seqs); n > 0 {
		seq = seqs[n-1] + 1
	}
	tmp := filepath.Join(dir, fmt.Sprintf(".tmp-%d", seq))
	if err := fsys.RemoveAll(tmp); err != nil {
		return nil, nil, err
	}
	if err := fsys.MkdirAll(tmp); err != nil {
		return nil, nil, err
	}
	cleanup := true
	defer func() {
		if cleanup {
			// Best-effort: the aborted attempt's temp directory is garbage
			// either way — prune sweeps stragglers on the next success.
			_ = fsys.RemoveAll(tmp)
		}
	}()

	// The snapshot transaction pins the GC watermark for the duration, so
	// no version this scan still needs can be pruned under it. Drawing it
	// before listing tables guarantees any table the list misses was
	// created after SnapshotTs — its rows are all in the WAL tail. It is
	// finished with Abort, not Commit: a read-only abort has no effects
	// and, unlike Commit, never reaches the WAL hook, so the checkpoint
	// leaves no record in the fresh segment that would block truncating it
	// at the next checkpoint.
	tx := mgr.Begin()
	defer func() {
		if !tx.Finished() {
			mgr.Abort(tx)
		}
	}()
	snapshotTs := tx.StartTs()
	// Wait out in-flight commit critical sections before scanning: a
	// transaction can draw commit timestamp C < snapshotTs on another
	// latch shard and still be stamping its undo records, in which case
	// the scan would read its tuples as uncommitted and omit them — yet
	// tail replay (AfterTs = snapshotTs) would skip C too, losing it.
	// CommitFrontier's latch barrier guarantees every commit below the
	// frontier (>= snapshotTs) has finished stamping and is visible.
	mgr.CommitFrontier()

	tables := cat.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })

	info := &Info{Seq: seq, SnapshotTs: snapshotTs, Dir: filepath.Join(dir, seqDirName(seq))}
	man := &Manifest{
		FormatVersion:   FormatVersion,
		Seq:             seq,
		SnapshotTs:      snapshotTs,
		CreatedUnixNano: time.Now().UnixNano(),
	}
	var chunks []TableChunks
	for _, t := range tables {
		var t0 time.Time
		if perTable != nil {
			t0 = time.Now()
		}
		ti, tc, err := writeTable(fsys, tmp, t, tx, store)
		if err != nil {
			return nil, nil, err
		}
		perTable.RecordSince(t0)
		man.Tables = append(man.Tables, *ti)
		info.Rows += ti.Rows
		info.BytesWritten += ti.DataSize + ti.SlotSize
		if tc != nil {
			chunks = append(chunks, *tc)
		}
	}
	mgr.Abort(tx)
	man.LastTs = mgr.CurrentTime()
	info.LastTs = man.LastTs
	info.Tables = len(man.Tables)

	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := fsutil.WriteFileSync(fsys, filepath.Join(tmp, ManifestName), data); err != nil {
		return nil, nil, err
	}
	info.BytesWritten += int64(len(data))
	// The temp directory's entries (data, sidecar, manifest) must be
	// durable before the rename publishes them: a crash after an un-synced
	// install could expose a checkpoint directory with missing files. A
	// sync failure aborts the attempt — previous checkpoint stays current.
	if err := fsys.SyncDir(tmp); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: syncing %s: %w", tmp, err)
	}

	// Atomic install: the checkpoint exists iff the rename completed.
	if err := fsys.Rename(tmp, info.Dir); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: installing %s: %w", info.Dir, err)
	}
	cleanup = false
	// Failing to sync the parent leaves the rename volatile: recovery could
	// still see the previous checkpoint after a crash. Propagate so the
	// caller does not truncate the WAL against a checkpoint that may not
	// survive.
	if err := fsys.SyncDir(dir); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: syncing %s: %w", dir, err)
	}
	prune(fsys, dir)
	return info, chunks, nil
}

// writeTable writes one table's Arrow IPC stream and slot sidecar into the
// temp checkpoint directory through fsys. With a non-nil store, each
// snapshot batch is additionally uploaded as a content-addressed chunk
// object and the chunk list is returned for the manifest log.
func writeTable(fsys fault.FS, tmp string, t *catalog.Table, tx *txn.Transaction, store objstore.Store) (*TableInfo, *TableChunks, error) {
	ti := &TableInfo{
		ID:       t.ID,
		Name:     t.Name,
		DataFile: fmt.Sprintf("t-%d.arrow", t.ID),
		SlotFile: fmt.Sprintf("t-%d.slots", t.ID),
	}
	for _, f := range t.Schema.Fields {
		ti.Fields = append(ti.Fields, FieldDef{Name: f.Name, Type: uint8(f.Type), Nullable: f.Nullable})
	}
	var tc *TableChunks
	if store != nil {
		tc = &TableChunks{ID: t.ID, Name: t.Name, Fields: ti.Fields}
	}

	df, err := fsys.Create(filepath.Join(tmp, ti.DataFile))
	if err != nil {
		return nil, nil, err
	}
	defer df.Close()
	dcw := &crcWriter{w: df}
	wr := arrow.NewWriter(dcw)
	if err := wr.WriteSchema(t.Schema); err != nil {
		return nil, nil, err
	}

	sf, err := fsys.Create(filepath.Join(tmp, ti.SlotFile))
	if err != nil {
		return nil, nil, err
	}
	defer sf.Close()
	scw := &crcWriter{w: sf}
	var slotBuf []byte

	rows, err := t.SnapshotBatches(tx, snapshotBatchRows, func(rb *arrow.RecordBatch, slots []storage.TupleSlot) error {
		if err := wr.WriteBatch(rb); err != nil {
			return err
		}
		if tc != nil {
			ref, err := writeChunk(store, t.Schema, rb)
			if err != nil {
				return err
			}
			tc.Chunks = append(tc.Chunks, ref)
			tc.Rows += int64(rb.NumRows)
		}
		slotBuf = slotBuf[:0]
		for _, s := range slots {
			slotBuf = binary.LittleEndian.AppendUint64(slotBuf, uint64(s))
		}
		_, err := scw.Write(slotBuf)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	if err := wr.Close(); err != nil {
		return nil, nil, err
	}
	if err := df.Sync(); err != nil {
		return nil, nil, err
	}
	if err := sf.Sync(); err != nil {
		return nil, nil, err
	}
	ti.Rows = int64(rows)
	ti.DataSize, ti.DataCRC = dcw.n, dcw.crc
	ti.SlotSize, ti.SlotCRC = scw.n, scw.crc
	return ti, tc, nil
}
