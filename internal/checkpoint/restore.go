package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// restoreTxnRows bounds the undo/redo footprint of one restore transaction.
const restoreTxnRows = 8192

// RestoreResult reports what a bootstrap loaded.
type RestoreResult struct {
	// Manifest is the checkpoint the bootstrap anchored on.
	Manifest *Manifest
	// Dir is the checkpoint directory loaded.
	Dir string
	// Rows is the total rows inserted.
	Rows int64
	// SlotMap maps each checkpointed row's pre-crash physical slot to its
	// rebuilt slot — the seed for WAL-tail replay.
	SlotMap map[storage.TupleSlot]storage.TupleSlot
	// Fallbacks counts newer checkpoints skipped due to checksum or
	// manifest failures before a valid one was found.
	Fallbacks int
}

// Restore loads the newest valid checkpoint from dir into the catalog's
// tables, falling back to older checkpoints when verification fails.
// (nil, nil) means no checkpoint exists; an error means checkpoints exist
// but none is loadable — starting empty would silently lose data the WAL
// alone cannot reproduce, so the caller must surface it.
func Restore(dir string, cat *catalog.Catalog, mgr *txn.Manager) (*RestoreResult, error) {
	seqs, err := ListSeqs(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, nil
	}
	var lastErr error
	fallbacks := 0
	for i := len(seqs) - 1; i >= 0; i-- {
		ckptDir := filepath.Join(dir, seqDirName(seqs[i]))
		man, err := ReadManifest(ckptDir)
		if err == nil {
			err = Verify(ckptDir, man)
		}
		if err == nil {
			// Catalog consistency is part of validity, checked BEFORE any
			// row is inserted so an inconsistent checkpoint falls back
			// cleanly instead of aborting Open after a partial load. A
			// manifest can legitimately name a table the durable catalog
			// lacks: the snapshot listed a table whose CreateTable
			// registered it but crashed (or failed and rolled back) before
			// catalog.json landed — no transaction can have touched it, so
			// the older checkpoint loses nothing.
			err = checkCatalog(man, cat)
		}
		if err != nil {
			lastErr = err
			fallbacks++
			continue
		}
		res, err := load(ckptDir, man, cat, mgr)
		if err != nil {
			return nil, err
		}
		res.Fallbacks = fallbacks
		return res, nil
	}
	return nil, fmt.Errorf("checkpoint: no valid checkpoint among %d in %s: %w", len(seqs), dir, lastErr)
}

// checkCatalog verifies every manifest table exists in the catalog with an
// identical schema.
func checkCatalog(man *Manifest, cat *catalog.Catalog) error {
	for i := range man.Tables {
		ti := &man.Tables[i]
		t := cat.TableByID(ti.ID)
		if t == nil {
			return fmt.Errorf("checkpoint: table %q (id %d) in manifest but not in catalog", ti.Name, ti.ID)
		}
		if want := manifestSchema(ti); !t.Schema.Equal(want) {
			return fmt.Errorf("checkpoint: table %q schema drifted: catalog %s vs checkpoint %s", ti.Name, t.Schema, want)
		}
	}
	return nil
}

// load inserts every row of a verified checkpoint into the catalog's
// tables, chunked into bounded transactions, and builds the slot map.
func load(ckptDir string, man *Manifest, cat *catalog.Catalog, mgr *txn.Manager) (*RestoreResult, error) {
	res := &RestoreResult{
		Manifest: man,
		Dir:      ckptDir,
		SlotMap:  make(map[storage.TupleSlot]storage.TupleSlot),
	}
	for i := range man.Tables {
		ti := &man.Tables[i]
		t := cat.TableByID(ti.ID)
		if t == nil {
			// checkCatalog ran first; reaching here is a caller bug.
			return nil, fmt.Errorf("checkpoint: table %q (id %d) in manifest but not in catalog", ti.Name, ti.ID)
		}
		if err := loadTable(ckptDir, ti, t, mgr, res); err != nil {
			return nil, fmt.Errorf("checkpoint: loading table %q: %w", ti.Name, err)
		}
	}
	return res, nil
}

// manifestSchema rebuilds the Arrow schema a manifest records for a table.
func manifestSchema(ti *TableInfo) *arrow.Schema {
	fields := make([]arrow.Field, 0, len(ti.Fields))
	for _, f := range ti.Fields {
		fields = append(fields, arrow.Field{Name: f.Name, Type: arrow.TypeID(f.Type), Nullable: f.Nullable})
	}
	return arrow.NewSchema(fields...)
}

// loadTable reads one table's slot sidecar and Arrow stream and re-inserts
// every row.
func loadTable(ckptDir string, ti *TableInfo, t *catalog.Table, mgr *txn.Manager, res *RestoreResult) error {
	slots, err := readSlots(filepath.Join(ckptDir, ti.SlotFile), ti.Rows)
	if err != nil {
		return err
	}
	df, err := os.Open(filepath.Join(ckptDir, ti.DataFile))
	if err != nil {
		return err
	}
	defer df.Close()
	rd := arrow.NewReader(df)

	proj := t.AllColumnsProjection()
	row := proj.NewRow()
	layout := t.Layout()

	var (
		tx     *txn.Transaction
		inTxn  int
		global int64
	)
	commit := func() {
		if tx != nil {
			mgr.Commit(tx, nil)
			tx = nil
			inTxn = 0
		}
	}
	defer func() {
		if tx != nil {
			mgr.Abort(tx)
		}
	}()

	for {
		rb, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if !rb.Schema.Equal(t.Schema) {
			return fmt.Errorf("batch schema %s != table schema %s", rb.Schema, t.Schema)
		}
		for r := 0; r < rb.NumRows; r++ {
			if global >= int64(len(slots)) {
				return fmt.Errorf("more rows than slots (%d)", len(slots))
			}
			if tx == nil {
				tx = mgr.Begin()
			}
			row.Reset()
			for c, arr := range rb.Columns {
				if arr.IsNull(r) {
					row.SetNull(c)
					continue
				}
				col := storage.ColumnID(c)
				if layout.IsVarlen(col) {
					row.SetVarlen(c, arr.Bytes(r))
				} else {
					w := arr.Type.ByteWidth()
					copy(row.FixedBytes(c), arr.Values[r*w:(r+1)*w])
					row.Nulls.Clear(c)
				}
			}
			newSlot, err := t.DataTable.Insert(tx, row)
			if err != nil {
				return err
			}
			res.SlotMap[slots[global]] = newSlot
			global++
			res.Rows++
			if inTxn++; inTxn >= restoreTxnRows {
				commit()
			}
		}
	}
	commit()
	if global != ti.Rows {
		return fmt.Errorf("restored %d rows, manifest says %d", global, ti.Rows)
	}
	return nil
}

// readSlots loads a slot sidecar (rows little-endian u64 values).
func readSlots(path string, rows int64) ([]storage.TupleSlot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != rows*8 {
		return nil, fmt.Errorf("slot sidecar %s has %d bytes, want %d", filepath.Base(path), len(data), rows*8)
	}
	slots := make([]storage.TupleSlot, rows)
	for i := range slots {
		slots[i] = storage.TupleSlot(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return slots, nil
}
