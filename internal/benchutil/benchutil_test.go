package benchutil

import (
	"strings"
	"testing"
	"time"
)

func TestTablePrint(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Note:   "a note",
		Header: []string{"col-a", "b"},
	}
	tb.AddRow("1", "two")
	tb.AddRow("longer-cell", "x")
	var sb strings.Builder
	tb.Print(&sb)
	out := sb.String()
	for _, want := range []string{"== Demo ==", "a note", "col-a", "longer-cell", "two"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: the header and the separator line up.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestFormatting(t *testing.T) {
	if got := OpsPerSec(2_000_000, time.Second); got != "2.00M/s" {
		t.Fatalf("OpsPerSec = %q", got)
	}
	if got := OpsPerSec(1500, time.Second); got != "1.5K/s" {
		t.Fatalf("OpsPerSec = %q", got)
	}
	if got := OpsPerSec(10, 0); got != "n/a" {
		t.Fatalf("OpsPerSec zero-duration = %q", got)
	}
	if got := MBps(10<<20, time.Second); got != "10.0 MB/s" {
		t.Fatalf("MBps = %q", got)
	}
	if got := Seconds(1500 * time.Millisecond); got != "1.50s" {
		t.Fatalf("Seconds = %q", got)
	}
	if got := Seconds(2 * time.Millisecond); got != "2.00ms" {
		t.Fatalf("Seconds = %q", got)
	}
	if got := Ratio(10, 2); got != "5.0x" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Count(12_345_678); got != "12.3M" {
		t.Fatalf("Count = %q", got)
	}
	if got := Count(42); got != "42" {
		t.Fatalf("Count = %q", got)
	}
}
