// Package benchutil provides the small reporting toolkit the figure
// harnesses share: aligned-column tables (the textual stand-in for the
// paper's plots) and unit formatting.
package benchutil

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid of results; one per reproduced figure.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// OpsPerSec formats an operations-per-second rate.
func OpsPerSec(ops int64, d time.Duration) string {
	if d <= 0 {
		return "n/a"
	}
	rate := float64(ops) / d.Seconds()
	switch {
	case rate >= 1e6:
		return fmt.Sprintf("%.2fM/s", rate/1e6)
	case rate >= 1e3:
		return fmt.Sprintf("%.1fK/s", rate/1e3)
	default:
		return fmt.Sprintf("%.0f/s", rate)
	}
}

// MBps formats a bandwidth.
func MBps(bytes int64, d time.Duration) string {
	if d <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f MB/s", float64(bytes)/(1<<20)/d.Seconds())
}

// Seconds formats a duration in seconds with sensible precision.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.2fms", s*1000)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

// Ratio formats a/b with a × suffix.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

// Count formats large counts compactly.
func Count(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
