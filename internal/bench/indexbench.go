package bench

// The index sweep (not a paper figure): point lookups and ordered range
// sweeps through the engine-managed secondary index against answering the
// same queries with a full vectorized Filter and a tuple-at-a-time Scan —
// ISSUE 5's acceptance scenario (indexed point read >= 10x a full Filter
// on a >=4-block frozen table). The MVCC re-verification cost is visible
// in the reported "re-verified" column: every emitted slot was re-checked
// through the version chain.

import (
	"fmt"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/benchutil"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/gc"
	"mainline/internal/index"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
)

// IndexBenchConfig sizes the index sweep.
type IndexBenchConfig struct {
	// Blocks is the number of sealed blocks; PerBlock the tuples in each.
	Blocks   int
	PerBlock int
	// Lookups is the number of point reads per scenario; Ranges the
	// number of range sweeps; Span the keys per range sweep.
	Lookups int
	Ranges  int
	Span    int
}

// DefaultIndexBenchConfig mirrors the acceptance setup: a 4-block frozen
// table with a unique int64 key per row.
func DefaultIndexBenchConfig() IndexBenchConfig {
	return IndexBenchConfig{Blocks: 4, PerBlock: 20000, Lookups: 20000, Ranges: 200, Span: 200}
}

type indexEnv struct {
	mgr   *txn.Manager
	table *catalog.Table
	pk    *core.TableIndex
}

func buildIndexTable(cfg IndexBenchConfig) (*indexEnv, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	g := gc.New(mgr) // also installs the index deferrer
	cat := catalog.New(reg)
	table, err := cat.CreateTable("indexed", arrow.NewSchema(
		arrow.Field{Name: "id", Type: arrow.INT64},
		arrow.Field{Name: "payload", Type: arrow.STRING},
		arrow.Field{Name: "amount", Type: arrow.INT64},
	))
	if err != nil {
		return nil, err
	}
	pk, err := table.CreateIndex(catalog.IndexSpec{Name: "pk", Columns: []string{"id"}})
	if err != nil {
		return nil, err
	}
	row := table.AllColumnsProjection().NewRow()
	id := int64(0)
	for b := 0; b < cfg.Blocks; b++ {
		tx := mgr.Begin()
		var blk *storage.Block
		for i := 0; i < cfg.PerBlock; i++ {
			row.Reset()
			row.SetInt64(0, id)
			row.SetVarlen(1, []byte(fmt.Sprintf("payload-%08d-some-tail", id)))
			row.SetInt64(2, id%500)
			slot, err := table.Insert(tx, row)
			if err != nil {
				mgr.Abort(tx)
				return nil, err
			}
			if blk == nil {
				blk = reg.BlockFor(slot)
			}
			id++
		}
		mgr.Commit(tx, nil)
		blk.SetInsertHead(table.Layout().NumSlots)
	}
	for i := 0; i < 3; i++ {
		g.RunOnce()
	}
	for _, b := range table.Blocks() {
		if b.HasActiveVersions() {
			return nil, fmt.Errorf("bench: chains not pruned")
		}
		b.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(b, transform.ModeGather); err != nil {
			return nil, err
		}
	}
	return &indexEnv{mgr: mgr, table: table, pk: pk}, nil
}

// IndexBench runs the sweep and returns the comparison table.
func IndexBench(cfg IndexBenchConfig) (*benchutil.Table, error) {
	env, err := buildIndexTable(cfg)
	if err != nil {
		return nil, err
	}
	mgr, table, pk := env.mgr, env.table, env.pk
	total := int64(cfg.Blocks * cfg.PerBlock)
	readProj := storage.MustProjection(table.Layout(), []storage.ColumnID{0, 2})
	out := readProj.NewRow()
	pred := func(id int64) *core.Predicate { return core.NewIntPred(0, id, id) }

	t := &benchutil.Table{
		Title: "Index sweep — engine-managed indexed reads vs vectorized Filter vs Scan",
		Note: fmt.Sprintf("%d blocks x %d tuples frozen, unique int64 key; %d point reads, %d x %d-key ranges",
			cfg.Blocks, cfg.PerBlock, cfg.Lookups, cfg.Ranges, cfg.Span),
		Header: []string{"scenario", "path", "ops/s", "speedup vs filter"},
	}

	timeOps := func(n int, fn func(i int, tx *txn.Transaction) error) (float64, error) {
		tx := mgr.Begin()
		defer mgr.Commit(tx, nil)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := fn(i, tx); err != nil {
				return 0, err
			}
		}
		return float64(n) / time.Since(start).Seconds(), nil
	}

	key := func(i int) int64 {
		id := int64(i*2654435761) % total
		if id < 0 {
			id += total
		}
		return id
	}

	// Point reads.
	filterRate, err := timeOps(cfg.Lookups/10, func(i int, tx *txn.Transaction) error {
		n := 0
		err := table.ScanBatches(tx, readProj, pred(key(i)), func(b *core.Batch) bool {
			n += b.Len()
			return true
		})
		if err == nil && n != 1 {
			return fmt.Errorf("filter matched %d rows", n)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	indexedRate, err := timeOps(cfg.Lookups, func(i int, tx *txn.Transaction) error {
		if _, ok := pk.GetVisible(tx, index.NewKeyBuilder(8).Int64(key(i)).Bytes(), out); !ok {
			return fmt.Errorf("id %d missing", key(i))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	scanRate, err := timeOps(cfg.Lookups/1000+2, func(i int, tx *txn.Transaction) error {
		want := key(i)
		found := false
		err := table.Scan(tx, readProj, func(_ storage.TupleSlot, r *storage.ProjectedRow) bool {
			if r.Int64(0) == want {
				found = true
				return false
			}
			return true
		})
		if err == nil && !found {
			return fmt.Errorf("id %d missing", want)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("point", "filter (vectorized)", benchutil.OpsPerSec(int64(filterRate), time.Second), "1.00x")
	t.AddRow("point", "indexed GetBy", benchutil.OpsPerSec(int64(indexedRate), time.Second), fmt.Sprintf("%.2fx", indexedRate/filterRate))
	t.AddRow("point", "full scan", benchutil.OpsPerSec(int64(scanRate), time.Second), fmt.Sprintf("%.2fx", scanRate/filterRate))

	// Range sweeps.
	span := int64(cfg.Span)
	rangeFilterRate, err := timeOps(cfg.Ranges, func(i int, tx *txn.Transaction) error {
		lo := (int64(i) * 977) % (total - span)
		n := 0
		err := table.ScanBatches(tx, readProj, core.NewIntPred(0, lo, lo+span-1), func(b *core.Batch) bool {
			n += b.Len()
			return true
		})
		if err == nil && int64(n) != span {
			return fmt.Errorf("filter range matched %d rows", n)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	rangeIdxRate, err := timeOps(cfg.Ranges, func(i int, tx *txn.Transaction) error {
		lo := (int64(i) * 977) % (total - span)
		n := int64(0)
		loKey := index.NewKeyBuilder(8).Int64(lo).Bytes()
		hiKey := index.NewKeyBuilder(8).Int64(lo + span).Bytes()
		pk.Ascend(tx, loKey, hiKey, out, func(storage.TupleSlot, *storage.ProjectedRow) bool {
			n++
			return true
		})
		if n != span {
			return fmt.Errorf("index range emitted %d rows", n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("range", "filter (pruned)", benchutil.OpsPerSec(int64(rangeFilterRate), time.Second), "1.00x")
	t.AddRow("range", "indexed RangeBy", benchutil.OpsPerSec(int64(rangeIdxRate), time.Second), fmt.Sprintf("%.2fx", rangeIdxRate/rangeFilterRate))

	c := pk.Counters()
	t.AddRow("stats", fmt.Sprintf("entries %d, re-verified %d, stale filtered %d", c.Entries, c.SlotsReverified, c.StaleFiltered), "", "")

	if indexedRate < 10*filterRate {
		return nil, fmt.Errorf("bench: indexed point read only %.1fx the vectorized filter (acceptance: >=10x)", indexedRate/filterRate)
	}
	return t, nil
}
