package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mainline/internal/benchutil"
	"mainline/internal/catalog"
	"mainline/internal/gc"
	"mainline/internal/obs"
	"mainline/internal/storage"
	"mainline/internal/txn"
	"mainline/internal/wal"
	"mainline/internal/workload/tpcc"
)

// GroupCommitConfig scales the commit-pipeline experiment.
type GroupCommitConfig struct {
	// Workers are the terminal counts to sweep (default 1,2,4,8).
	Workers []int
	// Duration is the measurement window per point.
	Duration time.Duration
	// TPCC is the per-warehouse database scale.
	TPCC func(warehouses int) tpcc.Config
	// LogDir receives the per-point WAL files ("" = a temp dir that is
	// removed afterwards).
	LogDir string
	// FlushInterval bounds group-commit latency (default 5ms; the enqueue
	// nudge makes idle-system flushes immediate regardless).
	FlushInterval time.Duration
	// SyncLatency emulates a device with the given fsync cost (0 defaults
	// to 5ms, a commodity disk, unless RawSync is set).
	SyncLatency time.Duration
	// RawSync measures the raw filesystem instead of the emulated device —
	// on hosts where fsync is near-free that yields a pure CPU benchmark
	// in which group commit has nothing to amortize.
	RawSync bool
	// SyncDelay is the group-formation window before each flush (0
	// defaults to 1ms); see wal.LogManager.SyncDelay.
	SyncDelay time.Duration
}

// DefaultGroupCommitConfig returns the laptop-scale sweep.
func DefaultGroupCommitConfig() GroupCommitConfig {
	return GroupCommitConfig{
		Workers:       []int{1, 2, 4, 8},
		Duration:      time.Second,
		TPCC:          tpcc.DefaultConfig,
		FlushInterval: 5 * time.Millisecond,
		SyncLatency:   5 * time.Millisecond,
		SyncDelay:     time.Millisecond,
	}
}

// GroupCommitPoint is one sweep measurement, exposed so tests can assert
// scaling shapes without re-parsing the table.
type GroupCommitPoint struct {
	Workers   int
	Committed int64
	Aborted   int64
	TxnPerSec float64
	TpmC      float64
	Syncs     int64
	// GroupSize is the mean transactions amortized per fsync.
	GroupSize float64
	// P50/P95/P99 are commit-latency percentiles (durable wait included)
	// from the internal/obs histogram the point records into.
	P50, P95, P99 time.Duration
}

// GroupCommit measures the parallel commit pipeline: TPC-C terminals issue
// durable commits (each waits for the WAL fsync covering its commit
// record), so throughput is governed by how many commits a group amortizes
// per fsync. With one terminal every transaction pays a private fsync;
// with N the sharded commit latch and group commit overlap them — the
// sweep's shape is the pipeline's speedup, largely independent of core
// count because the waiting is I/O, not CPU.
func GroupCommit(cfg GroupCommitConfig) (*benchutil.Table, []GroupCommitPoint, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.TPCC == nil {
		cfg.TPCC = tpcc.DefaultConfig
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.SyncLatency <= 0 && !cfg.RawSync {
		cfg.SyncLatency = 5 * time.Millisecond
	}
	if cfg.SyncDelay <= 0 {
		cfg.SyncDelay = time.Millisecond
	}
	logDir := cfg.LogDir
	if logDir == "" {
		dir, err := os.MkdirTemp("", "mainline-groupcommit")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		logDir = dir
	}

	t := &benchutil.Table{
		Title:  "Commit pipeline — durable TPC-C throughput vs terminals",
		Note:   fmt.Sprintf("%v per point, every commit waits for its group fsync", cfg.Duration),
		Header: []string{"workers", "txn/s", "tpmC", "p50", "p95", "p99", "aborted", "fsyncs", "txns/fsync", "speedup"},
	}
	var points []GroupCommitPoint
	var base float64
	for _, workers := range cfg.Workers {
		pt, err := runGroupCommitPoint(cfg, workers, logDir)
		if err != nil {
			return nil, nil, fmt.Errorf("group-commit @%d workers: %w", workers, err)
		}
		points = append(points, *pt)
		if base == 0 {
			base = pt.TxnPerSec
		}
		t.AddRow(
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.0f", pt.TxnPerSec),
			fmt.Sprintf("%.0f", pt.TpmC),
			benchutil.Seconds(pt.P50),
			benchutil.Seconds(pt.P95),
			benchutil.Seconds(pt.P99),
			fmt.Sprintf("%d", pt.Aborted),
			fmt.Sprintf("%d", pt.Syncs),
			fmt.Sprintf("%.1f", pt.GroupSize),
			benchutil.Ratio(pt.TxnPerSec, base),
		)
	}
	return t, points, nil
}

func runGroupCommitPoint(cfg GroupCommitConfig, workers int, logDir string) (*GroupCommitPoint, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	db, err := tpcc.NewDatabase(mgr, cat, cfg.TPCC(workers))
	if err != nil {
		return nil, err
	}
	p, err := tpcc.Load(db, 42)
	if err != nil {
		return nil, err
	}

	path := filepath.Join(logDir, fmt.Sprintf("wal-%dw.log", workers))
	latency := cfg.SyncLatency
	if cfg.RawSync {
		latency = 0
	}
	lm, err := wal.OpenPipeline(path, mgr, latency, cfg.SyncDelay, cfg.FlushInterval)
	if err != nil {
		return nil, err
	}
	db.Durable = true
	lat := obs.NewHistogram("commit", "", "seconds", "")
	db.CommitLatency = lat

	g := gc.New(mgr)
	g.Start(10 * time.Millisecond)
	res := tpcc.Run(db, p, workers, cfg.Duration, 99)
	g.Stop()
	db.Durable = false
	if err := lm.Close(); err != nil {
		return nil, err
	}
	os.Remove(path)

	if err := tpcc.CheckConsistency(db); err != nil {
		return nil, err
	}
	txns, _, syncs := lm.Stats()
	snap := lat.Snapshot()
	pt := &GroupCommitPoint{
		Workers:   workers,
		Committed: res.Total(),
		Aborted:   res.Aborted,
		TxnPerSec: res.Throughput(),
		TpmC:      res.TpmC(),
		Syncs:     syncs,
		P50:       snap.QuantileDuration(0.50),
		P95:       snap.QuantileDuration(0.95),
		P99:       snap.QuantileDuration(0.99),
	}
	if syncs > 0 {
		pt.GroupSize = float64(txns) / float64(syncs)
	}
	return pt, nil
}
