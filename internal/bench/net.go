package bench

import (
	"fmt"
	"time"

	"mainline/internal/benchutil"
	"mainline/internal/workload/netbench"
)

// NetConfig shapes the serving-layer sweep.
type NetConfig struct {
	// Addr targets an external mainline-serve (CI smoke); empty
	// self-hosts one in-process server per point.
	Addr string
	// Clients lists the fleet sizes to sweep.
	Clients []int
	// Duration is the mixed-op phase per point.
	Duration time.Duration
	// KeysPerClient bounds each client's key range.
	KeysPerClient int
}

// DefaultNetConfig is the EXPERIMENTS.md sweep shape.
func DefaultNetConfig() NetConfig {
	return NetConfig{
		Clients:       []int{1, 4, 16, 64},
		Duration:      2 * time.Second,
		KeysPerClient: 256,
	}
}

// Net sweeps netbench over client counts: committed write txn/s, streamed
// export bandwidth, admission rejections, and the replay-verification
// verdict per point. Fails if any point reports an oracle mismatch, a
// structural invariant violation, or a hung (rather than rejected)
// admission probe — the serving layer must shed load with a typed error.
func Net(cfg NetConfig) (*benchutil.Table, error) {
	t := &benchutil.Table{
		Title: "netbench: serving-layer throughput vs client count",
		Note: "mixed keyed OLTP writes + streaming DoGet exports per client; " +
			"oracle replay-verified after each point",
		Header: []string{"clients", "txn/s", "p50", "p95", "p99", "commits", "aborts",
			"exports", "export MB/s", "busy rejects", "verified"},
	}
	for _, n := range cfg.Clients {
		nb := netbench.DefaultConfig()
		nb.Addr = cfg.Addr
		nb.Clients = n
		nb.Duration = cfg.Duration
		if cfg.KeysPerClient > 0 {
			nb.KeysPerClient = cfg.KeysPerClient
		}
		// Against an external server the session cap is whatever the
		// operator set, so the cap probe is only meaningful self-hosted.
		nb.ProbeAdmission = cfg.Addr == ""
		nb.Table = fmt.Sprintf("netbench_c%d", n)
		res, err := netbench.Run(nb)
		if err != nil {
			return nil, fmt.Errorf("netbench %d clients: %w", n, err)
		}
		if res.Mismatches > 0 || res.InvariantViolations > 0 {
			return nil, fmt.Errorf("netbench %d clients: %d oracle mismatches, %d invariant violations",
				n, res.Mismatches, res.InvariantViolations)
		}
		if res.ProbeHangs > 0 {
			return nil, fmt.Errorf("netbench %d clients: %d admission probes hung instead of rejecting",
				n, res.ProbeHangs)
		}
		verdict := "ok"
		if nb.ProbeAdmission && res.BusyRejections == 0 {
			verdict = "ok (no busy rejects)"
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", res.TxnPerSec()),
			benchutil.Seconds(res.Latency.QuantileDuration(0.50)),
			benchutil.Seconds(res.Latency.QuantileDuration(0.95)),
			benchutil.Seconds(res.Latency.QuantileDuration(0.99)),
			benchutil.Count(res.Ops),
			benchutil.Count(res.Aborts),
			benchutil.Count(res.Exports),
			benchutil.MBps(res.ExportBytes, res.Elapsed),
			benchutil.Count(res.BusyRejections),
			verdict,
		)
	}
	return t, nil
}
