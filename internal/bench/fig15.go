package bench

import (
	"fmt"

	"mainline/internal/benchutil"
	"mainline/internal/catalog"
	"mainline/internal/server"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/workload/tpch"
)

// Fig15 reproduces the data-export experiment (Figure 15): export speed of
// an ORDER_LINE-shaped table (we use LINEITEM, the same wide mixed layout)
// to an analytical client under the four mechanisms, while the fraction of
// frozen blocks varies. Hot blocks must be materialized transactionally
// before export, which is what erodes Flight's and RDMA's advantage as
// %frozen drops.
func Fig15(rows int, frozenPcts []int) (*benchutil.Table, error) {
	if frozenPcts == nil {
		frozenPcts = []int{0, 1, 5, 10, 20, 40, 60, 80, 100}
	}
	t := &benchutil.Table{
		Title:  fmt.Sprintf("Figure 15 — Export speed vs %%frozen blocks (LINEITEM, %d rows)", rows),
		Note:   "MB/s of payload delivered to the client, higher is better",
		Header: []string{"%frozen", "RDMA(sim)", "Flight", "Vectorized", "PGWire"},
	}
	for _, pct := range frozenPcts {
		mgr, cat, table, err := buildFig15Table(rows, pct)
		if err != nil {
			return nil, err
		}
		srv := server.NewCompareServer(mgr, cat)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}

		cells := []string{fmt.Sprintf("%d", pct)}
		// RDMA (in-process, simulated NIC path).
		client := server.NewRDMAClient(1 << 22)
		res, err := server.RDMAExport(mgr, table, client)
		if err != nil {
			srv.Close()
			return nil, err
		}
		cells = append(cells, benchutil.MBps(res.Bytes, res.Elapsed))
		for _, proto := range []server.Protocol{server.ProtoFlight, server.ProtoVectorized, server.ProtoPGWire} {
			res, err := server.Fetch(addr, proto, "lineitem")
			if err != nil {
				srv.Close()
				return nil, fmt.Errorf("fig15 %s @%d%%: %w", proto, pct, err)
			}
			if res.Table.NumRows() != rows {
				srv.Close()
				return nil, fmt.Errorf("fig15 %s @%d%%: %d rows", proto, pct, res.Table.NumRows())
			}
			cells = append(cells, benchutil.MBps(res.Bytes, res.Elapsed))
		}
		srv.Close()
		t.AddRow(cells...)
	}
	return t, nil
}

// buildFig15Table loads LINEITEM, freezes everything, then thaws blocks
// until only frozenPct% remain frozen.
func buildFig15Table(rows, frozenPct int) (*txn.Manager, *catalog.Catalog, *catalog.Table, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	table, err := tpch.Load(mgr, cat, "lineitem", rows, 2000, 11)
	if err != nil {
		return nil, nil, nil, err
	}
	g := gc.New(mgr)
	obs := transform.NewObserver()
	obs.Watch(table.DataTable)
	g.SetObserver(obs)
	tr := transform.New(mgr, g, obs, transform.DefaultConfig())
	for i := 0; i < 30; i++ {
		g.RunOnce()
		tr.ForcePass()
	}
	blocks := table.Blocks()
	var frozen []*storage.Block
	for _, b := range blocks {
		if b.State() == storage.StateFrozen {
			frozen = append(frozen, b)
		}
	}
	if len(frozen) == 0 {
		return nil, nil, nil, fmt.Errorf("fig15: nothing froze")
	}
	// Thaw from the back until the frozen fraction matches.
	want := len(frozen) * frozenPct / 100
	for i := len(frozen) - 1; i >= want; i-- {
		frozen[i].MarkHot()
	}
	return mgr, cat, table, nil
}
