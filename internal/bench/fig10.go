package bench

import (
	"fmt"
	"time"

	"mainline/internal/benchutil"
	"mainline/internal/catalog"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/workload/tpcc"
)

// Fig10Config scales the TPC-C experiment.
type Fig10Config struct {
	Workers  []int
	Duration time.Duration
	// TPCC is the per-warehouse database scale.
	TPCC func(warehouses int) tpcc.Config
}

// DefaultFig10Config mirrors the paper's sweep at laptop scale.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Workers:  []int{1, 2, 4, 8},
		Duration: time.Second,
		TPCC:     tpcc.DefaultConfig,
	}
}

// Fig10 reproduces the OLTP-performance experiment (Figure 10): TPC-C
// throughput versus worker threads under three transformation
// configurations (disabled, varlen gather, dictionary compression), plus
// the fraction of blocks cooling/frozen at the end of each run (10b).
// The transformation targets the tables generating cold data: ORDER,
// ORDER_LINE, HISTORY, ITEM (§6.1), with the paper's aggressive 10 ms
// threshold.
func Fig10(cfg Fig10Config) (*benchutil.Table, error) {
	t := &benchutil.Table{
		Title:  "Figure 10 — TPC-C throughput and block-state coverage",
		Note:   fmt.Sprintf("%v per point, one warehouse per worker, threshold 10ms", cfg.Duration),
		Header: []string{"workers", "config", "txn/s", "aborted", "%frozen", "%cooling"},
	}
	type config struct {
		name string
		mode transform.Mode
		on   bool
	}
	configs := []config{
		{"no-transform", transform.ModeGather, false},
		{"gather", transform.ModeGather, true},
		{"dictionary", transform.ModeDictionary, true},
	}
	for _, workers := range cfg.Workers {
		for _, c := range configs {
			row, err := runFig10Point(cfg, workers, c.mode, c.on)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s @%d workers: %w", c.name, workers, err)
			}
			t.AddRow(append([]string{fmt.Sprintf("%d", workers), c.name}, row...)...)
		}
	}
	return t, nil
}

func runFig10Point(cfg Fig10Config, workers int, mode transform.Mode, transformOn bool) ([]string, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	db, err := tpcc.NewDatabase(mgr, cat, cfg.TPCC(workers))
	if err != nil {
		return nil, err
	}
	p, err := tpcc.Load(db, 42)
	if err != nil {
		return nil, err
	}

	g := gc.New(mgr)
	obs := transform.NewObserver()
	for _, tbl := range db.OrderTables() {
		obs.Watch(tbl.DataTable)
	}
	g.SetObserver(obs)
	tcfg := transform.DefaultConfig()
	tcfg.Mode = mode
	// Tuple movements maintain the indexes through the engine itself:
	// compaction's delete + insert-into-slot pairs buffer index deltas
	// like any other transaction (the paper's write amplification).
	tr := transform.New(mgr, g, obs, tcfg)

	// Background threads as in the paper: one GC and (optionally) one
	// transformation thread.
	g.Start(10 * time.Millisecond)
	if transformOn {
		tr.Start(10 * time.Millisecond)
	}
	res := tpcc.Run(db, p, workers, cfg.Duration, 99)
	if transformOn {
		tr.Stop()
	}
	g.Stop()

	if err := tpcc.CheckConsistency(db); err != nil {
		return nil, err
	}

	// Block-state coverage over the transformation-target tables (10b).
	total, frozen, cooling := 0, 0, 0
	for _, tbl := range db.OrderTables() {
		for _, b := range tbl.Blocks() {
			if b.InsertHead() == 0 {
				continue
			}
			total++
			switch b.State() {
			case storage.StateFrozen:
				frozen++
			case storage.StateCooling:
				cooling++
			}
		}
	}
	pct := func(n int) string {
		if total == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(total))
	}
	return []string{
		benchutil.OpsPerSec(res.Total(), res.Elapsed),
		fmt.Sprintf("%d", res.Aborted),
		pct(frozen),
		pct(cooling),
	}, nil
}
