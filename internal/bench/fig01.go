package bench

import (
	"fmt"
	"os"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/benchutil"
	"mainline/internal/catalog"
	"mainline/internal/server"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/workload/tpch"
)

// Fig1 reproduces the data-transformation-cost motivation experiment
// (Figure 1): loading TPC-H LINEITEM into an analytical client via
//
//	In-Memory   the engine's frozen Arrow blocks handed over zero-copy
//	CSV         dump to a CSV file, then parse it back into columns
//	Wire (SQL)  fetch through the row-oriented text protocol (the
//	            ODBC/PostgreSQL stand-in)
//
// The paper's absolute gap (8 s vs 284 s vs 1380 s at SF 10) tracks the
// serialization work per value; the ordering and orders-of-magnitude shape
// are scale-independent.
func Fig1(rows int) (*benchutil.Table, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	table, err := tpch.Load(mgr, cat, "lineitem", rows, 2000, 7)
	if err != nil {
		return nil, err
	}
	// Freeze so the in-memory path is the zero-copy one.
	g := gc.New(mgr)
	obs := transform.NewObserver()
	obs.Watch(table.DataTable)
	g.SetObserver(obs)
	cfg := transform.DefaultConfig()
	tr := transform.New(mgr, g, obs, cfg)
	for i := 0; i < 20; i++ {
		g.RunOnce()
		tr.ForcePass()
	}

	t := &benchutil.Table{
		Title:  fmt.Sprintf("Figure 1 — Data transformation cost, LINEITEM %d rows", rows),
		Note:   "time to make the table usable by an analytical client",
		Header: []string{"method", "time", "vs in-memory"},
	}

	// (1) In-memory Arrow hand-off.
	t0 := time.Now()
	tx := mgr.Begin()
	batches, _, _, err := table.ExportBatches(tx)
	if err != nil {
		return nil, err
	}
	var checksum uint64
	for _, rb := range batches {
		checksum ^= arrow.Checksum(rb)
	}
	mgr.Commit(tx, nil)
	inMem := time.Since(t0)
	_ = checksum

	// (2) CSV export + load.
	t0 = time.Now()
	tx = mgr.Begin()
	batches, _, _, err = table.ExportBatches(tx)
	if err != nil {
		return nil, err
	}
	tab := &arrow.Table{Schema: batches[0].Schema}
	tab.Batches = batches
	f, err := os.CreateTemp("", "lineitem-*.csv")
	if err != nil {
		return nil, err
	}
	defer os.Remove(f.Name())
	if err := arrow.WriteCSV(f, tab); err != nil {
		return nil, err
	}
	mgr.Commit(tx, nil)
	if err := f.Close(); err != nil {
		return nil, err
	}
	csvExport := time.Since(t0)
	t0 = time.Now()
	rf, err := os.Open(f.Name())
	if err != nil {
		return nil, err
	}
	loaded, err := arrow.ReadCSV(rf, tpch.LineItemSchema(), 1<<16)
	rf.Close()
	if err != nil {
		return nil, err
	}
	if loaded.NumRows() != rows {
		return nil, fmt.Errorf("fig1: CSV round-trip lost rows: %d", loaded.NumRows())
	}
	csvLoad := time.Since(t0)
	csvTotal := csvExport + csvLoad

	// (3) Row-oriented wire protocol.
	srv := server.NewCompareServer(mgr, cat)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	t0 = time.Now()
	res, err := server.Fetch(addr, server.ProtoPGWire, "lineitem")
	if err != nil {
		return nil, err
	}
	if res.Table.NumRows() != rows {
		return nil, fmt.Errorf("fig1: wire fetch lost rows: %d", res.Table.NumRows())
	}
	wire := time.Since(t0)

	t.AddRow("In-Memory (Arrow)", benchutil.Seconds(inMem), "1.0x")
	t.AddRow("CSV export+load", benchutil.Seconds(csvTotal), benchutil.Ratio(csvTotal.Seconds(), inMem.Seconds()))
	t.AddRow("  of which export", benchutil.Seconds(csvExport), "")
	t.AddRow("  of which load", benchutil.Seconds(csvLoad), "")
	t.AddRow("SQL wire (pgwire)", benchutil.Seconds(wire), benchutil.Ratio(wire.Seconds(), inMem.Seconds()))
	return t, nil
}
