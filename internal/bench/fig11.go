package bench

import (
	"fmt"
	"time"

	"mainline/internal/benchutil"
	"mainline/internal/storage"
	"mainline/internal/txn"
	"mainline/internal/workload/synthetic"
)

// Fig11 reproduces the row-vs-column microbenchmark (Figure 11): raw
// insert and update throughput as the number of 8-byte attributes grows,
// comparing the columnar layout against the simulated row-store (one wide
// column). Updates modify `attrs` attributes in the update runs, matching
// the paper's x-axis ("for updates, it is the number of attributes
// updated").
func Fig11(attrCounts []int, opsPerPoint int) (*benchutil.Table, error) {
	if attrCounts == nil {
		attrCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	t := &benchutil.Table{
		Title:  fmt.Sprintf("Figure 11 — Row vs. column raw storage speed (%d ops/point)", opsPerPoint),
		Header: []string{"#attrs", "row insert", "col insert", "row update", "col update"},
	}
	const batch = 256
	// Updates on a wide table need enough preloaded tuples.
	preload := opsPerPoint / 4
	if preload < 1000 {
		preload = 1000
	}
	for _, attrs := range attrCounts {
		var cells []string
		// Inserts.
		for _, kind := range []synthetic.LayoutKind{synthetic.RowStore, synthetic.ColumnStore} {
			reg := storage.NewRegistry()
			mgr := txn.NewManager(reg)
			table, err := synthetic.NewTable(reg, kind, attrs, 1)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			done, err := synthetic.RunInserts(mgr, table, kind, attrs, opsPerPoint, batch, 5)
			if err != nil {
				return nil, err
			}
			cells = append(cells, benchutil.OpsPerSec(int64(done), time.Since(t0)))
		}
		// Updates (modifying `attrs` attributes, as the paper plots).
		for _, kind := range []synthetic.LayoutKind{synthetic.RowStore, synthetic.ColumnStore} {
			reg := storage.NewRegistry()
			mgr := txn.NewManager(reg)
			table, err := synthetic.NewTable(reg, kind, attrs, 1)
			if err != nil {
				return nil, err
			}
			slots, err := synthetic.Populate(mgr, table, kind, attrs, preload, 6)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			done, err := synthetic.RunUpdates(mgr, table, kind, attrs, attrs, opsPerPoint, batch, slots, 7)
			if err != nil {
				return nil, err
			}
			cells = append(cells, benchutil.OpsPerSec(int64(done), time.Since(t0)))
		}
		t.AddRow(append([]string{fmt.Sprintf("%d", attrs)},
			cells[0], cells[1], cells[2], cells[3])...)
	}
	return t, nil
}
