package bench

import (
	"fmt"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/benchutil"
	"mainline/internal/storage"
	"mainline/internal/transform"
)

// Fig12Point is one measurement of one transformation algorithm.
type Fig12Point struct {
	EmptyPct     int
	Algorithm    string
	BlocksPerSec float64
	// Phase breakdown (Figure 12b), zero when not applicable.
	CompactionSec float64
	GatherSec     float64
}

// Fig12Result carries the series plus the printable table.
type Fig12Result struct {
	Points []Fig12Point
	Table  *benchutil.Table
}

// DefaultEmptyPcts are the x-axis values of Figures 12-14.
var DefaultEmptyPcts = []int{0, 1, 5, 10, 20, 40, 60, 80}

// Fig12 reproduces the transformation-throughput microbenchmark
// (Figure 12): four algorithms migrating nBlocks blocks from the relaxed to
// the canonical format while the fraction of empty slots varies.
//
//	Hybrid-Gather   two-phase: transactional compaction + in-place gather
//	Snapshot        copy every block's visible tuples into fresh Arrow
//	In-Place        rewrite every tuple transactionally (version overhead)
//	Hybrid-Compress two-phase with dictionary compression
func Fig12(variant LayoutVariant, nBlocks, perBlock int, emptyPcts []int) (*Fig12Result, error) {
	if emptyPcts == nil {
		emptyPcts = DefaultEmptyPcts
	}
	res := &Fig12Result{Table: &benchutil.Table{
		Title:  fmt.Sprintf("Figure 12 — Transformation throughput (%s columns, %d blocks)", variant, nBlocks),
		Note:   "blocks/s higher is better; breakdown columns give per-phase seconds",
		Header: []string{"%empty", "Hybrid-Gather", "Snapshot", "In-Place", "Hybrid-Compress", "compact(s)", "gather(s)", "dict(s)"},
	}}
	for _, pct := range emptyPcts {
		frac := float64(pct) / 100
		gatherRate, cSec, gSec, err := runHybrid(variant, nBlocks, perBlock, frac, transform.ModeGather)
		if err != nil {
			return nil, fmt.Errorf("hybrid-gather @%d%%: %w", pct, err)
		}
		snapRate, err := runSnapshot(variant, nBlocks, perBlock, frac)
		if err != nil {
			return nil, fmt.Errorf("snapshot @%d%%: %w", pct, err)
		}
		inplaceRate, err := runInPlace(variant, nBlocks, perBlock, frac)
		if err != nil {
			return nil, fmt.Errorf("in-place @%d%%: %w", pct, err)
		}
		compressRate, _, dSec, err := runHybrid(variant, nBlocks, perBlock, frac, transform.ModeDictionary)
		if err != nil {
			return nil, fmt.Errorf("hybrid-compress @%d%%: %w", pct, err)
		}
		res.Points = append(res.Points,
			Fig12Point{pct, "hybrid-gather", gatherRate, cSec, gSec},
			Fig12Point{pct, "snapshot", snapRate, 0, 0},
			Fig12Point{pct, "in-place", inplaceRate, 0, 0},
			Fig12Point{pct, "hybrid-compress", compressRate, cSec, dSec},
		)
		res.Table.AddRow(
			fmt.Sprintf("%d", pct),
			fmt.Sprintf("%.1f blk/s", gatherRate),
			fmt.Sprintf("%.1f blk/s", snapRate),
			fmt.Sprintf("%.1f blk/s", inplaceRate),
			fmt.Sprintf("%.1f blk/s", compressRate),
			fmt.Sprintf("%.4f", cSec),
			fmt.Sprintf("%.4f", gSec),
			fmt.Sprintf("%.4f", dSec),
		)
	}
	return res, nil
}

// runHybrid times the two-phase algorithm and returns blocks/s plus the
// phase breakdown.
func runHybrid(variant LayoutVariant, nBlocks, perBlock int, frac float64, mode transform.Mode) (rate, compactSec, gatherSec float64, err error) {
	bs, err := buildBlockSet(variant, nBlocks, perBlock, frac, 42)
	if err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	if _, err := bs.compactAll(false); err != nil {
		return 0, 0, 0, err
	}
	t1 := time.Now()
	if _, err := bs.freezeSurvivors(mode); err != nil {
		return 0, 0, 0, err
	}
	t2 := time.Now()
	total := t2.Sub(t0).Seconds()
	return float64(nBlocks) / total, t1.Sub(t0).Seconds(), t2.Sub(t1).Seconds(), nil
}

// runSnapshot times the copy-everything baseline: read a snapshot of each
// block and rebuild it with the Arrow builder API.
func runSnapshot(variant LayoutVariant, nBlocks, perBlock int, frac float64) (float64, error) {
	bs, err := buildBlockSet(variant, nBlocks, perBlock, frac, 42)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	tx := bs.mgr.Begin()
	for _, b := range bs.blocks {
		rb, err := bs.table.MaterializeBlock(tx, b)
		if err != nil {
			bs.mgr.Abort(tx)
			return 0, err
		}
		_ = arrow.Checksum(rb)
	}
	bs.mgr.Commit(tx, nil)
	return float64(nBlocks) / time.Since(t0).Seconds(), nil
}

// runInPlace times the all-transactional baseline: every tuple's payload
// column is rewritten through the version-chain machinery.
func runInPlace(variant LayoutVariant, nBlocks, perBlock int, frac float64) (float64, error) {
	bs, err := buildBlockSet(variant, nBlocks, perBlock, frac, 42)
	if err != nil {
		return 0, err
	}
	layout := bs.table.Layout()
	// Pick the column to rewrite: the varlen one when present.
	col := storage.ColumnID(0)
	for c := 0; c < layout.NumColumns(); c++ {
		if layout.IsVarlen(storage.ColumnID(c)) {
			col = storage.ColumnID(c)
			break
		}
	}
	proj := storage.MustProjection(layout, []storage.ColumnID{col})
	t0 := time.Now()
	for _, b := range bs.blocks {
		tx := bs.mgr.Begin()
		cur := proj.NewRow()
		upd := proj.NewRow()
		head := b.InsertHead()
		for s := uint32(0); s < head; s++ {
			if !b.Allocated(s) {
				continue
			}
			slot := storage.NewTupleSlot(b.ID, s)
			found, err := bs.table.Select(tx, slot, cur)
			if err != nil || !found {
				continue
			}
			upd.CopyFrom(cur)
			if err := bs.table.Update(tx, slot, upd); err != nil {
				bs.mgr.Abort(tx)
				return 0, err
			}
		}
		bs.mgr.Commit(tx, nil)
	}
	elapsed := time.Since(t0).Seconds()
	return float64(nBlocks) / elapsed, nil
}

// Fig13 reproduces the write-amplification comparison (Figure 13): tuples
// moved by the snapshot baseline (every tuple) versus the approximate and
// optimal compaction plans, as emptiness varies.
func Fig13(variant LayoutVariant, nBlocks, perBlock int, emptyPcts []int) (*benchutil.Table, error) {
	if emptyPcts == nil {
		emptyPcts = []int{1, 5, 10, 20, 40, 60, 80}
	}
	t := &benchutil.Table{
		Title:  fmt.Sprintf("Figure 13 — Write amplification: tuples moved (%d blocks)", nBlocks),
		Note:   "snapshot always moves every live tuple; the planners move only gap-fillers",
		Header: []string{"%empty", "snapshot", "approximate", "optimal", "approx bound ok"},
	}
	for _, pct := range emptyPcts {
		bs, err := buildBlockSet(variant, nBlocks, perBlock, float64(pct)/100, 42)
		if err != nil {
			return nil, err
		}
		approx := transform.PlanCompaction(bs.blocks, false)
		optimal := transform.PlanCompaction(bs.blocks, true)
		snapshot := bs.tuples
		rem := approx.TotalTuples % approx.SlotsPerBlock
		bound := approx.Movements <= optimal.Movements+rem
		t.AddRow(
			fmt.Sprintf("%d", pct),
			benchutil.Count(int64(snapshot)),
			benchutil.Count(int64(approx.Movements)),
			benchutil.Count(int64(optimal.Movements)),
			fmt.Sprintf("%v", bound),
		)
		if !bound {
			return t, fmt.Errorf("approximate plan exceeded bound at %d%%", pct)
		}
	}
	return t, nil
}

// Fig14 reproduces the compaction-group-size sensitivity study (Figure 14):
// blocks freed and transaction write-set size versus group size.
func Fig14(variant LayoutVariant, nBlocks, perBlock int, groupSizes, emptyPcts []int) (*benchutil.Table, error) {
	if groupSizes == nil {
		groupSizes = []int{1, 10, 50, 100, 250, 500}
	}
	if emptyPcts == nil {
		emptyPcts = []int{1, 5, 10, 20, 40, 60, 80}
	}
	t := &benchutil.Table{
		Title:  fmt.Sprintf("Figure 14 — Compaction group size sensitivity (%d blocks)", nBlocks),
		Header: []string{"%empty", "group", "blocks freed", "max write-set (ops)"},
	}
	for _, pct := range emptyPcts {
		for _, g := range groupSizes {
			if g > nBlocks {
				continue
			}
			bs, err := buildBlockSet(variant, nBlocks, perBlock, float64(pct)/100, 42)
			if err != nil {
				return nil, err
			}
			freed := 0
			maxWS := 0
			for start := 0; start < len(bs.blocks); start += g {
				end := start + g
				if end > len(bs.blocks) {
					end = len(bs.blocks)
				}
				res, err := transform.CompactGroup(bs.mgr, bs.table.DataTable, bs.blocks[start:end], false, nil)
				if err != nil {
					return nil, err
				}
				freed += len(res.EmptiedBlocks)
				if res.WriteSetSize > maxWS {
					maxWS = res.WriteSetSize
				}
			}
			t.AddRow(
				fmt.Sprintf("%d", pct),
				fmt.Sprintf("%d", g),
				fmt.Sprintf("%d", freed),
				benchutil.Count(int64(maxWS)),
			)
		}
	}
	return t, nil
}
