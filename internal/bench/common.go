// Package bench implements the reproduction harness for every figure in
// the paper's evaluation (§6). Each FigNN function builds its experiment at
// a configurable scale, runs it, and returns a benchutil.Table whose rows
// correspond to the figure's series. cmd/mainline-bench prints them; the
// repository-root benchmarks run them under testing.B at reduced scale.
package bench

import (
	"fmt"

	"mainline/internal/arrow"
	"mainline/internal/catalog"
	"mainline/internal/gc"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
	"mainline/internal/util"
)

// LayoutVariant selects the microbenchmark table shape (Figure 12 a/c/d).
type LayoutVariant int

// Variants.
const (
	// VariantMixed is one 8-byte column plus one varlen column — the
	// paper's "50% variable-length columns" default.
	VariantMixed LayoutVariant = iota
	// VariantFixed is two 8-byte columns (Figure 12c).
	VariantFixed
	// VariantVarlen is two varlen columns (Figure 12d).
	VariantVarlen
)

// String names the variant.
func (v LayoutVariant) String() string {
	switch v {
	case VariantFixed:
		return "fixed"
	case VariantVarlen:
		return "varlen"
	default:
		return "mixed"
	}
}

func (v LayoutVariant) schema() *arrow.Schema {
	switch v {
	case VariantFixed:
		return arrow.NewSchema(
			arrow.Field{Name: "a", Type: arrow.INT64},
			arrow.Field{Name: "b", Type: arrow.INT64},
		)
	case VariantVarlen:
		return arrow.NewSchema(
			arrow.Field{Name: "a", Type: arrow.STRING},
			arrow.Field{Name: "b", Type: arrow.STRING},
		)
	default:
		return arrow.NewSchema(
			arrow.Field{Name: "a", Type: arrow.INT64},
			arrow.Field{Name: "b", Type: arrow.STRING},
		)
	}
}

// blockSet is a fabricated multi-block table with a controlled emptiness,
// the input shape of the transformation microbenchmarks (§6.2): an initial
// transaction populates the table and deletions simulate cold gaps.
type blockSet struct {
	mgr    *txn.Manager
	cat    *catalog.Catalog
	table  *catalog.Table
	blocks []*storage.Block
	// tuples is the live tuple count after deletions.
	tuples int
}

// buildBlockSet creates nBlocks blocks each populated with perBlock tuples
// (0 = full capacity) and then deletes emptyFrac of them at random. Chains
// are GC-pruned so the set is cold, exactly like data that "has become cold
// since the last transformation pass".
func buildBlockSet(variant LayoutVariant, nBlocks, perBlock int, emptyFrac float64, seed uint64) (*blockSet, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	table, err := cat.CreateTable("micro", variant.schema())
	if err != nil {
		return nil, err
	}
	bs := &blockSet{mgr: mgr, cat: cat, table: table}
	rng := util.NewRand(seed)
	layout := table.Layout()
	if perBlock <= 0 || perBlock > int(layout.NumSlots) {
		perBlock = int(layout.NumSlots)
	}
	row := table.AllColumnsProjection().NewRow()
	var slots []storage.TupleSlot
	val := make([]byte, 24)
	for b := 0; b < nBlocks; b++ {
		tx := mgr.Begin()
		var blk *storage.Block
		for i := 0; i < perBlock; i++ {
			row.Reset()
			fillMicroRow(row, variant, rng, val)
			slot, err := table.Insert(tx, row)
			if err != nil {
				mgr.Abort(tx)
				return nil, err
			}
			if blk == nil {
				blk = reg.BlockFor(slot)
			}
			slots = append(slots, slot)
		}
		mgr.Commit(tx, nil)
		// Force the next batch into a fresh block.
		blk.SetInsertHead(layout.NumSlots)
		bs.blocks = append(bs.blocks, blk)
	}
	// Random deletions to the target emptiness.
	toDelete := int(float64(len(slots)) * emptyFrac)
	perm := rng.Perm(len(slots))
	tx := mgr.Begin()
	for i := 0; i < toDelete; i++ {
		if err := table.Delete(tx, slots[perm[i]]); err != nil {
			mgr.Abort(tx)
			return nil, err
		}
	}
	mgr.Commit(tx, nil)
	bs.tuples = len(slots) - toDelete
	bs.prune()
	return bs, nil
}

func fillMicroRow(row *storage.ProjectedRow, variant LayoutVariant, rng *util.Rand, scratch []byte) {
	switch variant {
	case VariantFixed:
		row.SetInt64(0, int64(rng.Uint64()))
		row.SetInt64(1, int64(rng.Uint64()))
	case VariantVarlen:
		n1 := rng.IntRange(12, 24)
		rng.Bytes(scratch[:n1])
		row.SetVarlen(0, append([]byte(nil), scratch[:n1]...))
		n2 := rng.IntRange(12, 24)
		rng.Bytes(scratch[:n2])
		row.SetVarlen(1, append([]byte(nil), scratch[:n2]...))
	default:
		row.SetInt64(0, int64(rng.Uint64()))
		n := rng.IntRange(12, 24)
		rng.Bytes(scratch[:n])
		row.SetVarlen(1, append([]byte(nil), scratch[:n]...))
	}
}

// prune runs the GC until version chains are gone.
func (bs *blockSet) prune() {
	g := gc.New(bs.mgr)
	for i := 0; i < 3; i++ {
		g.RunOnce()
	}
}

// compactAll runs Phase 1 over all blocks as one group and returns the
// result.
func (bs *blockSet) compactAll(optimal bool) (*transform.CompactionResult, error) {
	return transform.CompactGroup(bs.mgr, bs.table.DataTable, bs.blocks, optimal, nil)
}

// freezeSurvivors GC-prunes and gathers every cooling block.
func (bs *blockSet) freezeSurvivors(mode transform.Mode) (int, error) {
	bs.prune()
	frozen := 0
	for _, b := range bs.blocks {
		if b.State() != storage.StateCooling {
			continue
		}
		if b.HasActiveVersions() {
			return frozen, fmt.Errorf("bench: versions linger after prune")
		}
		if !b.CASState(storage.StateCooling, storage.StateFreezing) {
			continue
		}
		if err := transform.GatherBlock(b, mode); err != nil {
			return frozen, err
		}
		frozen++
	}
	return frozen, nil
}
