package bench

// The scan sweep (not a paper figure): rows/sec and allocs/op for the
// tuple-at-a-time path vs the vectorized batch path across block states —
// hot (version-chain protocol), frozen (in-place Arrow reads), and
// zone-map-pruned range reads. It quantifies ISSUE 4's acceptance targets:
// frozen batch scans beating tuple scans by >=5x rows/sec with an
// order-of-magnitude fewer allocations than the pre-arena Scan.

import (
	"fmt"
	"runtime"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/benchutil"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/gc"
	"mainline/internal/obs"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
)

// ScanConfig sizes the scan sweep.
type ScanConfig struct {
	// Blocks is the number of sealed blocks in the table.
	Blocks int
	// PerBlock is the tuple count per block.
	PerBlock int
	// Iters is the measured scan repetitions per scenario.
	Iters int
}

// DefaultScanConfig mirrors the acceptance setup: a 4-block frozen
// int64+varlen table.
func DefaultScanConfig() ScanConfig {
	return ScanConfig{Blocks: 4, PerBlock: 5000, Iters: 30}
}

type scanEnv struct {
	mgr   *txn.Manager
	table *catalog.Table
}

func buildScanTable(cfg ScanConfig) (*scanEnv, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	table, err := cat.CreateTable("scan", arrow.NewSchema(
		arrow.Field{Name: "id", Type: arrow.INT64},
		arrow.Field{Name: "payload", Type: arrow.STRING},
	))
	if err != nil {
		return nil, err
	}
	row := table.AllColumnsProjection().NewRow()
	id := int64(0)
	for b := 0; b < cfg.Blocks; b++ {
		tx := mgr.Begin()
		var blk *storage.Block
		for i := 0; i < cfg.PerBlock; i++ {
			row.Reset()
			row.SetInt64(0, id)
			row.SetVarlen(1, []byte(fmt.Sprintf("payload-%08d-some-tail", id)))
			slot, err := table.Insert(tx, row)
			if err != nil {
				mgr.Abort(tx)
				return nil, err
			}
			if blk == nil {
				blk = reg.BlockFor(slot)
			}
			id++
		}
		mgr.Commit(tx, nil)
		blk.SetInsertHead(table.Layout().NumSlots)
	}
	return &scanEnv{mgr: mgr, table: table}, nil
}

// freeze prunes chains and gathers every block (no compaction, so blocks
// keep their disjoint id ranges for the pruning scenario).
func (e *scanEnv) freeze() error {
	g := gc.New(e.mgr)
	for i := 0; i < 3; i++ {
		g.RunOnce()
	}
	for _, b := range e.table.Blocks() {
		if b.HasActiveVersions() {
			return fmt.Errorf("bench: chains not pruned")
		}
		b.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(b, transform.ModeGather); err != nil {
			return err
		}
	}
	return nil
}

// measure runs fn iters times and reports rows/sec, allocs per run, and
// the per-iteration latency distribution (an internal/obs histogram
// snapshot, so the table can print p50/p99 alongside the mean rate).
func measure(iters int, rowsPer int64, fn func(tx *txn.Transaction) error, mgr *txn.Manager) (rate float64, allocs float64, lat obs.HistSnapshot, err error) {
	// Warm pools and caches once outside the measurement.
	tx := mgr.Begin()
	if err := fn(tx); err != nil {
		mgr.Commit(tx, nil)
		return 0, 0, lat, err
	}
	mgr.Commit(tx, nil)

	h := obs.NewHistogram("scan_iter", "", "seconds", "")
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		tx := mgr.Begin()
		if err := fn(tx); err != nil {
			mgr.Commit(tx, nil)
			return 0, 0, lat, err
		}
		mgr.Commit(tx, nil)
		h.RecordSince(t0)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	rate = float64(rowsPer*int64(iters)) / elapsed.Seconds()
	allocs = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return rate, allocs, h.Snapshot(), nil
}

// Scan runs the sweep and returns the comparison table.
func Scan(cfg ScanConfig) (*benchutil.Table, error) {
	env, err := buildScanTable(cfg)
	if err != nil {
		return nil, err
	}
	table := env.table
	mgr := env.mgr
	totalRows := int64(cfg.Blocks * cfg.PerBlock)
	proj := table.AllColumnsProjection()

	var sink int64
	tupleScan := func(tx *txn.Transaction) error {
		var sum int64
		err := table.Scan(tx, proj, func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
			sum += row.Int64(0)
			return true
		})
		sink += sum
		return err
	}
	batchScan := func(tx *txn.Transaction) error {
		var sum int64
		err := table.ScanBatches(tx, proj, nil, func(b *core.Batch) bool {
			for i := 0; i < b.Len(); i++ {
				sum += b.Int64(0, i)
			}
			return true
		})
		sink += sum
		return err
	}
	// Range predicate covering the last block's unique suffix: with the
	// overlap-free fixture here (sequential ids), it selects exactly one
	// block after freezing; while hot it still filters correctly.
	lo := totalRows - int64(cfg.PerBlock)
	pred := core.NewIntPred(0, lo, totalRows-1)
	filtered := func(tx *txn.Transaction) error {
		n := 0
		err := table.ScanBatches(tx, proj, pred, func(b *core.Batch) bool {
			n += b.Len()
			return true
		})
		sink += int64(n)
		return err
	}

	t := &benchutil.Table{
		Title:  "Scan sweep — tuple-at-a-time vs vectorized batches (rows/s, allocs/op)",
		Note:   fmt.Sprintf("%d blocks x %d tuples, int64+varlen; pruned = zone-map range read", cfg.Blocks, cfg.PerBlock),
		Header: []string{"state", "path", "rows/s", "p50", "p99", "allocs/op", "speedup"},
	}

	type scenario struct {
		state, path string
		fn          func(*txn.Transaction) error
	}
	rates := map[string]float64{}
	run := func(sc []scenario) error {
		var base float64
		for i, s := range sc {
			rate, allocs, lat, err := measure(cfg.Iters, totalRows, s.fn, mgr)
			if err != nil {
				return err
			}
			rates[s.state+"/"+s.path] = rate
			speedup := "1.00x"
			if i == 0 {
				base = rate
			} else {
				speedup = fmt.Sprintf("%.2fx", rate/base)
			}
			t.AddRow(s.state, s.path, benchutil.OpsPerSec(int64(rate), time.Second),
				benchutil.Seconds(lat.QuantileDuration(0.50)),
				benchutil.Seconds(lat.QuantileDuration(0.99)),
				fmt.Sprintf("%.0f", allocs), speedup)
		}
		return nil
	}

	if err := run([]scenario{
		{"hot", "tuple", tupleScan},
		{"hot", "vectorized", batchScan},
		{"hot", "filtered", filtered},
	}); err != nil {
		return nil, err
	}
	if err := env.freeze(); err != nil {
		return nil, err
	}
	if err := run([]scenario{
		{"frozen", "tuple", tupleScan},
		{"frozen", "vectorized", batchScan},
		{"frozen", "pruned", filtered},
	}); err != nil {
		return nil, err
	}

	_ = sink
	// Sanity: the pruning scenario must actually have pruned blocks.
	st := table.ScanStatsSnapshot()
	if st.BlocksPruned == 0 {
		return nil, fmt.Errorf("bench: pruning scenario pruned no blocks")
	}
	// Regression floor (ISSUE 4 acceptance): frozen batch scans must beat
	// tuple scans by >= 5x rows/sec, so the sweep fails on a perf
	// regression, not only on an error.
	if ratio := rates["frozen/vectorized"] / rates["frozen/tuple"]; ratio < 5 {
		return nil, fmt.Errorf("bench: frozen vectorized scan only %.2fx the tuple scan (acceptance: >=5x)", ratio)
	}
	return t, nil
}
