package bench

// The OLAP sweep (not a paper figure): parallel aggregation throughput
// versus worker count over a frozen multi-block table, plus the dictionary
// fast path and the hash join. It quantifies ISSUE 6's acceptance target:
// morsel-driven aggregation scaling >= 3x from 1 to 8 workers on an
// 8-core host.

import (
	"fmt"
	"runtime"
	"time"

	"mainline/internal/arrow"
	"mainline/internal/benchutil"
	"mainline/internal/catalog"
	"mainline/internal/core"
	"mainline/internal/exec"
	"mainline/internal/gc"
	"mainline/internal/obs"
	"mainline/internal/storage"
	"mainline/internal/transform"
	"mainline/internal/txn"
)

// OlapConfig sizes the OLAP sweep.
type OlapConfig struct {
	// Blocks is the number of sealed blocks (the morsel count — must
	// exceed the largest worker count for parallelism to matter).
	Blocks int
	// PerBlock is the tuple count per block.
	PerBlock int
	// Iters is the measured query repetitions per point.
	Iters int
}

// DefaultOlapConfig mirrors the acceptance setup: 32 frozen
// dictionary-encoded blocks, enough morsels for 8+ workers.
func DefaultOlapConfig() OlapConfig {
	return OlapConfig{Blocks: 32, PerBlock: 4000, Iters: 8}
}

var olapVocab = []string{
	"alpha", "bravo", "chile", "delta", "echo", "fotxt", "golfo", "hotel",
	"india", "julie", "kilos", "limas", "mikes", "novem", "oscar", "papas",
}

func buildOlapTable(cfg OlapConfig) (*txn.Manager, *catalog.Table, error) {
	reg := storage.NewRegistry()
	mgr := txn.NewManager(reg)
	cat := catalog.New(reg)
	table, err := cat.CreateTable("olap", arrow.NewSchema(
		arrow.Field{Name: "id", Type: arrow.INT64},
		arrow.Field{Name: "grp", Type: arrow.STRING},
		arrow.Field{Name: "val", Type: arrow.INT64},
	))
	if err != nil {
		return nil, nil, err
	}
	row := table.AllColumnsProjection().NewRow()
	id := int64(0)
	for b := 0; b < cfg.Blocks; b++ {
		tx := mgr.Begin()
		for i := 0; i < cfg.PerBlock; i++ {
			row.Reset()
			row.SetInt64(0, id)
			row.SetVarlen(1, []byte(olapVocab[id%int64(len(olapVocab))]))
			row.SetInt64(2, id%1000)
			if _, err := table.Insert(tx, row); err != nil {
				mgr.Abort(tx)
				return nil, nil, err
			}
			id++
		}
		mgr.Commit(tx, nil)
		blk := table.Blocks()[len(table.Blocks())-1]
		blk.SetInsertHead(blk.Layout.NumSlots)
	}
	g := gc.New(mgr)
	for i := 0; i < 3; i++ {
		g.RunOnce()
	}
	for _, b := range table.Blocks() {
		if b.HasActiveVersions() {
			return nil, nil, fmt.Errorf("bench: chains not pruned; cannot freeze")
		}
		b.SetState(storage.StateFreezing)
		if err := transform.GatherBlock(b, transform.ModeDictionary); err != nil {
			return nil, nil, err
		}
	}
	return mgr, table, nil
}

// Olap runs the sweep and returns the worker-scaling table. It fails when
// the host has >= 8 cores and 8 workers do not reach 3x the single-worker
// aggregation rate.
func Olap(cfg OlapConfig) (*benchutil.Table, error) {
	mgr, table, err := buildOlapTable(cfg)
	if err != nil {
		return nil, err
	}
	totalRows := int64(cfg.Blocks * cfg.PerBlock)
	aggs := []exec.AggSpec{
		{Op: exec.OpCount, Col: -1},
		{Op: exec.OpSum, Col: 2},
		{Op: exec.OpMin, Col: 0},
		{Op: exec.OpMax, Col: 0},
	}
	groupBy := []storage.ColumnID{1}

	runQuery := func(workers int) (float64, obs.HistSnapshot, error) {
		plan := &exec.AggPlan{Table: table.DataTable, GroupBy: groupBy, Aggs: aggs, Workers: workers}
		// Per-query latency flows through the same exec.Counters hook the
		// engine uses for Stats().Latency.Query.
		lat := obs.NewHistogram("olap_query", "", "seconds", "")
		var ctr exec.Counters
		ctr.SetLatency(lat)
		// Warm outside the measurement.
		tx := mgr.Begin()
		res, err := exec.Aggregate(tx, plan, nil)
		mgr.Commit(tx, nil)
		if err != nil {
			return 0, obs.HistSnapshot{}, err
		}
		if res.Len() != len(olapVocab) {
			return 0, obs.HistSnapshot{}, fmt.Errorf("bench: %d groups, want %d", res.Len(), len(olapVocab))
		}
		start := time.Now()
		for i := 0; i < cfg.Iters; i++ {
			tx := mgr.Begin()
			_, err := exec.Aggregate(tx, plan, &ctr)
			mgr.Commit(tx, nil)
			if err != nil {
				return 0, obs.HistSnapshot{}, err
			}
		}
		return float64(totalRows*int64(cfg.Iters)) / time.Since(start).Seconds(), lat.Snapshot(), nil
	}

	t := &benchutil.Table{
		Title:  "OLAP sweep — morsel-driven parallel aggregation (rows/s vs workers)",
		Note:   fmt.Sprintf("%d frozen dictionary blocks x %d tuples; GROUP BY grp, 4 aggregates", cfg.Blocks, cfg.PerBlock),
		Header: []string{"workers", "rows/s", "q p50", "q p99", "speedup"},
	}
	workerCounts := []int{1}
	for w := 2; w <= runtime.NumCPU(); w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	rates := make(map[int]float64, len(workerCounts))
	var base float64
	for i, w := range workerCounts {
		rate, lat, err := runQuery(w)
		if err != nil {
			return nil, err
		}
		rates[w] = rate
		speedup := "1.00x"
		if i == 0 {
			base = rate
		} else {
			speedup = fmt.Sprintf("%.2fx", rate/base)
		}
		t.AddRow(fmt.Sprintf("%d", w), benchutil.OpsPerSec(int64(rate), time.Second),
			benchutil.Seconds(lat.QuantileDuration(0.50)),
			benchutil.Seconds(lat.QuantileDuration(0.99)),
			speedup)
	}

	// Predicate-pushdown point: the selection vector feeds the kernels.
	pred := core.NewIntPred(2, 0, 499)
	tx := mgr.Begin()
	start := time.Now()
	for i := 0; i < cfg.Iters; i++ {
		if _, err := exec.Aggregate(tx, &exec.AggPlan{
			Table: table.DataTable, GroupBy: groupBy, Aggs: aggs, Pred: pred, Workers: runtime.NumCPU(),
		}, nil); err != nil {
			mgr.Commit(tx, nil)
			return nil, err
		}
	}
	predRate := float64(totalRows*int64(cfg.Iters)) / time.Since(start).Seconds()
	mgr.Commit(tx, nil)
	t.AddRow("pred 50%", benchutil.OpsPerSec(int64(predRate), time.Second), "-", "-", fmt.Sprintf("%.2fx", predRate/base))

	if runtime.NumCPU() >= 8 {
		if r8, ok := rates[8]; ok && r8 < 3*rates[1] {
			return nil, fmt.Errorf("bench: 8-worker aggregation only %.2fx the single-worker rate (acceptance: >=3x)", r8/rates[1])
		}
	}
	return t, nil
}
