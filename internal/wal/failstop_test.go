package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncFailSink succeeds writes but fails Sync after `okSyncs` successes —
// the fsync-gate failure mode: bytes reach the file, durability does not.
type syncFailSink struct {
	mu      sync.Mutex
	okSyncs int
	syncs   int
	err     error
}

func (s *syncFailSink) Write(p []byte) (int, error) { return len(p), nil }
func (s *syncFailSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	if s.syncs > s.okSyncs {
		return s.err
	}
	return nil
}
func (s *syncFailSink) Close() error { return nil }

// TestGroupFailureFailsEveryWaiter is the fsync-gate regression test: a
// WAL fsync failure mid-group must fail EVERY waiter in that group — no
// member may be acked durable against an unsynced log — drain everything
// queued behind it, and wedge the manager so later enqueues fail
// immediately instead of hanging.
func TestGroupFailureFailsEveryWaiter(t *testing.T) {
	m, table := testTable(t)
	cause := errors.New("fsync: device on fire")
	sink := &syncFailSink{okSyncs: 0, err: cause}
	lm := NewLogManager(sink)
	var onErr error
	lm.OnError = func(err error) { onErr = err }
	lm.Attach(m)

	const waiters = 5
	var (
		wg    sync.WaitGroup
		acked atomic.Int64
		errs  = make([]error, waiters)
	)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin()
			row := table.AllColumnsProjection().NewRow()
			row.SetInt64(0, int64(i))
			row.SetVarlen(1, []byte("v"))
			if _, err := table.Insert(tx, row); err != nil {
				t.Error(err)
				return
			}
			done := make(chan struct{})
			m.Commit(tx, func(err error) {
				if err == nil {
					acked.Add(1)
				}
				errs[i] = err
				close(done)
			})
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("waiter hung: callback never fired")
			}
		}(i)
	}
	// Drive flushes until every waiter resolves; the first flush with a
	// formed group hits the sync failure and must fail them all.
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		for i := 0; i < 10000; i++ {
			lm.FlushOnce()
			if lm.FailedFlushes() > 0 {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-flushDone

	// The fsync-gate rule: NO commit acked durable after the injected
	// failure point.
	if n := acked.Load(); n != 0 {
		t.Fatalf("%d waiters acked durable despite fsync failure", n)
	}
	for i, err := range errs {
		if !errors.Is(err, ErrLogFailed) {
			t.Fatalf("waiter %d error = %v, want ErrLogFailed", i, err)
		}
		if !errors.Is(err, cause) {
			t.Fatalf("waiter %d error %v does not wrap the root cause", i, err)
		}
	}
	if onErr == nil {
		t.Fatal("OnError not called")
	}
	if got := lm.queued.Load(); got != 0 {
		t.Fatalf("queued = %d after wedge, want 0 (shards drained)", got)
	}

	// A commit enqueued after the wedge fails its callback immediately.
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 99)
	row.SetVarlen(1, []byte("late"))
	if _, err := table.Insert(tx, row); err != nil {
		t.Fatal(err)
	}
	var lateErr error
	fired := false
	m.Commit(tx, func(err error) { fired = true; lateErr = err })
	if !fired {
		t.Fatal("post-wedge enqueue did not fail the callback synchronously")
	}
	if !errors.Is(lateErr, ErrLogFailed) {
		t.Fatalf("post-wedge error = %v, want ErrLogFailed", lateErr)
	}

	// Stop must not hang on a wedged log.
	stopDone := make(chan struct{})
	go func() { lm.Stop(); close(stopDone) }()
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on wedged log")
	}
}

// TestWriteFailureFailsGroup covers the other half of the gate: the sink
// write (not the sync) failing.
func TestWriteFailureFailsGroup(t *testing.T) {
	m, table := testTable(t)
	cause := errors.New("write: ENOSPC")
	sink := &memSink{failNext: cause}
	lm := NewLogManager(sink)
	lm.OnError = func(error) {}
	m.SetCommitHook(lm.Hook())

	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 1)
	if _, err := table.Insert(tx, row); err != nil {
		t.Fatal(err)
	}
	var derr error
	m.Commit(tx, func(err error) { derr = err })
	lm.FlushOnce()
	if !errors.Is(derr, ErrLogFailed) || !errors.Is(derr, cause) {
		t.Fatalf("callback error = %v, want ErrLogFailed wrapping cause", derr)
	}
	// Nothing acked: Stats counts only fsynced transactions.
	if txns, _, _ := lm.Stats(); txns != 0 {
		t.Fatalf("txns logged = %d after failed write", txns)
	}
}

// TestWedgedEnqueueRecyclesChunks checks that post-wedge enqueues do not
// leak pool chunks or distort the queued counter.
func TestWedgedEnqueueRecyclesChunks(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{failNext: errors.New("boom")}
	lm := NewLogManager(sink)
	lm.OnError = func(error) {}
	m.SetCommitHook(lm.Hook())

	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 1)
	if _, err := table.Insert(tx, row); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	lm.FlushOnce()

	for i := 0; i < 100; i++ {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, int64(i))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		m.Commit(tx, nil)
	}
	if got := lm.queued.Load(); got != 0 {
		t.Fatalf("queued = %d after wedged enqueues, want 0", got)
	}
}
