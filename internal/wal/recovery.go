package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// maxFrameSize bounds one framed record. A frame length beyond this is
// treated as a torn tail (garbage bytes after a crash can masquerade as a
// huge length prefix; believing it would allocate unboundedly).
const maxFrameSize = 1 << 28

// RecoveryResult summarizes a replay.
type RecoveryResult struct {
	// TxnsApplied counts committed transactions replayed.
	TxnsApplied int
	// TxnsDiscarded counts transactions without commit records (in-flight
	// at the crash) whose redo records were ignored.
	TxnsDiscarded int
	// TxnsSkipped counts committed transactions filtered out because their
	// commit timestamp is at or below ReplayOptions.AfterTs — the
	// checkpoint already holds their effects.
	TxnsSkipped int
	// RecordsApplied counts redo records applied.
	RecordsApplied int
	// TornTail reports whether the log ended mid-record or with a
	// checksum-corrupt record (expected after a crash; everything before
	// the tear is recovered).
	TornTail bool
	// CleanPrefix is the byte offset of the end of the last fully decoded
	// frame — the length recovery can truncate a torn log to so the
	// garbage tail does not masquerade as a mid-history hole on the next
	// startup.
	CleanPrefix int64
	// MaxTs is the largest commit timestamp observed among decoded records
	// (applied, skipped, or read-only). Recovery re-seeds the engine's
	// timestamp counter above it so post-recovery commits never collide
	// with retained log records.
	MaxTs uint64
}

// ReplayOptions filters and anchors a replay.
type ReplayOptions struct {
	// AfterTs skips committed transactions with commit timestamp <=
	// AfterTs: the checkpoint at that snapshot timestamp already contains
	// their effects. Zero replays everything.
	AfterTs uint64
	// SlotMap seeds the logged-slot -> rebuilt-slot remapping, letting
	// post-checkpoint updates and deletes resolve tuples whose inserts
	// were replayed from a checkpoint rather than from the log. The map is
	// extended in place as inserts replay; nil allocates a fresh map.
	SlotMap map[storage.TupleSlot]storage.TupleSlot
}

// Recover replays the log at path into tables. A missing file is an empty
// log. See ReplayStream for semantics.
func Recover(path string, mgr *txn.Manager, tables map[uint32]*core.DataTable) (*RecoveryResult, error) {
	return ReplayFile(path, mgr, tables, nil)
}

// ReplayFile streams the log file at path through ReplayStream. A missing
// file yields an empty result.
func ReplayFile(path string, mgr *txn.Manager, tables map[uint32]*core.DataTable, opts *ReplayOptions) (*RecoveryResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &RecoveryResult{}, nil
		}
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	defer f.Close()
	return ReplayStream(f, mgr, tables, opts)
}

// Replay applies a serialized log image (exposed for tests and
// crash-injection harnesses). Equivalent to ReplayStream over the bytes.
func Replay(data []byte, mgr *txn.Manager, tables map[uint32]*core.DataTable) (*RecoveryResult, error) {
	return ReplayStream(bytes.NewReader(data), mgr, tables, nil)
}

// ReplayStream decodes records incrementally from r and applies each
// committed transaction the moment its commit record appears, so recovery
// memory is bounded by the redo records of in-flight transactions — with
// group commit's contiguous per-transaction chunks, at most one — rather
// than by total log size.
//
// Applying at commit-record position (file order) instead of sorting by
// commit timestamp is sound because the log manager keeps the written
// prefix dependency-closed: any transaction a later one could have read
// from reaches the log strictly earlier. Transactions whose commit record
// never appears (in-flight at the crash, or torn off the tail) are
// discarded. Each applied transaction re-executes under a fresh
// transaction from mgr; logged slots are remapped through opts.SlotMap
// (seeded by checkpoint restore) as inserts replay.
func ReplayStream(r io.Reader, mgr *txn.Manager, tables map[uint32]*core.DataTable, opts *ReplayOptions) (*RecoveryResult, error) {
	if opts == nil {
		opts = &ReplayOptions{}
	}
	slotMap := opts.SlotMap
	if slotMap == nil {
		slotMap = make(map[storage.TupleSlot]storage.TupleSlot)
	}
	res := &RecoveryResult{}
	br := bufio.NewReaderSize(r, 1<<16)
	pending := make(map[uint64][]*LogRecord)
	var payload []byte
	for {
		rec, consumed, status, err := readRecord(br, &payload)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if status != frameOK {
			// Mid-frame end of stream or checksum mismatch: the crash
			// tail. Everything before it is the recoverable prefix.
			res.TornTail = true
			break
		}
		res.CleanPrefix += consumed
		if rec.CommitTs > res.MaxTs {
			res.MaxTs = rec.CommitTs
		}
		switch rec.Type {
		case recRedo:
			pending[rec.CommitTs] = append(pending[rec.CommitTs], rec)
		case recCommit:
			if rec.ReadOnly {
				continue
			}
			recs := pending[rec.CommitTs]
			if len(recs) == 0 {
				continue
			}
			delete(pending, rec.CommitTs)
			if rec.CommitTs <= opts.AfterTs {
				res.TxnsSkipped++
				continue
			}
			if err := applyTxn(rec.CommitTs, recs, mgr, tables, slotMap); err != nil {
				return nil, err
			}
			res.TxnsApplied++
			res.RecordsApplied += len(recs)
		}
	}
	res.TxnsDiscarded = len(pending)
	return res, nil
}

// Frame decode outcomes.
const (
	frameOK      = iota // a whole, checksum-valid frame
	frameTorn           // stream ended mid-frame (or absurd length prefix)
	frameCorrupt        // whole frame present but checksum mismatch
)

// readRecord decodes one framed record from br, reporting the bytes the
// frame occupied and its status. It is the single decode path for both
// streaming replay (which treats frameTorn and frameCorrupt alike as the
// crash tail) and DecodeNext (which distinguishes them). A clean end of
// stream returns io.EOF.
func readRecord(br *bufio.Reader, payload *[]byte) (rec *LogRecord, consumed int64, status int, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, frameTorn, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, 0, frameTorn, nil
		}
		return nil, 0, frameTorn, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFrameSize {
		return nil, 0, frameTorn, nil
	}
	if cap(*payload) < int(n) {
		*payload = make([]byte, n)
	}
	buf := (*payload)[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, frameTorn, nil
		}
		return nil, 0, frameTorn, err
	}
	if crc32.Checksum(buf, crcTable) != crc {
		return nil, 0, frameCorrupt, nil
	}
	rec, err = decodePayload(buf)
	if err != nil {
		return nil, 0, frameTorn, err
	}
	return rec, int64(8 + n), frameOK, nil
}

// applyTxn re-executes one committed transaction's redo records under a
// fresh transaction.
func applyTxn(ts uint64, recs []*LogRecord, mgr *txn.Manager, tables map[uint32]*core.DataTable, slotMap map[storage.TupleSlot]storage.TupleSlot) error {
	tx := mgr.Begin()
	for _, rec := range recs {
		if err := applyRecord(tx, rec, tables, slotMap); err != nil {
			mgr.Abort(tx)
			return fmt.Errorf("wal: replay of txn %d failed: %w", ts, err)
		}
	}
	mgr.Commit(tx, nil)
	return nil
}

func applyRecord(tx *txn.Transaction, rec *LogRecord, tables map[uint32]*core.DataTable, slotMap map[storage.TupleSlot]storage.TupleSlot) error {
	table, ok := tables[rec.TableID]
	if !ok {
		return fmt.Errorf("wal: unknown table %d", rec.TableID)
	}
	switch rec.Kind {
	case storage.KindInsert:
		row, err := rowFromRecord(table, rec)
		if err != nil {
			return err
		}
		newSlot, err := table.Insert(tx, row)
		if err != nil {
			return err
		}
		slotMap[rec.Slot] = newSlot
	case storage.KindUpdate:
		row, err := rowFromRecord(table, rec)
		if err != nil {
			return err
		}
		slot, ok := slotMap[rec.Slot]
		if !ok {
			return fmt.Errorf("wal: update of unknown slot %v", rec.Slot)
		}
		if err := table.Update(tx, slot, row); err != nil {
			return err
		}
	case storage.KindDelete:
		slot, ok := slotMap[rec.Slot]
		if !ok {
			return fmt.Errorf("wal: delete of unknown slot %v", rec.Slot)
		}
		if err := table.Delete(tx, slot); err != nil {
			return err
		}
	}
	return nil
}

func rowFromRecord(table *core.DataTable, rec *LogRecord) (*storage.ProjectedRow, error) {
	cols := make([]storage.ColumnID, len(rec.Cols))
	for i, c := range rec.Cols {
		cols[i] = c.Col
	}
	proj, err := storage.NewProjection(table.Layout(), cols)
	if err != nil {
		return nil, err
	}
	row := proj.NewRow()
	for i, c := range rec.Cols {
		switch {
		case c.Null:
			row.SetNull(i)
		case c.Varlen:
			row.SetVarlen(i, c.Value)
		default:
			copy(row.FixedBytes(i), c.Value)
			row.Nulls.Clear(i)
		}
	}
	return row, nil
}
