package wal

import (
	"fmt"
	"os"
	"sort"

	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// RecoveryResult summarizes a replay.
type RecoveryResult struct {
	// TxnsApplied counts committed transactions replayed.
	TxnsApplied int
	// TxnsDiscarded counts transactions without commit records (in-flight
	// at the crash) whose redo records were ignored.
	TxnsDiscarded int
	// RecordsApplied counts redo records applied.
	RecordsApplied int
	// TornTail reports whether the log ended mid-record (expected after a
	// crash; everything before the tear is recovered).
	TornTail bool
}

// Recover replays the log at path into tables. Each committed transaction
// is re-executed in commit-timestamp order under a fresh transaction from
// mgr. Because a rebuilt database assigns new physical slots, logged slots
// are remapped as inserts replay; updates and deletes resolve through the
// remapping.
func Recover(path string, mgr *txn.Manager, tables map[uint32]*core.DataTable) (*RecoveryResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &RecoveryResult{}, nil
		}
		return nil, fmt.Errorf("wal: reading log: %w", err)
	}
	return Replay(data, mgr, tables)
}

// Replay applies a serialized log image (exposed separately for tests and
// crash-injection harnesses).
func Replay(data []byte, mgr *txn.Manager, tables map[uint32]*core.DataTable) (*RecoveryResult, error) {
	res := &RecoveryResult{}

	// Pass 1: decode everything, group redo records by commit timestamp,
	// and note which timestamps actually committed.
	pending := make(map[uint64][]*LogRecord)
	committed := make(map[uint64]bool)
	var order []uint64
	buf := data
	for len(buf) > 0 {
		rec, rest, err := DecodeNext(buf)
		if err != nil {
			return nil, err
		}
		if rec == nil {
			res.TornTail = len(buf) > 0
			break
		}
		buf = rest
		switch rec.Type {
		case recCommit:
			if !rec.ReadOnly {
				committed[rec.CommitTs] = true
				order = append(order, rec.CommitTs)
			}
		case recRedo:
			pending[rec.CommitTs] = append(pending[rec.CommitTs], rec)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// Pass 2: apply committed transactions in commit order, remapping
	// logged slots to rebuilt slots.
	slotMap := make(map[storage.TupleSlot]storage.TupleSlot)
	for _, ts := range order {
		recs := pending[ts]
		if len(recs) == 0 {
			continue
		}
		tx := mgr.Begin()
		ok := true
		for _, rec := range recs {
			if err := applyRecord(tx, rec, tables, slotMap); err != nil {
				ok = false
				break
			}
			res.RecordsApplied++
		}
		if !ok {
			mgr.Abort(tx)
			return nil, fmt.Errorf("wal: replay of txn %d failed", ts)
		}
		mgr.Commit(tx, nil)
		res.TxnsApplied++
		delete(pending, ts)
	}
	res.TxnsDiscarded = len(pending)
	return res, nil
}

func applyRecord(tx *txn.Transaction, rec *LogRecord, tables map[uint32]*core.DataTable, slotMap map[storage.TupleSlot]storage.TupleSlot) error {
	table, ok := tables[rec.TableID]
	if !ok {
		return fmt.Errorf("wal: unknown table %d", rec.TableID)
	}
	switch rec.Kind {
	case storage.KindInsert:
		row, err := rowFromRecord(table, rec)
		if err != nil {
			return err
		}
		newSlot, err := table.Insert(tx, row)
		if err != nil {
			return err
		}
		slotMap[rec.Slot] = newSlot
	case storage.KindUpdate:
		row, err := rowFromRecord(table, rec)
		if err != nil {
			return err
		}
		slot, ok := slotMap[rec.Slot]
		if !ok {
			return fmt.Errorf("wal: update of unknown slot %v", rec.Slot)
		}
		if err := table.Update(tx, slot, row); err != nil {
			return err
		}
	case storage.KindDelete:
		slot, ok := slotMap[rec.Slot]
		if !ok {
			return fmt.Errorf("wal: delete of unknown slot %v", rec.Slot)
		}
		if err := table.Delete(tx, slot); err != nil {
			return err
		}
	}
	return nil
}

func rowFromRecord(table *core.DataTable, rec *LogRecord) (*storage.ProjectedRow, error) {
	cols := make([]storage.ColumnID, len(rec.Cols))
	for i, c := range rec.Cols {
		cols[i] = c.Col
	}
	proj, err := storage.NewProjection(table.Layout(), cols)
	if err != nil {
		return nil, err
	}
	row := proj.NewRow()
	for i, c := range rec.Cols {
		switch {
		case c.Null:
			row.SetNull(i)
		case c.Varlen:
			row.SetVarlen(i, c.Value)
		default:
			copy(row.FixedBytes(i), c.Value)
			row.Nulls.Clear(i)
		}
	}
	return row, nil
}
