package wal

// Group-commit stress: many goroutines committing durably (and aborting)
// through the background flusher, then proving that replaying the group
// log reproduces exactly the live table. Run with -race.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

// TestGroupCommitStressRecoveryEquivalence drives concurrent writers whose
// commits all wait on the group fsync, mixes in aborts (which must never
// reach the log) and read-only transactions (which must not confuse
// recovery), then replays the resulting log into a fresh engine and
// compares full table contents.
func TestGroupCommitStressRecoveryEquivalence(t *testing.T) {
	const (
		writers = 8
		perW    = 60
	)
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	lm.SyncDelay = 100 * time.Microsecond
	lm.Attach(m)
	lm.Start(time.Millisecond)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			proj := table.AllColumnsProjection()
			for i := 0; i < perW; i++ {
				id := int64(w*perW + i)
				tx := m.Begin()
				row := proj.NewRow()
				row.SetInt64(0, id)
				row.SetVarlen(1, []byte(fmt.Sprintf("payload-%d", id)))
				slot, err := table.Insert(tx, row)
				if err != nil {
					m.Abort(tx)
					t.Errorf("insert: %v", err)
					return
				}
				if i%7 == 3 {
					// Aborted work must never surface in the log.
					m.Abort(tx)
					continue
				}
				if i%5 == 0 {
					// Overwrite the payload in the same transaction so
					// recovery must apply records in order within a txn.
					upd := proj.NewRow()
					upd.SetInt64(0, id)
					upd.SetVarlen(1, []byte(fmt.Sprintf("updated-%d", id)))
					if err := table.Update(tx, slot, upd); err != nil {
						m.Abort(tx)
						t.Errorf("update: %v", err)
						return
					}
				}
				done := make(chan struct{})
				m.Commit(tx, func(error) { close(done) })
				<-done

				if i%9 == 4 {
					// Interleave read-only durable commits.
					ro := m.Begin()
					done := make(chan struct{})
					m.Commit(ro, func(error) { close(done) })
					<-done
				}
			}
		}(w)
	}
	wg.Wait()
	lm.Stop()
	if t.Failed() {
		return
	}

	snapshot := func(mgr *txn.Manager, tbl *core.DataTable) map[int64]string {
		tx := mgr.Begin()
		defer mgr.Commit(tx, nil)
		proj := tbl.AllColumnsProjection()
		out := make(map[int64]string)
		_ = tbl.Scan(tx, proj, func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
			out[row.Int64(0)] = string(row.Varlen(1))
			return true
		})
		return out
	}
	live := snapshot(m, table)

	m2, table2 := testTable(t)
	res, err := Replay(sink.bytes(), m2, map[uint32]*core.DataTable{1: table2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnsDiscarded != 0 || res.TornTail {
		t.Fatalf("clean shutdown log reported loss: %+v", res)
	}
	recovered := snapshot(m2, table2)

	if len(recovered) != len(live) {
		t.Fatalf("recovered %d rows, live %d", len(recovered), len(live))
	}
	for id, payload := range live {
		if recovered[id] != payload {
			t.Fatalf("row %d: recovered %q, live %q", id, recovered[id], payload)
		}
	}

	txns, bytes, syncs := lm.Stats()
	if txns == 0 || bytes == 0 || syncs == 0 {
		t.Fatalf("stats: %d %d %d", txns, bytes, syncs)
	}
	if syncs >= txns {
		t.Logf("no grouping achieved (%d txns, %d syncs) — tolerated, timing-dependent", txns, syncs)
	}
}

// TestConcurrentEnqueueFlushRace hammers Enqueue against FlushOnce from
// multiple goroutines; every durable callback must fire exactly once.
func TestConcurrentEnqueueFlushRace(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	lm.Attach(m)

	const n = 200
	var fired [n]int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				lm.FlushOnce()
				return
			default:
				lm.FlushOnce()
			}
		}
	}()

	var commitWg sync.WaitGroup
	for w := 0; w < 4; w++ {
		commitWg.Add(1)
		go func(w int) {
			defer commitWg.Done()
			proj := table.AllColumnsProjection()
			for i := w; i < n; i += 4 {
				i := i
				tx := m.Begin()
				row := proj.NewRow()
				row.SetInt64(0, int64(i))
				row.SetVarlen(1, []byte("x"))
				if _, err := table.Insert(tx, row); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				m.Commit(tx, func(error) { fired[i]++ })
			}
		}(w)
	}
	commitWg.Wait()
	close(stop)
	wg.Wait()

	for i, f := range fired {
		if f != 1 {
			t.Fatalf("callback %d fired %d times", i, f)
		}
	}
}

// TestFlushErrorWedgesLog pins the failure rule behind the
// dependency-closed prefix: after a failed group, nothing further may be
// written — a later transaction on disk without its failed-group
// dependency would be unrecoverable.
func TestFlushErrorWedgesLog(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{failNext: errors.New("disk on fire")}
	lm := NewLogManager(sink)
	lm.OnError = func(error) {}
	lm.Attach(m)

	insert := func(v int64) {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, v)
		row.SetVarlen(1, []byte("x"))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		m.Commit(tx, nil)
	}
	insert(1)
	lm.FlushOnce() // fails, wedges
	if lm.FailedFlushes() != 1 {
		t.Fatalf("failed flushes = %d", lm.FailedFlushes())
	}
	insert(2)
	lm.FlushOnce() // must not write past the failed group
	if n := len(sink.bytes()); n != 0 {
		t.Fatalf("wedged log wrote %d bytes", n)
	}
	lm.Stop() // must not spin on the undrainable queue
}

// TestWriteFrontierDependencyClosure pins the dependency-closed-prefix
// rule: a chunk whose commit timestamp the frontier has not passed — an
// earlier commit may still be short of the log queue — is withheld from
// the disk entirely (not just its ack), and written once the frontier
// moves past it. It also checks that a group is written in ascending
// timestamp order so torn tails stay dependency-closed.
func TestWriteFrontierDependencyClosure(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	lm.Attach(m)

	commit := func(v int64) (uint64, *bool) {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, v)
		row.SetVarlen(1, []byte("x"))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		fired := false
		ts := m.Commit(tx, func(error) { fired = true })
		return ts, &fired
	}
	ts1, fired1 := commit(1)
	ts2, fired2 := commit(2)
	if ts2 <= ts1 {
		t.Fatalf("timestamps not increasing: %d %d", ts1, ts2)
	}

	// Pretend an older commit (ts < ts1) is still in flight: nothing may
	// reach the disk.
	real := lm.frontier
	lm.frontier = func() uint64 { return ts1 }
	lm.FlushOnce()
	if *fired1 || *fired2 {
		t.Fatal("ack released while frontier had not passed the commit")
	}
	if len(sink.bytes()) != 0 {
		t.Fatal("chunk written past the frontier — disk prefix not dependency-closed")
	}

	// Frontier between the two: only ts1 is flushed.
	lm.frontier = func() uint64 { return ts2 }
	lm.FlushOnce()
	if !*fired1 || *fired2 {
		t.Fatalf("partial-frontier flush wrong: fired1=%v fired2=%v", *fired1, *fired2)
	}

	// Frontier past everything: the rest lands, in ascending ts order.
	lm.frontier = real
	lm.FlushOnce()
	if !*fired2 {
		t.Fatal("ack not released after frontier passed")
	}
	var prev uint64
	buf := sink.bytes()
	for len(buf) > 0 {
		rec, rest, err := DecodeNext(buf)
		if err != nil || rec == nil {
			t.Fatalf("decode: %v", err)
		}
		buf = rest
		if rec.CommitTs < prev {
			t.Fatalf("log not in ascending ts order: %d after %d", rec.CommitTs, prev)
		}
		prev = rec.CommitTs
	}
}
