package wal

import (
	"bytes"
	"testing"

	"mainline/internal/core"
	"mainline/internal/storage"
)

// TestTornTailEveryByte truncates a generated log at every byte boundary
// and asserts replay always yields a consistent committed prefix: exactly
// the transactions whose commit record fully survived are applied, the
// visible state matches a shadow simulation of that prefix, TornTail is
// set exactly when the cut lands mid-frame, and no partial transaction is
// ever visible.
func TestTornTailEveryByte(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())

	const numTxns = 18
	var slots []storage.TupleSlot
	// shadow[k] is the expected multiset of col0 values after k committed
	// transactions; boundaries[k] is the log length at that point.
	shadow := make([]map[int64]int, numTxns+1)
	shadow[0] = map[int64]int{}
	boundaries := make([]int, numTxns+1)
	live := map[int]int64{} // insertion index -> current col0 value (deleted = absent)

	for i := 0; i < numTxns; i++ {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, []byte("torn-tail-payload"))
		slot, err := table.Insert(tx, row)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, slot)
		live[i] = int64(i)
		if i >= 2 {
			// Update the row inserted two transactions ago.
			u := storage.MustProjection(table.Layout(), []storage.ColumnID{0}).NewRow()
			u.SetInt64(0, int64(1000+i))
			if err := table.Update(tx, slots[i-2], u); err != nil {
				t.Fatal(err)
			}
			live[i-2] = int64(1000 + i)
		}
		if i == 7 {
			if err := table.Delete(tx, slots[3]); err != nil {
				t.Fatal(err)
			}
			delete(live, 3)
		}
		m.Commit(tx, nil)
		lm.FlushOnce()
		snap := map[int64]int{}
		for _, v := range live {
			snap[v]++
		}
		shadow[i+1] = snap
		boundaries[i+1] = len(sink.bytes())
	}
	img := sink.bytes()

	// Frame boundaries: offsets at which a cut is a clean end of log.
	frameEnd := map[int]bool{0: true}
	rest := img
	off := 0
	for len(rest) > 0 {
		rec, r2, err := DecodeNext(rest)
		if err != nil || rec == nil {
			t.Fatalf("log image does not decode cleanly at %d: %v", off, err)
		}
		off += len(rest) - len(r2)
		rest = r2
		frameEnd[off] = true
	}

	for cut := 0; cut <= len(img); cut++ {
		m2, table2 := testTable(t)
		res, err := Replay(img[:cut], m2, map[uint32]*core.DataTable{1: table2})
		if err != nil {
			t.Fatalf("cut %d: replay error: %v", cut, err)
		}
		wantTxns := 0
		for k := 1; k <= numTxns; k++ {
			if boundaries[k] <= cut {
				wantTxns = k
			}
		}
		if res.TxnsApplied != wantTxns {
			t.Fatalf("cut %d: applied %d txns, want %d", cut, res.TxnsApplied, wantTxns)
		}
		if wantTorn := !frameEnd[cut]; res.TornTail != wantTorn {
			t.Fatalf("cut %d: TornTail=%v, want %v", cut, res.TornTail, wantTorn)
		}
		if res.TxnsDiscarded > 1 {
			t.Fatalf("cut %d: %d partial txns discarded, want <= 1", cut, res.TxnsDiscarded)
		}
		got := map[int64]int{}
		check := m2.Begin()
		proj := storage.MustProjection(table2.Layout(), []storage.ColumnID{0})
		_ = table2.Scan(check, proj, func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
			got[row.Int64(0)]++
			return true
		})
		m2.Commit(check, nil)
		want := shadow[wantTxns]
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d distinct values visible, want %d (got %v want %v)", cut, len(got), len(want), got, want)
		}
		for v, n := range want {
			if got[v] != n {
				t.Fatalf("cut %d: value %d seen %d times, want %d", cut, v, got[v], n)
			}
		}
	}
}

// TestReplayCorruptTailStops flips a byte in the final record and asserts
// replay recovers the clean prefix and flags the tear instead of failing.
func TestReplayCorruptTailStops(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())
	for i := 0; i < 3; i++ {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, []byte("x"))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		m.Commit(tx, nil)
		lm.FlushOnce()
	}
	img := sink.bytes()
	img[len(img)-1] ^= 0xFF // corrupt the last frame's payload

	m2, table2 := testTable(t)
	res, err := Replay(img, m2, map[uint32]*core.DataTable{1: table2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TornTail {
		t.Fatal("corrupt tail not flagged as torn")
	}
	if res.TxnsApplied != 2 {
		t.Fatalf("applied %d txns, want 2 (clean prefix)", res.TxnsApplied)
	}
	check := m2.Begin()
	defer m2.Commit(check, nil)
	if n := table2.CountVisible(check); n != 2 {
		t.Fatalf("visible rows = %d, want 2", n)
	}
}

// TestReplayAfterTsAndSeededSlots exercises the checkpoint-anchored replay
// path: transactions at or below AfterTs are skipped, and updates to rows
// whose inserts were filtered resolve through the seeded slot map.
func TestReplayAfterTsAndSeededSlots(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())

	// Txn 1: insert row A.
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 1)
	row.SetVarlen(1, []byte("a"))
	slotA, err := table.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	cutTs := m.Commit(tx, nil)

	// Txn 2 (after the "checkpoint"): update row A.
	tx2 := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{0}).NewRow()
	u.SetInt64(0, 42)
	if err := table.Update(tx2, slotA, u); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx2, nil)
	lm.FlushOnce()

	// Rebuild: pretend a checkpoint holds row A at a new physical slot.
	m2, table2 := testTable(t)
	boot := m2.Begin()
	bootRow := table2.AllColumnsProjection().NewRow()
	bootRow.SetInt64(0, 1)
	bootRow.SetVarlen(1, []byte("a"))
	newSlot, err := table2.Insert(boot, bootRow)
	if err != nil {
		t.Fatal(err)
	}
	m2.Commit(boot, nil)

	res, err := ReplayStream(bytes.NewReader(sink.bytes()), m2, map[uint32]*core.DataTable{1: table2}, &ReplayOptions{
		AfterTs: cutTs,
		SlotMap: map[storage.TupleSlot]storage.TupleSlot{slotA: newSlot},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnsSkipped != 1 || res.TxnsApplied != 1 {
		t.Fatalf("skipped=%d applied=%d, want 1/1", res.TxnsSkipped, res.TxnsApplied)
	}
	check := m2.Begin()
	defer m2.Commit(check, nil)
	out := table2.AllColumnsProjection().NewRow()
	found, err := table2.Select(check, newSlot, out)
	if err != nil || !found {
		t.Fatalf("row missing after anchored replay: %v", err)
	}
	if out.Int64(0) != 42 {
		t.Fatalf("col0 = %d, want 42 (post-checkpoint update lost)", out.Int64(0))
	}
}
