// Package wal implements the paper's logging and recovery components
// (§3.4): transactions accumulate physical after-images in redo buffers; at
// commit the transaction joins the flush queue; the log manager batches
// fsyncs (group commit) and invokes durability callbacks afterwards.
// Records are ordered implicitly by commit timestamp — there are no log
// sequence numbers.
//
// # Group-commit protocol
//
// The pipeline has two halves joined by sharded pending queues:
//
//  1. Enqueue (committing goroutines, parallel): each committer serializes
//     its own redo buffer into a pooled chunk — encoding cost is paid on
//     the core that ran the transaction, not by the single flusher — and
//     appends the chunk to one of the enqueue shards.
//  2. Flush (one goroutine): FlushOnce drains every shard, concatenates
//     the chunks, issues ONE sink write and ONE fsync for the whole group,
//     and only then fires each transaction's durability callback.
//
// Durability guarantees: a transaction's durable callback fires only after
// the fsync covering its commit record returns; if the write or sync
// fails, no callback in that group fires. The engine treats transactions
// as logically committed at Commit (their versions are visible), but
// clients should be answered only from the durable callback — the paper's
// "results are not returned until durable" rule.
//
// Ordering invariants: chunks reach the log in arbitrary interleaving
// across transactions (commits race on different latch shards), but each
// transaction's records are contiguous, its commit record last. Recovery
// therefore groups redo records by commit timestamp, applies only
// timestamps whose commit record survived, and replays groups in
// commit-timestamp order — byte order in the file carries no meaning
// beyond the torn-tail cutoff.
//
// Chunks race into the queue out of timestamp order, but the DISK prefix
// must stay dependency-closed: if T2 read T1's writes (so commitTs(T1) <
// commitTs(T2)) and T2 reached disk without T1, a crash would recover T2
// alone — recovery either fails on the missing slot or materializes a
// state that never existed. When attached to a transaction manager
// (LogManager.Attach), the flusher writes only chunks below the write
// frontier — min of the manager's CommitFrontier and the oldest
// enqueued-but-unwritten commit — re-queues the rest, and sorts each
// group by timestamp so torn tails stay closed too; see FlushOnce.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mainline/internal/storage"
	"mainline/internal/txn"
)

// Record type tags in the on-disk format.
const (
	recRedo   byte = 2
	recCommit byte = 1
)

// Errors returned by log deserialization.
var (
	// ErrCorrupt indicates a checksum mismatch. DecodeNext surfaces it to
	// callers; the streaming replay path (ReplayStream) instead treats the
	// mismatch as the crash tail — everything before it is recovered,
	// everything from it on is discarded.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// Framing: every record is [u32 payloadLen][u32 crc32c(payload)][payload].
//
// Redo payload:    [recRedo][u64 commitTs][u32 tableID][u64 slot][u8 kind][row?]
// Commit payload:  [recCommit][u64 commitTs][u8 readOnly]
//
// Row encoding (present for inserts and updates):
//
//	[u16 ncols] then per column:
//	[u16 colID][u8 flags] flags bit0=null bit1=varlen
//	fixed non-null:  [u8 size][size bytes]
//	varlen non-null: [u32 len][len bytes]

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps payload in the length+crc frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// AppendRedo serializes one redo record for a transaction committed at ts.
func AppendRedo(dst []byte, ts uint64, r txn.RedoRecord) []byte {
	payload := make([]byte, 0, 64)
	payload = append(payload, recRedo)
	payload = binary.LittleEndian.AppendUint64(payload, ts)
	payload = binary.LittleEndian.AppendUint32(payload, r.TableID)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(r.Slot))
	payload = append(payload, byte(r.Kind))
	if r.After != nil {
		payload = appendRow(payload, r.After)
	} else {
		payload = binary.LittleEndian.AppendUint16(payload, 0)
	}
	return appendFrame(dst, payload)
}

// AppendCommit serializes a commit record.
func AppendCommit(dst []byte, ts uint64, readOnly bool) []byte {
	payload := make([]byte, 0, 16)
	payload = append(payload, recCommit)
	payload = binary.LittleEndian.AppendUint64(payload, ts)
	if readOnly {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	return appendFrame(dst, payload)
}

func appendRow(dst []byte, row *storage.ProjectedRow) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(row.P.NumCols()))
	for i, col := range row.P.Cols {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(col))
		var flags byte
		varlen := row.P.Layout.IsVarlen(col)
		if varlen {
			flags |= 2
		}
		if row.IsNull(i) {
			flags |= 1
			dst = append(dst, flags)
			continue
		}
		dst = append(dst, flags)
		if varlen {
			v := row.Varlen(i)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
			dst = append(dst, v...)
		} else {
			b := row.FixedBytes(i)
			dst = append(dst, byte(len(b)))
			dst = append(dst, b...)
		}
	}
	return dst
}

// LogRecord is a decoded log entry.
type LogRecord struct {
	Type     byte
	CommitTs uint64
	ReadOnly bool

	TableID uint32
	Slot    storage.TupleSlot
	Kind    storage.RecordKind
	// Columns of the after-image (nil for deletes/commits).
	Cols []LogColumn
}

// LogColumn is one column value of a logged after-image.
type LogColumn struct {
	Col    storage.ColumnID
	Null   bool
	Varlen bool
	Value  []byte
}

// DecodeNext decodes one framed record from buf, returning the record and
// the remaining bytes. io semantics: (nil, buf, nil) when buf holds a
// partial frame — the torn tail after a crash — and ErrCorrupt when a
// whole frame fails its checksum. It shares readRecord with the streaming
// replay path so the frame format has exactly one decoder.
func DecodeNext(buf []byte) (*LogRecord, []byte, error) {
	var payload []byte
	rec, consumed, status, err := readRecord(bufio.NewReader(bytes.NewReader(buf)), &payload)
	if err == io.EOF {
		return nil, buf, nil
	}
	if err != nil {
		return nil, buf, err
	}
	switch status {
	case frameTorn:
		return nil, buf, nil
	case frameCorrupt:
		return nil, buf, ErrCorrupt
	}
	return rec, buf[consumed:], nil
}

func decodePayload(p []byte) (*LogRecord, error) {
	if len(p) < 9 {
		return nil, fmt.Errorf("wal: short payload")
	}
	rec := &LogRecord{Type: p[0], CommitTs: binary.LittleEndian.Uint64(p[1:9])}
	p = p[9:]
	switch rec.Type {
	case recCommit:
		if len(p) < 1 {
			return nil, fmt.Errorf("wal: short commit record")
		}
		rec.ReadOnly = p[0] == 1
		return rec, nil
	case recRedo:
		if len(p) < 13 {
			return nil, fmt.Errorf("wal: short redo record")
		}
		rec.TableID = binary.LittleEndian.Uint32(p)
		rec.Slot = storage.TupleSlot(binary.LittleEndian.Uint64(p[4:]))
		rec.Kind = storage.RecordKind(p[12])
		p = p[13:]
		if len(p) < 2 {
			return nil, fmt.Errorf("wal: missing column count")
		}
		ncols := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		rec.Cols = make([]LogColumn, 0, ncols)
		for i := 0; i < ncols; i++ {
			if len(p) < 3 {
				return nil, fmt.Errorf("wal: truncated column %d", i)
			}
			var c LogColumn
			c.Col = storage.ColumnID(binary.LittleEndian.Uint16(p))
			flags := p[2]
			p = p[3:]
			c.Null = flags&1 != 0
			c.Varlen = flags&2 != 0
			if !c.Null {
				if c.Varlen {
					if len(p) < 4 {
						return nil, fmt.Errorf("wal: truncated varlen column %d", i)
					}
					vn := int(binary.LittleEndian.Uint32(p))
					p = p[4:]
					if len(p) < vn {
						return nil, fmt.Errorf("wal: truncated varlen value %d", i)
					}
					c.Value = append([]byte(nil), p[:vn]...)
					p = p[vn:]
				} else {
					if len(p) < 1 {
						return nil, fmt.Errorf("wal: truncated fixed column %d", i)
					}
					fn := int(p[0])
					p = p[1:]
					if len(p) < fn {
						return nil, fmt.Errorf("wal: truncated fixed value %d", i)
					}
					c.Value = append([]byte(nil), p[:fn]...)
					p = p[fn:]
				}
			}
			rec.Cols = append(rec.Cols, c)
		}
		return rec, nil
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
}
