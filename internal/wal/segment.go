package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"mainline/internal/fault"
)

// Segment file naming: wal-<8-digit-seq>.log inside the WAL directory.
const segmentPattern = "wal-%08d.log"

// DefaultSegmentSize is the rotation threshold when none is configured:
// groups are appended to the active segment until it exceeds this many
// bytes, then a fresh segment is opened. Log retention is therefore
// bounded by checkpoint cadence, not by total history.
const DefaultSegmentSize = 4 << 20

// SegmentInfo describes one sealed (no longer written) WAL segment.
type SegmentInfo struct {
	// Seq is the segment's position in the log order.
	Seq uint64
	// Path is the segment file location.
	Path string
	// Size is the segment length in bytes.
	Size int64
	// MaxTs is the largest commit timestamp recorded in the segment (0
	// when the segment holds no records). Because the log manager keeps the
	// written prefix dependency-closed and each group lands wholly inside
	// one segment, a segment with MaxTs <= a checkpoint's snapshot
	// timestamp is wholly covered by that checkpoint and safe to delete.
	MaxTs uint64
}

// SegmentName returns the file name of segment seq.
func SegmentName(seq uint64) string { return fmt.Sprintf(segmentPattern, seq) }

// ParseSegmentName extracts the sequence number from a segment file name.
func ParseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, segmentPattern, &seq); err != nil {
		return 0, false
	}
	if name != SegmentName(seq) {
		return 0, false
	}
	return seq, true
}

// ListSegments enumerates the WAL segments in dir in ascending sequence
// order. MaxTs is left zero — callers that need it (truncation planning)
// learn it by replaying or from the running sink. A missing directory
// yields an empty list.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := ParseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentInfo{Seq: seq, Path: filepath.Join(dir, e.Name()), Size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// GroupSink is a Sink that wants to know each group's maximum commit
// timestamp, so it can rotate between groups and attribute timestamps to
// segments. The log manager prefers WriteGroup over Write when the sink
// implements it.
type GroupSink interface {
	Sink
	// WriteGroup appends one whole flush group. maxTs is the largest
	// commit timestamp among the group's transactions.
	WriteGroup(p []byte, maxTs uint64) (int, error)
}

// Truncator is a Sink that can discard sealed segments wholly covered by a
// checkpoint. LogManager.Truncate forwards to it under the flush lock.
type Truncator interface {
	// TruncateThrough seals the active segment (if it holds data) and
	// deletes every sealed segment whose MaxTs <= ts, returning how many
	// were removed.
	TruncateThrough(ts uint64) (int, error)
}

// SegmentedSink is a Sink backed by a directory of rotating segment files
// (wal-<seq>.log). Rotation happens only between flush groups, so every
// framed record — and every dependency-closed group — lives wholly inside
// one segment; per-segment maximum commit timestamps then make truncation
// an exact, crash-safe operation (delete whole files, no rewriting).
type SegmentedSink struct {
	fsys        fault.FS
	dir         string
	segmentSize int64

	mu     sync.Mutex
	f      fault.File
	seq    uint64 // active segment sequence
	size   int64  // active segment bytes written
	maxTs  uint64 // active segment max commit ts
	sealed []SegmentInfo

	truncated atomic.Int64 // lifetime segments deleted
}

// OpenSegmentedSink opens a segmented WAL in dir against the real
// filesystem; see OpenSegmentedSinkFS.
func OpenSegmentedSink(dir string, segmentSize int64, sealed []SegmentInfo) (*SegmentedSink, error) {
	return OpenSegmentedSinkFS(fault.OS{}, dir, segmentSize, sealed)
}

// OpenSegmentedSinkFS opens a segmented WAL in dir through fsys, creating
// the directory if needed. sealed describes pre-existing segments (from a
// recovery scan) that remain eligible for truncation; the active segment
// starts after the highest pre-existing sequence so old bytes are never
// appended to. segmentSize <= 0 selects DefaultSegmentSize.
func OpenSegmentedSinkFS(fsys fault.FS, dir string, segmentSize int64, sealed []SegmentInfo) (*SegmentedSink, error) {
	if fsys == nil {
		fsys = fault.OS{}
	}
	if segmentSize <= 0 {
		segmentSize = DefaultSegmentSize
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating segment dir: %w", err)
	}
	next := uint64(1)
	for _, s := range sealed {
		if s.Seq >= next {
			next = s.Seq + 1
		}
	}
	// Skip over any segment files the sealed list does not mention (e.g. a
	// crashed process's empty active segment) rather than appending to them.
	existing, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range existing {
		if s.Seq >= next {
			next = s.Seq + 1
		}
	}
	ss := &SegmentedSink{
		fsys:        fsys,
		dir:         dir,
		segmentSize: segmentSize,
		sealed:      append([]SegmentInfo(nil), sealed...),
	}
	if err := ss.openSegment(next); err != nil {
		return nil, err
	}
	return ss, nil
}

// openSegment creates and activates segment seq. Caller holds mu (or is the
// constructor).
func (ss *SegmentedSink) openSegment(seq uint64) error {
	path := filepath.Join(ss.dir, SegmentName(seq))
	f, err := ss.fsys.Append(path)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	// The new segment's directory entry must itself be durable before any
	// group is acked against the segment: a crash could otherwise drop
	// the whole file, synced bytes and all. A failed directory sync
	// therefore fails the open (and, mid-rotation, wedges the log).
	if err := ss.fsys.SyncDir(ss.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment dir: %w", err)
	}
	ss.f = f
	ss.seq = seq
	ss.size = 0
	ss.maxTs = 0
	return nil
}

// rotateLocked seals the active segment and opens the next one. Caller
// holds mu.
func (ss *SegmentedSink) rotateLocked() error {
	if err := ss.f.Sync(); err != nil {
		return err
	}
	if err := ss.f.Close(); err != nil {
		return err
	}
	ss.sealed = append(ss.sealed, SegmentInfo{
		Seq:   ss.seq,
		Path:  filepath.Join(ss.dir, SegmentName(ss.seq)),
		Size:  ss.size,
		MaxTs: ss.maxTs,
	})
	return ss.openSegment(ss.seq + 1)
}

// Write appends to the active segment (Sink compatibility path; no
// timestamp attribution, so truncation treats the segment conservatively
// by keeping it until a later group raises its MaxTs).
func (ss *SegmentedSink) Write(p []byte) (int, error) { return ss.WriteGroup(p, 0) }

// WriteGroup appends one flush group, rotating first when the active
// segment is over the size threshold. The whole group lands in a single
// segment.
func (ss *SegmentedSink) WriteGroup(p []byte, maxTs uint64) (int, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.size > 0 && ss.size+int64(len(p)) > ss.segmentSize {
		if err := ss.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := ss.f.Write(p)
	ss.size += int64(n)
	if maxTs > ss.maxTs {
		ss.maxTs = maxTs
	}
	return n, err
}

// Sync fsyncs the active segment.
func (ss *SegmentedSink) Sync() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.f.Sync()
}

// Close syncs and closes the active segment.
func (ss *SegmentedSink) Close() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if err := ss.f.Sync(); err != nil {
		ss.f.Close()
		return err
	}
	return ss.f.Close()
}

// TruncateThrough implements Truncator: it seals the active segment when it
// holds data (so a checkpoint immediately bounds the replayable tail), then
// deletes every sealed segment whose MaxTs <= ts. Segments written without
// timestamp attribution (MaxTs 0 but non-empty) are kept conservatively.
func (ss *SegmentedSink) TruncateThrough(ts uint64) (int, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.size > 0 {
		if err := ss.rotateLocked(); err != nil {
			return 0, err
		}
	}
	removed := 0
	kept := ss.sealed[:0]
	var firstErr error
	for _, s := range ss.sealed {
		coverable := s.MaxTs <= ts && (s.MaxTs > 0 || s.Size == 0)
		if !coverable {
			kept = append(kept, s)
			continue
		}
		if err := ss.fsys.Remove(s.Path); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = err
			}
			kept = append(kept, s)
			continue
		}
		removed++
	}
	ss.sealed = kept
	if removed > 0 {
		// Removal durability is load-bearing: an un-synced unlink can
		// resurrect a deleted segment after a crash, and recovery would
		// replay records the checkpoint already owns against recycled
		// slots. Surface the error instead of swallowing it.
		if err := ss.fsys.SyncDir(ss.dir); err != nil && firstErr == nil {
			firstErr = err
		}
		ss.truncated.Add(int64(removed))
	}
	return removed, firstErr
}

// ActiveSegment reports the active segment's sequence and size.
func (ss *SegmentedSink) ActiveSegment() (seq uint64, size int64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.seq, ss.size
}

// SealedSegments snapshots the sealed-segment list.
func (ss *SegmentedSink) SealedSegments() []SegmentInfo {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]SegmentInfo(nil), ss.sealed...)
}

// SegmentsTruncated reports the lifetime count of deleted segments.
func (ss *SegmentedSink) SegmentsTruncated() int64 { return ss.truncated.Load() }
