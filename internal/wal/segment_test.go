package wal

import (
	"os"
	"path/filepath"
	"testing"

	"mainline/internal/core"
)

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{1, 42, 99999999} {
		name := SegmentName(seq)
		got, ok := ParseSegmentName(name)
		if !ok || got != seq {
			t.Fatalf("%s -> (%d,%v)", name, got, ok)
		}
	}
	for _, bad := range []string{"wal-1.log", "wal-abcdefgh.log", "foo.log", "wal-00000001.tmp"} {
		if _, ok := ParseSegmentName(bad); ok {
			t.Fatalf("%q parsed as a segment", bad)
		}
	}
}

func TestSegmentRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	m, table := testTable(t)
	sink, err := OpenSegmentedSink(dir, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLogManager(sink)
	lm.Attach(m)

	commit := func(i int) uint64 {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, make([]byte, 200))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		ts := m.Commit(tx, nil)
		lm.FlushOnce()
		return ts
	}

	var midTs uint64
	for i := 0; i < 10; i++ {
		ts := commit(i)
		if i == 4 {
			midTs = ts
		}
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	sealed := sink.SealedSegments()
	if len(sealed) != len(segs)-1 {
		t.Fatalf("sealed %d segments, listed %d", len(sealed), len(segs))
	}
	for _, s := range sealed {
		if s.MaxTs == 0 || s.Size == 0 {
			t.Fatalf("sealed segment missing attribution: %+v", s)
		}
	}

	// Truncating through midTs removes only segments wholly at or below it.
	removed, err := lm.Truncate(midTs)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("no segments truncated")
	}
	for _, s := range sink.SealedSegments() {
		if s.MaxTs <= midTs {
			t.Fatalf("segment %d (maxTs %d) survived truncation through %d", s.Seq, s.MaxTs, midTs)
		}
	}

	// All later commits must still be recoverable from the retained tail.
	if err := lm.Close(); err != nil {
		t.Fatal(err)
	}
	m2, table2 := testTable(t)
	segs, err = ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := &RecoveryResult{}
	opts := &ReplayOptions{AfterTs: 0}
	for _, s := range segs {
		res, err := ReplayFile(s.Path, m2, map[uint32]*core.DataTable{1: table2}, opts)
		if err != nil {
			t.Fatal(err)
		}
		total.TxnsApplied += res.TxnsApplied
	}
	check := m2.Begin()
	defer m2.Commit(check, nil)
	n := table2.CountVisible(check)
	if n != total.TxnsApplied {
		t.Fatalf("visible %d != applied %d", n, total.TxnsApplied)
	}
	if n < 5 {
		t.Fatalf("retained tail recovered only %d rows", n)
	}
}

// TestSegmentedSinkResumesAfterExisting verifies a reopened sink never
// appends to pre-existing segment files.
func TestSegmentedSinkResumesAfterExisting(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SegmentName(7)), []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	sink, err := OpenSegmentedSink(dir, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, size := sink.ActiveSegment()
	if seq != 8 || size != 0 {
		t.Fatalf("active segment %d/%d, want fresh segment 8", seq, size)
	}
	if _, err := sink.WriteGroup([]byte("abc"), 3); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(filepath.Join(dir, SegmentName(7)))
	if err != nil || string(old) != "old" {
		t.Fatalf("pre-existing segment modified: %q %v", old, err)
	}
}
