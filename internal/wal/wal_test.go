package wal

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mainline/internal/core"
	"mainline/internal/storage"
	"mainline/internal/txn"
)

func testTable(t *testing.T) (*txn.Manager, *core.DataTable) {
	t.Helper()
	reg := storage.NewRegistry()
	layout, err := storage.NewBlockLayout([]storage.AttrDef{storage.FixedAttr(8), storage.VarlenAttr()})
	if err != nil {
		t.Fatal(err)
	}
	return txn.NewManager(reg), core.NewDataTable(reg, layout, 1, "wal-test")
}

// memSink is an in-memory Sink with injectable failures.
type memSink struct {
	mu       sync.Mutex
	buf      bytes.Buffer
	synced   int
	failNext error
}

func (s *memSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failNext != nil {
		err := s.failNext
		s.failNext = nil
		return 0, err
	}
	return s.buf.Write(p)
}
func (s *memSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced++
	return nil
}
func (s *memSink) Close() error { return nil }
func (s *memSink) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func TestSerializerRoundTrip(t *testing.T) {
	_, table := testTable(t)
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0, 1})
	row := proj.NewRow()
	row.SetInt64(0, 42)
	row.SetVarlen(1, []byte("varlen-value"))

	var buf []byte
	buf = AppendRedo(buf, 7, txn.RedoRecord{TableID: 1, Slot: storage.NewTupleSlot(3, 4), Kind: storage.KindInsert, After: row})
	buf = AppendCommit(buf, 7, false)

	rec, rest, err := DecodeNext(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != recRedo || rec.CommitTs != 7 || rec.TableID != 1 || rec.Slot != storage.NewTupleSlot(3, 4) || rec.Kind != storage.KindInsert {
		t.Fatalf("redo header wrong: %+v", rec)
	}
	if len(rec.Cols) != 2 {
		t.Fatalf("cols = %d", len(rec.Cols))
	}
	if rec.Cols[0].Varlen || !bytes.Equal(rec.Cols[0].Value, row.FixedBytes(0)) {
		t.Fatal("fixed column wrong")
	}
	if !rec.Cols[1].Varlen || string(rec.Cols[1].Value) != "varlen-value" {
		t.Fatal("varlen column wrong")
	}
	rec2, rest, err := DecodeNext(rest)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Type != recCommit || rec2.CommitTs != 7 || rec2.ReadOnly {
		t.Fatalf("commit record wrong: %+v", rec2)
	}
	if len(rest) != 0 {
		t.Fatal("trailing bytes")
	}
}

func TestSerializerNulls(t *testing.T) {
	_, table := testTable(t)
	proj := storage.MustProjection(table.Layout(), []storage.ColumnID{0, 1})
	row := proj.NewRow()
	row.SetNull(0)
	row.SetNull(1)
	buf := AppendRedo(nil, 1, txn.RedoRecord{TableID: 1, Slot: 1 << 20, Kind: storage.KindUpdate, After: row})
	rec, _, err := DecodeNext(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Cols[0].Null || !rec.Cols[1].Null {
		t.Fatal("nulls lost")
	}
}

func TestDecodeTornTail(t *testing.T) {
	buf := AppendCommit(nil, 9, false)
	for cut := 1; cut < len(buf); cut++ {
		rec, rest, err := DecodeNext(buf[:cut])
		if err != nil || rec != nil || len(rest) != cut {
			t.Fatalf("cut %d: rec=%v err=%v", cut, rec, err)
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	buf := AppendCommit(nil, 9, false)
	buf[len(buf)-1] ^= 0xFF
	if _, _, err := DecodeNext(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitAndCallbacks(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())

	var mu sync.Mutex
	durable := 0
	for i := 0; i < 5; i++ {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, []byte("v"))
		if _, err := table.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		m.Commit(tx, func(error) { mu.Lock(); durable++; mu.Unlock() })
	}
	mu.Lock()
	if durable != 0 {
		mu.Unlock()
		t.Fatal("callback before flush")
	}
	mu.Unlock()
	lm.FlushOnce()
	mu.Lock()
	if durable != 5 {
		mu.Unlock()
		t.Fatalf("durable = %d", durable)
	}
	mu.Unlock()
	txns, bytesW, syncs := lm.Stats()
	if txns != 5 || bytesW == 0 || syncs != 1 {
		t.Fatalf("stats: %d %d %d", txns, bytesW, syncs)
	}
}

func TestReadOnlyCommitSkipsWrite(t *testing.T) {
	m, _ := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())
	fired := false
	tx := m.Begin()
	m.Commit(tx, func(error) { fired = true })
	lm.FlushOnce()
	if !fired {
		t.Fatal("read-only callback not fired")
	}
	// A commit record is written (the paper requires read-only commit
	// records in the queue) but it is marked read-only so recovery ignores
	// it.
	rec, _, err := DecodeNext(sink.bytes())
	if err != nil || rec == nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.Type != recCommit || !rec.ReadOnly {
		t.Fatalf("record: %+v", rec)
	}
}

func TestBackgroundFlush(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())
	lm.Start(time.Millisecond)
	defer lm.Stop()

	done := make(chan struct{})
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 1)
	row.SetVarlen(1, []byte("x"))
	if _, err := table.Insert(tx, row); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, func(error) { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("background flush never fired callback")
	}
}

func TestFlushErrorSurvivable(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{failNext: errors.New("disk on fire")}
	lm := NewLogManager(sink)
	var got error
	lm.OnError = func(err error) { got = err }
	m.SetCommitHook(lm.Hook())
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 1)
	if _, err := table.Insert(tx, row); err != nil {
		t.Fatal(err)
	}
	var derr error
	fired := false
	m.Commit(tx, func(err error) { fired = true; derr = err })
	lm.FlushOnce()
	if got == nil {
		t.Fatal("error not surfaced")
	}
	// Fail-stop for durability: the waiter is failed, not left hanging —
	// and never acked with a nil error.
	if !fired {
		t.Fatal("durability callback not failed on flush error")
	}
	if !errors.Is(derr, ErrLogFailed) {
		t.Fatalf("callback error = %v, want ErrLogFailed", derr)
	}
	if lm.FailedFlushes() != 1 {
		t.Fatalf("failed flushes = %d", lm.FailedFlushes())
	}
}

// End-to-end: run a workload with logging, "crash", recover into a fresh
// engine, verify contents.
func TestRecoveryEndToEnd(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())

	var slots []storage.TupleSlot
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		row := table.AllColumnsProjection().NewRow()
		row.SetInt64(0, int64(i))
		row.SetVarlen(1, []byte("name-of-a-row-that-spills"))
		slot, err := table.Insert(tx, row)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, slot)
		m.Commit(tx, nil)
	}
	// Update row 3, delete row 5.
	tx := m.Begin()
	u := storage.MustProjection(table.Layout(), []storage.ColumnID{0}).NewRow()
	u.SetInt64(0, 333)
	if err := table.Update(tx, slots[3], u); err != nil {
		t.Fatal(err)
	}
	if err := table.Delete(tx, slots[5]); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	// An uncommitted transaction at crash time must be discarded: enqueue
	// redo records without a commit record by writing them manually.
	lm.FlushOnce()
	img := sink.bytes()
	orphan := AppendRedo(nil, 999999, txn.RedoRecord{TableID: 1, Slot: slots[0], Kind: storage.KindDelete})
	img = append(img, orphan...)

	// Recover into a fresh engine.
	m2, table2 := testTable(t)
	res, err := Replay(img, m2, map[uint32]*core.DataTable{1: table2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnsApplied != 11 {
		t.Fatalf("applied = %d", res.TxnsApplied)
	}
	if res.TxnsDiscarded != 1 {
		t.Fatalf("discarded = %d", res.TxnsDiscarded)
	}

	check := m2.Begin()
	defer m2.Commit(check, nil)
	got := map[int64]bool{}
	proj := storage.MustProjection(table2.Layout(), []storage.ColumnID{0})
	_ = table2.Scan(check, proj, func(_ storage.TupleSlot, row *storage.ProjectedRow) bool {
		got[row.Int64(0)] = true
		return true
	})
	if len(got) != 9 {
		t.Fatalf("recovered %d rows: %v", len(got), got)
	}
	if got[5] {
		t.Fatal("deleted row recovered")
	}
	if got[3] || !got[333] {
		t.Fatal("update not recovered")
	}
}

func TestRecoveryTornTail(t *testing.T) {
	m, table := testTable(t)
	sink := &memSink{}
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 1)
	row.SetVarlen(1, []byte("x"))
	if _, err := table.Insert(tx, row); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	lm.FlushOnce()
	img := sink.bytes()
	img = append(img, 0xAB, 0xCD) // torn partial frame

	m2, table2 := testTable(t)
	res, err := Replay(img, m2, map[uint32]*core.DataTable{1: table2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TornTail || res.TxnsApplied != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRecoverFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	sink, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	m, table := testTable(t)
	lm := NewLogManager(sink)
	m.SetCommitHook(lm.Hook())
	tx := m.Begin()
	row := table.AllColumnsProjection().NewRow()
	row.SetInt64(0, 77)
	row.SetVarlen(1, []byte("persisted"))
	if _, err := table.Insert(tx, row); err != nil {
		t.Fatal(err)
	}
	m.Commit(tx, nil)
	lm.FlushOnce()
	if err := lm.Close(); err != nil {
		t.Fatal(err)
	}

	m2, table2 := testTable(t)
	res, err := Recover(path, m2, map[uint32]*core.DataTable{1: table2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnsApplied != 1 || res.RecordsApplied != 1 {
		t.Fatalf("res = %+v", res)
	}
	check := m2.Begin()
	defer m2.Commit(check, nil)
	if table2.CountVisible(check) != 1 {
		t.Fatal("row not recovered")
	}
	// Missing file is not an error.
	res2, err := Recover(filepath.Join(dir, "missing.log"), m2, nil)
	if err != nil || res2.TxnsApplied != 0 {
		t.Fatalf("missing log: %v %+v", err, res2)
	}
}
