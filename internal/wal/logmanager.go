package wal

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mainline/internal/txn"
)

// Sink abstracts the durable device so tests can inject failures and
// benchmarks can swap in a null device.
type Sink interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FileSink is the production sink: an append-only file.
type FileSink struct{ f *os.File }

// OpenFileSink opens (creating or appending) the log file at path.
func OpenFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	return &FileSink{f: f}, nil
}

// Write appends to the file.
func (s *FileSink) Write(p []byte) (int, error) { return s.f.Write(p) }

// Sync fsyncs the file.
func (s *FileSink) Sync() error { return s.f.Sync() }

// Close closes the file.
func (s *FileSink) Close() error { return s.f.Close() }

// LogManager drains the commit flush queue, serializes redo buffers, groups
// fsyncs, and fires durability callbacks (§3.4). One goroutine owns the
// sink; transactions only enqueue.
type LogManager struct {
	sink Sink

	mu      sync.Mutex
	queue   []*txn.Transaction
	nudge   chan struct{}
	stopCh  chan struct{}
	doneCh  chan struct{}
	started atomic.Bool

	// serialized batch buffer, reused across flushes
	buf []byte

	// Stats.
	txnsLogged    atomic.Int64
	bytesWritten  atomic.Int64
	syncs         atomic.Int64
	failedFlushes atomic.Int64

	// OnError receives background flush errors (default: panic, because a
	// storage engine must not silently lose durability).
	OnError func(error)
}

// NewLogManager creates a manager writing to sink.
func NewLogManager(sink Sink) *LogManager {
	return &LogManager{
		sink:  sink,
		nudge: make(chan struct{}, 1),
		OnError: func(err error) {
			panic(fmt.Sprintf("wal: flush failed: %v", err))
		},
	}
}

// Hook returns the commit hook to install on the transaction manager: it
// appends the committed transaction to the flush queue. The rest of the
// system treats the transaction as committed immediately; results are
// published to clients only via the durability callback.
func (l *LogManager) Hook() txn.CommitHook {
	return func(t *txn.Transaction) {
		l.mu.Lock()
		l.queue = append(l.queue, t)
		l.mu.Unlock()
		select {
		case l.nudge <- struct{}{}:
		default:
		}
	}
}

// Start launches the flush goroutine. interval bounds how long a commit may
// wait for its group; the queue nudge makes idle-system commits flush
// immediately.
func (l *LogManager) Start(interval time.Duration) {
	if l.started.Swap(true) {
		return
	}
	l.stopCh = make(chan struct{})
	l.doneCh = make(chan struct{})
	go func() {
		defer close(l.doneCh)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-l.stopCh:
				l.FlushOnce()
				return
			case <-ticker.C:
				l.FlushOnce()
			case <-l.nudge:
				l.FlushOnce()
			}
		}
	}()
}

// Stop drains outstanding commits and halts the flush goroutine.
func (l *LogManager) Stop() {
	if !l.started.Swap(false) {
		return
	}
	close(l.stopCh)
	<-l.doneCh
}

// FlushOnce serializes every queued transaction, writes and syncs the sink,
// then fires durability callbacks — one group commit.
func (l *LogManager) FlushOnce() {
	l.mu.Lock()
	batch := l.queue
	l.queue = nil
	l.mu.Unlock()
	if len(batch) == 0 {
		return
	}

	buf := l.buf[:0]
	for _, t := range batch {
		redos := t.RedoRecords()
		// Read-only transactions get a commit record in the queue but the
		// manager skips writing it (paper §3.4); the callback still fires.
		if len(redos) == 0 {
			buf = AppendCommit(buf, t.CommitTs(), true)
			continue
		}
		for _, r := range redos {
			buf = AppendRedo(buf, t.CommitTs(), r)
		}
		buf = AppendCommit(buf, t.CommitTs(), false)
	}
	l.buf = buf

	if _, err := l.sink.Write(buf); err != nil {
		l.failedFlushes.Add(1)
		l.OnError(err)
		return
	}
	if err := l.sink.Sync(); err != nil {
		l.failedFlushes.Add(1)
		l.OnError(err)
		return
	}
	l.syncs.Add(1)
	l.bytesWritten.Add(int64(len(buf)))
	l.txnsLogged.Add(int64(len(batch)))

	// Durability achieved: release the commit callbacks.
	for _, t := range batch {
		t.InvokeDurableCallback()
	}
}

// Stats reports lifetime counters: transactions logged, bytes written, and
// fsync batches.
func (l *LogManager) Stats() (txns, bytes, syncs int64) {
	return l.txnsLogged.Load(), l.bytesWritten.Load(), l.syncs.Load()
}

// FailedFlushes reports flush errors survived via OnError.
func (l *LogManager) FailedFlushes() int64 { return l.failedFlushes.Load() }

// Close stops the manager and closes the sink.
func (l *LogManager) Close() error {
	l.Stop()
	return l.sink.Close()
}
