package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mainline/internal/fault"
	"mainline/internal/obs"
	"mainline/internal/txn"
)

// ErrLogFailed marks every durability callback failed by a wedged log
// manager: a WAL write or fsync error is fail-stop for durability — the
// group that hit it and everything queued behind it are failed, never
// acked. Failed callbacks receive an error wrapping both ErrLogFailed
// and the root cause.
var ErrLogFailed = errors.New("wal: log failed; durability unavailable")

// Sink abstracts the durable device so tests can inject failures and
// benchmarks can swap in a null device.
type Sink interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FileSink is the production sink: an append-only file.
type FileSink struct{ f fault.File }

// OpenFileSink opens (creating or appending) the log file at path on the
// real filesystem.
func OpenFileSink(path string) (*FileSink, error) {
	return OpenFileSinkFS(fault.OS{}, path)
}

// OpenFileSinkFS opens (creating or appending) the log file at path
// through fsys, so fault injection covers the single-file WAL too.
func OpenFileSinkFS(fsys fault.FS, path string) (*FileSink, error) {
	if fsys == nil {
		fsys = fault.OS{}
	}
	f, err := fsys.Append(path)
	if err != nil {
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	return &FileSink{f: f}, nil
}

// Write appends to the file.
func (s *FileSink) Write(p []byte) (int, error) { return s.f.Write(p) }

// Sync fsyncs the file.
func (s *FileSink) Sync() error { return s.f.Sync() }

// Close closes the file.
func (s *FileSink) Close() error { return s.f.Close() }

// LatencySink wraps a Sink and imposes a minimum Sync duration, emulating a
// storage device with a fixed sync cost (benchmarks on filesystems whose
// fsync is near-free would otherwise measure only CPU). Group commit's
// value is amortizing exactly this latency across a batch.
type LatencySink struct {
	Inner Sink
	// SyncLatency is the minimum wall-clock cost of one Sync.
	SyncLatency time.Duration
}

// Write forwards to the inner sink.
func (s *LatencySink) Write(p []byte) (int, error) { return s.Inner.Write(p) }

// Sync forwards to the inner sink and pads the call out to SyncLatency.
func (s *LatencySink) Sync() error {
	start := time.Now()
	err := s.Inner.Sync()
	if rest := s.SyncLatency - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}
	return err
}

// Close closes the inner sink.
func (s *LatencySink) Close() error { return s.Inner.Close() }

// numEnqueueShards spreads committer enqueues across independent latches so
// the commit hook itself never becomes the serial section it exists to
// remove. Power of two; shard selection masks the commit timestamp.
const numEnqueueShards = 8

// pendingTxn is one committed transaction whose redo buffer has already
// been serialized (by its own committing goroutine) and awaits the group
// fsync. chunk is a pool pointer so recycling it does not box the slice
// header (staticcheck SA6002).
type pendingTxn struct {
	t     *txn.Transaction
	chunk *[]byte
}

// enqueueShard is one slice of the flush queue.
type enqueueShard struct {
	mu      sync.Mutex
	pending []pendingTxn
	_       [32]byte
}

// LogManager implements group commit (§3.4). Committers serialize their own
// redo buffers — spreading encoding work across all committing cores — and
// enqueue the resulting chunks into sharded pending lists; the flush
// goroutine coalesces every queued chunk into a single write+fsync and then
// fires durability callbacks. One goroutine owns the sink; transactions
// only enqueue.
type LogManager struct {
	sink Sink

	shards  [numEnqueueShards]enqueueShard
	queued  atomic.Int64 // enqueued but not yet drained
	nudge   chan struct{}
	stopCh  chan struct{}
	doneCh  chan struct{}
	started atomic.Bool

	// failed wedges the manager after a write or sync error: nothing
	// further is written, because bytes appended past a failed group
	// would break the dependency-closed prefix (a later transaction on
	// disk whose earlier dependency never landed). Wedging fails every
	// waiter — the failed group's and everything queued (see failFlush);
	// later Enqueues fail their callback immediately. The default
	// OnError panics; survivable OnError overrides (the engine's
	// degraded mode) observe FailedFlushes and must treat the log as
	// lost.
	failed atomic.Bool
	// failCause is the wrapped root cause handed to failed waiters.
	failCause atomic.Pointer[error]

	// chunkPool recycles per-transaction serialization buffers.
	chunkPool sync.Pool

	// flushMu serializes FlushOnce callers (background loop vs manual).
	flushMu sync.Mutex
	// buf is the coalesced batch buffer, reused across flushes.
	buf []byte
	// frontier reports the manager's commit frontier (txn.CommitFrontier);
	// nil disables dependency-closed flushing (every drained chunk is
	// written immediately) — acceptable for single-threaded use, required
	// to be set for concurrent durable commits. Set via Attach (before
	// Start).
	frontier func() uint64

	// Stats.
	txnsLogged    atomic.Int64
	bytesWritten  atomic.Int64
	syncs         atomic.Int64
	failedFlushes atomic.Int64

	// metrics are the group-commit instruments; obsOn gates the
	// time.Now() calls so an unmetered manager pays nothing.
	metrics Metrics
	obsOn   bool

	// OnError receives background flush errors (default: panic, because a
	// storage engine must not silently lose durability).
	OnError func(error)

	// SyncDelay is how long the flusher waits after the first enqueue
	// before draining, letting a group form instead of syncing the first
	// committer alone (MySQL's binlog group-commit sync delay). 0 flushes
	// immediately — lowest latency, smallest groups. Set before Start.
	SyncDelay time.Duration
}

// NewLogManager creates a manager writing to sink.
func NewLogManager(sink Sink) *LogManager {
	l := &LogManager{
		sink:  sink,
		nudge: make(chan struct{}, 1),
		OnError: func(err error) {
			panic(fmt.Sprintf("wal: flush failed: %v", err))
		},
	}
	l.chunkPool.New = func() any { b := make([]byte, 0, 512); return &b }
	return l
}

// OpenPipeline assembles the whole group-commit pipeline in one call: a
// file sink at path (wrapped in a LatencySink when syncLatency > 0), a
// log manager with the given group-formation window, frontier attachment
// to m, and the background flusher at flushInterval. Close the returned
// manager to drain and release the file.
func OpenPipeline(path string, m *txn.Manager, syncLatency, syncDelay, flushInterval time.Duration) (*LogManager, error) {
	fileSink, err := OpenFileSink(path)
	if err != nil {
		return nil, err
	}
	var sink Sink = fileSink
	if syncLatency > 0 {
		sink = &LatencySink{Inner: fileSink, SyncLatency: syncLatency}
	}
	l := NewLogManager(sink)
	l.SyncDelay = syncDelay
	l.Attach(m)
	l.Start(flushInterval)
	return l, nil
}

// Metrics is the group-commit pipeline's observability hook set. Every
// field is optional; install with SetMetrics before Start.
type Metrics struct {
	// SyncLatency observes the wall time of one group's write+fsync.
	SyncLatency *obs.Histogram
	// GroupTxns observes the number of transactions coalesced per fsync
	// — the group-commit amortization the paper leans on (§3.4).
	GroupTxns *obs.Histogram
	// GroupBytes observes the bytes written per fsync.
	GroupBytes *obs.Histogram
	// FlushDuty accounts flusher busy time (write+sync, not the
	// group-formation wait).
	FlushDuty *obs.Duty
}

// SetMetrics installs the group-commit instruments. Call before Start.
func (l *LogManager) SetMetrics(mt Metrics) {
	l.metrics = mt
	l.obsOn = mt.SyncLatency != nil || mt.GroupTxns != nil ||
		mt.GroupBytes != nil || mt.FlushDuty != nil
}

// Attach wires the log manager to the transaction manager: installs the
// commit hook and the commit-frontier source that keeps the written log
// prefix dependency-closed (see FlushOnce). Use this (rather than
// SetCommitHook(Hook()) alone) whenever transactions commit concurrently.
func (l *LogManager) Attach(m *txn.Manager) {
	l.frontier = m.CommitFrontier
	m.SetCommitHook(l.Hook())
}

// Hook returns the commit hook to install on the transaction manager. It
// runs on the committing goroutine, inside its commit latch shard: it
// serializes the transaction's redo buffer into a pooled chunk, appends it
// to an enqueue shard, and nudges the flusher. The rest of the system
// treats the transaction as committed immediately; results are published
// to clients only via the durability callback.
func (l *LogManager) Hook() txn.CommitHook {
	return func(t *txn.Transaction) {
		l.Enqueue(t)
	}
}

// Enqueue serializes t's redo buffer and adds it to the flush queue.
// Read-only transactions contribute only a read-only commit record (the
// paper requires their presence in the queue; recovery ignores them).
func (l *LogManager) Enqueue(t *txn.Transaction) {
	if l.failed.Load() {
		// The log is wedged: this chunk can never be written, and the
		// flusher that would have acked it is gone. Fail the committer's
		// durability wait immediately instead of hanging it.
		t.FinishDurable(l.wedgedErr())
		return
	}
	cp := l.chunkPool.Get().(*[]byte)
	chunk := (*cp)[:0]
	redos := t.RedoRecords()
	if len(redos) == 0 {
		chunk = AppendCommit(chunk, t.CommitTs(), true)
	} else {
		for _, r := range redos {
			chunk = AppendRedo(chunk, t.CommitTs(), r)
		}
		chunk = AppendCommit(chunk, t.CommitTs(), false)
	}
	*cp = chunk

	sh := &l.shards[t.CommitTs()&(numEnqueueShards-1)]
	sh.mu.Lock()
	sh.pending = append(sh.pending, pendingTxn{t: t, chunk: cp})
	sh.mu.Unlock()
	l.queued.Add(1)

	// Re-check after publishing: a concurrent failFlush may have drained
	// the shards just before our append landed. Sequential consistency of
	// the two atomic ops guarantees either failFlush's drain sees our
	// entry or this load sees failed — never neither — so no waiter can
	// slip between the wedge and the drain and hang.
	if l.failed.Load() {
		l.failQueued(l.wedgedErr())
		return
	}

	select {
	case l.nudge <- struct{}{}:
	default:
	}
}

// Start launches the flush goroutine. interval bounds how long a commit may
// wait for its group; the queue nudge makes idle-system commits flush
// immediately, so groups form only under concurrency.
func (l *LogManager) Start(interval time.Duration) {
	if l.started.Swap(true) {
		return
	}
	l.stopCh = make(chan struct{})
	l.doneCh = make(chan struct{})
	go func() {
		defer close(l.doneCh)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-l.stopCh:
				l.FlushOnce()
				return
			case <-ticker.C:
				l.groupWindow()
				l.FlushOnce()
			case <-l.nudge:
				l.groupWindow()
				l.FlushOnce()
			}
		}
	}()
}

// groupWindow waits out the SyncDelay group-formation window before a
// flush with work pending. Applied on every wakeup — ticker included —
// so select's pseudo-random choice between ready arms cannot cut groups
// short.
func (l *LogManager) groupWindow() {
	if l.SyncDelay > 0 && l.queued.Load() > 0 {
		time.Sleep(l.SyncDelay)
	}
}

// Stop halts the flush goroutine and drains outstanding commits. Callers
// must not race new Commits past Stop (finish or join committers first);
// every commit enqueued before Stop is flushed and its durability callback
// fired, even if it slipped past the flusher's final pass.
func (l *LogManager) Stop() {
	if l.started.Swap(false) {
		close(l.stopCh)
		<-l.doneCh
	}
	// Drain even if the background flusher never ran (manual-flush mode):
	// the contract covers every enqueued commit. A wedged (failed) log
	// cannot make progress, so it is exempt.
	for l.queued.Load() > 0 && !l.failed.Load() {
		l.FlushOnce()
	}
}

// Abandon halts the flush goroutine WITHOUT the final flush or drain —
// the crash-simulation counterpart of Stop. Queued chunks are dropped
// exactly as a process kill would drop them: their waiters were never
// acked durable, so losing them breaks no promise. The manager is wedged
// so a racing committer fails fast instead of queueing into the void.
func (l *LogManager) Abandon() {
	werr := fmt.Errorf("%w: abandoned (simulated crash)", ErrLogFailed)
	l.failCause.Store(&werr)
	l.failed.Store(true)
	if l.started.Swap(false) {
		close(l.stopCh)
		<-l.doneCh
	}
	// Fail (rather than strand) any waiter still queued: a real kill
	// would vaporize its goroutine, but an in-process simulation must not
	// leave it blocked on a durability ack that can never come.
	l.failQueued(l.wedgedErr())
}

// FlushOnce drains the enqueue shards, coalesces pre-serialized chunks
// into one sink write, fsyncs, then fires the group's durability callbacks
// — one group commit. A write or sync error is fail-stop for durability:
// the fsync gate was never passed, so EVERY waiter in the group is failed
// (none may be acked durable against an unsynced log), everything still
// queued is failed behind it, the manager wedges, and OnError observes
// the root cause last (see failFlush).
//
// With a frontier source attached (Attach), the written prefix of the log
// is kept DEPENDENCY-CLOSED: only chunks whose commit timestamp lies below
// the write frontier — the minimum of the manager's commit frontier and
// the oldest chunk still waiting in the enqueue shards — are written this
// round (the rest are re-queued), and each group is written in ascending
// timestamp order. Consequence: for any transaction on disk, every
// committed transaction with a smaller timestamp — everything it could
// have read from — is on disk at or before it, even across a torn tail.
// Without this, a crash could preserve a dependent transaction while
// losing its dependency, and recovery (which replays exactly the
// timestamps whose commit records survived) would fail on the missing
// slot or materialize a state that never existed.
func (l *LogManager) FlushOnce() {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	if l.failed.Load() || l.queued.Load() == 0 {
		return
	}
	var batch []pendingTxn
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		batch = append(batch, sh.pending...)
		sh.pending = nil
		sh.mu.Unlock()
	}
	if len(batch) == 0 {
		return
	}
	l.queued.Add(int64(-len(batch)))

	if l.frontier != nil {
		// Write frontier: the manager's latch barrier guarantees every
		// commit ts below it has reached our queue; the waiting-chunk scan
		// (which must run after the barrier) covers chunks enqueued since
		// the drain above. Chunks at or above the frontier wait for the
		// next group.
		frontier := l.frontier()
		for i := range l.shards {
			sh := &l.shards[i]
			sh.mu.Lock()
			for _, p := range sh.pending {
				if ts := p.t.CommitTs(); ts < frontier {
					frontier = ts
				}
			}
			sh.mu.Unlock()
		}
		write := batch[:0]
		var requeue []pendingTxn
		for _, p := range batch {
			if p.t.CommitTs() < frontier {
				write = append(write, p)
			} else {
				requeue = append(requeue, p)
			}
		}
		batch = write
		if len(requeue) > 0 {
			for _, p := range requeue {
				sh := &l.shards[p.t.CommitTs()&(numEnqueueShards-1)]
				sh.mu.Lock()
				sh.pending = append(sh.pending, p)
				sh.mu.Unlock()
			}
			l.queued.Add(int64(len(requeue)))
		}
		if len(batch) == 0 {
			return
		}
		// Ascending timestamp order makes every prefix of the write — and
		// therefore any torn tail — dependency-closed too.
		sort.Slice(batch, func(i, j int) bool {
			return batch[i].t.CommitTs() < batch[j].t.CommitTs()
		})
	}

	buf := l.buf[:0]
	var groupMaxTs uint64
	for _, p := range batch {
		buf = append(buf, *p.chunk...)
		if ts := p.t.CommitTs(); ts > groupMaxTs {
			groupMaxTs = ts
		}
	}
	l.buf = buf
	for _, p := range batch {
		*p.chunk = (*p.chunk)[:0]
		l.chunkPool.Put(p.chunk)
	}

	var t0 time.Time
	if l.obsOn {
		t0 = time.Now()
	}
	var err error
	if gs, ok := l.sink.(GroupSink); ok {
		// Segmented sinks rotate between groups and track per-segment
		// maximum commit timestamps, which makes checkpoint truncation an
		// exact whole-file operation.
		_, err = gs.WriteGroup(buf, groupMaxTs)
	} else {
		_, err = l.sink.Write(buf)
	}
	if err != nil {
		l.failFlush(batch, err)
		return
	}
	if err := l.sink.Sync(); err != nil {
		l.failFlush(batch, err)
		return
	}
	l.syncs.Add(1)
	l.bytesWritten.Add(int64(len(buf)))
	l.txnsLogged.Add(int64(len(batch)))
	if l.obsOn {
		d := time.Since(t0)
		l.metrics.SyncLatency.Record(d)
		l.metrics.FlushDuty.Observe(d)
		l.metrics.GroupTxns.RecordValue(int64(len(batch)))
		l.metrics.GroupBytes.RecordValue(int64(len(buf)))
	}

	// Durability achieved — and with a frontier, every dependency of every
	// member is already on disk, so acks are safe to release immediately.
	for _, p := range batch {
		p.t.FinishDurable(nil)
	}
}

// failFlush is the fail-stop path of a group commit: the write or sync
// failed, so durability was NOT achieved for this group — and can never
// be achieved for anything behind it, because appending past a failed
// group would break the dependency-closed prefix. The manager wedges
// (failed = true) FIRST, then fails every waiter: the group's members
// (the fsync-gate rule — no transaction is acked durable against an
// unsynced log), then everything still queued in the enqueue shards.
// OnError runs last with the root cause, so an engine-level handler
// (degraded mode) observes a manager that is already sealed and drained.
func (l *LogManager) failFlush(batch []pendingTxn, cause error) {
	werr := fmt.Errorf("%w: %w", ErrLogFailed, cause)
	l.failCause.Store(&werr)
	l.failed.Store(true)
	l.failedFlushes.Add(1)
	// The group's chunks were already recycled before the sink write; only
	// the callbacks remain to fire.
	for _, p := range batch {
		p.t.FinishDurable(werr)
	}
	l.failQueued(werr)
	l.OnError(cause)
}

// failQueued drains the enqueue shards and fails each waiter's
// durability callback: their chunks can never be written (the log is
// wedged), and leaving them queued would hang durable committers
// forever. Also run by Enqueue when it loses the race with a concurrent
// wedge (see the re-check there).
func (l *LogManager) failQueued(err error) {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		pending := sh.pending
		sh.pending = nil
		sh.mu.Unlock()
		if len(pending) == 0 {
			continue
		}
		l.queued.Add(int64(-len(pending)))
		for _, p := range pending {
			*p.chunk = (*p.chunk)[:0]
			l.chunkPool.Put(p.chunk)
			p.t.FinishDurable(err)
		}
	}
}

// wedgedErr returns the error handed to waiters failed after the wedge.
func (l *LogManager) wedgedErr() error {
	if e := l.failCause.Load(); e != nil {
		return *e
	}
	return ErrLogFailed
}

// Stats reports lifetime counters: transactions logged, bytes written, and
// fsync batches. txns/syncs is the achieved mean group-commit size.
func (l *LogManager) Stats() (txns, bytes, syncs int64) {
	return l.txnsLogged.Load(), l.bytesWritten.Load(), l.syncs.Load()
}

// FailedFlushes reports flush errors survived via OnError.
func (l *LogManager) FailedFlushes() int64 { return l.failedFlushes.Load() }

// Truncate discards WAL segments wholly covered by a checkpoint at
// snapshot timestamp ts: the active segment is sealed and every sealed
// segment whose maximum commit timestamp is <= ts is deleted. It runs
// under the flush lock so it never races a group write. Sinks without
// segment support (plain files, test sinks) report (0, nil).
func (l *LogManager) Truncate(ts uint64) (int, error) {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	if tr, ok := l.sink.(Truncator); ok {
		return tr.TruncateThrough(ts)
	}
	return 0, nil
}

// Close stops the manager and closes the sink.
func (l *LogManager) Close() error {
	l.Stop()
	return l.sink.Close()
}
