package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVarlenEntryInlineCodec(t *testing.T) {
	entry := make([]byte, VarlenAttrSize)
	for _, val := range [][]byte{nil, {}, []byte("a"), []byte("abcd"), []byte("abcdefghijkl")} {
		varlenEntryPutInline(entry, val)
		if !varlenEntryIsInline(entry) {
			t.Fatalf("value %q not inline", val)
		}
		if got := varlenEntryInline(entry); !bytes.Equal(got, val) {
			t.Fatalf("inline %q -> %q", val, got)
		}
		if int(varlenEntrySize(entry)) != len(val) {
			t.Fatalf("size = %d", varlenEntrySize(entry))
		}
	}
}

func TestVarlenEntrySpilledCodec(t *testing.T) {
	entry := make([]byte, VarlenAttrSize)
	val := []byte("a-much-longer-value-spilled")
	varlenEntryPutSpilled(entry, uint32(len(val)), val[:4], makeArenaHandle(17))
	if varlenEntryIsInline(entry) {
		t.Fatal("spilled entry reads as inline")
	}
	if varlenEntrySize(entry) != uint32(len(val)) {
		t.Fatal("size wrong")
	}
	if !bytes.Equal(varlenEntryPrefix(entry), val[:4]) {
		t.Fatal("prefix wrong")
	}
	h := varlenEntryHandle(entry)
	if handleIsFrozen(h) || handleValue(h) != 17 {
		t.Fatalf("handle = %x", h)
	}
	varlenEntryPutSpilled(entry, uint32(len(val)), val[:4], makeFrozenHandle(4096))
	h = varlenEntryHandle(entry)
	if !handleIsFrozen(h) || handleValue(h) != 4096 {
		t.Fatalf("frozen handle = %x", h)
	}
}

// Property: the inline codec round-trips every value up to the limit.
func TestQuickVarlenInline(t *testing.T) {
	entry := make([]byte, VarlenAttrSize)
	f := func(val []byte) bool {
		if len(val) > VarlenInlineLimit {
			val = val[:VarlenInlineLimit]
		}
		varlenEntryPutInline(entry, val)
		return bytes.Equal(varlenEntryInline(entry), val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
