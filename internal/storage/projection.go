package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mainline/internal/util"
)

// ErrDuplicateColumn is returned by NewProjection when the same column is
// named twice. Projections back rows, batches, and scans whose per-column
// storage is positional — a duplicated column would silently alias one
// value slot under two positions, so it is rejected with a typed error the
// public API surfaces as mainline.ErrDuplicateColumn.
var ErrDuplicateColumn = errors.New("storage: projection names a column twice")

// Projection describes a subset of a layout's columns laid out as a compact
// row: fixed-width attributes packed into one byte buffer, variable-length
// attributes carried as byte-slice references. It is the shape of delta
// records (before-images), redo records (after-images), and materialized
// tuples handed to transactions — the paper's ProjectedRow concept.
//
// A Projection is computed once and shared; ProjectedRows instantiated from
// it are cheap (one buffer allocation) and reusable.
type Projection struct {
	Layout *BlockLayout
	Cols   []ColumnID

	fixedOff  []int // per projected column: offset into the fixed buffer, -1 if varlen
	varIdx    []int // per projected column: index into vars, -1 if fixed
	fixedSize int
	numVarlen int
}

// NewProjection builds a projection of cols over layout. Column IDs must be
// valid and unique.
func NewProjection(layout *BlockLayout, cols []ColumnID) (*Projection, error) {
	p := &Projection{
		Layout:   layout,
		Cols:     append([]ColumnID(nil), cols...),
		fixedOff: make([]int, len(cols)),
		varIdx:   make([]int, len(cols)),
	}
	seen := make(map[ColumnID]bool, len(cols))
	for i, c := range cols {
		if int(c) >= layout.NumColumns() {
			return nil, fmt.Errorf("storage: projection column %d out of range", c)
		}
		if seen[c] {
			return nil, fmt.Errorf("storage: projection column %d duplicated: %w", c, ErrDuplicateColumn)
		}
		seen[c] = true
		if layout.IsVarlen(c) {
			p.fixedOff[i] = -1
			p.varIdx[i] = p.numVarlen
			p.numVarlen++
		} else {
			p.fixedOff[i] = p.fixedSize
			p.varIdx[i] = -1
			p.fixedSize += layout.AttrSize(c)
		}
	}
	return p, nil
}

// MustProjection is NewProjection that panics on error; for statically
// correct call sites (tests, generated plans).
func MustProjection(layout *BlockLayout, cols []ColumnID) *Projection {
	p, err := NewProjection(layout, cols)
	if err != nil {
		panic(err)
	}
	return p
}

// NumCols returns the number of projected columns.
func (p *Projection) NumCols() int { return len(p.Cols) }

// IsVarlenAt reports whether projected column i is variable-length.
func (p *Projection) IsVarlenAt(i int) bool { return p.varIdx[i] >= 0 }

// IndexOf returns the projection-local index of column c, or -1.
func (p *Projection) IndexOf(c ColumnID) int {
	for i, col := range p.Cols {
		if col == c {
			return i
		}
	}
	return -1
}

// NewRow allocates a ProjectedRow for this projection.
func (p *Projection) NewRow() *ProjectedRow {
	return &ProjectedRow{
		P:     p,
		Nulls: util.NewBitmap(len(p.Cols)),
		fixed: make([]byte, p.fixedSize),
		vars:  make([][]byte, p.numVarlen),
	}
}

// ProjectedRow is a materialized partial tuple: values for each projected
// column plus a null bitmap. The zero value is not usable; obtain rows from
// Projection.NewRow.
type ProjectedRow struct {
	P     *Projection
	Nulls util.Bitmap
	fixed []byte
	vars  [][]byte
}

// Reset clears all values and nulls for reuse.
func (r *ProjectedRow) Reset() {
	r.Nulls.ZeroAll()
	for i := range r.fixed {
		r.fixed[i] = 0
	}
	for i := range r.vars {
		r.vars[i] = nil
	}
}

// IsNull reports whether projected column i is null.
func (r *ProjectedRow) IsNull(i int) bool { return r.Nulls.Test(i) }

// SetNull marks projected column i null (and zeroes fixed storage so
// downstream Arrow buffers stay deterministic).
func (r *ProjectedRow) SetNull(i int) {
	r.Nulls.Set(i)
	if off := r.P.fixedOff[i]; off >= 0 {
		size := r.P.Layout.AttrSize(r.P.Cols[i])
		for j := 0; j < size; j++ {
			r.fixed[off+j] = 0
		}
	} else {
		r.vars[r.P.varIdx[i]] = nil
	}
}

// setValid clears the null bit.
func (r *ProjectedRow) setValid(i int) { r.Nulls.Clear(i) }

// FixedBytes returns the raw storage for fixed-width projected column i.
func (r *ProjectedRow) FixedBytes(i int) []byte {
	off := r.P.fixedOff[i]
	size := r.P.Layout.AttrSize(r.P.Cols[i])
	return r.fixed[off : off+size]
}

// SetInt64 stores v into projected column i (must be an 8-byte column).
func (r *ProjectedRow) SetInt64(i int, v int64) {
	binary.LittleEndian.PutUint64(r.FixedBytes(i), uint64(v))
	r.setValid(i)
}

// Int64 loads projected column i as int64.
func (r *ProjectedRow) Int64(i int) int64 {
	return int64(binary.LittleEndian.Uint64(r.FixedBytes(i)))
}

// SetInt32 stores v into projected column i (must be a 4-byte column).
func (r *ProjectedRow) SetInt32(i int, v int32) {
	binary.LittleEndian.PutUint32(r.FixedBytes(i), uint32(v))
	r.setValid(i)
}

// Int32 loads projected column i as int32.
func (r *ProjectedRow) Int32(i int) int32 {
	return int32(binary.LittleEndian.Uint32(r.FixedBytes(i)))
}

// SetInt16 stores v into projected column i (must be a 2-byte column).
func (r *ProjectedRow) SetInt16(i int, v int16) {
	binary.LittleEndian.PutUint16(r.FixedBytes(i), uint16(v))
	r.setValid(i)
}

// Int16 loads projected column i as int16.
func (r *ProjectedRow) Int16(i int) int16 {
	return int16(binary.LittleEndian.Uint16(r.FixedBytes(i)))
}

// SetInt8 stores v into projected column i (must be a 1-byte column).
func (r *ProjectedRow) SetInt8(i int, v int8) {
	r.FixedBytes(i)[0] = byte(v)
	r.setValid(i)
}

// Int8 loads projected column i as int8.
func (r *ProjectedRow) Int8(i int) int8 { return int8(r.FixedBytes(i)[0]) }

// SetFloat64 stores v into projected column i (must be an 8-byte column).
func (r *ProjectedRow) SetFloat64(i int, v float64) {
	binary.LittleEndian.PutUint64(r.FixedBytes(i), math.Float64bits(v))
	r.setValid(i)
}

// Float64 loads projected column i as float64.
func (r *ProjectedRow) Float64(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.FixedBytes(i)))
}

// SetVarlen stores a variable-length value into projected column i. The row
// references val without copying; callers that reuse val must copy first.
func (r *ProjectedRow) SetVarlen(i int, val []byte) {
	r.vars[r.P.varIdx[i]] = val
	r.setValid(i)
}

// Varlen returns the variable-length value of projected column i.
func (r *ProjectedRow) Varlen(i int) []byte {
	return r.vars[r.P.varIdx[i]]
}

// CopyFrom copies all values from src, which must share the projection.
func (r *ProjectedRow) CopyFrom(src *ProjectedRow) {
	copy(r.fixed, src.fixed)
	copy(r.Nulls, src.Nulls)
	copy(r.vars, src.vars)
}

// Clone returns a deep copy of the row's fixed storage (varlen values are
// shared by reference — they are immutable once written).
func (r *ProjectedRow) Clone() *ProjectedRow {
	c := r.P.NewRow()
	c.CopyFrom(r)
	return c
}

// ApplyDeltaTo overlays this row's values onto dst for every column present
// in both projections. Used when replaying before-images onto a
// materialized tuple during version-chain traversal.
func (r *ProjectedRow) ApplyDeltaTo(dst *ProjectedRow) {
	for i, c := range r.P.Cols {
		j := dst.P.IndexOf(c)
		if j < 0 {
			continue
		}
		if r.IsNull(i) {
			dst.SetNull(j)
			continue
		}
		if r.P.fixedOff[i] >= 0 {
			copy(dst.FixedBytes(j), r.FixedBytes(i))
			dst.setValid(j)
		} else {
			dst.SetVarlen(j, r.Varlen(i))
		}
	}
}

// SizeBytes estimates the row's memory footprint (for write-set accounting
// in the compaction-group experiments).
func (r *ProjectedRow) SizeBytes() int {
	n := len(r.fixed) + len(r.Nulls)
	for _, v := range r.vars {
		n += len(v)
	}
	return n
}
