package storage

import "sync/atomic"

// RecordKind distinguishes the three delta-record shapes (paper §3.1):
// updates carry a before-image of the modified attributes; inserts and
// deletes toggle the tuple's allocation state instead of its contents.
type RecordKind uint8

// Delta record kinds.
const (
	KindUpdate RecordKind = iota
	KindInsert
	KindDelete
)

// String names the kind for diagnostics.
func (k RecordKind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// UndoRecord is one delta on a tuple's version chain: a physical
// before-image of the modified attributes, stamped with the commit timestamp
// of the transaction that installed it. Chains are ordered newest-to-oldest
// and the head pointer lives in the block's version column.
//
// Records are allocated from a transaction's undo buffer (fixed-size
// segments drawn from a pool) and never move while reachable: the version
// chain holds direct pointers into them.
type UndoRecord struct {
	ts   atomic.Uint64
	next atomic.Pointer[UndoRecord]

	// Slot is the tuple this delta applies to.
	Slot TupleSlot
	// Kind classifies the operation that produced this record.
	Kind RecordKind
	// Delta holds the before-image of the modified attributes for updates;
	// nil for inserts and deletes.
	Delta *ProjectedRow
}

// Timestamp returns the record's commit timestamp (which carries the
// uncommitted flag bit while its transaction is in flight).
func (r *UndoRecord) Timestamp() uint64 { return r.ts.Load() }

// SetTimestamp stores ts; called at install time (uncommitted value) and in
// the commit critical section (final value).
func (r *UndoRecord) SetTimestamp(ts uint64) { r.ts.Store(ts) }

// Next returns the next-older record in the chain.
func (r *UndoRecord) Next() *UndoRecord { return r.next.Load() }

// SetNext links the next-older record; used when installing at a chain head
// and by the GC when truncating.
func (r *UndoRecord) SetNext(n *UndoRecord) { r.next.Store(n) }

// CompareAndSwapNext CASes the next pointer; the GC uses it to truncate a
// chain exactly once even with concurrent GC workers.
func (r *UndoRecord) CompareAndSwapNext(old, new *UndoRecord) bool {
	return r.next.CompareAndSwap(old, new)
}
