package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func projLayout(t *testing.T) *BlockLayout {
	t.Helper()
	layout, err := NewBlockLayout([]AttrDef{
		FixedAttr(8), VarlenAttr(), FixedAttr(4), FixedAttr(2), FixedAttr(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return layout
}

func TestProjectionConstruction(t *testing.T) {
	layout := projLayout(t)
	p, err := NewProjection(layout, []ColumnID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 3 {
		t.Fatalf("NumCols = %d", p.NumCols())
	}
	if p.IndexOf(2) != 2 || p.IndexOf(4) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if _, err := NewProjection(layout, []ColumnID{0, 0}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewProjection(layout, []ColumnID{99}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestProjectedRowFixedValues(t *testing.T) {
	layout := projLayout(t)
	p := MustProjection(layout, []ColumnID{0, 2, 3, 4})
	r := p.NewRow()
	r.SetInt64(0, -99)
	r.SetInt32(1, 1234)
	r.SetInt16(2, -5)
	r.SetInt8(3, 7)
	if r.Int64(0) != -99 || r.Int32(1) != 1234 || r.Int16(2) != -5 || r.Int8(3) != 7 {
		t.Fatal("fixed round-trip failed")
	}
	for i := 0; i < 4; i++ {
		if r.IsNull(i) {
			t.Fatalf("col %d null after set", i)
		}
	}
	r.SetNull(1)
	if !r.IsNull(1) || r.Int32(1) != 0 {
		t.Fatal("SetNull did not zero")
	}
}

func TestProjectedRowVarlen(t *testing.T) {
	layout := projLayout(t)
	p := MustProjection(layout, []ColumnID{1})
	r := p.NewRow()
	val := []byte("hello world, varlen")
	r.SetVarlen(0, val)
	if !bytes.Equal(r.Varlen(0), val) {
		t.Fatal("varlen round-trip failed")
	}
	r.SetNull(0)
	if r.Varlen(0) != nil || !r.IsNull(0) {
		t.Fatal("null varlen not cleared")
	}
}

func TestProjectedRowCloneAndCopy(t *testing.T) {
	layout := projLayout(t)
	p := MustProjection(layout, []ColumnID{0, 1})
	r := p.NewRow()
	r.SetInt64(0, 42)
	r.SetVarlen(1, []byte("abc"))
	c := r.Clone()
	r.SetInt64(0, 7) // mutate original
	if c.Int64(0) != 42 {
		t.Fatal("clone shares fixed storage")
	}
	if !bytes.Equal(c.Varlen(1), []byte("abc")) {
		t.Fatal("clone lost varlen")
	}
	c.Reset()
	if c.Int64(0) != 0 || c.Varlen(1) != nil {
		t.Fatal("reset incomplete")
	}
}

func TestApplyDeltaTo(t *testing.T) {
	layout := projLayout(t)
	full := MustProjection(layout, []ColumnID{0, 1, 2})
	delta := MustProjection(layout, []ColumnID{2, 0}) // different order, subset
	dst := full.NewRow()
	dst.SetInt64(0, 1)
	dst.SetVarlen(1, []byte("keep"))
	dst.SetInt32(2, 100)
	d := delta.NewRow()
	d.SetInt32(0, 999) // column 2
	d.SetInt64(1, -1)  // column 0
	d.ApplyDeltaTo(dst)
	if dst.Int64(0) != -1 {
		t.Fatalf("col 0 = %d", dst.Int64(0))
	}
	if !bytes.Equal(dst.Varlen(1), []byte("keep")) {
		t.Fatal("untouched column modified")
	}
	if dst.Int32(2) != 999 {
		t.Fatalf("col 2 = %d", dst.Int32(2))
	}
	// Null in delta propagates.
	d2 := delta.NewRow()
	d2.SetNull(0)
	d2.SetInt64(1, 5)
	d2.ApplyDeltaTo(dst)
	if !dst.IsNull(2) {
		t.Fatal("null not propagated")
	}
}

// Property: applying a before-image delta always restores the exact prior
// values for the covered columns.
func TestQuickDeltaRestores(t *testing.T) {
	layout := projLayout(t)
	p := MustProjection(layout, []ColumnID{0, 2})
	f := func(before, after int64, b32, a32 int32) bool {
		row := p.NewRow()
		row.SetInt64(0, before)
		row.SetInt32(1, b32)
		// Capture before-image.
		delta := row.Clone()
		// Mutate.
		row.SetInt64(0, after)
		row.SetInt32(1, a32)
		// Restore.
		delta.ApplyDeltaTo(row)
		return row.Int64(0) == before && row.Int32(1) == b32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUndoRecordChainOps(t *testing.T) {
	r1 := &UndoRecord{Kind: KindInsert}
	r2 := &UndoRecord{Kind: KindUpdate}
	r2.SetNext(r1)
	if r2.Next() != r1 {
		t.Fatal("SetNext/Next broken")
	}
	if !r2.CompareAndSwapNext(r1, nil) {
		t.Fatal("CAS next failed")
	}
	if r2.CompareAndSwapNext(r1, nil) {
		t.Fatal("stale CAS next succeeded")
	}
	r1.SetTimestamp(42)
	if r1.Timestamp() != 42 {
		t.Fatal("timestamp round-trip failed")
	}
	if KindUpdate.String() != "update" || KindInsert.String() != "insert" || KindDelete.String() != "delete" {
		t.Fatal("kind strings wrong")
	}
}
