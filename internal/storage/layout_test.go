package storage

import (
	"testing"
	"testing/quick"
)

func TestLayoutPaperGeometry(t *testing.T) {
	// The paper's transformation microbenchmark table: one 8-byte fixed
	// column plus one varlen column gives ~32K tuples per 1 MB block (§6.2).
	layout, err := NewBlockLayout([]AttrDef{FixedAttr(8), VarlenAttr()})
	if err != nil {
		t.Fatal(err)
	}
	if layout.NumSlots < 30000 || layout.NumSlots > 34000 {
		t.Fatalf("slots = %d, want ~32K like the paper", layout.NumSlots)
	}
	if layout.UsedBytes() > BlockSize {
		t.Fatalf("layout overflows block: %d", layout.UsedBytes())
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewBlockLayout(nil); err == nil {
		t.Fatal("empty layout accepted")
	}
	if _, err := NewBlockLayout([]AttrDef{{Size: 3}}); err == nil {
		t.Fatal("size-3 attribute accepted")
	}
	if _, err := NewBlockLayout([]AttrDef{{Size: 8, Varlen: true}}); err == nil {
		t.Fatal("varlen with wrong size accepted")
	}
}

func TestLayoutOffsetsAligned(t *testing.T) {
	layout, err := NewBlockLayout([]AttrDef{
		FixedAttr(1), FixedAttr(2), FixedAttr(4), FixedAttr(8), VarlenAttr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if layout.allocOff%8 != 0 {
		t.Fatal("alloc bitmap misaligned")
	}
	for i := range layout.Attrs {
		if layout.validOff[i]%8 != 0 {
			t.Fatalf("col %d validity misaligned", i)
		}
		if layout.dataOff[i]%8 != 0 {
			t.Fatalf("col %d data misaligned", i)
		}
	}
	// Regions must not overlap and must stay in bounds.
	prevEnd := layout.allocOff
	for i, a := range layout.Attrs {
		if layout.validOff[i] < prevEnd {
			t.Fatalf("col %d validity overlaps", i)
		}
		if layout.dataOff[i] < layout.validOff[i] {
			t.Fatalf("col %d data before validity", i)
		}
		prevEnd = layout.dataOff[i] + int(layout.NumSlots)*int(a.Size)
	}
	if prevEnd > BlockSize {
		t.Fatalf("layout ends at %d > block size", prevEnd)
	}
}

func TestLayoutWideTuples(t *testing.T) {
	// 64 8-byte attributes (Figure 11's widest row-vs-column point).
	attrs := make([]AttrDef, 64)
	for i := range attrs {
		attrs[i] = FixedAttr(8)
	}
	layout, err := NewBlockLayout(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if layout.NumSlots == 0 {
		t.Fatal("no slots for wide tuple")
	}
	// Rough capacity check: 64*8 + 8 version bytes = 520 B/tuple -> ~2000.
	if layout.NumSlots < 1500 || layout.NumSlots > 2100 {
		t.Fatalf("slots = %d, outside expected range", layout.NumSlots)
	}
}

// Property: any valid attribute mix produces a layout that fits the block
// and never overlaps regions.
func TestLayoutQuickFits(t *testing.T) {
	sizes := []uint16{1, 2, 4, 8}
	f := func(spec []byte) bool {
		if len(spec) == 0 {
			return true
		}
		if len(spec) > 100 {
			spec = spec[:100]
		}
		attrs := make([]AttrDef, len(spec))
		for i, s := range spec {
			if s%5 == 4 {
				attrs[i] = VarlenAttr()
			} else {
				attrs[i] = FixedAttr(sizes[s%4])
			}
		}
		layout, err := NewBlockLayout(attrs)
		if err != nil {
			return false
		}
		return layout.UsedBytes() <= BlockSize && layout.NumSlots > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllColumns(t *testing.T) {
	layout, _ := NewBlockLayout([]AttrDef{FixedAttr(8), FixedAttr(4), VarlenAttr()})
	cols := layout.AllColumns()
	if len(cols) != 3 || cols[0] != 0 || cols[2] != 2 {
		t.Fatalf("AllColumns = %v", cols)
	}
	if layout.TupleBytes() != 8+4+16+8 {
		t.Fatalf("TupleBytes = %d", layout.TupleBytes())
	}
}
