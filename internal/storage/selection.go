package storage

import "sync"

// SelectionVector is the batch-scan engine's late-materialization currency:
// an ordered list of row positions that survived a predicate. Kernels append
// matching positions; downstream consumers touch only the selected rows.
// Vectors are reusable and pooled — a scan borrows one per block batch and
// returns it when the batch callback completes.
type SelectionVector struct {
	idx []uint32
}

// Reset empties the vector, keeping capacity.
func (sv *SelectionVector) Reset() { sv.idx = sv.idx[:0] }

// Len returns the number of selected positions.
func (sv *SelectionVector) Len() int { return len(sv.idx) }

// Append adds a position (positions must be appended in ascending order).
func (sv *SelectionVector) Append(pos uint32) { sv.idx = append(sv.idx, pos) }

// Indices exposes the selected positions; valid until the next Reset.
func (sv *SelectionVector) Indices() []uint32 { return sv.idx }

// SetIndices replaces the vector's contents with the kernel-filled slice,
// which must share sv's backing array (kernels take sv.Indices()[:0] and
// return the appended result).
func (sv *SelectionVector) SetIndices(idx []uint32) { sv.idx = idx }

var selVecPool = sync.Pool{New: func() any { return new(SelectionVector) }}

// GetSelectionVector borrows a pooled selection vector with capacity for at
// least capHint positions.
func GetSelectionVector(capHint int) *SelectionVector {
	sv := selVecPool.Get().(*SelectionVector)
	if cap(sv.idx) < capHint {
		sv.idx = make([]uint32, 0, capHint)
	}
	sv.Reset()
	return sv
}

// PutSelectionVector returns a vector to the pool.
func PutSelectionVector(sv *SelectionVector) {
	if sv != nil {
		selVecPool.Put(sv)
	}
}

// ValueArena is a bump allocator for variable-length values materialized
// during a scan: instead of one heap allocation per value per row, values
// are copied into reused chunks. Reset reclaims everything at once, so a
// scan resets per row (or per batch) and the whole traversal costs a
// handful of chunk allocations total. Values returned by Copy are valid
// only until the next Reset.
type ValueArena struct {
	chunk []byte
	off   int
}

const arenaChunkSize = 16 << 10

// Copy stores v in the arena and returns the arena-owned copy.
func (a *ValueArena) Copy(v []byte) []byte {
	n := len(v)
	if n == 0 {
		return v[:0:0]
	}
	if n > arenaChunkSize {
		// Oversized value: dedicated allocation (rare; not reused).
		return append([]byte(nil), v...)
	}
	if a.off+n > len(a.chunk) {
		a.chunk = make([]byte, arenaChunkSize)
		a.off = 0
	}
	dst := a.chunk[a.off : a.off+n : a.off+n]
	copy(dst, v)
	a.off += n
	return dst
}

// Reset invalidates every value handed out since the last Reset and makes
// the current chunk reusable.
func (a *ValueArena) Reset() { a.off = 0 }

var arenaPool = sync.Pool{New: func() any { return new(ValueArena) }}

// GetValueArena borrows a pooled arena.
func GetValueArena() *ValueArena {
	a := arenaPool.Get().(*ValueArena)
	a.Reset()
	return a
}

// PutValueArena returns an arena to the pool.
func PutValueArena(a *ValueArena) {
	if a != nil {
		arenaPool.Put(a)
	}
}
